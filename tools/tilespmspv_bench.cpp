// tilespmspv_bench — the unified benchmark orchestrator behind the
// repo-root BENCH_*.json trajectory. It runs a named tier of the figure
// benchmarks' "this work" cases through one protocol (one warmup run,
// fixed timed iterations, generator-suite matrices), rolls timings,
// counter deltas and work-model attribution up per case, stamps the run
// manifest (git SHA, build type, SIMD ISA, threads, calibrated machine
// profile), and writes one schema-versioned report.
//
//   tilespmspv_bench [--tier quick|full] [--filter fig6,fig6_batch,fig7]
//                    [--iters N] [--threads N] [--out BENCH_0009.json]
//                    [--bench-id BENCH_0009] [--no-calibrate]
//
// Tiers:
//   quick  3 small matrices per group, 5 iters — the CI regression gate
//          (tools/bench_compare diffs the fresh report against the
//          checked-in baseline).
//   full   the complete fig6/fig7/fig11 sweeps — the trajectory point a
//          PR records after a performance change.
//
// Groups: fig6 (SpMSpV over vector sparsities), fig6_batch (block-of-k
// SpMSpM vs k single multiplies at k = 64), fig7 (TileBFS), fig11
// (CSR -> tiled conversion), serve_smoke (serving-daemon request latency,
// single and 8-way burst), graph500_oOC (out-of-core R-MAT BFS: convert
// to a v2 tile file, rebuild by mmap, traverse sharded — the cases track
// convert vs map startup cost and mapped-traversal speed). --filter
// selects a comma-separated subset.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"
#include "core/spmspv.hpp"
#include "core/tile_spmspv.hpp"
#include "core/tile_spmspv_batch.hpp"
#include "core/work_model.hpp"
#include "formats/tile_file.hpp"
#include "gen/rmat.hpp"
#include "gen/vector_gen.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"
#include "tile/bit_tile_graph.hpp"
#include "util/args.hpp"
#include "util/simd.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

namespace {

#ifndef TILESPMSPV_BUILD_TYPE
#define TILESPMSPV_BUILD_TYPE "unknown"
#endif

struct Tier {
  std::vector<std::string> spmspv_matrices;
  std::vector<double> sparsities;
  std::vector<std::string> bfs_matrices;
  std::vector<std::string> convert_matrices;
  int g500_scale = 13;  // R-MAT scale of the out-of-core group
};

Tier tier_spec(const std::string& name) {
  Tier t;
  if (name == "quick") {
    t.spmspv_matrices = {"er-small", "fem-small", "web-small"};
    t.sparsities = {0.01, 0.0001};
    t.bfs_matrices = {"road-small", "rmat-small", "fem-small"};
    t.convert_matrices = {"cant", "road-small", "web-small"};
    t.g500_scale = 13;
  } else if (name == "full") {
    t.spmspv_matrices = suite_spmspv_sweep();
    t.sparsities = {0.1, 0.01, 0.001, 0.0001};
    t.bfs_matrices = suite_bfs_sweep();
    t.convert_matrices = suite_representative12();
    t.g500_scale = 16;
  } else {
    throw std::invalid_argument("unknown tier '" + name +
                                "' (expected quick|full)");
  }
  return t;
}

bool group_selected(const std::string& filter, const char* group) {
  if (filter.empty()) return true;
  // Comma-separated exact group names.
  std::size_t pos = 0;
  const std::string g(group);
  while (pos <= filter.size()) {
    const std::size_t comma = filter.find(',', pos);
    const std::size_t end = comma == std::string::npos ? filter.size() : comma;
    if (filter.compare(pos, end - pos, g) == 0) return true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

/// One protocol for every case: warmup once, `iters` timed runs, counters
/// snapshotted around the timed region only.
template <typename Fn>
obs::BenchCase run_case(const std::string& group, const std::string& name,
                        int iters, Fn&& fn) {
  obs::BenchCase c;
  c.name = name;
  c.group = group;
  fn();  // warm-up, outside the counter window
  const obs::CounterSnapshot before = obs::counters_snapshot();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    Timer t;
    fn();
    samples.push_back(t.elapsed_ms());
  }
  c.set_counters(obs::counters_snapshot() - before);
  c.set_timing(samples);
  return c;
}

void run_fig6(const Tier& tier, int iters, ThreadPool& pool,
              const obs::MachineProfile& machine,
              std::vector<obs::BenchCase>& out) {
  for (const std::string& name : tier.spmspv_matrices) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    SpmspvOperator<value_t> op(a, {}, &pool);
    for (const double sp : tier.sparsities) {
      const SparseVec<value_t> x = gen_sparse_vector(a.cols, sp, /*seed=*/1);
      const TileVector<value_t> xt =
          TileVector<value_t>::from_sparse(x, /*nt=*/16);
      obs::BenchCase c =
          run_case("fig6", "fig6/" + name + "@" + fmt(sp, 4), iters,
                   [&] { (void)op.multiply(xt); });
      // Attribution: the analytic model of the kernel the selector picks,
      // against the calibrated roofline.
      SpmspvWork w;
      switch (op.select(xt)) {
        case SpmspvKernel::kCsc:
          w = work_tile_spmspv_csc(op.matrix_transposed(), xt);
          break;
        case SpmspvKernel::kDenseSpmv:
          w = work_spmv(op.matrix());
          break;
        default:
          w = work_tile_spmspv_csr(op.matrix(), xt);
          break;
      }
      c.model = obs::attribute_case(spmspv_flops(w), spmspv_traffic_bytes(w),
                                    c.ms_best, machine);
      c.has_model = true;
      out.push_back(std::move(c));
    }
  }
}

void run_fig6_batch(const Tier& tier, int iters, ThreadPool& pool,
                    std::vector<obs::BenchCase>& out) {
  // Block-of-k amortization at the full 64-lane width: the `.block` case
  // runs the SpMSpM engine once per iteration, the `.loop` case runs the
  // same 64 vectors through 64 single multiplies. Their ratio is the
  // batching win the trajectory tracks. Vector sparsity 0.1 is the
  // frontier-like regime of the multi-source apps (most lanes active in
  // every touched tile), which is what the block engine is built for —
  // bench_ablation_batch sweeps the scattered regimes too.
  constexpr int kBatch = 64;
  for (const std::string& name : tier.spmspv_matrices) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const TileMatrix<value_t> tiled =
        TileMatrix<value_t>::from_csr(a, /*nt=*/16, /*extract_threshold=*/2);
    std::vector<TileVector<value_t>> xts;
    for (int v = 0; v < kBatch; ++v) {
      xts.push_back(TileVector<value_t>::from_sparse(
          gen_sparse_vector(a.cols, 0.1, /*seed=*/2000 + v), /*nt=*/16));
    }
    out.push_back(run_case(
        "fig6_batch", "fig6_batch/" + name + ".block", iters,
        [&] { (void)tile_spmspv_batch(tiled, xts, &pool); }));
    SpmspvWorkspace<value_t> ws;
    out.push_back(run_case("fig6_batch", "fig6_batch/" + name + ".loop",
                           iters, [&] {
                             for (const auto& xt : xts) {
                               (void)tile_spmspv(tiled, xt, ws, &pool);
                             }
                           }));
  }
}

void run_fig7(const Tier& tier, int iters, ThreadPool& pool,
              std::vector<obs::BenchCase>& out) {
  for (const std::string& name : tier.bfs_matrices) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const index_t src = max_degree_vertex(a);
    TileBfs bfs(a, {}, &pool);
    BfsWorkspace ws;
    out.push_back(run_case("fig7", "fig7/" + name, iters,
                           [&] { (void)bfs.run(src, ws); }));
  }
}

void run_fig11(const Tier& tier, int iters, ThreadPool& pool,
               std::vector<obs::BenchCase>& out) {
  for (const std::string& name : tier.convert_matrices) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    // Conversion has no steady state to warm: every sample is a fresh
    // build, measured by the converter's own preprocess timer (the same
    // number bench_fig11_conversion reports).
    obs::BenchCase c;
    c.name = "fig11/" + name;
    c.group = "fig11";
    const obs::CounterSnapshot before = obs::counters_snapshot();
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(iters));
    for (int i = 0; i < iters; ++i) {
      TileBfs fresh(a, {}, &pool);
      samples.push_back(fresh.preprocess_ms());
    }
    c.set_counters(obs::counters_snapshot() - before);
    c.set_timing(samples);
    out.push_back(std::move(c));
  }
}

void run_serve_smoke(const Tier& tier, int iters,
                     std::vector<obs::BenchCase>& out) {
  // In-process serving daemon (handle_line is the whole protocol minus
  // socket I/O): `.single` samples one request per timed run — its
  // p50/p95 are the unloaded request latency the trajectory tracks —
  // and `.burst8` times 8 concurrent requests landing in one admission
  // window, the batched-flush path.
  serve::ServeConfig cfg;
  cfg.batch_k = 8;
  cfg.deadline_ms = 1.0;
  cfg.threads = 4;
  for (const std::string& name : tier.spmspv_matrices) {
    serve::Server server(cfg);
    const std::string loaded = server.handle_line(
        "{\"op\":\"load\",\"suite\":\"" + name + "\",\"alias\":\"m\"}");
    if (loaded.rfind("{\"ok\":true", 0) != 0) {
      throw std::runtime_error("serve_smoke: load failed: " + loaded);
    }
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    std::vector<std::string> reqs;
    for (unsigned seed = 1; seed <= 32; ++seed) {
      const SparseVec<value_t> x = gen_sparse_vector(a.cols, 0.01, seed);
      std::ostringstream os;
      obs::JsonWriter w(os);
      w.begin_object();
      w.key("op").value("spmspv");
      w.key("matrix").value("m");
      w.key("indices").begin_array();
      for (const index_t i : x.idx) w.value(static_cast<std::int64_t>(i));
      w.end_array();
      w.key("values").begin_array();
      for (const value_t v : x.vals) w.value(static_cast<double>(v));
      w.end_array();
      w.end_object();
      reqs.push_back(os.str());
    }
    std::size_t next = 0;
    out.push_back(run_case(
        "serve_smoke", "serve_smoke/" + name + ".single", iters * 8, [&] {
          (void)server.handle_line(reqs[next % reqs.size()]);
          ++next;
        }));
    out.push_back(run_case(
        "serve_smoke", "serve_smoke/" + name + ".burst8", iters, [&] {
          std::vector<std::thread> burst;
          for (int t = 0; t < 8; ++t) {
            burst.emplace_back([&, t] {
              (void)server.handle_line(
                  reqs[(next + static_cast<std::size_t>(t)) % reqs.size()]);
            });
          }
          for (auto& th : burst) th.join();
          next += 8;
        }));
  }
}

void run_graph500_ooc(const Tier& tier, int iters, ThreadPool& pool,
                      std::vector<obs::BenchCase>& out) {
  // Out-of-core startup trajectory: `.convert` is the one-time offline
  // cost (tiled build + v2 file write), `.mmap_load` is what a restart
  // actually pays (a single mmap + cheap structural gates), and
  // `.bfs_mapped` proves traversal speed off the mapped view under
  // sharded dispatch. The convert/mmap_load ratio is the O(mmap) startup
  // win the trajectory gates on.
  RmatParams prm;
  prm.scale = tier.g500_scale;
  prm.edge_factor = 16;
  const Csr<value_t> g = Csr<value_t>::from_coo(gen_rmat(prm, 42));
  const std::string path = "/tmp/tilespmspv_bench_g500.ttlf";
  const std::string base = "graph500_oOC/s" + std::to_string(prm.scale);
  pool.configure_shards(4);

  // Tile size must match what the file-backed TileBfs reads back, i.e.
  // the in-memory rule (order above 10,000 -> 64x64).
  const auto convert = [&] {
    if (g.rows > 10000) {
      write_bit_tile_graph_file<64>(path, BitTileGraph<64>::from_csr(g, 2));
    } else {
      write_bit_tile_graph_file<32>(path, BitTileGraph<32>::from_csr(g, 2));
    }
  };
  out.push_back(run_case("graph500_oOC", base + ".convert", iters, convert));
  out.push_back(run_case("graph500_oOC", base + ".mmap_load", iters, [&] {
    TileBfs mapped(path, {}, &pool);
  }));

  TileBfs mapped(path, {}, &pool);
  const index_t src = max_degree_vertex(g);
  BfsWorkspace ws;
  out.push_back(run_case("graph500_oOC", base + ".bfs_mapped", iters,
                         [&] { (void)mapped.run(src, ws); }));
  pool.configure_shards(1);
  std::remove(path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  try {
    args.reject_unknown({"--tier", "--filter", "--iters", "--threads",
                         "--out", "--bench-id", "--no-calibrate"});
    const std::string tier_name = args.get("--tier", "quick");
    const std::string filter = args.get("--filter");
    const int iters = static_cast<int>(args.get_int("--iters", 5));
    const auto threads =
        static_cast<std::size_t>(args.get_int("--threads", 4));
    const std::string out_path = args.get("--out", "BENCH_0009.json");
    const std::string bench_id = args.get("--bench-id", "BENCH_0009");
    if (iters < 1) throw std::invalid_argument("--iters must be >= 1");

    const Tier tier = tier_spec(tier_name);
    ThreadPool pool(threads);

    obs::BenchReport report;
    report.bench_id = bench_id;
    report.tier = tier_name;
    report.manifest.git_sha = obs::read_git_sha();
    report.manifest.build_type = TILESPMSPV_BUILD_TYPE;
    report.manifest.simd_isa = simd::active_isa();
    report.manifest.threads = static_cast<int>(threads);
    report.manifest.iters = iters;
    if (!args.has("--no-calibrate")) {
      std::cout << "calibrating machine profile...\n";
      report.manifest.machine = obs::measure_machine_profile();
      std::printf(
          "  %s, %d cores; mem %.1f GB/s, scalar %.2f GFLOP/s, "
          "simd %.2f GFLOP/s\n",
          report.manifest.machine.cpu_model.c_str(),
          report.manifest.machine.cores, report.manifest.machine.mem_bw_gbs,
          report.manifest.machine.scalar_gflops,
          report.manifest.machine.simd_gflops);
    }

    if (group_selected(filter, "fig6")) {
      std::cout << "running fig6 (SpMSpV)...\n";
      run_fig6(tier, iters, pool, report.manifest.machine, report.cases);
    }
    if (group_selected(filter, "fig6_batch")) {
      std::cout << "running fig6_batch (block-of-k SpMSpM)...\n";
      run_fig6_batch(tier, iters, pool, report.cases);
    }
    if (group_selected(filter, "fig7")) {
      std::cout << "running fig7 (TileBFS)...\n";
      run_fig7(tier, iters, pool, report.cases);
    }
    if (group_selected(filter, "fig11")) {
      std::cout << "running fig11 (conversion)...\n";
      run_fig11(tier, iters, pool, report.cases);
    }
    if (group_selected(filter, "serve_smoke")) {
      std::cout << "running serve_smoke (daemon request latency)...\n";
      run_serve_smoke(tier, iters, report.cases);
    }
    if (group_selected(filter, "graph500_oOC")) {
      std::cout << "running graph500_oOC (out-of-core R-MAT BFS)...\n";
      run_graph500_ooc(tier, iters, pool, report.cases);
    }
    if (report.cases.empty()) {
      std::fprintf(stderr, "no cases selected (filter '%s')\n",
                   filter.c_str());
      return 2;
    }

    Table table({"case", "best ms", "mean", "p50", "p95", "roofline %"});
    for (const obs::BenchCase& c : report.cases) {
      table.add_row({c.name, fmt(c.ms_best, 4), fmt(c.ms_mean, 4),
                     fmt(c.ms_p50, 4), fmt(c.ms_p95, 4),
                     c.has_model ? fmt(c.model.roofline_pct, 1) : "-"});
    }
    table.print(std::cout);

    if (!report.write_file(out_path)) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::cout << report.cases.size() << " cases (" << tier_name
              << " tier) written to " << out_path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
