// tilespmspv_cli — command-line front end for the library, so a user can
// exercise SpMSpV, BFS, SSSP and the tiled-format statistics on their own
// Matrix Market files (or on the built-in synthetic suite) without
// writing code.
//
//   tilespmspv_cli tiles  (--matrix F.mtx | --suite NAME) [--nt 16] [--json]
//   tilespmspv_cli spmspv (--matrix F.mtx | --suite NAME)
//                         [--sparsity 0.01] [--seed 1] [--iters 5]
//                         [--compare] [--json]
//   tilespmspv_cli bfs    (--matrix F.mtx | --suite NAME)
//                         [--source -1 (max degree)] [--compare] [--json]
//   tilespmspv_cli sssp   (--matrix F.mtx | --suite NAME) [--source 0]
//   tilespmspv_cli list   (names of built-in suite matrices)
//   tilespmspv_cli convert (--matrix F.mtx | --suite NAME) --out PATH
//                         [--nt N] [--extract 2] [--graph] [--transpose]
//                         one-time offline conversion to the v2 mmap tile
//                         format (formats/tile_file.hpp); --graph writes a
//                         BitTileGraph for BFS, --transpose bakes Aᵀ so
//                         the CSC kernel stays available on the mapped
//                         matrix
//   tilespmspv_cli mapcheck (--matrix F.mtx | --suite NAME) --file PATH
//                         [--shards N] [--sparsity 0.01] [--seed 1]
//                         [--source -1] [--json]
//                         differential check: in-memory conversion vs the
//                         mmapped file must agree (SpMSpV output or BFS
//                         levels), reporting the load-vs-convert speedup
//                         and per-shard balance counters
//
// Observability flags (any subcommand):
//   --metrics PATH   write run metrics + kernel counters (JSON, or CSV when
//                    PATH ends in .csv)
//   --trace PATH     record trace spans, write Chrome trace-event JSON
//                    (load in chrome://tracing or ui.perfetto.dev)
//   --profile        print the merged kernel-counter table and the
//                    per-phase span aggregation (count/total/mean/p95 per
//                    span name) after the run
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include "apps/connected_components.hpp"
#include "apps/ppr.hpp"
#include "apps/sssp.hpp"
#include "tile/format_advisor.hpp"
#include "tile/tile_stats.hpp"
#include "baselines/csr_spmv.hpp"
#include "baselines/serial_bfs.hpp"
#include "bfs/tile_bfs.hpp"
#include "core/spmspv.hpp"
#include "formats/mm_io.hpp"
#include "formats/tile_file.hpp"
#include "tile/bit_tile_graph.hpp"
#include "obs/shard_stats.hpp"
#include "parallel/thread_pool.hpp"
#include "gen/suite.hpp"
#include "gen/vector_gen.hpp"
#include "obs/bench_report.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/json_value.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace tilespmspv;

namespace {

Csr<value_t> load_matrix(const Args& args) {
  const std::string file = args.get("--matrix");
  if (!file.empty()) {
    return Csr<value_t>::from_coo(read_matrix_market_file(file));
  }
  const std::string name = args.get("--suite");
  if (!name.empty()) {
    return Csr<value_t>::from_coo(suite_matrix(name));
  }
  throw std::invalid_argument("pass --matrix FILE.mtx or --suite NAME");
}

void describe_matrix(const Args& args, obs::MetricsRegistry& metrics,
                     const Csr<value_t>& a) {
  const std::string file = args.get("--matrix");
  metrics.put_str("matrix", file.empty() ? args.get("--suite") : file);
  metrics.put_int("rows", a.rows);
  metrics.put_int("cols", a.cols);
  metrics.put_int("nnz", a.nnz());
}

int cmd_list() {
  Table t({"name", "description"});
  for (const auto& name : suite_all_names()) {
    t.add_row({name, suite_description(name)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_tiles(const Args& args, obs::MetricsRegistry& metrics) {
  const Csr<value_t> a = load_matrix(args);
  const auto nt = static_cast<index_t>(args.get_int("--nt", 16));
  if (nt < 1 || nt > 256) {
    throw std::invalid_argument("--nt must be in [1, 256]");
  }
  describe_matrix(args, metrics, a);
  metrics.put_int("nt", nt);

  obs::JsonWriter w(std::cout);
  if (args.has("--json")) {
    w.begin_object();
    w.key("rows").value(a.rows);
    w.key("cols").value(a.cols);
    w.key("nnz").value(static_cast<std::int64_t>(a.nnz()));
    w.key("nt").value(nt);
    w.key("thresholds").begin_array();
  } else {
    std::printf("matrix: %d x %d, %lld nonzeros\n", a.rows, a.cols,
                static_cast<long long>(a.nnz()));
  }
  Table t({"extract threshold", "tiles kept", "nnz in tiles",
           "nnz extracted", "tile occupancy"});
  for (index_t threshold : {0, 1, 2, 4, 8}) {
    const TileMatrix<value_t> m =
        TileMatrix<value_t>::from_csr(a, nt, threshold);
    if (args.has("--json")) {
      w.begin_object();
      w.key("extract_threshold").value(threshold);
      w.key("tiles_kept").value(static_cast<std::int64_t>(m.num_tiles()));
      w.key("nnz_in_tiles").value(static_cast<std::int64_t>(m.tiled_nnz()));
      w.key("nnz_extracted")
          .value(static_cast<std::int64_t>(m.extracted.nnz()));
      w.key("tile_occupancy").value(m.tile_occupancy());
      w.end_object();
    } else {
      t.add_row({std::to_string(threshold), fmt_count(m.num_tiles()),
                 fmt_count(m.tiled_nnz()), fmt_count(m.extracted.nnz()),
                 fmt(100.0 * m.tile_occupancy(), 4) + "%"});
    }
  }
  if (args.has("--json")) {
    w.end_array();
    w.end_object();
    std::cout << "\n";
  } else {
    t.print(std::cout);
  }
  return 0;
}

int cmd_stats(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  std::printf("matrix: %d x %d, %lld nonzeros\n", a.rows, a.cols,
              static_cast<long long>(a.nnz()));
  Table t({"nt", "non-empty tiles", "occupancy", "avg nnz/tile",
           "max nnz/tile", "tiles nnz<=2", "max tiles/row-tile"});
  for (index_t nt : {16, 32, 64}) {
    const TileStats s = tile_stats(a, nt);
    t.add_row({std::to_string(nt), fmt_count(s.nonempty_tiles),
               fmt(100.0 * s.occupancy, 4) + "%", fmt(s.avg_nnz_per_tile, 1),
               fmt_count(s.max_nnz_per_tile), fmt_count(s.tiles_le2),
               fmt_count(s.max_row_tiles)});
  }
  t.print(std::cout);
  // nnz-per-tile histogram at the default tile size.
  const TileStats s = tile_stats(a, 16);
  std::printf("\nnnz-per-tile histogram (nt=16):\n");
  for (std::size_t b = 0; b < s.nnz_histogram.size(); ++b) {
    if (s.nnz_histogram[b] == 0) continue;
    std::printf("  [%4lld, %4lld): %s\n",
                static_cast<long long>(1LL << b),
                static_cast<long long>(2LL << b),
                fmt_count(s.nnz_histogram[b]).c_str());
  }
  return 0;
}

int cmd_advise(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  const FormatAdvice advice = advise_format(a);
  const TileStats s = tile_stats(a, 16);
  std::printf("matrix: %d x %d, %lld nonzeros; avg %.1f nnz per non-empty "
              "16x16 tile\n",
              a.rows, a.cols, static_cast<long long>(a.nnz()),
              s.avg_nnz_per_tile);
  std::printf("recommended storage : %s\n", to_string(advice.family));
  if (advice.family == StorageFamily::kTiled) {
    std::printf("  tile size         : %d\n", advice.nt);
    std::printf("  intra-tile layout : %s\n", to_string(advice.layout));
    std::printf("  extract threshold : %d\n", advice.extract_threshold);
  }
  std::printf("rationale: %s\n", advice.rationale);
  return 0;
}

int cmd_spmspv(const Args& args, obs::MetricsRegistry& metrics) {
  const Csr<value_t> a = load_matrix(args);
  const double sparsity = args.get_double("--sparsity", 0.01);
  const auto seed = static_cast<std::uint64_t>(args.get_int("--seed", 1));
  const int iters = static_cast<int>(args.get_int("--iters", 5));

  SpmspvConfig cfg;
  cfg.nt = static_cast<index_t>(args.get_int("--nt", 16));
  if (cfg.nt < 1 || cfg.nt > 256) {
    throw std::invalid_argument("--nt must be in [1, 256]");
  }
  Timer prep;
  SpmspvOperator<value_t> op(a, cfg);
  const double prep_ms = prep.elapsed_ms();

  const SparseVec<value_t> x = gen_sparse_vector(a.cols, sparsity, seed);
  const TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, cfg.nt);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    Timer t;
    (void)op.multiply(xt);
    samples.push_back(t.elapsed_ms());
  }
  const double ms = min_of(samples);
  SparseVec<value_t> y = op.multiply(xt);
  const char* kernel = op.select(xt) == SpmspvKernel::kCsc
                           ? "CSC (vector-driven)"
                           : "CSR (matrix-driven)";

  describe_matrix(args, metrics, a);
  metrics.put_double("sparsity", sparsity);
  metrics.put_int("x_nnz", x.nnz());
  metrics.put_str("kernel", kernel);
  metrics.put_double("preprocess_ms", prep_ms);
  metrics.put_double("multiply_ms_best", ms);
  metrics.put_double("multiply_ms_mean", mean(samples));
  metrics.put_double("multiply_ms_p95", percentile(samples, 95.0));
  metrics.put_int("y_nnz", y.nnz());

  bool compared = false, match = false;
  if (args.has("--compare")) {
    const SparseVec<value_t> ref = csr_spmv(a, x);
    compared = true;
    match = approx_equal(y, ref);
  }

  if (args.has("--json")) {
    obs::JsonWriter w(std::cout);
    w.begin_object();
    w.key("rows").value(a.rows);
    w.key("cols").value(a.cols);
    w.key("nnz").value(static_cast<std::int64_t>(a.nnz()));
    w.key("sparsity").value(sparsity);
    w.key("x_nnz").value(x.nnz());
    w.key("kernel").value(kernel);
    w.key("iters").value(iters);
    w.key("preprocess_ms").value(prep_ms);
    w.key("multiply_ms_best").value(ms);
    w.key("multiply_ms_mean").value(mean(samples));
    w.key("multiply_ms_p95").value(percentile(samples, 95.0));
    w.key("y_nnz").value(y.nnz());
    if (compared) w.key("matches_reference").value(match);
    w.end_object();
    std::cout << "\n";
  } else {
    std::printf("matrix %d x %d (%lld nnz); x: %d nonzeros (sparsity %g)\n",
                a.rows, a.cols, static_cast<long long>(a.nnz()), x.nnz(),
                sparsity);
    std::printf("kernel: %s\n", kernel);
    std::printf(
        "preprocess %.3f ms; multiply %.4f ms (best of %d, mean %.4f, "
        "p95 %.4f); |y| = %d\n",
        prep_ms, ms, iters, mean(samples), percentile(samples, 95.0),
        y.nnz());
    if (compared) {
      std::printf("matches dense-vector SpMV: %s\n", match ? "yes" : "NO");
    }
  }
  return compared && !match ? 1 : 0;
}

int cmd_bfs(const Args& args, obs::MetricsRegistry& metrics) {
  const Csr<value_t> a = load_matrix(args);
  if (a.rows != a.cols) {
    std::fprintf(stderr, "bfs requires a square matrix\n");
    return 1;
  }
  index_t source = static_cast<index_t>(args.get_int("--source", -1));
  if (source < 0) {
    index_t best_deg = -1;
    for (index_t v = 0; v < a.rows; ++v) {
      if (a.row_nnz(v) > best_deg) {
        best_deg = a.row_nnz(v);
        source = v;
      }
    }
  }
  TileBfs bfs(a);
  const BfsResult r = bfs.run(source);

  describe_matrix(args, metrics, a);
  metrics.put_int("source", source);
  metrics.put_int("visited", r.visited_count());
  metrics.put_int("levels", static_cast<std::int64_t>(r.iterations.size()));
  metrics.put_double("preprocess_ms", bfs.preprocess_ms());
  metrics.put_double("bfs_ms", r.total_ms);

  bool compared = false, match = false;
  if (args.has("--compare")) {
    compared = true;
    match = r.levels == serial_bfs(a, source);
  }

  if (args.has("--json")) {
    obs::JsonWriter w(std::cout);
    w.begin_object();
    w.key("n").value(a.rows);
    w.key("edges").value(static_cast<std::int64_t>(bfs.edges()));
    w.key("tile_size").value(bfs.tile_size());
    w.key("num_tiles").value(bfs.num_tiles());
    w.key("preprocess_ms").value(bfs.preprocess_ms());
    w.key("source").value(source);
    w.key("visited").value(r.visited_count());
    w.key("total_ms").value(r.total_ms);
    w.key("iterations").begin_array();
    for (const auto& it : r.iterations) {
      w.begin_object();
      w.key("level").value(it.level);
      w.key("kernel").value(bfs_kernel_name(it.kernel));
      w.key("frontier_size").value(it.frontier_size);
      w.key("unvisited").value(it.unvisited);
      w.key("frontier_density").value(it.frontier_density);
      w.key("unvisited_frac").value(it.unvisited_frac);
      w.key("frontier_words").value(it.frontier_words);
      w.key("ms").value(it.ms);
      w.end_object();
    }
    w.end_array();
    if (compared) w.key("matches_reference").value(match);
    w.end_object();
    std::cout << "\n";
  } else {
    std::printf(
        "n=%d, edges=%lld, tile size %d, %d tiles, preprocess %.2f ms\n",
        a.rows, static_cast<long long>(bfs.edges()), bfs.tile_size(),
        bfs.num_tiles(), bfs.preprocess_ms());
    std::printf("BFS from %d: %d vertices in %zu levels, %.3f ms\n", source,
                r.visited_count(), r.iterations.size(), r.total_ms);
    if (args.has("--verbose")) {
      for (const auto& it : r.iterations) {
        std::printf(
            "  level %3d  %-8s frontier %8d (%.4f)  unvisited %8d (%.4f)  "
            "%.4f ms\n",
            it.level, bfs_kernel_name(it.kernel), it.frontier_size,
            it.frontier_density, it.unvisited, it.unvisited_frac, it.ms);
      }
    }
    if (compared) {
      std::printf("matches serial BFS: %s\n", match ? "yes" : "NO");
    }
  }
  return compared && !match ? 1 : 0;
}

int cmd_sssp(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  const auto source = static_cast<index_t>(args.get_int("--source", 0));
  Timer t;
  const SsspResult r = sssp(a, source);
  index_t reached = 0;
  double max_dist = 0.0;
  for (double d : r.dist) {
    if (!std::isinf(d)) {
      ++reached;
      max_dist = std::max(max_dist, d);
    }
  }
  std::printf(
      "SSSP from %d: reached %d of %d vertices in %d rounds, %.2f ms; "
      "max distance %.4f\n",
      source, reached, a.rows, r.rounds, t.elapsed_ms(), max_dist);
  return 0;
}

int cmd_cc(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  if (a.rows != a.cols) {
    std::fprintf(stderr, "cc requires a square (undirected) matrix\n");
    return 1;
  }
  Timer t;
  const ComponentsResult r = connected_components(a);
  // Component size distribution (largest few).
  std::vector<index_t> sizes(r.count, 0);
  for (index_t c : r.component) {
    if (c >= 0) ++sizes[c];
  }
  std::sort(sizes.rbegin(), sizes.rend());
  std::printf("%d components in %.2f ms; largest: ", r.count,
              t.elapsed_ms());
  for (index_t i = 0; i < std::min<index_t>(5, r.count); ++i) {
    std::printf("%s%d", i ? ", " : "", sizes[i]);
  }
  std::printf("\n");
  return 0;
}

int cmd_ppr(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  const auto seed = static_cast<index_t>(args.get_int("--seed-vertex", 0));
  const auto topk = static_cast<index_t>(args.get_int("--top", 10));
  PprConfig cfg;
  cfg.alpha = args.get_double("--alpha", 0.85);
  cfg.epsilon = args.get_double("--epsilon", 1e-7);
  SparseVec<value_t> seeds(a.cols);
  seeds.push(seed, 1.0);
  Timer t;
  const PprResult r = personalized_pagerank(a, seeds, cfg);
  std::printf("PPR from %d: %d iterations, %.2f ms, %d vertices with mass, "
              "%.4g truncated\n",
              seed, r.iterations, t.elapsed_ms(), r.scores.nnz(),
              r.truncated_mass);
  // Top-k scores.
  std::vector<std::pair<value_t, index_t>> ranked;
  for (std::size_t k = 0; k < r.scores.idx.size(); ++k) {
    ranked.emplace_back(r.scores.vals[k], r.scores.idx[k]);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (index_t i = 0;
       i < std::min(topk, static_cast<index_t>(ranked.size())); ++i) {
    std::printf("  #%-3d vertex %-8d score %.6f\n", i + 1, ranked[i].second,
                ranked[i].first);
  }
  return 0;
}

/// `convert`: one-time offline conversion to the v2 mmap tile format. The
/// cost paid here (tiling, transpose, hash) is exactly what every later
/// mmap load skips.
int cmd_convert(const Args& args, obs::MetricsRegistry& metrics) {
  const Csr<value_t> a = load_matrix(args);
  const std::string out = args.get("--out");
  if (out.empty()) throw std::invalid_argument("pass --out PATH");
  const auto extract = static_cast<index_t>(args.get_int("--extract", 2));
  Timer t;
  std::uint64_t hash = 0;
  int nt = 0;
  if (args.has("--graph")) {
    if (a.rows != a.cols) {
      throw std::invalid_argument("--graph needs a square matrix");
    }
    // Tile-size rule mirrors TileBfs: order > 10,000 -> 64x64, else 32x32;
    // --nt 16|32|64 overrides.
    nt = static_cast<int>(args.get_int("--nt", a.rows > 10000 ? 64 : 32));
    switch (nt) {
      case 16:
        hash = write_bit_tile_graph_file(
            out, BitTileGraph<16>::from_csr(a, extract));
        break;
      case 32:
        hash = write_bit_tile_graph_file(
            out, BitTileGraph<32>::from_csr(a, extract));
        break;
      case 64:
        hash = write_bit_tile_graph_file(
            out, BitTileGraph<64>::from_csr(a, extract));
        break;
      default:
        throw std::invalid_argument("--graph --nt must be 16, 32 or 64");
    }
  } else {
    nt = static_cast<int>(args.get_int("--nt", 16));
    if (nt < 1 || nt > 256) {
      throw std::invalid_argument("--nt must be in [1, 256]");
    }
    const TileMatrix<value_t> m = TileMatrix<value_t>::from_csr(
        a, static_cast<index_t>(nt), extract);
    if (args.has("--transpose")) {
      const TileMatrix<value_t> mt = TileMatrix<value_t>::from_csr(
          a.transpose(), static_cast<index_t>(nt), extract);
      hash = write_tile_matrix_file_v2(out, m, &mt);
    } else {
      hash = write_tile_matrix_file_v2(out, m);
    }
  }
  const double convert_ms = t.elapsed_ms();
  const TileFileHeader h = read_tile_file_header(out);

  describe_matrix(args, metrics, a);
  metrics.put_str("out", out);
  metrics.put_int("nt", nt);
  metrics.put_int("file_bytes", static_cast<std::int64_t>(h.file_bytes));
  metrics.put_double("convert_ms", convert_ms);

  if (args.has("--json")) {
    obs::JsonWriter w(std::cout);
    w.begin_object();
    w.key("out").value(out);
    w.key("kind").value(args.has("--graph") ? "graph" : "matrix");
    w.key("nt").value(nt);
    w.key("rows").value(a.rows);
    w.key("cols").value(a.cols);
    w.key("nnz").value(static_cast<std::int64_t>(a.nnz()));
    w.key("file_bytes").value(static_cast<std::int64_t>(h.file_bytes));
    w.key("payload_hash").value(static_cast<std::int64_t>(hash));
    w.key("convert_ms").value(convert_ms);
    w.end_object();
    std::cout << "\n";
  } else {
    std::printf("%s: %s %d x %d (%lld nnz), nt %d, %lld bytes, %.2f ms\n",
                out.c_str(), args.has("--graph") ? "graph" : "matrix", a.rows,
                a.cols, static_cast<long long>(a.nnz()), nt,
                static_cast<long long>(h.file_bytes), convert_ms);
  }
  return 0;
}

/// Compares levels/outputs and reports the per-shard balance counters the
/// sharded kernels populated during the mapped run.
void mapcheck_report(obs::JsonWriter& w, const obs::ShardSnapshot& s) {
  w.key("shards").value(s.shards);
  w.key("shard_bytes").begin_array();
  for (int i = 0; i < s.shards; ++i) {
    w.value(static_cast<std::int64_t>(s.bytes[i]));
  }
  w.end_array();
  w.key("shard_tiles").begin_array();
  for (int i = 0; i < s.shards; ++i) {
    w.value(static_cast<std::int64_t>(s.tiles[i]));
  }
  w.end_array();
  w.key("bytes_imbalance").value(s.bytes_imbalance());
}

/// `mapcheck`: the out-of-core smoke primitive. Builds the operator twice —
/// in-memory conversion from the source matrix, and a zero-copy map of the
/// pre-converted file — runs the same query on both and requires equal
/// results. Reports the load-vs-convert speedup (the ≥10x claim) and the
/// per-shard balance counters.
int cmd_mapcheck(const Args& args, obs::MetricsRegistry& metrics) {
  const std::string file = args.get("--file");
  if (file.empty()) {
    throw std::invalid_argument("pass --file PATH (a converted v2 tile file)");
  }
  const auto shards = static_cast<int>(args.get_int("--shards", 0));
  // Local pool so shard pinning stays scoped to this command.
  ThreadPool pool;
  if (shards > 0) pool.configure_shards(shards);
  obs::shard_reset();

  const Csr<value_t> a = load_matrix(args);
  const TileFileHeader h = read_tile_file_header(file);
  const bool is_graph =
      h.kind == static_cast<std::uint32_t>(TileFileKind::kBitTileGraph);

  double convert_ms = 0.0, map_ms = 0.0;
  bool equal = false;
  if (is_graph) {
    TileBfsConfig bcfg;
    bcfg.forced_tile_size = static_cast<int>(h.nt);
    Timer tc;
    const TileBfs mem(a, bcfg, &pool);
    convert_ms = tc.elapsed_ms();
    const TileBfs mapped(file, {}, &pool);
    map_ms = mapped.preprocess_ms();
    index_t source = static_cast<index_t>(args.get_int("--source", -1));
    if (source < 0) {
      index_t best_deg = -1;
      for (index_t v = 0; v < a.rows; ++v) {
        if (a.row_nnz(v) > best_deg) {
          best_deg = a.row_nnz(v);
          source = v;
        }
      }
    }
    const BfsResult ref = mem.run(source);
    const BfsResult got = mapped.run(source);
    equal = ref.levels == got.levels;
  } else {
    SpmspvConfig cfg;
    cfg.nt = static_cast<index_t>(h.nt);
    // Same kernel on both sides so the comparison is bit-identical, and
    // the matrix-driven form exercises the sharded phase-1 dispatch.
    cfg.kernel = SpmspvKernel::kCsr;
    Timer tc;
    SpmspvOperator<value_t> mem(a, cfg, &pool);
    convert_ms = tc.elapsed_ms();
    Timer tl;
    MappedTileMatrix m = map_tile_matrix_file(file);
    SpmspvOperator<value_t> mapped(std::move(m.tiled), std::move(m.tiled_t),
                                   cfg, &pool);
    map_ms = tl.elapsed_ms();
    const SparseVec<value_t> x = gen_sparse_vector(
        a.cols, args.get_double("--sparsity", 0.01),
        static_cast<std::uint64_t>(args.get_int("--seed", 1)));
    const SparseVec<value_t> y_ref = mem.multiply(x);
    const SparseVec<value_t> y_map = mapped.multiply(x);
    equal = y_ref.idx == y_map.idx && y_ref.vals == y_map.vals;
  }
  const obs::ShardSnapshot snap = obs::shard_snapshot();
  const double speedup = map_ms > 0.0 ? convert_ms / map_ms : 0.0;

  describe_matrix(args, metrics, a);
  metrics.put_str("file", file);
  metrics.put_int("shards", snap.shards);
  metrics.put_double("convert_ms", convert_ms);
  metrics.put_double("map_ms", map_ms);
  metrics.put_double("load_speedup", speedup);
  metrics.put_double("shard_bytes_imbalance", snap.bytes_imbalance());
  metrics.put_int(is_graph ? "bfs_equal" : "spmspv_equal", equal ? 1 : 0);

  if (args.has("--json")) {
    obs::JsonWriter w(std::cout);
    w.begin_object();
    w.key("file").value(file);
    w.key("kind").value(is_graph ? "graph" : "matrix");
    w.key("nt").value(static_cast<std::int64_t>(h.nt));
    w.key("convert_ms").value(convert_ms);
    w.key("map_ms").value(map_ms);
    w.key("load_speedup").value(speedup);
    w.key(is_graph ? "bfs_equal" : "spmspv_equal").value(equal);
    mapcheck_report(w, snap);
    w.end_object();
    std::cout << "\n";
  } else {
    std::printf("%s: %s nt %lld; convert %.2f ms, map %.3f ms (%.1fx)\n",
                file.c_str(), is_graph ? "graph" : "matrix",
                static_cast<long long>(h.nt), convert_ms, map_ms, speedup);
    std::printf("%s: %s\n", is_graph ? "bfs levels equal" : "spmspv equal",
                equal ? "yes" : "NO");
    for (int s = 0; s < snap.shards; ++s) {
      std::printf("  shard %d: %llu bytes, %llu tiles, %.3f ms\n", s,
                  static_cast<unsigned long long>(snap.bytes[s]),
                  static_cast<unsigned long long>(snap.tiles[s]),
                  snap.ms[s]);
    }
    if (snap.shards > 1) {
      std::printf("  shard bytes imbalance (max/mean): %.3f\n",
                  snap.bytes_imbalance());
    }
  }
  return equal ? 0 : 1;
}

void print_profile(const obs::CounterSnapshot& snap) {
  std::printf("\nkernel counters (merged across threads):\n");
  Table t({"counter", "value"});
  for (int i = 0; i < obs::kNumCounters; ++i) {
    const auto c = static_cast<obs::Counter>(i);
    t.add_row({obs::counter_name(c),
               fmt_count(static_cast<long long>(snap[c]))});
  }
  t.print(std::cout);
  if (!obs::counters_enabled()) {
    std::printf("(counters compiled out: TILESPMSPV_NO_COUNTERS build)\n");
  }

  // Per-phase aggregation of the recorded trace spans: where the run's
  // wall time went, phase by phase, without opening a Chrome trace.
  const std::vector<obs::SpanStats> spans =
      obs::aggregate_spans(obs::trace_samples());
  if (!spans.empty()) {
    std::printf("\nphase spans (aggregated by name, sorted by total time):\n");
    Table st({"span", "count", "total ms", "mean ms", "p95 ms"});
    for (const obs::SpanStats& s : spans) {
      st.add_row({s.name, fmt_count(static_cast<long long>(s.count)),
                  fmt(s.total_ms, 3), fmt(s.mean_ms, 4), fmt(s.p95_ms, 4)});
    }
    st.print(std::cout);
  }
}

/// Builds the request line for one serve-protocol op from CLI flags. For
/// spmspv a random vector is generated client-side (same generator the
/// bench uses) so the daemon sees realistic sparse payloads.
std::string build_request(const std::string& op, const Args& args,
                          index_t cols, unsigned seed) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("op").value(op);
  const std::string alias = args.get("--alias");
  if (op == "load") {
    const std::string file = args.get("--matrix");
    const std::string suite = args.get("--suite");
    if (file.empty() == suite.empty()) {
      throw std::invalid_argument(
          "client load needs exactly one of --matrix/--suite");
    }
    if (file.empty()) {
      w.key("suite").value(suite);
    } else {
      w.key("path").value(file);
    }
    if (!alias.empty()) w.key("alias").value(alias);
  } else if (op == "unload" || op == "spmspv" || op == "bfs") {
    if (alias.empty()) throw std::invalid_argument("pass --alias NAME");
    w.key("matrix").value(alias);
    if (op == "spmspv") {
      const double sp = args.get_double("--sparsity", 0.01);
      const SparseVec<value_t> x = gen_sparse_vector(cols, sp, seed);
      w.key("indices").begin_array();
      for (const index_t i : x.idx) w.value(static_cast<std::int64_t>(i));
      w.end_array();
      w.key("values").begin_array();
      for (const value_t v : x.vals) w.value(static_cast<double>(v));
      w.end_array();
    } else if (op == "bfs") {
      w.key("source").value(
          static_cast<std::int64_t>(args.get_int("--source", 0)));
    }
  }
  w.end_object();
  return os.str();
}

/// Column count of the resident matrix named `alias` (via a list request);
/// needed to generate spmspv payload vectors of the right length.
index_t remote_cols(serve::Client& c, const std::string& alias) {
  std::string resp, err;
  if (!c.request("{\"op\":\"list\"}", &resp, &err)) {
    throw std::runtime_error("list failed: " + err);
  }
  obs::JsonValue v;
  if (!obs::json_parse_value(resp, &v)) {
    throw std::runtime_error("list returned malformed JSON");
  }
  const obs::JsonValue* ms = v.find("matrices");
  if (ms != nullptr && ms->is_array()) {
    for (const auto& m : ms->arr) {
      if (m.string_or("alias", "") == alias ||
          m.string_or("key", "") == alias) {
        return static_cast<index_t>(m.number_or("cols", 0.0));
      }
    }
  }
  throw std::runtime_error("matrix '" + alias + "' is not resident");
}

/// `client`: one request against a running daemon, response to stdout.
int cmd_client(const Args& args) {
  const std::string socket = args.get("--socket", "/tmp/tilespmspv.sock");
  const std::string op = args.get("--op", "ping");
  serve::Client c;
  std::string err;
  if (!c.connect(socket, &err)) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", socket.c_str(),
                 err.c_str());
    return 1;
  }
  index_t cols = 0;
  if (op == "spmspv") cols = remote_cols(c, args.get("--alias"));
  const std::string req = build_request(
      op, args, cols, static_cast<unsigned>(args.get_int("--seed", 1)));
  std::string resp;
  if (!c.request(req, &resp, &err)) {
    std::fprintf(stderr, "request failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("%s\n", resp.c_str());
  return resp.rfind("{\"ok\":true", 0) == 0 ? 0 : 1;
}

/// `loadgen`: closed- or open-loop load generator against a running
/// daemon. Closed loop: each of C connections issues its share of
/// --count requests back to back. Open loop: requests start on a global
/// schedule at --rate per second regardless of completions (the
/// latency-under-load number serving papers quote).
int cmd_loadgen(const Args& args, obs::MetricsRegistry& metrics) {
  const std::string socket = args.get("--socket", "/tmp/tilespmspv.sock");
  const std::string op = args.get("--op", "spmspv");
  const std::string mode = args.get("--mode", "closed");
  const std::string alias = args.get("--alias");
  const long count = args.get_int("--count", 100);
  const long conc = std::max(1L, args.get_int("--concurrency", 4));
  const double rate = args.get_double("--rate", 100.0);
  if (op != "spmspv" && op != "bfs" && op != "mixed") {
    throw std::invalid_argument("loadgen --op must be spmspv|bfs|mixed");
  }
  if (mode != "closed" && mode != "open") {
    throw std::invalid_argument("loadgen --mode must be closed|open");
  }
  if (alias.empty()) throw std::invalid_argument("pass --alias NAME");

  index_t cols = 0;
  {
    serve::Client probe;
    std::string err;
    if (!probe.connect(socket, &err)) {
      std::fprintf(stderr, "cannot connect to %s: %s\n", socket.c_str(),
                   err.c_str());
      return 1;
    }
    cols = remote_cols(probe, alias);
  }

  std::mutex agg_mu;
  obs::LatencyHistogram hist;
  long errors = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (long wi = 0; wi < conc; ++wi) {
    workers.emplace_back([&, wi] {
      serve::Client c;
      std::string err;
      if (!c.connect(socket, &err)) {
        std::lock_guard<std::mutex> g(agg_mu);
        errors += (count / conc) + 1;
        return;
      }
      obs::LatencyHistogram local;
      long local_errors = 0;
      for (long i = wi; i < count; i += conc) {
        const std::string one =
            (op == "mixed") ? ((i % 2 == 0) ? "spmspv" : "bfs") : op;
        std::string req;
        try {
          req = build_request(one, args, cols,
                              static_cast<unsigned>(i + 1));
        } catch (const std::exception&) {
          ++local_errors;
          continue;
        }
        if (mode == "open") {
          // Global schedule: request i fires at t0 + i/rate seconds.
          const auto due =
              t0 + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           static_cast<double>(i) / rate));
          std::this_thread::sleep_until(due);
        }
        const auto rt0 = std::chrono::steady_clock::now();
        std::string resp;
        const bool ok = c.request(req, &resp, &err) &&
                        resp.rfind("{\"ok\":true", 0) == 0;
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - rt0)
                              .count();
        local.add(ms);
        if (!ok) ++local_errors;
      }
      std::lock_guard<std::mutex> g(agg_mu);
      for (const auto& b : local.nonzero_bins()) {
        for (std::uint64_t k = 0; k < b.count; ++k) hist.add(b.lo_ms);
      }
      errors += local_errors;
    });
  }
  for (auto& t : workers) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  const double thru =
      wall_s > 0.0 ? static_cast<double>(count) / wall_s : 0.0;
  std::printf("loadgen: op=%s mode=%s count=%ld concurrency=%ld\n",
              op.c_str(), mode.c_str(), count, conc);
  std::printf("  wall %.3f s, %.1f req/s, errors %ld\n", wall_s, thru,
              errors);
  std::printf("  latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n",
              hist.percentile(50.0), hist.percentile(95.0),
              hist.percentile(99.0));
  metrics.put_str("loadgen.op", op);
  metrics.put_str("loadgen.mode", mode);
  metrics.put_int("loadgen.count", count);
  metrics.put_int("loadgen.concurrency", conc);
  metrics.put_int("loadgen.errors", errors);
  metrics.put_double("loadgen.wall_s", wall_s);
  metrics.put_double("loadgen.req_per_s", thru);
  metrics.put_double("loadgen.p50_ms", hist.percentile(50.0));
  metrics.put_double("loadgen.p95_ms", hist.percentile(95.0));
  metrics.put_double("loadgen.p99_ms", hist.percentile(99.0));
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto pos = args.positional();
  const std::string cmd = pos.empty() ? "" : pos[0];
  // One union list across subcommands: the guard exists to catch typos
  // (a misspelled --metrics silently dropped its output before), not to
  // police which subcommand a valid flag belongs to.
  const std::string bad_flag = args.first_unknown_flag(
      {"--matrix", "--suite", "--nt", "--sparsity", "--seed", "--iters",
       "--source", "--seed-vertex", "--alpha", "--epsilon", "--top",
       "--compare", "--verbose", "--json", "--metrics", "--trace",
       "--profile", "--socket", "--alias", "--op", "--count", "--mode",
       "--rate", "--concurrency", "--batch-k", "--deadline-ms", "--cache-mb",
       "--threads", "--timeout-ms", "--out", "--extract", "--graph",
       "--transpose", "--file", "--shards"});
  if (!bad_flag.empty()) {
    std::fprintf(stderr,
                 "error: unknown flag '%s' (see usage below)\n",
                 bad_flag.c_str());
    std::fprintf(stderr,
                 "usage: tilespmspv_cli "
                 "{list|tiles|stats|advise|spmspv|bfs|sssp|cc|ppr|convert|"
                 "mapcheck|client|loadgen} (--matrix F.mtx | --suite NAME) "
                 "[options]\n");
    return 2;
  }
  std::string metrics_path, trace_path;
  try {
    metrics_path = args.get("--metrics");
    trace_path = args.get("--trace");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  obs::MetricsRegistry metrics;
  metrics.put_str("command", cmd);
  // --profile needs span recording too: its table aggregates the same
  // spans --trace would export.
  if (!trace_path.empty() || args.has("--profile")) obs::trace_enable();

  int rc = 2;
  bool dispatched = true;
  try {
    if (cmd == "list") {
      rc = cmd_list();
    } else if (cmd == "tiles") {
      rc = cmd_tiles(args, metrics);
    } else if (cmd == "stats") {
      rc = cmd_stats(args);
    } else if (cmd == "advise") {
      rc = cmd_advise(args);
    } else if (cmd == "spmspv") {
      rc = cmd_spmspv(args, metrics);
    } else if (cmd == "bfs") {
      rc = cmd_bfs(args, metrics);
    } else if (cmd == "sssp") {
      rc = cmd_sssp(args);
    } else if (cmd == "cc") {
      rc = cmd_cc(args);
    } else if (cmd == "ppr") {
      rc = cmd_ppr(args);
    } else if (cmd == "convert") {
      rc = cmd_convert(args, metrics);
    } else if (cmd == "mapcheck") {
      rc = cmd_mapcheck(args, metrics);
    } else if (cmd == "client") {
      rc = cmd_client(args);
    } else if (cmd == "loadgen") {
      rc = cmd_loadgen(args, metrics);
    } else {
      dispatched = false;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (!dispatched) {
    std::fprintf(stderr,
                 "usage: tilespmspv_cli "
                 "{list|tiles|stats|advise|spmspv|bfs|sssp|cc|ppr|convert|"
                 "mapcheck} "
                 "(--matrix F.mtx | --suite NAME) [options]\n"
                 "global options: [--json] [--metrics PATH] [--trace PATH] "
                 "[--profile]\n");
    return 2;
  }

  const obs::CounterSnapshot snap = obs::counters_snapshot();
  if (args.has("--profile")) print_profile(snap);
  if (!trace_path.empty()) {
    obs::trace_disable();
    if (!obs::trace_write_chrome_json_file(trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_path.c_str());
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    metrics.add_counters(snap);
    if (!metrics.write_file(metrics_path)) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
  }
  return rc;
}
