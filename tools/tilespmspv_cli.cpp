// tilespmspv_cli — command-line front end for the library, so a user can
// exercise SpMSpV, BFS, SSSP and the tiled-format statistics on their own
// Matrix Market files (or on the built-in synthetic suite) without
// writing code.
//
//   tilespmspv_cli tiles  (--matrix F.mtx | --suite NAME) [--nt 16]
//   tilespmspv_cli spmspv (--matrix F.mtx | --suite NAME)
//                         [--sparsity 0.01] [--seed 1] [--iters 5]
//                         [--compare]
//   tilespmspv_cli bfs    (--matrix F.mtx | --suite NAME)
//                         [--source -1 (max degree)] [--compare]
//   tilespmspv_cli sssp   (--matrix F.mtx | --suite NAME) [--source 0]
//   tilespmspv_cli list   (names of built-in suite matrices)
#include <cstdio>
#include <iostream>

#include "apps/connected_components.hpp"
#include "apps/ppr.hpp"
#include "apps/sssp.hpp"
#include "tile/format_advisor.hpp"
#include "tile/tile_stats.hpp"
#include "baselines/csr_spmv.hpp"
#include "baselines/serial_bfs.hpp"
#include "bfs/tile_bfs.hpp"
#include "core/spmspv.hpp"
#include "formats/mm_io.hpp"
#include "gen/suite.hpp"
#include "gen/vector_gen.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace tilespmspv;

namespace {

Csr<value_t> load_matrix(const Args& args) {
  const std::string file = args.get("--matrix");
  if (!file.empty()) {
    return Csr<value_t>::from_coo(read_matrix_market_file(file));
  }
  const std::string name = args.get("--suite");
  if (!name.empty()) {
    return Csr<value_t>::from_coo(suite_matrix(name));
  }
  throw std::invalid_argument("pass --matrix FILE.mtx or --suite NAME");
}

int cmd_list() {
  Table t({"name", "description"});
  for (const auto& name : suite_all_names()) {
    t.add_row({name, suite_description(name)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_tiles(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  const auto nt = static_cast<index_t>(args.get_int("--nt", 16));
  std::printf("matrix: %d x %d, %lld nonzeros\n", a.rows, a.cols,
              static_cast<long long>(a.nnz()));
  Table t({"extract threshold", "tiles kept", "nnz in tiles",
           "nnz extracted", "tile occupancy"});
  for (index_t threshold : {0, 1, 2, 4, 8}) {
    const TileMatrix<value_t> m =
        TileMatrix<value_t>::from_csr(a, nt, threshold);
    t.add_row({std::to_string(threshold), fmt_count(m.num_tiles()),
               fmt_count(m.tiled_nnz()), fmt_count(m.extracted.nnz()),
               fmt(100.0 * m.tile_occupancy(), 4) + "%"});
  }
  t.print(std::cout);
  return 0;
}

int cmd_stats(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  std::printf("matrix: %d x %d, %lld nonzeros\n", a.rows, a.cols,
              static_cast<long long>(a.nnz()));
  Table t({"nt", "non-empty tiles", "occupancy", "avg nnz/tile",
           "max nnz/tile", "tiles nnz<=2", "max tiles/row-tile"});
  for (index_t nt : {16, 32, 64}) {
    const TileStats s = tile_stats(a, nt);
    t.add_row({std::to_string(nt), fmt_count(s.nonempty_tiles),
               fmt(100.0 * s.occupancy, 4) + "%", fmt(s.avg_nnz_per_tile, 1),
               fmt_count(s.max_nnz_per_tile), fmt_count(s.tiles_le2),
               fmt_count(s.max_row_tiles)});
  }
  t.print(std::cout);
  // nnz-per-tile histogram at the default tile size.
  const TileStats s = tile_stats(a, 16);
  std::printf("\nnnz-per-tile histogram (nt=16):\n");
  for (std::size_t b = 0; b < s.nnz_histogram.size(); ++b) {
    if (s.nnz_histogram[b] == 0) continue;
    std::printf("  [%4lld, %4lld): %s\n",
                static_cast<long long>(1LL << b),
                static_cast<long long>(2LL << b),
                fmt_count(s.nnz_histogram[b]).c_str());
  }
  return 0;
}

int cmd_advise(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  const FormatAdvice advice = advise_format(a);
  const TileStats s = tile_stats(a, 16);
  std::printf("matrix: %d x %d, %lld nonzeros; avg %.1f nnz per non-empty "
              "16x16 tile\n",
              a.rows, a.cols, static_cast<long long>(a.nnz()),
              s.avg_nnz_per_tile);
  std::printf("recommended storage : %s\n", to_string(advice.family));
  if (advice.family == StorageFamily::kTiled) {
    std::printf("  tile size         : %d\n", advice.nt);
    std::printf("  intra-tile layout : %s\n", to_string(advice.layout));
    std::printf("  extract threshold : %d\n", advice.extract_threshold);
  }
  std::printf("rationale: %s\n", advice.rationale);
  return 0;
}

int cmd_spmspv(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  const double sparsity = args.get_double("--sparsity", 0.01);
  const auto seed = static_cast<std::uint64_t>(args.get_int("--seed", 1));
  const int iters = static_cast<int>(args.get_int("--iters", 5));

  SpmspvConfig cfg;
  cfg.nt = static_cast<index_t>(args.get_int("--nt", 16));
  Timer prep;
  SpmspvOperator<value_t> op(a, cfg);
  const double prep_ms = prep.elapsed_ms();

  const SparseVec<value_t> x = gen_sparse_vector(a.cols, sparsity, seed);
  const TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, cfg.nt);
  const double ms = time_best_ms([&] { (void)op.multiply(xt); }, iters);
  SparseVec<value_t> y = op.multiply(xt);

  std::printf("matrix %d x %d (%lld nnz); x: %d nonzeros (sparsity %g)\n",
              a.rows, a.cols, static_cast<long long>(a.nnz()), x.nnz(),
              sparsity);
  std::printf("kernel: %s\n",
              op.select(xt) == SpmspvKernel::kCsc ? "CSC (vector-driven)"
                                                  : "CSR (matrix-driven)");
  std::printf("preprocess %.3f ms; multiply %.4f ms (best of %d); |y| = %d\n",
              prep_ms, ms, iters, y.nnz());
  if (args.has("--compare")) {
    const SparseVec<value_t> ref = csr_spmv(a, x);
    std::printf("matches dense-vector SpMV: %s\n",
                approx_equal(y, ref) ? "yes" : "NO");
  }
  return 0;
}

int cmd_bfs(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  if (a.rows != a.cols) {
    std::fprintf(stderr, "bfs requires a square matrix\n");
    return 1;
  }
  index_t source = static_cast<index_t>(args.get_int("--source", -1));
  if (source < 0) {
    index_t best_deg = -1;
    for (index_t v = 0; v < a.rows; ++v) {
      if (a.row_nnz(v) > best_deg) {
        best_deg = a.row_nnz(v);
        source = v;
      }
    }
  }
  TileBfs bfs(a);
  const BfsResult r = bfs.run(source);
  std::printf("n=%d, edges=%lld, tile size %d, %d tiles, preprocess %.2f ms\n",
              a.rows, static_cast<long long>(bfs.edges()), bfs.tile_size(),
              bfs.num_tiles(), bfs.preprocess_ms());
  std::printf("BFS from %d: %d vertices in %zu levels, %.3f ms\n", source,
              r.visited_count(), r.iterations.size(), r.total_ms);
  if (args.has("--verbose")) {
    for (const auto& it : r.iterations) {
      std::printf("  level %3d  %-8s frontier %8d  unvisited %8d  %.4f ms\n",
                  it.level, bfs_kernel_name(it.kernel), it.frontier_size,
                  it.unvisited, it.ms);
    }
  }
  if (args.has("--compare")) {
    const auto expect = serial_bfs(a, source);
    std::printf("matches serial BFS: %s\n",
                r.levels == expect ? "yes" : "NO");
  }
  return 0;
}

int cmd_sssp(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  const auto source = static_cast<index_t>(args.get_int("--source", 0));
  Timer t;
  const SsspResult r = sssp(a, source);
  index_t reached = 0;
  double max_dist = 0.0;
  for (double d : r.dist) {
    if (!std::isinf(d)) {
      ++reached;
      max_dist = std::max(max_dist, d);
    }
  }
  std::printf(
      "SSSP from %d: reached %d of %d vertices in %d rounds, %.2f ms; "
      "max distance %.4f\n",
      source, reached, a.rows, r.rounds, t.elapsed_ms(), max_dist);
  return 0;
}

int cmd_cc(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  if (a.rows != a.cols) {
    std::fprintf(stderr, "cc requires a square (undirected) matrix\n");
    return 1;
  }
  Timer t;
  const ComponentsResult r = connected_components(a);
  // Component size distribution (largest few).
  std::vector<index_t> sizes(r.count, 0);
  for (index_t c : r.component) {
    if (c >= 0) ++sizes[c];
  }
  std::sort(sizes.rbegin(), sizes.rend());
  std::printf("%d components in %.2f ms; largest: ", r.count,
              t.elapsed_ms());
  for (index_t i = 0; i < std::min<index_t>(5, r.count); ++i) {
    std::printf("%s%d", i ? ", " : "", sizes[i]);
  }
  std::printf("\n");
  return 0;
}

int cmd_ppr(const Args& args) {
  const Csr<value_t> a = load_matrix(args);
  const auto seed = static_cast<index_t>(args.get_int("--seed-vertex", 0));
  const auto topk = static_cast<index_t>(args.get_int("--top", 10));
  PprConfig cfg;
  cfg.alpha = args.get_double("--alpha", 0.85);
  cfg.epsilon = args.get_double("--epsilon", 1e-7);
  SparseVec<value_t> seeds(a.cols);
  seeds.push(seed, 1.0);
  Timer t;
  const PprResult r = personalized_pagerank(a, seeds, cfg);
  std::printf("PPR from %d: %d iterations, %.2f ms, %d vertices with mass, "
              "%.4g truncated\n",
              seed, r.iterations, t.elapsed_ms(), r.scores.nnz(),
              r.truncated_mass);
  // Top-k scores.
  std::vector<std::pair<value_t, index_t>> ranked;
  for (std::size_t k = 0; k < r.scores.idx.size(); ++k) {
    ranked.emplace_back(r.scores.vals[k], r.scores.idx[k]);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (index_t i = 0; i < std::min<index_t>(topk, ranked.size()); ++i) {
    std::printf("  #%-3d vertex %-8d score %.6f\n", i + 1, ranked[i].second,
                ranked[i].first);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto pos = args.positional();
  const std::string cmd = pos.empty() ? "" : pos[0];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "tiles") return cmd_tiles(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "advise") return cmd_advise(args);
    if (cmd == "spmspv") return cmd_spmspv(args);
    if (cmd == "bfs") return cmd_bfs(args);
    if (cmd == "sssp") return cmd_sssp(args);
    if (cmd == "cc") return cmd_cc(args);
    if (cmd == "ppr") return cmd_ppr(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: tilespmspv_cli "
               "{list|tiles|stats|advise|spmspv|bfs|sssp|cc|ppr} "
               "(--matrix F.mtx | --suite NAME) [options]\n");
  return 2;
}
