#pragma once

#include <functional>

namespace tilespmspv {

// Seeded violation: type-erased callable inside the marked region.
inline int apply(int x) {  // lint:hot-path
  std::function<int(int)> f = [](int v) { return v + 1; };
  return f(x);
}

}  // namespace tilespmspv
