#pragma once

#include <vector>

namespace tilespmspv {

// Seeded violation: container growth inside the marked region.
inline void accumulate(std::vector<int>& out) {  // lint:hot-path
  out.push_back(1);
}

}  // namespace tilespmspv
