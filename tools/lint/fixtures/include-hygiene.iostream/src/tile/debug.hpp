#pragma once

#include <iostream>

namespace tilespmspv {

// Seeded violation: <iostream> in a hot-layer header.
inline void dump(int x) { std::cout << x << "\n"; }

}  // namespace tilespmspv
