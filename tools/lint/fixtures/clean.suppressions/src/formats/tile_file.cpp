// Suppression round-trip: the same tainted pattern the seeded fixtures
// flag, but carrying a lint:gated annotation WITH a written reason — the
// tree must lint clean.
#include <cstdint>

struct TileFileSection {
  std::uint64_t offset = 0;
  std::uint64_t count = 0;
};

double last_val(const TileFileSection& s, const double* vals) {
  // lint:gated(count was validated as bytes / elem_size when the view opened)
  return vals[s.count - 1];
}
