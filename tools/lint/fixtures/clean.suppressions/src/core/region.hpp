#pragma once

namespace tilespmspv {

// Suppression round-trip for the parallel-region rules: a shared write
// carrying lint:owned(<invariant>) and a deliberately-held lock carrying
// lint:allow(lock-discipline), both with written reasons — clean tree.
inline void stamp_progress(double* progress, int n, ThreadPool* pool) {
  parallel_for(n, [&](int i) {
    // lint:owned(single monotone marker; a torn read only skews a stat line)
    progress[0] = i;
  }, pool);
}

inline void hold_slot(unsigned char* lock) {
  spin_lock(lock);  // lint:allow(lock-discipline) released by the paired helper in the caller
}

}  // namespace tilespmspv
