#pragma once

namespace tilespmspv {

// Seeded violation: the fall-through path never releases the lock.
inline void mark_done(unsigned char* lock, int* flags, int i) {
  spin_lock(lock);
  flags[i] = 1;
}

}  // namespace tilespmspv
