#pragma once

namespace tilespmspv {

// Seeded violation: lint:owned with no invariant written between the
// parentheses. The annotation only counts when it states WHY the write
// cannot race.
inline void stamp_progress(double* progress, int n, ThreadPool* pool) {
  parallel_for(n, [&](int i) {
    // lint:owned()
    progress[0] = i;
  }, pool);
}

}  // namespace tilespmspv
