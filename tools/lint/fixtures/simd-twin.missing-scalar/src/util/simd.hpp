#pragma once

namespace simd {

#if defined(__AVX2__)
// Seeded violation: SIMD-tier kernel with no dot4_scalar twin.
inline double dot4(const double* a, const double* b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2] + a[3] * b[3];
}
#endif

}  // namespace simd
