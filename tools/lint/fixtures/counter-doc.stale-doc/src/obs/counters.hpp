#pragma once

namespace tilespmspv {

enum class Counter {
  kTilesScanned,
  kCount,
};

}  // namespace tilespmspv
