#pragma once

namespace tilespmspv {

// Seeded violation: `col` is a *value* loaded from the column array, not a
// partition bound, so counts[col] collides across chunks. Contrast with
// `for (long j = row_ptr[r]; ...)`, which IS owned: row_ptr partitions the
// iteration space, so j stays inside this worker's slice.
inline void column_histogram(const int* cols, const long* row_ptr, int nrows,
                             int* counts, ThreadPool* pool) {
  parallel_for(nrows, [&](int r) {
    for (long j = row_ptr[r]; j < row_ptr[r + 1]; ++j) {
      const int col = cols[j];
      counts[col] += 1;
    }
  }, pool);
}

}  // namespace tilespmspv
