#pragma once

namespace tilespmspv {

enum class Counter {
  kTilesScanned,
  kMissingCase,  // seeded: no case in counter_name()
  kCount,
};

}  // namespace tilespmspv
