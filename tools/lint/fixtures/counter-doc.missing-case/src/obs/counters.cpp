#include "counters.hpp"

namespace tilespmspv {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kTilesScanned: return "tiles_scanned";
    default: return "?";
  }
}

}  // namespace tilespmspv
