#pragma once

namespace tilespmspv {

inline int add(int a, int b) { return a + b; }

}  // namespace tilespmspv
