#pragma once

namespace tilespmspv {

// Seeded violation: the negative-hit path returns with the slot lock still
// held — every later caller deadlocks on this slot.
inline int locked_lookup(int* table, unsigned char* lock, int key) {
  spin_lock(lock);
  const int v = table[key & 63];
  if (v < 0) {
    return -1;
  }
  spin_unlock(lock);
  return v;
}

}  // namespace tilespmspv
