#pragma once

namespace tilespmspv {

enum class Counter {
  kTilesScanned,
  kOrphan,  // seeded: named in counter_name() but absent from the docs table
  kCount,
};

}  // namespace tilespmspv
