// Seeded violation: a lint:gated annotation with nothing between the
// parentheses. Suppressions must carry a written reason; an empty one is
// itself a finding, so reviewers can't wave taint through silently.
#include <cstdint>

struct TileFileSection {
  std::uint64_t offset = 0;
  std::uint64_t count = 0;
};

double last_val(const TileFileSection& s, const double* vals) {
  // lint:gated()
  return vals[s.count - 1];
}
