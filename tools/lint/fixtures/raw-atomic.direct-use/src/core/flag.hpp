#pragma once

#include <atomic>

namespace tilespmspv {

// Seeded violation: raw std::atomic outside parallel/atomics.hpp.
inline bool is_set(std::atomic<int>& a) { return a.load() != 0; }

}  // namespace tilespmspv
