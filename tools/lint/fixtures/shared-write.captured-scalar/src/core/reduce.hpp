#pragma once

#include <cstddef>
#include <vector>

namespace tilespmspv {

// Seeded violation: read-modify-write on a reference-captured accumulator
// from inside the parallel region — every worker races on `total`. The
// fix is a per-slot partial array or parallel_reduce, not a lint:owned.
template <typename T>
T sum_all(const std::vector<T>& xs, ThreadPool* pool) {
  T total{};
  parallel_for(xs.size(), [&](std::size_t i) {
    total += xs[i];
  }, pool);
  return total;
}

}  // namespace tilespmspv
