// Seeded violation: the PR 9 ungated side_vals read. The header's edge
// count comes straight from mapped bytes and drives a loop over the side
// array without ever being bounded against the file size.
#include <cstdint>

struct TileFileHeader {
  std::uint64_t rows = 0;
  std::uint64_t side_nnz = 0;  // read from the mapped header, never checked
};

double sum_side_vals(const TileFileHeader& h, const double* side_vals) {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < h.side_nnz; ++i) {
    acc += side_vals[i];
  }
  return acc;
}
