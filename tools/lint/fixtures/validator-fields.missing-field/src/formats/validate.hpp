#pragma once

#include "csr.hpp"

namespace tilespmspv {

struct ValidationResult {
  bool ok = true;
};

inline ValidationResult validate_toy_csr(const ToyCsr& m) {
  ValidationResult r;
  if (m.rows < 0) r.ok = false;
  return r;
}

}  // namespace tilespmspv
