#pragma once

namespace tilespmspv {

struct ToyCsr {
  int rows = 0;
  int cols = 0;  // seeded: validate_toy_csr() never looks at this
};

}  // namespace tilespmspv
