#pragma once

namespace simd {

#if defined(__AVX2__)
inline double sum2(const double* a) { return a[0] + a[1]; }
#endif

// The twin exists, but no tests/*fuzz* file exercises the pair — seeded
// twin-fuzz violation.
inline double sum2_scalar(const double* a) { return a[0] + a[1]; }

}  // namespace simd
