// Seeded violation: verbatim reproduction of the PR 9 section-size check.
// The multiplicative form `bytes != count * elem_size` wraps — with
// count = 2^61 and elem_size = 8 the product is 0 mod 2^64, so a section
// claiming zero bytes passes the check and `count` reaches the copy
// unbounded. The division form `count != bytes / elem_size` cannot wrap.
#include <cstdint>
#include <stdexcept>
#include <vector>

struct TileFileSection {
  std::uint32_t id = 0;
  std::uint64_t elem_size = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;  // attacker-controlled: 2^61 wraps the product
};

std::vector<double> load_section_vals(const TileFileSection& s,
                                      const unsigned char* base,
                                      std::uint64_t file_bytes) {
  if (s.offset > file_bytes || s.bytes > file_bytes - s.offset) {
    throw std::runtime_error("section outside file");
  }
  // BUG (the seeded finding): multiplicative check — count stays tainted.
  if (s.elem_size == 0 || s.bytes != s.count * s.elem_size) {
    throw std::runtime_error("section size mismatch");
  }
  const double* p = reinterpret_cast<const double*>(base + s.offset);
  std::vector<double> out;
  out.assign(p, p + s.count);
  return out;
}
