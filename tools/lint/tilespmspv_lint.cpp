// tilespmspv_lint — repo-specific invariant linter.
//
// Generic compilers and clang-tidy cannot see this repo's conventions; this
// tool token-scans the tree and enforces the ones that are load-bearing
// (see docs/STATIC_ANALYSIS.md for the rule catalogue and the annotation
// syntax). Rules:
//
//   simd-twin         every kernel defined under a SIMD-conditional
//                     preprocessor region in util/simd.hpp or
//                     util/bitkernels.hpp has an unconditionally compiled
//                     `*_scalar` twin in the same file
//   twin-fuzz         every twinned kernel pair is exercised against each
//                     other by a tests/*fuzz* file
//   counter-doc       obs counter enum, counter_name() switch, and the
//                     docs/OBSERVABILITY.md counter table stay in sync
//   validator-fields  each formats/validate.hpp validator mentions every
//                     field of the struct it validates
//   hot-path          no heap allocation, container growth, or
//                     std::function inside `// lint:hot-path` regions
//   raw-atomic        no raw std::atomic outside parallel/atomics.hpp
//   include-hygiene   no <iostream> in headers under src/tile, src/core,
//                     src/bfs
//
// Suppressions: `// lint:allow(<rule>)` on the offending line or the line
// directly above waives that rule for that line. A line ENDING with
// `// lint:hot-path` marks the next `{...}` block as a hot-path region; a
// line ending with `// lint:hot-path-file` marks the whole file. Markers
// are end-of-line anchored so prose mentions (like this comment) do not
// open regions.
//
// Modes (mirroring tools/tilespmspv_validate):
//   tilespmspv_lint --root DIR    lint the tree rooted at DIR (default .)
//   tilespmspv_lint --suite DIR   self-check against the seeded-violation
//                                 fixtures under DIR
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;  // root-relative path
  int line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string rel;           // root-relative path, '/' separators
  std::string raw;           // file contents as read
  std::string code;          // comments and string contents blanked
  std::vector<int> line_at;  // line_at[i] = 1-based line of raw[i]
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Replaces comment bodies and string/char-literal contents with spaces,
/// preserving length and newlines so offsets and line numbers survive.
std::string strip_comments_and_strings(const std::string& s) {
  std::string out = s;
  enum class St { Code, Line, Block, Str, Chr } st = St::Code;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char n = i + 1 < s.size() ? s[i + 1] : '\0';
    switch (st) {
      case St::Code:
        if (c == '/' && n == '/') {
          st = St::Line;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::Block;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::Str;
        } else if (c == '\'') {
          st = St::Chr;
        }
        break;
      case St::Line:
        if (c == '\n')
          st = St::Code;
        else
          out[i] = ' ';
        break;
      case St::Block:
        if (c == '*' && n == '/') {
          st = St::Code;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::Str:
        if (c == '\\' && n != '\0') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::Chr:
        if (c == '\\' && n != '\0') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::Code;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

SourceFile load_file(const fs::path& root, const fs::path& p) {
  SourceFile f;
  f.rel = fs::relative(p, root).generic_string();
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  f.raw = ss.str();
  f.code = strip_comments_and_strings(f.raw);
  f.line_at.resize(f.raw.size() + 1);
  int line = 1;
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    f.line_at[i] = line;
    if (f.raw[i] == '\n') ++line;
  }
  f.line_at[f.raw.size()] = line;
  return f;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

/// True when `line` (1-based) or the line above carries
/// `lint:allow(<rule>)` in the raw text.
bool allowed(const std::vector<std::string>& raw_lines, int line,
             const std::string& rule) {
  const std::string tag = "lint:allow(" + rule + ")";
  for (int l = std::max(1, line - 1); l <= line; ++l) {
    if (l <= static_cast<int>(raw_lines.size()) &&
        raw_lines[l - 1].find(tag) != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// True when `line`, trimmed of trailing whitespace, ends with `marker`.
/// Anchoring to end-of-line keeps prose mentions of a marker (docs, the
/// rule catalogue above, string literals in this very file) from opening
/// hot-path regions.
bool ends_with_marker(const std::string& line, const std::string& marker) {
  const std::size_t e = line.find_last_not_of(" \t\r");
  if (e == std::string::npos) return false;
  const std::size_t len = e + 1;
  return len >= marker.size() &&
         line.compare(len - marker.size(), marker.size(), marker) == 0;
}

bool contains_word(const std::string& s, const std::string& w) {
  std::size_t pos = 0;
  while ((pos = s.find(w, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + w.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

std::size_t find_word(const std::string& s, const std::string& w,
                      std::size_t from) {
  std::size_t pos = from;
  while ((pos = s.find(w, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + w.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

/// Position of the brace matching the `{` at `open` in blanked code, or
/// npos when unbalanced.
std::size_t match_brace(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}' && --depth == 0) return i;
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------
// Function-definition scanning (for the twin rules). Good enough for the
// kernel headers' style: free functions whose parameter list is directly
// followed by `{`.
// ---------------------------------------------------------------------

struct FuncDef {
  std::string name;
  int line = 0;
  bool simd_conditional = false;  // defined under a SIMD #if tier
};

const std::set<std::string>& keywords() {
  static const std::set<std::string> k = {
      "if",     "for",    "while",   "switch", "return", "sizeof",
      "catch",  "static", "assert",  "defined", "alignas", "alignof",
      "decltype", "static_assert", "constexpr", "operator"};
  return k;
}

/// True when the preprocessor condition selects a SIMD tier.
bool simd_condition(const std::string& cond) {
  return cond.find("TILESPMSPV_SIMD_") != std::string::npos ||
         cond.find("__AVX2__") != std::string::npos ||
         cond.find("__SSE2__") != std::string::npos ||
         cond.find("__FMA__") != std::string::npos;
}

std::vector<FuncDef> scan_function_defs(const SourceFile& f) {
  std::vector<FuncDef> defs;
  const std::vector<std::string> lines = split_lines(f.code);
  // Per-line SIMD-conditional flag from the preprocessor stack. A group
  // counts as SIMD-conditional once any of its branch conditions names a
  // tier macro — the #else branch of a tier split is still tier-selected.
  std::vector<bool> line_simd(lines.size() + 2, false);
  std::vector<bool> stack;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    std::string t = lines[li];
    const std::size_t h = t.find_first_not_of(" \t");
    bool in_simd = false;
    if (h != std::string::npos && t[h] == '#') {
      const std::string d = t.substr(h + 1);
      if (d.rfind("if", 0) == 0) {
        stack.push_back(simd_condition(d));
      } else if (d.rfind("elif", 0) == 0 && !stack.empty()) {
        stack.back() = stack.back() || simd_condition(d);
      } else if (d.rfind("endif", 0) == 0 && !stack.empty()) {
        stack.pop_back();
      }
      // #else keeps the group's flag.
    }
    for (bool b : stack) in_simd = in_simd || b;
    line_simd[li + 1] = in_simd;  // 1-based
  }

  const std::string& c = f.code;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (c[i] != '(') continue;
    // Identifier directly before '('.
    std::size_t e = i;
    while (e > 0 && std::isspace(static_cast<unsigned char>(c[e - 1]))) --e;
    std::size_t b = e;
    while (b > 0 && ident_char(c[b - 1])) --b;
    if (b == e) continue;
    const std::string name = c.substr(b, e - b);
    if (keywords().count(name)) continue;
    if (b > 0 && (c[b - 1] == '.' || c[b - 1] == ':' ||
                  (b > 1 && c[b - 2] == '-' && c[b - 1] == '>'))) {
      continue;  // member/qualified call, not a definition name
    }
    // Matching ')' then optional qualifiers then '{' => definition.
    int pd = 0;
    std::size_t j = i;
    for (; j < c.size(); ++j) {
      if (c[j] == '(') ++pd;
      if (c[j] == ')' && --pd == 0) break;
    }
    if (j >= c.size()) continue;
    std::size_t k = j + 1;
    while (k < c.size()) {
      while (k < c.size() && std::isspace(static_cast<unsigned char>(c[k])))
        ++k;
      if (c.compare(k, 5, "const") == 0 && !ident_char(c[k + 5])) {
        k += 5;
        continue;
      }
      if (c.compare(k, 8, "noexcept") == 0) {
        k += 8;
        continue;
      }
      break;
    }
    if (k >= c.size() || c[k] != '{') continue;
    FuncDef d;
    d.name = name;
    d.line = f.line_at[b];
    d.simd_conditional = line_simd[static_cast<std::size_t>(d.line)];
    defs.push_back(d);
  }
  return defs;
}

// ---------------------------------------------------------------------
// The linter proper.
// ---------------------------------------------------------------------

struct Tree {
  fs::path root;
  std::vector<SourceFile> files;  // all .hpp/.cpp under src/, tools/, tests/

  const SourceFile* find(const std::string& rel) const {
    for (const SourceFile& f : files) {
      if (f.rel == rel) return &f;
    }
    return nullptr;
  }
};

Tree load_tree(const fs::path& root) {
  Tree t;
  t.root = root;
  for (const char* dir : {"src", "tools", "tests"}) {
    const fs::path d = root / dir;
    if (!fs::exists(d)) continue;
    for (const auto& ent : fs::recursive_directory_iterator(d)) {
      if (!ent.is_regular_file()) continue;
      const std::string ext = ent.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc")
        continue;
      // The linter's own fixture trees are inputs, not part of the tree.
      const std::string rel = fs::relative(ent.path(), root).generic_string();
      if (rel.rfind("tools/lint/fixtures/", 0) == 0) continue;
      t.files.push_back(load_file(root, ent.path()));
    }
  }
  std::sort(t.files.begin(), t.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  return t;
}

void rule_simd_twin(const Tree& t, std::vector<Violation>& out) {
  for (const char* relc : {"src/util/simd.hpp", "src/util/bitkernels.hpp"}) {
    const SourceFile* f = t.find(relc);
    if (!f) continue;
    const std::vector<FuncDef> defs = scan_function_defs(*f);
    const std::vector<std::string> raw_lines = split_lines(f->raw);
    std::set<std::string> all;
    for (const FuncDef& d : defs) all.insert(d.name);
    std::set<std::string> reported;
    for (const FuncDef& d : defs) {
      if (!d.simd_conditional) continue;
      if (d.name.size() > 7 &&
          d.name.compare(d.name.size() - 7, 7, "_scalar") == 0)
        continue;
      if (all.count(d.name + "_scalar")) continue;
      if (allowed(raw_lines, d.line, "simd-twin")) continue;
      if (!reported.insert(d.name).second) continue;
      out.push_back({f->rel, d.line, "simd-twin",
                     "SIMD-tier kernel '" + d.name +
                         "' has no in-binary '" + d.name +
                         "_scalar' twin in this file"});
    }
  }
}

void rule_twin_fuzz(const Tree& t, std::vector<Violation>& out) {
  // Collect the fuzz tests once.
  std::vector<const SourceFile*> fuzz;
  for (const SourceFile& f : t.files) {
    if (f.rel.rfind("tests/", 0) == 0 &&
        f.rel.find("fuzz") != std::string::npos) {
      fuzz.push_back(&f);
    }
  }
  for (const char* relc : {"src/util/simd.hpp", "src/util/bitkernels.hpp"}) {
    const SourceFile* f = t.find(relc);
    if (!f) continue;
    const std::vector<FuncDef> defs = scan_function_defs(*f);
    const std::vector<std::string> raw_lines = split_lines(f->raw);
    std::set<std::string> all;
    for (const FuncDef& d : defs) all.insert(d.name);
    std::set<std::string> checked;
    for (const FuncDef& d : defs) {
      if (!all.count(d.name + "_scalar")) continue;  // not a twinned kernel
      if (!checked.insert(d.name).second) continue;
      if (allowed(raw_lines, d.line, "twin-fuzz")) continue;
      bool active = false, scalar = false;
      for (const SourceFile* tf : fuzz) {
        if (contains_word(tf->code, d.name)) active = true;
        if (contains_word(tf->code, d.name + "_scalar")) scalar = true;
      }
      if (active && scalar) continue;
      out.push_back({f->rel, d.line, "twin-fuzz",
                     "twinned kernel '" + d.name + "' / '" + d.name +
                         "_scalar' is not differentially exercised by any "
                         "tests/*fuzz* file"});
    }
  }
}

void rule_counter_doc(const Tree& t, std::vector<Violation>& out) {
  const SourceFile* hpp = t.find("src/obs/counters.hpp");
  const SourceFile* cpp = t.find("src/obs/counters.cpp");
  if (!hpp || !cpp) return;  // layer absent (e.g. minimal fixtures)

  // Enumerators of `enum class Counter`.
  std::vector<std::pair<std::string, int>> enums;  // (kName, line)
  std::size_t ep = hpp->code.find("enum class Counter");
  if (ep == std::string::npos) return;
  std::size_t open = hpp->code.find('{', ep);
  std::size_t close = open == std::string::npos
                          ? std::string::npos
                          : match_brace(hpp->code, open);
  if (close == std::string::npos) return;
  for (std::size_t i = open; i < close; ++i) {
    if (hpp->code[i] != 'k' || (i > 0 && ident_char(hpp->code[i - 1])))
      continue;
    std::size_t e = i;
    while (e < close && ident_char(hpp->code[e])) ++e;
    const std::string name = hpp->code.substr(i, e - i);
    if (name != "kCount") enums.emplace_back(name, hpp->line_at[i]);
    i = e;
  }

  // counter_name() switch: Counter::kX ... return "x".
  std::map<std::string, std::string> names;  // kX -> "x"
  const std::string& cc = cpp->code;
  const std::string& craw = cpp->raw;
  std::size_t pos = 0;
  while ((pos = cc.find("Counter::k", pos)) != std::string::npos) {
    std::size_t b = pos + 9;  // at 'k'
    std::size_t e = b;
    while (e < cc.size() && ident_char(cc[e])) ++e;
    const std::string enumerator = cc.substr(b, e - b);
    // The string literal is blanked in `code`; read it from raw.
    const std::size_t q1 = craw.find('"', e);
    const std::size_t ret = cc.find("return", e);
    const std::size_t next_case = cc.find("Counter::k", e);
    if (q1 != std::string::npos && ret != std::string::npos &&
        (next_case == std::string::npos || q1 < next_case)) {
      const std::size_t q2 = craw.find('"', q1 + 1);
      if (q2 != std::string::npos) {
        names[enumerator] = craw.substr(q1 + 1, q2 - q1 - 1);
      }
    }
    pos = e;
  }

  const std::vector<std::string> hpp_raw = split_lines(hpp->raw);
  // Docs table.
  const fs::path docp = t.root / "docs" / "OBSERVABILITY.md";
  std::string doc;
  if (fs::exists(docp)) {
    std::ifstream in(docp, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    doc = ss.str();
  }

  for (const auto& [en, line] : enums) {
    if (allowed(hpp_raw, line, "counter-doc")) continue;
    const auto it = names.find(en);
    if (it == names.end()) {
      out.push_back({cpp->rel, 1, "counter-doc",
                     "counter enumerator '" + en +
                         "' has no case in counter_name()"});
      continue;
    }
    if (doc.find("`" + it->second + "`") == std::string::npos) {
      out.push_back({hpp->rel, line, "counter-doc",
                     "counter '" + it->second +
                         "' is not documented in docs/OBSERVABILITY.md"});
    }
  }

  // Stale doc entries: first-column backticked tokens of the counter
  // table must all be live counters.
  std::set<std::string> live;
  for (const auto& [en, nm] : names) live.insert(nm);
  const std::vector<std::string> doc_lines = split_lines(doc);
  bool in_table = false;
  for (std::size_t li = 0; li < doc_lines.size(); ++li) {
    const std::string& l = doc_lines[li];
    if (l.find("| counter |") != std::string::npos) {
      in_table = true;
      continue;
    }
    if (!in_table) continue;
    if (l.empty() || l[0] != '|') {
      in_table = false;
      continue;
    }
    const std::size_t second = l.find('|', 1);
    if (second == std::string::npos) continue;
    const std::string first_col = l.substr(0, second);
    std::size_t q = 0;
    while ((q = first_col.find('`', q)) != std::string::npos) {
      const std::size_t q2 = first_col.find('`', q + 1);
      if (q2 == std::string::npos) break;
      const std::string tok = first_col.substr(q + 1, q2 - q - 1);
      if (!tok.empty() && tok != "counter" && !live.count(tok)) {
        out.push_back({"docs/OBSERVABILITY.md", static_cast<int>(li + 1),
                       "counter-doc",
                       "documented counter '" + tok +
                           "' does not exist in obs/counters.cpp"});
      }
      q = q2 + 1;
    }
  }
}

/// snake_case -> CamelCase ("packed_tile_matrix" -> "PackedTileMatrix").
std::string camel(const std::string& snake) {
  std::string out;
  bool up = true;
  for (char c : snake) {
    if (c == '_') {
      up = true;
    } else {
      out += up ? static_cast<char>(std::toupper(c)) : c;
      up = false;
    }
  }
  return out;
}

struct StructDef {
  const SourceFile* file = nullptr;
  std::vector<std::pair<std::string, int>> fields;  // (name, line)
};

/// Finds `struct <name>` in the tree and token-scans its data members.
bool find_struct(const Tree& t, const std::string& name, StructDef& sd) {
  for (const SourceFile& f : t.files) {
    const std::size_t p = find_word(f.code, "struct " + name, 0);
    std::size_t sp = std::string::npos;
    if (p != std::string::npos) {
      sp = p;
    } else {
      // Allow whitespace variations: locate "struct" then the name.
      std::size_t q = 0;
      while ((q = find_word(f.code, "struct", q)) != std::string::npos) {
        std::size_t r = q + 6;
        while (r < f.code.size() &&
               std::isspace(static_cast<unsigned char>(f.code[r])))
          ++r;
        if (f.code.compare(r, name.size(), name) == 0 &&
            !ident_char(f.code[r + name.size()])) {
          sp = q;
          break;
        }
        q += 6;
      }
    }
    if (sp == std::string::npos) continue;
    const std::size_t open = f.code.find('{', sp);
    if (open == std::string::npos) continue;
    const std::size_t close = match_brace(f.code, open);
    if (close == std::string::npos) continue;
    sd.file = &f;
    // Scan statements at struct depth 1.
    int depth = 0;
    std::string stmt;
    std::size_t stmt_start = open + 1;
    for (std::size_t i = open; i <= close; ++i) {
      const char c = f.code[i];
      if (c == '{') {
        ++depth;
        if (depth == 1) stmt_start = i + 1;
        stmt.clear();
        continue;
      }
      if (c == '}') {
        --depth;
        stmt.clear();
        stmt_start = i + 1;
        continue;
      }
      if (depth != 1) continue;
      if (c == ';') {
        // A data member: no parens (functions), not an alias/assert.
        std::string s = stmt;
        const bool has_paren = s.find('(') != std::string::npos;
        const bool skip = contains_word(s, "using") ||
                          contains_word(s, "typedef") ||
                          contains_word(s, "friend") ||
                          contains_word(s, "static");
        if (!has_paren && !skip) {
          // Identifier before '=' (or end).
          const std::size_t eq = s.find('=');
          std::string head = eq == std::string::npos ? s : s.substr(0, eq);
          std::size_t e = head.size();
          while (e > 0 &&
                 std::isspace(static_cast<unsigned char>(head[e - 1])))
            --e;
          std::size_t b = e;
          while (b > 0 && ident_char(head[b - 1])) --b;
          if (b < e) {
            const std::string fieldname = head.substr(b, e - b);
            if (!fieldname.empty() &&
                !std::isdigit(static_cast<unsigned char>(fieldname[0]))) {
              sd.fields.emplace_back(fieldname, f.line_at[stmt_start]);
            }
          }
        }
        stmt.clear();
        stmt_start = i + 1;
        continue;
      }
      if (stmt.empty() &&
          std::isspace(static_cast<unsigned char>(c))) {
        stmt_start = i + 1;
        continue;
      }
      stmt += c;
    }
    return true;
  }
  return false;
}

void rule_validator_fields(const Tree& t, std::vector<Violation>& out) {
  const SourceFile* v = t.find("src/formats/validate.hpp");
  if (!v) return;
  const std::vector<std::string> vraw = split_lines(v->raw);
  std::size_t pos = 0;
  while ((pos = find_word(v->code, "ValidationResult", pos)) !=
         std::string::npos) {
    std::size_t b = pos + 16;
    while (b < v->code.size() &&
           std::isspace(static_cast<unsigned char>(v->code[b])))
      ++b;
    std::size_t e = b;
    while (e < v->code.size() && ident_char(v->code[e])) ++e;
    const std::string fname = v->code.substr(b, e - b);
    pos = e;
    if (fname.rfind("validate_", 0) != 0) continue;
    const std::size_t paren = v->code.find('(', e);
    if (paren == std::string::npos || v->code[e] != '(') continue;
    const std::size_t open = v->code.find('{', paren);
    if (open == std::string::npos) continue;
    const std::size_t close = match_brace(v->code, open);
    if (close == std::string::npos) continue;
    const std::string body = v->code.substr(open, close - open);
    const int fline = v->line_at[b];
    if (allowed(vraw, fline, "validator-fields")) {
      pos = close;
      continue;
    }
    const std::string struct_name = camel(fname.substr(9));
    StructDef sd;
    if (!find_struct(t, struct_name, sd)) {
      pos = close;
      continue;  // duck-typed helper without a concrete struct
    }
    const std::vector<std::string> sraw = split_lines(sd.file->raw);
    for (const auto& [field, fldline] : sd.fields) {
      if (contains_word(body, field)) continue;
      if (allowed(sraw, fldline, "validator-fields")) continue;
      out.push_back({v->rel, fline, "validator-fields",
                     fname + "() never mentions field '" + field + "' of " +
                         struct_name + " (" + sd.file->rel + ":" +
                         std::to_string(fldline) + ")"});
    }
    pos = close;
  }
}

void rule_hot_path(const Tree& t, std::vector<Violation>& out) {
  static const char* kBanned[] = {
      "new",       "malloc",       "calloc",  "realloc",     "push_back",
      "emplace_back", "emplace",   "resize",  "reserve",     "insert",
      "assign",    "make_unique", "make_shared", "shrink_to_fit"};
  for (const SourceFile& f : t.files) {
    const std::vector<std::string> raw_lines = split_lines(f.raw);
    // Offset of each raw line's first character, for mapping a marker line
    // to the block that follows it.
    std::vector<std::size_t> line_start(raw_lines.size() + 1, 0);
    {
      std::size_t off = 0;
      for (std::size_t li = 0; li < raw_lines.size(); ++li) {
        line_start[li] = off;
        off += raw_lines[li].size() + 1;
      }
      line_start[raw_lines.size()] = f.raw.size();
    }
    std::vector<std::pair<std::size_t, std::size_t>> regions;
    for (std::size_t li = 0; li < raw_lines.size(); ++li) {
      if (ends_with_marker(raw_lines[li], "// lint:hot-path-file")) {
        regions.emplace_back(0, f.code.size());
      } else if (ends_with_marker(raw_lines[li], "// lint:hot-path")) {
        const std::size_t open = f.code.find('{', line_start[li]);
        if (open != std::string::npos) {
          const std::size_t close = match_brace(f.code, open);
          if (close != std::string::npos) regions.emplace_back(open, close);
        }
      }
    }
    for (const auto& [rb, re] : regions) {
      for (const char* w : kBanned) {
        std::size_t p = rb;
        while ((p = find_word(f.code, w, p)) != std::string::npos &&
               p < re) {
          const int line = f.line_at[p];
          if (!allowed(raw_lines, line, "hot-path")) {
            out.push_back({f.rel, line, "hot-path",
                           std::string("'") + w +
                               "' inside a lint:hot-path region (steady "
                               "state must not allocate or type-erase)"});
          }
          p += std::string(w).size();
        }
      }
      // std::function is two tokens; check separately.
      std::size_t p = rb;
      while ((p = f.code.find("std::function", p)) != std::string::npos &&
             p < re) {
        const int line = f.line_at[p];
        if (!allowed(raw_lines, line, "hot-path")) {
          out.push_back({f.rel, line, "hot-path",
                         "'std::function' inside a lint:hot-path region "
                         "(steady state must not allocate or type-erase)"});
        }
        p += 13;
      }
    }
  }
}

void rule_raw_atomic(const Tree& t, std::vector<Violation>& out) {
  for (const SourceFile& f : t.files) {
    if (f.rel.rfind("src/", 0) != 0) continue;
    if (f.rel == "src/parallel/atomics.hpp") continue;
    const std::vector<std::string> raw_lines = split_lines(f.raw);
    std::size_t p = 0;
    while ((p = f.code.find("std::atomic", p)) != std::string::npos) {
      const int line = f.line_at[p];
      if (!allowed(raw_lines, line, "raw-atomic")) {
        out.push_back({f.rel, line, "raw-atomic",
                       "raw std::atomic outside parallel/atomics.hpp — use "
                       "the atomic_* helpers or annotate why not"});
      }
      p += 11;
    }
  }
}

void rule_include_hygiene(const Tree& t, std::vector<Violation>& out) {
  for (const SourceFile& f : t.files) {
    const bool guarded_dir = f.rel.rfind("src/tile/", 0) == 0 ||
                             f.rel.rfind("src/core/", 0) == 0 ||
                             f.rel.rfind("src/bfs/", 0) == 0;
    if (!guarded_dir) continue;
    if (f.rel.size() < 4 || f.rel.compare(f.rel.size() - 4, 4, ".hpp") != 0)
      continue;
    const std::vector<std::string> raw_lines = split_lines(f.raw);
    const std::vector<std::string> lines = split_lines(f.code);
    for (std::size_t li = 0; li < lines.size(); ++li) {
      if (lines[li].find("#include <iostream>") == std::string::npos)
        continue;
      const int line = static_cast<int>(li + 1);
      if (!allowed(raw_lines, line, "include-hygiene")) {
        out.push_back({f.rel, line, "include-hygiene",
                       "<iostream> in a hot-layer header (stream state + "
                       "static init cost in every TU); use <cstdio> in a "
                       ".cpp instead"});
      }
    }
  }
}

std::vector<Violation> lint_tree(const fs::path& root) {
  const Tree t = load_tree(root);
  std::vector<Violation> out;
  rule_simd_twin(t, out);
  rule_twin_fuzz(t, out);
  rule_counter_doc(t, out);
  rule_validator_fields(t, out);
  rule_hot_path(t, out);
  rule_raw_atomic(t, out);
  rule_include_hygiene(t, out);
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  // Overlapping hot-path regions (file marker + block marker) can report
  // the same site twice; keep one.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Violation& a, const Violation& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

int run_suite(const fs::path& fixtures) {
  if (!fs::exists(fixtures)) {
    std::fprintf(stderr, "fixture directory not found: %s\n",
                 fixtures.string().c_str());
    return 2;
  }
  int failures = 0;
  int cases = 0;
  std::vector<fs::path> dirs;
  for (const auto& ent : fs::directory_iterator(fixtures)) {
    if (ent.is_directory()) dirs.push_back(ent.path());
  }
  std::sort(dirs.begin(), dirs.end());
  for (const fs::path& d : dirs) {
    ++cases;
    const std::string fixture = d.filename().string();
    // Expected rule = directory name up to the first '.' ("clean" = none).
    const std::string expect = fixture.substr(0, fixture.find('.'));
    const std::vector<Violation> v = lint_tree(d);
    bool ok;
    if (expect == "clean") {
      ok = v.empty();
    } else {
      ok = !v.empty();
      for (const Violation& x : v) ok = ok && x.rule == expect;
    }
    std::printf("  %-28s %s (%zu finding%s)\n", fixture.c_str(),
                ok ? "PASS" : "FAIL", v.size(), v.size() == 1 ? "" : "s");
    if (!ok) {
      ++failures;
      for (const Violation& x : v) {
        std::printf("      %s:%d: [%s] %s\n", x.file.c_str(), x.line,
                    x.rule.c_str(), x.message.c_str());
      }
      if (v.empty() && expect != "clean") {
        std::printf("      expected at least one '%s' finding, got none\n",
                    expect.c_str());
      }
    }
  }
  std::printf("lint suite: %d/%d fixtures behaved as seeded\n",
              cases - failures, cases);
  return failures == 0 && cases > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path suite;
  bool suite_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (a == "--suite" && i + 1 < argc) {
      suite_mode = true;
      suite = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: tilespmspv_lint [--root DIR] | --suite FIXTURE_DIR\n"
          "Lints the TileSpMSpV tree for repo-specific invariants\n"
          "(see docs/STATIC_ANALYSIS.md). Exit 0 clean, 1 findings.\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 2;
    }
  }
  if (suite_mode) return run_suite(suite);
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "no src/ under --root %s — wrong directory?\n",
                 root.string().c_str());
    return 2;
  }
  const std::vector<Violation> v = lint_tree(root);
  for (const Violation& x : v) {
    std::printf("%s:%d: [%s] %s\n", x.file.c_str(), x.line, x.rule.c_str(),
                x.message.c_str());
  }
  if (v.empty()) {
    std::printf("tilespmspv_lint: tree is clean\n");
    return 0;
  }
  std::printf("tilespmspv_lint: %zu finding%s\n", v.size(),
              v.size() == 1 ? "" : "s");
  return 1;
}
