// tilespmspv_lint — repo-specific invariant analyzer.
//
// Generic compilers and clang-tidy cannot see this repo's conventions; this
// tool analyzes the tree and enforces the ones that are load-bearing
// (see docs/STATIC_ANALYSIS.md for the rule catalogue and the annotation
// syntax). It runs in two stages: a shared lexer/scope-tracker front end
// (tokenizer, function-body extraction, member-access-chain keys) feeding
// per-rule passes. Rules:
//
//   simd-twin         every kernel defined under a SIMD-conditional
//                     preprocessor region in util/simd.hpp or
//                     util/bitkernels.hpp has an unconditionally compiled
//                     `*_scalar` twin in the same file
//   twin-fuzz         every twinned kernel pair is exercised against each
//                     other by a tests/*fuzz* file
//   counter-doc       obs counter enum, counter_name() switch, and the
//                     docs/OBSERVABILITY.md counter table stay in sync
//   validator-fields  each formats/validate.hpp validator mentions every
//                     field of the struct it validates
//   hot-path          no heap allocation, container growth, or
//                     std::function inside `// lint:hot-path` regions
//   raw-atomic        no raw std::atomic outside parallel/atomics.hpp
//   include-hygiene   no <iostream> in headers under src/tile, src/core,
//                     src/bfs
//   mapped-taint      flow-aware: values originating in mmapped tile-file
//                     headers/section tables, stream reads, or MatrixMarket
//                     parses (src/formats/, src/serve/) must pass a
//                     recognized gate before being used as an index, loop
//                     bound, allocation size, or memcpy/reinterpret_cast
//                     extent
//   shared-write      flow-aware: inside parallel_for / parallel_ranges /
//                     parallel_shard_ranges lambda bodies, writes through
//                     reference-captured state must be per-slot
//                     disambiguated, lock-protected, or annotated
//   lock-discipline   spin_lock/spin_unlock balance per scope; no early
//                     return/throw while a spin lock is held
//
// Suppressions: `// lint:allow(<rule>)` on the offending line or the line
// directly above waives that rule for that line. `// lint:gated(<why>)`
// marks a value as validated elsewhere for mapped-taint, and
// `// lint:owned(<invariant>)` marks a parallel-region write as
// race-free for shared-write — both REQUIRE a non-empty reason between
// the parentheses. A line ENDING with `// lint:hot-path` marks the next
// `{...}` block as a hot-path region; a line ending with
// `// lint:hot-path-file` marks the whole file. Markers are end-of-line
// anchored so prose mentions (like this comment) do not open regions.
//
// Modes (mirroring tools/tilespmspv_validate):
//   tilespmspv_lint --root DIR    lint the tree rooted at DIR (default .)
//   tilespmspv_lint --suite DIR   self-check against the seeded-violation
//                                 fixtures under DIR
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;  // root-relative path
  int line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string rel;           // root-relative path, '/' separators
  std::string raw;           // file contents as read
  std::string code;          // comments and string contents blanked
  std::vector<int> line_at;  // line_at[i] = 1-based line of raw[i]
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Replaces comment bodies and string/char-literal contents with spaces,
/// preserving length and newlines so offsets and line numbers survive.
std::string strip_comments_and_strings(const std::string& s) {
  std::string out = s;
  enum class St { Code, Line, Block, Str, Chr } st = St::Code;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char n = i + 1 < s.size() ? s[i + 1] : '\0';
    switch (st) {
      case St::Code:
        if (c == '/' && n == '/') {
          st = St::Line;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::Block;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::Str;
        } else if (c == '\'') {
          st = St::Chr;
        }
        break;
      case St::Line:
        if (c == '\n')
          st = St::Code;
        else
          out[i] = ' ';
        break;
      case St::Block:
        if (c == '*' && n == '/') {
          st = St::Code;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::Str:
        if (c == '\\' && n != '\0') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::Chr:
        if (c == '\\' && n != '\0') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::Code;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

SourceFile load_file(const fs::path& root, const fs::path& p) {
  SourceFile f;
  f.rel = fs::relative(p, root).generic_string();
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  f.raw = ss.str();
  f.code = strip_comments_and_strings(f.raw);
  f.line_at.resize(f.raw.size() + 1);
  int line = 1;
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    f.line_at[i] = line;
    if (f.raw[i] == '\n') ++line;
  }
  f.line_at[f.raw.size()] = line;
  return f;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

/// True when `line` (1-based) or the line above carries
/// `lint:allow(<rule>)` in the raw text.
bool allowed(const std::vector<std::string>& raw_lines, int line,
             const std::string& rule) {
  const std::string tag = "lint:allow(" + rule + ")";
  for (int l = std::max(1, line - 1); l <= line; ++l) {
    if (l <= static_cast<int>(raw_lines.size()) &&
        raw_lines[l - 1].find(tag) != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// True when `line`, trimmed of trailing whitespace, ends with `marker`.
/// Anchoring to end-of-line keeps prose mentions of a marker (docs, the
/// rule catalogue above, string literals in this very file) from opening
/// hot-path regions.
bool ends_with_marker(const std::string& line, const std::string& marker) {
  const std::size_t e = line.find_last_not_of(" \t\r");
  if (e == std::string::npos) return false;
  const std::size_t len = e + 1;
  return len >= marker.size() &&
         line.compare(len - marker.size(), marker.size(), marker) == 0;
}

bool contains_word(const std::string& s, const std::string& w) {
  std::size_t pos = 0;
  while ((pos = s.find(w, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + w.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

std::size_t find_word(const std::string& s, const std::string& w,
                      std::size_t from) {
  std::size_t pos = from;
  while ((pos = s.find(w, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + w.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

/// Position of the brace matching the `{` at `open` in blanked code, or
/// npos when unbalanced.
std::size_t match_brace(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}' && --depth == 0) return i;
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------
// Function-definition scanning (for the twin rules). Good enough for the
// kernel headers' style: free functions whose parameter list is directly
// followed by `{`.
// ---------------------------------------------------------------------

struct FuncDef {
  std::string name;
  int line = 0;
  bool simd_conditional = false;  // defined under a SIMD #if tier
};

const std::set<std::string>& keywords() {
  static const std::set<std::string> k = {
      "if",     "for",    "while",   "switch", "return", "sizeof",
      "catch",  "static", "assert",  "defined", "alignas", "alignof",
      "decltype", "static_assert", "constexpr", "operator"};
  return k;
}

/// True when the preprocessor condition selects a SIMD tier.
bool simd_condition(const std::string& cond) {
  return cond.find("TILESPMSPV_SIMD_") != std::string::npos ||
         cond.find("__AVX2__") != std::string::npos ||
         cond.find("__SSE2__") != std::string::npos ||
         cond.find("__FMA__") != std::string::npos;
}

std::vector<FuncDef> scan_function_defs(const SourceFile& f) {
  std::vector<FuncDef> defs;
  const std::vector<std::string> lines = split_lines(f.code);
  // Per-line SIMD-conditional flag from the preprocessor stack. A group
  // counts as SIMD-conditional once any of its branch conditions names a
  // tier macro — the #else branch of a tier split is still tier-selected.
  std::vector<bool> line_simd(lines.size() + 2, false);
  std::vector<bool> stack;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    std::string t = lines[li];
    const std::size_t h = t.find_first_not_of(" \t");
    bool in_simd = false;
    if (h != std::string::npos && t[h] == '#') {
      const std::string d = t.substr(h + 1);
      if (d.rfind("if", 0) == 0) {
        stack.push_back(simd_condition(d));
      } else if (d.rfind("elif", 0) == 0 && !stack.empty()) {
        stack.back() = stack.back() || simd_condition(d);
      } else if (d.rfind("endif", 0) == 0 && !stack.empty()) {
        stack.pop_back();
      }
      // #else keeps the group's flag.
    }
    for (bool b : stack) in_simd = in_simd || b;
    line_simd[li + 1] = in_simd;  // 1-based
  }

  const std::string& c = f.code;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (c[i] != '(') continue;
    // Identifier directly before '('.
    std::size_t e = i;
    while (e > 0 && std::isspace(static_cast<unsigned char>(c[e - 1]))) --e;
    std::size_t b = e;
    while (b > 0 && ident_char(c[b - 1])) --b;
    if (b == e) continue;
    const std::string name = c.substr(b, e - b);
    if (keywords().count(name)) continue;
    if (b > 0 && (c[b - 1] == '.' || c[b - 1] == ':' ||
                  (b > 1 && c[b - 2] == '-' && c[b - 1] == '>'))) {
      continue;  // member/qualified call, not a definition name
    }
    // Matching ')' then optional qualifiers then '{' => definition.
    int pd = 0;
    std::size_t j = i;
    for (; j < c.size(); ++j) {
      if (c[j] == '(') ++pd;
      if (c[j] == ')' && --pd == 0) break;
    }
    if (j >= c.size()) continue;
    std::size_t k = j + 1;
    while (k < c.size()) {
      while (k < c.size() && std::isspace(static_cast<unsigned char>(c[k])))
        ++k;
      if (c.compare(k, 5, "const") == 0 && !ident_char(c[k + 5])) {
        k += 5;
        continue;
      }
      if (c.compare(k, 8, "noexcept") == 0) {
        k += 8;
        continue;
      }
      break;
    }
    if (k >= c.size() || c[k] != '{') continue;
    FuncDef d;
    d.name = name;
    d.line = f.line_at[b];
    d.simd_conditional = line_simd[static_cast<std::size_t>(d.line)];
    defs.push_back(d);
  }
  return defs;
}

// ---------------------------------------------------------------------
// The linter proper.
// ---------------------------------------------------------------------

struct Tree {
  fs::path root;
  std::vector<SourceFile> files;  // all .hpp/.cpp under src/, tools/, tests/

  const SourceFile* find(const std::string& rel) const {
    for (const SourceFile& f : files) {
      if (f.rel == rel) return &f;
    }
    return nullptr;
  }
};

Tree load_tree(const fs::path& root) {
  Tree t;
  t.root = root;
  for (const char* dir : {"src", "tools", "tests"}) {
    const fs::path d = root / dir;
    if (!fs::exists(d)) continue;
    for (const auto& ent : fs::recursive_directory_iterator(d)) {
      if (!ent.is_regular_file()) continue;
      const std::string ext = ent.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc")
        continue;
      // The linter's own fixture trees are inputs, not part of the tree.
      const std::string rel = fs::relative(ent.path(), root).generic_string();
      if (rel.rfind("tools/lint/fixtures/", 0) == 0) continue;
      t.files.push_back(load_file(root, ent.path()));
    }
  }
  std::sort(t.files.begin(), t.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  return t;
}

void rule_simd_twin(const Tree& t, std::vector<Violation>& out) {
  for (const char* relc : {"src/util/simd.hpp", "src/util/bitkernels.hpp"}) {
    const SourceFile* f = t.find(relc);
    if (!f) continue;
    const std::vector<FuncDef> defs = scan_function_defs(*f);
    const std::vector<std::string> raw_lines = split_lines(f->raw);
    std::set<std::string> all;
    for (const FuncDef& d : defs) all.insert(d.name);
    std::set<std::string> reported;
    for (const FuncDef& d : defs) {
      if (!d.simd_conditional) continue;
      if (d.name.size() > 7 &&
          d.name.compare(d.name.size() - 7, 7, "_scalar") == 0)
        continue;
      if (all.count(d.name + "_scalar")) continue;
      if (allowed(raw_lines, d.line, "simd-twin")) continue;
      if (!reported.insert(d.name).second) continue;
      out.push_back({f->rel, d.line, "simd-twin",
                     "SIMD-tier kernel '" + d.name +
                         "' has no in-binary '" + d.name +
                         "_scalar' twin in this file"});
    }
  }
}

void rule_twin_fuzz(const Tree& t, std::vector<Violation>& out) {
  // Collect the fuzz tests once.
  std::vector<const SourceFile*> fuzz;
  for (const SourceFile& f : t.files) {
    if (f.rel.rfind("tests/", 0) == 0 &&
        f.rel.find("fuzz") != std::string::npos) {
      fuzz.push_back(&f);
    }
  }
  for (const char* relc : {"src/util/simd.hpp", "src/util/bitkernels.hpp"}) {
    const SourceFile* f = t.find(relc);
    if (!f) continue;
    const std::vector<FuncDef> defs = scan_function_defs(*f);
    const std::vector<std::string> raw_lines = split_lines(f->raw);
    std::set<std::string> all;
    for (const FuncDef& d : defs) all.insert(d.name);
    std::set<std::string> checked;
    for (const FuncDef& d : defs) {
      if (!all.count(d.name + "_scalar")) continue;  // not a twinned kernel
      if (!checked.insert(d.name).second) continue;
      if (allowed(raw_lines, d.line, "twin-fuzz")) continue;
      bool active = false, scalar = false;
      for (const SourceFile* tf : fuzz) {
        if (contains_word(tf->code, d.name)) active = true;
        if (contains_word(tf->code, d.name + "_scalar")) scalar = true;
      }
      if (active && scalar) continue;
      out.push_back({f->rel, d.line, "twin-fuzz",
                     "twinned kernel '" + d.name + "' / '" + d.name +
                         "_scalar' is not differentially exercised by any "
                         "tests/*fuzz* file"});
    }
  }
}

void rule_counter_doc(const Tree& t, std::vector<Violation>& out) {
  const SourceFile* hpp = t.find("src/obs/counters.hpp");
  const SourceFile* cpp = t.find("src/obs/counters.cpp");
  if (!hpp || !cpp) return;  // layer absent (e.g. minimal fixtures)

  // Enumerators of `enum class Counter`.
  std::vector<std::pair<std::string, int>> enums;  // (kName, line)
  std::size_t ep = hpp->code.find("enum class Counter");
  if (ep == std::string::npos) return;
  std::size_t open = hpp->code.find('{', ep);
  std::size_t close = open == std::string::npos
                          ? std::string::npos
                          : match_brace(hpp->code, open);
  if (close == std::string::npos) return;
  for (std::size_t i = open; i < close; ++i) {
    if (hpp->code[i] != 'k' || (i > 0 && ident_char(hpp->code[i - 1])))
      continue;
    std::size_t e = i;
    while (e < close && ident_char(hpp->code[e])) ++e;
    const std::string name = hpp->code.substr(i, e - i);
    if (name != "kCount") enums.emplace_back(name, hpp->line_at[i]);
    i = e;
  }

  // counter_name() switch: Counter::kX ... return "x".
  std::map<std::string, std::string> names;  // kX -> "x"
  const std::string& cc = cpp->code;
  const std::string& craw = cpp->raw;
  std::size_t pos = 0;
  while ((pos = cc.find("Counter::k", pos)) != std::string::npos) {
    std::size_t b = pos + 9;  // at 'k'
    std::size_t e = b;
    while (e < cc.size() && ident_char(cc[e])) ++e;
    const std::string enumerator = cc.substr(b, e - b);
    // The string literal is blanked in `code`; read it from raw.
    const std::size_t q1 = craw.find('"', e);
    const std::size_t ret = cc.find("return", e);
    const std::size_t next_case = cc.find("Counter::k", e);
    if (q1 != std::string::npos && ret != std::string::npos &&
        (next_case == std::string::npos || q1 < next_case)) {
      const std::size_t q2 = craw.find('"', q1 + 1);
      if (q2 != std::string::npos) {
        names[enumerator] = craw.substr(q1 + 1, q2 - q1 - 1);
      }
    }
    pos = e;
  }

  const std::vector<std::string> hpp_raw = split_lines(hpp->raw);
  // Docs table.
  const fs::path docp = t.root / "docs" / "OBSERVABILITY.md";
  std::string doc;
  if (fs::exists(docp)) {
    std::ifstream in(docp, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    doc = ss.str();
  }

  for (const auto& [en, line] : enums) {
    if (allowed(hpp_raw, line, "counter-doc")) continue;
    const auto it = names.find(en);
    if (it == names.end()) {
      out.push_back({cpp->rel, 1, "counter-doc",
                     "counter enumerator '" + en +
                         "' has no case in counter_name()"});
      continue;
    }
    if (doc.find("`" + it->second + "`") == std::string::npos) {
      out.push_back({hpp->rel, line, "counter-doc",
                     "counter '" + it->second +
                         "' is not documented in docs/OBSERVABILITY.md"});
    }
  }

  // Stale doc entries: first-column backticked tokens of the counter
  // table must all be live counters.
  std::set<std::string> live;
  for (const auto& [en, nm] : names) live.insert(nm);
  const std::vector<std::string> doc_lines = split_lines(doc);
  bool in_table = false;
  for (std::size_t li = 0; li < doc_lines.size(); ++li) {
    const std::string& l = doc_lines[li];
    if (l.find("| counter |") != std::string::npos) {
      in_table = true;
      continue;
    }
    if (!in_table) continue;
    if (l.empty() || l[0] != '|') {
      in_table = false;
      continue;
    }
    const std::size_t second = l.find('|', 1);
    if (second == std::string::npos) continue;
    const std::string first_col = l.substr(0, second);
    std::size_t q = 0;
    while ((q = first_col.find('`', q)) != std::string::npos) {
      const std::size_t q2 = first_col.find('`', q + 1);
      if (q2 == std::string::npos) break;
      const std::string tok = first_col.substr(q + 1, q2 - q - 1);
      if (!tok.empty() && tok != "counter" && !live.count(tok)) {
        out.push_back({"docs/OBSERVABILITY.md", static_cast<int>(li + 1),
                       "counter-doc",
                       "documented counter '" + tok +
                           "' does not exist in obs/counters.cpp"});
      }
      q = q2 + 1;
    }
  }
}

/// snake_case -> CamelCase ("packed_tile_matrix" -> "PackedTileMatrix").
std::string camel(const std::string& snake) {
  std::string out;
  bool up = true;
  for (char c : snake) {
    if (c == '_') {
      up = true;
    } else {
      out += up ? static_cast<char>(std::toupper(c)) : c;
      up = false;
    }
  }
  return out;
}

struct StructDef {
  const SourceFile* file = nullptr;
  std::vector<std::pair<std::string, int>> fields;  // (name, line)
};

/// Finds `struct <name>` in the tree and token-scans its data members.
bool find_struct(const Tree& t, const std::string& name, StructDef& sd) {
  for (const SourceFile& f : t.files) {
    const std::size_t p = find_word(f.code, "struct " + name, 0);
    std::size_t sp = std::string::npos;
    if (p != std::string::npos) {
      sp = p;
    } else {
      // Allow whitespace variations: locate "struct" then the name.
      std::size_t q = 0;
      while ((q = find_word(f.code, "struct", q)) != std::string::npos) {
        std::size_t r = q + 6;
        while (r < f.code.size() &&
               std::isspace(static_cast<unsigned char>(f.code[r])))
          ++r;
        if (f.code.compare(r, name.size(), name) == 0 &&
            !ident_char(f.code[r + name.size()])) {
          sp = q;
          break;
        }
        q += 6;
      }
    }
    if (sp == std::string::npos) continue;
    const std::size_t open = f.code.find('{', sp);
    if (open == std::string::npos) continue;
    const std::size_t close = match_brace(f.code, open);
    if (close == std::string::npos) continue;
    sd.file = &f;
    // Scan statements at struct depth 1.
    int depth = 0;
    std::string stmt;
    std::size_t stmt_start = open + 1;
    for (std::size_t i = open; i <= close; ++i) {
      const char c = f.code[i];
      if (c == '{') {
        ++depth;
        if (depth == 1) stmt_start = i + 1;
        stmt.clear();
        continue;
      }
      if (c == '}') {
        --depth;
        stmt.clear();
        stmt_start = i + 1;
        continue;
      }
      if (depth != 1) continue;
      if (c == ';') {
        // A data member: no parens (functions), not an alias/assert.
        std::string s = stmt;
        const bool has_paren = s.find('(') != std::string::npos;
        const bool skip = contains_word(s, "using") ||
                          contains_word(s, "typedef") ||
                          contains_word(s, "friend") ||
                          contains_word(s, "static");
        if (!has_paren && !skip) {
          // Identifier before '=' (or end).
          const std::size_t eq = s.find('=');
          std::string head = eq == std::string::npos ? s : s.substr(0, eq);
          std::size_t e = head.size();
          while (e > 0 &&
                 std::isspace(static_cast<unsigned char>(head[e - 1])))
            --e;
          std::size_t b = e;
          while (b > 0 && ident_char(head[b - 1])) --b;
          if (b < e) {
            const std::string fieldname = head.substr(b, e - b);
            if (!fieldname.empty() &&
                !std::isdigit(static_cast<unsigned char>(fieldname[0]))) {
              sd.fields.emplace_back(fieldname, f.line_at[stmt_start]);
            }
          }
        }
        stmt.clear();
        stmt_start = i + 1;
        continue;
      }
      if (stmt.empty() &&
          std::isspace(static_cast<unsigned char>(c))) {
        stmt_start = i + 1;
        continue;
      }
      stmt += c;
    }
    return true;
  }
  return false;
}

void rule_validator_fields(const Tree& t, std::vector<Violation>& out) {
  const SourceFile* v = t.find("src/formats/validate.hpp");
  if (!v) return;
  const std::vector<std::string> vraw = split_lines(v->raw);
  std::size_t pos = 0;
  while ((pos = find_word(v->code, "ValidationResult", pos)) !=
         std::string::npos) {
    std::size_t b = pos + 16;
    while (b < v->code.size() &&
           std::isspace(static_cast<unsigned char>(v->code[b])))
      ++b;
    std::size_t e = b;
    while (e < v->code.size() && ident_char(v->code[e])) ++e;
    const std::string fname = v->code.substr(b, e - b);
    pos = e;
    if (fname.rfind("validate_", 0) != 0) continue;
    const std::size_t paren = v->code.find('(', e);
    if (paren == std::string::npos || v->code[e] != '(') continue;
    const std::size_t open = v->code.find('{', paren);
    if (open == std::string::npos) continue;
    const std::size_t close = match_brace(v->code, open);
    if (close == std::string::npos) continue;
    const std::string body = v->code.substr(open, close - open);
    const int fline = v->line_at[b];
    if (allowed(vraw, fline, "validator-fields")) {
      pos = close;
      continue;
    }
    const std::string struct_name = camel(fname.substr(9));
    StructDef sd;
    if (!find_struct(t, struct_name, sd)) {
      pos = close;
      continue;  // duck-typed helper without a concrete struct
    }
    const std::vector<std::string> sraw = split_lines(sd.file->raw);
    for (const auto& [field, fldline] : sd.fields) {
      if (contains_word(body, field)) continue;
      if (allowed(sraw, fldline, "validator-fields")) continue;
      out.push_back({v->rel, fline, "validator-fields",
                     fname + "() never mentions field '" + field + "' of " +
                         struct_name + " (" + sd.file->rel + ":" +
                         std::to_string(fldline) + ")"});
    }
    pos = close;
  }
}

void rule_hot_path(const Tree& t, std::vector<Violation>& out) {
  static const char* kBanned[] = {
      "new",       "malloc",       "calloc",  "realloc",     "push_back",
      "emplace_back", "emplace",   "resize",  "reserve",     "insert",
      "assign",    "make_unique", "make_shared", "shrink_to_fit"};
  for (const SourceFile& f : t.files) {
    const std::vector<std::string> raw_lines = split_lines(f.raw);
    // Offset of each raw line's first character, for mapping a marker line
    // to the block that follows it.
    std::vector<std::size_t> line_start(raw_lines.size() + 1, 0);
    {
      std::size_t off = 0;
      for (std::size_t li = 0; li < raw_lines.size(); ++li) {
        line_start[li] = off;
        off += raw_lines[li].size() + 1;
      }
      line_start[raw_lines.size()] = f.raw.size();
    }
    std::vector<std::pair<std::size_t, std::size_t>> regions;
    for (std::size_t li = 0; li < raw_lines.size(); ++li) {
      if (ends_with_marker(raw_lines[li], "// lint:hot-path-file")) {
        regions.emplace_back(0, f.code.size());
      } else if (ends_with_marker(raw_lines[li], "// lint:hot-path")) {
        const std::size_t open = f.code.find('{', line_start[li]);
        if (open != std::string::npos) {
          const std::size_t close = match_brace(f.code, open);
          if (close != std::string::npos) regions.emplace_back(open, close);
        }
      }
    }
    for (const auto& [rb, re] : regions) {
      for (const char* w : kBanned) {
        std::size_t p = rb;
        while ((p = find_word(f.code, w, p)) != std::string::npos &&
               p < re) {
          const int line = f.line_at[p];
          if (!allowed(raw_lines, line, "hot-path")) {
            out.push_back({f.rel, line, "hot-path",
                           std::string("'") + w +
                               "' inside a lint:hot-path region (steady "
                               "state must not allocate or type-erase)"});
          }
          p += std::string(w).size();
        }
      }
      // std::function is two tokens; check separately.
      std::size_t p = rb;
      while ((p = f.code.find("std::function", p)) != std::string::npos &&
             p < re) {
        const int line = f.line_at[p];
        if (!allowed(raw_lines, line, "hot-path")) {
          out.push_back({f.rel, line, "hot-path",
                         "'std::function' inside a lint:hot-path region "
                         "(steady state must not allocate or type-erase)"});
        }
        p += 13;
      }
    }
  }
}

void rule_raw_atomic(const Tree& t, std::vector<Violation>& out) {
  for (const SourceFile& f : t.files) {
    if (f.rel.rfind("src/", 0) != 0) continue;
    if (f.rel == "src/parallel/atomics.hpp") continue;
    const std::vector<std::string> raw_lines = split_lines(f.raw);
    std::size_t p = 0;
    while ((p = f.code.find("std::atomic", p)) != std::string::npos) {
      const int line = f.line_at[p];
      if (!allowed(raw_lines, line, "raw-atomic")) {
        out.push_back({f.rel, line, "raw-atomic",
                       "raw std::atomic outside parallel/atomics.hpp — use "
                       "the atomic_* helpers or annotate why not"});
      }
      p += 11;
    }
  }
}

void rule_include_hygiene(const Tree& t, std::vector<Violation>& out) {
  for (const SourceFile& f : t.files) {
    const bool guarded_dir = f.rel.rfind("src/tile/", 0) == 0 ||
                             f.rel.rfind("src/core/", 0) == 0 ||
                             f.rel.rfind("src/bfs/", 0) == 0;
    if (!guarded_dir) continue;
    if (f.rel.size() < 4 || f.rel.compare(f.rel.size() - 4, 4, ".hpp") != 0)
      continue;
    const std::vector<std::string> raw_lines = split_lines(f.raw);
    const std::vector<std::string> lines = split_lines(f.code);
    for (std::size_t li = 0; li < lines.size(); ++li) {
      if (lines[li].find("#include <iostream>") == std::string::npos)
        continue;
      const int line = static_cast<int>(li + 1);
      if (!allowed(raw_lines, line, "include-hygiene")) {
        out.push_back({f.rel, line, "include-hygiene",
                       "<iostream> in a hot-layer header (stream state + "
                       "static init cost in every TU); use <cstdio> in a "
                       ".cpp instead"});
      }
    }
  }
}

// ---------------------------------------------------------------------
// Stage-1 front end: tokenizer + scope utilities shared by the
// flow-aware rules (mapped-taint, shared-write, lock-discipline).
// ---------------------------------------------------------------------

struct Tok {
  enum Kind { Ident, Num, Punct };
  Kind kind = Punct;
  std::string text;
  std::size_t pos = 0;  // offset into SourceFile::code
};

std::vector<Tok> tokenize(const std::string& c, std::size_t b,
                          std::size_t e) {
  static const char* kMulti[] = {"<<=", ">>=", "->*", "::", "->", "==", "!=",
                                 "<=",  ">=",  "&&",  "||", "++", "--", "+=",
                                 "-=",  "*=",  "/=",  "%=", "&=", "|=", "^=",
                                 "<<",  ">>"};
  std::vector<Tok> out;
  std::size_t i = b;
  while (i < e) {
    const char ch = c[i];
    if (std::isspace(static_cast<unsigned char>(ch))) {
      ++i;
      continue;
    }
    if (ch == '#') {  // preprocessor directive: opaque to the rules
      while (i < e && c[i] != '\n') ++i;
      continue;
    }
    Tok t;
    t.pos = i;
    if (ident_char(ch) && !std::isdigit(static_cast<unsigned char>(ch))) {
      std::size_t j = i;
      while (j < e && ident_char(c[j])) ++j;
      t.kind = Tok::Ident;
      t.text = c.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(ch))) {
      std::size_t j = i;
      while (j < e && (ident_char(c[j]) || c[j] == '.')) ++j;
      t.kind = Tok::Num;
      t.text = c.substr(i, j - i);
      i = j;
    } else {
      t.kind = Tok::Punct;
      bool matched = false;
      for (const char* w : kMulti) {
        const std::size_t n = std::strlen(w);
        if (c.compare(i, n, w) == 0) {
          t.text = w;
          i += n;
          matched = true;
          break;
        }
      }
      if (!matched) {
        t.text = std::string(1, ch);
        ++i;
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

/// Index of the token matching the opener at `i` ("(", "[", or "{"), or
/// toks.size() when unbalanced.
std::size_t tok_match(const std::vector<Tok>& toks, std::size_t i) {
  const std::string& o = toks[i].text;
  const std::string cl = o == "(" ? ")" : o == "[" ? "]" : "}";
  int d = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].text == o)
      ++d;
    else if (toks[j].text == cl && --d == 0)
      return j;
  }
  return toks.size();
}

struct BodySpan {
  std::size_t open = 0;   // offset of '{' in code
  std::size_t close = 0;  // offset of matching '}'
};

/// Maximal function/lambda bodies: every `{...}` directly following a
/// parameter list `)` (allowing const/noexcept/mutable qualifiers, a
/// trailing return type, or a constructor-initializer list), excluding
/// control-flow parens. Bodies nested inside a collected body are not
/// collected again — callers that care about nested lambdas recurse
/// themselves.
std::vector<BodySpan> function_bodies(const std::string& c) {
  std::vector<BodySpan> out;
  std::size_t i = 0;
  while (i < c.size()) {
    if (c[i] != '(') {
      ++i;
      continue;
    }
    // Identifier (or ']' of a lambda introducer) before '('.
    std::size_t e2 = i;
    while (e2 > 0 && std::isspace(static_cast<unsigned char>(c[e2 - 1])))
      --e2;
    std::size_t b2 = e2;
    while (b2 > 0 && ident_char(c[b2 - 1])) --b2;
    const std::string prev = c.substr(b2, e2 - b2);
    static const std::set<std::string> kNotAFunction = {
        "if",     "for",      "while",    "switch",        "catch",
        "return", "sizeof",   "alignof",  "decltype",      "assert",
        "constexpr", "defined", "static_assert", "alignas"};
    if (kNotAFunction.count(prev)) {
      ++i;
      continue;
    }
    int pd = 0;
    std::size_t j = i;
    for (; j < c.size(); ++j) {
      if (c[j] == '(') ++pd;
      else if (c[j] == ')' && --pd == 0) break;
    }
    if (j >= c.size()) {
      ++i;
      continue;
    }
    std::size_t k = j + 1;
    bool ok = true;
    while (k < c.size() && c[k] != '{') {
      if (std::isspace(static_cast<unsigned char>(c[k]))) {
        ++k;
        continue;
      }
      if (c[k] == ';') {
        ok = false;  // declaration, not a definition
        break;
      }
      if (ident_char(c[k])) {
        std::size_t w = k;
        while (w < c.size() && ident_char(c[w])) ++w;
        const std::string word = c.substr(k, w - k);
        if (word == "const" || word == "noexcept" || word == "mutable" ||
            word == "override" || word == "final") {
          k = w;
          continue;
        }
        ok = false;
        break;
      }
      if (c.compare(k, 2, "->") == 0 || c[k] == ':') {
        // Trailing return type or ctor-initializer: scan to the '{' that
        // opens the body (paren depth 0, tracking only round parens).
        int d2 = 0;
        while (k < c.size() && c[k] != ';' && !(d2 == 0 && c[k] == '{')) {
          if (c[k] == '(') ++d2;
          else if (c[k] == ')') --d2;
          ++k;
        }
        continue;
      }
      ok = false;
      break;
    }
    if (!ok || k >= c.size() || c[k] != '{') {
      ++i;
      continue;
    }
    const std::size_t close = match_brace(c, k);
    if (close == std::string::npos) {
      ++i;
      continue;
    }
    out.push_back({k, close});
    i = close + 1;  // maximal bodies only
  }
  return out;
}

/// Reads a member-access chain starting at Ident index `i`
/// ("a.b->c" => "a.b.c"); sets `end` to one past the last token consumed.
std::string read_key(const std::vector<Tok>& t, std::size_t i,
                     std::size_t& end) {
  std::string key = t[i].text;
  std::size_t j = i + 1;
  while (j + 1 < t.size() && (t[j].text == "." || t[j].text == "->") &&
         t[j + 1].kind == Tok::Ident) {
    key += "." + t[j + 1].text;
    j += 2;
  }
  end = j;
  return key;
}

/// True when `line` or the line above carries `lint:<tag>(<reason>)` with
/// a non-empty reason. When the tag is present but the reason is empty,
/// sets `empty_reason` so the caller can demand one.
bool annotated_with_reason(const std::vector<std::string>& raw_lines,
                           int line, const std::string& tag,
                           bool& empty_reason) {
  const std::string needle = "lint:" + tag + "(";
  for (int l = std::max(1, line - 1); l <= line; ++l) {
    if (l > static_cast<int>(raw_lines.size())) continue;
    const std::size_t p = raw_lines[l - 1].find(needle);
    if (p == std::string::npos) continue;
    const std::size_t r = p + needle.size();
    const std::size_t close = raw_lines[l - 1].find(')', r);
    if (close != std::string::npos && close > r) return true;
    empty_reason = true;
  }
  return false;
}

// ---------------------------------------------------------------------
// mapped-taint: values originating in mmapped tile-file headers/section
// tables, stream reads, or MatrixMarket parses are tainted until they
// flow through a recognized gate (a comparison in an if-condition where
// the value is not a multiplication operand, a checked-cast helper, a
// clamp, or an explicit `// lint:gated(<why>)`). Using a tainted value
// as an index, loop bound, allocation size, or memcpy/reinterpret_cast
// extent is a violation. Intra-procedural; flow-sensitive by token
// position; expression keys are textual member-access chains.
// ---------------------------------------------------------------------

const std::set<std::string>& mapped_types() {
  static const std::set<std::string> t = {"TileFileHeader", "TileFileSection",
                                          "MappedTileMatrix"};
  return t;
}

const std::set<std::string>& taint_source_calls() {
  static const std::set<std::string> s = {"read_u32", "read_u64", "read_i64",
                                          "gcount",   "stoll",    "stoull",
                                          "stoul",    "stoi",     "stod"};
  return s;
}

const std::set<std::string>& taint_gate_calls() {
  static const std::set<std::string> g = {"read_index", "require_valid",
                                          "min", "max", "clamp"};
  return g;
}

const std::set<std::string>& taint_sink_calls() {
  static const std::set<std::string> s = {
      "resize", "reserve", "assign", "memcpy",  "memmove", "memset",
      "malloc", "calloc",  "realloc", "fnv1a64", "bind_view", "read"};
  return s;
}

struct TaintScope {
  std::map<std::string, int> state;  // key -> 1 tainted, 2 gated
  std::set<std::string> roots;       // vars of mapped struct types
  std::set<std::string> reported;    // keys already reported in this body

  bool is_tainted(const std::string& key) const {
    // Container/introspection members describe in-memory objects the
    // program built itself, not bytes read from the file.
    static const std::set<std::string> kNeutralTail = {
        "size", "data", "empty", "begin", "end",
        "capacity", "front", "back", "c_str"};
    const std::size_t last_dot = key.rfind('.');
    if (last_dot != std::string::npos &&
        kNeutralTail.count(key.substr(last_dot + 1)))
      return false;
    const auto it = state.find(key);
    if (it != state.end()) return it->second == 1;
    // Field reads off a mapped-struct root are tainted on first use.
    const std::size_t dot = key.find('.');
    return dot != std::string::npos && roots.count(key.substr(0, dot)) > 0;
  }
};

/// Marks every member-access chain in [from, to) as gated, EXCEPT chains
/// that are a direct operand of `*` — a multiplicative comparison like
/// `s.bytes != s.count * s.elem_size` can wrap and does not bound its
/// factors (the PR-9 count=2^61 overflow), whereas the division form
/// `s.count != s.bytes / s.elem_size` does.
void gate_condition_keys(const std::vector<Tok>& t, std::size_t from,
                         std::size_t to, TaintScope& ts) {
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (t[i].kind != Tok::Ident) continue;
    if (i > from && (t[i - 1].text == "." || t[i - 1].text == "->" ||
                     t[i - 1].text == "::"))
      continue;  // mid-chain
    std::size_t end = i;
    const std::string key = read_key(t, i, end);
    const bool mul_before = i > from && t[i - 1].text == "*";
    const bool mul_after = end < to && t[end].text == "*";
    if (!mul_before && !mul_after) ts.state[key] = 2;
    i = end - 1;
  }
}

bool range_has_comparator(const std::vector<Tok>& t, std::size_t from,
                          std::size_t to) {
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    const std::string& x = t[i].text;
    if (x == "==" || x == "!=" || x == "<" || x == ">" || x == "<=" ||
        x == ">=")
      return true;
  }
  return false;
}

void report_taint(const SourceFile& f,
                  const std::vector<std::string>& raw_lines,
                  const std::vector<Tok>& t, std::size_t at,
                  const std::string& key, const std::string& sink,
                  TaintScope& ts, std::vector<Violation>& out) {
  if (!ts.reported.insert(key).second) return;
  const int line = f.line_at[t[at].pos];
  if (allowed(raw_lines, line, "mapped-taint")) return;
  bool empty_reason = false;
  if (annotated_with_reason(raw_lines, line, "gated", empty_reason)) {
    ts.state[key] = 2;  // a justified gate annotation clears the key
    return;
  }
  if (empty_reason) {
    out.push_back({f.rel, line, "mapped-taint",
                   "lint:gated() on tainted '" + key +
                       "' needs a written reason between the parentheses"});
    return;
  }
  out.push_back({f.rel, line, "mapped-taint",
                 "tainted '" + key + "' (from mapped/deserialized bytes) " +
                     sink + " without passing a gate — validate it first "
                     "or annotate lint:gated(<why>)"});
}

/// Scans the argument tokens [from, to) and reports every tainted chain.
void check_sink_args(const SourceFile& f,
                     const std::vector<std::string>& raw_lines,
                     const std::vector<Tok>& t, std::size_t from,
                     std::size_t to, const std::string& sink,
                     TaintScope& ts, std::vector<Violation>& out) {
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (t[i].kind != Tok::Ident) continue;
    if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->" ||
                  t[i - 1].text == "::"))
      continue;
    std::size_t end = i;
    const std::string key = read_key(t, i, end);
    if (ts.is_tainted(key)) report_taint(f, raw_lines, t, i, key, sink, ts, out);
    i = end - 1;
  }
}

/// True when [from, to) contains a call to one of `names`.
bool range_has_call(const std::vector<Tok>& t, std::size_t from,
                    std::size_t to, const std::set<std::string>& names) {
  for (std::size_t i = from; i < to && i + 1 < t.size(); ++i) {
    if (t[i].kind == Tok::Ident && names.count(t[i].text) &&
        t[i + 1].text == "(")
      return true;
  }
  return false;
}

/// True when [from, to) mentions a currently tainted chain.
bool range_has_taint(const std::vector<Tok>& t, std::size_t from,
                     std::size_t to, const TaintScope& ts) {
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (t[i].kind != Tok::Ident) continue;
    if (i > from && (t[i - 1].text == "." || t[i - 1].text == "->" ||
                     t[i - 1].text == "::"))
      continue;
    std::size_t end = i;
    const std::string key = read_key(t, i, end);
    if (ts.is_tainted(key)) return true;
    i = end - 1;
  }
  return false;
}

std::size_t find_tok(const std::vector<Tok>& t, std::size_t from,
                     std::size_t to, const char* text) {
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (t[i].text == text) return i;
  }
  return to;
}

void taint_walk_body(const SourceFile& f,
                     const std::vector<std::string>& raw_lines,
                     const std::vector<Tok>& t, std::size_t from,
                     std::size_t to, TaintScope& ts,
                     std::vector<Violation>& out) {
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    const Tok& tk = t[i];
    if (tk.kind == Tok::Ident) {
      // Mapped-struct declarations establish taint roots.
      if (mapped_types().count(tk.text)) {
        std::size_t j = i + 1;
        while (j < to && (t[j].text == "&" || t[j].text == "*" ||
                          t[j].text == "const" || t[j].text == "&&"))
          ++j;
        if (j < to && t[j].kind == Tok::Ident) ts.roots.insert(t[j].text);
        continue;
      }
      if (tk.text == "if" && i + 1 < to && t[i + 1].text == "(") {
        const std::size_t close = tok_match(t, i + 1);
        if (close < to && range_has_comparator(t, i + 2, close)) {
          gate_condition_keys(t, i + 2, close, ts);
        }
        continue;  // walk proceeds into the condition for sinks/sources
      }
      if ((tk.text == "for" || tk.text == "while") && i + 1 < to &&
          t[i + 1].text == "(") {
        const std::size_t close = tok_match(t, i + 1);
        if (close < to) {
          std::size_t cb = i + 2, ce = close;
          if (tk.text == "for") {
            const std::size_t semi1 = find_tok(t, i + 2, close, ";");
            const std::size_t semi2 =
                semi1 < close ? find_tok(t, semi1 + 1, close, ";") : close;
            // Walk the init segment first so `n = h.count` taints n
            // before the bound check.
            if (semi1 < close)
              taint_walk_body(f, raw_lines, t, i + 2, semi1, ts, out);
            cb = semi1 < close ? semi1 + 1 : close;
            ce = semi2;
          }
          check_sink_args(f, raw_lines, t, cb, ce, "used as a loop bound",
                          ts, out);
        }
        continue;
      }
      // Gate calls: require_valid(x) / read_index(...) as a statement
      // gate every chain they mention.
      if (taint_gate_calls().count(tk.text) && i + 1 < to &&
          t[i + 1].text == "(") {
        const std::size_t close = tok_match(t, i + 1);
        if (close < to) {
          for (std::size_t j = i + 2; j < close; ++j) {
            if (t[j].kind != Tok::Ident) continue;
            if (t[j - 1].text == "." || t[j - 1].text == "->" ||
                t[j - 1].text == "::")
              continue;
            std::size_t e3 = j;
            ts.state[read_key(t, j, e3)] = 2;
            j = e3 - 1;
          }
        }
      }
      // Sink calls.
      if (taint_sink_calls().count(tk.text) && i + 1 < to &&
          t[i + 1].text == "(") {
        const std::size_t close = tok_match(t, i + 1);
        if (close < to) {
          check_sink_args(f, raw_lines, t, i + 2, close,
                          "used as a size/extent in a call to '" + tk.text +
                              "'",
                          ts, out);
        }
      }
      if (tk.text == "reinterpret_cast") {
        const std::size_t lp = find_tok(t, i + 1, to, "(");
        if (lp < to) {
          const std::size_t close = tok_match(t, lp);
          if (close < to) {
            check_sink_args(f, raw_lines, t, lp + 1, close,
                            "used in a reinterpret_cast extent", ts, out);
          }
        }
      }
      continue;
    }
    // Subscript sink: '[' whose left neighbour is an lvalue tail.
    if (tk.text == "[" && i > from &&
        (t[i - 1].kind == Tok::Ident || t[i - 1].text == ")" ||
         t[i - 1].text == "]")) {
      const std::size_t close = tok_match(t, i);
      if (close < to) {
        check_sink_args(f, raw_lines, t, i + 1, close,
                        "used as an array index", ts, out);
      }
      continue;
    }
    // Stream extraction `in >> x >> y` (no '=' earlier in the statement)
    // taints the extracted identifiers.
    if (tk.text == ">>" && i + 1 < to && t[i + 1].kind == Tok::Ident) {
      bool saw_assign = false;
      for (std::size_t j = i; j-- > from;) {
        if (t[j].text == ";" || t[j].text == "{" || t[j].text == "}") break;
        if (t[j].text == "=") {
          saw_assign = true;
          break;
        }
      }
      if (!saw_assign) {
        std::size_t e3 = i + 1;
        const std::string key = read_key(t, i + 1, e3);
        if (!ts.state.count(key) || ts.state[key] != 2) ts.state[key] = 1;
      }
      continue;
    }
    // Assignment / declaration-with-initializer: propagate. The LHS is
    // the member-access chain ENDING directly before '=' (a declaration
    // like `const std::streamsize got = ...` assigns to `got`, not to
    // the type tokens before it).
    if (tk.text == "=" && i > from) {
      if (t[i - 1].kind != Tok::Ident) continue;  // a[i] = / *p = etc.
      std::size_t lbeg = i - 1;
      while (lbeg >= from + 2 &&
             (t[lbeg - 1].text == "." || t[lbeg - 1].text == "->") &&
             t[lbeg - 2].kind == Tok::Ident)
        lbeg -= 2;
      std::size_t kend = lbeg;
      const std::string lhs = read_key(t, lbeg, kend);
      if (kend != i) continue;  // chain did not end at '='
      const std::size_t semi = find_tok(t, i + 1, to, ";");
      const bool src = range_has_call(t, i + 1, semi, taint_source_calls());
      const bool gated = range_has_call(t, i + 1, semi, taint_gate_calls());
      const bool tainted_rhs = range_has_taint(t, i + 1, semi, ts);
      if (gated)
        ts.state[lhs] = 2;
      else if (src || tainted_rhs)
        ts.state[lhs] = 1;
      else
        ts.state.erase(lhs);
      continue;
    }
  }
}

void rule_mapped_taint(const Tree& t, std::vector<Violation>& out) {
  for (const SourceFile& f : t.files) {
    const bool in_scope = f.rel.rfind("src/formats/", 0) == 0 ||
                          f.rel.rfind("src/serve/", 0) == 0;
    if (!in_scope) continue;
    const std::vector<std::string> raw_lines = split_lines(f.raw);
    const bool tile_file_impl =
        f.rel.find("tile_file") != std::string::npos;
    for (const BodySpan& b : function_bodies(f.code)) {
      // Include the parameter list so mapped-struct parameters become
      // taint roots: back up to the '(' that precedes the body.
      std::size_t pstart = b.open;
      {
        int d = 0;
        for (std::size_t p = b.open; p-- > 0;) {
          const char ch = f.code[p];
          if (ch == ')') ++d;
          else if (ch == '(' && --d == 0) {
            pstart = p;
            break;
          }
          else if (ch == ';' || ch == '}') break;
        }
      }
      const std::vector<Tok> toks = tokenize(f.code, pstart, b.close + 1);
      TaintScope ts;
      if (tile_file_impl) {
        // Class members mapping the file are taint roots everywhere.
        ts.roots.insert("header_");
        ts.roots.insert("sections_");
      }
      taint_walk_body(f, raw_lines, toks, 0, toks.size(), ts, out);
    }
  }
}

// ---------------------------------------------------------------------
// shared-write: inside parallel dispatch lambda bodies, writes through
// reference-captured state must be per-slot disambiguated (an index
// derived from the lambda's range parameters or a current_slot /
// scratch_slot / current_shard value), protected by a lock held at the
// write, or annotated `// lint:owned(<invariant>)`. The parallel
// infrastructure itself (thread_pool / parallel_for / atomics) is
// exempt; atomic_* helper calls are function calls, not assignments, so
// they pass naturally.
// ---------------------------------------------------------------------

const std::set<std::string>& dispatch_names() {
  static const std::set<std::string> d = {"parallel_for", "parallel_for_ranges",
                                          "parallel_ranges",
                                          "parallel_shard_ranges",
                                          "parallel_reduce"};
  return d;
}

const std::set<std::string>& slot_calls() {
  static const std::set<std::string> s = {"current_slot", "scratch_slot",
                                          "current_shard"};
  return s;
}

bool shared_write_exempt(const std::string& rel) {
  return rel.rfind("src/", 0) != 0 ||
         rel == "src/parallel/thread_pool.hpp" ||
         rel == "src/parallel/parallel_for.hpp" ||
         rel == "src/parallel/atomics.hpp";
}

struct LambdaSpan {
  std::size_t cap_open = 0;   // token index of '['
  std::size_t body_open = 0;  // token index of '{'
  std::size_t body_close = 0;
  bool by_ref = false;        // capture list can alias enclosing state
};

/// Parses a lambda whose introducer '[' is at token index `i`.
bool parse_lambda(const std::vector<Tok>& t, std::size_t i, LambdaSpan& L) {
  if (t[i].text != "[") return false;
  const std::size_t cap_close = tok_match(t, i);
  if (cap_close >= t.size()) return false;
  L.cap_open = i;
  for (std::size_t j = i + 1; j < cap_close; ++j) {
    if (t[j].text == "&") L.by_ref = true;
  }
  std::size_t j = cap_close + 1;
  if (j < t.size() && t[j].text == "(") j = tok_match(t, j) + 1;
  while (j < t.size() && t[j].kind == Tok::Ident &&
         (t[j].text == "mutable" || t[j].text == "noexcept"))
    ++j;
  if (j < t.size() && t[j].text == "->") {
    while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
  }
  if (j >= t.size() || t[j].text != "{") return false;
  L.body_open = j;
  L.body_close = tok_match(t, j);
  return L.body_close < t.size();
}

/// Collects parameter names of the lambda whose introducer is at
/// `cap_open` (the last identifier of each comma-separated declarator).
std::set<std::string> lambda_params(const std::vector<Tok>& t,
                                    std::size_t cap_open) {
  std::set<std::string> params;
  const std::size_t cap_close = tok_match(t, cap_open);
  if (cap_close + 1 >= t.size() || t[cap_close + 1].text != "(")
    return params;
  const std::size_t pclose = tok_match(t, cap_close + 1);
  std::string last;
  int depth = 0;
  for (std::size_t j = cap_close + 2; j < pclose; ++j) {
    if (t[j].text == "(" || t[j].text == "<" || t[j].text == "[") ++depth;
    else if (t[j].text == ")" || t[j].text == ">" || t[j].text == "]")
      --depth;
    else if (t[j].text == "," && depth == 0) {
      if (!last.empty()) params.insert(last);
      last.clear();
    } else if (t[j].kind == Tok::Ident) {
      last = t[j].text;
    }
  }
  if (!last.empty()) params.insert(last);
  return params;
}

/// Analyzes one by-ref-capturing parallel lambda body for writes through
/// captured state.
void analyze_parallel_lambda(const SourceFile& f,
                             const std::vector<std::string>& raw_lines,
                             const std::vector<Tok>& t, const LambdaSpan& L,
                             std::vector<Violation>& out) {
  std::set<std::string> owned = lambda_params(t, L.cap_open);
  std::set<std::string> locals = owned;
  std::set<std::string> reported;
  int spin_depth = 0;
  int brace_depth = 0;
  std::vector<int> guard_depths;  // brace depths holding a lock_guard

  auto subscript_has_owned = [&](std::size_t from, std::size_t to2) {
    for (std::size_t j = from; j < to2; ++j) {
      if (t[j].text != "[") continue;
      const std::size_t cl = tok_match(t, j);
      for (std::size_t k = j + 1; k < cl && k < to2 + 64; ++k) {
        if (t[k].kind == Tok::Ident && owned.count(t[k].text)) return true;
      }
      j = cl;
    }
    return false;
  };
  auto flag = [&](std::size_t at, const std::string& base) {
    if (!reported.insert(base + ":" +
                         std::to_string(f.line_at[t[at].pos])).second)
      return;
    const int line = f.line_at[t[at].pos];
    if (allowed(raw_lines, line, "shared-write")) return;
    bool empty_reason = false;
    if (annotated_with_reason(raw_lines, line, "owned", empty_reason)) return;
    if (empty_reason) {
      out.push_back({f.rel, line, "shared-write",
                     "lint:owned() on write to '" + base +
                         "' needs the ownership invariant written between "
                         "the parentheses"});
      return;
    }
    out.push_back(
        {f.rel, line, "shared-write",
         "write to reference-captured '" + base +
             "' inside a parallel region without per-slot indexing, a "
             "held lock, or an atomic_* helper — disambiguate per slot "
             "or annotate lint:owned(<invariant>)"});
  };
  auto check_span = [&](std::size_t lbeg, std::size_t lend,
                        std::size_t at) {
    // lvalue tokens [lbeg, lend): base identifier is the first Ident.
    std::size_t bi = lbeg;
    while (bi < lend && t[bi].kind != Tok::Ident) ++bi;
    if (bi >= lend) return;
    const std::string base = t[bi].text;
    if (locals.count(base) || owned.count(base)) return;
    if (subscript_has_owned(lbeg, lend)) return;
    if (spin_depth > 0 || !guard_depths.empty()) return;
    flag(at, base);
  };
  // Walks backward from the write operator at `at` over one postfix
  // expression (member-access chains and balanced subscripts) and judges
  // the write. Stops at anything else, so `if (c) y = 5` judges `y`, not
  // the condition.
  auto check_write_before = [&](std::size_t at) {
    std::size_t j = at;
    std::size_t lo = at;
    bool found = false;
    while (j > L.body_open) {
      const Tok& p = t[j - 1];
      if (p.text == "]") {
        int d = 0;
        std::size_t q = j;
        while (q-- > L.body_open) {
          if (t[q].text == "]") ++d;
          else if (t[q].text == "[" && --d == 0) break;
        }
        if (q <= L.body_open || t[q].text != "[") return;
        j = q;
        lo = q;
        continue;
      }
      if (p.kind == Tok::Ident) {
        found = true;
        lo = --j;
        if (j > L.body_open &&
            (t[j - 1].text == "." || t[j - 1].text == "->" ||
             t[j - 1].text == "::")) {
          lo = --j;
          continue;
        }
        break;
      }
      break;  // '*', ')', cast tokens … — the chain ends here
    }
    if (found) check_span(lo, at, at);
  };

  // Parses a local-variable declaration starting at token `i0`
  // (qualifiers, type chain with :: and <>, ptr/ref, then one or more
  // comma-separated declarators with optional array suffixes and
  // = / {} / () initializers). Returns the index of the statement
  // terminator on success (registering locals and ownership), or `i0`
  // when the tokens are not a declaration. `forinit` relaxes the
  // no-subscript ownership restriction: a for-init induction variable
  // walking `partition[c] .. partition[c+1]` with an owned chunk id `c`
  // iterates a range that is disjoint across workers by construction.
  auto try_decl = [&](std::size_t i0, bool forinit) -> std::size_t {
    static const std::set<std::string> kQual = {
        "const", "static", "constexpr", "volatile", "auto", "unsigned",
        "signed", "long",  "short",     "struct",   "class", "typename"};
    static const std::set<std::string> kStmtKw = {
        "return", "if",    "while",    "for",   "do",     "else",
        "switch", "case",  "break",    "continue", "goto", "throw",
        "delete", "new",   "using",    "typedef", "sizeof", "default",
        "public", "private", "protected"};
    std::size_t j = i0;
    bool saw_type = false;
    while (j < L.body_close && t[j].kind == Tok::Ident &&
           kQual.count(t[j].text)) {
      if (t[j].text != "const" && t[j].text != "static" &&
          t[j].text != "constexpr" && t[j].text != "volatile")
        saw_type = true;  // auto / builtin type words
      ++j;
    }
    const bool qual_type = saw_type;  // type word seen in the qualifier run
    bool chain_parsed = false;
    std::size_t chain_start = j;
    if (j < L.body_close && t[j].kind == Tok::Ident) {
      if (kStmtKw.count(t[j].text)) return i0;
      chain_parsed = true;
      ++j;
      while (j + 1 < L.body_close && t[j].text == "::" &&
             t[j + 1].kind == Tok::Ident)
        j += 2;
      if (j < L.body_close && t[j].text == "<") {
        // Try a balanced template-argument list; on failure leave `j`
        // (it was a comparison, and the decl attempt will fail below).
        int ad = 0;
        std::size_t j2 = j;
        bool closed = false;
        for (; j2 < L.body_close; ++j2) {
          const std::string& x = t[j2].text;
          if (x == "<") ++ad;
          else if (x == ">") {
            if (--ad == 0) {
              closed = true;
              ++j2;
              break;
            }
          } else if (x == ">>") {
            ad -= 2;
            if (ad <= 0) {
              closed = true;
              ++j2;
              break;
            }
          } else if (x == ";" || x == "{" || x == ")" || x == "==") {
            break;
          }
        }
        if (closed) j = j2;
      }
      saw_type = true;
    } else if (!saw_type) {
      return i0;
    }
    while (j < L.body_close &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "&&" ||
            (t[j].kind == Tok::Ident && t[j].text == "const")))
      ++j;
    if (j >= L.body_close || t[j].kind != Tok::Ident) {
      // `const auto si = …`: a type word came from the qualifier run, so
      // the chain we consumed was actually the declarator name.
      if (!(qual_type && chain_parsed)) return i0;
      j = chain_start;
    }
    if (!saw_type) return i0;
    std::vector<std::pair<std::string, bool>> decls;  // (name, owned)
    while (true) {
      if (j >= L.body_close || t[j].kind != Tok::Ident) return i0;
      const std::string name = t[j].text;
      ++j;
      while (j < L.body_close && t[j].text == "[") j = tok_match(t, j) + 1;
      bool owned_init = false;
      if (j < L.body_close &&
          (t[j].text == "=" || t[j].text == "{" || t[j].text == "(")) {
        std::size_t ib, ie;
        if (t[j].text == "=") {
          ib = j + 1;
          int d = 0;
          ie = ib;
          for (; ie < L.body_close; ++ie) {
            const std::string& x = t[ie].text;
            if (x == "(" || x == "[" || x == "{") ++d;
            else if (x == ")" || x == "]" || x == "}") {
              if (d == 0) break;
              --d;
            } else if (d == 0 && (x == "," || x == ";" || x == ":")) {
              break;
            }
          }
          j = ie;
        } else {
          ie = tok_match(t, j);
          if (ie >= L.body_close) return i0;
          ib = j + 1;
          j = ie + 1;
        }
        bool from_slot = false, from_owned = false, has_subscript = false;
        for (std::size_t q = ib; q < ie; ++q) {
          if (t[q].kind == Tok::Ident && slot_calls().count(t[q].text))
            from_slot = true;
          if (t[q].kind == Tok::Ident && owned.count(t[q].text) &&
              (q == ib || (t[q - 1].text != "." && t[q - 1].text != "->" &&
                           t[q - 1].text != "::")))
            from_owned = true;
          if (t[q].text == "[") has_subscript = true;
        }
        // Values loaded through a subscript are NOT owned: an index read
        // from an array (col = cols[j]) can collide across ranges even
        // when j is range-private. For-init induction ranges are the
        // one exception (see above).
        owned_init = from_slot || (from_owned && (forinit || !has_subscript));
      }
      decls.emplace_back(name, owned_init);
      if (j < L.body_close && t[j].text == ",") {
        ++j;
        continue;
      }
      if (j >= L.body_close ||
          (t[j].text != ";" && t[j].text != ":"))
        return i0;
      break;
    }
    for (const auto& [name, own] : decls) {
      locals.insert(name);
      if (own) owned.insert(name);
    }
    return j;  // index of the terminator (';' or range-for ':')
  };

  bool at_stmt = true;
  bool for_init = false;
  for (std::size_t i = L.body_open; i < L.body_close; ++i) {
    const Tok& tk = t[i];
    if (tk.text == "{") {
      ++brace_depth;
      at_stmt = true;
      continue;
    }
    if (tk.text == "}") {
      while (!guard_depths.empty() && guard_depths.back() >= brace_depth)
        guard_depths.pop_back();
      --brace_depth;
      at_stmt = true;
      continue;
    }
    if (tk.text == ";") {
      at_stmt = true;
      for_init = false;
      continue;
    }
    if (tk.text == ")") {
      at_stmt = true;
      for_init = false;
      continue;
    }
    if (tk.kind == Tok::Ident) {
      if (tk.text == "for" && i + 1 < L.body_close &&
          t[i + 1].text == "(") {
        at_stmt = true;
        for_init = true;
        ++i;  // next iteration starts on the first init token
        continue;
      }
      // Lock helpers: spin_lock/spin_unlock and repo-style wrappers
      // (lock_tile / unlock_tile …) guard the writes between them.
      const bool is_call =
          i + 1 < L.body_close && t[i + 1].text == "(";
      if (is_call && (tk.text == "spin_unlock" ||
                      tk.text.rfind("unlock", 0) == 0 ||
                      tk.text.find("_unlock") != std::string::npos)) {
        if (spin_depth > 0) --spin_depth;
        at_stmt = false;
        continue;
      }
      if (is_call &&
          (tk.text == "spin_lock" || tk.text == "lock" ||
           tk.text.rfind("lock_", 0) == 0 ||
           (tk.text.size() > 5 &&
            tk.text.compare(tk.text.size() - 5, 5, "_lock") == 0))) {
        ++spin_depth;
        at_stmt = false;
        continue;
      }
      if (tk.text == "lock_guard" || tk.text == "unique_lock" ||
          tk.text == "scoped_lock") {
        guard_depths.push_back(brace_depth);
        at_stmt = false;
        continue;
      }
      if (at_stmt) {
        const std::size_t d_end = try_decl(i, for_init);
        if (d_end != i) {
          i = d_end - 1;  // re-process the terminator
          continue;
        }
      }
      at_stmt = false;
      continue;
    }
    if (tk.text == "=" || tk.text == "+=" || tk.text == "-=" ||
        tk.text == "*=" || tk.text == "/=" || tk.text == "%=" ||
        tk.text == "|=" || tk.text == "&=" || tk.text == "^=" ||
        tk.text == "<<=" || tk.text == ">>=") {
      check_write_before(i);
      continue;
    }
    if (tk.text == "++" || tk.text == "--") {
      if (i + 1 < L.body_close && t[i + 1].kind == Tok::Ident) {
        // Prefix: operand chain (plus any subscripts) follows.
        std::size_t e3 = i + 1;
        read_key(t, i + 1, e3);
        while (e3 < L.body_close && t[e3].text == "[") {
          e3 = tok_match(t, e3) + 1;
          while (e3 + 1 < L.body_close &&
                 (t[e3].text == "." || t[e3].text == "->") &&
                 t[e3 + 1].kind == Tok::Ident) {
            std::size_t tmp = e3 + 1;
            read_key(t, e3 + 1, tmp);
            e3 = tmp;
          }
        }
        check_span(i + 1, e3, i);
        i = e3 - 1;
      } else if (i > L.body_open) {
        check_write_before(i);
      }
      continue;
    }
  }
}

void rule_shared_write(const Tree& t, std::vector<Violation>& out) {
  for (const SourceFile& f : t.files) {
    if (shared_write_exempt(f.rel)) continue;
    bool any = false;
    for (const std::string& d : dispatch_names()) {
      if (contains_word(f.code, d)) any = true;
    }
    if (!any) continue;
    const std::vector<std::string> raw_lines = split_lines(f.raw);
    const std::vector<Tok> toks = tokenize(f.code, 0, f.code.size());
    std::set<std::size_t> analyzed;  // lambda body_open token indexes
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::Ident || !dispatch_names().count(toks[i].text))
        continue;
      if (toks[i + 1].text != "(") continue;
      const std::size_t close = tok_match(toks, i + 1);
      if (close >= toks.size()) continue;
      // Inline lambda arguments.
      int depth = 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (toks[j].text == "(") ++depth;
        else if (toks[j].text == ")") --depth;
        else if (toks[j].text == "[" &&
                 (toks[j - 1].text == "(" || toks[j - 1].text == ",")) {
          LambdaSpan L;
          if (parse_lambda(toks, j, L) && L.by_ref &&
              analyzed.insert(L.body_open).second) {
            analyze_parallel_lambda(f, raw_lines, toks, L, out);
          }
          if (L.body_close > j) j = L.body_close;
        } else if (toks[j].kind == Tok::Ident && depth == 0 &&
                   (toks[j + 1].text == "," || toks[j + 1].text == ")")) {
          // Named-lambda argument: resolve `auto NAME = [...](..){..};`
          // defined earlier in this file.
          for (std::size_t k = 0; k + 2 < j; ++k) {
            if (toks[k].kind == Tok::Ident && toks[k].text == toks[j].text &&
                toks[k + 1].text == "=" && toks[k + 2].text == "[") {
              LambdaSpan L;
              if (parse_lambda(toks, k + 2, L) && L.by_ref &&
                  analyzed.insert(L.body_open).second) {
                analyze_parallel_lambda(f, raw_lines, toks, L, out);
              }
              break;
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// lock-discipline: spin_lock/spin_unlock balance per scope. Nested
// lambda bodies are separate scopes. Flags: return/throw while a spin
// lock is held, spin_unlock without a matching spin_lock, and a lock
// still held when the scope ends.
// ---------------------------------------------------------------------

void lock_walk_scope(const SourceFile& f,
                     const std::vector<std::string>& raw_lines,
                     const std::vector<Tok>& t, std::size_t from,
                     std::size_t to, std::vector<Violation>& out) {
  std::vector<std::size_t> held;  // token indexes of unmatched spin_lock
  auto flag = [&](std::size_t at, const std::string& msg) {
    const int line = f.line_at[t[at].pos];
    if (allowed(raw_lines, line, "lock-discipline")) return;
    out.push_back({f.rel, line, "lock-discipline", msg});
  };
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    const Tok& tk = t[i];
    if (tk.text == "[" &&
        (i == from ||
         (t[i - 1].kind != Tok::Ident && t[i - 1].text != ")" &&
          t[i - 1].text != "]"))) {
      // Lambda introducer: recurse into its body as a separate scope.
      LambdaSpan L;
      if (parse_lambda(t, i, L)) {
        lock_walk_scope(f, raw_lines, t, L.body_open + 1, L.body_close, out);
        i = L.body_close;
        continue;
      }
      i = tok_match(t, i);
      continue;
    }
    if (tk.kind != Tok::Ident) continue;
    if (tk.text == "spin_lock" && i + 1 < to && t[i + 1].text == "(") {
      held.push_back(i);
      continue;
    }
    if (tk.text == "spin_unlock" && i + 1 < to && t[i + 1].text == "(") {
      if (held.empty()) {
        flag(i, "spin_unlock without a matching spin_lock in this scope");
      } else {
        held.pop_back();
      }
      continue;
    }
    if ((tk.text == "return" || tk.text == "throw") && !held.empty()) {
      flag(i, "'" + tk.text + "' while a spin lock acquired at line " +
                  std::to_string(f.line_at[t[held.back()].pos]) +
                  " is still held — release it on every exit path");
    }
  }
  for (const std::size_t h : held) {
    flag(h, "spin_lock is still held when the scope ends — missing "
            "spin_unlock on the fall-through path");
  }
}

void rule_lock_discipline(const Tree& t, std::vector<Violation>& out) {
  for (const SourceFile& f : t.files) {
    if (f.rel.rfind("src/", 0) != 0) continue;
    if (f.rel == "src/parallel/atomics.hpp") continue;  // the definitions
    if (!contains_word(f.code, "spin_lock") &&
        !contains_word(f.code, "spin_unlock"))
      continue;
    const std::vector<std::string> raw_lines = split_lines(f.raw);
    for (const BodySpan& b : function_bodies(f.code)) {
      const std::vector<Tok> toks = tokenize(f.code, b.open + 1, b.close);
      lock_walk_scope(f, raw_lines, toks, 0, toks.size(), out);
    }
  }
}

std::vector<Violation> lint_tree(const fs::path& root) {
  const Tree t = load_tree(root);
  std::vector<Violation> out;
  rule_simd_twin(t, out);
  rule_twin_fuzz(t, out);
  rule_counter_doc(t, out);
  rule_validator_fields(t, out);
  rule_hot_path(t, out);
  rule_raw_atomic(t, out);
  rule_include_hygiene(t, out);
  rule_mapped_taint(t, out);
  rule_shared_write(t, out);
  rule_lock_discipline(t, out);
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  // Overlapping hot-path regions (file marker + block marker) can report
  // the same site twice; keep one.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Violation& a, const Violation& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

int run_suite(const fs::path& fixtures) {
  if (!fs::exists(fixtures)) {
    std::fprintf(stderr, "fixture directory not found: %s\n",
                 fixtures.string().c_str());
    return 2;
  }
  int failures = 0;
  int cases = 0;
  std::vector<fs::path> dirs;
  for (const auto& ent : fs::directory_iterator(fixtures)) {
    if (ent.is_directory()) dirs.push_back(ent.path());
  }
  std::sort(dirs.begin(), dirs.end());
  for (const fs::path& d : dirs) {
    ++cases;
    const std::string fixture = d.filename().string();
    // Expected rule = directory name up to the first '.' ("clean" = none).
    const std::string expect = fixture.substr(0, fixture.find('.'));
    const std::vector<Violation> v = lint_tree(d);
    bool ok;
    if (expect == "clean") {
      ok = v.empty();
    } else {
      // Each seeded fixture must be flagged EXACTLY once, by its rule.
      ok = v.size() == 1 && v[0].rule == expect;
    }
    std::printf("  %-28s %s (%zu finding%s)\n", fixture.c_str(),
                ok ? "PASS" : "FAIL", v.size(), v.size() == 1 ? "" : "s");
    if (!ok) {
      ++failures;
      for (const Violation& x : v) {
        std::printf("      %s:%d: [%s] %s\n", x.file.c_str(), x.line,
                    x.rule.c_str(), x.message.c_str());
      }
      if (v.empty() && expect != "clean") {
        std::printf("      expected at least one '%s' finding, got none\n",
                    expect.c_str());
      }
    }
  }
  std::printf("lint suite: %d/%d fixtures behaved as seeded\n",
              cases - failures, cases);
  return failures == 0 && cases > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path suite;
  bool suite_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (a == "--suite" && i + 1 < argc) {
      suite_mode = true;
      suite = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: tilespmspv_lint [--root DIR] | --suite FIXTURE_DIR\n"
          "Lints the TileSpMSpV tree for repo-specific invariants\n"
          "(see docs/STATIC_ANALYSIS.md). Exit 0 clean, 1 findings.\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 2;
    }
  }
  if (suite_mode) return run_suite(suite);
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "no src/ under --root %s — wrong directory?\n",
                 root.string().c_str());
    return 2;
  }
  const std::vector<Violation> v = lint_tree(root);
  for (const Violation& x : v) {
    std::printf("%s:%d: [%s] %s\n", x.file.c_str(), x.line, x.rule.c_str(),
                x.message.c_str());
  }
  if (v.empty()) {
    std::printf("tilespmspv_lint: tree is clean\n");
    return 0;
  }
  std::printf("tilespmspv_lint: %zu finding%s\n", v.size(),
              v.size() == 1 ? "" : "s");
  return 1;
}
