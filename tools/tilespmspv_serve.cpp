// tilespmspv_serve: the serving daemon. Listens on a unix-domain socket
// for newline-delimited JSON requests (serve/server.hpp documents the
// protocol), keeps converted matrices resident, and batches SpMSpV/BFS
// queries into the block-of-k engine. Stop with SIGINT/SIGTERM or a
// `{"op":"shutdown"}` request.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "util/args.hpp"

using namespace tilespmspv;
using namespace tilespmspv::serve;

namespace {

// Written by the signal handler, polled by the wait loop. sig_atomic_t by
// the signal-safety rules; the 100 ms poll makes propagation prompt.
volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

void usage() {
  std::fprintf(
      stderr,
      "usage: tilespmspv_serve [--socket PATH] [--cache-mb N] [--batch-k K]\n"
      "                        [--deadline-ms MS] [--threads N] [--nt N]\n"
      "                        [--preload SUITE[,SUITE...]]\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args(argc, argv);
    args.reject_unknown({"--socket", "--cache-mb", "--batch-k",
                         "--deadline-ms", "--threads", "--nt", "--preload"});
    ServeConfig cfg;
    cfg.socket_path = args.get("--socket", cfg.socket_path);
    cfg.cache_bytes = static_cast<std::size_t>(
                          args.get_int("--cache-mb", /*def=*/256))
                      << 20;
    cfg.batch_k = static_cast<int>(args.get_int("--batch-k", cfg.batch_k));
    cfg.deadline_ms = args.get_double("--deadline-ms", cfg.deadline_ms);
    cfg.threads =
        static_cast<std::size_t>(args.get_int("--threads", /*def=*/0));
    cfg.spmspv.nt = static_cast<index_t>(args.get_int("--nt", cfg.spmspv.nt));

    Server server(cfg);

    // Preload suite matrices (comma-separated) before accepting traffic.
    std::string preload = args.get("--preload");
    while (!preload.empty()) {
      const std::size_t comma = preload.find(',');
      const std::string name = preload.substr(0, comma);
      preload = (comma == std::string::npos) ? "" : preload.substr(comma + 1);
      if (name.empty()) continue;
      const std::string resp = server.handle_line(
          "{\"op\":\"load\",\"suite\":\"" + name + "\",\"alias\":\"" + name +
          "\"}");
      if (resp.rfind("{\"ok\":true", 0) != 0) {
        std::cerr << "preload failed: " << resp << "\n";
        return 1;
      }
      std::cerr << "preloaded " << name << "\n";
    }

    std::string err;
    if (!server.start(&err)) {
      std::cerr << "cannot listen on " << cfg.socket_path << ": " << err
                << "\n";
      return 1;
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::cerr << "tilespmspv_serve listening on " << cfg.socket_path << "\n";

    // Wake every 100 ms: either a `shutdown` request or a signal ends the
    // daemon; both paths run the same orderly stop.
    while (!server.shutdown_requested() && g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.stop();
    std::cerr << "tilespmspv_serve: shut down cleanly\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage();
    return 2;
  }
}
