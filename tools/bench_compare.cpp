// bench_compare — noise-aware diff of two BENCH_*.json reports (written
// by tools/tilespmspv_bench). Verdict per case, exit 1 iff any case
// regressed, so CI can gate on it:
//
//   bench_compare old.json new.json [--tol 0.30] [--p95-tol 0.60]
//                 [--min-ms 0.05] [--strict-missing]
//
// Policy (see docs/OBSERVABILITY.md, "Benchmark trajectory"):
//   - best-of is the primary metric: `regressed` iff new best exceeds
//     old best by more than --tol (relative), and at least one side is
//     above the --min-ms floor (sub-floor cases are timer noise).
//   - p95 is the secondary metric: a p95 blow-up past --p95-tol with a
//     healthy best is reported as `p95-regressed` — a warning, not a
//     failure (tail noise on shared CI machines is common).
//   - cases present on one side only are listed; with --strict-missing,
//     a case that disappeared fails the comparison.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace tilespmspv;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool load_report(const std::string& path, obs::ParsedBenchReport* report) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::string err;
  if (!obs::parse_bench_report(text, report, &err)) {
    std::fprintf(stderr, "error: %s is not a bench report: %s\n",
                 path.c_str(), err.c_str());
    return false;
  }
  return true;
}

const obs::ParsedCase* find_case(const obs::ParsedBenchReport& r,
                                 const std::string& name) {
  for (const obs::ParsedCase& c : r.cases) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string fmt_ms(double v) { return tilespmspv::fmt(v, 4); }

/// A case that carries no timing information: nonpositive best-of, or no
/// samples and an empty histogram (a crashed or skipped run serialized as
/// zeros). Relative-regression math against it is meaningless — division
/// by an old best of zero flagged every such pair as REGRESSED.
bool no_data(const obs::ParsedCase& c) {
  return c.ms_best <= 0.0 || (c.samples == 0 && c.hist_count == 0);
}

std::string fmt_delta(double old_v, double new_v) {
  if (old_v <= 0.0) return "-";
  const double pct = 100.0 * (new_v - old_v) / old_v;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto pos = args.positional();
  if (pos.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare old.json new.json [--tol R] "
                 "[--p95-tol R] [--min-ms MS] [--strict-missing]\n");
    return 2;
  }
  const std::string bad = args.first_unknown_flag(
      {"--tol", "--p95-tol", "--min-ms", "--strict-missing"});
  if (!bad.empty()) {
    std::fprintf(stderr, "error: unknown flag '%s'\n", bad.c_str());
    return 2;
  }
  const double tol = args.get_double("--tol", 0.30);
  const double p95_tol = args.get_double("--p95-tol", 2.0 * tol);
  const double min_ms = args.get_double("--min-ms", 0.05);
  const bool strict_missing = args.has("--strict-missing");
  if (tol < 0.0 || p95_tol < 0.0 || min_ms < 0.0) {
    std::fprintf(stderr, "error: tolerances must be non-negative\n");
    return 2;
  }

  obs::ParsedBenchReport old_r, new_r;
  if (!load_report(pos[0], &old_r) || !load_report(pos[1], &new_r)) return 2;

  std::cout << "old: " << pos[0] << " (" << old_r.git_sha << ", "
            << old_r.build_type << ", " << old_r.simd_isa << ", "
            << old_r.cases.size() << " cases)\n"
            << "new: " << pos[1] << " (" << new_r.git_sha << ", "
            << new_r.build_type << ", " << new_r.simd_isa << ", "
            << new_r.cases.size() << " cases)\n"
            << "policy: best +" << static_cast<int>(100.0 * tol)
            << "% fails, p95 +" << static_cast<int>(100.0 * p95_tol)
            << "% warns, noise floor " << min_ms << " ms\n\n";

  Table table({"case", "old best", "new best", "delta", "old p95", "new p95",
               "verdict"});
  int regressed = 0, p95_regressed = 0, improved = 0, ok = 0, noise = 0;
  std::vector<std::string> missing_in_new, new_only;

  for (const obs::ParsedCase& oc : old_r.cases) {
    const obs::ParsedCase* nc = find_case(new_r, oc.name);
    if (nc == nullptr) {
      missing_in_new.push_back(oc.name);
      continue;
    }
    std::string verdict;
    if (no_data(oc) || no_data(*nc)) {
      // Either side is a dead measurement: treat the pair as sub-floor
      // noise rather than letting a zero baseline fail the gate.
      verdict = "no-data";
      ++noise;
    } else if (oc.ms_best < min_ms && nc->ms_best < min_ms) {
      verdict = "noise-floor";
      ++noise;
    } else if (nc->ms_best > oc.ms_best * (1.0 + tol)) {
      verdict = "REGRESSED";
      ++regressed;
    } else if (nc->ms_best < oc.ms_best * (1.0 - tol)) {
      verdict = "improved";
      ++improved;
    } else if (oc.ms_p95 >= min_ms && nc->ms_p95 >= min_ms &&
               nc->ms_p95 > oc.ms_p95 * (1.0 + p95_tol)) {
      verdict = "p95-regressed";
      ++p95_regressed;
    } else {
      verdict = "ok";
      ++ok;
    }
    table.add_row({oc.name, fmt_ms(oc.ms_best), fmt_ms(nc->ms_best),
                   fmt_delta(oc.ms_best, nc->ms_best), fmt_ms(oc.ms_p95),
                   fmt_ms(nc->ms_p95), verdict});
  }
  for (const obs::ParsedCase& nc : new_r.cases) {
    if (find_case(old_r, nc.name) == nullptr) new_only.push_back(nc.name);
  }

  table.print(std::cout);
  std::cout << "\nsummary: " << regressed << " regressed, " << p95_regressed
            << " p95-regressed (warn), " << improved << " improved, " << ok
            << " ok, " << noise << " below noise floor\n";
  for (const std::string& name : missing_in_new) {
    std::cout << (strict_missing ? "MISSING" : "warning")
              << ": case dropped from new report: " << name << "\n";
  }
  for (const std::string& name : new_only) {
    std::cout << "note: new case (no baseline): " << name << "\n";
  }

  if (regressed > 0) {
    std::cout << "FAIL: performance regression past the tolerance\n";
    return 1;
  }
  if (strict_missing && !missing_in_new.empty()) {
    std::cout << "FAIL: baseline cases missing from the new report\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}
