#!/usr/bin/env python3
"""Fail-on-new gate for the clang static analyzer (scan-build) CI job.

The analyzer runs over the exported compile database:

    analyze-build --cdb build/compile_commands.json \
        --output scan-out --plist-html

and emits one plist per translation unit. This script normalizes every
diagnostic to a stable key

    <repo-relative file> TAB <checker> TAB <function> TAB <description>

(line numbers are deliberately excluded: they drift with every edit, and a
baseline that invalidates itself on unrelated changes trains people to
rubber-stamp it) and compares the set against the checked-in baseline.

  - A finding not in the baseline fails the job: new analyzer findings must
    be fixed or consciously baselined in the same PR that introduces them.
  - A baseline entry with no matching finding is reported as resolved, so
    the baseline shrinks over time instead of fossilizing.

Refresh the baseline with --update-baseline after deciding a finding is a
false positive worth keeping (each entry is then visible in review).
"""

import argparse
import plistlib
import sys
from pathlib import Path


def finding_keys(results_dir: Path, repo_root: Path):
    """Yields one normalized key per diagnostic in every plist under
    results_dir."""
    for plist_path in sorted(results_dir.rglob("*.plist")):
        with plist_path.open("rb") as fh:
            try:
                doc = plistlib.load(fh)
            except Exception as e:  # malformed plist: surface, don't hide
                print(f"error: cannot parse {plist_path}: {e}",
                      file=sys.stderr)
                sys.exit(2)
        files = doc.get("files", [])
        for diag in doc.get("diagnostics", []):
            idx = diag.get("location", {}).get("file", -1)
            raw = files[idx] if 0 <= idx < len(files) else "<unknown>"
            try:
                rel = str(Path(raw).resolve().relative_to(repo_root))
            except ValueError:
                rel = raw  # outside the repo (system header): keep verbatim
            checker = diag.get("check_name", diag.get("category", "unknown"))
            func = diag.get("issue_context", "")
            desc = diag.get("description", "")
            yield f"{rel}\t{checker}\t{func}\t{desc}"


def load_baseline(path: Path):
    if not path.exists():
        return set()
    lines = path.read_text(encoding="utf-8").splitlines()
    return {ln for ln in lines if ln and not ln.startswith("#")}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--results", required=True, type=Path,
                    help="analyze-build output directory (plists)")
    ap.add_argument("--baseline", required=True, type=Path,
                    help="checked-in baseline file")
    ap.add_argument("--repo-root", type=Path, default=Path.cwd(),
                    help="repository root for path normalization")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from the current results")
    args = ap.parse_args()

    found = sorted(set(finding_keys(args.results, args.repo_root.resolve())))

    if args.update_baseline:
        header = ("# clang static analyzer baseline — one finding per line:\n"
                  "# file TAB checker TAB function TAB description\n"
                  "# Regenerate: tools/analyze/check_scan_build.py "
                  "--update-baseline\n")
        args.baseline.write_text(header + "".join(k + "\n" for k in found),
                                 encoding="utf-8")
        print(f"baseline updated: {len(found)} finding(s) recorded")
        return 0

    baseline = load_baseline(args.baseline)
    new = [k for k in found if k not in baseline]
    resolved = sorted(baseline - set(found))

    for k in resolved:
        print(f"resolved (remove from baseline): {k}")
    if new:
        print(f"{len(new)} new analyzer finding(s) not in the baseline:")
        for k in new:
            print(f"  NEW: {k}")
        print("fix them, or re-baseline deliberately with --update-baseline")
        return 1
    print(f"scan-build gate: {len(found)} finding(s), all baselined "
          f"({len(resolved)} stale baseline entr"
          f"{'y' if len(resolved) == 1 else 'ies'})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
