// tilespmspv_validate — command-line front end for the format-invariant
// validation layer (formats/validate.hpp).
//
// Two modes:
//   tilespmspv_validate FILE...        classify each file by magic (TCSR /
//                                      TTLM / TTLF v2 tile file / Matrix
//                                      Market), load it through the
//                                      validating reader, and report
//                                      OK or INVALID with the violated
//                                      invariants. TTLF files get the
//                                      strict path: payload-hash verify +
//                                      deep structural validation of the
//                                      mapped view.
//   tilespmspv_validate --suite NAME   build every structure the library
//                                      defines (Coo, Csr, TileMatrix,
//                                      PackedTileMatrix, BitTileGraph,
//                                      TileVector) from the named suite
//                                      matrix and run each validator —
//                                      a self-check that conversions
//                                      uphold their own invariants.
//
// Exit codes: 0 all valid, 1 at least one invalid input, 2 usage error.
#include <exception>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "formats/mm_io.hpp"
#include "formats/serialize.hpp"
#include "formats/tile_file.hpp"
#include "formats/validate.hpp"
#include "gen/suite.hpp"
#include "gen/vector_gen.hpp"
#include "tile/bit_tile_graph.hpp"
#include "tile/packed_tile_matrix.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tile_vector.hpp"
#include "util/args.hpp"

namespace {

using namespace tilespmspv;

int usage() {
  std::cerr <<
      "usage: tilespmspv_validate FILE...\n"
      "       tilespmspv_validate --suite NAME [--nt N] [--extract N]\n"
      "\n"
      "Validates serialized matrices (TCSR/TTLM/TTLF binary or Matrix\n"
      "Market)\n"
      "against the library's format invariants, or self-checks every\n"
      "structure built from a generator-suite matrix.\n"
      "Exit codes: 0 valid, 1 invalid input, 2 usage error.\n";
  return 2;
}

/// Loads one file through the validating readers and reports the outcome.
/// Returns true when the file is valid.
bool check_file(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) {
    std::cout << path << ": INVALID (cannot open)\n";
    return false;
  }
  const SerializedKind kind = probe_serialized_kind(probe);
  probe.close();
  try {
    switch (kind) {
      case SerializedKind::kCsr: {
        std::ifstream in(path, std::ios::binary);
        const auto a = read_csr(in);
        std::cout << path << ": OK (csr " << a.rows << "x" << a.cols
                  << ", nnz " << a.nnz() << ")\n";
        return true;
      }
      case SerializedKind::kTileMatrix: {
        const auto m = read_tile_matrix_file(path);
        std::cout << path << ": OK (tile-matrix " << m.rows << "x" << m.cols
                  << ", nt " << m.nt << ", tiles " << m.num_tiles()
                  << ", nnz " << m.total_nnz() << ")\n";
        return true;
      }
      case SerializedKind::kTileFile: {
        // v2 mmap container: verify the payload hash and run the full
        // structural validators over the mapped view — the strict check
        // the fast loaders skip.
        const TileFileHeader h = read_tile_file_header(path);
        if (h.kind == static_cast<std::uint32_t>(TileFileKind::kTileMatrix)) {
          const MappedTileMatrix m = map_tile_matrix_file(
              path, /*verify_hash=*/true, /*deep_validate=*/true);
          std::cout << path << ": OK (tile-file matrix " << m.tiled.rows << "x"
                    << m.tiled.cols << ", nt " << m.tiled.nt << ", tiles "
                    << m.tiled.num_tiles() << ", nnz " << m.tiled.total_nnz()
                    << (m.has_transpose ? ", with transpose" : "") << ")\n";
          return true;
        }
        if (h.kind == static_cast<std::uint32_t>(TileFileKind::kBitTileGraph)) {
          offset_t edges = 0;
          index_t n = 0;
          switch (h.nt) {
            case 16: {
              const auto g = map_bit_tile_graph_file<16>(path, true, true);
              edges = g.edges, n = g.n;
              break;
            }
            case 32: {
              const auto g = map_bit_tile_graph_file<32>(path, true, true);
              edges = g.edges, n = g.n;
              break;
            }
            case 64: {
              const auto g = map_bit_tile_graph_file<64>(path, true, true);
              edges = g.edges, n = g.n;
              break;
            }
            default:
              std::cout << path << ": INVALID (tile-file graph tile size "
                        << h.nt << " unsupported)\n";
              return false;
          }
          std::cout << path << ": OK (tile-file graph n " << n << ", nt "
                    << h.nt << ", edges " << edges << ")\n";
          return true;
        }
        std::cout << path << ": INVALID (tile-file kind " << h.kind
                  << " unknown)\n";
        return false;
      }
      case SerializedKind::kUnknown: {
        // Matrix Market files start with the "%%MatrixMarket" banner.
        std::ifstream head(path, std::ios::binary);
        char c0 = 0, c1 = 0;
        head.get(c0).get(c1);
        if (!head || c0 != '%' || c1 != '%') {
          std::cout << path << ": INVALID (unrecognized format)\n";
          return false;
        }
        const auto m = read_matrix_market_file(path);
        std::cout << path << ": OK (matrix-market " << m.rows << "x" << m.cols
                  << ", nnz " << m.nnz() << ")\n";
        return true;
      }
    }
  } catch (const std::runtime_error& e) {
    std::cout << path << ": INVALID (" << e.what() << ")\n";
    return false;
  }
  return false;
}

/// Prints one self-check row and folds the result into `all_ok`.
void report(const char* name, const ValidationResult& r, bool& all_ok) {
  std::cout << "  " << name << ": " << (r.ok() ? "ok" : r.message()) << "\n";
  if (!r.ok()) all_ok = false;
}

int run_suite(const std::string& name, index_t nt, index_t extract) {
  const Coo<value_t> coo = suite_matrix(name);
  std::cout << name << " (" << coo.rows << "x" << coo.cols << ", nnz "
            << coo.nnz() << ")\n";
  bool all_ok = true;
  report("coo", validate_coo(coo), all_ok);
  const auto csr = Csr<value_t>::from_coo(coo);
  report("csr", validate_csr(csr), all_ok);
  report("csr-transpose", validate_csr(csr.transpose()), all_ok);
  report("tile-matrix",
         validate_tile_matrix(TileMatrix<value_t>::from_csr(csr, nt, extract)),
         all_ok);
  report("packed-tile-matrix",
         validate_packed_tile_matrix(PackedTileMatrix<value_t>::from_csr(csr)),
         all_ok);
  if (csr.rows == csr.cols) {
    report("bit-tile-graph",
           validate_bit_tile_graph(BitTileGraph<32>::from_csr(csr, extract)),
           all_ok);
  }
  const auto x = gen_sparse_vector(csr.cols, 0.01);
  report("sparse-vec", validate_sparse_vec(x), all_ok);
  report("tile-vector",
         validate_tile_vector(TileVector<value_t>::from_sparse(x, nt)),
         all_ok);
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args(argc, argv);
    args.reject_unknown({"--help", "--suite", "--nt", "--extract"});
    if (args.has("--help") || args.has("-h")) return usage();
    if (args.has("--suite")) {
      const std::string name = args.get("--suite");
      const auto nt = static_cast<index_t>(args.get_int("--nt", 16));
      const auto extract = static_cast<index_t>(args.get_int("--extract", 0));
      if (nt < 1 || nt > 256) {
        std::cerr << "tilespmspv_validate: --nt must be in [1, 256]\n";
        return 2;
      }
      return run_suite(name, nt, extract);
    }
    const std::vector<std::string> files = args.positional();
    if (files.empty()) return usage();
    bool all_ok = true;
    for (const auto& path : files) {
      if (!check_file(path)) all_ok = false;
    }
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "tilespmspv_validate: " << e.what() << "\n";
    return 2;
  }
}
