// Figure 7: BFS execution time and speedups of TileBFS over the Gunrock
// stand-in (direction-optimizing BFS) and the GSwitch stand-in (adaptive
// autotuned BFS), over the square matrix suite, on the two "device"
// configurations (pool sizes standing in for RTX 3060 / RTX 3090).
#include <iostream>
#include <map>

#include "baselines/dobfs.hpp"
#include "baselines/gswitch_bfs.hpp"
#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 3;
  std::cout << "Figure 7: BFS comparison (Gunrock and GSwitch stand-ins)\n\n";

  for (const Device& dev : devices()) {
    ThreadPool pool(dev.threads);
    Table table({"matrix", "class", "n", "edges", "TileBFS ms",
                 "Gunrock ms", "GSwitch ms", "vs Gunrock", "vs GSwitch"});
    SpeedupAggregate vs_gunrock, vs_gswitch;
    std::map<std::string, SpeedupAggregate> class_vs_gunrock;

    for (const auto& name : suite_bfs_sweep()) {
      const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
      const index_t src = max_degree_vertex(a);

      TileBfs tile_bfs(a, {}, &pool);
      const double t_tile =
          time_best_ms([&] { (void)tile_bfs.run(src); }, iters);

      const double t_gunrock =
          time_best_ms([&] { (void)dobfs(a, a, src, {}, &pool); }, iters);

      GswitchTuner tuner;  // persists across timing iterations => trained
      const double t_gswitch = time_best_ms(
          [&] { (void)gswitch_bfs(a, a, src, tuner, &pool); }, iters);

      vs_gunrock.add(t_tile, t_gunrock);
      vs_gswitch.add(t_tile, t_gswitch);
      class_vs_gunrock[suite_class(name)].add(t_tile, t_gunrock);
      table.add_row({name, suite_class(name), fmt_count(a.rows),
                     fmt_count(a.nnz()), fmt(t_tile, 3), fmt(t_gunrock, 3),
                     fmt(t_gswitch, 3), fmt(t_gunrock / t_tile, 2),
                     fmt(t_gswitch / t_tile, 2)});
    }

    std::cout << "--- device: " << dev.name << " (" << dev.threads
              << " threads) ---\n";
    table.print(std::cout);
    std::cout << "TileBFS vs Gunrock: geomean "
              << fmt(vs_gunrock.geomean_speedup(), 2) << "x, max "
              << fmt(vs_gunrock.max_speedup(), 2) << "x, faster on "
              << fmt(vs_gunrock.win_rate_percent(), 1) << "% of matrices\n"
              << "TileBFS vs GSwitch: geomean "
              << fmt(vs_gswitch.geomean_speedup(), 2) << "x, max "
              << fmt(vs_gswitch.max_speedup(), 2) << "x, faster on "
              << fmt(vs_gswitch.win_rate_percent(), 1) << "% of matrices\n";
    std::cout << "per-class geomean vs Gunrock:";
    for (const auto& [cls, agg] : class_vs_gunrock) {
      std::cout << "  " << cls << " " << fmt(agg.geomean_speedup(), 2)
                << "x";
    }
    std::cout << "\n\n";
  }
  std::cout << "Expected shape (paper): TileBFS wins on most matrices, with\n"
               "the largest margins on FEM-like matrices whose nonzeros\n"
               "concentrate into dense tiles.\n";
  return 0;
}
