// Figure 7: BFS execution time and speedups of TileBFS over the Gunrock
// stand-in (direction-optimizing BFS) and the GSwitch stand-in (adaptive
// autotuned BFS), over the square matrix suite, on the two "device"
// configurations (pool sizes standing in for RTX 3060 / RTX 3090).
//
//   bench_fig7_bfs [iters] [--iters N] [--metrics out.json|out.csv]
//
// TileBFS timings go through time_stats_ms so the exported JSON carries
// best/mean/p95 per matrix (best-of remains the comparison metric);
// --metrics also records the aggregate speedups and the merged kernel
// counters of the whole run. --json is an alias (CI artifact steps).
#include <iostream>
#include <map>
#include <string>

#include "baselines/dobfs.hpp"
#include "baselines/gswitch_bfs.hpp"
#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"
#include "util/args.hpp"
#include "util/simd.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (const std::string bad = args.first_unknown_flag(
          {"--iters", "--json", "--metrics"});
      !bad.empty()) {
    std::cerr << "unknown flag '" << bad << "'\n";
    return 2;
  }
  const auto pos = args.positional();
  int iters = static_cast<int>(args.get_int("--iters", 3));
  if (!pos.empty()) iters = std::atoi(pos[0].c_str());
  std::string metrics_path = args.get("--metrics");
  if (metrics_path.empty()) metrics_path = args.get("--json");
  obs::MetricsRegistry metrics;
  metrics.put_str("bench", "fig7_bfs");
  metrics.put_str("simd_isa", simd::active_isa());
  metrics.put_int("iters", iters);
  std::cout << "Figure 7: BFS comparison (Gunrock and GSwitch stand-ins)\n\n";

  for (const Device& dev : devices()) {
    ThreadPool pool(dev.threads);
    Table table({"matrix", "class", "n", "edges", "TileBFS ms", "mean", "p95",
                 "Gunrock ms", "GSwitch ms", "vs Gunrock", "vs GSwitch"});
    SpeedupAggregate vs_gunrock, vs_gswitch;
    std::map<std::string, SpeedupAggregate> class_vs_gunrock;

    for (const auto& name : suite_bfs_sweep()) {
      const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
      const index_t src = max_degree_vertex(a);

      TileBfs tile_bfs(a, {}, &pool);
      BfsWorkspace ws;  // hoisted: steady-state levels allocate nothing
      const TimingStats t_tile =
          time_stats_ms([&] { (void)tile_bfs.run(src, ws); }, iters);

      const double t_gunrock =
          time_best_ms([&] { (void)dobfs(a, a, src, {}, &pool); }, iters);

      GswitchTuner tuner;  // persists across timing iterations => trained
      const double t_gswitch = time_best_ms(
          [&] { (void)gswitch_bfs(a, a, src, tuner, &pool); }, iters);

      vs_gunrock.add(t_tile.best, t_gunrock);
      vs_gswitch.add(t_tile.best, t_gswitch);
      class_vs_gunrock[suite_class(name)].add(t_tile.best, t_gunrock);
      table.add_row({name, suite_class(name), fmt_count(a.rows),
                     fmt_count(a.nnz()), fmt(t_tile.best, 3),
                     fmt(t_tile.mean, 3), fmt(t_tile.p95, 3),
                     fmt(t_gunrock, 3), fmt(t_gswitch, 3),
                     fmt(t_gunrock / t_tile.best, 2),
                     fmt(t_gswitch / t_tile.best, 2)});
      if (!metrics_path.empty()) {
        put_timing(metrics, name + "@threads" + std::to_string(dev.threads),
                   t_tile);
      }
    }

    std::cout << "--- device: " << dev.name << " (" << dev.threads
              << " threads) ---\n";
    table.print(std::cout);
    std::cout << "TileBFS vs Gunrock: geomean "
              << fmt(vs_gunrock.geomean_speedup(), 2) << "x, max "
              << fmt(vs_gunrock.max_speedup(), 2) << "x, faster on "
              << fmt(vs_gunrock.win_rate_percent(), 1) << "% of matrices\n"
              << "TileBFS vs GSwitch: geomean "
              << fmt(vs_gswitch.geomean_speedup(), 2) << "x, max "
              << fmt(vs_gswitch.max_speedup(), 2) << "x, faster on "
              << fmt(vs_gswitch.win_rate_percent(), 1) << "% of matrices\n";
    std::cout << "per-class geomean vs Gunrock:";
    for (const auto& [cls, agg] : class_vs_gunrock) {
      std::cout << "  " << cls << " " << fmt(agg.geomean_speedup(), 2)
                << "x";
    }
    std::cout << "\n\n";
    if (!metrics_path.empty()) {
      const std::string key = "speedup_geomean@threads" +
                              std::to_string(dev.threads);
      metrics.put_double(key + ".vs_gunrock", vs_gunrock.geomean_speedup());
      metrics.put_double(key + ".vs_gswitch", vs_gswitch.geomean_speedup());
    }
  }
  std::cout << "Expected shape (paper): TileBFS wins on most matrices, with\n"
               "the largest margins on FEM-like matrices whose nonzeros\n"
               "concentrate into dense tiles.\n";
  if (!metrics_path.empty()) {
    counters_to_metrics(metrics);
    if (metrics.write_file(metrics_path)) {
      std::cout << "metrics written to " << metrics_path << "\n";
    } else {
      std::cerr << "failed to write metrics to " << metrics_path << "\n";
      return 1;
    }
  }
  return 0;
}
