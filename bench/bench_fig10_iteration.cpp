// Figure 10: per-iteration execution-time traces of Gunrock, GSwitch and
// TileBFS on four representative matrices (cant, in-2004, msdoor,
// roadNet-TX). Each trace prints one line per BFS level so the switching
// behaviour near the traversal's end is visible.
#include <iostream>

#include "baselines/dobfs.hpp"
#include "baselines/gswitch_bfs.hpp"
#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main() {
  ThreadPool pool(4);
  std::cout << "Figure 10: per-iteration time (ms) across a complete BFS\n\n";

  for (const char* name : {"cant", "in-2004", "msdoor", "roadNet-TX"}) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const index_t src = max_degree_vertex(a);

    TileBfs tile_bfs(a, {}, &pool);
    const BfsResult r = tile_bfs.run(src);

    std::vector<double> gunrock_ms, gswitch_ms;
    (void)dobfs(a, a, src, {}, &pool, &gunrock_ms);
    GswitchTuner tuner;
    (void)gswitch_bfs(a, a, src, tuner, &pool, &gswitch_ms);

    const std::size_t levels = std::max(
        {r.iterations.size(), gunrock_ms.size(), gswitch_ms.size()});
    std::cout << "--- " << name << " (" << levels << " iterations) ---\n";
    Table table({"iter", "Gunrock", "GSwitch", "TileBFS", "TileBFS kernel"});
    // Long road-network traversals are downsampled for readability.
    const std::size_t stride = levels > 60 ? levels / 30 : 1;
    for (std::size_t i = 0; i < levels; i += stride) {
      table.add_row(
          {std::to_string(i + 1),
           i < gunrock_ms.size() ? fmt(gunrock_ms[i], 4) : "-",
           i < gswitch_ms.size() ? fmt(gswitch_ms[i], 4) : "-",
           i < r.iterations.size() ? fmt(r.iterations[i].ms, 4) : "-",
           i < r.iterations.size() ? bfs_kernel_name(r.iterations[i].kernel)
                                   : "-"});
    }
    table.print(std::cout);
    double tile_total = 0, gunrock_total = 0, gswitch_total = 0;
    for (const auto& it : r.iterations) tile_total += it.ms;
    for (double m : gunrock_ms) gunrock_total += m;
    for (double m : gswitch_ms) gswitch_total += m;
    std::cout << "totals: TileBFS " << fmt(tile_total, 3) << " ms, Gunrock "
              << fmt(gunrock_total, 3) << " ms, GSwitch "
              << fmt(gswitch_total, 3) << " ms\n\n";
  }
  std::cout << "Expected shape (paper): TileBFS tracks the same hump as the\n"
               "baselines but with a flatter, more stable profile; a small\n"
               "bump can appear right before the end when the selector\n"
               "switches to Pull-CSC.\n";
  return 0;
}
