// Figure 10: per-iteration execution-time traces of Gunrock, GSwitch and
// TileBFS on four representative matrices (cant, in-2004, msdoor,
// roadNet-TX). Each trace prints one line per BFS level so the switching
// behaviour near the traversal's end is visible.
//
//   bench_fig10_iteration [iters] [--iters N] [--metrics out.json|out.csv]
//
// The per-level columns come from one recorded run; the totals row is a
// time_stats_ms distribution (best/mean/p95) over `iters` complete
// traversals per engine, and --metrics exports those distributions.
#include <iostream>
#include <string>

#include "baselines/dobfs.hpp"
#include "baselines/gswitch_bfs.hpp"
#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"
#include "util/args.hpp"
#include "util/simd.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (const std::string bad = args.first_unknown_flag(
          {"--iters", "--json", "--metrics"});
      !bad.empty()) {
    std::cerr << "unknown flag '" << bad << "'\n";
    return 2;
  }
  const auto pos = args.positional();
  int iters = static_cast<int>(args.get_int("--iters", 3));
  if (!pos.empty()) iters = std::atoi(pos[0].c_str());
  std::string metrics_path = args.get("--metrics");
  if (metrics_path.empty()) metrics_path = args.get("--json");
  obs::MetricsRegistry metrics;
  metrics.put_str("bench", "fig10_iteration");
  metrics.put_str("simd_isa", simd::active_isa());
  metrics.put_int("iters", iters);
  ThreadPool pool(4);
  std::cout << "Figure 10: per-iteration time (ms) across a complete BFS\n\n";

  for (const char* name : {"cant", "in-2004", "msdoor", "roadNet-TX"}) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const index_t src = max_degree_vertex(a);

    TileBfs tile_bfs(a, {}, &pool);
    BfsWorkspace ws;  // hoisted: steady-state levels allocate nothing
    const BfsResult r = tile_bfs.run(src, ws);
    const TimingStats t_tile =
        time_stats_ms([&] { (void)tile_bfs.run(src, ws); }, iters);

    std::vector<double> gunrock_ms, gswitch_ms;
    (void)dobfs(a, a, src, {}, &pool, &gunrock_ms);
    GswitchTuner tuner;
    (void)gswitch_bfs(a, a, src, tuner, &pool, &gswitch_ms);
    const TimingStats t_gunrock =
        time_stats_ms([&] { (void)dobfs(a, a, src, {}, &pool); }, iters);
    const TimingStats t_gswitch = time_stats_ms(
        [&] { (void)gswitch_bfs(a, a, src, tuner, &pool); }, iters);

    const std::size_t levels = std::max(
        {r.iterations.size(), gunrock_ms.size(), gswitch_ms.size()});
    std::cout << "--- " << name << " (" << levels << " iterations) ---\n";
    Table table({"iter", "Gunrock", "GSwitch", "TileBFS", "TileBFS kernel"});
    // Long road-network traversals are downsampled for readability.
    const std::size_t stride = levels > 60 ? levels / 30 : 1;
    for (std::size_t i = 0; i < levels; i += stride) {
      table.add_row(
          {std::to_string(i + 1),
           i < gunrock_ms.size() ? fmt(gunrock_ms[i], 4) : "-",
           i < gswitch_ms.size() ? fmt(gswitch_ms[i], 4) : "-",
           i < r.iterations.size() ? fmt(r.iterations[i].ms, 4) : "-",
           i < r.iterations.size() ? bfs_kernel_name(r.iterations[i].kernel)
                                   : "-"});
    }
    table.print(std::cout);
    std::cout << "totals (best/mean/p95 of " << iters << " runs):"
              << " TileBFS " << fmt(t_tile.best, 3) << "/"
              << fmt(t_tile.mean, 3) << "/" << fmt(t_tile.p95, 3)
              << " ms, Gunrock " << fmt(t_gunrock.best, 3) << "/"
              << fmt(t_gunrock.mean, 3) << "/" << fmt(t_gunrock.p95, 3)
              << " ms, GSwitch " << fmt(t_gswitch.best, 3) << "/"
              << fmt(t_gswitch.mean, 3) << "/" << fmt(t_gswitch.p95, 3)
              << " ms\n\n";
    if (!metrics_path.empty()) {
      const std::string key(name);
      put_timing(metrics, key + ".tilebfs", t_tile);
      put_timing(metrics, key + ".gunrock", t_gunrock);
      put_timing(metrics, key + ".gswitch", t_gswitch);
      metrics.put_int(key + ".levels", static_cast<std::int64_t>(levels));
    }
  }
  std::cout << "Expected shape (paper): TileBFS tracks the same hump as the\n"
               "baselines but with a flatter, more stable profile; a small\n"
               "bump can appear right before the end when the selector\n"
               "switches to Pull-CSC.\n";
  if (!metrics_path.empty()) {
    counters_to_metrics(metrics);
    if (metrics.write_file(metrics_path)) {
      std::cout << "metrics written to " << metrics_path << "\n";
    } else {
      std::cerr << "failed to write metrics to " << metrics_path << "\n";
      return 1;
    }
  }
  return 0;
}
