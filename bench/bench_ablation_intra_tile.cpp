// Ablation: intra-tile layout. The paper's §3.2.1 describes the nt = 16
// packed-byte encoding (one unsigned char per nonzero, row|col nibbles);
// the kernels in §3.3 walk a tile-local CSR. This bench compares the two
// layouts on matrices with dense tiles (FEM) and near-empty tiles
// (road / web), plus the metadata footprint of each.
#include <iostream>

#include "bench_common.hpp"
#include "core/tile_spmspv.hpp"
#include "gen/vector_gen.hpp"
#include "tile/packed_tile_matrix.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 3;
  ThreadPool pool(4);
  std::cout << "Ablation: intra-tile layout (packed byte vs tile-local CSR)"
            << "\nnt = 16, extraction disabled so both layouts hold every "
               "nonzero\n\n";

  Table table({"matrix", "nnz/tile", "intra-CSR meta B/nnz",
               "packed meta B/nnz", "CSR ms", "packed ms", "packed/CSR"});
  for (const char* name : {"cant", "pdb1HYS", "ML_Geer", "roadNet-TX",
                           "in-2004", "er-medium"}) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16, 0);
    const PackedTileMatrix<value_t> p =
        PackedTileMatrix<value_t>::from_csr(a);

    const double nnz_per_tile =
        static_cast<double>(t.tiled_nnz()) / std::max<index_t>(1, t.num_tiles());
    const double csr_meta =
        static_cast<double>(t.intra_row_ptr.size() * sizeof(std::uint16_t) +
                            t.local_col.size()) /
        static_cast<double>(t.tiled_nnz());
    const double packed_meta = static_cast<double>(p.packed.size()) /
                               static_cast<double>(p.vals.size());

    const SparseVec<value_t> x = gen_sparse_vector(a.cols, 0.01, 1);
    const TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
    SpmspvWorkspace<value_t> ws;
    const double t_csr =
        time_best_ms([&] { (void)tile_spmspv(t, xt, ws, &pool); }, iters);
    const double t_packed =
        time_best_ms([&] { (void)packed_tile_spmspv(p, xt, &pool); }, iters);

    table.add_row({name, fmt(nnz_per_tile, 1), fmt(csr_meta, 2),
                   fmt(packed_meta, 2), fmt(t_csr, 4), fmt(t_packed, 4),
                   fmt(t_packed / t_csr, 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: packed wins on matrices whose tiles hold "
               "few nonzeros\n(the per-row pointer never amortizes); "
               "intra-CSR wins on dense tiles\nwhere rows are long "
               "contiguous runs.\n";
  return 0;
}
