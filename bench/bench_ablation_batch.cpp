// Ablation: block-of-k SpMSpM amortization. Sweeps the batch size k for
// Y = A X — the block engine (tile_spmspm via tile_spmspv_batch) against
// k independent tile_spmspv calls — on a dense-tile FEM matrix and on a
// scattered web matrix. The block engine reads each tile's metadata and
// payload once per block and broadcast-FMAs every nonzero across the k
// lanes; the per-vector loop re-reads them k times.
//
//   bench_ablation_batch [iters] [--iters N] [--metrics out.json|out.csv]
//
// --metrics exports, per matrix and k: loop/block best-of times, the
// block-vs-loop speedup, and the per-vector cost of the block path.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/tile_spmspv.hpp"
#include "core/tile_spmspv_batch.hpp"
#include "gen/vector_gen.hpp"
#include "util/args.hpp"
#include "util/simd.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (const std::string bad = args.first_unknown_flag(
          {"--iters", "--metrics"});
      !bad.empty()) {
    std::cerr << "unknown flag '" << bad << "'\n";
    return 2;
  }
  const auto pos = args.positional();
  int iters = static_cast<int>(args.get_int("--iters", 3));
  if (!pos.empty()) iters = std::atoi(pos[0].c_str());
  const std::string metrics_path = args.get("--metrics");
  obs::MetricsRegistry metrics;
  metrics.put_str("bench", "ablation_batch");
  metrics.put_str("simd_isa", simd::active_isa());
  metrics.put_int("iters", iters);
  ThreadPool pool(4);
  std::cout << "Ablation: block-of-k SpMSpM (shared tile traversal, "
               "lane-broadcast FMA)\nvs repeated single multiplies\n\n";

  for (const char* name : {"cant", "in-2004"}) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const TileMatrix<value_t> tiled =
        TileMatrix<value_t>::from_csr(a, 16, 2);

    std::cout << "--- " << name << " (" << fmt_count(a.nnz())
              << " nnz) ---\n";
    Table table({"sparsity", "batch k", "k singles ms", "block ms",
                 "speedup", "ms per vector"});
    // 0.01 is the scattered regime (few lanes active per tile); 0.1 is
    // the frontier-like regime of the multi-source apps, where most
    // lanes are active in every touched tile and the broadcast pays.
    for (const double sp : {0.01, 0.1}) {
      for (int k : {1, 4, 16, 64}) {
        std::vector<SparseVec<value_t>> xs;
        std::vector<TileVector<value_t>> xts;
        for (int v = 0; v < k; ++v) {
          xs.push_back(gen_sparse_vector(a.cols, sp, 2000 + v));
          xts.push_back(TileVector<value_t>::from_sparse(xs.back(), 16));
        }
        SpmspvWorkspace<value_t> ws;
        const double t_single = time_best_ms(
            [&] {
              for (const auto& xt : xts) {
                (void)tile_spmspv(tiled, xt, ws, &pool);
              }
            },
            iters);
        const double t_batch = time_best_ms(
            [&] { (void)tile_spmspv_batch(tiled, xts, &pool); }, iters);
        const double speedup = t_single / t_batch;
        table.add_row({fmt(sp, 2), std::to_string(k), fmt(t_single, 3),
                       fmt(t_batch, 3), fmt(speedup, 2) + "x",
                       fmt(t_batch / k, 4)});
        if (!metrics_path.empty()) {
          const std::string key = std::string(name) + "@" + fmt(sp, 2) +
                                  ".k" + std::to_string(k);
          metrics.put_double(key + ".loop_ms_best", t_single);
          metrics.put_double(key + ".block_ms_best", t_batch);
          metrics.put_double(key + ".block_vs_loop", speedup);
          metrics.put_double(key + ".block_ms_per_vector", t_batch / k);
        }
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: per-vector cost falls as k grows (metadata\n"
               "amortizes and payload values are multiplied across the whole\n"
               "block while resident); at k = 64 the block path should be\n"
               ">= 2x the per-vector throughput of the singles loop.\n";
  if (!metrics_path.empty()) {
    counters_to_metrics(metrics);
    if (metrics.write_file(metrics_path)) {
      std::cout << "metrics written to " << metrics_path << "\n";
    } else {
      std::cerr << "failed to write metrics to " << metrics_path << "\n";
      return 1;
    }
  }
  return 0;
}
