// Ablation: batched SpMSpV amortization. Sweeps the batch size k for
// Y = A X against k independent tile_spmspv calls, on a dense-tile FEM
// matrix and on a scattered web matrix. The batch kernel shares each
// tile's metadata and payload across the whole batch; the per-vector
// kernel re-reads them k times.
#include <iostream>

#include "bench_common.hpp"
#include "core/tile_spmspv.hpp"
#include "core/tile_spmspv_batch.hpp"
#include "gen/vector_gen.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 3;
  ThreadPool pool(4);
  std::cout << "Ablation: batched SpMSpV (shared tile traversal) vs "
               "repeated single multiplies\n\n";

  for (const char* name : {"cant", "in-2004"}) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const TileMatrix<value_t> tiled =
        TileMatrix<value_t>::from_csr(a, 16, 2);

    std::cout << "--- " << name << " (" << fmt_count(a.nnz())
              << " nnz, vector sparsity 0.01) ---\n";
    Table table({"batch k", "k singles ms", "batched ms", "speedup",
                 "ms per vector"});
    for (int k : {1, 4, 16, 64}) {
      std::vector<SparseVec<value_t>> xs;
      std::vector<TileVector<value_t>> xts;
      for (int v = 0; v < k; ++v) {
        xs.push_back(gen_sparse_vector(a.cols, 0.01, 2000 + v));
        xts.push_back(TileVector<value_t>::from_sparse(xs.back(), 16));
      }
      SpmspvWorkspace<value_t> ws;
      const double t_single = time_best_ms(
          [&] {
            for (const auto& xt : xts) {
              (void)tile_spmspv(tiled, xt, ws, &pool);
            }
          },
          iters);
      const double t_batch = time_best_ms(
          [&] { (void)tile_spmspv_batch(tiled, xts, &pool); }, iters);
      table.add_row({std::to_string(k), fmt(t_single, 3), fmt(t_batch, 3),
                     fmt(t_single / t_batch, 2) + "x",
                     fmt(t_batch / k, 4)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: per-vector cost falls as k grows (metadata "
               "amortizes);\nthe effect is largest on matrices whose "
               "metadata-to-payload ratio is high\n(the scattered web "
               "matrix).\n";
  return 0;
}
