// Figure 8: BFS throughput (GTEPS) of GSwitch, Gunrock and TileBFS on the
// 12 representative matrices.
#include <iostream>

#include "baselines/dobfs.hpp"
#include "baselines/gswitch_bfs.hpp"
#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 3;
  ThreadPool pool(4);
  std::cout << "Figure 8: BFS GTEPS on the 12 representative matrices\n\n";

  Table table({"matrix", "GSwitch", "Gunrock", "TileBFS (this work)"});
  std::vector<double> sp_gunrock, sp_gswitch;
  for (const auto& name : suite_representative12()) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const index_t src = max_degree_vertex(a);
    const offset_t edges = traversed_edges(a, dobfs(a, a, src, {}, &pool));

    TileBfs tile_bfs(a, {}, &pool);
    const double t_tile = time_best_ms([&] { (void)tile_bfs.run(src); }, iters);
    const double t_gunrock =
        time_best_ms([&] { (void)dobfs(a, a, src, {}, &pool); }, iters);
    GswitchTuner tuner;
    const double t_gswitch = time_best_ms(
        [&] { (void)gswitch_bfs(a, a, src, tuner, &pool); }, iters);

    sp_gunrock.push_back(t_gunrock / t_tile);
    sp_gswitch.push_back(t_gswitch / t_tile);
    table.add_row({name, fmt(gteps(edges, t_gswitch), 3),
                   fmt(gteps(edges, t_gunrock), 3),
                   fmt(gteps(edges, t_tile), 3)});
  }
  table.print(std::cout);
  std::cout << "\naverage speedup of TileBFS: vs Gunrock "
            << fmt(geomean(sp_gunrock), 2) << "x, vs GSwitch "
            << fmt(geomean(sp_gswitch), 2) << "x\n"
            << "Expected shape (paper): TileBFS leads on FEM matrices with\n"
               "dense tile payloads (ldoor-class); road networks are the\n"
               "hardest case for every algorithm.\n";
  return 0;
}
