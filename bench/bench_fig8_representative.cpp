// Figure 8: BFS throughput (GTEPS) of GSwitch, Gunrock and TileBFS on the
// 12 representative matrices.
//
//   bench_fig8_representative [iters] [--iters N] [--metrics out.json]
//
// --metrics exports per-matrix TileBFS timing distributions through the
// shared reporter fields (ms_best/ms_mean/ms_p50/ms_p95).
#include <iostream>
#include <string>

#include "baselines/dobfs.hpp"
#include "baselines/gswitch_bfs.hpp"
#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"
#include "util/args.hpp"
#include "util/simd.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (const std::string bad = args.first_unknown_flag(
          {"--iters", "--json", "--metrics"});
      !bad.empty()) {
    std::cerr << "unknown flag '" << bad << "'\n";
    return 2;
  }
  const auto pos = args.positional();
  int iters = static_cast<int>(args.get_int("--iters", 3));
  if (!pos.empty()) iters = std::atoi(pos[0].c_str());
  std::string metrics_path = args.get("--metrics");
  if (metrics_path.empty()) metrics_path = args.get("--json");
  obs::MetricsRegistry metrics;
  metrics.put_str("bench", "fig8_representative");
  metrics.put_str("simd_isa", simd::active_isa());
  metrics.put_int("iters", iters);
  ThreadPool pool(4);
  std::cout << "Figure 8: BFS GTEPS on the 12 representative matrices\n\n";

  Table table({"matrix", "GSwitch", "Gunrock", "TileBFS (this work)"});
  std::vector<double> sp_gunrock, sp_gswitch;
  for (const auto& name : suite_representative12()) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const index_t src = max_degree_vertex(a);
    const offset_t edges = traversed_edges(a, dobfs(a, a, src, {}, &pool));

    TileBfs tile_bfs(a, {}, &pool);
    const TimingStats t_tile =
        time_stats_ms([&] { (void)tile_bfs.run(src); }, iters);
    const double t_gunrock =
        time_best_ms([&] { (void)dobfs(a, a, src, {}, &pool); }, iters);
    GswitchTuner tuner;
    const double t_gswitch = time_best_ms(
        [&] { (void)gswitch_bfs(a, a, src, tuner, &pool); }, iters);

    sp_gunrock.push_back(t_gunrock / t_tile.best);
    sp_gswitch.push_back(t_gswitch / t_tile.best);
    table.add_row({name, fmt(gteps(edges, t_gswitch), 3),
                   fmt(gteps(edges, t_gunrock), 3),
                   fmt(gteps(edges, t_tile.best), 3)});
    if (!metrics_path.empty()) {
      put_timing(metrics, name + ".tilebfs", t_tile);
    }
  }
  table.print(std::cout);
  std::cout << "\naverage speedup of TileBFS: vs Gunrock "
            << fmt(geomean(sp_gunrock), 2) << "x, vs GSwitch "
            << fmt(geomean(sp_gswitch), 2) << "x\n"
            << "Expected shape (paper): TileBFS leads on FEM matrices with\n"
               "dense tile payloads (ldoor-class); road networks are the\n"
               "hardest case for every algorithm.\n";
  if (!metrics_path.empty()) {
    counters_to_metrics(metrics);
    if (metrics.write_file(metrics_path)) {
      std::cout << "metrics written to " << metrics_path << "\n";
    } else {
      std::cerr << "failed to write metrics to " << metrics_path << "\n";
      return 1;
    }
  }
  return 0;
}
