// Graph500-style BFS benchmark: R-MAT scale sweep, 16 random sources per
// scale, harmonic-mean TEPS, and full tree validation of every traversal
// (bfs/bfs_validate.hpp). This extends the paper's evaluation with the
// standard community methodology and exercises TileBFS, the
// direction-optimizing baseline and the multi-source batch side by side.
#include <iostream>

#include "apps/ms_bfs.hpp"
#include "baselines/dobfs.hpp"
#include "bench_common.hpp"
#include "bfs/bfs_validate.hpp"
#include "bfs/tile_bfs.hpp"
#include "gen/rmat.hpp"
#include "util/prng.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

namespace {

double harmonic_mean(const std::vector<double>& xs) {
  double inv = 0.0;
  for (double x : xs) inv += 1.0 / x;
  return xs.empty() ? 0.0 : static_cast<double>(xs.size()) / inv;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_scale = argc > 1 ? std::atoi(argv[1]) : 15;
  const int num_sources = 16;
  ThreadPool pool(4);
  std::cout << "Graph500-style BFS benchmark (R-MAT, " << num_sources
            << " sources per scale, validated)\n\n";

  Table table({"scale", "n", "edges", "TileBFS hmean MTEPS",
               "Gunrock hmean MTEPS", "MS-BFS batch MTEPS", "validated"});
  for (int scale = 12; scale <= max_scale; ++scale) {
    RmatParams prm;
    prm.scale = scale;
    prm.edge_factor = 16;
    const Csr<value_t> g = Csr<value_t>::from_coo(gen_rmat(prm, 42));

    // Sources: random vertices with at least one edge (Graph500 rule).
    Prng rng(scale);
    std::vector<index_t> sources;
    while (static_cast<int>(sources.size()) < num_sources) {
      const auto v = static_cast<index_t>(rng.next_below(g.rows));
      if (g.row_nnz(v) > 0) sources.push_back(v);
    }

    TileBfs tile_bfs(g, {}, &pool);
    std::vector<double> tile_teps, gunrock_teps;
    int validated = 0;
    for (index_t src : sources) {
      const BfsResult r = tile_bfs.run(src);
      const offset_t edges = traversed_edges(g, r.levels);
      tile_teps.push_back(static_cast<double>(edges) / (r.total_ms * 1e3));

      const auto parents = bfs_parents(g, r.levels, src);
      std::string error;
      if (validate_bfs(g, src, r.levels, parents, &error)) {
        ++validated;
      } else {
        std::cerr << "VALIDATION FAILED at scale " << scale << " source "
                  << src << ": " << error << '\n';
      }

      Timer t;
      const auto base = dobfs(g, g, src, {}, &pool);
      gunrock_teps.push_back(static_cast<double>(traversed_edges(g, base)) /
                             (t.elapsed_ms() * 1e3));
    }

    // MS-BFS: all sources in one 16-wide batch.
    Timer t;
    const MsBfsResult ms = ms_bfs(g, sources, &pool);
    offset_t ms_edges = 0;
    for (const auto& levels : ms.levels) {
      ms_edges += traversed_edges(g, levels);
    }
    const double ms_teps = static_cast<double>(ms_edges) /
                           (t.elapsed_ms() * 1e3);

    table.add_row({std::to_string(scale), fmt_count(g.rows),
                   fmt_count(g.nnz()), fmt(harmonic_mean(tile_teps), 2),
                   fmt(harmonic_mean(gunrock_teps), 2), fmt(ms_teps, 2),
                   std::to_string(validated) + "/" +
                       std::to_string(num_sources)});
  }
  table.print(std::cout);
  std::cout << "\nMS-BFS amortizes edge scans across the batch, so its "
               "aggregate MTEPS\nexceeds any single-source traversal.\n";
  return 0;
}
