// Graph500-style BFS benchmark: R-MAT scale sweep, 16 random sources per
// scale, harmonic-mean TEPS, and full tree validation of every traversal
// (bfs/bfs_validate.hpp). This extends the paper's evaluation with the
// standard community methodology and exercises TileBFS, the
// direction-optimizing baseline and the multi-source batch side by side.
//
//   bench_graph500 [max_scale] [--scale N] [--min-scale N] [--shards S]
//                  [--ooc] [--metrics out.json|out.csv]
//
// --ooc runs the out-of-core path: each graph is converted once to a v2
// tile file (formats/tile_file.hpp) and the traversal engine is rebuilt by
// mmapping that file — the conversion-vs-map times quantify the O(mmap)
// startup win, and scales that no longer fit comfortably as a second
// in-memory copy only pay for the mapped pages actually touched.
// --shards configures NUMA-sharded dispatch; per-shard balance (max/mean
// shard bytes and ms, from obs/shard_stats.hpp) lands in --metrics along
// with the TEPS series.
#include <cstdio>
#include <iostream>
#include <string>

#include "apps/ms_bfs.hpp"
#include "baselines/dobfs.hpp"
#include "bench_common.hpp"
#include "bfs/bfs_validate.hpp"
#include "bfs/tile_bfs.hpp"
#include "formats/tile_file.hpp"
#include "gen/rmat.hpp"
#include "obs/shard_stats.hpp"
#include "util/args.hpp"
#include "util/prng.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

namespace {

double harmonic_mean(const std::vector<double>& xs) {
  double inv = 0.0;
  for (double x : xs) inv += 1.0 / x;
  return xs.empty() ? 0.0 : static_cast<double>(xs.size()) / inv;
}

/// Converts `g` to a v2 tile-file at the tile size TileBfs would pick for
/// this order, so the mapped rebuild agrees with the in-memory one.
double convert_to_file(const Csr<value_t>& g, const std::string& path) {
  Timer t;
  if (g.rows > 10000) {
    write_bit_tile_graph_file<64>(path, BitTileGraph<64>::from_csr(g, 2));
  } else {
    write_bit_tile_graph_file<32>(path, BitTileGraph<32>::from_csr(g, 2));
  }
  return t.elapsed_ms();
}

struct ShardBalance {
  std::uint64_t bytes_max = 0;
  double bytes_mean = 0.0;
  double ms_max = 0.0;
  double ms_mean = 0.0;
  double imbalance = 1.0;
  int shards = 0;
};

ShardBalance shard_balance(const obs::ShardSnapshot& s) {
  ShardBalance b;
  b.shards = s.shards;
  if (s.shards == 0) return b;
  std::uint64_t total_bytes = 0;
  double total_ms = 0.0;
  for (int i = 0; i < s.shards; ++i) {
    total_bytes += s.bytes[i];
    total_ms += s.ms[i];
    if (s.bytes[i] > b.bytes_max) b.bytes_max = s.bytes[i];
    if (s.ms[i] > b.ms_max) b.ms_max = s.ms[i];
  }
  b.bytes_mean = static_cast<double>(total_bytes) / s.shards;
  b.ms_mean = total_ms / s.shards;
  b.imbalance = s.bytes_imbalance();
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (const std::string bad = args.first_unknown_flag(
          {"--scale", "--min-scale", "--shards", "--ooc", "--metrics"});
      !bad.empty()) {
    std::cerr << "unknown flag '" << bad << "'\n";
    return 2;
  }
  int max_scale = static_cast<int>(args.get_int("--scale", 15));
  const auto pos = args.positional();
  if (!pos.empty()) max_scale = std::atoi(pos[0].c_str());
  const int min_scale = static_cast<int>(args.get_int("--min-scale", 12));
  const int shards = static_cast<int>(args.get_int("--shards", 4));
  const bool ooc = args.has("--ooc");
  const std::string metrics_path = args.get("--metrics");
  const int num_sources = 16;

  ThreadPool pool(4);
  if (shards > 1) pool.configure_shards(shards);
  obs::MetricsRegistry metrics;
  metrics.put_str("bench", "graph500");
  metrics.put_int("shards", shards);
  metrics.put_int("ooc", ooc ? 1 : 0);

  std::cout << "Graph500-style BFS benchmark (R-MAT, " << num_sources
            << " sources per scale, validated"
            << (ooc ? ", out-of-core tile files" : "") << ")\n\n";

  Table table({"scale", "n", "edges", "TileBFS hmean MTEPS",
               "Gunrock hmean MTEPS", "MS-BFS batch MTEPS", "bytes imb",
               "validated"});
  for (int scale = min_scale; scale <= max_scale; ++scale) {
    RmatParams prm;
    prm.scale = scale;
    prm.edge_factor = 16;
    const Csr<value_t> g = Csr<value_t>::from_coo(gen_rmat(prm, 42));
    const std::string mkey = "g500.s" + std::to_string(scale);

    // Sources: random vertices with at least one edge (Graph500 rule).
    Prng rng(scale);
    std::vector<index_t> sources;
    while (static_cast<int>(sources.size()) < num_sources) {
      const auto v = static_cast<index_t>(rng.next_below(g.rows));
      if (g.row_nnz(v) > 0) sources.push_back(v);
    }

    obs::shard_reset();
    // Out-of-core: convert once, then rebuild the engine by mmap — the
    // preprocess time of the mapped build is the O(mmap) startup cost.
    std::string graph_file;
    if (ooc) {
      graph_file = "/tmp/tilespmspv_g500_s" + std::to_string(scale) + ".ttlf";
      const double convert_ms = convert_to_file(g, graph_file);
      metrics.put_double(mkey + ".convert_ms", convert_ms);
    }
    TileBfs tile_bfs = ooc ? TileBfs(graph_file, {}, &pool)
                           : TileBfs(g, {}, &pool);
    metrics.put_double(mkey + (ooc ? ".map_ms" : ".build_ms"),
                       tile_bfs.preprocess_ms());

    std::vector<double> tile_teps, gunrock_teps;
    int validated = 0;
    for (index_t src : sources) {
      const BfsResult r = tile_bfs.run(src);
      const offset_t edges = traversed_edges(g, r.levels);
      tile_teps.push_back(static_cast<double>(edges) / (r.total_ms * 1e3));

      const auto parents = bfs_parents(g, r.levels, src);
      std::string error;
      if (validate_bfs(g, src, r.levels, parents, &error)) {
        ++validated;
      } else {
        std::cerr << "VALIDATION FAILED at scale " << scale << " source "
                  << src << ": " << error << '\n';
      }

      Timer t;
      const auto base = dobfs(g, g, src, {}, &pool);
      gunrock_teps.push_back(static_cast<double>(traversed_edges(g, base)) /
                             (t.elapsed_ms() * 1e3));
    }
    // Balance over the sharded traversals (bytes are the engine's shard
    // plan; ms accumulate across all sources at this scale).
    const ShardBalance bal = shard_balance(obs::shard_snapshot());

    // MS-BFS: all sources in one 16-wide batch.
    Timer t;
    const MsBfsResult ms = ms_bfs(g, sources, &pool);
    offset_t ms_edges = 0;
    for (const auto& levels : ms.levels) {
      ms_edges += traversed_edges(g, levels);
    }
    const double ms_teps = static_cast<double>(ms_edges) /
                           (t.elapsed_ms() * 1e3);

    table.add_row({std::to_string(scale), fmt_count(g.rows),
                   fmt_count(g.nnz()), fmt(harmonic_mean(tile_teps), 2),
                   fmt(harmonic_mean(gunrock_teps), 2), fmt(ms_teps, 2),
                   fmt(bal.imbalance, 3),
                   std::to_string(validated) + "/" +
                       std::to_string(num_sources)});

    metrics.put_double(mkey + ".tile_hmean_mteps", harmonic_mean(tile_teps));
    metrics.put_double(mkey + ".gunrock_hmean_mteps",
                       harmonic_mean(gunrock_teps));
    metrics.put_double(mkey + ".msbfs_mteps", ms_teps);
    metrics.put_int(mkey + ".validated", validated);
    metrics.put_int(mkey + ".shards", bal.shards);
    metrics.put_int(mkey + ".shard_bytes_max",
                    static_cast<std::int64_t>(bal.bytes_max));
    metrics.put_double(mkey + ".shard_bytes_mean", bal.bytes_mean);
    metrics.put_double(mkey + ".shard_ms_max", bal.ms_max);
    metrics.put_double(mkey + ".shard_ms_mean", bal.ms_mean);
    metrics.put_double(mkey + ".bytes_imbalance", bal.imbalance);

    if (!graph_file.empty()) std::remove(graph_file.c_str());
  }
  table.print(std::cout);
  std::cout << "\nMS-BFS amortizes edge scans across the batch, so its "
               "aggregate MTEPS\nexceeds any single-source traversal.\n";
  if (!metrics_path.empty()) {
    counters_to_metrics(metrics);
    if (metrics.write_file(metrics_path)) {
      std::cout << "metrics written to " << metrics_path << "\n";
    } else {
      std::cerr << "failed to write metrics to " << metrics_path << "\n";
      return 1;
    }
  }
  return 0;
}
