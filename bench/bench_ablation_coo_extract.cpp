// Ablation (paper §4.2, the cryg10000 observation): the effect of
// extracting very sparse tiles into a side COO matrix. Sweeps the
// extraction threshold on matrices mixing dense structure with scattered
// noise and reports tile counts, memory, and SpMSpV / BFS time.
#include <iostream>

#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"
#include "core/tile_spmspv.hpp"
#include "gen/vector_gen.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

namespace {

/// Approximate bytes of the tiled numeric representation (payload +
/// metadata), to show the space side of the trade-off.
std::size_t tiled_bytes(const TileMatrix<value_t>& t) {
  return t.tile_row_ptr.size() * sizeof(offset_t) +
         t.tile_col_id.size() * sizeof(index_t) +
         t.tile_nnz_ptr.size() * sizeof(offset_t) +
         t.intra_row_ptr.size() * sizeof(std::uint16_t) +
         t.local_col.size() + t.vals.size() * sizeof(value_t) +
         static_cast<std::size_t>(t.extracted.nnz()) *
             (2 * sizeof(index_t) + sizeof(value_t));
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 3;
  ThreadPool pool(4);
  std::cout << "Ablation: very-sparse tile extraction (COO side matrix)\n\n";

  for (const char* name : {"band-scattered", "roadNet-TX", "in-2004"}) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const SparseVec<value_t> x = gen_sparse_vector(a.cols, 0.01, 1);
    const TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
    const index_t src = max_degree_vertex(a);

    std::cout << "--- " << name << " (" << fmt_count(a.nnz())
              << " nnz) ---\n";
    Table table({"threshold", "tiles kept", "nnz extracted", "bytes",
                 "SpMSpV ms", "BFS ms"});
    for (index_t threshold : {0, 1, 2, 4, 8}) {
      const TileMatrix<value_t> tiled =
          TileMatrix<value_t>::from_csr(a, 16, threshold);
      SpmspvWorkspace<value_t> ws;
      const double t_mul = time_best_ms(
          [&] { (void)tile_spmspv(tiled, xt, ws, &pool); }, iters);

      TileBfsConfig cfg;
      cfg.extract_threshold = threshold;
      TileBfs bfs(a, cfg, &pool);
      const double t_bfs = time_best_ms([&] { (void)bfs.run(src); }, iters);

      table.add_row({std::to_string(threshold),
                     fmt_count(tiled.num_tiles()),
                     fmt_count(tiled.extracted.nnz()),
                     fmt_count(static_cast<long long>(tiled_bytes(tiled))),
                     fmt(t_mul, 3), fmt(t_bfs, 3)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape (paper, cryg10000): moving singleton tiles\n"
               "to COO removes a large share of tile metadata and improves\n"
               "scattered matrices (band-scattered here) while leaving\n"
               "dense-tile matrices unchanged.\n";
  return 0;
}
