// Figure 9: directional-optimization ablation — BFS throughput with the
// kernels enabled step by step: K1 (Push-CSC only), K1+K2 (adds Push-CSR),
// K1+K2+K3 (adds Pull-CSC), on the representative matrices.
//
//   bench_fig9_directional [iters] [--iters N] [--metrics out.json]
//
// --metrics exports the full-selector (K1+K2+K3) timing distribution per
// matrix through the shared reporter fields, plus the per-mask best-of.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"
#include "util/args.hpp"
#include "util/simd.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (const std::string bad = args.first_unknown_flag(
          {"--iters", "--json", "--metrics"});
      !bad.empty()) {
    std::cerr << "unknown flag '" << bad << "'\n";
    return 2;
  }
  const auto pos = args.positional();
  int iters = static_cast<int>(args.get_int("--iters", 3));
  if (!pos.empty()) iters = std::atoi(pos[0].c_str());
  std::string metrics_path = args.get("--metrics");
  if (metrics_path.empty()) metrics_path = args.get("--json");
  obs::MetricsRegistry metrics;
  metrics.put_str("bench", "fig9_directional");
  metrics.put_str("simd_isa", simd::active_isa());
  metrics.put_int("iters", iters);
  ThreadPool pool(4);
  std::cout << "Figure 9: step-wise stacking of the three directional "
               "kernels (GTEPS)\n\n";

  Table table({"matrix", "K1", "K1+K2", "K1+K2+K3", "K3/K1 gain"});
  std::vector<double> gains;
  for (const auto& name : suite_representative12()) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const index_t src = max_degree_vertex(a);

    double t_by_mask[3] = {0, 0, 0};
    TimingStats t_full;
    const unsigned masks[3] = {1u, 3u, 7u};
    offset_t edges = 0;
    for (int i = 0; i < 3; ++i) {
      TileBfsConfig cfg;
      cfg.kernel_mask = masks[i];
      TileBfs bfs(a, cfg, &pool);
      if (i == 0) {
        edges = traversed_edges(a, bfs.run(src).levels);
      }
      const TimingStats t =
          time_stats_ms([&] { (void)bfs.run(src); }, iters);
      t_by_mask[i] = t.best;
      if (i == 2) t_full = t;
    }
    gains.push_back(t_by_mask[0] / t_by_mask[2]);
    table.add_row({name, fmt(gteps(edges, t_by_mask[0]), 3),
                   fmt(gteps(edges, t_by_mask[1]), 3),
                   fmt(gteps(edges, t_by_mask[2]), 3),
                   fmt(t_by_mask[0] / t_by_mask[2], 2) + "x"});
    if (!metrics_path.empty()) {
      put_timing(metrics, name + ".k123", t_full);
      metrics.put_double(name + ".k1.ms_best", t_by_mask[0]);
      metrics.put_double(name + ".k12.ms_best", t_by_mask[1]);
    }
  }
  table.print(std::cout);
  std::cout << "\ngeomean gain of the full selector over Push-CSC alone: "
            << fmt(geomean(gains), 2) << "x\n"
            << "Expected shape (paper): performance improves monotonically\n"
               "as kernels stack; the biggest jumps come on matrices whose\n"
               "frontier passes through all three density regimes.\n";
  if (!metrics_path.empty()) {
    counters_to_metrics(metrics);
    if (metrics.write_file(metrics_path)) {
      std::cout << "metrics written to " << metrics_path << "\n";
    } else {
      std::cerr << "failed to write metrics to " << metrics_path << "\n";
      return 1;
    }
  }
  return 0;
}
