// Figure 9: directional-optimization ablation — BFS throughput with the
// kernels enabled step by step: K1 (Push-CSC only), K1+K2 (adds Push-CSR),
// K1+K2+K3 (adds Pull-CSC), on the representative matrices.
#include <iostream>

#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 3;
  ThreadPool pool(4);
  std::cout << "Figure 9: step-wise stacking of the three directional "
               "kernels (GTEPS)\n\n";

  Table table({"matrix", "K1", "K1+K2", "K1+K2+K3", "K3/K1 gain"});
  std::vector<double> gains;
  for (const auto& name : suite_representative12()) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const index_t src = max_degree_vertex(a);

    double t_by_mask[3] = {0, 0, 0};
    const unsigned masks[3] = {1u, 3u, 7u};
    offset_t edges = 0;
    for (int i = 0; i < 3; ++i) {
      TileBfsConfig cfg;
      cfg.kernel_mask = masks[i];
      TileBfs bfs(a, cfg, &pool);
      if (i == 0) {
        edges = traversed_edges(a, bfs.run(src).levels);
      }
      t_by_mask[i] = time_best_ms([&] { (void)bfs.run(src); }, iters);
    }
    gains.push_back(t_by_mask[0] / t_by_mask[2]);
    table.add_row({name, fmt(gteps(edges, t_by_mask[0]), 3),
                   fmt(gteps(edges, t_by_mask[1]), 3),
                   fmt(gteps(edges, t_by_mask[2]), 3),
                   fmt(t_by_mask[0] / t_by_mask[2], 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\ngeomean gain of the full selector over Push-CSC alone: "
            << fmt(geomean(gains), 2) << "x\n"
            << "Expected shape (paper): performance improves monotonically\n"
               "as kernels stack; the biggest jumps come on matrices whose\n"
               "frontier passes through all three density regimes.\n";
  return 0;
}
