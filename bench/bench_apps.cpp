// Applications throughput: every graph algorithm built on the library's
// primitives (the workloads the paper's introduction motivates — BFS,
// betweenness centrality, RCM — plus the semiring extensions), timed on
// representative matrices of their natural class. Not a paper artifact;
// a completeness table showing the substrate carrying real algorithms.
#include <iostream>
#include <numeric>

#include "apps/algebraic_bfs.hpp"
#include "apps/betweenness.hpp"
#include "apps/connected_components.hpp"
#include "apps/ms_bfs.hpp"
#include "apps/ppr.hpp"
#include "apps/rcm.hpp"
#include "apps/sssp.hpp"
#include "apps/triangles.hpp"
#include "bench_common.hpp"
#include "bfs/tile_ms_bfs.hpp"
#include "gen/vector_gen.hpp"
#include "util/prng.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main() {
  ThreadPool pool(4);
  std::cout << "Application layer on the tiled substrate\n\n";
  Table table({"application", "workload", "result", "time ms"});

  {  // Algebraic BFS (paper Alg. 3)
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("cant"));
    Timer t;
    const auto levels = algebraic_bfs(a, 0, {}, &pool);
    index_t reached = 0;
    for (index_t l : levels) reached += l >= 0;
    table.add_row({"algebraic BFS (Alg. 3)", "cant",
                   fmt_count(reached) + " vertices", fmt(t.elapsed_ms(), 2)});
  }
  {  // Connected components
    const Csr<value_t> a =
        Csr<value_t>::from_coo(suite_matrix("roadNet-TX"));
    Timer t;
    const ComponentsResult r = connected_components(a, {}, &pool);
    table.add_row({"connected components", "roadNet-TX",
                   std::to_string(r.count) + " components",
                   fmt(t.elapsed_ms(), 2)});
  }
  {  // SSSP (min-plus semiring)
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("cavity23"));
    Timer t;
    const SsspResult r = sssp(a, 0, 16, &pool);
    table.add_row({"SSSP (min-plus)", "cavity23",
                   std::to_string(r.rounds) + " rounds",
                   fmt(t.elapsed_ms(), 2)});
  }
  {  // Betweenness centrality (sampled)
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("er-small"));
    std::vector<index_t> sources;
    for (index_t s = 0; s < 16; ++s) sources.push_back(s * 300);
    Timer t;
    const auto bc = betweenness_centrality(a, sources, true, {}, &pool);
    const double top = max_of(bc);
    table.add_row({"betweenness (16 sources)", "er-small",
                   "max score " + fmt(top, 1), fmt(t.elapsed_ms(), 2)});
  }
  {  // RCM ordering: recover a band destroyed by a random relabeling.
    Csr<value_t> band = Csr<value_t>::from_coo(suite_matrix("msdoor"));
    Prng rng(77);
    std::vector<index_t> shuffle(band.rows);
    std::iota(shuffle.begin(), shuffle.end(), index_t{0});
    for (index_t i = band.rows - 1; i > 0; --i) {
      std::swap(shuffle[i], shuffle[rng.next_below(i + 1)]);
    }
    const Csr<value_t> scrambled = permute_symmetric(band, shuffle);
    Timer t;
    const auto perm = rcm_ordering(scrambled);
    const Csr<value_t> reordered = permute_symmetric(scrambled, perm);
    table.add_row({"RCM ordering", "msdoor (relabeled)",
                   "bandwidth " + fmt_count(bandwidth(scrambled)) + " -> " +
                       fmt_count(bandwidth(reordered)),
                   fmt(t.elapsed_ms(), 2)});
  }
  {  // Personalized PageRank
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("in-2004"));
    SparseVec<value_t> seeds(a.cols);
    seeds.push(1234, 1.0);
    Timer t;
    const PprResult r = personalized_pagerank(a, seeds, {}, &pool);
    table.add_row({"personalized PageRank", "in-2004",
                   std::to_string(r.iterations) + " iterations",
                   fmt(t.elapsed_ms(), 2)});
  }
  {  // Multi-source BFS, plain and tiled
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("FB"));
    std::vector<index_t> sources;
    for (index_t s = 0; s < 64; ++s) sources.push_back(s * 512);
    Timer t1;
    (void)ms_bfs(a, sources, &pool);
    const double t_plain = t1.elapsed_ms();
    Timer t2;
    (void)tile_ms_bfs(a, sources, 2, &pool);
    const double t_tiled = t2.elapsed_ms();
    table.add_row({"MS-BFS 64 sources (plain)", "FB", "64 level arrays",
                   fmt(t_plain, 2)});
    table.add_row({"MS-BFS 64 sources (tiled)", "FB", "64 level arrays",
                   fmt(t_tiled, 2)});
  }
  {  // Triangle counting (bounded-degree graph: A² stays sparse; social
     // graphs' hub rows square into near-dense A² and belong to dedicated
     // triangle algorithms, not this demonstration).
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("cant"));
    Timer t;
    const auto tri = count_triangles(a, 16, &pool);
    table.add_row({"triangle count", "cant",
                   fmt_count(static_cast<long long>(tri)) + " triangles",
                   fmt(t.elapsed_ms(), 2)});
  }

  table.print(std::cout);
  return 0;
}
