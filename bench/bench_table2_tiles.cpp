// Table 2: the representative matrices with their sizes, nonzero counts,
// and number of non-empty tiles at tile sizes 16, 32 and 64.
#include <iostream>

#include "bench_common.hpp"
#include "tile/tile_matrix.hpp"

using namespace tilespmspv;

int main() {
  std::cout << "Table 2: information of the 12 representative matrices\n"
            << "(synthetic analogs; see DESIGN.md for the mapping)\n\n";
  Table table({"Matrix", "Size", "#nonzeros", "#tiles (16*16)",
               "#tiles (32*32)", "#tiles (64*64)"});
  for (const auto& name : suite_representative12()) {
    const Csr<value_t> a =
        Csr<value_t>::from_coo(suite_matrix(name));
    const auto t16 = TileMatrix<value_t>::from_csr(a, 16).num_tiles();
    const auto t32 = TileMatrix<value_t>::from_csr(a, 32).num_tiles();
    const auto t64 = TileMatrix<value_t>::from_csr(a, 64).num_tiles();
    table.add_row({name,
                   fmt_count(a.rows) + " x " + fmt_count(a.cols),
                   fmt_count(a.nnz()), fmt_count(t16), fmt_count(t32),
                   fmt_count(t64)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): tile counts shrink as the tile "
               "size grows for\nbanded/FEM matrices; road-network and mesh "
               "matrices keep a high tile count\nat every size because "
               "their nonzeros scatter.\n";
  return 0;
}
