// Figure 12: TileBFS vs the Enterprise stand-in (out-degree-classified
// frontier BFS) on analogs of the six matrices from the Enterprise paper:
// FB, KR-21-128, TW, audikw_1, roadCA, europe.osm.
#include <iostream>

#include "baselines/enterprise_bfs.hpp"
#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 3;
  ThreadPool pool(4);
  std::cout << "Figure 12: TileBFS vs Enterprise on the 6 matrices of its "
               "original paper (GTEPS)\n\n";

  Table table({"matrix", "Enterprise", "TileBFS (this work)", "speedup"});
  std::vector<double> speedups;
  for (const auto& name : suite_enterprise6()) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const index_t src = max_degree_vertex(a);
    const offset_t edges =
        traversed_edges(a, enterprise_bfs(a, a, src, {}, &pool));

    TileBfs tile_bfs(a, {}, &pool);
    const double t_tile = time_best_ms([&] { (void)tile_bfs.run(src); }, iters);
    const double t_ent = time_best_ms(
        [&] { (void)enterprise_bfs(a, a, src, {}, &pool); }, iters);

    speedups.push_back(t_ent / t_tile);
    table.add_row({name, fmt(gteps(edges, t_ent), 3),
                   fmt(gteps(edges, t_tile), 3), fmt(t_ent / t_tile, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\naverage speedup " << fmt(geomean(speedups), 2) << "x, max "
            << fmt(max_of(speedups), 2) << "x\n"
            << "Expected shape (paper): TileBFS wins on most matrices, with\n"
               "the clearest margin on FEM matrices (audikw_1-class) whose\n"
               "low tile occupancy cuts memory traffic.\n";
  return 0;
}
