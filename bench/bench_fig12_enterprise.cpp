// Figure 12: TileBFS vs the Enterprise stand-in (out-degree-classified
// frontier BFS) on analogs of the six matrices from the Enterprise paper:
// FB, KR-21-128, TW, audikw_1, roadCA, europe.osm.
//
//   bench_fig12_enterprise [iters] [--iters N] [--metrics out.json|out.csv]
//
// --metrics exports per-matrix TileBFS timing distributions through the
// shared reporter fields (ms_best/ms_mean/ms_p50/ms_p95).
#include <iostream>
#include <string>

#include "baselines/enterprise_bfs.hpp"
#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"
#include "util/args.hpp"
#include "util/simd.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (const std::string bad = args.first_unknown_flag(
          {"--iters", "--json", "--metrics"});
      !bad.empty()) {
    std::cerr << "unknown flag '" << bad << "'\n";
    return 2;
  }
  const auto pos = args.positional();
  int iters = static_cast<int>(args.get_int("--iters", 3));
  if (!pos.empty()) iters = std::atoi(pos[0].c_str());
  std::string metrics_path = args.get("--metrics");
  if (metrics_path.empty()) metrics_path = args.get("--json");
  obs::MetricsRegistry metrics;
  metrics.put_str("bench", "fig12_enterprise");
  metrics.put_str("simd_isa", simd::active_isa());
  metrics.put_int("iters", iters);
  ThreadPool pool(4);
  std::cout << "Figure 12: TileBFS vs Enterprise on the 6 matrices of its "
               "original paper (GTEPS)\n\n";

  Table table({"matrix", "Enterprise", "TileBFS (this work)", "speedup"});
  std::vector<double> speedups;
  for (const auto& name : suite_enterprise6()) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const index_t src = max_degree_vertex(a);
    const offset_t edges =
        traversed_edges(a, enterprise_bfs(a, a, src, {}, &pool));

    TileBfs tile_bfs(a, {}, &pool);
    const TimingStats t_tile =
        time_stats_ms([&] { (void)tile_bfs.run(src); }, iters);
    const double t_ent = time_best_ms(
        [&] { (void)enterprise_bfs(a, a, src, {}, &pool); }, iters);

    speedups.push_back(t_ent / t_tile.best);
    table.add_row({name, fmt(gteps(edges, t_ent), 3),
                   fmt(gteps(edges, t_tile.best), 3),
                   fmt(t_ent / t_tile.best, 2) + "x"});
    if (!metrics_path.empty()) {
      put_timing(metrics, name + ".tilebfs", t_tile);
      metrics.put_double(name + ".enterprise.ms_best", t_ent);
    }
  }
  table.print(std::cout);
  std::cout << "\naverage speedup " << fmt(geomean(speedups), 2) << "x, max "
            << fmt(max_of(speedups), 2) << "x\n"
            << "Expected shape (paper): TileBFS wins on most matrices, with\n"
               "the clearest margin on FEM matrices (audikw_1-class) whose\n"
               "low tile occupancy cuts memory traffic.\n";
  if (!metrics_path.empty()) {
    counters_to_metrics(metrics);
    if (metrics.write_file(metrics_path)) {
      std::cout << "metrics written to " << metrics_path << "\n";
    } else {
      std::cerr << "failed to write metrics to " << metrics_path << "\n";
      return 1;
    }
  }
  return 0;
}
