// Figure 11: format-conversion overhead — the time to convert a CSR matrix
// into the tiled bitmask format compared with the time of one complete BFS
// on it, for the representative matrices.
#include <iostream>

#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 3;
  ThreadPool pool(4);
  std::cout << "Figure 11: format conversion time vs one BFS time\n\n";

  Table table({"matrix", "convert ms", "BFS ms", "convert / BFS",
               "convert share"});
  std::vector<double> ratios;
  for (const auto& name : suite_representative12()) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const index_t src = max_degree_vertex(a);

    // Conversion is timed as a fresh build (best of `iters`).
    double convert_ms = 1e300;
    for (int i = 0; i < iters; ++i) {
      TileBfs fresh(a, {}, &pool);
      convert_ms = std::min(convert_ms, fresh.preprocess_ms());
    }
    TileBfs bfs(a, {}, &pool);
    const double bfs_ms = time_best_ms([&] { (void)bfs.run(src); }, iters);

    const double ratio = convert_ms / bfs_ms;
    ratios.push_back(ratio);
    table.add_row({name, fmt(convert_ms, 3), fmt(bfs_ms, 3), fmt(ratio, 2),
                   fmt(100.0 * convert_ms / (convert_ms + bfs_ms), 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\ngeomean convert/BFS ratio: " << fmt(geomean(ratios), 2)
            << "x; max: " << fmt(max_of(ratios), 2) << "x\n"
            << "Expected shape (paper): conversion does not exceed ~10x of\n"
               "a single BFS and amortizes over repeated traversals from\n"
               "different sources.\n";
  return 0;
}
