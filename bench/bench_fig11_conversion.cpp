// Figure 11: format-conversion overhead — the time to convert a CSR matrix
// into the tiled bitmask format compared with the time of one complete BFS
// on it, for the representative matrices.
//
//   bench_fig11_conversion [iters] [--iters N] [--metrics out.json|out.csv]
//
// --metrics exports the per-matrix conversion distribution (best/mean/p95
// over `iters` fresh builds), the best BFS time, and the ratio.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "bfs/tile_bfs.hpp"
#include "util/args.hpp"
#include "util/simd.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (const std::string bad = args.first_unknown_flag(
          {"--iters", "--json", "--metrics"});
      !bad.empty()) {
    std::cerr << "unknown flag '" << bad << "'\n";
    return 2;
  }
  const auto pos = args.positional();
  int iters = static_cast<int>(args.get_int("--iters", 3));
  if (!pos.empty()) iters = std::atoi(pos[0].c_str());
  std::string metrics_path = args.get("--metrics");
  if (metrics_path.empty()) metrics_path = args.get("--json");
  obs::MetricsRegistry metrics;
  metrics.put_str("bench", "fig11_conversion");
  metrics.put_str("simd_isa", simd::active_isa());
  metrics.put_int("iters", iters);
  ThreadPool pool(4);
  std::cout << "Figure 11: format conversion time vs one BFS time\n\n";

  Table table({"matrix", "convert ms", "mean", "p95", "BFS ms",
               "convert / BFS", "convert share"});
  std::vector<double> ratios;
  for (const auto& name : suite_representative12()) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const index_t src = max_degree_vertex(a);

    // Conversion is timed as a fresh build each sample; the distribution
    // (not just the min) goes through the shared TimingStats reduction so
    // this harness exports the same timing fields as every other bench.
    std::vector<double> convert_samples;
    convert_samples.reserve(static_cast<std::size_t>(iters));
    for (int i = 0; i < iters; ++i) {
      TileBfs fresh(a, {}, &pool);
      convert_samples.push_back(fresh.preprocess_ms());
    }
    const TimingStats t_convert =
        stats_from_samples(std::move(convert_samples));
    TileBfs bfs(a, {}, &pool);
    BfsWorkspace ws;
    const double bfs_ms =
        time_best_ms([&] { (void)bfs.run(src, ws); }, iters);

    const double ratio = t_convert.best / bfs_ms;
    ratios.push_back(ratio);
    table.add_row({name, fmt(t_convert.best, 3), fmt(t_convert.mean, 3),
                   fmt(t_convert.p95, 3), fmt(bfs_ms, 3), fmt(ratio, 2),
                   fmt(100.0 * t_convert.best / (t_convert.best + bfs_ms), 1) +
                       "%"});
    if (!metrics_path.empty()) {
      put_timing(metrics, name + ".convert", t_convert);
      metrics.put_double(name + ".bfs_ms_best", bfs_ms);
      metrics.put_double(name + ".convert_vs_bfs", ratio);
    }
  }
  table.print(std::cout);
  std::cout << "\ngeomean convert/BFS ratio: " << fmt(geomean(ratios), 2)
            << "x; max: " << fmt(max_of(ratios), 2) << "x\n"
            << "Expected shape (paper): conversion does not exceed ~10x of\n"
               "a single BFS and amortizes over repeated traversals from\n"
               "different sources.\n";
  if (!metrics_path.empty()) {
    metrics.put_double("convert_vs_bfs_geomean", geomean(ratios));
    counters_to_metrics(metrics);
    if (metrics.write_file(metrics_path)) {
      std::cout << "metrics written to " << metrics_path << "\n";
    } else {
      std::cerr << "failed to write metrics to " << metrics_path << "\n";
      return 1;
    }
  }
  return 0;
}
