// Shared plumbing for the per-figure benchmark harnesses: matrix loading,
// BFS source selection, traversed-edge accounting (GTEPS), and the "two
// GPUs" -> two pool configurations mapping described in EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "formats/csr.hpp"
#include "gen/suite.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace tilespmspv::bench {

/// Timing distribution of repeated runs. Best-of stays the comparison
/// metric (immune to scheduler noise, same as the paper's methodology);
/// mean/p50/p95 expose the variance that best-of hides, so exported
/// BENCH_*.json files capture both.
struct TimingStats {
  double best = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  std::vector<double> samples;
};

/// The one reduction from raw samples to reported timing fields. Every
/// harness that collects its own samples (e.g. fig11's fresh-build
/// conversion loop) funnels them through here so BENCH_*.json timing
/// fields mean the same thing in every file.
inline TimingStats stats_from_samples(std::vector<double> samples) {
  TimingStats t;
  t.best = min_of(samples);
  t.mean = tilespmspv::mean(samples);
  t.p50 = percentile(samples, 50.0);
  t.p95 = percentile(samples, 95.0);
  t.samples = std::move(samples);
  return t;
}

/// Runs `fn` once to warm caches, then `iters` timed runs.
template <typename Fn>
TimingStats time_stats_ms(Fn&& fn, int iters = 5) {
  fn();  // warm-up
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    Timer timer;
    fn();
    samples.push_back(timer.elapsed_ms());
  }
  return stats_from_samples(std::move(samples));
}

/// Shared reporter field names: every fig harness emits the same four
/// timing keys per case so exported files are cross-comparable (and so
/// tools/bench_compare can treat any of them uniformly).
inline void put_timing(obs::MetricsRegistry& m, const std::string& key,
                       const TimingStats& t) {
  m.put_double(key + ".ms_best", t.best);
  m.put_double(key + ".ms_mean", t.mean);
  m.put_double(key + ".ms_p50", t.p50);
  m.put_double(key + ".ms_p95", t.p95);
}

/// Dumps the current global counter snapshot into `m` under "counters.*".
inline void counters_to_metrics(obs::MetricsRegistry& m) {
  m.add_counters(obs::counters_snapshot());
}

/// Vertex with the highest out-degree: the standard benchmark source (it
/// guarantees a non-trivial traversal and is deterministic).
inline index_t max_degree_vertex(const Csr<value_t>& a) {
  index_t best = 0;
  index_t best_deg = -1;
  for (index_t r = 0; r < a.rows; ++r) {
    const index_t d = a.row_nnz(r);
    if (d > best_deg) {
      best_deg = d;
      best = r;
    }
  }
  return best;
}

/// Edges traversed by a BFS = sum of out-degrees of visited vertices (the
/// Graph500 TEPS convention).
inline offset_t traversed_edges(const Csr<value_t>& a,
                                const std::vector<index_t>& levels) {
  offset_t e = 0;
  for (index_t r = 0; r < a.rows; ++r) {
    if (levels[r] >= 0) e += a.row_nnz(r);
  }
  return e;
}

inline double gteps(offset_t edges, double ms) {
  return ms <= 0.0 ? 0.0 : static_cast<double>(edges) / (ms * 1e6);
}

/// Useful flops of an SpMSpV: 2 * nnz of the columns selected by x (the
/// multiply-add count every correct algorithm must perform). This is the
/// numerator of the paper's GFlops axis.
inline offset_t useful_flops(const std::vector<offset_t>& col_nnz,
                             const std::vector<index_t>& x_idx) {
  offset_t nnz = 0;
  for (index_t j : x_idx) nnz += col_nnz[j];
  return 2 * nnz;
}

/// Per-column nnz of a CSR matrix (precomputed once per matrix).
inline std::vector<offset_t> column_nnz(const Csr<value_t>& a) {
  std::vector<offset_t> c(a.cols, 0);
  for (const index_t j : a.col_idx) ++c[j];
  return c;
}

inline double gflops(offset_t flops, double ms) {
  return ms <= 0.0 ? 0.0 : static_cast<double>(flops) / (ms * 1e6);
}

/// The paper benches on two GPUs (RTX 3060 / RTX 3090). The CPU analog is
/// two pool sizes; on a single-core host they coincide, but the harness
/// structure (and the scaling table) is preserved.
struct Device {
  const char* name;
  std::size_t threads;
};

inline std::vector<Device> devices() {
  return {{"pool-small (RTX 3060 analog)", 1},
          {"pool-large (RTX 3090 analog)", 4}};
}

}  // namespace tilespmspv::bench
