// Microkernel benchmarks (google-benchmark): the primitive operations the
// figure-level harnesses are built from — tiled SpMSpV vs the baselines at
// controlled sparsities, format construction, and the three BFS kernels.
#include <benchmark/benchmark.h>

#include "baselines/csr_spmv.hpp"
#include "baselines/spmspv_bucket.hpp"
#include "baselines/tile_spmv.hpp"
#include "bfs/tile_bfs.hpp"
#include "core/tile_spmspv.hpp"
#include "formats/csc.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/grid.hpp"
#include "gen/vector_gen.hpp"
#include "spgemm/gustavson.hpp"

namespace {

using namespace tilespmspv;

struct SpmspvFixture {
  Csr<value_t> a;
  Csc<value_t> c;
  TileMatrix<value_t> tiled;
  SparseVec<value_t> x;
  TileVector<value_t> xt;
  std::vector<value_t> xd;

  SpmspvFixture(index_t n, double mat_density, double vec_sparsity)
      : a(Csr<value_t>::from_coo(gen_erdos_renyi(n, n, mat_density, 77))),
        c(Csc<value_t>::from_csr(a)),
        tiled(TileMatrix<value_t>::from_csr(a, 16, 2)),
        x(gen_sparse_vector(n, vec_sparsity, 1)),
        xt(TileVector<value_t>::from_sparse(x, 16)),
        xd(x.to_dense()) {}
};

SpmspvFixture& fixture(double vec_sparsity) {
  static SpmspvFixture f1(20000, 1e-3, 0.1);
  static SpmspvFixture f2(20000, 1e-3, 0.01);
  static SpmspvFixture f3(20000, 1e-3, 0.001);
  if (vec_sparsity >= 0.1) return f1;
  if (vec_sparsity >= 0.01) return f2;
  return f3;
}

void BM_TileSpmspv(benchmark::State& state) {
  auto& f = fixture(1.0 / static_cast<double>(state.range(0)));
  SpmspvWorkspace<value_t> ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile_spmspv(f.tiled, f.xt, ws));
  }
}
BENCHMARK(BM_TileSpmspv)->Arg(10)->Arg(100)->Arg(1000);

void BM_CsrSpmv(benchmark::State& state) {
  auto& f = fixture(1.0 / static_cast<double>(state.range(0)));
  std::vector<value_t> yd;
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr_spmv(f.a, f.xd, yd));
  }
}
BENCHMARK(BM_CsrSpmv)->Arg(10)->Arg(100)->Arg(1000);

void BM_TileSpmv(benchmark::State& state) {
  auto& f = fixture(1.0 / static_cast<double>(state.range(0)));
  std::vector<value_t> yd;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile_spmv(f.tiled, f.xd, yd));
  }
}
BENCHMARK(BM_TileSpmv)->Arg(10)->Arg(100)->Arg(1000);

void BM_SpmspvBucket(benchmark::State& state) {
  auto& f = fixture(1.0 / static_cast<double>(state.range(0)));
  BucketWorkspace<value_t> ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmspv_bucket(f.c, f.x, ws, 16));
  }
}
BENCHMARK(BM_SpmspvBucket)->Arg(10)->Arg(100)->Arg(1000);

void BM_SpmspvViaSpgemm(benchmark::State& state) {
  // The paper's intro strawman: SpMSpV as A * (n×1) through Gustavson.
  auto& f = fixture(1.0 / static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmspv_via_spgemm(f.a, f.x));
  }
}
BENCHMARK(BM_SpmspvViaSpgemm)->Arg(10)->Arg(100)->Arg(1000);

void BM_TileMatrixBuild(benchmark::State& state) {
  const auto a = Csr<value_t>::from_coo(
      gen_erdos_renyi(10000, 10000, 2e-3, 79));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TileMatrix<value_t>::from_csr(a, static_cast<index_t>(state.range(0)),
                                      2));
  }
}
BENCHMARK(BM_TileMatrixBuild)->Arg(16)->Arg(32)->Arg(64);

void BM_TileVectorBuild(benchmark::State& state) {
  const auto x = gen_sparse_vector(1 << 20, 0.001, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TileVector<value_t>::from_sparse(x, 16));
  }
}
BENCHMARK(BM_TileVectorBuild);

void BM_TileBfsGrid(benchmark::State& state) {
  const auto a = Csr<value_t>::from_coo(gen_grid2d(200, 200, 0.9, 81));
  TileBfs bfs(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs.run(0));
  }
}
BENCHMARK(BM_TileBfsGrid);

void BM_TileBfsPreprocess(benchmark::State& state) {
  const auto a = Csr<value_t>::from_coo(gen_grid2d(200, 200, 0.9, 81));
  for (auto _ : state) {
    TileBfs bfs(a);
    benchmark::DoNotOptimize(bfs.tile_size());
  }
}
BENCHMARK(BM_TileBfsPreprocess);

}  // namespace

BENCHMARK_MAIN();
