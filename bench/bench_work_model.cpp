// Work-model validation bench: for each algorithm, modeled operation
// counts (core/work_model.hpp) next to measured runtimes, across the
// sparsity sweep. The reproduction's claims are work-driven — this bench
// shows the measured times tracking the modeled work, and makes the
// CSR-form's metadata floor (the reason the CSC form exists) visible as
// numbers.
#include <iostream>

#include "baselines/spmspv_bucket.hpp"
#include "baselines/tile_spmv.hpp"
#include "bench_common.hpp"
#include "core/tile_spmspv.hpp"
#include "core/work_model.hpp"
#include "formats/csc.hpp"
#include "gen/vector_gen.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 3;
  ThreadPool pool(4);
  std::cout << "Work model vs measured time (ops in thousands, time in ms)\n\n";

  for (const char* name : {"cant", "in-2004"}) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const Csc<value_t> c = Csc<value_t>::from_csr(a);
    const TileMatrix<value_t> tiled =
        TileMatrix<value_t>::from_csr(a, 16, 2);
    const TileMatrix<value_t> tiled_noex =
        TileMatrix<value_t>::from_csr(a, 16, 0);
    const TileMatrix<value_t> at =
        TileMatrix<value_t>::from_csr(a.transpose(), 16, 2);
    std::vector<offset_t> col_nnz(a.cols, 0);
    for (index_t j : a.col_idx) ++col_nnz[j];

    std::cout << "--- " << name << " (" << fmt_count(a.nnz())
              << " nnz) ---\n";
    Table table({"sparsity", "SpMV Kops", "SpMV ms", "CSR Kops", "CSR ms",
                 "CSC Kops", "CSC ms", "bucket Kops", "bucket ms"});
    for (double sp : {0.1, 0.01, 0.001, 0.0001}) {
      const SparseVec<value_t> x = gen_sparse_vector(a.cols, sp, 1);
      const TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
      const std::vector<value_t> xd = x.to_dense();

      const SpmspvWork w_spmv = work_spmv(tiled_noex);
      const SpmspvWork w_csr = work_tile_spmspv_csr(tiled, xt);
      const SpmspvWork w_csc = work_tile_spmspv_csc(at, xt);
      const SpmspvWork w_bucket = work_column_driven(a, col_nnz, x.idx);

      SpmspvWorkspace<value_t> ws;
      BucketWorkspace<value_t> bws;
      std::vector<value_t> yd;
      const double t_spmv = time_best_ms(
          [&] { (void)tile_spmv(tiled_noex, xd, yd, &pool); }, iters);
      const double t_csr = time_best_ms(
          [&] { (void)tile_spmspv(tiled, xt, ws, &pool); }, iters);
      const double t_csc = time_best_ms(
          [&] { (void)tile_spmspv_csc(at, xt, ws, &pool); }, iters);
      const double t_bucket = time_best_ms(
          [&] { (void)spmspv_bucket(c, x, bws, 16, &pool); }, iters);

      auto kops = [](const SpmspvWork& w) {
        return fmt(static_cast<double>(w.total_ops()) / 1000.0, 0);
      };
      table.add_row({fmt(sp, 4), kops(w_spmv), fmt(t_spmv, 3), kops(w_csr),
                     fmt(t_csr, 3), kops(w_csc), fmt(t_csc, 3),
                     kops(w_bucket), fmt(t_bucket, 3)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: times rank like modeled ops per row; the\n"
               "CSR column's ops floor at the tile-metadata scan while the\n"
               "CSC column keeps shrinking with the vector.\n";
  return 0;
}
