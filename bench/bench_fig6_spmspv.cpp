// Figure 6: SpMSpV performance (GFlops) and speedups of TileSpMSpV over
// TileSpMV, the cuSPARSE BSR stand-in, and the CombBLAS SpMSpV-bucket
// stand-in, at input-vector sparsities 0.1, 0.01, 0.001 and 0.0001
// (random vectors, seed 1, as in the paper).
//
//   bench_fig6_spmspv [iters] [--iters N] [--metrics out.json|out.csv]
//
// --metrics exports per-(matrix, sparsity) best/mean/p95 timings, the
// aggregate speedups, and the merged kernel counters of the whole run.
// --json is an alias for --metrics (CI artifact steps use it).
#include <iostream>
#include <string>

#include "baselines/bsr_spmv.hpp"
#include "baselines/spmspv_bucket.hpp"
#include "baselines/tile_spmv.hpp"
#include "bench_common.hpp"
#include "core/spmspv.hpp"
#include "formats/csc.hpp"
#include "gen/vector_gen.hpp"
#include "util/args.hpp"
#include "util/simd.hpp"

using namespace tilespmspv;
using namespace tilespmspv::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (const std::string bad = args.first_unknown_flag(
          {"--iters", "--json", "--metrics"});
      !bad.empty()) {
    std::cerr << "unknown flag '" << bad << "'\n";
    return 2;
  }
  const auto pos = args.positional();
  int iters = static_cast<int>(args.get_int("--iters", 3));
  if (!pos.empty()) iters = std::atoi(pos[0].c_str());
  std::string metrics_path = args.get("--metrics");
  if (metrics_path.empty()) metrics_path = args.get("--json");
  const std::vector<double> sparsities = {0.1, 0.01, 0.001, 0.0001};
  ThreadPool pool(4);
  obs::MetricsRegistry metrics;
  metrics.put_str("bench", "fig6_spmspv");
  metrics.put_str("simd_isa", simd::active_isa());
  metrics.put_int("iters", iters);

  std::cout << "Figure 6: SpMSpV comparison over the matrix suite\n"
            << "algorithms: TileSpMSpV (this work), TileSpMV, cuSPARSE-BSR "
               "(stand-in), CombBLAS-bucket (stand-in)\n\n";

  for (const double sp : sparsities) {
    Table table({"matrix", "x nnz", "this ms best", "mean", "p95",
                 "useful GFlops: this", "TileSpMV", "cuSPARSE", "CombBLAS",
                 "spdup vs TileSpMV", "vs cuSPARSE", "vs CombBLAS"});
    SpeedupAggregate vs_tilespmv, vs_cusparse, vs_combblas;

    for (const auto& name : suite_spmspv_sweep()) {
      const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
      const Csc<value_t> c = Csc<value_t>::from_csr(a);
      const std::vector<offset_t> col_nnz = column_nnz(a);

      // Preprocessing is done once per matrix (amortized across many
      // multiplies, as in the paper's methodology). The operator holds the
      // tiled matrix in both orientations and auto-selects the CSR or CSC
      // kernel from the vector sparsity (paper §3.1).
      SpmspvOperator<value_t> op(a, {}, &pool);
      const TileMatrix<value_t> tiled_noextract =
          TileMatrix<value_t>::from_csr(a, 16, /*extract=*/0);
      const Bsr<value_t> bsr = Bsr<value_t>::from_csr(a, 4);

      const SparseVec<value_t> x = gen_sparse_vector(a.cols, sp, /*seed=*/1);
      const TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
      const std::vector<value_t> xd = x.to_dense();
      const offset_t flops = useful_flops(col_nnz, x.idx);

      BucketWorkspace<value_t> bws;
      std::vector<value_t> yd;

      const TimingStats t_this =
          time_stats_ms([&] { (void)op.multiply(xt); }, iters);
      const double t_tilespmv = time_best_ms(
          [&] { (void)tile_spmv(tiled_noextract, xd, yd, &pool); }, iters);
      const double t_cusparse =
          time_best_ms([&] { (void)bsr_spmv(bsr, xd, yd, &pool); }, iters);
      const double t_combblas = time_best_ms(
          [&] { (void)spmspv_bucket(c, x, bws, 16, &pool); }, iters);

      vs_tilespmv.add(t_this.best, t_tilespmv);
      vs_cusparse.add(t_this.best, t_cusparse);
      vs_combblas.add(t_this.best, t_combblas);
      table.add_row({name, fmt_count(x.nnz()), fmt(t_this.best, 4),
                     fmt(t_this.mean, 4), fmt(t_this.p95, 4),
                     fmt(gflops(flops, t_this.best), 3),
                     fmt(gflops(flops, t_tilespmv), 3),
                     fmt(gflops(flops, t_cusparse), 3),
                     fmt(gflops(flops, t_combblas), 3),
                     fmt(t_tilespmv / t_this.best, 2),
                     fmt(t_cusparse / t_this.best, 2),
                     fmt(t_combblas / t_this.best, 2)});
      if (!metrics_path.empty()) {
        put_timing(metrics, name + "@" + fmt(sp, 4), t_this);
      }
    }

    std::cout << "--- vector sparsity = " << sp << " ---\n";
    table.print(std::cout);
    std::cout << "aggregate speedups (geomean / max) of TileSpMSpV:\n"
              << "  vs TileSpMV:  " << fmt(vs_tilespmv.geomean_speedup(), 2)
              << "x / " << fmt(vs_tilespmv.max_speedup(), 2) << "x\n"
              << "  vs cuSPARSE:  " << fmt(vs_cusparse.geomean_speedup(), 2)
              << "x / " << fmt(vs_cusparse.max_speedup(), 2) << "x\n"
              << "  vs CombBLAS:  " << fmt(vs_combblas.geomean_speedup(), 2)
              << "x / " << fmt(vs_combblas.max_speedup(), 2) << "x\n\n";
    if (!metrics_path.empty()) {
      const std::string key = "speedup_geomean@" + fmt(sp, 4);
      metrics.put_double(key + ".vs_tilespmv", vs_tilespmv.geomean_speedup());
      metrics.put_double(key + ".vs_cusparse", vs_cusparse.geomean_speedup());
      metrics.put_double(key + ".vs_combblas", vs_combblas.geomean_speedup());
    }
  }
  std::cout << "Expected shape (paper): the advantage over the dense-vector\n"
               "SpMV baselines (TileSpMV, cuSPARSE) grows as the vector gets\n"
               "sparser; CombBLAS trails across the board.\n";
  if (!metrics_path.empty()) {
    counters_to_metrics(metrics);
    if (metrics.write_file(metrics_path)) {
      std::cout << "metrics written to " << metrics_path << "\n";
    } else {
      std::cerr << "failed to write metrics to " << metrics_path << "\n";
      return 1;
    }
  }
  return 0;
}
