// Integration tests: every SpMSpV algorithm and every BFS implementation
// in the repo, run against each other on the named suite matrices — the
// same matrices the benchmark harnesses sweep — plus an end-to-end Matrix
// Market file round trip through the full pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "apps/algebraic_bfs.hpp"
#include "baselines/bsr_spmv.hpp"
#include "baselines/csr_spmv.hpp"
#include "baselines/dobfs.hpp"
#include "baselines/enterprise_bfs.hpp"
#include "baselines/gswitch_bfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "baselines/spmspv_bucket.hpp"
#include "baselines/spmspv_sort.hpp"
#include "baselines/tile_spmv.hpp"
#include "bfs/tile_bfs.hpp"
#include "core/spmspv.hpp"
#include "core/spmspv_reference.hpp"
#include "formats/mm_io.hpp"
#include "gen/suite.hpp"
#include "gen/vector_gen.hpp"
#include "tile/packed_tile_matrix.hpp"

namespace tilespmspv {
namespace {

// Small, structurally diverse subset of the suite (keeps ctest fast while
// covering every generator class).
const std::vector<std::string>& integration_matrices() {
  static const std::vector<std::string> names = {
      "cavity23", "band-tiny", "er-small", "roadNet-TX", "band-scattered",
      "diag-only"};
  return names;
}

class SuiteIntegration : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteIntegration, AllSpmspvAlgorithmsAgree) {
  const Csr<value_t> a =
      Csr<value_t>::from_coo(suite_matrix(GetParam()));
  const Csc<value_t> c = Csc<value_t>::from_csr(a);
  for (double sp : {0.001, 0.05}) {
    const SparseVec<value_t> x = gen_sparse_vector(a.cols, sp, 1);
    const SparseVec<value_t> expect = spmspv_rowwise_reference(a, x);
    SCOPED_TRACE(GetParam() + " sparsity " + std::to_string(sp));

    EXPECT_TRUE(approx_equal(spmspv_colwise_reference(c, x), expect));
    EXPECT_TRUE(approx_equal(csr_spmv(a, x), expect));
    EXPECT_TRUE(
        approx_equal(bsr_spmv(Bsr<value_t>::from_csr(a, 4), x), expect));
    EXPECT_TRUE(approx_equal(
        tile_spmv(TileMatrix<value_t>::from_csr(a, 16, 0), x), expect));
    EXPECT_TRUE(approx_equal(spmspv_bucket(c, x, 16), expect));
    EXPECT_TRUE(approx_equal(spmspv_sort(c, x), expect));
    {
      SpmspvOperator<value_t> op(a);
      EXPECT_TRUE(approx_equal(op.multiply(x), expect));
    }
    {
      const PackedTileMatrix<value_t> p = PackedTileMatrix<value_t>::from_csr(a);
      const TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
      EXPECT_TRUE(approx_equal(packed_tile_spmspv(p, xt), expect));
    }
  }
}

TEST_P(SuiteIntegration, AllBfsAlgorithmsAgree) {
  Coo<value_t> coo = suite_matrix(GetParam());
  if (coo.rows != coo.cols) GTEST_SKIP() << "BFS needs square";
  // Symmetrize so every implementation's edge convention coincides
  // (directed-graph conventions are covered by the per-module tests).
  coo.symmetrize();
  const Csr<value_t> a = Csr<value_t>::from_coo(coo);
  const index_t source = 0;
  const auto expect = serial_bfs(a, source);
  ThreadPool pool(4);

  EXPECT_EQ(TileBfs(a, {}, &pool).run(source).levels, expect);
  EXPECT_EQ(dobfs(a, a, source, {}, &pool), expect);
  EXPECT_EQ(gswitch_bfs(a, a, source, &pool), expect);
  EXPECT_EQ(enterprise_bfs(a, a, source, {}, &pool), expect);
  EXPECT_EQ(algebraic_bfs(a, source, {}, &pool), expect);
}

INSTANTIATE_TEST_SUITE_P(Suite, SuiteIntegration,
                         ::testing::ValuesIn(integration_matrices()));

TEST(Integration, MatrixMarketPipelineRoundTrip) {
  // Write a suite matrix to .mtx, read it back, and run the full SpMSpV +
  // BFS pipeline on the file-loaded copy.
  const Coo<value_t> original = suite_matrix("band-tiny");
  const std::string path = "/tmp/tilespmspv_integration.mtx";
  {
    std::ofstream out(path);
    write_matrix_market(out, original);
  }
  const Coo<value_t> loaded = read_matrix_market_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.nnz(), original.nnz());

  const Csr<value_t> a = Csr<value_t>::from_coo(loaded);
  const Csr<value_t> b = Csr<value_t>::from_coo(original);
  const SparseVec<value_t> x = gen_sparse_vector(a.cols, 0.02, 1);
  SpmspvOperator<value_t> op_a(a), op_b(b);
  EXPECT_TRUE(approx_equal(op_a.multiply(x), op_b.multiply(x), 1e-6, 1e-8));
  EXPECT_EQ(TileBfs(a).run(0).levels, TileBfs(b).run(0).levels);
}

TEST(Integration, RepeatedMultipliesAreIndependent) {
  // One operator, many vectors of wildly different sparsity, interleaved
  // with both kernels; results must match fresh computations.
  const Csr<value_t> a =
      Csr<value_t>::from_coo(suite_matrix("band-scattered"));
  SpmspvOperator<value_t> op(a);
  for (int round = 0; round < 8; ++round) {
    const double sp = (round % 2 == 0) ? 0.0005 : 0.2;  // CSC then CSR path
    const SparseVec<value_t> x =
        gen_sparse_vector(a.cols, sp, 40 + round);
    EXPECT_TRUE(approx_equal(op.multiply(x), spmspv_rowwise_reference(a, x)))
        << "round " << round;
  }
}

TEST(Integration, BfsPreprocessOnceManySources) {
  const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("roadNet-TX"));
  TileBfs bfs(a);
  for (index_t source : {0, 1234, 45000, 89999}) {
    EXPECT_EQ(bfs.run(source).levels, serial_bfs(a, source))
        << "source " << source;
  }
}

}  // namespace
}  // namespace tilespmspv
