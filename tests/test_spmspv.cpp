// Correctness of the TileSpMSpV numeric kernel against both reference
// algorithms (paper Alg. 1 & 2), swept over matrix shape, density, tile
// size, extraction threshold, vector sparsity and pool size.
#include <gtest/gtest.h>

#include "core/spmspv.hpp"
#include "core/spmspv_reference.hpp"
#include "core/tile_spmspv.hpp"
#include "formats/csc.hpp"
#include "gen/banded.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"
#include "util/prng.hpp"

namespace tilespmspv {
namespace {

TEST(SpmspvReference, PaperFigure1Example) {
  // 6x6 matrix times a 2-nonzero vector -> 2-nonzero result (paper Fig. 1
  // structure: the multiply touches only columns with active x entries).
  Coo<value_t> coo(6, 6);
  coo.push(0, 1, 2.0);
  coo.push(1, 3, 3.0);
  coo.push(2, 0, 4.0);
  coo.push(4, 1, 5.0);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  SparseVec<value_t> x(6);
  x.push(1, 10.0);
  x.push(5, 1.0);  // column 5 is empty
  SparseVec<value_t> y = spmspv_rowwise_reference(a, x);
  ASSERT_EQ(y.nnz(), 2);
  EXPECT_EQ(y.idx, (std::vector<index_t>{0, 4}));
  EXPECT_DOUBLE_EQ(y.vals[0], 20.0);
  EXPECT_DOUBLE_EQ(y.vals[1], 50.0);
}

TEST(SpmspvReference, RowwiseAndColwiseAgree) {
  Coo<value_t> coo = gen_erdos_renyi(400, 300, 0.02, 71);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  Csc<value_t> c = Csc<value_t>::from_csr(a);
  SparseVec<value_t> x = gen_sparse_vector(300, 0.05, 2);
  EXPECT_TRUE(approx_equal(spmspv_rowwise_reference(a, x),
                           spmspv_colwise_reference(c, x)));
}

struct SpmspvCase {
  index_t rows, cols;
  double mat_density;
  index_t nt;
  index_t extract;
  double vec_sparsity;
  std::size_t pool_threads;
};

class TileSpmspvSweep : public ::testing::TestWithParam<SpmspvCase> {};

TEST_P(TileSpmspvSweep, MatchesReference) {
  const auto p = GetParam();
  Coo<value_t> coo =
      gen_erdos_renyi(p.rows, p.cols, p.mat_density, 73 + p.rows);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  TileMatrix<value_t> tiled =
      TileMatrix<value_t>::from_csr(a, p.nt, p.extract);
  SparseVec<value_t> x = gen_sparse_vector(p.cols, p.vec_sparsity, 5);
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, p.nt);
  ThreadPool pool(p.pool_threads);
  SparseVec<value_t> y = tile_spmspv(tiled, xt, &pool);
  SparseVec<value_t> expect = spmspv_rowwise_reference(a, x);
  EXPECT_TRUE(approx_equal(y, expect))
      << "rows=" << p.rows << " cols=" << p.cols << " nt=" << p.nt
      << " extract=" << p.extract << " sp=" << p.vec_sparsity;
}

std::vector<SpmspvCase> sweep_cases() {
  std::vector<SpmspvCase> cases;
  for (index_t nt : {16, 32, 64}) {
    for (index_t extract : {0, 2}) {
      for (double sp : {0.001, 0.01, 0.2}) {
        cases.push_back({500, 400, 0.01, nt, extract, sp, 4});
      }
    }
  }
  // Shape edge cases.
  cases.push_back({1, 1, 1.0, 16, 0, 1.0, 1});
  cases.push_back({17, 1000, 0.02, 16, 2, 0.05, 2});
  cases.push_back({1000, 17, 0.02, 32, 2, 0.3, 2});
  cases.push_back({64, 64, 0.5, 16, 0, 0.5, 8});
  cases.push_back({2048, 2048, 0.002, 64, 4, 0.0005, 4});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TileSpmspvSweep,
                         ::testing::ValuesIn(sweep_cases()));

TEST(TileSpmspv, EmptyVectorGivesEmptyResult) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(100, 100, 0.05, 79));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16);
  SparseVec<value_t> x(100);  // no nonzeros
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
  SparseVec<value_t> y = tile_spmspv(tiled, xt);
  EXPECT_EQ(y.nnz(), 0);
}

TEST(TileSpmspv, EmptyMatrixGivesEmptyResult) {
  Csr<value_t> a(50, 50);
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16);
  SparseVec<value_t> x = gen_sparse_vector(50, 0.5, 3);
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
  EXPECT_EQ(tile_spmspv(tiled, xt).nnz(), 0);
}

TEST(TileSpmspv, WorkspaceReuseIsClean) {
  // Two different multiplies through the same workspace must not leak
  // state between calls (the all-zero invariant).
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(300, 300, 0.02, 83));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);
  SpmspvWorkspace<value_t> ws;
  SparseVec<value_t> x1 = gen_sparse_vector(300, 0.2, 11);
  SparseVec<value_t> x2 = gen_sparse_vector(300, 0.01, 12);
  TileVector<value_t> xt1 = TileVector<value_t>::from_sparse(x1, 16);
  TileVector<value_t> xt2 = TileVector<value_t>::from_sparse(x2, 16);
  (void)tile_spmspv(tiled, xt1, ws);
  SparseVec<value_t> y2 = tile_spmspv(tiled, xt2, ws);
  EXPECT_TRUE(approx_equal(y2, spmspv_rowwise_reference(a, x2)));
  // Workspace invariant: everything back to zero.
  for (const auto v : ws.y_dense) EXPECT_EQ(v, 0.0);
  for (const auto f : ws.tile_flag) EXPECT_EQ(f, 0);
}

TEST(TileSpmspv, ExtractedPartContributes) {
  // A matrix that is entirely extracted (huge threshold) must still give
  // the right answer through the COO side path alone.
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(200, 200, 0.01, 89));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 1 << 20);
  ASSERT_EQ(tiled.num_tiles(), 0);
  SparseVec<value_t> x = gen_sparse_vector(200, 0.1, 13);
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
  EXPECT_TRUE(
      approx_equal(tile_spmspv(tiled, xt), spmspv_rowwise_reference(a, x)));
}

class TileSpmspvCscSweep : public ::testing::TestWithParam<SpmspvCase> {};

TEST_P(TileSpmspvCscSweep, MatchesReference) {
  const auto p = GetParam();
  Coo<value_t> coo =
      gen_erdos_renyi(p.rows, p.cols, p.mat_density, 173 + p.rows);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  // The CSC kernel consumes the tiled transpose.
  TileMatrix<value_t> tiled_t =
      TileMatrix<value_t>::from_csr(a.transpose(), p.nt, p.extract);
  SparseVec<value_t> x = gen_sparse_vector(p.cols, p.vec_sparsity, 6);
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, p.nt);
  ThreadPool pool(p.pool_threads);
  SparseVec<value_t> y = tile_spmspv_csc(tiled_t, xt, &pool);
  EXPECT_TRUE(approx_equal(y, spmspv_rowwise_reference(a, x)))
      << "rows=" << p.rows << " cols=" << p.cols << " nt=" << p.nt
      << " extract=" << p.extract << " sp=" << p.vec_sparsity;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TileSpmspvCscSweep,
                         ::testing::ValuesIn(sweep_cases()));

TEST(TileSpmspvCsc, FullyExtractedMatrix) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(150, 150, 0.01, 181));
  TileMatrix<value_t> tiled_t =
      TileMatrix<value_t>::from_csr(a.transpose(), 16, 1 << 20);
  SparseVec<value_t> x = gen_sparse_vector(150, 0.1, 7);
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
  EXPECT_TRUE(approx_equal(tile_spmspv_csc(tiled_t, xt),
                           spmspv_rowwise_reference(a, x)));
}

TEST(SpmspvOperator, AutoSelectsCscForVerySparseVectors) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(4000, 4000, 0.005, 191));
  SpmspvOperator<value_t> op(a);
  const SparseVec<value_t> sparse = gen_sparse_vector(4000, 0.0005, 8);
  const SparseVec<value_t> dense = gen_sparse_vector(4000, 0.2, 9);
  EXPECT_EQ(op.select(TileVector<value_t>::from_sparse(sparse, 16)),
            SpmspvKernel::kCsc);
  EXPECT_EQ(op.select(TileVector<value_t>::from_sparse(dense, 16)),
            SpmspvKernel::kCsr);
  // Both paths give the reference result through the same operator.
  EXPECT_TRUE(
      approx_equal(op.multiply(sparse), spmspv_rowwise_reference(a, sparse)));
  EXPECT_TRUE(
      approx_equal(op.multiply(dense), spmspv_rowwise_reference(a, dense)));
}

TEST(SpmspvOperator, MaskedMultiplyMatchesFilterThenMultiply) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(600, 500, 0.02, 195));
  SpmspvOperator<value_t> op(a);
  SparseVec<value_t> x = gen_sparse_vector(500, 0.05, 19);
  // Random structural mask over the output space.
  Prng rng(20);
  std::vector<bool> m(600);
  for (index_t r = 0; r < 600; ++r) m[r] = rng.next_bool(0.5);

  const SparseVec<value_t> full = spmspv_rowwise_reference(a, x);
  for (bool complement : {false, true}) {
    const SparseVec<value_t> got = op.multiply_masked(x, m, complement);
    SparseVec<value_t> expect(600);
    for (std::size_t k = 0; k < full.idx.size(); ++k) {
      if (m[full.idx[k]] != complement) {
        expect.push(full.idx[k], full.vals[k]);
      }
    }
    EXPECT_TRUE(approx_equal(got, expect)) << "complement=" << complement;
  }
}

TEST(SpmspvOperator, MaskedMultiplyAllMaskedGivesEmpty) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(200, 200, 0.05, 196));
  SpmspvOperator<value_t> op(a);
  SparseVec<value_t> x = gen_sparse_vector(200, 0.1, 21);
  const std::vector<bool> none(200, false);
  EXPECT_EQ(op.multiply_masked(x, none, false).nnz(), 0);
  // Workspace must still be clean for the next unmasked multiply.
  EXPECT_TRUE(approx_equal(op.multiply(x), spmspv_rowwise_reference(a, x)));
}

TEST(SpmspvOperator, AutoSelectsDenseSpmvForNearDenseVectors) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(2000, 2000, 0.005, 197));
  SpmspvOperator<value_t> op(a);
  const SparseVec<value_t> dense_x = gen_sparse_vector(2000, 0.5, 21);
  const TileVector<value_t> xt = TileVector<value_t>::from_sparse(dense_x, 16);
  EXPECT_EQ(op.select(xt), SpmspvKernel::kDenseSpmv);
  EXPECT_TRUE(approx_equal(op.multiply(dense_x),
                           spmspv_rowwise_reference(a, dense_x)));
}

TEST(SpmspvOperator, ThreeTierSelection) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(4000, 4000, 0.004, 198));
  SpmspvOperator<value_t> op(a);
  auto tier = [&](double sp) {
    return op.select(TileVector<value_t>::from_sparse(
        gen_sparse_vector(4000, sp, 22), 16));
  };
  EXPECT_EQ(tier(0.001), SpmspvKernel::kCsc);
  EXPECT_EQ(tier(0.05), SpmspvKernel::kCsr);
  EXPECT_EQ(tier(0.6), SpmspvKernel::kDenseSpmv);
}

TEST(SpmspvOperator, ForcedDenseSpmvMatchesReference) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(700, 600, 0.02, 199));
  SpmspvConfig cfg;
  cfg.kernel = SpmspvKernel::kDenseSpmv;
  SpmspvOperator<value_t> op(a, cfg);
  for (double sp : {0.001, 0.1, 0.9}) {
    SparseVec<value_t> x = gen_sparse_vector(600, sp, 23);
    EXPECT_TRUE(approx_equal(op.multiply(x), spmspv_rowwise_reference(a, x)))
        << sp;
  }
}

TEST(SpmspvOperator, ForcedKernelsAgree) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(1000, 800, 0.01, 193));
  SpmspvConfig csr_cfg, csc_cfg;
  csr_cfg.kernel = SpmspvKernel::kCsr;
  csc_cfg.kernel = SpmspvKernel::kCsc;
  SpmspvOperator<value_t> op_csr(a, csr_cfg);
  SpmspvOperator<value_t> op_csc(a, csc_cfg);
  for (double sp : {0.001, 0.05, 0.5}) {
    SparseVec<value_t> x = gen_sparse_vector(800, sp, 10);
    EXPECT_TRUE(approx_equal(op_csr.multiply(x), op_csc.multiply(x)))
        << "sp=" << sp;
  }
}

TEST(SpmspvOperator, EndToEnd) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(500, 500, 0.01, 97));
  SpmspvOperator<value_t> op(a);
  SparseVec<value_t> x = gen_sparse_vector(500, 0.02, 14);
  EXPECT_TRUE(approx_equal(op.multiply(x), spmspv_rowwise_reference(a, x)));
  // Repeated multiplies reuse internal state correctly.
  SparseVec<value_t> x2 = gen_sparse_vector(500, 0.3, 15);
  EXPECT_TRUE(approx_equal(op.multiply(x2), spmspv_rowwise_reference(a, x2)));
}

TEST(SpmspvOperator, BandedMatrixDeterministicResult) {
  BandedParams p;
  p.n = 600;
  p.block = 4;
  p.band_blocks = 3;
  Csr<value_t> a = Csr<value_t>::from_coo(gen_banded(p, 7));
  SpmspvOperator<value_t> op(a);
  SparseVec<value_t> x = gen_sparse_vector(600, 0.05, 16);
  SparseVec<value_t> y1 = op.multiply(x);
  SparseVec<value_t> y2 = op.multiply(x);
  EXPECT_EQ(y1.idx, y2.idx);
  EXPECT_EQ(y1.vals, y2.vals);  // bitwise deterministic across calls
}

}  // namespace
}  // namespace tilespmspv
