// Tests for the benchmark-trajectory report module (obs/bench_report):
// the latency histogram, span aggregation, roofline attribution, machine
// calibration, git-SHA resolution, and the write -> parse round trip that
// tools/bench_compare depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

using namespace tilespmspv;
using namespace tilespmspv::obs;

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_TRUE(h.nonzero_bins().empty());
}

TEST(LatencyHistogramTest, CountsEverySample) {
  LatencyHistogram h;
  h.add_samples({0.001, 0.5, 3.0, 3.1, 1e-9, 1e9});  // extremes clamp
  EXPECT_EQ(h.count(), 6u);
  std::uint64_t in_bins = 0;
  for (const auto& b : h.nonzero_bins()) in_bins += b.count;
  EXPECT_EQ(in_bins, 6u);
}

TEST(LatencyHistogramTest, BinsAreLogSpaced) {
  // Four bins per octave: bin lo doubles every 4 bins.
  EXPECT_DOUBLE_EQ(LatencyHistogram::bin_lo_ms(0), LatencyHistogram::kMinMs);
  EXPECT_NEAR(LatencyHistogram::bin_lo_ms(4), 2.0 * LatencyHistogram::kMinMs,
              1e-12);
  EXPECT_NEAR(LatencyHistogram::bin_lo_ms(8), 4.0 * LatencyHistogram::kMinMs,
              1e-12);
}

TEST(LatencyHistogramTest, PercentileTracksExactWithinOneBin) {
  // A 4-per-octave histogram is exact to one bin width: hi/lo = 2^(1/4),
  // ~19% relative. Check the histogram percentile against the exact
  // sample percentile with that tolerance.
  std::vector<double> samples;
  for (int i = 1; i <= 200; ++i) {
    samples.push_back(0.01 * static_cast<double>(i));  // 0.01 .. 2.0 ms
  }
  LatencyHistogram h;
  h.add_samples(samples);
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = percentile(samples, p);
    const double approx = h.percentile(p);
    EXPECT_NEAR(approx, exact, 0.20 * exact)
        << "p" << p << ": exact " << exact << " vs histogram " << approx;
  }
}

TEST(LatencyHistogramTest, PercentileBoundsAndMonotonicity) {
  LatencyHistogram h;
  h.add_samples({0.1, 0.2, 0.4, 0.8, 1.6});
  double prev = 0.0;
  for (double p = 0.0; p <= 100.0; p += 5.0) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(h.percentile(100.0), 1.6 * 1.2);  // within one bin of the max
}

TEST(SpanAggregationTest, GroupsAndSorts) {
  std::vector<TraceSample> samples = {
      {"convert", 5.0}, {"spmspv", 1.0}, {"spmspv", 3.0},
      {"gather", 0.5},  {"spmspv", 2.0},
  };
  const std::vector<SpanStats> rows = aggregate_spans(samples);
  ASSERT_EQ(rows.size(), 3u);
  // Sorted by total, descending: spmspv (6.0) > convert (5.0) > gather.
  EXPECT_EQ(rows[0].name, "spmspv");
  EXPECT_EQ(rows[0].count, 3u);
  EXPECT_DOUBLE_EQ(rows[0].total_ms, 6.0);
  EXPECT_DOUBLE_EQ(rows[0].mean_ms, 2.0);
  EXPECT_EQ(rows[1].name, "convert");
  EXPECT_EQ(rows[2].name, "gather");
  EXPECT_DOUBLE_EQ(rows[2].p95_ms, 0.5);
}

TEST(SpanAggregationTest, EmptyInput) {
  EXPECT_TRUE(aggregate_spans({}).empty());
}

TEST(AttributionTest, PicksTheSlowerRooflineLeg) {
  MachineProfile m;
  m.mem_bw_gbs = 10.0;      // 10 GB/s
  m.simd_gflops = 100.0;    // 100 GFLOP/s
  m.scalar_gflops = 2.0;

  // Memory-bound: 1e7 bytes at 10 GB/s = 1 ms; compute leg is 1e-3 ms.
  const CaseModel mem = attribute_case(1e5, 1e7, 2.0, m);
  EXPECT_NEAR(mem.predicted_ms, 1.0, 1e-9);
  EXPECT_NEAR(mem.roofline_pct, 50.0, 1e-6);

  // Compute-bound: 1e9 flops at 100 GFLOP/s = 10 ms.
  const CaseModel cpu = attribute_case(1e9, 1e3, 20.0, m);
  EXPECT_NEAR(cpu.predicted_ms, 10.0, 1e-9);
  EXPECT_NEAR(cpu.roofline_pct, 50.0, 1e-6);
}

TEST(AttributionTest, DegenerateInputsAreSafe) {
  MachineProfile zero;  // all rates 0: no roofline available
  const CaseModel c = attribute_case(1e6, 1e6, 1.0, zero);
  EXPECT_EQ(c.predicted_ms, 0.0);
  EXPECT_EQ(c.roofline_pct, 0.0);
  MachineProfile m;
  m.mem_bw_gbs = 10.0;
  m.simd_gflops = 100.0;
  const CaseModel z = attribute_case(1e6, 1e6, 0.0, m);  // measured 0 ms
  EXPECT_EQ(z.roofline_pct, 0.0);
}

TEST(MachineProfileTest, CalibrationProducesPositiveRates) {
  const MachineProfile m = measure_machine_profile();
  EXPECT_FALSE(m.cpu_model.empty());
  EXPECT_GE(m.cores, 1);
  EXPECT_GT(m.mem_bw_gbs, 0.0);
  EXPECT_GT(m.scalar_gflops, 0.0);
  EXPECT_GT(m.simd_gflops, 0.0);
}

TEST(GitShaTest, ResolvesInsideARepoOrReportsUnknown) {
  const std::string sha = read_git_sha();
  if (sha != "unknown") {
    EXPECT_EQ(sha.size(), 40u);
    for (char c : sha) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << sha;
    }
  }
}

namespace {

/// Fresh scratch tree for one synthetic .git layout.
class GitShaFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(testing::TempDir()) /
            ("gitsha_" + std::string(::testing::UnitTest::GetInstance()
                                         ->current_test_info()
                                         ->name()));
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const std::filesystem::path p = root_ / rel;
    std::filesystem::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary);
    out << content;
  }

  std::filesystem::path root_;
};

constexpr const char* kSha = "0123456789abcdef0123456789abcdef01234567";

}  // namespace

TEST_F(GitShaFixture, RefMissingEverywhereIsUnknown) {
  // The daemon and bench runner must start from an exported tarball: HEAD
  // naming a ref that exists neither loose nor packed degrades cleanly.
  write(".git/HEAD", "ref: refs/heads/main\n");
  EXPECT_EQ(read_git_sha(root_.string()), "unknown");
}

TEST_F(GitShaFixture, MissingHeadIsUnknown) {
  std::filesystem::create_directories(root_ / ".git");
  EXPECT_EQ(read_git_sha(root_.string()), "unknown");
}

TEST_F(GitShaFixture, EmptyAndGarbageHeadAreUnknown) {
  write(".git/HEAD", "");
  EXPECT_EQ(read_git_sha(root_.string()), "unknown");
  write(".git/HEAD", "this is not a commit id, forty+ characters long\n");
  EXPECT_EQ(read_git_sha(root_.string()), "unknown");
}

TEST_F(GitShaFixture, LooseRefResolves) {
  write(".git/HEAD", "ref: refs/heads/main\r\n");  // CRLF tolerated
  write(".git/refs/heads/main", std::string(kSha) + "\n");
  EXPECT_EQ(read_git_sha(root_.string()), kSha);
}

TEST_F(GitShaFixture, PackedRefResolvesPastCommentsAndPeeledLines) {
  write(".git/HEAD", "ref: refs/heads/main\n");
  write(".git/packed-refs",
        "# pack-refs with: peeled fully-peeled sorted\n" +
            std::string("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa "
                        "refs/tags/v1\n") +
            "^bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb\n" + kSha +
            " refs/heads/main\n");
  EXPECT_EQ(read_git_sha(root_.string()), kSha);
}

TEST_F(GitShaFixture, DetachedHeadResolves) {
  write(".git/HEAD", std::string(kSha) + "\n");
  EXPECT_EQ(read_git_sha(root_.string()), kSha);
}

TEST_F(GitShaFixture, GitdirPointerFileResolvesWithoutWalkingUp) {
  // Worktree layout: .git is a file pointing at the real git dir. The
  // resolver must follow the pointer instead of climbing into whatever
  // repository contains the scratch tree.
  write("wt/.git", "gitdir: ../gd\n");
  write("gd/HEAD", "ref: refs/heads/task\n");
  write("gd/refs/heads/task", std::string(kSha) + "\n");
  EXPECT_EQ(read_git_sha((root_ / "wt").string()), kSha);
}

TEST_F(GitShaFixture, WorktreeCommondirRefsResolve) {
  // Real worktrees keep shared refs under the commondir; the worktree's
  // own git dir holds only HEAD and a commondir pointer.
  write("wt/.git", "gitdir: " + (root_ / "main/.git/worktrees/wt").string() +
                       "\n");
  write("main/.git/worktrees/wt/HEAD", "ref: refs/heads/task\n");
  write("main/.git/worktrees/wt/commondir", "../..\n");
  write("main/.git/refs/heads/task", std::string(kSha) + "\n");
  EXPECT_EQ(read_git_sha((root_ / "wt").string()), kSha);
}

namespace {

BenchReport make_report() {
  BenchReport r;
  r.bench_id = "BENCH_TEST";
  r.tier = "quick";
  r.manifest.git_sha = "0123456789abcdef0123456789abcdef01234567";
  r.manifest.build_type = "Release";
  r.manifest.simd_isa = "avx2";
  r.manifest.threads = 4;
  r.manifest.iters = 5;
  r.manifest.machine.cpu_model = "Test CPU \"quoted\"";
  r.manifest.machine.cores = 8;
  r.manifest.machine.mem_bw_gbs = 12.5;
  r.manifest.machine.scalar_gflops = 2.0;
  r.manifest.machine.simd_gflops = 50.0;

  BenchCase c;
  c.name = "fig6/cant@0.0100";
  c.group = "fig6";
  c.set_timing({0.5, 0.6, 0.7, 0.8, 0.9});
  c.counters.emplace_back("tiles_scanned", 123u);
  c.has_model = true;
  c.model = attribute_case(1e6, 1e6, c.ms_best, r.manifest.machine);
  r.cases.push_back(std::move(c));

  BenchCase c2;
  c2.name = "fig7/road-small";
  c2.group = "fig7";
  c2.set_timing({2.0});
  r.cases.push_back(std::move(c2));
  return r;
}

}  // namespace

TEST(BenchReportTest, SetTimingFillsEveryField) {
  BenchCase c;
  c.set_timing({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(c.ms_best, 1.0);
  EXPECT_DOUBLE_EQ(c.ms_mean, 2.0);
  EXPECT_EQ(c.samples, 3u);
  EXPECT_EQ(c.hist.count(), 3u);
  EXPECT_GT(c.ms_p95, c.ms_p50);
}

TEST(BenchReportTest, WriteParseRoundTrip) {
  const BenchReport r = make_report();
  std::ostringstream os;
  r.write_json(os);
  const std::string json = os.str();

  ParsedBenchReport parsed;
  std::string err;
  ASSERT_TRUE(parse_bench_report(json, &parsed, &err)) << err;
  EXPECT_EQ(parsed.schema, kBenchSchema);
  EXPECT_EQ(parsed.bench_id, "BENCH_TEST");
  EXPECT_EQ(parsed.tier, "quick");
  EXPECT_EQ(parsed.git_sha, r.manifest.git_sha);
  EXPECT_EQ(parsed.build_type, "Release");
  EXPECT_EQ(parsed.simd_isa, "avx2");
  EXPECT_EQ(parsed.threads, 4);
  EXPECT_EQ(parsed.iters, 5);
  EXPECT_EQ(parsed.machine.cpu_model, "Test CPU \"quoted\"");
  EXPECT_EQ(parsed.machine.cores, 8);
  EXPECT_DOUBLE_EQ(parsed.machine.mem_bw_gbs, 12.5);

  ASSERT_EQ(parsed.cases.size(), 2u);
  EXPECT_EQ(parsed.cases[0].name, "fig6/cant@0.0100");
  EXPECT_EQ(parsed.cases[0].group, "fig6");
  EXPECT_DOUBLE_EQ(parsed.cases[0].ms_best, 0.5);
  EXPECT_EQ(parsed.cases[0].samples, 5u);
  EXPECT_EQ(parsed.cases[0].hist_count, 5u);
  EXPECT_EQ(parsed.cases[1].name, "fig7/road-small");
  EXPECT_EQ(parsed.cases[1].hist_count, 1u);
}

TEST(BenchReportTest, ParserRejectsGarbage) {
  ParsedBenchReport out;
  std::string err;
  EXPECT_FALSE(parse_bench_report("", &out, &err));
  EXPECT_FALSE(parse_bench_report("not json at all", &out, &err));
  EXPECT_FALSE(parse_bench_report("[1,2,3]", &out, &err));
  // Valid JSON, wrong schema.
  EXPECT_FALSE(parse_bench_report(R"({"schema":"other/1","cases":[]})", &out,
                                  &err));
  EXPECT_FALSE(err.empty());
}

TEST(BenchReportTest, ParserToleratesUnknownFields) {
  const std::string json = R"({
    "schema": "tilespmspv-bench/1",
    "bench_id": "B",
    "tier": "quick",
    "future_field": {"nested": [1, 2, 3]},
    "manifest": {"git_sha": "abc", "build_type": "Debug",
                 "simd_isa": "scalar", "threads": 1, "iters": 2,
                 "machine": {"cpu_model": "x", "cores": 1,
                             "mem_bw_gbs": 1.0, "scalar_gflops": 1.0,
                             "simd_gflops": 1.0}},
    "cases": [{"name": "g/case", "group": "g",
               "ms": {"best": 1.0, "mean": 1.5, "p50": 1.4, "p95": 2.0},
               "samples": 3, "extra": true}]
  })";
  ParsedBenchReport out;
  std::string err;
  ASSERT_TRUE(parse_bench_report(json, &out, &err)) << err;
  ASSERT_EQ(out.cases.size(), 1u);
  EXPECT_DOUBLE_EQ(out.cases[0].ms_mean, 1.5);
  EXPECT_EQ(out.cases[0].hist_count, 0u);  // histogram optional
}
