// End-to-end tests for tools/bench_compare: crafted report pairs pin the
// verdicts and exit codes CI's perf-regression gate depends on. The tool
// is a standalone binary (path baked in by tests/CMakeLists.txt), so
// these tests write real BenchReport JSON files and shell out, the same
// contract tests/test_lint.cpp pins for the linter.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"

using namespace tilespmspv;
using namespace tilespmspv::obs;

namespace {

int run(const std::string& args) {
  const std::string cmd =
      std::string(TILESPMSPV_BENCH_COMPARE_BIN) + " " + args + " > /dev/null";
  const int status = std::system(cmd.c_str());
#if defined(_WIN32)
  return status;
#else
  return WEXITSTATUS(status);
#endif
}

/// A report with one case per (name, best, p95) triple. mean/p50 ride at
/// best; samples at 5.
BenchReport make_report(
    const std::vector<std::tuple<std::string, double, double>>& cases) {
  BenchReport r;
  r.bench_id = "BENCH_TEST";
  r.tier = "quick";
  r.manifest.git_sha = "test";
  r.manifest.build_type = "Release";
  r.manifest.simd_isa = "scalar";
  r.manifest.threads = 1;
  r.manifest.iters = 5;
  for (const auto& [name, best, p95] : cases) {
    BenchCase c;
    c.name = name;
    c.group = name.substr(0, name.find('/'));
    c.ms_best = best;
    c.ms_mean = best;
    c.ms_p50 = best;
    c.ms_p95 = p95;
    c.samples = 5;
    r.cases.push_back(std::move(c));
  }
  return r;
}

/// Writes `r` to a fresh path under the test's temp dir.
std::string write_report(const BenchReport& r, const std::string& stem) {
  const std::string path =
      testing::TempDir() + "bench_compare_" + stem + ".json";
  EXPECT_TRUE(r.write_file(path));
  return path;
}

}  // namespace

TEST(BenchCompare, SelfCompareIsClean) {
  const std::string p = write_report(
      make_report({{"fig6/a", 1.0, 1.2}, {"fig7/b", 5.0, 6.0}}), "self");
  EXPECT_EQ(run(p + " " + p), 0);
}

TEST(BenchCompare, RegressionPastToleranceFails) {
  const std::string oldp =
      write_report(make_report({{"fig6/a", 1.0, 1.2}}), "reg_old");
  // +50% best with the default 30% tolerance: regression.
  const std::string newp =
      write_report(make_report({{"fig6/a", 1.5, 1.8}}), "reg_new");
  EXPECT_EQ(run(oldp + " " + newp), 1);
  // A wide enough tolerance accepts the same pair.
  EXPECT_EQ(run(oldp + " " + newp + " --tol 0.8"), 0);
}

TEST(BenchCompare, ImprovementPasses) {
  const std::string oldp =
      write_report(make_report({{"fig6/a", 2.0, 2.5}}), "imp_old");
  const std::string newp =
      write_report(make_report({{"fig6/a", 1.0, 1.2}}), "imp_new");
  EXPECT_EQ(run(oldp + " " + newp), 0);
}

TEST(BenchCompare, SubFloorNoiseIsIgnored) {
  // 0.001 ms -> 0.004 ms is a 4x "regression", but both sit below the
  // default 0.05 ms noise floor: timer noise, not a verdict.
  const std::string oldp =
      write_report(make_report({{"fig6/tiny", 0.001, 0.002}}), "noise_old");
  const std::string newp =
      write_report(make_report({{"fig6/tiny", 0.004, 0.008}}), "noise_new");
  EXPECT_EQ(run(oldp + " " + newp), 0);
  // Lowering the floor turns the same pair into a failure.
  EXPECT_EQ(run(oldp + " " + newp + " --min-ms 0.0001"), 1);
}

TEST(BenchCompare, P95RegressionWarnsButPasses) {
  // Healthy best, 3x p95 tail: warn-only by design (shared-machine tail
  // noise must not flake the CI gate).
  const std::string oldp =
      write_report(make_report({{"fig6/a", 1.0, 1.2}}), "p95_old");
  const std::string newp =
      write_report(make_report({{"fig6/a", 1.0, 3.6}}), "p95_new");
  EXPECT_EQ(run(oldp + " " + newp), 0);
}

TEST(BenchCompare, MissingCasePolicy) {
  const std::string oldp = write_report(
      make_report({{"fig6/a", 1.0, 1.2}, {"fig6/b", 1.0, 1.2}}), "miss_old");
  const std::string newp =
      write_report(make_report({{"fig6/a", 1.0, 1.2}}), "miss_new");
  // Dropped case warns by default, fails under --strict-missing.
  EXPECT_EQ(run(oldp + " " + newp), 0);
  EXPECT_EQ(run(oldp + " " + newp + " --strict-missing"), 1);
  // New-only cases never fail (they simply have no baseline yet).
  EXPECT_EQ(run(newp + " " + oldp + " --strict-missing"), 0);
}

TEST(BenchCompare, ZeroBaselineIsNoDataNotRegression) {
  // A dead measurement serialized as zeros used to make any healthy new
  // value look infinitely regressed (division against an old best of 0).
  // Either direction must be binned as no-data, never a failure.
  const std::string deadp =
      write_report(make_report({{"fig6/a", 0.0, 0.0}}), "dead");
  const std::string livep =
      write_report(make_report({{"fig6/a", 5.0, 6.0}}), "live");
  EXPECT_EQ(run(deadp + " " + livep), 0);
  EXPECT_EQ(run(livep + " " + deadp), 0);
  EXPECT_EQ(run(deadp + " " + deadp), 0);
}

TEST(BenchCompare, NoSamplesEmptyHistogramIsNoData) {
  // samples == 0 with an empty histogram carries no information even when
  // a stale ms_best rides along: the pair must not fail the gate.
  BenchReport old_r = make_report({{"fig6/a", 1.0, 1.2}});
  old_r.cases[0].samples = 0;
  const std::string oldp = write_report(old_r, "nosamp_old");
  const std::string newp =
      write_report(make_report({{"fig6/a", 10.0, 12.0}}), "nosamp_new");
  EXPECT_EQ(run(oldp + " " + newp), 0);
}

TEST(BenchCompare, UnknownFlagExitsTwo) {
  const std::string p =
      write_report(make_report({{"fig6/a", 1.0, 1.2}}), "flag");
  EXPECT_EQ(run(p + " " + p + " --tol 0.5"), 0);
  EXPECT_EQ(run(p + " " + p + " --tool 0.5"), 2);
}

TEST(BenchCompare, BadInputsExitTwo) {
  const std::string good =
      write_report(make_report({{"fig6/a", 1.0, 1.2}}), "good");
  EXPECT_EQ(run(good + " /nonexistent/path.json"), 2);
  const std::string garbage = testing::TempDir() + "bench_compare_bad.json";
  std::FILE* f = std::fopen(garbage.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"schema\":\"other/9\"}", f);
  std::fclose(f);
  EXPECT_EQ(run(good + " " + garbage), 2);
  EXPECT_EQ(run(good), 2);  // missing operand
}
