// Tests for batched SpMSpV (Y = A X) and the tile-statistics module.
#include <gtest/gtest.h>

#include "core/spmspv_reference.hpp"
#include "core/tile_spmspv.hpp"
#include "core/tile_spmspv_batch.hpp"
#include "gen/banded.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"
#include "tile/tile_stats.hpp"

namespace tilespmspv {
namespace {

class BatchSweep
    : public ::testing::TestWithParam<std::tuple<int, double, index_t>> {};

TEST_P(BatchSweep, EachVectorMatchesIndividualMultiply) {
  const auto [k, sparsity, extract] = GetParam();
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(600, 500, 0.01, 1201));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, extract);
  std::vector<SparseVec<value_t>> xs;
  for (int v = 0; v < k; ++v) {
    xs.push_back(gen_sparse_vector(500, sparsity, 1300 + v));
  }
  ThreadPool pool(4);
  const auto ys = tile_spmspv_batch(tiled, xs, &pool);
  ASSERT_EQ(ys.size(), static_cast<std::size_t>(k));
  for (int v = 0; v < k; ++v) {
    EXPECT_TRUE(approx_equal(ys[v], spmspv_rowwise_reference(a, xs[v])))
        << "vector " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchSweep,
    ::testing::Combine(::testing::Values(1, 3, 16),
                       ::testing::Values(0.001, 0.1),
                       ::testing::Values<index_t>(0, 2)));

TEST(Batch, EmptyBatch) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(100, 100, 0.02, 1202));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16);
  EXPECT_TRUE(tile_spmspv_batch(tiled, std::vector<SparseVec<value_t>>{})
                  .empty());
}

TEST(Batch, MatchesSingleKernelBitwise) {
  // Batch traversal order per vector equals the single-vector kernel's, so
  // results are bitwise identical, not just approximately equal.
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(400, 400, 0.02, 1203));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);
  SparseVec<value_t> x = gen_sparse_vector(400, 0.05, 7);
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
  SparseVec<value_t> single = tile_spmspv(tiled, xt);
  const auto batch = tile_spmspv_batch(tiled, std::vector<SparseVec<value_t>>{x});
  EXPECT_EQ(batch[0].idx, single.idx);
  EXPECT_EQ(batch[0].vals, single.vals);
}

TEST(TileStatsModule, SimpleKnownMatrix) {
  // One dense 16x16 tile plus one singleton tile.
  Coo<value_t> coo(32, 32);
  for (index_t r = 0; r < 16; ++r) {
    for (index_t c = 0; c < 16; ++c) coo.push(r, c, 1.0);
  }
  coo.push(20, 20, 1.0);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  const TileStats s = tile_stats(a, 16);
  EXPECT_EQ(s.tile_rows, 2);
  EXPECT_EQ(s.tile_cols, 2);
  EXPECT_EQ(s.nonempty_tiles, 2);
  EXPECT_EQ(s.nnz, 257);
  EXPECT_DOUBLE_EQ(s.occupancy, 0.5);
  EXPECT_EQ(s.max_nnz_per_tile, 256);
  EXPECT_EQ(s.tiles_le2, 1);
  // Histogram: one tile in bucket 0 (nnz 1), one in bucket 8 (nnz 256).
  ASSERT_GE(s.nnz_histogram.size(), 9u);
  EXPECT_EQ(s.nnz_histogram[0], 1);
  EXPECT_EQ(s.nnz_histogram[8], 1);
}

TEST(TileStatsModule, MatchesTileMatrixCounts) {
  BandedParams p;
  p.n = 3000;
  p.block = 5;
  p.band_blocks = 4;
  Csr<value_t> a = Csr<value_t>::from_coo(gen_banded(p, 1204));
  for (index_t nt : {16, 32, 64}) {
    const TileStats s = tile_stats(a, nt);
    const TileMatrix<value_t> m = TileMatrix<value_t>::from_csr(a, nt, 0);
    EXPECT_EQ(s.nonempty_tiles, m.num_tiles()) << nt;
    EXPECT_DOUBLE_EQ(s.occupancy, m.tile_occupancy());
    // Histogram totals must equal the tile count.
    offset_t total = 0;
    for (offset_t h : s.nnz_histogram) total += h;
    EXPECT_EQ(total, s.nonempty_tiles);
  }
}

TEST(TileStatsModule, Tiles_le2MatchesExtraction) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(800, 800, 0.002, 1205));
  const TileStats s = tile_stats(a, 16);
  const TileMatrix<value_t> kept = TileMatrix<value_t>::from_csr(a, 16, 2);
  const TileMatrix<value_t> all = TileMatrix<value_t>::from_csr(a, 16, 0);
  EXPECT_EQ(s.tiles_le2, all.num_tiles() - kept.num_tiles());
}

TEST(TileStatsModule, EmptyMatrix) {
  Csr<value_t> a(10, 10);
  const TileStats s = tile_stats(a, 16);
  EXPECT_EQ(s.nonempty_tiles, 0);
  EXPECT_EQ(s.occupancy, 0.0);
  EXPECT_TRUE(s.nnz_histogram.empty());
}

}  // namespace
}  // namespace tilespmspv
