// Serving-layer tests: matrix residency (content-keyed LRU, epoch swap),
// batch admission (k-flushes, deadline), the NDJSON protocol (in-process
// via Server::handle_line and over a real unix socket via serve::Client),
// and the snapshot-swap guarantee — a reload mid-traffic never fails an
// in-flight query.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "formats/tile_file.hpp"

#include "apps/ms_bfs.hpp"
#include "core/spmspv.hpp"
#include "gen/suite.hpp"
#include "gen/vector_gen.hpp"
#include "obs/json_value.hpp"
#include "serve/batcher.hpp"
#include "serve/client.hpp"
#include "serve/matrix_store.hpp"
#include "serve/server.hpp"

using namespace tilespmspv;
using namespace tilespmspv::serve;

namespace {

SnapshotPtr suite_snap(const std::string& name, const std::string& alias) {
  return load_snapshot_suite(name, alias, {});
}

obs::JsonValue parse(const std::string& line) {
  obs::JsonValue v;
  EXPECT_TRUE(obs::json_parse_value(line, &v)) << line;
  return v;
}

bool ok(const obs::JsonValue& v) {
  const obs::JsonValue* o = v.find("ok");
  return o != nullptr && o->kind == obs::JsonValue::Kind::kBool && o->b;
}

/// Request-line builder for the spmspv op.
std::string spmspv_request(const std::string& matrix,
                           const SparseVec<value_t>& x) {
  std::ostringstream os;
  os.precision(17);  // full double round-trip, like the real client
  os << "{\"op\":\"spmspv\",\"matrix\":\"" << matrix << "\",\"indices\":[";
  for (std::size_t i = 0; i < x.idx.size(); ++i) {
    os << (i > 0 ? "," : "") << x.idx[i];
  }
  os << "],\"values\":[";
  for (std::size_t i = 0; i < x.vals.size(); ++i) {
    os << (i > 0 ? "," : "") << x.vals[i];
  }
  os << "]}";
  return os.str();
}

/// Decodes a spmspv response back into a SparseVec.
SparseVec<value_t> decode_vector(const obs::JsonValue& v) {
  SparseVec<value_t> y(static_cast<index_t>(v.number_or("n", 0.0)));
  const obs::JsonValue* idx = v.find("indices");
  const obs::JsonValue* vals = v.find("values");
  EXPECT_NE(idx, nullptr);
  EXPECT_NE(vals, nullptr);
  for (std::size_t i = 0; i < idx->arr.size(); ++i) {
    y.push(static_cast<index_t>(idx->arr[i].num),
           static_cast<value_t>(vals->arr[i].num));
  }
  return y;
}

}  // namespace

TEST(MatrixStore, ContentKeyIsStableAndAliasResolves) {
  MatrixStore store(1u << 30);
  SnapshotPtr a = suite_snap("er-small", "front");
  const std::string key = store.put(a, nullptr);
  // Same suite matrix under another alias hashes to the same content key.
  SnapshotPtr b = suite_snap("er-small", "other");
  EXPECT_EQ(b->key, key);

  EXPECT_NE(store.get("front"), nullptr);
  EXPECT_NE(store.get(key), nullptr);
  EXPECT_EQ(store.get("absent"), nullptr);
  const MatrixStore::Stats s = store.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(MatrixStore, ReloadSwapsEpochAndKeepsOldSnapshotAlive) {
  MatrixStore store(1u << 30);
  const std::string key = store.put(suite_snap("er-small", "m"), nullptr);
  SnapshotPtr before = store.get(key);
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->epoch, 0u);

  store.put(suite_snap("er-small", "m"), nullptr);  // same content: swap
  SnapshotPtr after = store.get(key);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->epoch, 1u);
  EXPECT_EQ(store.stats().swaps, 1u);
  // The pre-swap snapshot stays valid for in-flight queries.
  EXPECT_EQ(before->epoch, 0u);
  EXPECT_EQ(before->rows, after->rows);
}

TEST(MatrixStore, LruEvictsColdestWithinBudget) {
  SnapshotPtr a = suite_snap("er-small", "a");
  SnapshotPtr b = suite_snap("rmat-small", "b");
  // Budget fits either matrix alone but not both.
  MatrixStore store(a->bytes + b->bytes - 1);
  store.put(a, nullptr);
  EXPECT_NE(store.get("a"), nullptr);
  std::vector<std::string> evicted;
  store.put(b, &evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], a->key);
  EXPECT_EQ(store.get("a"), nullptr);
  EXPECT_NE(store.get("b"), nullptr);
  EXPECT_EQ(store.stats().evictions, 1u);
}

TEST(MatrixStore, TileFileAdmissionBindsKeyToBytesAndReportsNnz) {
  const std::string path = "/tmp/tilespmspv_serve_admit.ttlf";
  const auto a = Csr<value_t>::from_coo(suite_matrix("er-small"));
  const auto m = TileMatrix<value_t>::from_csr(a, 16, 2);
  const std::uint64_t hash = write_tile_matrix_file_v2(path, m);

  // Honest file: mmapped admission, content key = verified payload hash,
  // nnz from the mapped view (header.edges was 0 in pre-fix files).
  SnapshotPtr snap = load_snapshot_file(path, "tiled", {});
  EXPECT_TRUE(snap->mapped);
  EXPECT_EQ(snap->nnz, a.nnz());
  std::string want_key(16, '0');
  std::uint64_t h = hash;
  for (int i = 15; i >= 0; --i, h >>= 4) {
    want_key[static_cast<std::size_t>(i)] = "0123456789abcdef"[h & 0xf];
  }
  EXPECT_EQ(snap->key, want_key);

  // Forged header hash: the content key is what MatrixStore::put dedups
  // and epoch-swaps on, so an upload claiming another matrix's hash must
  // be rejected at admission, not admitted under the forged key.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    ASSERT_TRUE(in);
    bytes.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const std::uint64_t forged = hash ^ 0xdecafbadull;
  std::memcpy(&bytes[48], &forged, 8);  // header.payload_hash slot
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load_snapshot_file(path, "forged", {}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Batcher, AccumulatesIntoMultiLaneFlushes) {
  ThreadPool pool(2);
  // Large k + long deadline: all queries land in one queue before the
  // flusher wakes, so the flush must carry k > 1.
  Batcher batcher({/*max_k=*/64, /*deadline_ms=*/50.0}, &pool);
  SnapshotPtr snap = suite_snap("er-small", "m");
  const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("er-small"));

  constexpr int kQueries = 12;
  std::vector<SparseVec<value_t>> xs;
  std::vector<std::future<SparseVec<value_t>>> futs;
  for (int i = 0; i < kQueries; ++i) {
    xs.push_back(gen_sparse_vector(a.cols, 0.002,
                                   static_cast<unsigned>(i + 1)));
    futs.push_back(batcher.submit_spmspv(snap, xs.back()));
  }
  SpmspvOperator<value_t> ref(a, {}, &pool);
  for (int i = 0; i < kQueries; ++i) {
    const SparseVec<value_t> y = futs[static_cast<std::size_t>(i)].get();
    const SparseVec<value_t> want =
        ref.multiply(xs[static_cast<std::size_t>(i)]);
    ASSERT_EQ(y.idx, want.idx) << "query " << i;
    for (std::size_t j = 0; j < y.vals.size(); ++j) {
      EXPECT_NEAR(y.vals[j], want.vals[j], 1e-9);
    }
  }
  const Batcher::Stats s = batcher.stats();
  EXPECT_EQ(s.spmspv_queries, static_cast<std::uint64_t>(kQueries));
  EXPECT_GE(s.max_flush_k, 2u);      // admission actually batched
  EXPECT_GE(s.batched_flushes, 1u);  // at least one k>1 flush
  EXPECT_LT(s.flushes, static_cast<std::uint64_t>(kQueries));
}

TEST(Batcher, MismatchedVectorLengthResolvesWithError) {
  ThreadPool pool(1);
  Batcher batcher({4, 1.0}, &pool);
  SnapshotPtr snap = suite_snap("er-small", "m");
  SparseVec<value_t> bad(snap->cols + 7);
  bad.push(0, value_t{1});
  EXPECT_THROW(batcher.submit_spmspv(snap, bad).get(),
               std::invalid_argument);
  EXPECT_EQ(batcher.stats().errors, 1u);
}

TEST(ServeProtocol, LoadSpmspvMatchesReferenceOperator) {
  ServeConfig cfg;
  cfg.batch_k = 4;
  cfg.deadline_ms = 1.0;
  cfg.threads = 2;
  Server server(cfg);
  ASSERT_TRUE(ok(parse(server.handle_line(
      "{\"op\":\"load\",\"suite\":\"er-small\",\"alias\":\"er\"}"))));
  ASSERT_TRUE(ok(parse(server.handle_line(
      "{\"op\":\"load\",\"suite\":\"rmat-small\",\"alias\":\"rmat\"}"))));
  const obs::JsonValue listed = parse(server.handle_line("{\"op\":\"list\"}"));
  ASSERT_TRUE(ok(listed));
  EXPECT_EQ(listed.find("matrices")->arr.size(), 2u);

  for (const char* cname : {"er-small", "rmat-small"}) {
    const std::string name = cname;
    const std::string alias = (name == "er-small") ? "er" : "rmat";
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    SpmspvOperator<value_t> ref(a, {});
    const SparseVec<value_t> x = gen_sparse_vector(a.cols, 0.01, 7);
    const obs::JsonValue resp =
        parse(server.handle_line(spmspv_request(alias, x)));
    ASSERT_TRUE(ok(resp)) << name;
    const SparseVec<value_t> y = decode_vector(resp);
    const SparseVec<value_t> want = ref.multiply(x);
    ASSERT_EQ(y.idx, want.idx) << name;
    for (std::size_t j = 0; j < y.vals.size(); ++j) {
      EXPECT_NEAR(y.vals[j], want.vals[j], 1e-9) << name;
    }
  }
}

TEST(ServeProtocol, BfsMatchesSerialLevels) {
  ServeConfig cfg;
  cfg.threads = 2;
  Server server(cfg);
  ASSERT_TRUE(ok(parse(server.handle_line(
      "{\"op\":\"load\",\"suite\":\"er-small\",\"alias\":\"g\"}"))));
  const obs::JsonValue resp = parse(server.handle_line(
      "{\"op\":\"bfs\",\"matrix\":\"g\",\"source\":3}"));
  ASSERT_TRUE(ok(resp));
  const obs::JsonValue* levels = resp.find("levels");
  ASSERT_NE(levels, nullptr);

  const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("er-small"));
  const MsBfsResult want = ms_bfs(a, {3});
  ASSERT_EQ(levels->arr.size(), want.levels[0].size());
  for (std::size_t v = 0; v < want.levels[0].size(); ++v) {
    EXPECT_EQ(static_cast<index_t>(levels->arr[v].num), want.levels[0][v])
        << "vertex " << v;
  }
}

TEST(ServeProtocol, MalformedAndUnknownRequestsFailSoftly) {
  Server server({});
  EXPECT_FALSE(ok(parse(server.handle_line("this is not json"))));
  EXPECT_FALSE(ok(parse(server.handle_line("{\"op\":\"warp\"}"))));
  EXPECT_FALSE(ok(parse(server.handle_line("{\"no_op\":1}"))));
  EXPECT_FALSE(ok(parse(server.handle_line(
      "{\"op\":\"spmspv\",\"matrix\":\"ghost\",\"indices\":[0]}"))));
  EXPECT_FALSE(ok(parse(server.handle_line(
      "{\"op\":\"load\",\"suite\":\"er-small\",\"path\":\"x\"}"))));
  // Out-of-range index: trust boundary rejects, connection-level ok.
  EXPECT_TRUE(ok(parse(server.handle_line(
      "{\"op\":\"load\",\"suite\":\"er-small\",\"alias\":\"m\"}"))));
  EXPECT_FALSE(ok(parse(server.handle_line(
      "{\"op\":\"spmspv\",\"matrix\":\"m\",\"indices\":[999999]}"))));
  // The server is still healthy after every failure.
  EXPECT_TRUE(ok(parse(server.handle_line("{\"op\":\"ping\"}"))));
}

TEST(ServeProtocol, StatsExposeBatchAndStoreCounters) {
  ServeConfig cfg;
  cfg.batch_k = 64;
  cfg.deadline_ms = 20.0;
  cfg.threads = 2;
  Server server(cfg);
  ASSERT_TRUE(ok(parse(server.handle_line(
      "{\"op\":\"load\",\"suite\":\"er-small\",\"alias\":\"m\"}"))));
  const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("er-small"));

  // Concurrent clients inside one admission window: the flush carries
  // k > 1 (this is the batch-counter acceptance demo in test form).
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<int> oks(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const SparseVec<value_t> x =
          gen_sparse_vector(a.cols, 0.005, static_cast<unsigned>(i + 1));
      obs::JsonValue resp;
      const std::string line = server.handle_line(spmspv_request("m", x));
      oks[static_cast<std::size_t>(i)] =
          obs::json_parse_value(line, &resp) && ok(resp) ? 1 : 0;
    });
  }
  for (auto& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(oks[static_cast<std::size_t>(i)], 1);
  }

  const obs::JsonValue stats = parse(server.handle_line("{\"op\":\"stats\"}"));
  ASSERT_TRUE(ok(stats));
  const obs::JsonValue* m = stats.find("metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->number_or("serve.batch.spmspv_queries", -1.0), kClients);
  EXPECT_GE(m->number_or("serve.batch.batched_flushes", -1.0), 1.0);
  EXPECT_GE(m->number_or("serve.batch.max_flush_k", -1.0), 2.0);
  EXPECT_EQ(m->number_or("serve.store.entries", -1.0), 1.0);
  EXPECT_GE(m->number_or("serve.op.spmspv.p95_ms", -1.0), 0.0);
}

TEST(ServeProtocol, SnapshotSwapMidTrafficLosesNoQueries) {
  ServeConfig cfg;
  cfg.batch_k = 4;
  cfg.deadline_ms = 0.5;
  cfg.threads = 2;
  Server server(cfg);
  ASSERT_TRUE(ok(parse(server.handle_line(
      "{\"op\":\"load\",\"suite\":\"er-small\",\"alias\":\"m\"}"))));
  const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("er-small"));

  // Traffic threads hammer spmspv while the main thread reloads the
  // matrix repeatedly. Every query must succeed — queries admitted before
  // a swap run to completion on the old snapshot.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> traffic;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    traffic.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const SparseVec<value_t> x = gen_sparse_vector(
            a.cols, 0.002, static_cast<unsigned>(t * 1000 + i + 1));
        obs::JsonValue resp;
        const std::string line = server.handle_line(spmspv_request("m", x));
        if (!obs::json_parse_value(line, &resp) || !ok(resp)) {
          ++failures[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  int swaps = 0;
  for (int r = 0; r < 10; ++r) {
    const obs::JsonValue resp = parse(server.handle_line(
        "{\"op\":\"reload\",\"suite\":\"er-small\",\"alias\":\"m\"}"));
    ASSERT_TRUE(ok(resp));
    ++swaps;
  }
  for (auto& t : traffic) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0) << "thread " << t;
  }
  const obs::JsonValue listed = parse(server.handle_line("{\"op\":\"list\"}"));
  EXPECT_EQ(listed.find("matrices")->arr[0].number_or("epoch", -1.0),
            static_cast<double>(swaps));
}

TEST(ServeSocket, FullProtocolOverUnixSocket) {
  ServeConfig cfg;
  cfg.socket_path =
      testing::TempDir() + "tilespmspv_test_serve.sock";
  cfg.threads = 2;
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  Client c;
  ASSERT_TRUE(c.connect(cfg.socket_path, &err)) << err;
  std::string resp;
  ASSERT_TRUE(c.request("{\"op\":\"ping\"}", &resp, &err)) << err;
  EXPECT_TRUE(ok(parse(resp)));
  ASSERT_TRUE(c.request(
      "{\"op\":\"load\",\"suite\":\"er-small\",\"alias\":\"m\"}", &resp,
      &err));
  EXPECT_TRUE(ok(parse(resp)));

  const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("er-small"));
  const SparseVec<value_t> x = gen_sparse_vector(a.cols, 0.01, 5);
  ASSERT_TRUE(c.request(spmspv_request("m", x), &resp, &err));
  const obs::JsonValue v = parse(resp);
  ASSERT_TRUE(ok(v));
  SpmspvOperator<value_t> ref(a, {});
  const SparseVec<value_t> want = ref.multiply(x);
  EXPECT_EQ(decode_vector(v).idx, want.idx);

  // Two clients at once: the second connection is served concurrently.
  Client c2;
  ASSERT_TRUE(c2.connect(cfg.socket_path, &err)) << err;
  ASSERT_TRUE(c2.request("{\"op\":\"list\"}", &resp, &err));
  EXPECT_TRUE(ok(parse(resp)));

  ASSERT_TRUE(c.request("{\"op\":\"shutdown\"}", &resp, &err));
  EXPECT_TRUE(ok(parse(resp)));
  EXPECT_TRUE(server.shutdown_requested());
  server.stop();
}

TEST(ServeProtocol, UnloadAndEviction) {
  SnapshotPtr probe = suite_snap("er-small", "");
  ServeConfig cfg;
  // Budget below two copies: loading the second suite matrix evicts the
  // first (LRU), which the response reports.
  cfg.cache_bytes = probe->bytes + (probe->bytes / 2);
  Server server(cfg);
  ASSERT_TRUE(ok(parse(server.handle_line(
      "{\"op\":\"load\",\"suite\":\"er-small\",\"alias\":\"a\"}"))));
  const obs::JsonValue second = parse(server.handle_line(
      "{\"op\":\"load\",\"suite\":\"rmat-small\",\"alias\":\"b\"}"));
  ASSERT_TRUE(ok(second));
  EXPECT_EQ(second.find("evicted")->arr.size(), 1u);
  const obs::JsonValue listed = parse(server.handle_line("{\"op\":\"list\"}"));
  ASSERT_EQ(listed.find("matrices")->arr.size(), 1u);
  EXPECT_EQ(listed.find("matrices")->arr[0].string_or("alias", ""), "b");

  EXPECT_TRUE(ok(parse(server.handle_line(
      "{\"op\":\"unload\",\"matrix\":\"b\"}"))));
  EXPECT_FALSE(ok(parse(server.handle_line(
      "{\"op\":\"unload\",\"matrix\":\"b\"}"))));
}
