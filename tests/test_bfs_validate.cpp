// Tests for BFS parent construction and the Graph500-style validator:
// valid traversals from every implementation must pass; corrupted level
// or parent arrays must be rejected with the right diagnostic.
#include <gtest/gtest.h>

#include "baselines/dobfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "bfs/bfs_validate.hpp"
#include "bfs/tile_bfs.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/grid.hpp"

namespace tilespmspv {
namespace {

Csr<value_t> undirected(index_t n, double p, std::uint64_t seed) {
  Coo<value_t> coo = gen_erdos_renyi(n, n, p, seed);
  coo.symmetrize();
  return Csr<value_t>::from_coo(coo);
}

TEST(BfsParents, SourceAndUnreachable) {
  Coo<value_t> coo(5, 5);
  coo.push(0, 1, 1.0);
  coo.push(1, 0, 1.0);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  const auto levels = serial_bfs(a, 0);
  const auto parents = bfs_parents(a, levels, 0);
  EXPECT_EQ(parents[0], 0);
  EXPECT_EQ(parents[1], 0);
  EXPECT_EQ(parents[2], -1);
}

TEST(BfsParents, DeterministicSmallestId) {
  // Vertex 3 reachable from both 1 and 2 at level 1: parent must be 1.
  Coo<value_t> coo(4, 4);
  for (auto [u, v] : std::vector<std::pair<index_t, index_t>>{
           {0, 1}, {0, 2}, {1, 3}, {2, 3}}) {
    coo.push(v, u, 1.0);
    coo.push(u, v, 1.0);
  }
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  const auto levels = serial_bfs(a, 0);
  const auto parents = bfs_parents(a, levels, 0);
  EXPECT_EQ(parents[3], 1);
}

class ValidateAcrossGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValidateAcrossGraphs, TileBfsTreeValidates) {
  Csr<value_t> g = undirected(800, 0.004, GetParam());
  TileBfs bfs(g);
  const BfsResult r = bfs.run(0);
  const auto parents = bfs_parents(g, r.levels, 0);
  std::string error;
  EXPECT_TRUE(validate_bfs(g, 0, r.levels, parents, &error)) << error;
}

TEST_P(ValidateAcrossGraphs, DobfsTreeValidates) {
  Csr<value_t> g = undirected(800, 0.004, GetParam() + 50);
  const auto levels = dobfs(g, g, 0);
  const auto parents = bfs_parents(g, levels, 0);
  std::string error;
  EXPECT_TRUE(validate_bfs(g, 0, levels, parents, &error)) << error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidateAcrossGraphs,
                         ::testing::Values(1101, 1102, 1103));

TEST(Validate, RejectsWrongSourceLevel) {
  Csr<value_t> g = undirected(100, 0.05, 1104);
  auto levels = serial_bfs(g, 0);
  auto parents = bfs_parents(g, levels, 0);
  levels[0] = 1;
  std::string error;
  EXPECT_FALSE(validate_bfs(g, 0, levels, parents, &error));
  EXPECT_NE(error.find("source level"), std::string::npos);
}

TEST(Validate, RejectsSkippedLevel) {
  Csr<value_t> g = Csr<value_t>::from_coo(gen_grid2d(10, 10, 1.0, 1105));
  auto levels = serial_bfs(g, 0);
  auto parents = bfs_parents(g, levels, 0);
  // Pretend some vertex was found two levels late.
  for (index_t v = 0; v < g.rows; ++v) {
    if (levels[v] == 3) {
      levels[v] = 5;
      break;
    }
  }
  std::string error;
  EXPECT_FALSE(validate_bfs(g, 0, levels, parents, &error));
}

TEST(Validate, RejectsForeignParent) {
  Csr<value_t> g = undirected(200, 0.03, 1106);
  const auto levels = serial_bfs(g, 0);
  auto parents = bfs_parents(g, levels, 0);
  // Replace one parent with a non-neighbor at the right level.
  for (index_t v = 0; v < g.rows; ++v) {
    if (levels[v] == 2) {
      for (index_t cand = 0; cand < g.rows; ++cand) {
        if (levels[cand] == 1 && cand != parents[v]) {
          bool neighbor = false;
          for (offset_t i = g.row_ptr[v]; i < g.row_ptr[v + 1]; ++i) {
            if (g.col_idx[i] == cand) neighbor = true;
          }
          if (!neighbor) {
            parents[v] = cand;
            std::string error;
            EXPECT_FALSE(validate_bfs(g, 0, levels, parents, &error));
            EXPECT_NE(error.find("parent not a neighbor"),
                      std::string::npos);
            return;
          }
        }
      }
    }
  }
  GTEST_SKIP() << "no suitable corruption site found";
}

TEST(Validate, RejectsVisitedWithoutParent) {
  Csr<value_t> g = undirected(100, 0.05, 1107);
  const auto levels = serial_bfs(g, 0);
  auto parents = bfs_parents(g, levels, 0);
  for (index_t v = 1; v < g.rows; ++v) {
    if (levels[v] > 0) {
      parents[v] = -1;
      break;
    }
  }
  std::string error;
  EXPECT_FALSE(validate_bfs(g, 0, levels, parents, &error));
}

}  // namespace
}  // namespace tilespmspv
