// Tests for the semiring-generic kernel and the applications on top of it
// (SSSP, connected components, personalized PageRank), each validated
// against an independent classical reference (Dijkstra, union-find, dense
// power iteration).
#include <gtest/gtest.h>

#include <queue>

#include "apps/connected_components.hpp"
#include "apps/ppr.hpp"
#include "apps/sssp.hpp"
#include "core/spmspv_reference.hpp"
#include "core/tile_spmspv.hpp"
#include "core/tile_spmspv_semiring.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/grid.hpp"
#include "gen/vector_gen.hpp"

namespace tilespmspv {
namespace {

// ------------------------------------------------------------- semiring

TEST(Semiring, PlusTimesMatchesOptimizedKernel) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(500, 400, 0.02, 701));
  SparseVec<value_t> x = gen_sparse_vector(400, 0.05, 1);
  SemiringOperator<PlusTimes<value_t>> op(a);
  EXPECT_TRUE(approx_equal(op.multiply(x), spmspv_rowwise_reference(a, x)));
}

TEST(Semiring, PlusTimesWithExtraction) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(300, 300, 0.003, 702));
  SparseVec<value_t> x = gen_sparse_vector(300, 0.1, 2);
  SemiringOperator<PlusTimes<value_t>> op(a, 16, /*extract=*/4);
  EXPECT_TRUE(approx_equal(op.multiply(x), spmspv_rowwise_reference(a, x)));
}

TEST(Semiring, MinPlusHandExample) {
  // 0 -> 1 (w 2), 0 -> 2 (w 5), 1 -> 2 (w 1). One relaxation from
  // {0: 0, 1: 2} gives y_1 = 0+2, y_2 = min(0+5, 2+1) = 3.
  Coo<value_t> coo(3, 3);
  coo.push(1, 0, 2.0);
  coo.push(2, 0, 5.0);
  coo.push(2, 1, 1.0);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  SemiringOperator<MinPlus<value_t>> op(a);
  SparseVec<value_t> x(3);
  x.push(0, 0.0);
  x.push(1, 2.0);
  SparseVec<value_t> y = op.multiply(x);
  ASSERT_EQ(y.nnz(), 2);
  EXPECT_EQ(y.idx, (std::vector<index_t>{1, 2}));
  EXPECT_DOUBLE_EQ(y.vals[0], 2.0);
  EXPECT_DOUBLE_EQ(y.vals[1], 3.0);
}

TEST(Semiring, MinPlusZeroDistanceSourceSurvives) {
  // A frontier value of 0.0 is *not* the min-plus identity (inf) and must
  // propagate — the classic pitfall the padded tile build has to avoid.
  Coo<value_t> coo(2, 2);
  coo.push(1, 0, 7.0);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  SemiringOperator<MinPlus<value_t>> op(a);
  SparseVec<value_t> x(2);
  x.push(0, 0.0);
  SparseVec<value_t> y = op.multiply(x);
  ASSERT_EQ(y.nnz(), 1);
  EXPECT_DOUBLE_EQ(y.vals[0], 7.0);
}

TEST(Semiring, OrAndGivesOneHopReachability) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(200, 200, 0.02, 703));
  SparseVec<value_t> x(200);
  x.push(3, 1.0);
  x.push(77, 1.0);
  SemiringOperator<OrAnd<value_t>> op(a);
  SparseVec<value_t> y = op.multiply(x);
  // Expected: union of columns 3 and 77 patterns.
  std::set<index_t> expect;
  for (index_t r = 0; r < 200; ++r) {
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      if (a.col_idx[i] == 3 || a.col_idx[i] == 77) expect.insert(r);
    }
  }
  EXPECT_EQ(std::set<index_t>(y.idx.begin(), y.idx.end()), expect);
  for (value_t v : y.vals) EXPECT_EQ(v, 1.0);
}

TEST(Semiring, MaxTimesSelectsBestPath) {
  // Reliability: y_i = max_j (a_ij * x_j).
  Coo<value_t> coo(2, 2);
  coo.push(1, 0, 0.5);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  SemiringOperator<MaxTimes<value_t>> op(a);
  SparseVec<value_t> x(2);
  x.push(0, 0.8);
  SparseVec<value_t> y = op.multiply(x);
  ASSERT_EQ(y.nnz(), 1);
  EXPECT_DOUBLE_EQ(y.vals[0], 0.4);
}

TEST(Semiring, ParallelPoolGivesSameResult) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(800, 800, 0.01, 704));
  SparseVec<value_t> x = gen_sparse_vector(800, 0.2, 3);
  ThreadPool pool(8);
  SemiringOperator<MinPlus<value_t>> op1(a);
  SemiringOperator<MinPlus<value_t>> op8(a, 16, 2, &pool);
  SparseVec<value_t> y1 = op1.multiply(x);
  SparseVec<value_t> y8 = op8.multiply(x);
  EXPECT_EQ(y1.idx, y8.idx);
  EXPECT_EQ(y1.vals, y8.vals);  // min is exact: bitwise equal
}

// ----------------------------------------------------------------- SSSP

std::vector<double> dijkstra_reference(const Csr<value_t>& a,
                                       index_t source) {
  // `a` uses A[i][j] = weight(j -> i): out-edges of u are column u, so
  // run over the transpose for row access.
  Csr<value_t> out_edges = a.transpose();
  const index_t n = a.rows;
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  using Item = std::pair<double, index_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (offset_t i = out_edges.row_ptr[u]; i < out_edges.row_ptr[u + 1];
         ++i) {
      const index_t v = out_edges.col_idx[i];
      const double nd = d + out_edges.vals[i];
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  return dist;
}

class SsspSweep
    : public ::testing::TestWithParam<std::tuple<index_t, double, std::uint64_t>> {};

TEST_P(SsspSweep, MatchesDijkstra) {
  const auto [n, p, seed] = GetParam();
  Coo<value_t> coo = gen_erdos_renyi(n, n, p, seed);  // weights in (0.1, 1)
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  const auto expect = dijkstra_reference(a, 0);
  const SsspResult got = sssp(a, 0);
  for (index_t v = 0; v < n; ++v) {
    if (std::isinf(expect[v])) {
      EXPECT_TRUE(std::isinf(got.dist[v])) << v;
    } else {
      EXPECT_NEAR(got.dist[v], expect[v], 1e-9) << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SsspSweep,
    ::testing::Combine(::testing::Values<index_t>(50, 300, 1200),
                       ::testing::Values(0.005, 0.02),
                       ::testing::Values<std::uint64_t>(711, 712)));

TEST(Sssp, PathGraphDistancesAreCumulative) {
  Coo<value_t> coo(5, 5);
  double total = 0.0;
  std::vector<double> expect{0.0};
  for (index_t i = 0; i + 1 < 5; ++i) {
    const double w = 0.5 + i;
    coo.push(i + 1, i, w);  // edge i -> i+1
    total += w;
    expect.push_back(total);
  }
  const SsspResult r = sssp(Csr<value_t>::from_coo(coo), 0);
  for (index_t v = 0; v < 5; ++v) EXPECT_NEAR(r.dist[v], expect[v], 1e-12);
  EXPECT_EQ(r.rounds, 5);  // 4 relaxation rounds + 1 empty-check round
}

TEST(Sssp, UnreachableStaysInfinite) {
  Coo<value_t> coo(4, 4);
  coo.push(1, 0, 1.0);
  const SsspResult r = sssp(Csr<value_t>::from_coo(coo), 0);
  EXPECT_TRUE(std::isinf(r.dist[2]));
  EXPECT_TRUE(std::isinf(r.dist[3]));
}

TEST(Sssp, ShorterLateDiscoveryWins) {
  // Direct heavy edge vs longer light path: 0->2 weight 10; 0->1->2
  // weight 1+1: Bellman-Ford must settle on 2.
  Coo<value_t> coo(3, 3);
  coo.push(2, 0, 10.0);
  coo.push(1, 0, 1.0);
  coo.push(2, 1, 1.0);
  const SsspResult r = sssp(Csr<value_t>::from_coo(coo), 0);
  EXPECT_DOUBLE_EQ(r.dist[2], 2.0);
}

// ------------------------------------------------- connected components

index_t union_find_count(const Csr<value_t>& a) {
  std::vector<index_t> parent(a.rows);
  std::iota(parent.begin(), parent.end(), index_t{0});
  std::function<index_t(index_t)> find = [&](index_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (index_t r = 0; r < a.rows; ++r) {
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      parent[find(r)] = find(a.col_idx[i]);
    }
  }
  std::set<index_t> roots;
  for (index_t v = 0; v < a.rows; ++v) roots.insert(find(v));
  return static_cast<index_t>(roots.size());
}

TEST(ConnectedComponents, CountMatchesUnionFind) {
  for (std::uint64_t seed : {721, 722, 723}) {
    Coo<value_t> coo = gen_erdos_renyi(500, 500, 0.0015, seed);
    coo.symmetrize();
    Csr<value_t> a = Csr<value_t>::from_coo(coo);
    const ComponentsResult r = connected_components(a);
    EXPECT_EQ(r.count, union_find_count(a)) << "seed " << seed;
    // Same component <=> connected by an edge (spot check edges).
    for (index_t v = 0; v < a.rows; ++v) {
      for (offset_t i = a.row_ptr[v]; i < a.row_ptr[v + 1]; ++i) {
        EXPECT_EQ(r.component[v], r.component[a.col_idx[i]]);
      }
    }
  }
}

TEST(ConnectedComponents, IsolatedVerticesAreSingletons) {
  Coo<value_t> coo(5, 5);
  coo.push(0, 1, 1.0);
  coo.push(1, 0, 1.0);
  const ComponentsResult r =
      connected_components(Csr<value_t>::from_coo(coo));
  EXPECT_EQ(r.count, 4);  // {0,1}, {2}, {3}, {4}
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_NE(r.component[2], r.component[3]);
}

TEST(ConnectedComponents, GridIsOneComponent) {
  Csr<value_t> a = Csr<value_t>::from_coo(gen_grid2d(20, 20, 1.0, 724));
  EXPECT_EQ(connected_components(a).count, 1);
}

// ------------------------------------------------------------------ PPR

std::vector<double> ppr_dense_reference(const Csr<value_t>& adj,
                                        const SparseVec<value_t>& seeds,
                                        double alpha, int iters) {
  Csr<value_t> p = column_stochastic(adj);
  const index_t n = adj.rows;
  std::vector<double> scores(n, 0.0);
  std::vector<double> r = [&] {
    std::vector<double> d(n, 0.0);
    for (std::size_t k = 0; k < seeds.idx.size(); ++k) {
      d[seeds.idx[k]] = seeds.vals[k];
    }
    return d;
  }();
  for (int t = 0; t < iters; ++t) {
    for (index_t v = 0; v < n; ++v) scores[v] += (1.0 - alpha) * r[v];
    std::vector<double> nr(n, 0.0);
    for (index_t i = 0; i < n; ++i) {
      for (offset_t k = p.row_ptr[i]; k < p.row_ptr[i + 1]; ++k) {
        nr[i] += alpha * p.vals[k] * r[p.col_idx[k]];
      }
    }
    r = std::move(nr);
  }
  return scores;
}

TEST(Ppr, MatchesDensePowerIteration) {
  Coo<value_t> coo = gen_erdos_renyi(300, 300, 0.02, 731);
  coo.symmetrize();
  Csr<value_t> adj = Csr<value_t>::from_coo(coo);
  SparseVec<value_t> seeds(300);
  seeds.push(7, 1.0);
  PprConfig cfg;
  cfg.epsilon = 0.0;  // exact propagation
  cfg.max_iterations = 60;
  const PprResult got = personalized_pagerank(adj, seeds, cfg);
  const auto expect = ppr_dense_reference(adj, seeds, cfg.alpha, 60);
  const auto dense = got.scores.to_dense();
  for (index_t v = 0; v < 300; ++v) {
    EXPECT_NEAR(dense[v], expect[v], 1e-6) << v;
  }
}

TEST(Ppr, MassIsConservedUpToTruncation) {
  Coo<value_t> coo = gen_erdos_renyi(500, 500, 0.01, 732);
  coo.symmetrize();
  Csr<value_t> adj = Csr<value_t>::from_coo(coo);
  SparseVec<value_t> seeds(500);
  seeds.push(0, 0.5);
  seeds.push(100, 0.5);
  PprConfig cfg;
  cfg.epsilon = 1e-8;
  cfg.max_iterations = 200;
  const PprResult r = personalized_pagerank(adj, seeds, cfg);
  double total = r.truncated_mass;
  for (value_t v : r.scores.vals) total += v;
  // Dangling columns lose mass; with a symmetrized ER graph of avg degree
  // ~10 they are rare, so conservation holds within a few percent.
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(Ppr, SeedNeighborhoodDominates) {
  // On a long path, mass concentrates near the seed.
  Coo<value_t> coo(200, 200);
  for (index_t i = 0; i + 1 < 200; ++i) {
    coo.push(i, i + 1, 1.0);
    coo.push(i + 1, i, 1.0);
  }
  Csr<value_t> adj = Csr<value_t>::from_coo(coo);
  SparseVec<value_t> seeds(200);
  seeds.push(100, 1.0);
  const PprResult r = personalized_pagerank(adj, seeds);
  const auto d = r.scores.to_dense();
  EXPECT_GT(d[100], d[90]);
  EXPECT_GT(d[90], d[50]);
  EXPECT_GT(d[100], 0.1);
}

TEST(Ppr, ColumnStochasticColumnsSumToOne) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(100, 100, 0.05, 733));
  Csr<value_t> p = column_stochastic(a);
  std::vector<double> colsum(100, 0.0);
  for (index_t r = 0; r < 100; ++r) {
    for (offset_t i = p.row_ptr[r]; i < p.row_ptr[r + 1]; ++i) {
      colsum[p.col_idx[i]] += p.vals[i];
    }
  }
  for (index_t j = 0; j < 100; ++j) {
    if (colsum[j] > 0.0) {
      EXPECT_NEAR(colsum[j], 1.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace tilespmspv
