// Tests for the thread-pool substrate: loop coverage, reductions, atomic
// helpers, and reuse across many dispatches (the BFS loop dispatches the
// pool once per kernel per level, so epoch handling must be airtight).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"

namespace tilespmspv {
namespace {

class ThreadPoolSizes : public ::testing::TestWithParam<int> {};

TEST_P(ThreadPoolSizes, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(GetParam());
  const index_t n = 10007;  // prime, not a chunk multiple
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](index_t i) { hits[i].fetch_add(1); }, &pool);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ThreadPoolSizes, ParallelForRangesPartitions) {
  ThreadPool pool(GetParam());
  const index_t n = 5000;
  std::atomic<index_t> total{0};
  parallel_for_ranges(
      n, [&](index_t b, index_t e) { total.fetch_add(e - b); }, &pool,
      /*chunk=*/37);
  EXPECT_EQ(total.load(), n);
}

TEST_P(ThreadPoolSizes, ParallelReduceSum) {
  ThreadPool pool(GetParam());
  const index_t n = 12345;
  const long long got = parallel_reduce<long long>(
      n, 0LL, [](index_t i) { return static_cast<long long>(i); },
      [](long long a, long long b) { return a + b; }, &pool);
  EXPECT_EQ(got, static_cast<long long>(n) * (n - 1) / 2);
}

TEST_P(ThreadPoolSizes, ManySequentialDispatches) {
  ThreadPool pool(GetParam());
  // The BFS drivers re-enter the pool hundreds of times; make sure epochs
  // never deadlock or drop work.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    parallel_for(100, [&](index_t) { count.fetch_add(1); }, &pool,
                 /*chunk=*/7);
    ASSERT_EQ(count.load(), 100);
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ThreadPoolSizes,
                         ::testing::Values(1, 2, 4, 8));

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(4);
  bool ran = false;
  parallel_for(0, [&](index_t) { ran = true; }, &pool);
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SizeReportsCallerPlusWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SharedPoolWorks) {
  std::atomic<int> count{0};
  parallel_for(50, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(Atomics, AtomicOrAccumulates) {
  std::uint32_t w = 0;
  atomic_or(&w, 0x1u);
  atomic_or(&w, 0x80000000u);
  EXPECT_EQ(w, 0x80000001u);
}

TEST(Atomics, AtomicOrConcurrent) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> words(64, 0);
  parallel_for(
      64 * 64,
      [&](index_t i) {
        atomic_or(&words[i / 64], std::uint64_t{1} << (i % 64));
      },
      &pool, /*chunk=*/3);
  for (const auto w : words) EXPECT_EQ(w, ~std::uint64_t{0});
}

TEST(Atomics, AtomicAddConcurrent) {
  ThreadPool pool(4);
  double sum = 0.0;
  parallel_for(10000, [&](index_t) { atomic_add(&sum, 1.0); }, &pool,
               /*chunk=*/11);
  EXPECT_DOUBLE_EQ(sum, 10000.0);
}

TEST(Atomics, AtomicLoadSeesStores) {
  std::uint32_t w = 0;
  atomic_or(&w, 42u);
  EXPECT_EQ(atomic_load(&w), 42u);
}

TEST(ThreadPool, TwoPoolsOperateIndependently) {
  ThreadPool a(3), b(2);
  std::atomic<int> ca{0}, cb{0};
  parallel_for(1000, [&](index_t) { ca.fetch_add(1); }, &a, 13);
  parallel_for(500, [&](index_t) { cb.fetch_add(1); }, &b, 7);
  parallel_for(1000, [&](index_t) { ca.fetch_add(1); }, &a, 13);
  EXPECT_EQ(ca.load(), 2000);
  EXPECT_EQ(cb.load(), 500);
}

TEST(ThreadPool, OffPoolThreadSeesSentinelSlot) {
  // Threads that are not inside any dispatch carry the -1 sentinel;
  // scratch_slot() folds it into the always-present caller bucket so
  // per-slot workspaces stay in bounds when kernels run off-pool (the
  // serving daemon's request threads are exactly this case).
  int slot = -2, scratch = -2;
  std::thread t([&] {
    slot = ThreadPool::current_slot();
    scratch = ThreadPool::scratch_slot();
  });
  t.join();
  EXPECT_EQ(slot, -1);
  EXPECT_EQ(scratch, 0);
}

TEST(ThreadPool, SlotsAreDenseWithinDispatch) {
  ThreadPool pool(4);
  std::atomic<int> out_of_range{0};
  parallel_for(
      4096,
      [&](index_t) {
        const int s = ThreadPool::current_slot();
        if (s < 0 || s >= static_cast<int>(pool.size())) {
          out_of_range.fetch_add(1);
        }
      },
      &pool, /*chunk=*/1);
  EXPECT_EQ(out_of_range.load(), 0);
}

TEST(ThreadPool, NestedDispatchOntoSmallerPoolRebindsSlot) {
  // Regression: a worker of a 4-thread pool used to keep its own slot
  // (1..3) while executing a body dispatched through a 1-thread pool,
  // indexing that pool's per-slot buffers out of bounds. The dispatch must
  // bind the thread to the small pool's caller slot and restore the worker
  // slot afterwards.
  ThreadPool big(4);
  ThreadPool small(1);
  std::atomic<int> bad_inner{0}, bad_restore{0};
  parallel_for(
      64,
      [&](index_t) {
        const int before = ThreadPool::current_slot();
        small.parallel_ranges(8, /*chunk=*/64, [&](index_t, index_t) {
          const int s = ThreadPool::current_slot();
          if (s < 0 || s >= static_cast<int>(small.size())) {
            bad_inner.fetch_add(1);
          }
        });
        if (ThreadPool::current_slot() != before) bad_restore.fetch_add(1);
      },
      &big, /*chunk=*/1);
  EXPECT_EQ(bad_inner.load(), 0);
  EXPECT_EQ(bad_restore.load(), 0);
}

TEST(ThreadPool, LargeChunkRunsSerially) {
  ThreadPool pool(4);
  // n <= chunk takes the serial fast path; verify order is sequential.
  std::vector<index_t> order;
  parallel_for_ranges(
      10, [&](index_t b, index_t e) {
        for (index_t i = b; i < e; ++i) order.push_back(i);
      },
      &pool, /*chunk=*/100);
  std::vector<index_t> expect(10);
  std::iota(expect.begin(), expect.end(), index_t{0});
  EXPECT_EQ(order, expect);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  // Busy-wait ~2ms of wall clock.
  volatile double sink = 0.0;
  while (t.elapsed_ms() < 2.0) sink = sink + 1.0;
  EXPECT_GE(t.elapsed_ms(), 2.0);
  EXPECT_GT(t.elapsed_s(), 0.0);
  t.reset();
  EXPECT_LT(t.elapsed_ms(), 2.0);
  (void)sink;
}

TEST(Timer, TimeBestRunsWarmupPlusIters) {
  int calls = 0;
  const double best = time_best_ms([&] { ++calls; }, 5);
  EXPECT_EQ(calls, 6);  // 1 warm-up + 5 timed
  EXPECT_GE(best, 0.0);
}

}  // namespace
}  // namespace tilespmspv
