// Tests for the format-invariant validation layer: every validator accepts
// the structures the conversions build, and each checked invariant is
// exercised by seeding exactly one violation and asserting it is caught
// (with the expected invariant slug in the report).
#include <gtest/gtest.h>

#include <stdexcept>

#include "formats/coo.hpp"
#include "formats/csr.hpp"
#include "formats/sparse_vector.hpp"
#include "formats/validate.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"
#include "tile/bit_tile_graph.hpp"
#include "tile/packed_tile_matrix.hpp"
#include "tile/tile_matrix.hpp"
#include "tile/tile_vector.hpp"

namespace tilespmspv {
namespace {

// Asserts the result is a rejection and that the named invariant is the one
// reported (slugs are part of the validator's contract — the fuzz harness
// and the CLI surface them to users).
void expect_issue(const ValidationResult& r, const std::string& slug) {
  ASSERT_FALSE(r.ok()) << "expected a violation of " << slug;
  EXPECT_NE(r.message().find(slug), std::string::npos)
      << "expected invariant '" << slug << "', got: " << r.message();
}

Csr<value_t> dense_csr(index_t rows = 40, index_t cols = 40,
                       std::uint64_t seed = 9001) {
  return Csr<value_t>::from_coo(gen_erdos_renyi(rows, cols, 0.2, seed));
}

TEST(ValidateCoo, AcceptsGenerated) {
  EXPECT_TRUE(validate_coo(gen_erdos_renyi(30, 20, 0.1, 1)).ok());
}

TEST(ValidateCoo, CatchesNegativeDims) {
  Coo<value_t> m(4, 4);
  m.rows = -1;
  expect_issue(validate_coo(m), "dims/nonnegative");
}

TEST(ValidateCoo, CatchesRaggedArrays) {
  Coo<value_t> m(4, 4);
  m.push(1, 2, 3.0);
  m.vals.push_back(4.0);
  expect_issue(validate_coo(m), "arrays/parallel");
}

TEST(ValidateCoo, CatchesIndexOutOfRange) {
  Coo<value_t> m(4, 4);
  m.push(1, 2, 3.0);
  m.col_idx[0] = 4;
  expect_issue(validate_coo(m), "col_idx/range");
  m.col_idx[0] = -1;
  expect_issue(validate_coo(m), "col_idx/range");
}

TEST(ValidateCsr, AcceptsGenerated) {
  EXPECT_TRUE(validate_csr(dense_csr()).ok());
}

TEST(ValidateCsr, CatchesRowPtrLength) {
  auto a = dense_csr();
  a.row_ptr.pop_back();
  expect_issue(validate_csr(a), "row_ptr/length");
}

TEST(ValidateCsr, CatchesRowPtrNotMonotone) {
  auto a = dense_csr();
  a.row_ptr[1] = a.row_ptr[2] + 1;
  expect_issue(validate_csr(a), "row_ptr/monotone");
}

TEST(ValidateCsr, CatchesRowPtrOrigin) {
  auto a = dense_csr();
  a.row_ptr[0] = 1;
  expect_issue(validate_csr(a), "row_ptr/origin");
}

TEST(ValidateCsr, CatchesRowPtrTerminalSum) {
  auto a = dense_csr();
  a.row_ptr.back() -= 1;
  expect_issue(validate_csr(a), "row_ptr/total");
}

TEST(ValidateCsr, CatchesColOutOfRange) {
  auto a = dense_csr();
  a.col_idx[0] = a.cols;
  expect_issue(validate_csr(a), "col_idx/range");
}

TEST(ValidateCsr, CatchesUnsortedColumns) {
  auto a = dense_csr();
  // Find a row with at least two entries and duplicate the first column.
  for (index_t r = 0; r < a.rows; ++r) {
    if (a.row_ptr[r + 1] - a.row_ptr[r] >= 2) {
      a.col_idx[a.row_ptr[r] + 1] = a.col_idx[a.row_ptr[r]];
      break;
    }
  }
  expect_issue(validate_csr(a), "col_idx/sorted");
}

TEST(ValidateSparseVec, AcceptsGenerated) {
  EXPECT_TRUE(validate_sparse_vec(gen_sparse_vector(200, 0.05)).ok());
}

TEST(ValidateSparseVec, CatchesUnsortedAndZeroAndRange) {
  SparseVec<value_t> x(10);
  x.push(3, 1.0);
  x.push(7, 2.0);

  auto unsorted = x;
  std::swap(unsorted.idx[0], unsorted.idx[1]);
  expect_issue(validate_sparse_vec(unsorted), "idx/sorted-unique");

  auto zeroed = x;
  zeroed.vals[1] = 0.0;
  expect_issue(validate_sparse_vec(zeroed), "vals/no-stored-zeros");

  auto out = x;
  out.idx[1] = 10;
  expect_issue(validate_sparse_vec(out), "idx/range");
}

TEST(ValidateTileVector, AcceptsConverted) {
  const auto x = gen_sparse_vector(210, 0.05);  // partial last tile
  EXPECT_TRUE(validate_tile_vector(TileVector<value_t>::from_sparse(x, 16)).ok());
}

TEST(ValidateTileVector, CatchesSlotViolations) {
  const auto x = gen_sparse_vector(210, 0.2, 7);
  auto v = TileVector<value_t>::from_sparse(x, 16);
  ASSERT_GE(v.num_nonempty_tiles(), 2);

  auto bad = v;
  bad.x_ptr[0] = v.num_nonempty_tiles();  // past the stored blocks
  expect_issue(validate_tile_vector(bad), "x_ptr/range");

  bad = v;
  // Point two tiles at the same slot: duplicates and leaves one uncovered.
  index_t first = -1;
  for (std::size_t t = 0; t < bad.x_ptr.size(); ++t) {
    if (bad.x_ptr[t] == kEmptyTile) continue;
    if (first < 0) {
      first = bad.x_ptr[t];
    } else {
      bad.x_ptr[t] = first;
      break;
    }
  }
  expect_issue(validate_tile_vector(bad), "x_ptr/unique-slots");

  bad = v;
  bad.x_tile.push_back(1.0);  // payload no longer a multiple of nt
  expect_issue(validate_tile_vector(bad), "x_tile/length");

  bad = v;
  bad.nnz += 1;
  expect_issue(validate_tile_vector(bad), "nnz/agreement");
}

TEST(ValidateTileVector, CatchesNonzeroPadding) {
  SparseVec<value_t> x(20);  // 20 % 16 != 0: last tile is partial
  x.push(1, 1.0);
  x.push(18, 2.0);
  auto v = TileVector<value_t>::from_sparse(x, 16);
  ASSERT_NE(v.x_ptr.back(), kEmptyTile);
  v.x_tile[static_cast<std::size_t>(v.x_ptr.back()) * 16 + 7] = 9.0;  // >= 20
  expect_issue(validate_tile_vector(v), "x_tile/padding");
}

TileMatrix<value_t> tiled(index_t extract = 3) {
  // A dense core (cols 0..31) plus isolated entries in the last tile
  // column, so even a threshold of 1 extracts a non-empty side part.
  Coo<value_t> coo = gen_erdos_renyi(50, 32, 0.2, 9001);
  coo.cols = 44;
  coo.push(3, 40, 1.5);
  coo.push(20, 42, -2.0);
  coo.push(35, 41, 0.5);
  coo.push(49, 43, 4.0);
  auto m = TileMatrix<value_t>::from_csr(Csr<value_t>::from_coo(coo), 16,
                                         extract);
  EXPECT_GT(m.num_tiles(), 0);
  return m;
}

TEST(ValidateTileMatrix, AcceptsConverted) {
  EXPECT_TRUE(validate_tile_matrix(tiled()).ok());
  EXPECT_TRUE(validate_tile_matrix(tiled(0)).ok());
}

TEST(ValidateTileMatrix, CatchesGridViolations) {
  auto m = tiled();
  auto bad = m;
  bad.tile_cols += 1;
  expect_issue(validate_tile_matrix(bad), "grid/dims");

  bad = m;
  bad.tile_col_id[0] = bad.tile_cols;
  expect_issue(validate_tile_matrix(bad), "tile_col_id/range");

  bad = m;
  bad.tile_row_ptr[1] = bad.tile_row_ptr.back() + 5;
  EXPECT_FALSE(validate_tile_matrix(bad).ok());

  bad = m;
  bad.tile_nnz_ptr.back() += 1;
  expect_issue(validate_tile_matrix(bad), "tile_nnz_ptr/total");
}

TEST(ValidateTileMatrix, CatchesIntraTileViolations) {
  auto m = tiled();
  auto bad = m;
  // Tile 0's local total (p[nt]) no longer matches its tile_nnz_ptr range.
  bad.intra_row_ptr[bad.nt] =
      static_cast<std::uint16_t>(bad.intra_row_ptr[bad.nt] + 1);
  expect_issue(validate_tile_matrix(bad), "intra_row_ptr/total");

  bad = m;
  bad.local_col[0] = static_cast<std::uint8_t>(200);  // >= any col_limit
  expect_issue(validate_tile_matrix(bad), "local_col/range");

  // Unsorted local columns: find a tile row with >= 2 entries.
  bad = m;
  bool seeded = false;
  for (index_t t = 0; t < bad.num_tiles() && !seeded; ++t) {
    const std::uint16_t* p = &bad.intra_row_ptr[t * (bad.nt + 1)];
    for (index_t lr = 0; lr < bad.nt; ++lr) {
      if (p[lr + 1] - p[lr] >= 2) {
        const offset_t i = bad.tile_nnz_ptr[t] + p[lr];
        bad.local_col[i + 1] = bad.local_col[i];
        seeded = true;
        break;
      }
    }
  }
  ASSERT_TRUE(seeded);
  expect_issue(validate_tile_matrix(bad), "local_col/sorted");
}

TEST(ValidateTileMatrix, CatchesExtractedViolations) {
  auto m = tiled();
  ASSERT_GT(m.extracted.nnz(), 1) << "fixture must exercise extraction";

  auto bad = m;
  bad.extracted.rows += 1;
  expect_issue(validate_tile_matrix(bad), "extracted/dims");

  bad = m;
  ASSERT_GT(bad.extracted.row_idx.back(), 0) << "fixture needs spread rows";
  bad.extracted.row_idx.back() = 0;  // breaks row-major order at the tail
  expect_issue(validate_tile_matrix(bad), "extracted/row-major");

  bad = m;
  bad.extracted.col_idx[0] = bad.cols;
  expect_issue(validate_tile_matrix(bad), "extracted.col_idx/range");
}

TEST(ValidateTileMatrix, CatchesDerivedIndexDisagreement) {
  auto m = tiled();
  ASSERT_GT(m.extracted.nnz(), 0);

  auto bad = m;
  bad.side_vals[0] += 1.0;
  expect_issue(validate_tile_matrix(bad), "side/agreement");

  bad = m;
  bad.side_col_ptr[bad.cols / 2] += 1;
  EXPECT_FALSE(validate_tile_matrix(bad).ok());

  bad = m;
  bad.side_row_ptr[bad.rows / 2] += 1;
  EXPECT_FALSE(validate_tile_matrix(bad).ok());
}

TEST(ValidateTileMatrix, CatchesRunListAndStrategyViolations) {
  auto m = tiled();
  ASSERT_GT(m.row_runs.size(), 3u);

  auto bad = m;
  bad.row_runs[1] = static_cast<std::uint8_t>(bad.row_runs[1] + 1);  // count
  expect_issue(validate_tile_matrix(bad), "row_runs/agreement");

  bad = m;
  bad.tile_strategy[0] = 7;
  expect_issue(validate_tile_matrix(bad), "tile_strategy/range");

  bad = m;
  bad.run_ptr.back() += 1;
  EXPECT_FALSE(validate_tile_matrix(bad).ok());
}

TEST(ValidateTileMatrix, CatchesChunkCoverageViolations) {
  auto m = tiled();
  ASSERT_GE(m.row_chunk_ptr.size(), 2u);

  auto bad = m;
  bad.row_chunk_ptr.back() = bad.tile_rows + 1;
  expect_issue(validate_tile_matrix(bad), "row_chunk_ptr/coverage");

  bad = m;
  bad.row_chunk_ptr[0] = 1;
  expect_issue(validate_tile_matrix(bad), "row_chunk_ptr/origin");
}

TEST(ValidatePackedTileMatrix, AcceptsConverted) {
  EXPECT_TRUE(
      validate_packed_tile_matrix(PackedTileMatrix<value_t>::from_csr(dense_csr()))
          .ok());
}

TEST(ValidatePackedTileMatrix, CatchesNibbleOutOfEdgeTile) {
  // 20x20: the last tile row/column only covers 4 local rows/columns, so a
  // nibble of 15 points past the matrix edge.
  auto a = Csr<value_t>::from_coo(gen_erdos_renyi(20, 20, 0.4, 77));
  auto m = PackedTileMatrix<value_t>::from_csr(a);
  const index_t last_tr = m.tile_rows - 1;
  ASSERT_LT(m.tile_row_ptr[last_tr], m.tile_row_ptr[last_tr + 1])
      << "fixture must populate the last tile row";
  const offset_t t = m.tile_row_ptr[last_tr];
  m.packed[m.tile_nnz_ptr[t]] = PackedTileMatrix<value_t>::pack(15, 0);
  expect_issue(validate_packed_tile_matrix(m), "packed/range");
}

TEST(ValidatePackedTileMatrix, CatchesGridAndPtrViolations) {
  auto m = PackedTileMatrix<value_t>::from_csr(dense_csr());
  auto bad = m;
  bad.tile_nnz_ptr.back() += 1;
  expect_issue(validate_packed_tile_matrix(bad), "tile_nnz_ptr/total");

  bad = m;
  bad.packed.pop_back();
  expect_issue(validate_packed_tile_matrix(bad), "payload/parallel");
}

BitTileGraph<16> shared_graph(index_t extract = 0) {
  auto coo = gen_erdos_renyi(40, 40, 0.15, 501);
  coo.symmetrize();
  auto g = BitTileGraph<16>::from_csr(Csr<value_t>::from_coo(coo), extract,
                                      true);
  EXPECT_TRUE(g.shared_masks);
  return g;
}

BitTileGraph<16> directed_graph() {
  auto g = BitTileGraph<16>::from_csr(
      Csr<value_t>::from_coo(gen_erdos_renyi(40, 40, 0.15, 502)), 2, true);
  EXPECT_FALSE(g.shared_masks);
  return g;
}

TEST(ValidateBitTileGraph, AcceptsBothModes) {
  EXPECT_TRUE(validate_bit_tile_graph(shared_graph()).ok());
  EXPECT_TRUE(validate_bit_tile_graph(directed_graph()).ok());
}

TEST(ValidateBitTileGraph, CatchesMaskPastColumnLimit) {
  // n = 20, NT = 16: the last tile column covers only 4 local columns, so
  // the low 12 bits of its mask words are out of range.
  auto coo = gen_erdos_renyi(20, 20, 0.4, 503);
  coo.symmetrize();
  auto g = BitTileGraph<16>::from_csr(Csr<value_t>::from_coo(coo), 0, false);
  offset_t edge_tile = -1;
  for (index_t tr = 0; tr < g.tile_n && edge_tile < 0; ++tr) {
    for (offset_t t = g.csr_tile_ptr[tr]; t < g.csr_tile_ptr[tr + 1]; ++t) {
      if (g.csr_tile_col[t] == g.tile_n - 1) {
        edge_tile = t;
        break;
      }
    }
  }
  ASSERT_GE(edge_tile, 0) << "fixture must populate the last tile column";
  g.csr_masks[static_cast<std::size_t>(edge_tile) * 16] |= 1;  // bit 15 >= 4
  expect_issue(validate_bit_tile_graph(g), "csr_masks/col-width");
}

TEST(ValidateBitTileGraph, CatchesMaskPastRowLimit) {
  auto coo = gen_erdos_renyi(20, 20, 0.4, 504);
  coo.symmetrize();
  auto g = BitTileGraph<16>::from_csr(Csr<value_t>::from_coo(coo), 0, false);
  const index_t last_tr = g.tile_n - 1;
  ASSERT_LT(g.csr_tile_ptr[last_tr], g.csr_tile_ptr[last_tr + 1]);
  const offset_t t = g.csr_tile_ptr[last_tr];
  // Local row 15 is past the edge (only 4 rows remain); also fix the
  // summary so the row-clip check is the one that fires.
  g.csr_masks[static_cast<std::size_t>(t) * 16 + 15] = msb_bit<std::uint16_t>(0);
  g.csr_row_summary[t] |= msb_bit<std::uint16_t>(15);
  expect_issue(validate_bit_tile_graph(g), "csr_masks/row-clip");
}

TEST(ValidateBitTileGraph, CatchesSummaryDisagreement) {
  auto g = directed_graph();
  g.csr_row_summary[0] = static_cast<std::uint16_t>(~g.csr_row_summary[0]);
  expect_issue(validate_bit_tile_graph(g), "csr_row_summary/agreement");

  auto g2 = directed_graph();
  g2.csc_col_summary[0] = static_cast<std::uint16_t>(~g2.csc_col_summary[0]);
  expect_issue(validate_bit_tile_graph(g2), "csc_col_summary/agreement");
}

TEST(ValidateBitTileGraph, CatchesMirrorCorruption) {
  auto g = shared_graph();
  ASSERT_GE(g.num_tiles(), 2);
  g.csc_mirror[0] = g.csc_mirror[0] == 0 ? 1 : 0;
  expect_issue(validate_bit_tile_graph(g), "csc_mirror/agreement");
}

TEST(ValidateBitTileGraph, CatchesBrokenMaskTranspose) {
  auto g = directed_graph();
  ASSERT_FALSE(g.csc_masks.empty());
  g.csc_masks[0] = static_cast<std::uint16_t>(g.csc_masks[0] ^ 1);
  expect_issue(validate_bit_tile_graph(g), "csc_masks/transpose-agreement");
}

TEST(ValidateBitTileGraph, CatchesEdgeCountAndSideViolations) {
  auto g = shared_graph();
  auto bad = g;
  bad.edges += 1;
  expect_issue(validate_bit_tile_graph(bad), "edges/total");

  // Side-list checks need extracted edges: a huge threshold extracts all.
  auto gs = shared_graph(100000);
  ASSERT_FALSE(gs.side_dst.empty()) << "fixture must extract some edges";
  ASSERT_TRUE(validate_bit_tile_graph(gs).ok());
  auto bads = gs;
  bads.side_dst[0] = bads.n;
  expect_issue(validate_bit_tile_graph(bads), "side_dst/range");

  bads = gs;
  bads.side_ptr[bads.n / 2] = bads.side_ptr.back() + 1;
  EXPECT_FALSE(validate_bit_tile_graph(bads).ok());
}

TEST(RequireValid, ThrowsRuntimeErrorWithInvariant) {
  Coo<value_t> m(4, 4);
  m.push(1, 2, 3.0);
  m.col_idx[0] = 9;
  EXPECT_NO_THROW(
      require_valid(validate_coo(gen_erdos_renyi(5, 5, 0.5, 1)), "test"));
  try {
    require_valid(validate_coo(m), "test");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("col_idx/range"), std::string::npos)
        << e.what();
  }
}

TEST(ValidationResult, CapsIssueCollection) {
  ValidationResult r;
  for (int i = 0; i < 40; ++i) {
    r.add("inv/" + std::to_string(i), "detail");
  }
  EXPECT_EQ(r.issues.size(), ValidationResult::kMaxIssues);
  EXPECT_TRUE(r.truncated);
  EXPECT_NE(r.message().find("suppressed"), std::string::npos);
}

}  // namespace
}  // namespace tilespmspv
