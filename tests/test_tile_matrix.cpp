// Tests for the numeric tiled matrix (paper §3.2.1): tiling round trips,
// very-sparse tile extraction invariants, and tile-count accounting.
#include <gtest/gtest.h>

#include "formats/csr.hpp"
#include "gen/banded.hpp"
#include "gen/erdos_renyi.hpp"
#include "util/prng.hpp"
#include "tile/tile_matrix.hpp"

namespace tilespmspv {
namespace {

void expect_same_coo(const Coo<value_t>& a, const Coo<value_t>& b) {
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.row_idx, b.row_idx);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.vals, b.vals);
}

class TileMatrixRoundTrip
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, double,
                                                 index_t, index_t>> {};

TEST_P(TileMatrixRoundTrip, TilingPreservesEveryNonzero) {
  const auto [rows, cols, density, nt, extract] = GetParam();
  Coo<value_t> coo = gen_erdos_renyi(rows, cols, density, 23);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, nt, extract);
  coo.sort_row_major();
  expect_same_coo(tiled.to_coo(), coo);
  EXPECT_EQ(tiled.total_nnz(), a.nnz());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TileMatrixRoundTrip,
    ::testing::Combine(::testing::Values<index_t>(1, 16, 100, 511),
                       ::testing::Values<index_t>(1, 17, 257),
                       ::testing::Values(0.005, 0.08),
                       ::testing::Values<index_t>(16, 32),
                       ::testing::Values<index_t>(0, 2)));

TEST(TileMatrix, EmptyMatrix) {
  Csr<value_t> a(10, 10);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16);
  EXPECT_EQ(t.num_tiles(), 0);
  EXPECT_EQ(t.total_nnz(), 0);
  EXPECT_EQ(t.tile_rows, 1);
}

TEST(TileMatrix, SingleEntry) {
  Coo<value_t> coo(100, 100);
  coo.push(55, 72, 3.5);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16);
  EXPECT_EQ(t.num_tiles(), 1);
  EXPECT_EQ(t.tile_col_id[0], 72 / 16);
  ASSERT_EQ(t.tiled_nnz(), 1);
  EXPECT_EQ(t.local_col[0], 72 % 16);
  EXPECT_DOUBLE_EQ(t.vals[0], 3.5);
}

TEST(TileMatrix, ExtractionMovesSparseTilesOnly) {
  // Dense diagonal blocks plus isolated scattered entries: with threshold
  // 2, exactly the isolated entries must land in the COO side matrix.
  Coo<value_t> coo(64, 64);
  // Dense 16x16 block at (0,0) -> kept.
  for (index_t r = 0; r < 16; ++r) {
    for (index_t c = 0; c < 16; ++c) coo.push(r, c, 1.0);
  }
  // Two isolated entries in distinct tiles -> extracted.
  coo.push(40, 40, 2.0);
  coo.push(60, 10, 3.0);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16, 2);
  EXPECT_EQ(t.num_tiles(), 1);
  EXPECT_EQ(t.tiled_nnz(), 256);
  EXPECT_EQ(t.extracted.nnz(), 2);
  EXPECT_EQ(t.total_nnz(), 258);
}

TEST(TileMatrix, ExtractionDisabledKeepsEverything) {
  Coo<value_t> coo = gen_erdos_renyi(200, 200, 0.002, 31);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16, 0);
  EXPECT_EQ(t.extracted.nnz(), 0);
  EXPECT_EQ(t.tiled_nnz(), a.nnz());
}

TEST(TileMatrix, ExtractionPartitionsNonzeros) {
  // Property: tiled part and extracted part are disjoint and their union
  // is the original matrix, for several thresholds.
  Coo<value_t> coo = gen_erdos_renyi(300, 300, 0.004, 37);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  coo.sort_row_major();
  for (index_t threshold : {0, 1, 2, 4, 100}) {
    TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16, threshold);
    EXPECT_EQ(t.tiled_nnz() + t.extracted.nnz(), a.nnz());
    expect_same_coo(t.to_coo(), coo);
    // Every kept tile really has more nonzeros than the threshold.
    for (index_t k = 0; k < t.num_tiles(); ++k) {
      EXPECT_GT(t.tile_nnz_ptr[k + 1] - t.tile_nnz_ptr[k], threshold);
    }
  }
}

TEST(TileMatrix, HugeThresholdExtractsEverything) {
  Coo<value_t> coo = gen_erdos_renyi(100, 100, 0.05, 41);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16, 1 << 20);
  EXPECT_EQ(t.num_tiles(), 0);
  EXPECT_EQ(t.extracted.nnz(), a.nnz());
}

TEST(TileMatrix, TileCountsShrinkWithTileSize) {
  // Table 2's pattern: larger tiles -> fewer non-empty tiles (for banded
  // matrices roughly inversely proportional).
  BandedParams p;
  p.n = 4000;
  p.block = 6;
  p.band_blocks = 4;
  Csr<value_t> a = Csr<value_t>::from_coo(gen_banded(p, 5));
  const index_t t16 = TileMatrix<value_t>::from_csr(a, 16).num_tiles();
  const index_t t32 = TileMatrix<value_t>::from_csr(a, 32).num_tiles();
  const index_t t64 = TileMatrix<value_t>::from_csr(a, 64).num_tiles();
  EXPECT_GT(t16, t32);
  EXPECT_GT(t32, t64);
  EXPECT_GT(t64, 0);
}

TEST(TileMatrix, IntraTileCsrIsConsistent) {
  Coo<value_t> coo = gen_erdos_renyi(128, 128, 0.05, 43);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16);
  for (index_t k = 0; k < t.num_tiles(); ++k) {
    const std::uint16_t* p = &t.intra_row_ptr[k * (t.nt + 1)];
    EXPECT_EQ(p[0], 0);
    for (index_t lr = 0; lr < t.nt; ++lr) {
      EXPECT_LE(p[lr], p[lr + 1]);
    }
    EXPECT_EQ(p[t.nt], t.tile_nnz_ptr[k + 1] - t.tile_nnz_ptr[k]);
    // Local columns are within the tile and sorted within each local row.
    for (index_t lr = 0; lr < t.nt; ++lr) {
      for (offset_t i = t.tile_nnz_ptr[k] + p[lr];
           i + 1 < t.tile_nnz_ptr[k] + p[lr + 1]; ++i) {
        EXPECT_LT(t.local_col[i], t.local_col[i + 1]);
      }
    }
  }
}

TEST(TileMatrix, ValueAtReadsEveryEntry) {
  Coo<value_t> coo = gen_erdos_renyi(150, 150, 0.02, 51);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16, 2);
  for (index_t r = 0; r < a.rows; ++r) {
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      EXPECT_EQ(t.value_at(r, a.col_idx[i]), a.vals[i]);
    }
  }
  // A handful of structural zeros read as zero.
  Prng rng(52);
  for (int k = 0; k < 50; ++k) {
    const auto r = static_cast<index_t>(rng.next_below(150));
    const auto c = static_cast<index_t>(rng.next_below(150));
    bool stored = false;
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      if (a.col_idx[i] == c) stored = true;
    }
    if (!stored) {
      EXPECT_EQ(t.value_at(r, c), 0.0);
    }
  }
}

TEST(TileMatrix, UpdateValueInTiledAndExtractedParts) {
  Coo<value_t> coo = gen_erdos_renyi(200, 200, 0.01, 53);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16, 2);
  ASSERT_GT(t.tiled_nnz(), 0);
  ASSERT_GT(t.extracted.nnz(), 0);
  // Update every stored entry to a new deterministic value and verify
  // through both value_at and a multiply against the updated CSR.
  Csr<value_t> updated = a;
  for (index_t r = 0; r < a.rows; ++r) {
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      const value_t v = static_cast<value_t>(r + a.col_idx[i] + 1);
      ASSERT_TRUE(t.update_value(r, a.col_idx[i], v));
      updated.vals[i] = v;
    }
  }
  for (index_t r = 0; r < a.rows; ++r) {
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      EXPECT_EQ(t.value_at(r, a.col_idx[i]), updated.vals[i]);
    }
  }
  Coo<value_t> round = t.to_coo();
  Coo<value_t> expect = updated.to_coo();
  EXPECT_EQ(round.vals, expect.vals);
}

TEST(TileMatrix, UpdateValueRejectsStructuralZeros) {
  Coo<value_t> coo(40, 40);
  coo.push(3, 5, 1.0);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16, 0);
  EXPECT_FALSE(t.update_value(3, 6, 9.0));
  EXPECT_FALSE(t.update_value(20, 20, 9.0));
  EXPECT_TRUE(t.update_value(3, 5, 9.0));
  EXPECT_EQ(t.value_at(3, 5), 9.0);
}

TEST(TileMatrix, OccupancyBounds) {
  Coo<value_t> coo = gen_erdos_renyi(100, 100, 0.01, 47);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16);
  EXPECT_GE(t.tile_occupancy(), 0.0);
  EXPECT_LE(t.tile_occupancy(), 1.0);
}

}  // namespace
}  // namespace tilespmspv
