// BFS correctness: TileBFS (every kernel combination of the Fig. 9
// ablation) and all three baseline BFS implementations must produce level
// arrays identical to the serial reference, across graph classes, sources
// and pool sizes. Directed graphs exercise the CSR/CSC duality.
#include <gtest/gtest.h>

#include "baselines/dobfs.hpp"
#include "baselines/enterprise_bfs.hpp"
#include "baselines/gswitch_bfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "bfs/tile_bfs.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"

namespace tilespmspv {
namespace {

Csr<value_t> undirected_graph(index_t n, double density, std::uint64_t seed) {
  Coo<value_t> coo = gen_erdos_renyi(n, n, density, seed);
  coo.symmetrize();
  return Csr<value_t>::from_coo(coo);
}

TEST(SerialBfs, PaperFigure2Example) {
  // Undirected 6-vertex graph; from vertex 0 the first layer is {1,2,3}
  // in the paper's renumbering -- here rebuilt as in Fig. 2: edges
  // 0-{1,2,3}, 1-{4}, 2-{4}, 3-{5}.
  Coo<value_t> coo(6, 6);
  for (auto [u, v] : std::vector<std::pair<index_t, index_t>>{
           {0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 4}, {3, 5}}) {
    coo.push(u, v, 1.0);
    coo.push(v, u, 1.0);
  }
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  const auto levels = serial_bfs(a, 0);
  EXPECT_EQ(levels, (std::vector<index_t>{0, 1, 1, 1, 2, 2}));
}

struct BfsCase {
  const char* name;
  Csr<value_t> graph;
  index_t source;
};

std::vector<BfsCase> bfs_cases() {
  std::vector<BfsCase> cases;
  cases.push_back({"er-dense", undirected_graph(400, 0.02, 301), 0});
  cases.push_back({"er-sparse", undirected_graph(1500, 0.002, 302), 7});
  cases.push_back(
      {"er-disconnected", undirected_graph(800, 0.0008, 303), 11});
  {
    RmatParams p;
    p.scale = 10;
    p.edge_factor = 8;
    cases.push_back({"rmat", Csr<value_t>::from_coo(gen_rmat(p, 304)), 0});
  }
  cases.push_back(
      {"grid", Csr<value_t>::from_coo(gen_grid2d(40, 40, 1.0, 305)), 820});
  cases.push_back(
      {"grid-thinned", Csr<value_t>::from_coo(gen_grid2d(50, 30, 0.8, 306)),
       3});
  // Larger than the order threshold so NT=64 is exercised.
  cases.push_back({"er-large", undirected_graph(12000, 0.0006, 307), 5});
  {
    // Path graph: maximal level count, single-vertex frontiers throughout.
    Coo<value_t> coo(500, 500);
    for (index_t i = 0; i + 1 < 500; ++i) {
      coo.push(i, i + 1, 1.0);
      coo.push(i + 1, i, 1.0);
    }
    cases.push_back({"path", Csr<value_t>::from_coo(coo), 0});
  }
  {
    // Star graph: one two-level hop covering everything.
    Coo<value_t> coo(300, 300);
    for (index_t i = 1; i < 300; ++i) {
      coo.push(0, i, 1.0);
      coo.push(i, 0, 1.0);
    }
    cases.push_back({"star", Csr<value_t>::from_coo(coo), 0});
  }
  {
    // Isolated source: BFS must terminate immediately.
    Coo<value_t> coo(100, 100);
    coo.push(1, 2, 1.0);
    coo.push(2, 1, 1.0);
    cases.push_back({"isolated-source", Csr<value_t>::from_coo(coo), 0});
  }
  return cases;
}

class BfsGraphs : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const std::vector<BfsCase>& cases() {
    static const std::vector<BfsCase> c = bfs_cases();
    return c;
  }
};

TEST_P(BfsGraphs, TileBfsMatchesSerialAllKernelMasks) {
  const BfsCase& c = cases()[GetParam()];
  const auto expect = serial_bfs(c.graph, c.source);
  for (unsigned mask : {1u, 2u, 4u, 3u, 5u, 6u, 7u}) {
    TileBfsConfig cfg;
    cfg.kernel_mask = mask;
    TileBfs bfs(c.graph, cfg);
    const BfsResult r = bfs.run(c.source);
    EXPECT_EQ(r.levels, expect) << c.name << " mask=" << mask;
  }
}

TEST_P(BfsGraphs, TileBfsWithExtractionMatchesSerial) {
  const BfsCase& c = cases()[GetParam()];
  const auto expect = serial_bfs(c.graph, c.source);
  for (index_t extract : {0, 2, 8}) {
    TileBfsConfig cfg;
    cfg.extract_threshold = extract;
    TileBfs bfs(c.graph, cfg);
    EXPECT_EQ(bfs.run(c.source).levels, expect)
        << c.name << " extract=" << extract;
  }
}

TEST_P(BfsGraphs, DobfsMatchesSerial) {
  const BfsCase& c = cases()[GetParam()];
  const auto expect = serial_bfs(c.graph, c.source);
  ThreadPool pool(4);
  EXPECT_EQ(dobfs(c.graph, c.graph, c.source, {}, &pool), expect) << c.name;
}

TEST_P(BfsGraphs, GswitchMatchesSerial) {
  const BfsCase& c = cases()[GetParam()];
  const auto expect = serial_bfs(c.graph, c.source);
  ThreadPool pool(4);
  GswitchTuner tuner;
  // Run twice: the second run uses the trained tuner table.
  EXPECT_EQ(gswitch_bfs(c.graph, c.graph, c.source, tuner, &pool), expect);
  EXPECT_EQ(gswitch_bfs(c.graph, c.graph, c.source, tuner, &pool), expect)
      << c.name;
}

TEST_P(BfsGraphs, EnterpriseMatchesSerial) {
  const BfsCase& c = cases()[GetParam()];
  const auto expect = serial_bfs(c.graph, c.source);
  ThreadPool pool(4);
  EXPECT_EQ(enterprise_bfs(c.graph, c.graph, c.source, {}, &pool), expect)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(Graphs, BfsGraphs,
                         ::testing::Range<std::size_t>(0, bfs_cases().size()));

TEST(TileBfs, DirectedGraphIsCorrect) {
  // Directed chain with a shortcut; TileBfs expands along out-edges, i.e.
  // the adjacency convention A[dst][src]. Build A accordingly and compare
  // against serial BFS over the out-edge CSR (= A transposed).
  Coo<value_t> adj(200, 200);  // A[i][j] = edge j -> i
  Prng rng(401);
  for (index_t e = 0; e < 600; ++e) {
    const index_t u = static_cast<index_t>(rng.next_below(200));
    const index_t v = static_cast<index_t>(rng.next_below(200));
    if (u != v) adj.push(v, u, 1.0);
  }
  adj.sort_row_major();
  adj.sum_duplicates();
  Csr<value_t> a = Csr<value_t>::from_coo(adj);
  Csr<value_t> out_edges = a.transpose();
  const auto expect = serial_bfs(out_edges, 0);
  TileBfs bfs(a);
  EXPECT_EQ(bfs.run(0).levels, expect);
  // Baselines take (out_edges, in_edges) explicitly.
  ThreadPool pool(2);
  EXPECT_EQ(dobfs(out_edges, a, 0, {}, &pool), expect);
  EXPECT_EQ(enterprise_bfs(out_edges, a, 0, {}, &pool), expect);
}

TEST(TileBfs, TileSizeFollowsOrderRule) {
  Csr<value_t> small = undirected_graph(500, 0.01, 402);
  Csr<value_t> large = undirected_graph(10001, 0.0008, 403);
  EXPECT_EQ(TileBfs(small).tile_size(), 32);
  EXPECT_EQ(TileBfs(large).tile_size(), 64);
}

TEST(TileBfs, IterationLogIsConsistent) {
  Csr<value_t> g = undirected_graph(2000, 0.003, 404);
  TileBfs bfs(g);
  const BfsResult r = bfs.run(0);
  // Levels in the log are 1,2,3,... and frontier sizes must match the
  // number of vertices assigned to the previous level.
  index_t prev_count = 1;  // source at level 0
  for (std::size_t i = 0; i < r.iterations.size(); ++i) {
    EXPECT_EQ(r.iterations[i].level, static_cast<int>(i + 1));
    EXPECT_EQ(r.iterations[i].frontier_size, prev_count);
    prev_count = 0;
    for (index_t l : r.levels) {
      if (l == static_cast<index_t>(i + 1)) ++prev_count;
    }
  }
  EXPECT_GT(r.total_ms, 0.0);
}

TEST(TileBfs, SelectorUsesAllThreeKernelsOnSuitableGraph) {
  // A sparse expander passes through all three regimes: Push-CSC on the
  // first levels (tiny frontier), Push-CSR mid-traversal (frontier dense
  // AND scattered over most tile words), and Pull-CSC on the final level
  // (unvisited set smaller than the frontier).
  Csr<value_t> g = undirected_graph(4000, 0.0012, 405);
  TileBfs bfs(g);
  const BfsResult r = bfs.run(0);
  bool used[3] = {false, false, false};
  for (const auto& it : r.iterations) {
    used[static_cast<int>(it.kernel)] = true;
  }
  EXPECT_TRUE(used[0]) << "Push-CSC never selected";
  EXPECT_TRUE(used[1]) << "Push-CSR never selected";
  EXPECT_TRUE(used[2]) << "Pull-CSC never selected";
}

TEST(TileBfs, RepeatedRunsFromDifferentSources) {
  Csr<value_t> g = undirected_graph(1000, 0.004, 406);
  TileBfs bfs(g);
  for (index_t src : {0, 1, 999, 500}) {
    EXPECT_EQ(bfs.run(src).levels, serial_bfs(g, src)) << "src=" << src;
  }
}

TEST(TileBfs, RejectsNonSquare) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(10, 20, 0.1, 407));
  EXPECT_THROW(TileBfs{a}, std::invalid_argument);
}

TEST(TileBfs, RejectsEmptyKernelMask) {
  Csr<value_t> g = undirected_graph(100, 0.05, 408);
  TileBfsConfig cfg;
  cfg.kernel_mask = 0;
  EXPECT_THROW(TileBfs(g, cfg), std::invalid_argument);
}

TEST(TileBfs, VisitedCountMatchesReachableSet) {
  Csr<value_t> g = undirected_graph(600, 0.001, 409);  // likely disconnected
  TileBfs bfs(g);
  const BfsResult r = bfs.run(0);
  const auto expect = serial_bfs(g, 0);
  index_t reachable = 0;
  for (index_t l : expect) {
    if (l >= 0) ++reachable;
  }
  EXPECT_EQ(r.visited_count(), reachable);
}

TEST(TileBfs, IterationLogCarriesSelectorInputs) {
  Csr<value_t> g = undirected_graph(2000, 0.003, 411);
  TileBfs bfs(g);
  const BfsResult r = bfs.run(0);
  ASSERT_FALSE(r.iterations.empty());
  const double n = static_cast<double>(g.rows);
  for (const auto& it : r.iterations) {
    // The recorded densities are exactly the selector's inputs, derived
    // from the recorded absolute sizes.
    EXPECT_DOUBLE_EQ(it.frontier_density,
                     static_cast<double>(it.frontier_size) / n);
    EXPECT_DOUBLE_EQ(it.unvisited_frac,
                     static_cast<double>(it.unvisited) / n);
    EXPECT_GE(it.frontier_density, 0.0);
    EXPECT_LE(it.frontier_density, 1.0);
    EXPECT_LE(it.unvisited_frac, 1.0);
  }
}

TEST(TileBfs, RecordIterationsOffSkipsTheLogOnly) {
  Csr<value_t> g = undirected_graph(1500, 0.004, 412);
  TileBfsConfig cfg;
  cfg.record_iterations = false;
  TileBfs bfs(g, cfg);
  const BfsResult r = bfs.run(0);
  EXPECT_TRUE(r.iterations.empty());
  EXPECT_EQ(r.levels, serial_bfs(g, 0));
  EXPECT_GT(r.total_ms, 0.0);
}

TEST(TileBfs, PoolSizesGiveIdenticalLevels) {
  Csr<value_t> g = undirected_graph(3000, 0.002, 410);
  const auto expect = serial_bfs(g, 2);
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    TileBfs bfs(g, {}, &pool);
    EXPECT_EQ(bfs.run(2).levels, expect) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace tilespmspv
