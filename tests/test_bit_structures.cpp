// Tests for the bitmask structures behind TileBFS (paper §3.2.3, Fig. 5):
// bit vectors, the dual CSR/CSC bit tile forms, and their equivalence to
// the explicit sparsity pattern.
#include <gtest/gtest.h>

#include "formats/csr.hpp"
#include "gen/erdos_renyi.hpp"
#include "tile/bit_tile_graph.hpp"
#include "tile/bit_vector.hpp"

namespace tilespmspv {
namespace {

TEST(BitVector, SetTestCount) {
  BitVector<32> v(100);
  v.set(0);
  v.set(31);
  v.set(32);
  v.set(99);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(99));
  EXPECT_FALSE(v.test(50));
  EXPECT_EQ(v.count(), 4);
  EXPECT_TRUE(v.any());
}

TEST(BitVector, ClearResets) {
  BitVector<64> v(128);
  v.set(5);
  v.clear();
  EXPECT_FALSE(v.any());
  EXPECT_EQ(v.count(), 0);
}

TEST(BitVector, ToIndicesAscending) {
  BitVector<32> v(70);
  for (index_t i : {3, 31, 32, 69}) v.set(i);
  EXPECT_EQ(v.to_indices(), (std::vector<index_t>{3, 31, 32, 69}));
}

TEST(BitVector, NonemptySlots) {
  BitVector<32> v(128);
  v.set(0);
  v.set(96);
  EXPECT_EQ(v.nonempty_slots(), (std::vector<index_t>{0, 3}));
}

TEST(BitVector, ValidMaskCoversOnlyLogicalRange) {
  BitVector<32> v(40);  // last word covers positions 32..39 only
  const auto full = v.valid_mask(0);
  const auto partial = v.valid_mask(1);
  EXPECT_EQ(popcount(full), 32);
  EXPECT_EQ(popcount(partial), 8);
  // The partial mask must select exactly bits 0..7 (msb-first).
  for (int b = 0; b < 8; ++b) EXPECT_TRUE(test_msb_bit(partial, b));
  for (int b = 8; b < 32; ++b) EXPECT_FALSE(test_msb_bit(partial, b));
}

TEST(BitVector, DensityDefinition) {
  BitVector<32> v(200);
  v.set(1);
  v.set(2);
  EXPECT_DOUBLE_EQ(v.density(), 2.0 / 200.0);
}

template <int NT>
void check_graph_matches_pattern(const Csr<value_t>& a,
                                 const BitTileGraph<NT>& g) {
  // Reconstruct the pattern from the CSR masks + side edges and compare
  // entry-by-entry against the source matrix.
  std::vector<std::vector<bool>> dense(a.rows, std::vector<bool>(a.cols));
  for (index_t tr = 0; tr < g.tile_n; ++tr) {
    for (offset_t t = g.csr_tile_ptr[tr]; t < g.csr_tile_ptr[tr + 1]; ++t) {
      const index_t tc = g.csr_tile_col[t];
      for (index_t lr = 0; lr < NT && tr * NT + lr < a.rows; ++lr) {
        for_each_set_bit(g.csr_masks[static_cast<std::size_t>(t) * NT + lr],
                         [&](int lc) {
                           dense[tr * NT + lr][tc * NT + lc] = true;
                         });
      }
    }
  }
  for (index_t src = 0; src < a.rows; ++src) {
    for (offset_t k = g.side_ptr[src]; k < g.side_ptr[src + 1]; ++k) {
      dense[g.side_dst[k]][src] = true;
    }
  }
  offset_t count = 0;
  for (index_t r = 0; r < a.rows; ++r) {
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      EXPECT_TRUE(dense[r][a.col_idx[i]]) << r << "," << a.col_idx[i];
      ++count;
    }
  }
  offset_t set_bits = g.side_edge_count();
  for (const auto w : g.csr_masks) set_bits += popcount(w);
  EXPECT_EQ(set_bits, count);  // no spurious bits
}

template <int NT>
void check_csc_is_transpose_of_csr(const BitTileGraph<NT>& g) {
  // Every (tile, local row, local col) bit in the CSR form must appear in
  // the CSC form at the transposed in-tile position, and vice versa (bit
  // counts match).
  offset_t csr_bits = 0, csc_bits = 0;
  for (const auto w : g.csr_masks) csr_bits += popcount(w);
  for (index_t t = 0; t < g.num_tiles(); ++t) {
    for (index_t l = 0; l < NT; ++l) csc_bits += popcount(g.csc_mask(t)[l]);
  }
  EXPECT_EQ(csr_bits, csc_bits);
  for (index_t tc = 0; tc < g.tile_n; ++tc) {
    for (offset_t t = g.csc_tile_ptr[tc]; t < g.csc_tile_ptr[tc + 1]; ++t) {
      const index_t tr = g.csc_tile_row[t];
      // Find the same tile in the CSR form.
      offset_t u = -1;
      for (offset_t k = g.csr_tile_ptr[tr]; k < g.csr_tile_ptr[tr + 1]; ++k) {
        if (g.csr_tile_col[k] == tc) u = k;
      }
      ASSERT_GE(u, 0);
      for (index_t lc = 0; lc < NT; ++lc) {
        for_each_set_bit(g.csc_mask(t)[lc], [&](int lr) {
          EXPECT_TRUE(test_msb_bit(
              g.csr_masks[static_cast<std::size_t>(u) * NT + lr], lc));
        });
      }
    }
  }
}

class BitTileGraphSweep
    : public ::testing::TestWithParam<std::tuple<index_t, double, index_t>> {};

TEST_P(BitTileGraphSweep, MatchesPattern32) {
  const auto [n, density, extract] = GetParam();
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(n, n, density, 53));
  const auto g = BitTileGraph<32>::from_csr(a, extract);
  EXPECT_EQ(g.edges, a.nnz());
  check_graph_matches_pattern(a, g);
  check_csc_is_transpose_of_csr(g);
}

TEST_P(BitTileGraphSweep, MatchesPattern64) {
  const auto [n, density, extract] = GetParam();
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(n, n, density, 59));
  const auto g = BitTileGraph<64>::from_csr(a, extract);
  check_graph_matches_pattern(a, g);
  check_csc_is_transpose_of_csr(g);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitTileGraphSweep,
    ::testing::Combine(::testing::Values<index_t>(1, 33, 64, 200, 515),
                       ::testing::Values(0.002, 0.05),
                       ::testing::Values<index_t>(0, 2)));

TEST(BitTileGraph, UndirectedGraphHasSymmetricTileForms) {
  // The paper's observation: for undirected graphs, compressing by row or
  // by column yields the same arrays. Verify on a symmetrized pattern:
  // tile (tr,tc) row masks equal tile (tc,tr) column masks.
  Coo<value_t> coo = gen_erdos_renyi(150, 150, 0.03, 61);
  coo.symmetrize();
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  const auto g = BitTileGraph<32>::from_csr(a, 0);
  for (index_t tr = 0; tr < g.tile_n; ++tr) {
    for (offset_t t = g.csr_tile_ptr[tr]; t < g.csr_tile_ptr[tr + 1]; ++t) {
      const index_t tc = g.csr_tile_col[t];
      // Find tile (tc, tr) in the CSC structure of tile column tr.
      offset_t u = -1;
      for (offset_t k = g.csc_tile_ptr[tr]; k < g.csc_tile_ptr[tr + 1]; ++k) {
        if (g.csc_tile_row[k] == tc) u = k;
      }
      ASSERT_GE(u, 0);  // symmetric pattern => mirrored tile exists
      for (index_t l = 0; l < 32; ++l) {
        EXPECT_EQ(g.csr_masks[static_cast<std::size_t>(t) * 32 + l],
                  g.csc_mask(u)[l]);
      }
    }
  }
}

TEST(BitTileGraph, SymmetricPatternSharesMasks) {
  // Paper §3.2.3: undirected graphs need only one copy of the masks.
  Coo<value_t> coo = gen_erdos_renyi(200, 200, 0.02, 63);
  coo.symmetrize();
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  const auto shared = BitTileGraph<32>::from_csr(a, 0, /*share=*/true);
  const auto unshared = BitTileGraph<32>::from_csr(a, 0, /*share=*/false);
  EXPECT_TRUE(shared.shared_masks);
  EXPECT_FALSE(unshared.shared_masks);
  EXPECT_TRUE(shared.csc_masks.empty());
  // Roughly half the mask bytes (the mirror index adds a little back).
  EXPECT_LT(static_cast<double>(shared.mask_bytes()),
            0.7 * static_cast<double>(unshared.mask_bytes()));
  // Mask content identical through the accessor.
  ASSERT_EQ(shared.num_tiles(), unshared.num_tiles());
  for (index_t t = 0; t < shared.num_tiles(); ++t) {
    for (index_t l = 0; l < 32; ++l) {
      ASSERT_EQ(shared.csc_mask(t)[l], unshared.csc_mask(t)[l]);
    }
    ASSERT_EQ(shared.csc_col_summary[t], unshared.csc_col_summary[t]);
  }
}

TEST(BitTileGraph, AsymmetricPatternDoesNotShare) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(100, 100, 0.03, 64));
  const auto g = BitTileGraph<32>::from_csr(a, 0, /*share=*/true);
  EXPECT_FALSE(g.shared_masks);
  EXPECT_FALSE(g.csc_masks.empty());
}

TEST(BitTileGraph, SymmetryDetection) {
  Coo<value_t> sym(50, 50);
  sym.push(1, 2, 1.0);
  sym.push(2, 1, 5.0);  // different value, same pattern
  sym.push(3, 3, 1.0);
  EXPECT_TRUE(BitTileGraph<32>::is_pattern_symmetric(
      Csr<value_t>::from_coo(sym)));
  Coo<value_t> asym(50, 50);
  asym.push(1, 2, 1.0);
  EXPECT_FALSE(BitTileGraph<32>::is_pattern_symmetric(
      Csr<value_t>::from_coo(asym)));
  EXPECT_FALSE(BitTileGraph<32>::is_pattern_symmetric(
      Csr<value_t>::from_coo(gen_erdos_renyi(10, 20, 0.2, 65))));
}

TEST(BitTileGraph, ExtractionThresholdRespected) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(300, 300, 0.001, 67));
  const auto g = BitTileGraph<32>::from_csr(a, 3);
  // Every kept tile has > 3 bits.
  for (index_t t = 0; t < g.num_tiles(); ++t) {
    int bits = 0;
    for (index_t l = 0; l < 32; ++l) {
      bits += popcount(g.csr_masks[static_cast<std::size_t>(t) * 32 + l]);
    }
    EXPECT_GT(bits, 3);
  }
  offset_t total = g.side_edge_count();
  for (const auto w : g.csr_masks) total += popcount(w);
  EXPECT_EQ(total, a.nnz());
}

}  // namespace
}  // namespace tilespmspv
