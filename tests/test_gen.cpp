// Sanity tests for the workload generators: determinism, structural
// properties (symmetry, degree profiles, banding), and size accounting.
#include <gtest/gtest.h>

#include "gen/banded.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/grid.hpp"
#include "gen/powerlaw.hpp"
#include "gen/rmat.hpp"
#include "gen/vector_gen.hpp"

namespace tilespmspv {
namespace {

template <typename T>
bool is_symmetric_pattern(const Coo<T>& coo) {
  std::set<std::pair<index_t, index_t>> entries;
  for (index_t i = 0; i < coo.nnz(); ++i) {
    entries.insert({coo.row_idx[i], coo.col_idx[i]});
  }
  for (const auto& [r, c] : entries) {
    if (!entries.count({c, r})) return false;
  }
  return true;
}

TEST(ErdosRenyi, DeterministicForSeed) {
  const auto a = gen_erdos_renyi(500, 500, 0.01, 42);
  const auto b = gen_erdos_renyi(500, 500, 0.01, 42);
  EXPECT_EQ(a.row_idx, b.row_idx);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.vals, b.vals);
}

TEST(ErdosRenyi, DensityClose) {
  const auto m = gen_erdos_renyi(1000, 1000, 0.01, 43);
  const double got = static_cast<double>(m.nnz()) / 1e6;
  EXPECT_NEAR(got, 0.01, 0.002);
}

TEST(ErdosRenyi, ZeroProbabilityEmpty) {
  EXPECT_EQ(gen_erdos_renyi(100, 100, 0.0, 44).nnz(), 0);
}

TEST(ErdosRenyi, EntriesInBounds) {
  const auto m = gen_erdos_renyi(50, 77, 0.05, 45);
  for (index_t i = 0; i < m.nnz(); ++i) {
    EXPECT_GE(m.row_idx[i], 0);
    EXPECT_LT(m.row_idx[i], 50);
    EXPECT_GE(m.col_idx[i], 0);
    EXPECT_LT(m.col_idx[i], 77);
  }
}

TEST(UniformNnz, ApproximateCount) {
  const auto m = gen_uniform_nnz(400, 400, 5000, 46);
  // Duplicates are merged, so nnz <= requested but close for sparse fill.
  EXPECT_LE(m.nnz(), 5000);
  EXPECT_GT(m.nnz(), 4800);
}

TEST(Rmat, SymmetricByDefault) {
  RmatParams p;
  p.scale = 9;
  p.edge_factor = 6;
  const auto m = gen_rmat(p, 47);
  EXPECT_EQ(m.rows, 512);
  EXPECT_TRUE(is_symmetric_pattern(m));
}

TEST(Rmat, NoSelfLoops) {
  RmatParams p;
  p.scale = 9;
  const auto m = gen_rmat(p, 48);
  for (index_t i = 0; i < m.nnz(); ++i) {
    EXPECT_NE(m.row_idx[i], m.col_idx[i]);
  }
}

TEST(Rmat, SkewedDegrees) {
  // R-MAT with default parameters must produce hub vertices: max degree
  // well above the average.
  RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  const auto m = gen_rmat(p, 49);
  std::vector<index_t> deg(m.rows, 0);
  for (index_t i = 0; i < m.nnz(); ++i) ++deg[m.row_idx[i]];
  const index_t max_deg = *std::max_element(deg.begin(), deg.end());
  const double avg = static_cast<double>(m.nnz()) / m.rows;
  EXPECT_GT(max_deg, 5 * avg);
}

TEST(Grid2d, FullGridDegreeBounds) {
  const auto m = gen_grid2d(10, 8, 1.0, 50);
  EXPECT_EQ(m.rows, 80);
  EXPECT_TRUE(is_symmetric_pattern(m));
  std::vector<index_t> deg(m.rows, 0);
  for (index_t i = 0; i < m.nnz(); ++i) ++deg[m.row_idx[i]];
  for (index_t d : deg) {
    EXPECT_GE(d, 2);
    EXPECT_LE(d, 4);
  }
  // Interior vertex count check: 2*nx*ny - nx - ny undirected edges.
  EXPECT_EQ(m.nnz(), 2 * (2 * 10 * 8 - 10 - 8));
}

TEST(Grid2d, ThinningReducesEdges) {
  const auto full = gen_grid2d(30, 30, 1.0, 51);
  const auto thin = gen_grid2d(30, 30, 0.5, 51);
  EXPECT_LT(thin.nnz(), full.nnz());
  EXPECT_GT(thin.nnz(), 0);
  EXPECT_TRUE(is_symmetric_pattern(thin));
}

TEST(Grid3d, SevenPointStencil) {
  const auto m = gen_grid3d(5, 5, 5);
  EXPECT_EQ(m.rows, 125);
  EXPECT_TRUE(is_symmetric_pattern(m));
  std::vector<index_t> deg(m.rows, 0);
  for (index_t i = 0; i < m.nnz(); ++i) ++deg[m.row_idx[i]];
  EXPECT_EQ(*std::max_element(deg.begin(), deg.end()), 6);
  EXPECT_EQ(*std::min_element(deg.begin(), deg.end()), 3);  // corners
}

TEST(Banded, EntriesWithinBand) {
  BandedParams p;
  p.n = 200;
  p.block = 4;
  p.band_blocks = 3;
  const auto m = gen_banded(p, 52);
  const index_t max_band = (p.band_blocks + 1) * p.block;
  for (index_t i = 0; i < m.nnz(); ++i) {
    EXPECT_LE(std::abs(m.row_idx[i] - m.col_idx[i]), max_band);
  }
  EXPECT_TRUE(is_symmetric_pattern(m));
}

TEST(Banded, DiagonalAlwaysPresent) {
  BandedParams p;
  p.n = 100;
  p.block = 4;
  p.band_blocks = 2;
  p.block_fill = 0.1;  // even with sparse band, diagonal blocks stay
  const auto m = gen_banded(p, 53);
  std::vector<bool> has_diag(p.n, false);
  for (index_t i = 0; i < m.nnz(); ++i) {
    if (m.row_idx[i] == m.col_idx[i]) has_diag[m.row_idx[i]] = true;
  }
  for (index_t r = 0; r < p.n; ++r) EXPECT_TRUE(has_diag[r]) << r;
}

TEST(Powerlaw, DirectedAndSkewed) {
  PowerlawParams p;
  p.n = 5000;
  p.avg_degree = 8;
  const auto m = gen_powerlaw(p, 54);
  const double avg = static_cast<double>(m.nnz()) / p.n;
  EXPECT_NEAR(avg, 8.0, 3.0);
  // In-degree skew (columns hold sources; rows hold targets).
  std::vector<index_t> out_deg(p.n, 0);
  for (index_t i = 0; i < m.nnz(); ++i) ++out_deg[m.col_idx[i]];
  const index_t max_deg =
      *std::max_element(out_deg.begin(), out_deg.end());
  EXPECT_GT(max_deg, 4 * avg);
}

TEST(Powerlaw, LocalityConcentratesNearDiagonal) {
  PowerlawParams local;
  local.n = 4000;
  local.locality = 0.95;
  local.window = 64;
  PowerlawParams global = local;
  global.locality = 0.0;
  const auto ml = gen_powerlaw(local, 55);
  const auto mg = gen_powerlaw(global, 55);
  auto near_frac = [](const Coo<value_t>& m, index_t w) {
    index_t near = 0;
    for (index_t i = 0; i < m.nnz(); ++i) {
      if (std::abs(m.row_idx[i] - m.col_idx[i]) <= w) ++near;
    }
    return static_cast<double>(near) / m.nnz();
  };
  EXPECT_GT(near_frac(ml, 64), 0.8);
  EXPECT_LT(near_frac(mg, 64), 0.2);
}

TEST(VectorGen, SparsityAndDeterminism) {
  const auto a = gen_sparse_vector(10000, 0.01, 1);
  const auto b = gen_sparse_vector(10000, 0.01, 1);
  EXPECT_EQ(a.idx, b.idx);
  EXPECT_EQ(a.vals, b.vals);
  EXPECT_EQ(a.nnz(), 100);
  // Sorted unique indices in range.
  for (std::size_t i = 1; i < a.idx.size(); ++i) {
    EXPECT_LT(a.idx[i - 1], a.idx[i]);
  }
  EXPECT_LT(a.idx.back(), 10000);
}

TEST(VectorGen, AtLeastOneNonzero) {
  const auto v = gen_sparse_vector(1000, 0.0, 2);
  EXPECT_EQ(v.nnz(), 1);
}

TEST(VectorGen, ClusteredTouchesFewerTiles) {
  const auto scattered = gen_sparse_vector(16000, 0.01, 3);
  const auto clustered = gen_clustered_vector(16000, 0.01, 16, 3);
  auto tiles_touched = [](const SparseVec<value_t>& v) {
    std::set<index_t> tiles;
    for (index_t i : v.idx) tiles.insert(i / 16);
    return tiles.size();
  };
  EXPECT_LT(tiles_touched(clustered), tiles_touched(scattered) / 2);
}

}  // namespace
}  // namespace tilespmspv
