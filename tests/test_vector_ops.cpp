// Tests for the GraphBLAS-style element-wise sparse vector operations.
#include <gtest/gtest.h>

#include "formats/vector_ops.hpp"
#include "gen/vector_gen.hpp"

namespace tilespmspv {
namespace {

SparseVec<value_t> make(std::initializer_list<std::pair<index_t, value_t>> e,
                        index_t n = 16) {
  SparseVec<value_t> v(n);
  for (const auto& [i, val] : e) v.push(i, val);
  return v;
}

TEST(EwiseAdd, UnionSemantics) {
  const auto a = make({{1, 1.0}, {4, 2.0}, {9, 3.0}});
  const auto b = make({{0, 5.0}, {4, 7.0}, {15, 1.0}});
  const auto c = ewise_add(a, b);
  EXPECT_EQ(c.idx, (std::vector<index_t>{0, 1, 4, 9, 15}));
  EXPECT_EQ(c.vals, (std::vector<value_t>{5.0, 1.0, 9.0, 3.0, 1.0}));
}

TEST(EwiseAdd, CancellationDropsEntry) {
  const auto a = make({{3, 2.0}});
  const auto b = make({{3, -2.0}});
  EXPECT_EQ(ewise_add(a, b).nnz(), 0);
}

TEST(EwiseAdd, EmptyOperands) {
  const auto a = make({{2, 1.0}});
  const SparseVec<value_t> empty(16);
  EXPECT_EQ(ewise_add(a, empty).idx, a.idx);
  EXPECT_EQ(ewise_add(empty, a).vals, a.vals);
  EXPECT_EQ(ewise_add(empty, empty).nnz(), 0);
}

TEST(EwiseAdd, CustomOp) {
  const auto a = make({{1, 3.0}});
  const auto b = make({{1, 5.0}});
  const auto c = ewise_add(a, b, [](value_t x, value_t y) {
    return std::max(x, y);
  });
  EXPECT_EQ(c.vals, (std::vector<value_t>{5.0}));
}

TEST(EwiseMult, IntersectionSemantics) {
  const auto a = make({{1, 2.0}, {4, 3.0}, {9, 4.0}});
  const auto b = make({{4, 5.0}, {9, 0.5}, {10, 9.0}});
  const auto c = ewise_mult(a, b);
  EXPECT_EQ(c.idx, (std::vector<index_t>{4, 9}));
  EXPECT_EQ(c.vals, (std::vector<value_t>{15.0, 2.0}));
}

TEST(EwiseMult, DisjointGivesEmpty) {
  const auto a = make({{1, 1.0}});
  const auto b = make({{2, 1.0}});
  EXPECT_EQ(ewise_mult(a, b).nnz(), 0);
}

TEST(Mask, KeepAndComplement) {
  const auto a = make({{1, 1.0}, {4, 2.0}, {9, 3.0}});
  const auto m = make({{4, 1.0}, {8, 1.0}});
  const auto kept = mask(a, m);
  EXPECT_EQ(kept.idx, (std::vector<index_t>{4}));
  const auto dropped = mask(a, m, /*complement=*/true);
  EXPECT_EQ(dropped.idx, (std::vector<index_t>{1, 9}));
}

TEST(Mask, BfsFrontierFilterPattern) {
  // next = y masked by complement(visited): the Alg. 3 update.
  const auto y = make({{2, 1.0}, {3, 1.0}, {5, 1.0}});
  const auto visited = make({{0, 1.0}, {3, 1.0}});
  const auto next = mask(y, visited, /*complement=*/true);
  EXPECT_EQ(next.idx, (std::vector<index_t>{2, 5}));
}

TEST(Select, ByIndexAndValue) {
  const auto a = make({{1, -1.0}, {4, 2.0}, {9, -3.0}});
  const auto positive =
      select(a, [](index_t, value_t v) { return v > 0; });
  EXPECT_EQ(positive.idx, (std::vector<index_t>{4}));
  const auto low_index =
      select(a, [](index_t i, value_t) { return i < 5; });
  EXPECT_EQ(low_index.idx, (std::vector<index_t>{1, 4}));
}

TEST(Apply, MapsValuesAndDropsZeros) {
  const auto a = make({{1, 1.0}, {4, 2.0}});
  const auto squared = apply(a, [](value_t v) { return v * v; });
  EXPECT_EQ(squared.vals, (std::vector<value_t>{1.0, 4.0}));
  const auto zeroed = apply(a, [](value_t v) { return v < 1.5 ? 0.0 : v; });
  EXPECT_EQ(zeroed.idx, (std::vector<index_t>{4}));
}

TEST(Reduce, SumAndMax) {
  const auto a = make({{1, 1.5}, {4, 2.5}, {9, -1.0}});
  EXPECT_DOUBLE_EQ(reduce(a), 3.0);
  EXPECT_DOUBLE_EQ(
      reduce(a, -1e30, [](value_t x, value_t y) { return std::max(x, y); }),
      2.5);
}

TEST(VectorOps, RandomizedAlgebraicProperties) {
  // ewise_add commutes; mask(a, a) == a; mult distributes over structure.
  for (std::uint64_t seed : {1401, 1402, 1403}) {
    const auto a = gen_sparse_vector(500, 0.05, seed);
    const auto b = gen_sparse_vector(500, 0.08, seed + 10);
    const auto ab = ewise_add(a, b);
    const auto ba = ewise_add(b, a);
    EXPECT_EQ(ab.idx, ba.idx);
    EXPECT_EQ(ab.vals, ba.vals);
    const auto self = mask(a, a);
    EXPECT_EQ(self.idx, a.idx);
    // |mask(a,b)| + |mask(a,b,complement)| == |a|
    EXPECT_EQ(mask(a, b).nnz() + mask(a, b, true).nnz(), a.nnz());
    // ewise_mult's structure is the index intersection.
    const auto m = ewise_mult(a, b);
    for (index_t i : m.idx) {
      EXPECT_TRUE(std::binary_search(a.idx.begin(), a.idx.end(), i));
      EXPECT_TRUE(std::binary_search(b.idx.begin(), b.idx.end(), i));
    }
  }
}

}  // namespace
}  // namespace tilespmspv
