// Tests for the packed-byte tile layout (paper §3.2.1's nt = 16 encoding):
// packing arithmetic, construction round trips, and kernel equivalence to
// the reference SpMSpV.
#include <gtest/gtest.h>

#include "core/spmspv_reference.hpp"
#include "gen/banded.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"
#include "tile/packed_tile_matrix.hpp"
#include "tile/tile_matrix.hpp"

namespace tilespmspv {
namespace {

using Packed = PackedTileMatrix<value_t>;

TEST(PackedTile, NibblePacking) {
  // Paper: "the first and last four bits will contain the row and column
  // indices, respectively."
  for (index_t r = 0; r < 16; ++r) {
    for (index_t c = 0; c < 16; ++c) {
      const std::uint8_t b = Packed::pack(r, c);
      EXPECT_EQ(Packed::unpack_row(b), r);
      EXPECT_EQ(Packed::unpack_col(b), c);
    }
  }
  EXPECT_EQ(Packed::pack(0xF, 0x0), 0xF0);
  EXPECT_EQ(Packed::pack(0x0, 0xF), 0x0F);
}

class PackedRoundTrip
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, double>> {};

TEST_P(PackedRoundTrip, PreservesEveryNonzero) {
  const auto [rows, cols, density] = GetParam();
  Coo<value_t> coo = gen_erdos_renyi(rows, cols, density, 901 + rows);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  Packed p = Packed::from_csr(a);
  coo.sort_row_major();
  Coo<value_t> back = p.to_coo();
  EXPECT_EQ(back.row_idx, coo.row_idx);
  EXPECT_EQ(back.col_idx, coo.col_idx);
  EXPECT_EQ(back.vals, coo.vals);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackedRoundTrip,
    ::testing::Combine(::testing::Values<index_t>(1, 16, 100, 513),
                       ::testing::Values<index_t>(1, 17, 300),
                       ::testing::Values(0.01, 0.1)));

class PackedKernelSweep
    : public ::testing::TestWithParam<std::tuple<double, double, std::size_t>> {
};

TEST_P(PackedKernelSweep, MatchesReference) {
  const auto [mat_density, vec_sparsity, threads] = GetParam();
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(600, 500, mat_density, 907));
  Packed p = Packed::from_csr(a);
  SparseVec<value_t> x = gen_sparse_vector(500, vec_sparsity, 17);
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
  ThreadPool pool(threads);
  EXPECT_TRUE(approx_equal(packed_tile_spmspv(p, xt, &pool),
                           spmspv_rowwise_reference(a, x)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackedKernelSweep,
    ::testing::Combine(::testing::Values(0.002, 0.05),
                       ::testing::Values(0.001, 0.05, 0.5),
                       ::testing::Values<std::size_t>(1, 4)));

TEST(PackedTile, MatchesIntraCsrTileCountAccounting) {
  BandedParams prm;
  prm.n = 2000;
  prm.block = 4;
  prm.band_blocks = 3;
  Csr<value_t> a = Csr<value_t>::from_coo(gen_banded(prm, 911));
  Packed p = Packed::from_csr(a);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16, 0);
  EXPECT_EQ(p.num_tiles(), t.num_tiles());
  EXPECT_EQ(p.tile_col_id, t.tile_col_id);
}

TEST(PackedTile, EmptyMatrix) {
  Csr<value_t> a(32, 32);
  Packed p = Packed::from_csr(a);
  EXPECT_EQ(p.num_tiles(), 0);
  SparseVec<value_t> x = gen_sparse_vector(32, 0.5, 3);
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
  EXPECT_EQ(packed_tile_spmspv(p, xt).nnz(), 0);
}

TEST(PackedTile, DenseSingleTile) {
  Coo<value_t> coo(16, 16);
  for (index_t r = 0; r < 16; ++r) {
    for (index_t c = 0; c < 16; ++c) {
      coo.push(r, c, static_cast<value_t>(r * 16 + c + 1));
    }
  }
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  Packed p = Packed::from_csr(a);
  EXPECT_EQ(p.num_tiles(), 1);
  EXPECT_EQ(p.vals.size(), 256u);
  SparseVec<value_t> x(16);
  x.push(3, 2.0);
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
  SparseVec<value_t> y = packed_tile_spmspv(p, xt);
  ASSERT_EQ(y.nnz(), 16);
  for (index_t r = 0; r < 16; ++r) {
    EXPECT_DOUBLE_EQ(y.vals[r], 2.0 * (r * 16 + 3 + 1));
  }
}

}  // namespace
}  // namespace tilespmspv
