// Tests for the application layer built on the SpMSpV primitive:
// algebraic BFS (paper Alg. 3), RCM ordering, and betweenness centrality,
// each validated against an independent reference.
#include <gtest/gtest.h>

#include <queue>

#include "apps/algebraic_bfs.hpp"
#include "apps/betweenness.hpp"
#include "apps/rcm.hpp"
#include "apps/triangles.hpp"
#include "baselines/serial_bfs.hpp"
#include "gen/banded.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"

namespace tilespmspv {
namespace {

Csr<value_t> undirected(index_t n, double p, std::uint64_t seed) {
  Coo<value_t> coo = gen_erdos_renyi(n, n, p, seed);
  coo.symmetrize();
  return Csr<value_t>::from_coo(coo);
}

// ---------------------------------------------------------------- Alg. 3

class AlgebraicBfsGraphs
    : public ::testing::TestWithParam<std::tuple<index_t, double>> {};

TEST_P(AlgebraicBfsGraphs, MatchesSerialBfs) {
  const auto [n, p] = GetParam();
  Csr<value_t> g = undirected(n, p, 501 + n);
  EXPECT_EQ(algebraic_bfs(g, 0), serial_bfs(g, 0));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgebraicBfsGraphs,
    ::testing::Combine(::testing::Values<index_t>(50, 500, 3000),
                       ::testing::Values(0.002, 0.01, 0.05)));

TEST(AlgebraicBfs, MatchesTileBfsLevels) {
  Csr<value_t> g = Csr<value_t>::from_coo(gen_grid2d(40, 30, 0.9, 503));
  TileBfs tb(g);
  EXPECT_EQ(algebraic_bfs(g, 5), tb.run(5).levels);
}

TEST(AlgebraicBfs, SignedValuesDoNotHideEdges) {
  // Values that would cancel numerically must not affect reachability.
  Coo<value_t> coo(4, 4);
  coo.push(1, 0, 1.0);
  coo.push(2, 0, -1.0);
  coo.push(3, 1, 2.0);
  coo.push(3, 2, -2.0);  // y_3 = 2 - 2 = 0 numerically at level 2
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  const auto levels = algebraic_bfs(a, 0);
  EXPECT_EQ(levels, (std::vector<index_t>{0, 1, 1, 2}));
}

TEST(AlgebraicBfs, DisconnectedGraph) {
  Coo<value_t> coo(6, 6);
  coo.push(0, 1, 1.0);
  coo.push(1, 0, 1.0);
  coo.push(3, 4, 1.0);
  coo.push(4, 3, 1.0);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  const auto levels = algebraic_bfs(a, 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[3], -1);
  EXPECT_EQ(levels[5], -1);
}

// ------------------------------------------------------------------- RCM

TEST(Rcm, PermutationIsValid) {
  Csr<value_t> a = undirected(300, 0.02, 507);
  const auto perm = rcm_ordering(a);
  ASSERT_EQ(perm.size(), 300u);
  std::vector<bool> seen(300, false);
  for (index_t p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 300);
    ASSERT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Rcm, ReducesBandwidthOfShuffledBandMatrix) {
  // Build a narrow-band matrix, destroy the ordering with a random
  // permutation, and check RCM recovers a small bandwidth.
  BandedParams prm;
  prm.n = 600;
  prm.block = 4;
  prm.band_blocks = 2;
  Csr<value_t> band = Csr<value_t>::from_coo(gen_banded(prm, 509));
  // Random shuffle permutation.
  Prng rng(510);
  std::vector<index_t> shuffle(600);
  std::iota(shuffle.begin(), shuffle.end(), index_t{0});
  for (index_t i = 599; i > 0; --i) {
    std::swap(shuffle[i], shuffle[rng.next_below(i + 1)]);
  }
  Csr<value_t> shuffled = permute_symmetric(band, shuffle);
  const index_t before = bandwidth(shuffled);
  Csr<value_t> reordered = permute_symmetric(shuffled, rcm_ordering(shuffled));
  const index_t after = bandwidth(reordered);
  EXPECT_LT(after, before / 4) << "before=" << before << " after=" << after;
}

TEST(Rcm, HandlesDisconnectedComponents) {
  Coo<value_t> coo(10, 10);
  coo.push(0, 1, 1.0);
  coo.push(1, 0, 1.0);
  coo.push(5, 6, 1.0);
  coo.push(6, 5, 1.0);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  const auto perm = rcm_ordering(a);
  EXPECT_EQ(perm.size(), 10u);  // isolated vertices included
}

TEST(Rcm, PermuteSymmetricRoundTrip) {
  Csr<value_t> a = undirected(80, 0.05, 511);
  std::vector<index_t> identity(80);
  std::iota(identity.begin(), identity.end(), index_t{0});
  Csr<value_t> same = permute_symmetric(a, identity);
  EXPECT_EQ(same.row_ptr, a.row_ptr);
  EXPECT_EQ(same.col_idx, a.col_idx);
}

TEST(Rcm, BandwidthDefinition) {
  Coo<value_t> coo(5, 5);
  coo.push(0, 4, 1.0);
  coo.push(2, 2, 1.0);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  EXPECT_EQ(bandwidth(a), 4);
}

// ---------------------------------------------------------- Betweenness

// Serial Brandes reference (queues + explicit predecessor lists).
std::vector<double> brandes_reference(const Csr<value_t>& g, bool halve) {
  const index_t n = g.rows;
  std::vector<double> bc(n, 0.0);
  for (index_t s = 0; s < n; ++s) {
    std::vector<std::vector<index_t>> preds(n);
    std::vector<double> sigma(n, 0.0);
    std::vector<index_t> dist(n, -1);
    std::vector<index_t> order;
    std::queue<index_t> q;
    sigma[s] = 1.0;
    dist[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const index_t v = q.front();
      q.pop();
      order.push_back(v);
      for (offset_t i = g.row_ptr[v]; i < g.row_ptr[v + 1]; ++i) {
        const index_t w = g.col_idx[i];
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          q.push(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          preds[w].push_back(v);
        }
      }
    }
    std::vector<double> delta(n, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const index_t w = *it;
      for (index_t v : preds[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) bc[w] += delta[w];
    }
  }
  if (halve) {
    for (double& v : bc) v *= 0.5;
  }
  return bc;
}

TEST(Betweenness, PathGraphExact) {
  // Path 0-1-2-3-4: bc (undirected, halved) = {0, 3, 4, 3, 0}.
  Coo<value_t> coo(5, 5);
  for (index_t i = 0; i + 1 < 5; ++i) {
    coo.push(i, i + 1, 1.0);
    coo.push(i + 1, i, 1.0);
  }
  Csr<value_t> g = Csr<value_t>::from_coo(coo);
  std::vector<index_t> all{0, 1, 2, 3, 4};
  const auto bc = betweenness_centrality(g, all);
  EXPECT_NEAR(bc[0], 0.0, 1e-12);
  EXPECT_NEAR(bc[1], 3.0, 1e-12);
  EXPECT_NEAR(bc[2], 4.0, 1e-12);
  EXPECT_NEAR(bc[3], 3.0, 1e-12);
  EXPECT_NEAR(bc[4], 0.0, 1e-12);
}

TEST(Betweenness, StarGraphCenterDominates) {
  Coo<value_t> coo(7, 7);
  for (index_t i = 1; i < 7; ++i) {
    coo.push(0, i, 1.0);
    coo.push(i, 0, 1.0);
  }
  Csr<value_t> g = Csr<value_t>::from_coo(coo);
  std::vector<index_t> all(7);
  std::iota(all.begin(), all.end(), index_t{0});
  const auto bc = betweenness_centrality(g, all);
  EXPECT_NEAR(bc[0], 15.0, 1e-12);  // C(6,2) pairs route through center
  for (index_t i = 1; i < 7; ++i) EXPECT_NEAR(bc[i], 0.0, 1e-12);
}

class BetweennessRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BetweennessRandom, MatchesBrandesReference) {
  Csr<value_t> g = undirected(60, 0.08, GetParam());
  std::vector<index_t> all(60);
  std::iota(all.begin(), all.end(), index_t{0});
  const auto got = betweenness_centrality(g, all);
  const auto expect = brandes_reference(g, true);
  for (index_t v = 0; v < 60; ++v) {
    EXPECT_NEAR(got[v], expect[v], 1e-9) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BetweennessRandom,
                         ::testing::Values(601, 602, 603, 604));

TEST(Betweenness, WeightedValuesIgnored) {
  // Same pattern, different values -> identical centrality (pattern is
  // normalized internally).
  Coo<value_t> coo(5, 5);
  for (index_t i = 0; i + 1 < 5; ++i) {
    coo.push(i, i + 1, 0.5 + i);
    coo.push(i + 1, i, 0.5 + i);
  }
  Csr<value_t> g = Csr<value_t>::from_coo(coo);
  std::vector<index_t> all{0, 1, 2, 3, 4};
  const auto bc = betweenness_centrality(g, all);
  EXPECT_NEAR(bc[2], 4.0, 1e-12);
}

TEST(Betweenness, SampledSourcesScaleDown) {
  Csr<value_t> g = Csr<value_t>::from_coo(gen_rmat(
      [] {
        RmatParams p;
        p.scale = 8;
        p.edge_factor = 4;
        return p;
      }(),
      605));
  const auto bc_one = betweenness_centrality(g, {0});
  const auto bc_two = betweenness_centrality(g, {0, 1});
  // More sources only add non-negative contributions.
  for (index_t v = 0; v < g.rows; ++v) {
    EXPECT_GE(bc_two[v] + 1e-12, bc_one[v]);
  }
}

TEST(Betweenness, MultiBlockSourceSetMatchesReference) {
  // 80 sources span two 64-lane blocks of the batched forward sweep; the
  // summed result must still match the serial Brandes reference.
  Csr<value_t> g = undirected(80, 0.06, 606);
  std::vector<index_t> all(80);
  std::iota(all.begin(), all.end(), index_t{0});
  ThreadPool pool(4);
  const auto got = betweenness_centrality(g, all, true, {}, &pool);
  const auto expect = brandes_reference(g, true);
  for (index_t v = 0; v < 80; ++v) {
    EXPECT_NEAR(got[v], expect[v], 1e-9) << "vertex " << v;
  }
}

TEST(Betweenness, MultiSourceBlockMatchesSingleSourceSweeps) {
  Csr<value_t> g = undirected(120, 0.04, 607);
  Csr<value_t> pattern = g;
  for (auto& v : pattern.vals) v = value_t{1};
  SpmspvOperator<value_t> op(pattern, {});
  const std::vector<index_t> sources{0, 17, 17, 63, 119};
  const auto deltas = bc_multi_source(op, g, sources);
  ASSERT_EQ(deltas.size(), sources.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const auto single = bc_single_source(op, g, sources[s]);
    for (index_t v = 0; v < 120; ++v) {
      EXPECT_NEAR(deltas[s][v], single[v], 1e-9)
          << "source " << sources[s] << " vertex " << v;
    }
  }
}

// ------------------------------------------------------------ triangles

Csr<value_t> clique(index_t n) {
  Coo<value_t> coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (i != j) coo.push(i, j, 1.0);
    }
  }
  return Csr<value_t>::from_coo(coo);
}

TEST(Triangles, CliqueCounts) {
  // K_n has C(n,3) triangles.
  EXPECT_EQ(count_triangles(clique(3)), 1u);
  EXPECT_EQ(count_triangles(clique(4)), 4u);
  EXPECT_EQ(count_triangles(clique(6)), 20u);
  EXPECT_EQ(count_triangles(clique(10)), 120u);
}

TEST(Triangles, TriangleFreeGraphs) {
  // Paths, stars and even cycles have no triangles.
  Coo<value_t> path(20, 20);
  for (index_t i = 0; i + 1 < 20; ++i) {
    path.push(i, i + 1, 1.0);
    path.push(i + 1, i, 1.0);
  }
  EXPECT_EQ(count_triangles(Csr<value_t>::from_coo(path)), 0u);

  Coo<value_t> cycle(8, 8);
  for (index_t i = 0; i < 8; ++i) {
    cycle.push(i, (i + 1) % 8, 1.0);
    cycle.push((i + 1) % 8, i, 1.0);
  }
  EXPECT_EQ(count_triangles(Csr<value_t>::from_coo(cycle)), 0u);
}

TEST(Triangles, PetersenGraphHasNone) {
  // The Petersen graph is famously triangle-free.
  const index_t outer[5][2] = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};
  Coo<value_t> coo(10, 10);
  for (const auto& e : outer) {
    coo.push(e[0], e[1], 1.0);
    coo.push(e[1], e[0], 1.0);
  }
  for (index_t i = 0; i < 5; ++i) {
    // spokes and inner pentagram (i+5) -- ((i+2)%5+5)
    coo.push(i, i + 5, 1.0);
    coo.push(i + 5, i, 1.0);
    const index_t a = i + 5, b = (i + 2) % 5 + 5;
    coo.push(a, b, 1.0);
    coo.push(b, a, 1.0);
  }
  Csr<value_t> g = Csr<value_t>::from_coo(coo);
  EXPECT_EQ(g.nnz(), 30);  // 15 undirected edges
  EXPECT_EQ(count_triangles(g), 0u);
}

TEST(Triangles, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed : {611, 612}) {
    Csr<value_t> g = undirected(120, 0.08, seed);
    // Brute force over vertex triples via adjacency matrix.
    std::vector<std::vector<bool>> adj(120, std::vector<bool>(120, false));
    for (index_t r = 0; r < 120; ++r) {
      for (offset_t i = g.row_ptr[r]; i < g.row_ptr[r + 1]; ++i) {
        adj[r][g.col_idx[i]] = true;
      }
    }
    std::uint64_t expect = 0;
    for (index_t i = 0; i < 120; ++i) {
      for (index_t j = i + 1; j < 120; ++j) {
        if (!adj[i][j]) continue;
        for (index_t k = j + 1; k < 120; ++k) {
          if (adj[i][k] && adj[j][k]) ++expect;
        }
      }
    }
    EXPECT_EQ(count_triangles(g), expect) << seed;
  }
}

TEST(Triangles, PerVertexSumsToThreePerTriangle) {
  Csr<value_t> g = undirected(200, 0.05, 613);
  const auto tri = triangles_per_vertex(g);
  std::uint64_t sum = 0;
  for (std::uint64_t t : tri) sum += t;
  EXPECT_EQ(sum, 3 * count_triangles(g));
}

TEST(Triangles, PerVertexOnK4) {
  const auto tri = triangles_per_vertex(clique(4));
  for (std::uint64_t t : tri) EXPECT_EQ(t, 3u);  // each vertex in C(3,2)=3
}

}  // namespace
}  // namespace tilespmspv
