// Tests for bit-parallel multi-source BFS: every batched traversal must
// match an independent single-source run, across batch sizes, pool sizes
// and graph classes.
#include <gtest/gtest.h>

#include "apps/ms_bfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "bfs/tile_ms_bfs.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"

namespace tilespmspv {
namespace {

Csr<value_t> undirected(index_t n, double p, std::uint64_t seed) {
  Coo<value_t> coo = gen_erdos_renyi(n, n, p, seed);
  coo.symmetrize();
  return Csr<value_t>::from_coo(coo);
}

class MsBfsBatch : public ::testing::TestWithParam<int> {};

TEST_P(MsBfsBatch, EverySourceMatchesSerial) {
  const int k = GetParam();
  Csr<value_t> g = undirected(1000, 0.004, 801);
  std::vector<index_t> sources;
  for (int s = 0; s < k; ++s) {
    sources.push_back(static_cast<index_t>((s * 131) % 1000));
  }
  const MsBfsResult r = ms_bfs(g, sources);
  ASSERT_EQ(r.levels.size(), static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    EXPECT_EQ(r.levels[s], serial_bfs(g, sources[s])) << "source slot " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, MsBfsBatch,
                         ::testing::Values(1, 2, 7, 32, 64));

TEST(MsBfs, RejectsTooManySources) {
  Csr<value_t> g = undirected(100, 0.05, 802);
  std::vector<index_t> sources(65, 0);
  EXPECT_THROW(ms_bfs(g, sources), std::invalid_argument);
}

TEST(MsBfs, EmptySourceList) {
  Csr<value_t> g = undirected(50, 0.05, 803);
  const MsBfsResult r = ms_bfs(g, {});
  EXPECT_TRUE(r.levels.empty());
  EXPECT_EQ(r.rounds, 0);
}

TEST(MsBfs, DuplicateSourcesAreIndependentSlots) {
  Csr<value_t> g = undirected(200, 0.02, 804);
  const MsBfsResult r = ms_bfs(g, {5, 5, 5});
  EXPECT_EQ(r.levels[0], r.levels[1]);
  EXPECT_EQ(r.levels[1], r.levels[2]);
  EXPECT_EQ(r.levels[0], serial_bfs(g, 5));
}

TEST(MsBfs, DirectedGraph) {
  Coo<value_t> coo(150, 150);
  Prng rng(805);
  for (int e = 0; e < 500; ++e) {
    const auto u = static_cast<index_t>(rng.next_below(150));
    const auto v = static_cast<index_t>(rng.next_below(150));
    if (u != v) coo.push(u, v, 1.0);  // row u = out-neighbors of u
  }
  coo.sort_row_major();
  coo.sum_duplicates();
  Csr<value_t> g = Csr<value_t>::from_coo(coo);
  const MsBfsResult r = ms_bfs(g, {0, 10, 149});
  EXPECT_EQ(r.levels[0], serial_bfs(g, 0));
  EXPECT_EQ(r.levels[1], serial_bfs(g, 10));
  EXPECT_EQ(r.levels[2], serial_bfs(g, 149));
}

TEST(MsBfs, PoolSizesAgree) {
  Csr<value_t> g = Csr<value_t>::from_coo(gen_grid2d(30, 30, 0.9, 806));
  std::vector<index_t> sources{0, 450, 899};
  const MsBfsResult base = ms_bfs(g, sources);
  for (std::size_t threads : {1u, 4u, 8u}) {
    ThreadPool pool(threads);
    const MsBfsResult r = ms_bfs(g, sources, &pool);
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(r.levels[s], base.levels[s]) << "threads " << threads;
    }
  }
}

TEST(MsBfs, RoundsEqualMaxEccentricityOfBatch) {
  // Path graph: source at one end needs n-1 rounds; batching with a
  // middle source must still run to the deepest traversal.
  Coo<value_t> coo(100, 100);
  for (index_t i = 0; i + 1 < 100; ++i) {
    coo.push(i, i + 1, 1.0);
    coo.push(i + 1, i, 1.0);
  }
  Csr<value_t> g = Csr<value_t>::from_coo(coo);
  const MsBfsResult r = ms_bfs(g, {0, 50});
  // 99 productive rounds plus the final round that discovers nothing.
  EXPECT_EQ(r.rounds, 100);
  EXPECT_EQ(r.levels[0][99], 99);
  EXPECT_EQ(r.levels[1][99], 49);
}

class TileMsBfsBatch : public ::testing::TestWithParam<int> {};

TEST_P(TileMsBfsBatch, EverySourceMatchesSerial) {
  const int k = GetParam();
  Csr<value_t> g = undirected(900, 0.005, 821);
  std::vector<index_t> sources;
  for (int s = 0; s < k; ++s) {
    sources.push_back(static_cast<index_t>((s * 97) % 900));
  }
  const TileMsBfsResult r = tile_ms_bfs(g, sources);
  for (int s = 0; s < k; ++s) {
    EXPECT_EQ(r.levels[s], serial_bfs(g, sources[s])) << "slot " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, TileMsBfsBatch,
                         ::testing::Values(1, 5, 31, 64));

TEST(TileMsBfs, MatchesPlainMsBfs) {
  Csr<value_t> g = Csr<value_t>::from_coo(gen_grid2d(25, 25, 0.9, 822));
  std::vector<index_t> sources{0, 300, 624};
  const MsBfsResult plain = ms_bfs(g, sources);
  const TileMsBfsResult tiled = tile_ms_bfs(g, sources);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(tiled.levels[s], plain.levels[s]);
  }
}

TEST(TileMsBfs, ExtractionThresholdsAgree) {
  Csr<value_t> g = undirected(700, 0.004, 823);
  std::vector<index_t> sources{1, 350, 699};
  const TileMsBfsResult base = tile_ms_bfs(g, sources, 0);
  for (index_t extract : {2, 8, 1 << 20}) {
    const TileMsBfsResult r = tile_ms_bfs(g, sources, extract);
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(r.levels[s], base.levels[s]) << "extract " << extract;
    }
  }
}

TEST(TileMsBfs, Nt64Path) {
  Csr<value_t> g = undirected(2000, 0.003, 824);
  const auto tiles = BitTileGraph<64>::from_csr(g, 2);
  const TileMsBfsResult r = tile_ms_bfs(tiles, {0, 1000});
  EXPECT_EQ(r.levels[0], serial_bfs(g, 0));
  EXPECT_EQ(r.levels[1], serial_bfs(g, 1000));
}

TEST(TileMsBfs, RejectsTooManySources) {
  Csr<value_t> g = undirected(64, 0.1, 825);
  EXPECT_THROW(tile_ms_bfs(g, std::vector<index_t>(65, 0)),
               std::invalid_argument);
}

class MsBfsTiledBatch : public ::testing::TestWithParam<int> {};

TEST_P(MsBfsTiledBatch, MatchesPlainMsBfsExactly) {
  const int k = GetParam();
  Csr<value_t> g = undirected(800, 0.005, 831);
  std::vector<index_t> sources;
  for (int s = 0; s < k; ++s) {
    sources.push_back(static_cast<index_t>((s * 113) % 800));
  }
  ThreadPool pool(4);
  const MsBfsResult plain = ms_bfs(g, sources, &pool);
  const MsBfsResult tiled = ms_bfs_tiled(g, sources, {}, &pool);
  ASSERT_EQ(tiled.levels.size(), static_cast<std::size_t>(k));
  EXPECT_EQ(tiled.rounds, plain.rounds);
  for (int s = 0; s < k; ++s) {
    EXPECT_EQ(tiled.levels[s], plain.levels[s]) << "slot " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, MsBfsTiledBatch,
                         ::testing::Values(1, 3, 33, 64));

TEST(MsBfsTiled, DirectedGraphAndConfigs) {
  Coo<value_t> coo(180, 180);
  Prng rng(832);
  for (int e = 0; e < 700; ++e) {
    const auto u = static_cast<index_t>(rng.next_below(180));
    const auto v = static_cast<index_t>(rng.next_below(180));
    if (u != v) coo.push(u, v, 1.0);
  }
  coo.sort_row_major();
  coo.sum_duplicates();
  Csr<value_t> g = Csr<value_t>::from_coo(coo);
  const std::vector<index_t> sources{0, 42, 179};
  const MsBfsResult plain = ms_bfs(g, sources);
  for (index_t nt : {16, 64}) {
    SpmspvConfig cfg;
    cfg.nt = nt;
    const MsBfsResult tiled = ms_bfs_tiled(g, sources, cfg);
    EXPECT_EQ(tiled.rounds, plain.rounds) << "nt " << nt;
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(tiled.levels[s], plain.levels[s]) << "nt " << nt;
    }
  }
}

TEST(MsBfsTiled, RejectsTooManySourcesAndHandlesEmpty) {
  Csr<value_t> g = undirected(64, 0.1, 833);
  EXPECT_THROW(ms_bfs_tiled(g, std::vector<index_t>(65, 0)),
               std::invalid_argument);
  const MsBfsResult r = ms_bfs_tiled(g, {});
  EXPECT_TRUE(r.levels.empty());
  EXPECT_EQ(r.rounds, 0);
}

TEST(MsBfs, SharedEdgeScansOnRmat) {
  RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  Csr<value_t> g = Csr<value_t>::from_coo(gen_rmat(p, 807));
  std::vector<index_t> sources;
  for (index_t s = 0; s < 16; ++s) sources.push_back(s * 100);
  const MsBfsResult r = ms_bfs(g, sources);
  for (int s = 0; s < 16; ++s) {
    ASSERT_EQ(r.levels[s], serial_bfs(g, sources[s])) << s;
  }
}

}  // namespace
}  // namespace tilespmspv
