// Correctness of every SpMV/SpMSpV baseline against the serial references.
// The Fig. 6 comparison is only meaningful if all four algorithms compute
// the same product.
#include <gtest/gtest.h>

#include "baselines/bsr_spmv.hpp"
#include "baselines/csr_spmv.hpp"
#include "baselines/spmspv_bucket.hpp"
#include "baselines/spmspv_sort.hpp"
#include "baselines/tile_spmv.hpp"
#include "core/spmspv_reference.hpp"
#include "gen/banded.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"

namespace tilespmspv {
namespace {

struct Fixture {
  Csr<value_t> a;
  Csc<value_t> c;
  SparseVec<value_t> x;
  SparseVec<value_t> expect;

  Fixture(index_t rows, index_t cols, double density, double sparsity,
          std::uint64_t seed) {
    a = Csr<value_t>::from_coo(gen_erdos_renyi(rows, cols, density, seed));
    c = Csc<value_t>::from_csr(a);
    x = gen_sparse_vector(cols, sparsity, seed + 1);
    expect = spmspv_rowwise_reference(a, x);
  }
};

class BaselineSweep
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, double>> {
 protected:
  Fixture make() const {
    const auto [rows, cols, sparsity] = GetParam();
    return Fixture(rows, cols, 0.02, sparsity, 101 + rows + cols);
  }
};

TEST_P(BaselineSweep, CsrSpmv) {
  Fixture f = make();
  EXPECT_TRUE(approx_equal(csr_spmv(f.a, f.x), f.expect));
}

TEST_P(BaselineSweep, BsrSpmvBlock4) {
  Fixture f = make();
  Bsr<value_t> b = Bsr<value_t>::from_csr(f.a, 4);
  EXPECT_TRUE(approx_equal(bsr_spmv(b, f.x), f.expect));
}

TEST_P(BaselineSweep, BsrSpmvBlock8) {
  Fixture f = make();
  Bsr<value_t> b = Bsr<value_t>::from_csr(f.a, 8);
  EXPECT_TRUE(approx_equal(bsr_spmv(b, f.x), f.expect));
}

TEST_P(BaselineSweep, TileSpmv) {
  Fixture f = make();
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(f.a, 16, 0);
  EXPECT_TRUE(approx_equal(tile_spmv(t, f.x), f.expect));
}

TEST_P(BaselineSweep, TileSpmvWithExtraction) {
  Fixture f = make();
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(f.a, 16, 2);
  EXPECT_TRUE(approx_equal(tile_spmv(t, f.x), f.expect));
}

TEST_P(BaselineSweep, SpmspvBucket) {
  Fixture f = make();
  for (index_t buckets : {1, 4, 16, 64}) {
    EXPECT_TRUE(approx_equal(spmspv_bucket(f.c, f.x, buckets), f.expect))
        << "buckets=" << buckets;
  }
}

TEST_P(BaselineSweep, SpmspvSort) {
  Fixture f = make();
  EXPECT_TRUE(approx_equal(spmspv_sort(f.c, f.x), f.expect));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineSweep,
    ::testing::Combine(::testing::Values<index_t>(63, 256, 700),
                       ::testing::Values<index_t>(65, 256, 500),
                       ::testing::Values(0.001, 0.05, 0.5)));

TEST(Bsr, BlockLayoutRoundTrip) {
  Coo<value_t> coo(10, 10);
  coo.push(0, 0, 1.0);
  coo.push(1, 1, 2.0);
  coo.push(9, 9, 3.0);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  Bsr<value_t> b = Bsr<value_t>::from_csr(a, 4);
  EXPECT_EQ(b.block_rows, 3);
  // Block (0,0) holds entries (0,0) and (1,1) on its diagonal.
  EXPECT_DOUBLE_EQ(b.blocks[0], 1.0);
  EXPECT_DOUBLE_EQ(b.blocks[1 * 4 + 1], 2.0);
}

TEST(SpmspvBucket, WorkspaceReuse) {
  Fixture f(300, 300, 0.02, 0.1, 211);
  BucketWorkspace<value_t> ws;
  EXPECT_TRUE(approx_equal(spmspv_bucket(f.c, f.x, ws, 8), f.expect));
  // Second call with different vector through the same workspace.
  SparseVec<value_t> x2 = gen_sparse_vector(300, 0.01, 212);
  EXPECT_TRUE(approx_equal(spmspv_bucket(f.c, x2, ws, 8),
                           spmspv_rowwise_reference(f.a, x2)));
}

TEST(SpmspvBucket, MoreBucketsThanRows) {
  Fixture f(10, 10, 0.3, 0.5, 213);
  EXPECT_TRUE(approx_equal(spmspv_bucket(f.c, f.x, 64), f.expect));
}

TEST(BaselinesAgreeOnBanded, AllFour) {
  BandedParams p;
  p.n = 500;
  p.block = 4;
  p.band_blocks = 4;
  Csr<value_t> a = Csr<value_t>::from_coo(gen_banded(p, 11));
  Csc<value_t> c = Csc<value_t>::from_csr(a);
  SparseVec<value_t> x = gen_sparse_vector(500, 0.02, 214);
  SparseVec<value_t> expect = spmspv_rowwise_reference(a, x);
  EXPECT_TRUE(approx_equal(csr_spmv(a, x), expect));
  Bsr<value_t> b = Bsr<value_t>::from_csr(a, 4);
  EXPECT_TRUE(approx_equal(bsr_spmv(b, x), expect));
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16, 0);
  EXPECT_TRUE(approx_equal(tile_spmv(t, x), expect));
  EXPECT_TRUE(approx_equal(spmspv_bucket(c, x, 16), expect));
  EXPECT_TRUE(approx_equal(spmspv_sort(c, x), expect));
}

}  // namespace
}  // namespace tilespmspv
