// Privatized CSC scatter/merge under contention. The CSC kernel replaced
// its per-value atomics with per-slot buckets merged during the gather;
// these tests hammer that path with many tile columns scattering into few
// output tiles on pools of several sizes, so a data race in the bucket
// ownership or the merge hand-off is visible to ThreadSanitizer (CI runs
// this binary under TSan) and any lost update breaks the exact-value
// checks below.
#include <gtest/gtest.h>

#include <thread>

#include "core/spmspv_reference.hpp"
#include "core/tile_spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"

namespace tilespmspv {
namespace {

// Tall-thin transpose: many active tile rows of Aᵀ all scatter into the
// same few output tiles — the worst case for the old atomic scheme and
// the maximum-contention case for the bucket merge.
TEST(CscMerge, ManyColumnsFewOutputTilesAllPoolSizes) {
  const index_t rows = 64;     // 4 output tiles at nt = 16
  const index_t cols = 2048;   // 128 active tile rows of At
  const Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(rows, cols, 0.05, 42));
  const TileMatrix<value_t> at =
      TileMatrix<value_t>::from_csr(a.transpose(), 16, 2);
  const SparseVec<value_t> x = gen_sparse_vector(cols, 0.8, 7);
  const TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
  const SparseVec<value_t> expect = spmspv_rowwise_reference(a, x);

  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    SpmspvWorkspace<value_t> ws;
    for (int rep = 0; rep < 8; ++rep) {
      const SparseVec<value_t> y = tile_spmspv_csc(at, xt, ws, &pool);
      ASSERT_TRUE(approx_equal(y, expect))
          << "threads=" << threads << " rep=" << rep;
    }
  }
}

// The workspace invariant the kernel relies on: every privatized buffer is
// all-zero between calls, so a stale value from a racy or skipped clear
// would poison the next multiply. Alternating two different vectors on one
// workspace catches exactly that.
TEST(CscMerge, WorkspaceBucketsAreCleanBetweenCalls) {
  const Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(300, 300, 0.03, 11));
  const TileMatrix<value_t> at =
      TileMatrix<value_t>::from_csr(a.transpose(), 32, 2);
  ThreadPool pool(4);
  SpmspvWorkspace<value_t> ws;
  for (int rep = 0; rep < 6; ++rep) {
    const SparseVec<value_t> x =
        gen_sparse_vector(300, rep % 2 ? 0.5 : 0.02, 100 + rep);
    const TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 32);
    ASSERT_TRUE(
        approx_equal(tile_spmspv_csc(at, xt, ws, &pool),
                     spmspv_rowwise_reference(a, x)))
        << "rep=" << rep;
    for (const value_t v : ws.priv_vals) ASSERT_EQ(v, value_t{});
    for (const unsigned char t : ws.priv_touched) ASSERT_EQ(t, 0);
    for (const auto& list : ws.priv_list) ASSERT_TRUE(list.empty());
  }
}

// Concurrent multiplies from two submitting threads, each with its own
// pool and workspace (the pool is single-submitter by design): the
// thread_local slot bookkeeping and the privatized buckets of the two
// calls must stay fully independent — TSan flags any cross-talk.
TEST(CscMerge, ConcurrentCallsOnSeparatePoolsStayIndependent) {
  const Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(400, 400, 0.04, 5));
  const TileMatrix<value_t> at =
      TileMatrix<value_t>::from_csr(a.transpose(), 16, 2);
  const SparseVec<value_t> x1 = gen_sparse_vector(400, 0.3, 21);
  const SparseVec<value_t> x2 = gen_sparse_vector(400, 0.3, 22);
  const TileVector<value_t> xt1 = TileVector<value_t>::from_sparse(x1, 16);
  const TileVector<value_t> xt2 = TileVector<value_t>::from_sparse(x2, 16);
  const SparseVec<value_t> e1 = spmspv_rowwise_reference(a, x1);
  const SparseVec<value_t> e2 = spmspv_rowwise_reference(a, x2);

  ThreadPool pool_a(4);
  ThreadPool pool_b(4);
  for (int rep = 0; rep < 4; ++rep) {
    SparseVec<value_t> y1, y2;
    std::thread t1([&] {
      SpmspvWorkspace<value_t> ws;
      y1 = tile_spmspv_csc(at, xt1, ws, &pool_a);
    });
    std::thread t2([&] {
      SpmspvWorkspace<value_t> ws;
      y2 = tile_spmspv_csc(at, xt2, ws, &pool_b);
    });
    t1.join();
    t2.join();
    ASSERT_TRUE(approx_equal(y1, e1)) << "rep=" << rep;
    ASSERT_TRUE(approx_equal(y2, e2)) << "rep=" << rep;
  }
}

}  // namespace
}  // namespace tilespmspv
