// Tests for the analytic work model: predictions must equal brute-force
// counts obtained by replaying the kernels' control flow, and the model
// must reproduce the qualitative orderings the paper's evaluation relies
// on (CSC-form work ∝ active columns; SpMV work invariant in x).
#include <gtest/gtest.h>

#include "core/work_model.hpp"
#include "gen/banded.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"

namespace tilespmspv {
namespace {

TEST(WorkModel, CsrFormMatchesBruteForce) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(400, 400, 0.01, 1701));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);
  SparseVec<value_t> x = gen_sparse_vector(400, 0.05, 1);
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
  const SpmspvWork w = work_tile_spmspv_csr(tiled, xt);

  // Brute force: replay Alg. 4's control flow.
  offset_t scanned = 0, computed = 0, macs = 0;
  for (index_t tr = 0; tr < tiled.tile_rows; ++tr) {
    for (offset_t t = tiled.tile_row_ptr[tr]; t < tiled.tile_row_ptr[tr + 1];
         ++t) {
      ++scanned;
      if (xt.x_ptr[tiled.tile_col_id[t]] != kEmptyTile) {
        ++computed;
        macs += tiled.tile_nnz_ptr[t + 1] - tiled.tile_nnz_ptr[t];
      }
    }
  }
  EXPECT_EQ(w.tiles_scanned, scanned);
  EXPECT_EQ(w.tiles_computed, computed);
  EXPECT_EQ(w.payload_macs, macs);

  // Side part: count extracted entries in active columns directly.
  offset_t side = 0;
  const auto xd = x.to_dense();
  for (index_t k = 0; k < tiled.extracted.nnz(); ++k) {
    const index_t j = tiled.extracted.col_idx[k];
    // A column is "active" at tile granularity in the kernel.
    if (xt.x_ptr[j / 16] != kEmptyTile) ++side;
  }
  EXPECT_EQ(w.side_macs, side);
}

TEST(WorkModel, CscFormProportionalToActiveColumns) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(2000, 2000, 0.005, 1702));
  TileMatrix<value_t> at =
      TileMatrix<value_t>::from_csr(a.transpose(), 16, 2);
  TileVector<value_t> x_sparse = TileVector<value_t>::from_sparse(
      gen_sparse_vector(2000, 0.001, 2), 16);
  TileVector<value_t> x_dense = TileVector<value_t>::from_sparse(
      gen_sparse_vector(2000, 0.1, 3), 16);
  const SpmspvWork ws = work_tile_spmspv_csc(at, x_sparse);
  const SpmspvWork wd = work_tile_spmspv_csc(at, x_dense);
  EXPECT_LT(ws.total_ops(), wd.total_ops() / 10);
}

TEST(WorkModel, SpmvWorkIsInputInvariant) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(500, 500, 0.02, 1703));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 0);
  const SpmspvWork w = work_spmv(tiled);
  EXPECT_EQ(w.payload_macs, a.nnz());
  EXPECT_EQ(w.tiles_computed, tiled.num_tiles());
}

TEST(WorkModel, CsrKernelNeverExceedsSpmvMacs) {
  // The tiled SpMSpV computes a subset of the SpMV's payload.
  BandedParams p;
  p.n = 1000;
  p.block = 4;
  p.band_blocks = 3;
  Csr<value_t> a = Csr<value_t>::from_coo(gen_banded(p, 1704));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);
  for (double sp : {0.001, 0.05, 0.5}) {
    TileVector<value_t> xt = TileVector<value_t>::from_sparse(
        gen_sparse_vector(1000, sp, 4), 16);
    const SpmspvWork w = work_tile_spmspv_csr(tiled, xt);
    EXPECT_LE(w.payload_macs + w.side_macs,
              static_cast<offset_t>(a.nnz()));
  }
}

TEST(WorkModel, ColumnDrivenEqualsActiveColumnNnz) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(300, 300, 0.03, 1705));
  std::vector<offset_t> col_nnz(a.cols, 0);
  for (index_t j : a.col_idx) ++col_nnz[j];
  SparseVec<value_t> x = gen_sparse_vector(300, 0.1, 5);
  const SpmspvWork w = work_column_driven(a, col_nnz, x.idx);
  offset_t expect = 0;
  for (index_t r = 0; r < a.rows; ++r) {
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      if (std::binary_search(x.idx.begin(), x.idx.end(), a.col_idx[i])) {
        ++expect;
      }
    }
  }
  EXPECT_EQ(w.payload_macs, expect);
}

TEST(WorkModel, CrossoverShapeMatchesFig6Narrative) {
  // As x sparsifies, SpMV work is flat, CSR-form work floors at the
  // metadata scan, CSC-form work keeps shrinking — the three regimes the
  // operator's selector exploits.
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(4000, 4000, 0.004, 1706));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);
  TileMatrix<value_t> at =
      TileMatrix<value_t>::from_csr(a.transpose(), 16, 2);
  const SpmspvWork spmv = work_spmv(tiled);
  offset_t prev_csc = spmv.total_ops() + 1;
  for (double sp : {0.3, 0.03, 0.003, 0.0003}) {
    TileVector<value_t> xt = TileVector<value_t>::from_sparse(
        gen_sparse_vector(4000, sp, 6), 16);
    const SpmspvWork csr = work_tile_spmspv_csr(tiled, xt);
    const SpmspvWork csc = work_tile_spmspv_csc(at, xt);
    EXPECT_LE(csr.payload_macs, spmv.payload_macs);
    EXPECT_LT(csc.total_ops(), prev_csc) << sp;  // strictly shrinking
    prev_csc = csc.total_ops();
    // The CSR form always pays the full metadata scan.
    EXPECT_EQ(csr.tiles_scanned, tiled.num_tiles());
  }
}

}  // namespace
}  // namespace tilespmspv
