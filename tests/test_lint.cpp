// Self-test for tools/lint/tilespmspv_lint: the seeded-violation fixtures
// must each be flagged with exactly their expected rule, and the real tree
// must lint clean — the same contract tests/test_validate.cpp pins for
// tilespmspv_validate --suite. The linter is a standalone binary, so these
// tests shell out to it; paths are baked in by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

int run(const std::string& args) {
  const std::string cmd = std::string(TILESPMSPV_LINT_BIN) + " " + args;
  const int status = std::system(cmd.c_str());
#if defined(_WIN32)
  return status;
#else
  return WEXITSTATUS(status);
#endif
}

const char* kFixtures = TILESPMSPV_LINT_FIXTURES;

}  // namespace

TEST(Lint, SuiteModePassesOnSeededFixtures) {
  EXPECT_EQ(run(std::string("--suite ") + kFixtures), 0);
}

TEST(Lint, RealTreeIsClean) {
  EXPECT_EQ(run(std::string("--root ") + TILESPMSPV_REPO_ROOT), 0);
}

TEST(Lint, EachSeededFixtureExitsNonzero) {
  int checked = 0;
  for (const auto& ent : fs::directory_iterator(kFixtures)) {
    if (!ent.is_directory()) continue;
    const std::string name = ent.path().filename().string();
    const int rc = run(std::string("--root ") + ent.path().string());
    // Expected rule = dirname up to the first '.'; "clean" trees (including
    // the suppression round-trip tree) must lint clean.
    if (name.substr(0, name.find('.')) == "clean") {
      EXPECT_EQ(rc, 0) << name;
    } else {
      EXPECT_EQ(rc, 1) << name;
    }
    ++checked;
  }
  // The rule catalogue: at least one fixture per rule plus the clean trees.
  EXPECT_GE(checked, 20);
}

TEST(Lint, FixturesCoverEveryRule) {
  const std::vector<std::string> rules = {
      "simd-twin",    "twin-fuzz",    "counter-doc",     "validator-fields",
      "hot-path",     "raw-atomic",   "include-hygiene", "mapped-taint",
      "shared-write", "lock-discipline", "clean"};
  for (const std::string& rule : rules) {
    bool found = false;
    for (const auto& ent : fs::directory_iterator(kFixtures)) {
      if (!ent.is_directory()) continue;
      const std::string name = ent.path().filename().string();
      if (name.substr(0, name.find('.')) == rule) found = true;
    }
    EXPECT_TRUE(found) << "no fixture seeds rule '" << rule << "'";
  }
}

TEST(Lint, SuppressionRoundTrip) {
  // lint:gated / lint:owned with a written reason suppress the finding;
  // the same annotations with empty parentheses are themselves findings.
  const std::string fx = kFixtures;
  EXPECT_EQ(run("--root " + fx + "/clean.suppressions"), 0);
  EXPECT_EQ(run("--root " + fx + "/mapped-taint.gated-empty-reason"), 1);
  EXPECT_EQ(run("--root " + fx + "/shared-write.empty-owned-reason"), 1);
}

TEST(Lint, Pr9OverflowWrapIsFlagged) {
  // The multiplicative section-size check that count=2^61 wrapped in PR 9
  // must stay a mapped-taint finding.
  const std::string fx = kFixtures;
  EXPECT_EQ(run("--root " + fx + "/mapped-taint.count-overflow-wrap"), 1);
}

TEST(Lint, UsageErrorsExitTwo) {
  EXPECT_EQ(run("--no-such-flag"), 2);
  EXPECT_EQ(run("--root /nonexistent/definitely-not-a-tree"), 2);
}
