// Tests for the named matrix suite: every name resolves, builds a valid
// matrix with the expected structural class, and the sweep lists are
// consistent.
#include <gtest/gtest.h>

#include <set>

#include "formats/csr.hpp"
#include "gen/suite.hpp"

namespace tilespmspv {
namespace {

TEST(Suite, AllNamesBuild) {
  for (const auto& name : suite_all_names()) {
    SCOPED_TRACE(name);
    const Coo<value_t> m = suite_matrix(name);
    EXPECT_GT(m.rows, 0);
    EXPECT_GT(m.cols, 0);
    EXPECT_GT(m.nnz(), 0);
    for (index_t i = 0; i < m.nnz(); ++i) {
      ASSERT_GE(m.row_idx[i], 0);
      ASSERT_LT(m.row_idx[i], m.rows);
      ASSERT_GE(m.col_idx[i], 0);
      ASSERT_LT(m.col_idx[i], m.cols);
    }
    EXPECT_FALSE(suite_description(name).empty());
  }
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(suite_matrix("no-such-matrix"), std::invalid_argument);
  EXPECT_THROW(suite_description("no-such-matrix"), std::invalid_argument);
}

TEST(Suite, Representative12AreTwelveAndSquare) {
  const auto names = suite_representative12();
  ASSERT_EQ(names.size(), 12u);
  for (const auto& name : names) {
    const Coo<value_t> m = suite_matrix(name);
    EXPECT_EQ(m.rows, m.cols) << name;
  }
}

TEST(Suite, Enterprise6AreSixAndSquare) {
  const auto names = suite_enterprise6();
  ASSERT_EQ(names.size(), 6u);
  for (const auto& name : names) {
    const Coo<value_t> m = suite_matrix(name);
    EXPECT_EQ(m.rows, m.cols) << name;
  }
}

TEST(Suite, BfsSweepAllSquare) {
  for (const auto& name : suite_bfs_sweep()) {
    const Coo<value_t> m = suite_matrix(name);
    EXPECT_EQ(m.rows, m.cols) << name;
  }
}

TEST(Suite, SpmspvSweepIncludesRectangular) {
  bool any_rect = false;
  for (const auto& name : suite_spmspv_sweep()) {
    const Coo<value_t> m = suite_matrix(name);
    if (m.rows != m.cols) any_rect = true;
  }
  EXPECT_TRUE(any_rect);
}

TEST(Suite, SweepNamesAreValidAndUnique) {
  const std::set<std::string> all = [] {
    const auto v = suite_all_names();
    return std::set<std::string>(v.begin(), v.end());
  }();
  for (const auto& list : {suite_spmspv_sweep(), suite_bfs_sweep()}) {
    std::set<std::string> seen;
    for (const auto& name : list) {
      EXPECT_TRUE(all.count(name)) << name;
      EXPECT_TRUE(seen.insert(name).second) << "duplicate " << name;
    }
  }
}

TEST(Suite, DeterministicAcrossCalls) {
  const auto a = suite_matrix("cant");
  const auto b = suite_matrix("cant");
  EXPECT_EQ(a.row_idx, b.row_idx);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.vals, b.vals);
}

TEST(Suite, StructuralClassesMatchDescriptions) {
  // Road-network analogs must have tiny max degree; social analogs hubs.
  {
    const auto m = suite_matrix("roadNet-TX");
    std::vector<index_t> deg(m.rows, 0);
    for (index_t i = 0; i < m.nnz(); ++i) ++deg[m.row_idx[i]];
    EXPECT_LE(*std::max_element(deg.begin(), deg.end()), 4);
  }
  {
    const auto m = suite_matrix("FB");
    std::vector<index_t> deg(m.rows, 0);
    for (index_t i = 0; i < m.nnz(); ++i) ++deg[m.row_idx[i]];
    const double avg = static_cast<double>(m.nnz()) / m.rows;
    EXPECT_GT(*std::max_element(deg.begin(), deg.end()), 10 * avg);
  }
}

}  // namespace
}  // namespace tilespmspv
