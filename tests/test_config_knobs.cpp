// Tests for configuration knobs across the BFS stack: TileBfs selector
// parameters, baseline configs, and the GSwitch tuner's explore/exploit
// behaviour. Every knob setting must preserve correctness; several also
// have observable scheduling effects that are asserted here.
#include <gtest/gtest.h>

#include "baselines/dobfs.hpp"
#include "baselines/enterprise_bfs.hpp"
#include "baselines/gswitch_bfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "bfs/tile_bfs.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/grid.hpp"

namespace tilespmspv {
namespace {

Csr<value_t> undirected(index_t n, double p, std::uint64_t seed) {
  Coo<value_t> coo = gen_erdos_renyi(n, n, p, seed);
  coo.symmetrize();
  return Csr<value_t>::from_coo(coo);
}

TEST(TileBfsConfig, OrderThresholdControlsTileSize) {
  Csr<value_t> g = undirected(2000, 0.005, 1001);
  TileBfsConfig small_tiles;
  small_tiles.order_threshold = 100000;  // never exceed -> 32
  TileBfsConfig large_tiles;
  large_tiles.order_threshold = 100;  // always exceed -> 64
  EXPECT_EQ(TileBfs(g, small_tiles).tile_size(), 32);
  EXPECT_EQ(TileBfs(g, large_tiles).tile_size(), 64);
  // Both produce identical levels.
  EXPECT_EQ(TileBfs(g, small_tiles).run(0).levels,
            TileBfs(g, large_tiles).run(0).levels);
}

TEST(TileBfsConfig, ExtremeSelectorThresholdsStayCorrect) {
  Csr<value_t> g = undirected(1500, 0.004, 1002);
  const auto expect = serial_bfs(g, 0);
  for (double push_sp : {0.0, 0.5, 1.1}) {
    for (double pull_frac : {0.0, 0.5, 1.0}) {
      for (double pull_factor : {0.0, 1.0, 1e9}) {
        TileBfsConfig cfg;
        cfg.push_csr_sparsity = push_sp;
        cfg.pull_unvisited_frac = pull_frac;
        cfg.pull_frontier_factor = pull_factor;
        TileBfs bfs(g, cfg);
        ASSERT_EQ(bfs.run(0).levels, expect)
            << push_sp << "/" << pull_frac << "/" << pull_factor;
      }
    }
  }
}

TEST(TileBfsConfig, WordFracZeroEnablesPushCsrEarly) {
  // With the word-coverage guard disabled and the density threshold at 0,
  // every non-pull iteration must use Push-CSR.
  Csr<value_t> g = undirected(1000, 0.005, 1003);
  TileBfsConfig cfg;
  cfg.push_csr_sparsity = 0.0;
  cfg.push_csr_frontier_words_frac = 0.0;
  cfg.pull_unvisited_frac = 0.0;  // pull disabled by threshold
  TileBfs bfs(g, cfg);
  const BfsResult r = bfs.run(0);
  for (const auto& it : r.iterations) {
    EXPECT_EQ(it.kernel, BfsKernel::kPushCsr);
  }
  EXPECT_EQ(r.levels, serial_bfs(g, 0));
}

TEST(TileBfsConfig, HugeWordFracDisablesPushCsr) {
  Csr<value_t> g = undirected(1000, 0.02, 1004);
  TileBfsConfig cfg;
  cfg.push_csr_frontier_words_frac = 2.0;  // unreachable coverage
  cfg.kernel_mask = 3;                     // no pull
  TileBfs bfs(g, cfg);
  const BfsResult r = bfs.run(0);
  for (const auto& it : r.iterations) {
    EXPECT_EQ(it.kernel, BfsKernel::kPushCsc);
  }
}

TEST(TileBfsConfig, PullOnlyMaskTraversesCorrectly) {
  // kernel_mask = 4: every iteration is a pull — the slowest but still
  // correct extreme of the Fig. 9 ablation space.
  Csr<value_t> g = undirected(600, 0.01, 1005);
  TileBfsConfig cfg;
  cfg.kernel_mask = 4;
  TileBfs bfs(g, cfg);
  const BfsResult r = bfs.run(3);
  EXPECT_EQ(r.levels, serial_bfs(g, 3));
  for (const auto& it : r.iterations) {
    EXPECT_EQ(it.kernel, BfsKernel::kPullCsc);
  }
}

TEST(TileBfsConfig, ExtractionThresholdExtremes) {
  Csr<value_t> g = undirected(800, 0.003, 1006);
  const auto expect = serial_bfs(g, 0);
  // Everything extracted: the traversal runs entirely on the side pass.
  TileBfsConfig all_side;
  all_side.extract_threshold = 1 << 20;
  TileBfs bfs(g, all_side);
  EXPECT_EQ(bfs.num_tiles(), 0);
  EXPECT_EQ(bfs.side_edge_count(), g.nnz());
  EXPECT_EQ(bfs.run(0).levels, expect);
}

TEST(DobfsConfig, AlphaBetaExtremesStayCorrect) {
  Csr<value_t> g = undirected(1200, 0.004, 1007);
  const auto expect = serial_bfs(g, 0);
  for (double alpha : {1e-6, 15.0, 1e9}) {
    for (double beta : {1e-6, 18.0, 1e9}) {
      DobfsConfig cfg;
      cfg.alpha = alpha;
      cfg.beta = beta;
      ASSERT_EQ(dobfs(g, g, 0, cfg), expect) << alpha << "/" << beta;
    }
  }
}

TEST(EnterpriseConfig, DegreeClassBoundariesStayCorrect) {
  Csr<value_t> g = undirected(900, 0.01, 1008);
  const auto expect = serial_bfs(g, 0);
  for (index_t small : {0, 4, 1000000}) {
    for (index_t large : {1, 64, 1000000}) {
      EnterpriseConfig cfg;
      cfg.small_degree = small;
      cfg.large_degree = large;
      ASSERT_EQ(enterprise_bfs(g, g, 0, cfg), expect)
          << small << "/" << large;
    }
  }
}

TEST(EnterpriseConfig, PullThresholdExtremes) {
  Csr<value_t> g = undirected(700, 0.008, 1009);
  const auto expect = serial_bfs(g, 0);
  for (double pull : {0.0, 0.05, 2.0}) {
    EnterpriseConfig cfg;
    cfg.pull_threshold = pull;
    ASSERT_EQ(enterprise_bfs(g, g, 0, cfg), expect) << pull;
  }
}

TEST(GswitchTuner, ExploresEachStrategyOncePerBucket) {
  GswitchTuner tuner;
  // Fixed features within one density bucket.
  const double density = 0.05, unvisited = 0.9, deg = 10.0;
  std::set<GswitchStrategy> tried;
  for (int i = 0; i < 3; ++i) {
    const GswitchStrategy s = tuner.choose(density, unvisited, deg);
    tried.insert(s);
    tuner.record(density, s, /*vertices_per_ms=*/1.0 + i);
  }
  EXPECT_EQ(tried.size(), 3u);  // all three explored
}

TEST(GswitchTuner, ExploitsBestObservedThroughput) {
  GswitchTuner tuner;
  const double density = 0.05, unvisited = 0.9, deg = 10.0;
  // Train: strategy 1 (bitmap push) is by far the best.
  tuner.record(density, GswitchStrategy::kQueuePush, 1.0);
  tuner.record(density, GswitchStrategy::kBitmapPush, 100.0);
  tuner.record(density, GswitchStrategy::kPull, 2.0);
  EXPECT_EQ(tuner.choose(density, unvisited, deg),
            GswitchStrategy::kBitmapPush);
}

TEST(GswitchTuner, BucketsAreIndependent) {
  GswitchTuner tuner;
  tuner.record(0.2, GswitchStrategy::kPull, 50.0);
  tuner.record(0.2, GswitchStrategy::kQueuePush, 1.0);
  tuner.record(0.2, GswitchStrategy::kBitmapPush, 1.0);
  // A much sparser bucket is still untrained -> exploration, not kPull.
  tuner.record(1e-5, GswitchStrategy::kQueuePush, 1.0);
  const GswitchStrategy s = tuner.choose(1e-5, 0.9, 3.0);
  EXPECT_NE(s, GswitchStrategy::kQueuePush);  // explores an untried one
}

}  // namespace
}  // namespace tilespmspv
