// Tests for the tiled sparse vector (paper §3.2.2 / Fig. 3), including the
// paper's worked example and the O(1) indexing identity.
#include <gtest/gtest.h>

#include "formats/sparse_vector.hpp"
#include "gen/vector_gen.hpp"
#include "tile/tile_vector.hpp"

namespace tilespmspv {
namespace {

TEST(TileVector, PaperFigure3Example) {
  // Length-16 vector, five nonzeros, tiles of length four; the second and
  // fourth tiles are empty and must be marked -1, the others numbered in
  // order of appearance.
  SparseVec<value_t> x(16);
  x.push(0, 1.0);
  x.push(2, 2.0);
  x.push(3, 3.0);
  x.push(9, 4.0);
  x.push(11, 5.0);
  TileVector<value_t> v = TileVector<value_t>::from_sparse(x, 4);
  EXPECT_EQ(v.x_ptr, (std::vector<index_t>{0, kEmptyTile, 1, kEmptyTile}));
  EXPECT_EQ(v.num_nonempty_tiles(), 2);
  // x_tile stores the two non-empty tiles densely.
  EXPECT_EQ(v.x_tile,
            (std::vector<value_t>{1.0, 0.0, 2.0, 3.0, 0.0, 4.0, 0.0, 5.0}));
}

TEST(TileVector, IndexingIdentityFromPaper) {
  // x value is recovered by x_tile[x_ptr[i/nt]*nt + i%nt] for any i in a
  // non-empty tile, and tiles marked -1 contain only zeros.
  SparseVec<value_t> x = gen_sparse_vector(1000, 0.05, 3);
  const index_t nt = 16;
  TileVector<value_t> v = TileVector<value_t>::from_sparse(x, nt);
  const auto dense = x.to_dense();
  for (index_t i = 0; i < x.n; ++i) {
    const index_t slot = v.x_ptr[i / nt];
    if (slot == kEmptyTile) {
      EXPECT_EQ(dense[i], 0.0);
    } else {
      EXPECT_EQ(v.x_tile[slot * nt + i % nt], dense[i]);
    }
    EXPECT_EQ(v.at(i), dense[i]);
  }
}

class TileVectorRoundTrip
    : public ::testing::TestWithParam<std::tuple<index_t, double, index_t>> {};

TEST_P(TileVectorRoundTrip, SparseTiledSparse) {
  const auto [n, sparsity, nt] = GetParam();
  SparseVec<value_t> x = gen_sparse_vector(n, sparsity, 17);
  TileVector<value_t> v = TileVector<value_t>::from_sparse(x, nt);
  SparseVec<value_t> back = v.to_sparse();
  EXPECT_EQ(back.idx, x.idx);
  EXPECT_EQ(back.vals, x.vals);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TileVectorRoundTrip,
    ::testing::Combine(::testing::Values<index_t>(1, 15, 16, 17, 1000, 4099),
                       ::testing::Values(0.001, 0.05, 0.5),
                       ::testing::Values<index_t>(4, 16, 32, 64)));

TEST(TileVector, EmptyVector) {
  SparseVec<value_t> x(64);
  TileVector<value_t> v = TileVector<value_t>::from_sparse(x, 16);
  EXPECT_EQ(v.num_nonempty_tiles(), 0);
  EXPECT_EQ(v.tile_density(), 0.0);
  for (index_t i = 0; i < 64; ++i) EXPECT_EQ(v.at(i), 0.0);
}

TEST(TileVector, AllTilesNonEmpty) {
  SparseVec<value_t> x(32);
  for (index_t i = 0; i < 32; ++i) x.push(i, static_cast<value_t>(i + 1));
  TileVector<value_t> v = TileVector<value_t>::from_sparse(x, 8);
  EXPECT_EQ(v.num_nonempty_tiles(), 4);
  EXPECT_DOUBLE_EQ(v.tile_density(), 1.0);
}

TEST(TileVector, LastPartialTilePadsWithZeros) {
  SparseVec<value_t> x(10);
  x.push(9, 7.0);  // in the final partial tile (tile 2 of size 4)
  TileVector<value_t> v = TileVector<value_t>::from_sparse(x, 4);
  EXPECT_EQ(v.num_tiles(), 3);
  EXPECT_EQ(v.x_ptr[2], 0);
  EXPECT_EQ(v.at(9), 7.0);
  SparseVec<value_t> back = v.to_sparse();
  EXPECT_EQ(back.idx, (std::vector<index_t>{9}));
}

TEST(TileVector, TileDensityMatchesDefinition) {
  SparseVec<value_t> x(160);
  x.push(0, 1.0);
  x.push(150, 1.0);
  TileVector<value_t> v = TileVector<value_t>::from_sparse(x, 16);
  EXPECT_DOUBLE_EQ(v.tile_density(), 0.2);  // 2 of 10 tiles
}

}  // namespace
}  // namespace tilespmspv
