// Tests for the runtime counter layer: thread-local blocks must merge to
// exact totals under concurrent increments (both pool workers and raw
// std::threads), snapshots must be subtractable to isolate a region, and
// reset must zero every thread's block.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace tilespmspv {
namespace {

using obs::Counter;
using obs::CounterSnapshot;

#ifndef TILESPMSPV_NO_COUNTERS

TEST(ObsCounters, SingleThreadDelta) {
  const CounterSnapshot before = obs::counters_snapshot();
  obs::counter_add(Counter::kTilesScanned, 7);
  obs::counter_add(Counter::kTilesScanned, 3);
  obs::counter_add(Counter::kPayloadMacs, 41);
  const CounterSnapshot d = obs::counters_snapshot() - before;
  EXPECT_EQ(d[Counter::kTilesScanned], 10u);
  EXPECT_EQ(d[Counter::kPayloadMacs], 41u);
  EXPECT_EQ(d[Counter::kSideMacs], 0u);
}

TEST(ObsCounters, MergesAcrossPoolWorkers) {
  ThreadPool pool(4);
  const CounterSnapshot before = obs::counters_snapshot();
  constexpr index_t kN = 100000;
  parallel_for(
      kN, [](index_t) { obs::counter_add(Counter::kGatherSlots, 1); }, &pool,
      /*chunk=*/64);
  const CounterSnapshot d = obs::counters_snapshot() - before;
  EXPECT_EQ(d[Counter::kGatherSlots], static_cast<std::uint64_t>(kN));
  // The loop itself is counted too (at least this one; other tests may
  // run concurrently in theory, so >=).
  EXPECT_GE(d[Counter::kPoolLoops], 1u);
}

TEST(ObsCounters, MergesAcrossRawThreads) {
  const CounterSnapshot before = obs::counters_snapshot();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 25000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        obs::counter_add(Counter::kSideMacs, 1);
      }
    });
  }
  for (auto& t : ts) t.join();
  // All worker threads have exited; their blocks must still contribute.
  const CounterSnapshot d = obs::counters_snapshot() - before;
  EXPECT_EQ(d[Counter::kSideMacs], kThreads * kPerThread);
}

TEST(ObsCounters, ResetZeroesEveryBlock) {
  std::thread([] { obs::counter_add(Counter::kTilesComputed, 99); }).join();
  obs::counter_add(Counter::kTilesComputed, 1);
  obs::counters_reset();
  const CounterSnapshot snap = obs::counters_snapshot();
  for (int i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_EQ(snap.v[i], 0u) << obs::counter_name(static_cast<Counter>(i));
  }
}

TEST(ObsCounters, NamesAreStableAndUnique) {
  std::vector<std::string> names;
  for (int i = 0; i < obs::kNumCounters; ++i) {
    names.emplace_back(obs::counter_name(static_cast<Counter>(i)));
  }
  EXPECT_EQ(names.front(), "tiles_scanned");
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

#else  // TILESPMSPV_NO_COUNTERS

TEST(ObsCounters, CompiledOutIsInertAndZero) {
  obs::counter_add(Counter::kTilesScanned, 7);
  const CounterSnapshot snap = obs::counters_snapshot();
  EXPECT_EQ(snap[Counter::kTilesScanned], 0u);
  EXPECT_FALSE(obs::counters_enabled());
  obs::counters_reset();  // must be callable
}

#endif  // TILESPMSPV_NO_COUNTERS

}  // namespace
}  // namespace tilespmspv
