// Adversarial sparsity patterns: structures chosen to hit the tiling
// machinery's corners — dense single rows/columns (hub vertices), exact
// anti-diagonals (every tile touched once), checkerboards (half the tiles
// empty in a regular pattern), tile-aligned blocks, and single-column
// matrices. Every pattern runs through tiling round trips, both SpMSpV
// kernels, and BFS where square.
#include <gtest/gtest.h>

#include "baselines/serial_bfs.hpp"
#include "bfs/tile_bfs.hpp"
#include "core/spmspv.hpp"
#include "core/spmspv_reference.hpp"
#include "gen/vector_gen.hpp"
#include "tile/tile_matrix.hpp"

namespace tilespmspv {
namespace {

struct Pattern {
  const char* name;
  Coo<value_t> coo;
};

std::vector<Pattern> patterns() {
  std::vector<Pattern> out;
  {
    // One dense row: a vertex with in-edges from everyone.
    Coo<value_t> m(200, 200);
    for (index_t c = 0; c < 200; ++c) m.push(100, c, 1.0 + c);
    out.push_back({"dense-row", std::move(m)});
  }
  {
    // One dense column: a vertex with out-edges to everyone.
    Coo<value_t> m(200, 200);
    for (index_t r = 0; r < 200; ++r) m.push(r, 55, 2.0 + r);
    out.push_back({"dense-column", std::move(m)});
  }
  {
    // Anti-diagonal: nnz = n, every diagonal-crossing tile gets exactly
    // nt entries, every vector tile maps to a distinct matrix tile row.
    Coo<value_t> m(256, 256);
    for (index_t i = 0; i < 256; ++i) m.push(i, 255 - i, 1.0);
    out.push_back({"anti-diagonal", std::move(m)});
  }
  {
    // Checkerboard of 16x16 dense blocks.
    Coo<value_t> m(128, 128);
    for (index_t br = 0; br < 8; ++br) {
      for (index_t bc = 0; bc < 8; ++bc) {
        if ((br + bc) % 2) continue;
        for (index_t r = 0; r < 16; ++r) {
          for (index_t c = 0; c < 16; ++c) {
            m.push(br * 16 + r, bc * 16 + c, 0.5);
          }
        }
      }
    }
    out.push_back({"checkerboard", std::move(m)});
  }
  {
    // Single column matrix (m x 1) — the SpGEMM-strawman shape.
    Coo<value_t> m(300, 1);
    for (index_t r = 0; r < 300; r += 3) m.push(r, 0, 1.0);
    out.push_back({"single-column", std::move(m)});
  }
  {
    // Single row matrix (1 x n).
    Coo<value_t> m(1, 300);
    for (index_t c = 1; c < 300; c += 7) m.push(0, c, 1.0);
    out.push_back({"single-row", std::move(m)});
  }
  {
    // Entries only in the last partial tile (n not a tile multiple).
    Coo<value_t> m(105, 105);
    for (index_t i = 96; i < 105; ++i) {
      for (index_t j = 96; j < 105; ++j) m.push(i, j, 1.0);
    }
    out.push_back({"partial-tile-corner", std::move(m)});
  }
  {
    // Arrow matrix: dense first row + first column + diagonal.
    Coo<value_t> m(150, 150);
    for (index_t i = 0; i < 150; ++i) {
      m.push(i, i, 2.0);
      if (i > 0) {
        m.push(0, i, 1.0);
        m.push(i, 0, 1.0);
      }
    }
    out.push_back({"arrow", std::move(m)});
  }
  return out;
}

class AdversarialPatterns : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const std::vector<Pattern>& all() {
    static const std::vector<Pattern> p = patterns();
    return p;
  }
};

TEST_P(AdversarialPatterns, TilingRoundTripsAtEveryTileSize) {
  const Pattern& p = all()[GetParam()];
  Coo<value_t> sorted = p.coo;
  sorted.sort_row_major();
  Csr<value_t> a = Csr<value_t>::from_coo(p.coo);
  for (index_t nt : {16, 32, 64}) {
    for (index_t extract : {0, 2}) {
      TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, nt, extract);
      Coo<value_t> back = t.to_coo();
      ASSERT_EQ(back.row_idx, sorted.row_idx) << p.name << " nt=" << nt;
      ASSERT_EQ(back.vals, sorted.vals) << p.name << " nt=" << nt;
    }
  }
}

TEST_P(AdversarialPatterns, BothKernelsMatchReference) {
  const Pattern& p = all()[GetParam()];
  Csr<value_t> a = Csr<value_t>::from_coo(p.coo);
  for (double sp : {0.01, 0.3}) {
    SparseVec<value_t> x = gen_sparse_vector(a.cols, sp, 1601);
    const SparseVec<value_t> expect = spmspv_rowwise_reference(a, x);
    SpmspvConfig csr_cfg, csc_cfg;
    csr_cfg.kernel = SpmspvKernel::kCsr;
    csc_cfg.kernel = SpmspvKernel::kCsc;
    SpmspvOperator<value_t> op_csr(a, csr_cfg);
    SpmspvOperator<value_t> op_csc(a, csc_cfg);
    EXPECT_TRUE(approx_equal(op_csr.multiply(x), expect))
        << p.name << " csr sp=" << sp;
    EXPECT_TRUE(approx_equal(op_csc.multiply(x), expect))
        << p.name << " csc sp=" << sp;
  }
}

TEST_P(AdversarialPatterns, BfsMatchesSerialWhenSquare) {
  const Pattern& p = all()[GetParam()];
  if (p.coo.rows != p.coo.cols) GTEST_SKIP();
  Coo<value_t> sym = p.coo;
  sym.symmetrize();
  Csr<value_t> a = Csr<value_t>::from_coo(sym);
  const auto expect = serial_bfs(a, 0);
  for (unsigned mask : {1u, 2u, 4u, 7u}) {
    TileBfsConfig cfg;
    cfg.kernel_mask = mask;
    EXPECT_EQ(TileBfs(a, cfg).run(0).levels, expect)
        << p.name << " mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, AdversarialPatterns,
                         ::testing::Range<std::size_t>(0, patterns().size()));

TEST(AdversarialTileCounts, AntiDiagonalTouchesOneTilePerRowTile) {
  Coo<value_t> m(256, 256);
  for (index_t i = 0; i < 256; ++i) m.push(i, 255 - i, 1.0);
  Csr<value_t> a = Csr<value_t>::from_coo(m);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16, 0);
  EXPECT_EQ(t.num_tiles(), 16);  // one tile per tile row
  for (index_t tr = 0; tr < 16; ++tr) {
    EXPECT_EQ(t.tile_row_ptr[tr + 1] - t.tile_row_ptr[tr], 1);
    EXPECT_EQ(t.tile_col_id[t.tile_row_ptr[tr]], 15 - tr);
  }
}

TEST(AdversarialTileCounts, CheckerboardOccupancyIsHalf) {
  Coo<value_t> m(128, 128);
  for (index_t br = 0; br < 8; ++br) {
    for (index_t bc = 0; bc < 8; ++bc) {
      if ((br + bc) % 2) continue;
      for (index_t r = 0; r < 16; ++r) {
        for (index_t c = 0; c < 16; ++c) {
          m.push(br * 16 + r, bc * 16 + c, 1.0);
        }
      }
    }
  }
  Csr<value_t> a = Csr<value_t>::from_coo(m);
  TileMatrix<value_t> t = TileMatrix<value_t>::from_csr(a, 16, 0);
  EXPECT_EQ(t.num_tiles(), 32);
  EXPECT_DOUBLE_EQ(t.tile_occupancy(), 0.5);
}

}  // namespace
}  // namespace tilespmspv
