// Tests for the trace-span layer: spans must be dropped when tracing is
// off, recorded and exported as well-formed Chrome trace-event JSON when
// on (covering SpMSpV phases and BFS iterations), and the per-thread ring
// must overwrite the oldest events instead of growing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bfs/tile_bfs.hpp"
#include "core/tile_spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace tilespmspv {
namespace {

std::string export_trace() {
  std::ostringstream os;
  obs::trace_write_chrome_json(os);
  return os.str();
}

class ObsTraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::trace_disable();
    obs::trace_clear();
  }
};

TEST_F(ObsTraceTest, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(obs::trace_enabled());
  { obs::TraceSpan span("test/noop", "test"); }
  EXPECT_EQ(obs::trace_event_count(), 0u);
  const std::string json = export_trace();
  EXPECT_TRUE(obs::json_parse_ok(json)) << json;
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

#ifndef TILESPMSPV_NO_COUNTERS

TEST_F(ObsTraceTest, RecordsKernelAndBfsSpans) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(600, 600, 0.02, 1801));
  obs::trace_enable();
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);
  TileVector<value_t> xt =
      TileVector<value_t>::from_sparse(gen_sparse_vector(600, 0.05, 1), 16);
  (void)tile_spmspv(tiled, xt);
  TileBfs bfs(a);
  (void)bfs.run(0);
  obs::trace_disable();

  EXPECT_GT(obs::trace_event_count(), 0u);
  const std::string json = export_trace();
  EXPECT_TRUE(obs::json_parse_ok(json));
  EXPECT_NE(json.find("convert/tile_matrix"), std::string::npos);
  EXPECT_NE(json.find("spmspv/phase1_tiled"), std::string::npos);
  EXPECT_NE(json.find("spmspv/phase3_gather"), std::string::npos);
  EXPECT_NE(json.find("bfs/preprocess"), std::string::npos);
  EXPECT_NE(json.find("bfs/iteration"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("displayTimeUnit"), std::string::npos);
}

TEST_F(ObsTraceTest, EveryBfsIterationGetsASpan) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(800, 800, 0.01, 1802));
  TileBfs bfs(a);
  obs::trace_enable();
  const BfsResult r = bfs.run(0);
  obs::trace_disable();
  const std::string json = export_trace();
  std::size_t spans = 0;
  for (std::size_t p = json.find("bfs/iteration"); p != std::string::npos;
       p = json.find("bfs/iteration", p + 1)) {
    ++spans;
  }
  EXPECT_EQ(spans, r.iterations.size());
}

TEST_F(ObsTraceTest, RingOverwritesOldestEvents) {
  obs::trace_enable(/*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    obs::TraceSpan span("test/ring", "test");
  }
  obs::trace_disable();
  // Single recording thread: at most 4 buffered events survive.
  EXPECT_EQ(obs::trace_event_count(), 4u);
  EXPECT_TRUE(obs::json_parse_ok(export_trace()));
}

TEST_F(ObsTraceTest, ClearDropsBufferedEvents) {
  obs::trace_enable();
  { obs::TraceSpan span("test/cleared", "test"); }
  ASSERT_GT(obs::trace_event_count(), 0u);
  obs::trace_clear();
  EXPECT_EQ(obs::trace_event_count(), 0u);
  EXPECT_EQ(export_trace().find("test/cleared"), std::string::npos);
}

TEST_F(ObsTraceTest, WritesLoadableFile) {
  const std::string path =
      ::testing::TempDir() + "tilespmspv_test_trace.json";
  obs::trace_enable();
  { obs::TraceSpan span("test/file", "test", "detail-string"); }
  obs::trace_disable();
  ASSERT_TRUE(obs::trace_write_chrome_json_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(obs::json_parse_ok(buf.str()));
  EXPECT_NE(buf.str().find("test/file"), std::string::npos);
  EXPECT_NE(buf.str().find("detail-string"), std::string::npos);
  std::remove(path.c_str());
}

#else  // TILESPMSPV_NO_COUNTERS

TEST_F(ObsTraceTest, StubsStayInertAndEmitEmptyTrace) {
  obs::trace_enable();
  { obs::TraceSpan span("test/stub", "test"); }
  EXPECT_FALSE(obs::trace_enabled());
  EXPECT_EQ(obs::trace_event_count(), 0u);
  const std::string json = export_trace();
  EXPECT_TRUE(obs::json_parse_ok(json));
  EXPECT_EQ(json.find("test/stub"), std::string::npos);
}

#endif  // TILESPMSPV_NO_COUNTERS

}  // namespace
}  // namespace tilespmspv
