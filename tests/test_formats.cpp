// Tests for the COO/CSR/CSC formats and Matrix Market I/O: round trips,
// duplicate handling, transposition, and parser edge cases.
#include <gtest/gtest.h>

#include <sstream>

#include "formats/coo.hpp"
#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/mm_io.hpp"
#include "formats/sparse_vector.hpp"
#include "gen/erdos_renyi.hpp"

namespace tilespmspv {
namespace {

Coo<value_t> small_matrix() {
  // Paper Fig. 1: a 6x6 matrix with scattered entries.
  Coo<value_t> m(6, 6);
  m.push(0, 1, 1.0);
  m.push(0, 4, 2.0);
  m.push(2, 0, 3.0);
  m.push(3, 3, 4.0);
  m.push(4, 2, 5.0);
  m.push(5, 5, 6.0);
  return m;
}

TEST(Coo, SortRowMajorOrders) {
  Coo<value_t> m(4, 4);
  m.push(3, 1, 1.0);
  m.push(0, 2, 2.0);
  m.push(0, 1, 3.0);
  m.sort_row_major();
  EXPECT_EQ(m.row_idx, (std::vector<index_t>{0, 0, 3}));
  EXPECT_EQ(m.col_idx, (std::vector<index_t>{1, 2, 1}));
  EXPECT_EQ(m.vals, (std::vector<value_t>{3.0, 2.0, 1.0}));
}

TEST(Coo, SumDuplicates) {
  Coo<value_t> m(3, 3);
  m.push(1, 1, 2.0);
  m.push(1, 1, 3.0);
  m.push(2, 0, 1.0);
  m.sort_row_major();
  m.sum_duplicates();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.vals[0], 5.0);
}

TEST(Coo, SymmetrizeMirrorsOffDiagonal) {
  Coo<value_t> m(3, 3);
  m.push(0, 1, 1.0);
  m.push(2, 2, 4.0);
  m.symmetrize();
  EXPECT_EQ(m.nnz(), 3);  // (0,1), (1,0), (2,2)
  Csr<value_t> a = Csr<value_t>::from_coo(m);
  EXPECT_EQ(a.row_nnz(0), 1);
  EXPECT_EQ(a.row_nnz(1), 1);
  EXPECT_EQ(a.col_idx[a.row_ptr[1]], 0);
}

TEST(Csr, FromCooRoundTrip) {
  Coo<value_t> m = small_matrix();
  Csr<value_t> a = Csr<value_t>::from_coo(m);
  Coo<value_t> back = a.to_coo();
  m.sort_row_major();
  EXPECT_EQ(back.row_idx, m.row_idx);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.vals, m.vals);
}

TEST(Csr, RowNnz) {
  Csr<value_t> a = Csr<value_t>::from_coo(small_matrix());
  EXPECT_EQ(a.row_nnz(0), 2);
  EXPECT_EQ(a.row_nnz(1), 0);
  EXPECT_EQ(a.nnz(), 6);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  Coo<value_t> coo = gen_erdos_renyi(200, 150, 0.02, 5);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  Csr<value_t> att = a.transpose().transpose();
  EXPECT_EQ(att.rows, a.rows);
  EXPECT_EQ(att.cols, a.cols);
  EXPECT_EQ(att.row_ptr, a.row_ptr);
  EXPECT_EQ(att.col_idx, a.col_idx);
  EXPECT_EQ(att.vals, a.vals);
}

TEST(Csr, TransposeMovesEntries) {
  Csr<value_t> a = Csr<value_t>::from_coo(small_matrix());
  Csr<value_t> t = a.transpose();
  // (0,1)=1.0 becomes (1,0)=1.0
  bool found = false;
  for (offset_t i = t.row_ptr[1]; i < t.row_ptr[2]; ++i) {
    if (t.col_idx[i] == 0) {
      EXPECT_DOUBLE_EQ(t.vals[i], 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Csc, MatchesTransposedCsr) {
  Coo<value_t> coo = gen_erdos_renyi(100, 80, 0.05, 6);
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  Csc<value_t> c = Csc<value_t>::from_csr(a);
  EXPECT_EQ(c.rows, a.rows);
  EXPECT_EQ(c.cols, a.cols);
  EXPECT_EQ(c.nnz(), a.nnz());
  // Column j of the CSC must hold exactly the entries (r, j) of the CSR.
  for (index_t j = 0; j < c.cols; ++j) {
    for (offset_t i = c.col_ptr[j]; i < c.col_ptr[j + 1]; ++i) {
      const index_t r = c.row_idx[i];
      bool found = false;
      for (offset_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
        if (a.col_idx[k] == j && a.vals[k] == c.vals[i]) found = true;
      }
      ASSERT_TRUE(found) << "entry (" << r << "," << j << ")";
    }
  }
}

TEST(SparseVec, DenseRoundTrip) {
  SparseVec<value_t> x(10);
  x.push(2, 1.5);
  x.push(7, -3.0);
  const auto d = x.to_dense();
  EXPECT_DOUBLE_EQ(d[2], 1.5);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  const auto back = SparseVec<value_t>::from_dense(d);
  EXPECT_EQ(back.idx, x.idx);
  EXPECT_EQ(back.vals, x.vals);
}

TEST(SparseVec, ApproxEqualToleratesRounding) {
  SparseVec<value_t> a(4), b(4);
  a.push(1, 1.0);
  b.push(1, 1.0 + 1e-13);
  EXPECT_TRUE(approx_equal(a, b));
  b.vals[0] = 1.1;
  EXPECT_FALSE(approx_equal(a, b));
}

TEST(SparseVec, SortOrdersEntries) {
  SparseVec<value_t> x(10);
  x.push(7, 1.0);
  x.push(2, 2.0);
  x.sort();
  EXPECT_EQ(x.idx, (std::vector<index_t>{2, 7}));
  EXPECT_EQ(x.vals, (std::vector<value_t>{2.0, 1.0}));
}

TEST(MatrixMarket, ParsesGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 2\n"
      "1 1 2.5\n"
      "3 4 -1\n");
  Coo<value_t> m = read_matrix_market(in);
  EXPECT_EQ(m.rows, 3);
  EXPECT_EQ(m.cols, 4);
  ASSERT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.row_idx[0], 0);
  EXPECT_EQ(m.col_idx[0], 0);
  EXPECT_DOUBLE_EQ(m.vals[1], -1.0);
}

TEST(MatrixMarket, ExpandsSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5\n"
      "3 3 7\n");
  Coo<value_t> m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 3);  // (1,0), (0,1), (2,2)
}

TEST(MatrixMarket, PatternGetsUnitValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 2\n");
  Coo<value_t> m = read_matrix_market(in);
  ASSERT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.vals[0], 1.0);
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::istringstream in("%%NotMatrixMarket x y z w\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfRangeIndex) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, ParsesCrlfLineEndings) {
  // Files written on Windows carry \r\n; the parser must strip the \r
  // instead of folding it into the last token ("2.5\r" -> parse error, or
  // worse, a banner keyword that never matches).
  std::istringstream crlf(
      "%%MatrixMarket matrix coordinate real general\r\n"
      "% a comment\r\n"
      "3 4 2\r\n"
      "1 1 2.5\r\n"
      "3 4 -1\r\n");
  Coo<value_t> m = read_matrix_market(crlf);
  std::istringstream lf(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 2\n"
      "1 1 2.5\n"
      "3 4 -1\n");
  Coo<value_t> want = read_matrix_market(lf);
  EXPECT_EQ(m.rows, want.rows);
  EXPECT_EQ(m.cols, want.cols);
  EXPECT_EQ(m.row_idx, want.row_idx);
  EXPECT_EQ(m.col_idx, want.col_idx);
  EXPECT_EQ(m.vals, want.vals);
}

TEST(MatrixMarket, RejectsDimsOutOfIndexRange) {
  // Dims that overflow index_t must throw, not truncate to 32 bits.
  std::istringstream rows_big(
      "%%MatrixMarket matrix coordinate real general\n"
      "99999999999 3 1\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(rows_big), std::runtime_error);
  std::istringstream cols_big(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 99999999999 1\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(cols_big), std::runtime_error);
}

TEST(MatrixMarket, RejectsNegativeSizeLine) {
  std::istringstream neg_rows(
      "%%MatrixMarket matrix coordinate real general\n"
      "-3 3 1\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(neg_rows), std::runtime_error);
  std::istringstream neg_entries(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 -1\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(neg_entries), std::runtime_error);
}

TEST(MatrixMarket, RejectsEntryCountExceedingStream) {
  // An entry count far beyond what the remaining bytes could encode must
  // be rejected before the arrays are reserved (pre-allocation DoS).
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 888888888888\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  Coo<value_t> m = gen_erdos_renyi(50, 40, 0.05, 7);
  std::ostringstream out;
  write_matrix_market(out, m);
  std::istringstream in(out.str());
  Coo<value_t> back = read_matrix_market(in);
  EXPECT_EQ(back.rows, m.rows);
  EXPECT_EQ(back.row_idx, m.row_idx);
  EXPECT_EQ(back.col_idx, m.col_idx);
  for (index_t i = 0; i < m.nnz(); ++i) {
    EXPECT_NEAR(back.vals[i], m.vals[i], 1e-6);
  }
}

}  // namespace
}  // namespace tilespmspv
