// Differential BFS fuzzing: random (graph, source, configuration) draws,
// TileBFS compared against the serial queue reference on each. The sweep
// covers every tile width (forced_tile_size 16/32/64), every forced
// kernel of the Fig. 9 ablation, and both extraction settings, so the
// SIMD word kernels, the work-weighted frontier scheduling and the
// incremental level tallies are all exercised on inputs nobody
// hand-picked. Seeds are fixed, so failures replay exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baselines/serial_bfs.hpp"
#include "bfs/tile_bfs.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "util/bitkernels.hpp"
#include "util/prng.hpp"
#include "util/simd.hpp"

namespace tilespmspv {
namespace {

// TileBFS reads the adjacency convention A[i][j] != 0 <=> edge j -> i,
// so on directed draws the serial reference (which scans out-edge rows)
// runs on the transpose; on symmetric draws both coincide.
struct GraphDraw {
  Csr<value_t> adjacency;  // what TileBfs consumes
  Csr<value_t> out_edges;  // what serial_bfs consumes
};

GraphDraw random_graph(Prng& rng) {
  const auto n = static_cast<index_t>(40 + rng.next_below(700));
  const double density = rng.next_double(0.001, 0.05);
  const std::uint64_t seed = rng.next_u64();
  Coo<value_t> coo = gen_erdos_renyi(n, n, density, seed);
  const bool directed = rng.next_below(2) == 0;  // directed half the time
  if (!directed) coo.symmetrize();
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  Csr<value_t> out = directed ? a.transpose() : a;
  return {std::move(a), std::move(out)};
}

TEST(BfsFuzz, TileBfsMatchesSerialAcrossWidthsKernelsAndExtraction) {
  Prng meta_rng(0xBF5F);
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    const GraphDraw g = random_graph(meta_rng);
    const Csr<value_t>& a = g.adjacency;
    const auto src = static_cast<index_t>(meta_rng.next_below(
        static_cast<std::uint64_t>(a.rows)));
    const auto expect = serial_bfs(g.out_edges, src);
    for (int nt : {16, 32, 64}) {
      for (unsigned mask : {1u, 2u, 4u, 7u}) {
        for (index_t extract : {index_t{0}, index_t{2}}) {
          SCOPED_TRACE("round " + std::to_string(round) + " n=" +
                       std::to_string(a.rows) + " src=" +
                       std::to_string(src) + " nt=" + std::to_string(nt) +
                       " mask=" + std::to_string(mask) + " extract=" +
                       std::to_string(extract));
          TileBfsConfig cfg;
          cfg.forced_tile_size = nt;
          cfg.kernel_mask = mask;
          cfg.extract_threshold = extract;
          TileBfs bfs(a, cfg, &pool);
          ASSERT_EQ(bfs.tile_size(), nt);
          ASSERT_EQ(bfs.run(src).levels, expect);
        }
      }
    }
  }
}

TEST(BfsFuzz, ForcedTileSizeRejectsInvalidValues) {
  const Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(50, 50, 0.05, 1));
  for (int nt : {1, 8, 24, 128}) {
    TileBfsConfig cfg;
    cfg.forced_tile_size = nt;
    EXPECT_THROW(TileBfs(a, cfg), std::invalid_argument) << nt;
  }
}

// One workspace reused across graphs of different sizes, tile widths and
// sources must behave exactly like a fresh workspace per query: the
// end-of-run invariant (all scratch bit vectors zeroed, slot lists
// cleared) is what steady-state reuse relies on.
TEST(BfsFuzz, WorkspaceReuseMatchesOneShotRuns) {
  Prng meta_rng(0x5EED);
  ThreadPool pool(4);
  BfsWorkspace ws;
  for (int round = 0; round < 8; ++round) {
    const GraphDraw g = random_graph(meta_rng);
    TileBfsConfig cfg;
    cfg.forced_tile_size = std::vector<int>{16, 32, 64}[round % 3];
    TileBfs bfs(g.adjacency, cfg, &pool);
    for (int q = 0; q < 3; ++q) {
      const auto src = static_cast<index_t>(meta_rng.next_below(
          static_cast<std::uint64_t>(g.adjacency.rows)));
      SCOPED_TRACE("round " + std::to_string(round) + " q=" +
                   std::to_string(q) + " src=" + std::to_string(src));
      const BfsResult reused = bfs.run(src, ws);
      const BfsResult fresh = bfs.run(src);
      ASSERT_EQ(reused.levels, fresh.levels);
      ASSERT_EQ(reused.levels, serial_bfs(g.out_edges, src));
    }
  }
}

// Scale-free graph with hubs: stresses the weighted frontier chunking
// (hub columns get their own chunks) and the hybrid produced-slot merge.
TEST(BfsFuzz, RmatHubGraphsAcrossWidths) {
  Prng meta_rng(0xA11CE);
  ThreadPool pool(4);
  BfsWorkspace ws;
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    RmatParams p;
    p.scale = 9;
    p.edge_factor = 10;
    const Csr<value_t> a = Csr<value_t>::from_coo(gen_rmat(p, seed));
    const auto src = static_cast<index_t>(meta_rng.next_below(
        static_cast<std::uint64_t>(a.rows)));
    const auto expect = serial_bfs(a, src);
    for (int nt : {16, 32, 64}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " nt=" +
                   std::to_string(nt) + " src=" + std::to_string(src));
      TileBfsConfig cfg;
      cfg.forced_tile_size = nt;
      TileBfs bfs(a, cfg, &pool);
      ASSERT_EQ(bfs.run(src, ws).levels, expect);
    }
  }
}

// The bit-kernel layer guarantees a scalar twin with identical results
// for every word kernel; this fuzzes the active tier (AVX2, SSE2 or
// scalar — whatever the binary was built with) against the twins over
// random word spans per tile width, hitting n = 0, 1 and vector-tail
// lengths. Equality is exact: the kernels are pure bit arithmetic.
template <typename W>
void fuzz_bit_kernel_twins(std::uint64_t seed) {
  Prng rng(seed);
  for (int round = 0; round < 150; ++round) {
    const auto n = static_cast<index_t>(rng.next_below(70));  // covers 0, 1
    std::vector<W> a(n), b(n);
    for (index_t i = 0; i < n; ++i) {
      // Mix dense, sparse and zero words so the nonzero-block scans and
      // the or_reduce folds see both early-outs and full work.
      const int kind = static_cast<int>(rng.next_below(4));
      const W r = static_cast<W>(rng.next_u64());
      a[i] = kind == 0 ? W{0} : kind == 1 ? static_cast<W>(r & (r >> 1) & (r >> 3))
                                          : r;
      b[i] = static_cast<W>(rng.next_u64());
    }
    SCOPED_TRACE("round " + std::to_string(round) + " n=" +
                 std::to_string(n) + " width=" +
                 std::to_string(sizeof(W) * 8));

    ASSERT_EQ(bitk::popcount_words(a.data(), n),
              bitk::popcount_words_scalar(a.data(), n));
    ASSERT_EQ(bitk::or_reduce(a.data(), n),
              bitk::or_reduce_scalar(a.data(), n));
    ASSERT_EQ(bitk::any_nonzero(a.data(), n),
              bitk::any_nonzero_scalar(a.data(), n));

    std::vector<W> dst_v(b), dst_s(b);
    bitk::or_into(dst_v.data(), a.data(), n);
    bitk::or_into_scalar(dst_s.data(), a.data(), n);
    ASSERT_EQ(dst_v, dst_s);

    std::vector<W> out_v(n), out_s(n);
    bitk::andnot_words(a.data(), b.data(), out_v.data(), n);
    bitk::andnot_words_scalar(a.data(), b.data(), out_s.data(), n);
    ASSERT_EQ(out_v, out_s);

    const auto base = static_cast<index_t>(rng.next_below(1000));
    std::vector<index_t> slots_v(n), slots_s(n);
    const index_t kv =
        bitk::collect_nonzero(a.data(), n, base, slots_v.data());
    const index_t ks =
        bitk::collect_nonzero_scalar(a.data(), n, base, slots_s.data());
    ASSERT_EQ(kv, ks);
    slots_v.resize(static_cast<std::size_t>(kv));
    slots_s.resize(static_cast<std::size_t>(ks));
    ASSERT_EQ(slots_v, slots_s);

    // and_broadcast_hits reads exactly NT mask words.
    constexpr index_t kNt = static_cast<index_t>(sizeof(W)) * 8;
    std::vector<W> masks(kNt);
    for (index_t i = 0; i < kNt; ++i) {
      masks[i] = static_cast<W>(rng.next_u64());
      if (rng.next_below(3) == 0) masks[i] = 0;
    }
    const W x = static_cast<W>(rng.next_u64());
    ASSERT_EQ(bitk::and_broadcast_hits(masks.data(), x),
              bitk::and_broadcast_hits_scalar(masks.data(), x));
    ASSERT_EQ(bitk::and_broadcast_hits(masks.data(), W{0}), W{0});
  }
}

TEST(BfsFuzz, BitKernelTwinsMatch16) {
  SCOPED_TRACE(std::string("active isa: ") + simd::active_isa());
  fuzz_bit_kernel_twins<std::uint16_t>(0xB16);
}

TEST(BfsFuzz, BitKernelTwinsMatch32) {
  SCOPED_TRACE(std::string("active isa: ") + simd::active_isa());
  fuzz_bit_kernel_twins<std::uint32_t>(0xB32);
}

TEST(BfsFuzz, BitKernelTwinsMatch64) {
  SCOPED_TRACE(std::string("active isa: ") + simd::active_isa());
  fuzz_bit_kernel_twins<std::uint64_t>(0xB64);
}

}  // namespace
}  // namespace tilespmspv
