// Tests for the format advisor: the recommendations must match the
// structural classes the ablation benches characterized.
#include <gtest/gtest.h>

#include "gen/banded.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/grid.hpp"
#include "gen/suite.hpp"
#include "tile/format_advisor.hpp"

namespace tilespmspv {
namespace {

TEST(FormatAdvisor, DenseTileFemGetsIntraCsr) {
  BandedParams p;
  p.n = 4000;
  p.block = 6;
  p.band_blocks = 5;
  const Csr<value_t> a = Csr<value_t>::from_coo(gen_banded(p, 1801));
  const FormatAdvice advice = advise_format(a);
  EXPECT_EQ(advice.family, StorageFamily::kTiled);
  EXPECT_EQ(advice.layout, IntraTileLayout::kIntraCsr);
}

TEST(FormatAdvisor, RoadNetworkGetsPackedByte) {
  const Csr<value_t> a =
      Csr<value_t>::from_coo(gen_grid2d(150, 150, 0.85, 1802));
  const FormatAdvice advice = advise_format(a);
  EXPECT_EQ(advice.family, StorageFamily::kTiled);
  EXPECT_EQ(advice.layout, IntraTileLayout::kPackedByte);
}

TEST(FormatAdvisor, UniformScatterGetsPlainCsr) {
  const Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(20000, 20000, 3e-4, 1803));
  const FormatAdvice advice = advise_format(a);
  EXPECT_EQ(advice.family, StorageFamily::kPlainCsr);
}

TEST(FormatAdvisor, LargeOrderPrefersBiggerTiles) {
  AdvisorThresholds th;
  th.large_order = 1000;
  const Csr<value_t> a =
      Csr<value_t>::from_coo(gen_grid2d(60, 60, 1.0, 1804));  // n = 3600
  const FormatAdvice advice = advise_format(a, th);
  EXPECT_EQ(advice.nt, 32);
}

TEST(FormatAdvisor, ManyNearEmptyTilesRaisesExtraction) {
  // Band + scatter: more than half the tiles hold <= 2 nonzeros.
  const Csr<value_t> a =
      Csr<value_t>::from_coo(suite_matrix("band-scattered"));
  const FormatAdvice advice = advise_format(a);
  EXPECT_EQ(advice.family, StorageFamily::kTiled);
  EXPECT_EQ(advice.extract_threshold, 4);
}

TEST(FormatAdvisor, EmptyMatrixStaysTiledDefault) {
  Csr<value_t> a(100, 100);
  const FormatAdvice advice = advise_format(a);
  EXPECT_EQ(advice.family, StorageFamily::kTiled);
  EXPECT_FALSE(std::string(advice.rationale).empty());
}

TEST(FormatAdvisor, RationaleAlwaysSet) {
  for (const char* name : {"cant", "roadNet-TX", "er-medium", "in-2004"}) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    EXPECT_FALSE(std::string(advise_format(a).rationale).empty()) << name;
  }
}

}  // namespace
}  // namespace tilespmspv
