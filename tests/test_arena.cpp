// Placement-layer unit tests (parallel/arena.hpp): ArrayBuf owned/view
// semantics, Arena block alignment across policies, NUMA topology parsing,
// ShardPlan balance, the sharded dispatch loop's exactly-once coverage,
// and TileMatrix/BitTileGraph::place() round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>  // lint:allow(raw-atomic) -- exactly-once coverage check
#include <cstdint>
#include <memory>
#include <vector>

#include "formats/csr.hpp"
#include "gen/erdos_renyi.hpp"
#include "parallel/arena.hpp"
#include "parallel/thread_pool.hpp"
#include "tile/bit_tile_graph.hpp"
#include "tile/tile_matrix.hpp"
#include "util/types.hpp"

namespace tilespmspv {
namespace {

TEST(ArrayBuf, OwnedModeMirrorsVector) {
  ArrayBuf<int> b;
  EXPECT_TRUE(b.empty());
  b.push_back(1);
  b.push_back(2);
  b.push_back(3);
  EXPECT_FALSE(b.is_view());
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[1], 2);
  b[1] = 9;
  EXPECT_EQ(b[1], 9);
  b.back() = 7;
  EXPECT_EQ(b.back(), 7);
  EXPECT_EQ(b.front(), 1);
  b.resize(5);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b[4], 0);
}

TEST(ArrayBuf, VectorAdoptionAndEquality) {
  std::vector<int> v{4, 5, 6};
  ArrayBuf<int> b = std::vector<int>(v);
  EXPECT_TRUE(b == v);
  EXPECT_TRUE(v == b);
  ArrayBuf<int> c;
  c = std::vector<int>(v);
  EXPECT_TRUE(b == c);
  c.push_back(7);
  EXPECT_FALSE(b == c);
}

TEST(ArrayBuf, ViewAliasesWithoutCopy) {
  const std::vector<int> backing{10, 20, 30, 40};
  ArrayBuf<int> b = ArrayBuf<int>::view(backing.data(), backing.size());
  const ArrayBuf<int>& rb = b;  // the read surface is the const overloads
  EXPECT_TRUE(b.is_view());
  EXPECT_EQ(rb.data(), backing.data());  // zero-copy: same pointer
  EXPECT_EQ(rb.size(), 4u);
  EXPECT_EQ(rb[2], 30);
  EXPECT_EQ(rb.front(), 10);
  EXPECT_EQ(rb.back(), 40);
  EXPECT_TRUE(b == backing);

  // Copying a view yields another view over the same memory.
  ArrayBuf<int> c = b;
  const ArrayBuf<int>& rc = c;
  EXPECT_TRUE(c.is_view());
  EXPECT_EQ(rc.data(), backing.data());

  // make_owned detaches: the data survives, the aliasing stops.
  c.make_owned();
  EXPECT_FALSE(c.is_view());
  EXPECT_NE(rc.data(), backing.data());
  EXPECT_TRUE(c == backing);

  // Whole-replacement rebinds a view to owned storage.
  b = std::vector<int>{1, 2};
  EXPECT_FALSE(b.is_view());
  EXPECT_EQ(b.size(), 2u);
}

TEST(ArrayBuf, MoveFromViewLeavesSourceEmptyOwned) {
  const std::vector<int> backing{1, 2, 3};
  ArrayBuf<int> b = ArrayBuf<int>::view(backing.data(), backing.size());
  ArrayBuf<int> c = std::move(b);
  EXPECT_TRUE(c.is_view());
  EXPECT_EQ(static_cast<const ArrayBuf<int>&>(c).data(), backing.data());
  EXPECT_FALSE(b.is_view());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.empty());
}

TEST(Arena, BlocksAreAlignedAndDistinct) {
  for (const Placement p : {Placement::kHeap, Placement::kFirstTouch}) {
    Arena arena(p);
    void* a = arena.allocate(100);
    void* b = arena.allocate(0);  // zero-size requests still get a block
    void* c = arena.allocate(1 << 20);
    for (void* q : {a, b, c}) {
      EXPECT_NE(q, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % Arena::kAlign, 0u)
          << placement_name(p);
    }
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_GE(arena.bytes_allocated(), std::size_t{100} + (1 << 20));
    // First-touch pages must be writable after allocation.
    static_cast<char*>(c)[0] = 1;
    static_cast<char*>(c)[(1 << 20) - 1] = 2;
  }
}

TEST(NumaTopology, ParseCpulist) {
  EXPECT_EQ(NumaTopology::parse_cpulist("0-3"),
            (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(NumaTopology::parse_cpulist("0,2,4"),
            (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(NumaTopology::parse_cpulist("0-1,8-9"),
            (std::vector<int>{0, 1, 8, 9}));
  EXPECT_TRUE(NumaTopology::parse_cpulist("garbage").empty());
  EXPECT_TRUE(NumaTopology::parse_cpulist("").empty());
}

TEST(NumaTopology, DetectAlwaysYieldsANode) {
  const NumaTopology t = NumaTopology::detect();
  ASSERT_GE(t.num_nodes(), 1);
  for (const NumaNode& n : t.nodes) {
    EXPECT_FALSE(n.cpus.empty());
  }
}

TEST(ShardPlan, UniformChunksBalance) {
  const auto plan = make_shard_plan(64, 4, [](index_t) { return 100u; });
  ASSERT_EQ(plan.chunk_bounds.size(), 5u);
  EXPECT_EQ(plan.chunk_bounds.front(), 0);
  EXPECT_EQ(plan.chunk_bounds.back(), 64);
  for (int s = 0; s < 4; ++s) {
    EXPECT_LE(plan.chunk_bounds[s], plan.chunk_bounds[s + 1]);
    EXPECT_EQ(plan.bytes[s], 1600u);
  }
  EXPECT_DOUBLE_EQ(plan.imbalance(), 1.0);
}

TEST(ShardPlan, SkewedChunksStayContiguousAndCovering) {
  // One huge chunk: bounds stay monotone, every chunk lands in exactly one
  // shard (total payload conserved), and the big chunk is never split.
  const auto plan = make_shard_plan(16, 4, [](index_t c) {
    return c == 0 ? 10000u : 10u;
  });
  EXPECT_EQ(plan.chunk_bounds.front(), 0);
  EXPECT_EQ(plan.chunk_bounds.back(), 16);
  for (int s = 0; s < 4; ++s) {
    EXPECT_LE(plan.chunk_bounds[s], plan.chunk_bounds[s + 1]);
  }
  std::uint64_t total = 0, max = 0;
  for (std::uint64_t b : plan.bytes) {
    total += b;
    max = std::max(max, b);
  }
  EXPECT_EQ(total, 10000u + 15u * 10u);
  EXPECT_GE(max, 10000u);  // the heavy chunk stays whole in one shard
}

TEST(ShardPlan, DegenerateInputs) {
  const auto empty = make_shard_plan(0, 4, [](index_t) { return 1u; });
  EXPECT_EQ(empty.chunk_bounds.back(), 0);
  EXPECT_DOUBLE_EQ(empty.imbalance(), 1.0);
  const auto fewer = make_shard_plan(2, 8, [](index_t) { return 1u; });
  EXPECT_EQ(fewer.chunk_bounds.back(), 2);  // some shards legitimately empty
}

TEST(ThreadPool, ShardedDispatchCoversEveryChunkOnce) {
  ThreadPool pool(4);
  pool.configure_shards(4, /*pin_threads=*/false);
  ASSERT_EQ(pool.num_shards(), 4);
  constexpr index_t kN = 1000;
  std::vector<index_t> bounds{0, 200, 500, 900, kN};
  std::vector<std::atomic<int>> hits(kN);  // lint:allow(raw-atomic)
  std::vector<std::atomic<int>> shard_of(kN);  // lint:allow(raw-atomic)
  for (auto& h : hits) h.store(0);
  pool.parallel_shard_ranges(bounds, 7, [&](index_t begin, index_t end) {
    const int s = ThreadPool::current_shard();
    for (index_t i = begin; i < end; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
      shard_of[static_cast<std::size_t>(i)].store(s);
    }
  });
  for (index_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "chunk " << i;
  }
  // Chunks never cross a shard boundary: every index inside a shard's
  // range ran attributed to that shard (stealing preserves attribution).
  for (int s = 0; s < 4; ++s) {
    for (index_t i = bounds[s]; i < bounds[s + 1]; ++i) {
      EXPECT_EQ(shard_of[static_cast<std::size_t>(i)].load(), s);
    }
  }
  pool.configure_shards(1);
  EXPECT_EQ(pool.num_shards(), 1);
}

TEST(Place, TileMatrixRoundTripAcrossPolicies) {
  const auto a = Csr<value_t>::from_coo(gen_erdos_renyi(300, 280, 0.02, 77));
  const TileMatrix<value_t> base = TileMatrix<value_t>::from_csr(a, 16, 2);
  for (const Placement p : {Placement::kHeap, Placement::kFirstTouch}) {
    TileMatrix<value_t> placed = base;
    placed.place(std::make_shared<Arena>(p));
    EXPECT_EQ(placed.placed, p);
    EXPECT_NE(placed.storage, nullptr);
    EXPECT_TRUE(placed.vals.is_view());
    EXPECT_TRUE(placed.tile_row_ptr == base.tile_row_ptr);
    EXPECT_TRUE(placed.tile_col_id == base.tile_col_id);
    EXPECT_TRUE(placed.tile_nnz_ptr == base.tile_nnz_ptr);
    EXPECT_TRUE(placed.vals == base.vals);
    EXPECT_TRUE(placed.local_col == base.local_col);
    // The placed structure still answers queries.
    const Coo<value_t> c1 = base.to_coo();
    const Coo<value_t> c2 = placed.to_coo();
    EXPECT_EQ(c1.row_idx, c2.row_idx);
    EXPECT_EQ(c1.col_idx, c2.col_idx);
    EXPECT_EQ(c1.vals, c2.vals);
  }
}

TEST(Place, BitTileGraphRoundTrip) {
  const auto a = Csr<value_t>::from_coo(gen_erdos_renyi(400, 400, 0.01, 78));
  const BitTileGraph<32> base = BitTileGraph<32>::from_csr(a, 2);
  BitTileGraph<32> placed = base;
  placed.place(std::make_shared<Arena>(Placement::kFirstTouch));
  EXPECT_EQ(placed.placed, Placement::kFirstTouch);
  EXPECT_NE(placed.storage, nullptr);
  EXPECT_TRUE(placed.csr_masks.is_view());
  EXPECT_TRUE(placed.csr_tile_ptr == base.csr_tile_ptr);
  EXPECT_TRUE(placed.csr_tile_col == base.csr_tile_col);
  EXPECT_TRUE(placed.csr_masks == base.csr_masks);
  EXPECT_TRUE(placed.side_dst == base.side_dst);
}

}  // namespace
}  // namespace tilespmspv
