// Corruption fuzzing of the serialized trust boundary (>= 1000 mutated
// streams). Each round serializes a known-good structure, applies one
// mutation — a bit flip, a random byte overwrite, a truncation, or an
// 8-byte-aligned field overwrite with an "interesting" integer — and
// requires the load to end in exactly one of two states:
//   - it throws std::runtime_error (a clean rejection), or
//   - it succeeds, in which case the loaded structure must pass its
//     validator and reserialize byte-idempotently (write/read/write gives
//     identical bytes), i.e. the bytes decoded to a fully valid structure.
// Any other exception (bad_alloc from an unbounded allocation, a sanitizer
// abort, a crash) fails the test — that is the bug class this PR closes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "formats/mm_io.hpp"
#include "formats/serialize.hpp"
#include "formats/tile_file.hpp"
#include "formats/validate.hpp"
#include "gen/erdos_renyi.hpp"
#include "util/prng.hpp"

namespace tilespmspv {
namespace {

enum class Outcome { kRejected, kLoadedValid };

/// Loads a mutated binary stream as the given structure; on success, checks
/// the validator accepts it and that it reserializes idempotently.
template <typename Load, typename Validate, typename Write>
Outcome drive(const std::string& bytes, Load load, Validate validate,
              Write write) {
  std::istringstream in(bytes);
  decltype(load(in)) loaded;
  try {
    loaded = load(in);
  } catch (const std::runtime_error&) {
    return Outcome::kRejected;
  }
  // Loaded without error: the structure must be fully valid...
  const ValidationResult r = validate(loaded);
  EXPECT_TRUE(r.ok()) << "loaded an invalid structure: " << r.message();
  // ...and serialization must be a fixed point (write/read/write).
  std::ostringstream out1;
  write(out1, loaded);
  std::istringstream in2(out1.str());
  const auto reloaded = load(in2);
  std::ostringstream out2;
  write(out2, reloaded);
  EXPECT_EQ(out1.str(), out2.str()) << "reserialization is not idempotent";
  return Outcome::kLoadedValid;
}

Outcome drive_csr(const std::string& bytes) {
  return drive(
      bytes, [](std::istream& in) { return read_csr(in); },
      [](const Csr<value_t>& a) { return validate_csr(a); },
      [](std::ostream& out, const Csr<value_t>& a) { write_csr(out, a); });
}

Outcome drive_tile(const std::string& bytes) {
  return drive(
      bytes, [](std::istream& in) { return read_tile_matrix(in); },
      [](const TileMatrix<value_t>& m) { return validate_tile_matrix(m); },
      [](std::ostream& out, const TileMatrix<value_t>& m) {
        write_tile_matrix(out, m);
      });
}

std::string serialized_csr() {
  std::ostringstream out;
  write_csr(out, Csr<value_t>::from_coo(gen_erdos_renyi(90, 70, 0.05, 4201)));
  return out.str();
}

std::string serialized_tile() {
  // Dense-ish core plus isolated entries in the last tile column, so the
  // extract threshold reliably produces a non-empty side part.
  Coo<value_t> coo = gen_erdos_renyi(120, 96, 0.04, 4202);
  coo.cols = 110;
  coo.push(5, 100, 1.0);
  coo.push(40, 105, -3.0);
  coo.push(77, 99, 2.5);
  coo.push(119, 109, 0.25);
  const auto a = Csr<value_t>::from_coo(coo);
  const auto m = TileMatrix<value_t>::from_csr(a, 16, 2);
  EXPECT_GT(m.extracted.nnz(), 0) << "fixture must exercise the side part";
  std::ostringstream out;
  write_tile_matrix(out, m);
  return out.str();
}

/// Integer values known to expose length/dimension handling bugs.
const std::int64_t kInterestingValues[] = {
    0,
    1,
    -1,
    255,
    65536,
    std::int64_t{1} << 31,
    (std::int64_t{1} << 31) - 1,
    std::int64_t{1} << 40,
    std::numeric_limits<std::int64_t>::max(),
    std::numeric_limits<std::int64_t>::min(),
};

struct FuzzStats {
  int rejected = 0;
  int loaded = 0;
  int total() const { return rejected + loaded; }
  void count(Outcome o) {
    if (o == Outcome::kRejected) {
      ++rejected;
    } else {
      ++loaded;
    }
  }
};

template <typename Drive>
FuzzStats fuzz_binary(const std::string& base, Drive drive_fn,
                      std::uint64_t seed, int bit_flips, int byte_writes,
                      int truncations, int field_writes) {
  Prng rng(seed);
  FuzzStats stats;
  for (int i = 0; i < bit_flips; ++i) {
    std::string s = base;
    const auto pos = static_cast<std::size_t>(rng.next_below(s.size()));
    s[pos] = static_cast<char>(s[pos] ^ (1u << rng.next_below(8)));
    stats.count(drive_fn(s));
  }
  for (int i = 0; i < byte_writes; ++i) {
    std::string s = base;
    const auto pos = static_cast<std::size_t>(rng.next_below(s.size()));
    s[pos] = static_cast<char>(rng.next_below(256));
    stats.count(drive_fn(s));
  }
  for (int i = 0; i < truncations; ++i) {
    const auto len = static_cast<std::size_t>(rng.next_below(base.size()));
    stats.count(drive_fn(base.substr(0, len)));
  }
  // Overwrite 8-byte-aligned positions (where every length and dimension
  // field lives) with interesting integers.
  const std::size_t slots = base.size() / 8;
  for (int i = 0; i < field_writes; ++i) {
    std::string s = base;
    const std::size_t slot = static_cast<std::size_t>(rng.next_below(slots));
    const std::int64_t v =
        kInterestingValues[rng.next_below(std::size(kInterestingValues))];
    std::memcpy(&s[slot * 8], &v, sizeof(v));
    stats.count(drive_fn(s));
  }
  return stats;
}

TEST(FuzzCorruption, TileMatrixStreams) {
  const std::string base = serialized_tile();
  // Sanity: the unmutated stream loads and is valid.
  EXPECT_EQ(drive_tile(base), Outcome::kLoadedValid);
  const FuzzStats stats =
      fuzz_binary(base, drive_tile, 0xD15EA5E, 320, 120, 80, 140);
  EXPECT_EQ(stats.total(), 660);
  // A substantial share of mutations must be caught. (Mutations landing in
  // the vals payload legitimately load as a different-but-valid structure,
  // so 100% rejection is neither possible nor the goal.)
  EXPECT_GT(stats.rejected, stats.total() / 4)
      << "rejected " << stats.rejected << " of " << stats.total();
  EXPECT_GT(stats.loaded, 0);
}

TEST(FuzzCorruption, CsrStreams) {
  const std::string base = serialized_csr();
  EXPECT_EQ(drive_csr(base), Outcome::kLoadedValid);
  const FuzzStats stats =
      fuzz_binary(base, drive_csr, 0xC0FFEE, 200, 80, 50, 90);
  EXPECT_EQ(stats.total(), 420);
  EXPECT_GT(stats.rejected, stats.total() / 4)
      << "rejected " << stats.rejected << " of " << stats.total();
  EXPECT_GT(stats.loaded, 0);
}

TEST(FuzzCorruption, HeaderFieldSweep) {
  // Deterministically place every interesting value in every header slot
  // of both formats (dims, nt, and the first array length), so the checked
  // index casts and the stream-size budget are each hit directly.
  const std::string tile = serialized_tile();
  const std::string csr = serialized_csr();
  int runs = 0;
  for (std::size_t slot = 1; slot <= 5; ++slot) {  // bytes 8..47
    for (const std::int64_t v : kInterestingValues) {
      std::string s = tile;
      std::memcpy(&s[slot * 8], &v, sizeof(v));
      drive_tile(s);
      ++runs;
      if (slot <= 3) {
        std::string c = csr;
        std::memcpy(&c[slot * 8], &v, sizeof(v));
        drive_csr(c);
        ++runs;
      }
    }
  }
  EXPECT_EQ(runs, 80);
}

TEST(FuzzCorruption, MatrixMarketText) {
  Coo<value_t> m = gen_erdos_renyi(60, 50, 0.04, 4203);
  std::ostringstream out;
  write_matrix_market(out, m);
  const std::string base = out.str();
  Prng rng(0xBEEF);
  int runs = 0;
  const auto drive_mtx = [](const std::string& s) {
    std::istringstream in(s);
    try {
      const Coo<value_t> loaded = read_matrix_market(in);
      const ValidationResult r = validate_coo(loaded);
      EXPECT_TRUE(r.ok()) << "ingested an invalid COO: " << r.message();
    } catch (const std::runtime_error&) {
      // Clean rejection.
    }
  };
  for (int i = 0; i < 160; ++i) {
    std::string s = base;
    const auto pos = static_cast<std::size_t>(rng.next_below(s.size()));
    s[pos] = static_cast<char>(rng.next_below(128));
    drive_mtx(s);
    ++runs;
  }
  for (int i = 0; i < 60; ++i) {
    const auto len = static_cast<std::size_t>(rng.next_below(base.size()));
    drive_mtx(base.substr(0, len));
    ++runs;
  }
  // Hostile size lines: huge dims and entry counts must be rejected before
  // any allocation happens, not after.
  const char* hostile[] = {
      "%%MatrixMarket matrix coordinate real general\n"
      "99999999999 3 1\n1 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n"
      "3 99999999999 1\n1 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 999999999999999\n1 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n"
      "-3 3 1\n1 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 -1\n1 1 1.0\n",
  };
  for (const char* doc : hostile) {
    std::istringstream in(doc);
    EXPECT_THROW(read_matrix_market(in), std::runtime_error) << doc;
    ++runs;
  }
  EXPECT_EQ(runs, 225);
}

// Total mutated streams across the four stream tests:
// 660 + 420 + 80 + 225 = 1385. The tile-file tests below fuzz the v2 mmap
// container on top of that.

/// Writes raw bytes to `path` (the v2 loaders are path-based: they mmap).
void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(FuzzCorruption, TileFileMapping) {
  // The v2 container is the serving daemon's upload trust boundary: a
  // mutated file must either throw std::runtime_error out of the mapping
  // path or pass the full structural validation deep_validate runs. Any
  // other exception (or a crash on a mapped out-of-bounds view) is the bug.
  const std::string base_path = "/tmp/tilespmspv_fuzz_ttlf_base.bin";
  const std::string mut_path = "/tmp/tilespmspv_fuzz_ttlf_mut.bin";
  Coo<value_t> coo = gen_erdos_renyi(120, 96, 0.04, 4204);
  coo.cols = 110;
  coo.push(5, 100, 1.0);
  coo.push(119, 109, 0.25);
  const auto a = Csr<value_t>::from_coo(coo);
  const auto m = TileMatrix<value_t>::from_csr(a, 16, 2);
  const auto mt = TileMatrix<value_t>::from_csr(a.transpose(), 16, 2);
  write_tile_matrix_file_v2(base_path, m, &mt);
  const std::string base = read_bytes(base_path);
  std::remove(base_path.c_str());
  ASSERT_GT(base.size(), sizeof(TileFileHeader));

  const auto drive_map = [&](const std::string& bytes) {
    write_bytes(mut_path, bytes);
    try {
      map_tile_matrix_file(mut_path, /*verify_hash=*/false,
                           /*deep_validate=*/true);
      return Outcome::kLoadedValid;  // deep validation accepted it
    } catch (const std::runtime_error&) {
      return Outcome::kRejected;
    }
  };
  EXPECT_EQ(drive_map(base), Outcome::kLoadedValid);
  const FuzzStats stats =
      fuzz_binary(base, drive_map, 0xF17EF11E, 120, 60, 40, 60);
  std::remove(mut_path.c_str());
  EXPECT_EQ(stats.total(), 280);
  EXPECT_GT(stats.rejected, stats.total() / 4)
      << "rejected " << stats.rejected << " of " << stats.total();
  EXPECT_GT(stats.loaded, 0);
}

TEST(FuzzCorruption, TileFileDirectedHeaderAttacks) {
  // Deterministic attacks on every header/section invariant the mapping
  // path gates on: wrong magic, future version, truncation, misaligned and
  // out-of-bounds section offsets, inconsistent section byte counts, and a
  // payload whose content no longer matches the recorded hash.
  const std::string path = "/tmp/tilespmspv_fuzz_ttlf_directed.bin";
  const auto a = Csr<value_t>::from_coo(gen_erdos_renyi(90, 80, 0.05, 4205));
  const auto m = TileMatrix<value_t>::from_csr(a, 16, 2);
  write_tile_matrix_file_v2(path, m);
  const std::string base = read_bytes(path);

  const auto expect_reject = [&](std::string bytes, bool verify_hash,
                                 const char* what) {
    write_bytes(path, bytes);
    EXPECT_THROW(map_tile_matrix_file(path, verify_hash, true),
                 std::runtime_error)
        << what;
  };

  std::string s = base;
  std::memcpy(&s[0], "XXXX", 4);
  expect_reject(s, false, "wrong magic");

  s = base;
  const std::uint32_t future_version = kTileFileVersion + 1;
  std::memcpy(&s[4], &future_version, 4);
  expect_reject(s, false, "future version");

  expect_reject(base.substr(0, 64), false, "truncated mid-header");
  expect_reject(base.substr(0, sizeof(TileFileHeader) + 8), false,
                "truncated mid-section-table");
  expect_reject(base.substr(0, base.size() - 16), false,
                "truncated payload vs header file_bytes");

  // Section 0's entry starts right after the header: id(4) elem_size(4)
  // offset(8) bytes(8) count(8).
  const std::size_t sec0 = sizeof(TileFileHeader);
  s = base;
  std::uint64_t off = 0;
  std::memcpy(&off, &s[sec0 + 8], 8);
  off += 1;  // break the 64-byte alignment guarantee
  std::memcpy(&s[sec0 + 8], &off, 8);
  expect_reject(s, false, "misaligned section offset");

  s = base;
  off = base.size() + (std::uint64_t{1} << 32);  // far outside the mapping
  std::memcpy(&s[sec0 + 8], &off, 8);
  expect_reject(s, false, "out-of-bounds section offset");

  s = base;
  std::uint64_t count = 0;
  std::memcpy(&count, &s[sec0 + 24], 8);
  count += 1;  // bytes != count * elem_size
  std::memcpy(&s[sec0 + 24], &count, 8);
  expect_reject(s, false, "section bytes/count mismatch");

  // Wrapping count: 2^61 * elem_size(8) overflows uint64 to exactly 0, so
  // a multiplicative `bytes == count * elem_size` check would accept
  // bytes=0 and let views claim 2^61 elements over a tiny mapping. Target
  // the side_vals section (add-order index 11) — unlike the pointer
  // arrays it has no downstream length gate, so only the section-table
  // division check stands between the forged count and an out-of-bounds
  // read in deep validation.
  s = base;
  const std::size_t sec_side_vals = sec0 + 11 * sizeof(TileFileSection);
  std::uint32_t side_vals_id = 0;
  std::memcpy(&side_vals_id, &s[sec_side_vals], 4);
  ASSERT_EQ(side_vals_id, tf_section::kSideVals);
  const std::uint64_t wrap_count = std::uint64_t{1} << 61;
  const std::uint64_t wrap_bytes = 0;
  std::memcpy(&s[sec_side_vals + 16], &wrap_bytes, 8);
  std::memcpy(&s[sec_side_vals + 24], &wrap_count, 8);
  expect_reject(s, false, "count*elem_size wraps to stored bytes");

  // Flip one payload byte: the structure may still parse, but the recorded
  // payload hash no longer matches, so the strict path must reject it.
  s = base;
  s[s.size() - 1] = static_cast<char>(s[s.size() - 1] ^ 0x01);
  write_bytes(path, s);
  bool hash_caught = false;
  try {
    map_tile_matrix_file(path, /*verify_hash=*/true, /*deep_validate=*/false);
  } catch (const std::runtime_error&) {
    hash_caught = true;
  }
  EXPECT_TRUE(hash_caught) << "payload mutation evaded hash verification";

  // The unmutated file still passes the strictest load.
  write_bytes(path, base);
  const MappedTileMatrix ok = map_tile_matrix_file(path, true, true);
  EXPECT_EQ(ok.tiled.rows, 90);
  std::remove(path.c_str());
}

TEST(FuzzCorruption, TileFileParallelArrayAttack) {
  // Directed attack on bind_tile_matrix's parallel-array gate: shrink the
  // side_vals section by one element. Every per-section invariant open()
  // checks still holds (elem_size divides bytes, count == bytes/elem_size,
  // payload in bounds), so only the cross-section length gate stands
  // between the shortened array and the kernels' shared side cursor.
  const std::string path = "/tmp/tilespmspv_fuzz_ttlf_parallel.bin";
  Coo<value_t> coo = gen_erdos_renyi(120, 96, 0.04, 4206);
  coo.cols = 110;
  coo.push(5, 100, 1.0);
  coo.push(119, 109, 0.25);
  const auto a = Csr<value_t>::from_coo(coo);
  const auto m = TileMatrix<value_t>::from_csr(a, 16, 2);
  ASSERT_GT(m.side_vals.size(), 0u) << "fixture must exercise the side part";
  write_tile_matrix_file_v2(path, m);
  std::string s = read_bytes(path);

  const std::size_t sec_side_vals =
      sizeof(TileFileHeader) + 11 * sizeof(TileFileSection);
  std::uint32_t id = 0;
  std::memcpy(&id, &s[sec_side_vals], 4);
  ASSERT_EQ(id, tf_section::kSideVals);
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
  std::memcpy(&bytes, &s[sec_side_vals + 16], 8);
  std::memcpy(&count, &s[sec_side_vals + 24], 8);
  ASSERT_GT(count, 0u);
  bytes -= sizeof(value_t);
  count -= 1;
  std::memcpy(&s[sec_side_vals + 16], &bytes, 8);
  std::memcpy(&s[sec_side_vals + 24], &count, 8);
  write_bytes(path, s);
  // Even the cheapest load (no hash check, no deep validation) must reject.
  EXPECT_THROW(map_tile_matrix_file(path, false, false), std::runtime_error);
  std::remove(path.c_str());
}

TEST(FuzzCorruption, TileFileHeaderSniffAttacks) {
  // read_tile_file_header is the dispatch sniffer: TileBfs switches on nt
  // and the CLI prints dims before any mapping-time validation runs, so
  // forged version/dims/nt must not survive the sniff itself.
  const std::string path = "/tmp/tilespmspv_fuzz_ttlf_sniff.bin";
  const auto a = Csr<value_t>::from_coo(gen_erdos_renyi(60, 60, 0.05, 4207));
  const auto m = TileMatrix<value_t>::from_csr(a, 16, 2);
  write_tile_matrix_file_v2(path, m);
  const std::string base = read_bytes(path);

  // Header field offsets: rows@16, cols@24, nt@32 (see TileFileHeader).
  const auto expect_reject = [&](std::size_t at, std::int64_t v,
                                 const char* what) {
    std::string s = base;
    std::memcpy(&s[at], &v, sizeof(v));
    write_bytes(path, s);
    EXPECT_THROW(read_tile_file_header(path), std::runtime_error) << what;
  };
  expect_reject(32, 0, "nt = 0");
  expect_reject(32, -16, "negative nt");
  expect_reject(32, std::int64_t{1} << 20, "oversized nt");
  expect_reject(16, -1, "negative rows");
  expect_reject(24, std::int64_t{1} << 40, "cols beyond index range");
  {
    std::string s = base;
    const std::uint32_t future = kTileFileVersion + 7;
    std::memcpy(&s[4], &future, sizeof(future));
    write_bytes(path, s);
    EXPECT_THROW(read_tile_file_header(path), std::runtime_error)
        << "future version";
  }
  write_bytes(path, base);
  EXPECT_EQ(read_tile_file_header(path).nt, 16);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tilespmspv
