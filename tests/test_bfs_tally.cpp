// Concurrency regression target for the chunked BFS tallies: repeated
// TileBFS runs on an 8-thread pool, checked against the serial reference.
// The interesting assertions live in the scheduler, not here — this
// binary is built and run under ThreadSanitizer by CI to prove that the
// per-chunk produced/visited tallies, the produced-slot registration
// (atomic test-and-set vs owned plain writes) and the visited-mask merge
// are race-free across the phase barriers.
#include <gtest/gtest.h>

#include "baselines/serial_bfs.hpp"
#include "bfs/tile_bfs.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"

namespace tilespmspv {
namespace {

Csr<value_t> undirected(index_t n, double density, std::uint64_t seed) {
  Coo<value_t> coo = gen_erdos_renyi(n, n, density, seed);
  coo.symmetrize();
  return Csr<value_t>::from_coo(coo);
}

TEST(BfsTally, ChunkedTalliesRaceFreeUnderContention) {
  ThreadPool pool(8);
  BfsWorkspace ws;
  struct Case {
    Csr<value_t> graph;
    index_t source;
  };
  std::vector<Case> cases;
  // Dense-tiled: push-CSR dominates, owned tile-row writes.
  cases.push_back({undirected(3000, 0.004, 41), 0});
  // Hub-heavy: push-CSC with atomic OR and slot registration contention.
  {
    RmatParams p;
    p.scale = 11;
    p.edge_factor = 12;
    cases.push_back({Csr<value_t>::from_coo(gen_rmat(p, 42)), 3});
  }
  // Long diameter: many levels with tiny frontiers — the tally and the
  // frontier swap run once per level, so the barriers fire thousands of
  // times per run.
  cases.push_back({Csr<value_t>::from_coo(gen_grid2d(70, 70, 1.0, 43)), 0});

  for (std::size_t c = 0; c < cases.size(); ++c) {
    const auto expect = serial_bfs(cases[c].graph, cases[c].source);
    for (unsigned mask : {1u, 2u, 4u, 7u}) {
      TileBfsConfig cfg;
      cfg.kernel_mask = mask;
      TileBfs bfs(cases[c].graph, cfg, &pool);
      // Several runs per configuration: TSan interleavings differ per
      // run, and workspace reuse checks the end-of-run invariants too.
      for (int rep = 0; rep < 3; ++rep) {
        ASSERT_EQ(bfs.run(cases[c].source, ws).levels, expect)
            << "case=" << c << " mask=" << mask << " rep=" << rep;
      }
    }
  }
}

// The parallel BitTileGraph build must be deterministic: identical output
// regardless of pool size (per-range buffers are merged in range order).
TEST(BfsTally, ParallelBuildDeterministicAcrossPoolSizes) {
  const Csr<value_t> a = undirected(4000, 0.003, 44);
  ThreadPool p1(1), p8(8);
  TileBfs serial_built(a, {}, &p1);
  TileBfs parallel_built(a, {}, &p8);
  ASSERT_EQ(serial_built.num_tiles(), parallel_built.num_tiles());
  ASSERT_EQ(serial_built.side_edge_count(), parallel_built.side_edge_count());
  const auto expect = serial_bfs(a, 7);
  ASSERT_EQ(serial_built.run(7).levels, expect);
  ASSERT_EQ(parallel_built.run(7).levels, expect);
}

}  // namespace
}  // namespace tilespmspv
