// Unit tests for the util layer: PRNG determinism and distribution sanity,
// bit operations, statistics, and table formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "util/bitops.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/args.hpp"
#include "util/types.hpp"

namespace tilespmspv {
namespace {

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 16), 1);
}

TEST(Types, RoundUp) {
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(12, 4), 12);
  EXPECT_EQ(round_up(0, 4), 0);
}

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, NextBelowInRange) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Prng, NextDoubleInUnitInterval) {
  Prng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U[0,1)
}

TEST(Prng, BernoulliFrequency) {
  Prng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Bitops, MsbBitMatchesPaperEncoding) {
  // Paper Fig. 5 writes the length-4 tile {1,0,0,0} as the value 8.
  using W4 = std::uint8_t;  // only the top 4 bits matter for NT=4 examples
  EXPECT_EQ(msb_bit<std::uint8_t>(0), 0x80);
  EXPECT_EQ(msb_bit<std::uint8_t>(7), 0x01);
  EXPECT_EQ(msb_bit<std::uint32_t>(0), 0x80000000u);
  EXPECT_EQ(msb_bit<std::uint64_t>(63), 1ull);
  (void)sizeof(W4);
}

TEST(Bitops, TestMsbBit) {
  const std::uint32_t w = msb_bit<std::uint32_t>(3) | msb_bit<std::uint32_t>(30);
  EXPECT_TRUE(test_msb_bit(w, 3));
  EXPECT_TRUE(test_msb_bit(w, 30));
  EXPECT_FALSE(test_msb_bit(w, 0));
  EXPECT_FALSE(test_msb_bit(w, 31));
}

TEST(Bitops, ForEachSetBitVisitsAllInOrder) {
  std::uint64_t w = 0;
  for (int i : {0, 5, 17, 63}) w |= msb_bit<std::uint64_t>(i);
  std::vector<int> seen;
  for_each_set_bit(w, [&](int b) { seen.push_back(b); });
  EXPECT_EQ(seen, (std::vector<int>{0, 5, 17, 63}));
}

TEST(Bitops, ForEachSetBitEmpty) {
  int count = 0;
  for_each_set_bit<std::uint32_t>(0, [&](int) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(Bitops, PopcountAllWidths) {
  EXPECT_EQ(popcount<std::uint16_t>(0xFFFF), 16);
  EXPECT_EQ(popcount<std::uint32_t>(0), 0);
  EXPECT_EQ(popcount<std::uint64_t>(~0ull), 64);
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Stats, PercentAboveOne) {
  EXPECT_DOUBLE_EQ(percent_above_one({2.0, 0.5, 3.0, 1.0}), 50.0);
  EXPECT_DOUBLE_EQ(percent_above_one({}), 0.0);
}

TEST(Stats, SpeedupAggregate) {
  SpeedupAggregate agg;
  agg.add(1.0, 2.0);   // 2x speedup
  agg.add(1.0, 0.5);   // 0.5x
  agg.add(2.0, 16.0);  // 8x
  EXPECT_EQ(agg.count(), 3u);
  EXPECT_NEAR(agg.geomean_speedup(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(agg.max_speedup(), 8.0);
  EXPECT_NEAR(agg.win_rate_percent(), 100.0 * 2 / 3, 1e-9);
}

TEST(Stats, MinMaxMean) {
  EXPECT_DOUBLE_EQ(max_of({1.0, 5.0, 3.0}), 5.0);
  EXPECT_DOUBLE_EQ(min_of({1.0, 5.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, PercentileEdgeCases) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  EXPECT_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 50.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 100.0), 7.0);
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 0.0), 1.0);
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 100.0), 3.0);
}

TEST(Stats, PercentileClampsOutOfRangeP) {
  // p outside [0, 100] clamps to the nearest end — the documented
  // contract for degenerate inputs, not UB.
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, -10.0), 1.0);
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 250.0), 3.0);
  EXPECT_EQ(percentile({7.0}, -1.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 101.0), 7.0);
}

TEST(Stats, MeanAndMinDegenerateInputs) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(mean({4.5}), 4.5);
  EXPECT_EQ(min_of({}), 0.0);
  EXPECT_EQ(min_of({4.5}), 4.5);
  EXPECT_EQ(max_of({}), 0.0);
}

#ifdef NDEBUG
TEST(Stats, GeomeanSkipsNonPositiveInRelease) {
  // Non-positive samples assert in debug builds; in release they are
  // skipped so one bad sample cannot poison a whole aggregate.
  EXPECT_DOUBLE_EQ(geomean({4.0, 0.0, 1.0, -2.0}), 2.0);
  EXPECT_DOUBLE_EQ(geomean({0.0, -1.0}), 0.0);
}
#endif

TEST(Stats, PercentileInterpolatesBetweenOrderStatistics) {
  // Unsorted on purpose: percentile() sorts its own copy.
  const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 17.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 32.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 95.0), 38.5);
  // p50 of an odd-length vector is the middle element exactly.
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

TEST(Table, AlignedOutputContainsCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Args, FlagsAndValues) {
  const char* argv[] = {"prog", "bfs",     "--matrix", "a.mtx",
                        "--iters", "7",    "--verbose"};
  Args args(7, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("--verbose"));
  EXPECT_FALSE(args.has("--quiet"));
  EXPECT_EQ(args.get("--matrix"), "a.mtx");
  EXPECT_EQ(args.get("--missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("--iters", 1), 7);
  EXPECT_EQ(args.get_int("--nope", 3), 3);
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"bfs"}));
}

TEST(Args, DoubleParsing) {
  const char* argv[] = {"prog", "--sparsity", "0.001"};
  Args args(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("--sparsity", 1.0), 0.001);
  EXPECT_DOUBLE_EQ(args.get_double("--alpha", 0.85), 0.85);
}

TEST(Args, MissingValueThrows) {
  const char* argv[] = {"prog", "--matrix"};
  Args args(2, const_cast<char**>(argv));
  EXPECT_THROW(args.get("--matrix"), std::invalid_argument);
}

TEST(Args, UnknownFlagIsDetected) {
  // A typo'd switch (--metircs) must surface as a usage error, not be
  // silently ignored.
  const char* argv[] = {"prog", "spmspv", "--metircs", "out.json"};
  Args args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.first_unknown_flag({"--metrics", "--json"}), "--metircs");
  EXPECT_THROW(args.reject_unknown({"--metrics", "--json"}),
               std::invalid_argument);
}

TEST(Args, KnownFlagsPassTheGuard) {
  const char* argv[] = {"prog",      "bfs",  "--matrix", "a.mtx",
                        "--verbose", "positional"};
  Args args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.first_unknown_flag({"--matrix", "--verbose"}), "");
  EXPECT_NO_THROW(args.reject_unknown({"--matrix", "--verbose"}));
}

TEST(Args, FlagValueIsNeverTreatedAsFlag) {
  // A known flag consumes its value token, so a value that merely looks
  // odd (a file named like a word) cannot trip the guard; only genuine
  // `--` tokens are checked.
  const char* argv[] = {"prog", "--out", "report.json", "--tier", "quick"};
  Args args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.first_unknown_flag({"--out", "--tier"}), "");
  // But an unknown flag in value position of a boolean switch is caught.
  const char* argv2[] = {"prog", "--verbose", "--metircs"};
  Args args2(3, const_cast<char**>(argv2));
  EXPECT_EQ(args2.first_unknown_flag({"--verbose", "--metrics"}),
            "--metircs");
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_count(503000), "503K");
  EXPECT_EQ(fmt_count(17000000), "17M");
  EXPECT_EQ(fmt_count(42), "42");
}

}  // namespace
}  // namespace tilespmspv
