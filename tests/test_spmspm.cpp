// Differential tests for the block-of-k SpMSpM engine: every lane of
// tile_spmspm must match an independent tile_spmspv over the same matrix
// and vector, across tile sizes, lane counts, extraction settings, and
// workspace reuse.
#include <gtest/gtest.h>

#include "core/spmspv_reference.hpp"
#include "core/tile_spmspm.hpp"
#include "core/tile_spmspv.hpp"
#include "core/tile_spmspv_batch.hpp"
#include "gen/banded.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"
#include "tile/tile_vector_block.hpp"

namespace tilespmspv {
namespace {

class SpmspmSweep
    : public ::testing::TestWithParam<std::tuple<index_t, int, index_t>> {};

TEST_P(SpmspmSweep, EveryLaneMatchesSingleVectorKernel) {
  const auto [nt, k, extract] = GetParam();
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(700, 600, 0.012, 4201));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, nt, extract);
  ThreadPool pool(4);

  std::vector<TileVector<value_t>> xs;
  std::vector<SparseVec<value_t>> raw;
  for (int v = 0; v < k; ++v) {
    // Mix dense-ish and nearly empty lanes so both the broadcast and the
    // per-set-bit inner paths get exercised within one block.
    const double sparsity = (v % 3 == 0) ? 0.08 : 0.002;
    raw.push_back(gen_sparse_vector(600, sparsity, 4300 + v));
    xs.push_back(TileVector<value_t>::from_sparse(raw.back(), nt));
  }
  const TileVectorBlock<value_t> xb =
      TileVectorBlock<value_t>::from_tiled(xs, &pool);

  SpmspmWorkspace<value_t> ws;
  const auto ys = tile_spmspm(tiled, xb, ws, &pool);
  ASSERT_EQ(ys.size(), static_cast<std::size_t>(k));
  for (int v = 0; v < k; ++v) {
    EXPECT_TRUE(approx_equal(ys[v], tile_spmspv(tiled, xs[v], &pool)))
        << "lane " << v << " nt " << nt;
  }

  // Workspace reuse: the gather must have restored the all-zero invariant,
  // so a second multiply through the same workspace is identical.
  const auto ys2 = tile_spmspm(tiled, xb, ws, &pool);
  for (int v = 0; v < k; ++v) {
    EXPECT_EQ(ys2[v].idx, ys[v].idx) << "lane " << v;
    EXPECT_EQ(ys2[v].vals, ys[v].vals) << "lane " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmspmSweep,
    ::testing::Combine(::testing::Values<index_t>(16, 32, 64),
                       ::testing::Values(1, 3, 8, 64),
                       ::testing::Values<index_t>(0, 2)));

TEST(SpmspmBlock, FromSparseRoundTripsAndValidates) {
  std::vector<SparseVec<value_t>> xs;
  for (int v = 0; v < 9; ++v) {
    xs.push_back(gen_sparse_vector(333, v == 4 ? 0.0 : 0.07, 990 + v));
  }
  ThreadPool pool(3);
  const auto b = TileVectorBlock<value_t>::from_sparse(xs, 16, &pool);
  EXPECT_EQ(b.k, 9);
  EXPECT_EQ(b.n, 333);
  EXPECT_TRUE(validate_tile_vector_block(b).ok()) << "invalid block";
  for (int v = 0; v < 9; ++v) {
    const SparseVec<value_t> back = b.to_sparse(v);
    EXPECT_EQ(back.idx, xs[v].idx) << "lane " << v;
    EXPECT_EQ(back.vals, xs[v].vals) << "lane " << v;
  }
}

TEST(SpmspmBlock, ActiveWordsAreLaneUnions) {
  // Two lanes with disjoint tiles: every slot's word must carry exactly
  // the lanes that own it, and the interleaved payload keeps zeros in the
  // other lane.
  SparseVec<value_t> x0(64), x1(64);
  x0.push(3, 1.5);   // tile 0 only
  x1.push(40, 2.5);  // tile 2 only
  const auto b =
      TileVectorBlock<value_t>::from_sparse({x0, x1}, 16, nullptr);
  ASSERT_EQ(b.num_tiles(), 4);
  EXPECT_EQ(b.active[0], std::uint64_t{1});
  EXPECT_EQ(b.active[1], std::uint64_t{0});
  EXPECT_EQ(b.active[2], std::uint64_t{2});
  EXPECT_EQ(b.at(0, 3), 1.5);
  EXPECT_EQ(b.at(1, 3), 0.0);
  EXPECT_EQ(b.at(1, 40), 2.5);
  EXPECT_EQ(b.at(0, 40), 0.0);
}

TEST(SpmspmBatchWrapper, ChunksBeyondMaxLanes) {
  // 70 vectors force two engine blocks (64 + 6) through the wrapper; each
  // output still matches the reference.
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(300, 300, 0.02, 4400));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);
  std::vector<SparseVec<value_t>> xs;
  for (int v = 0; v < 70; ++v) {
    xs.push_back(gen_sparse_vector(300, 0.03, 4500 + v));
  }
  ThreadPool pool(4);
  const auto ys = tile_spmspv_batch(tiled, xs, &pool);
  ASSERT_EQ(ys.size(), 70u);
  for (int v = 0; v < 70; ++v) {
    EXPECT_TRUE(approx_equal(ys[v], spmspv_rowwise_reference(a, xs[v])))
        << "vector " << v;
  }
}

TEST(SpmspmBlock, BandedMatrixRunsPath) {
  // Banded matrices build run lists (kRunFlat/kRunDispatch), covering the
  // engine's run-walking entry iteration.
  BandedParams bp;
  bp.n = 512;
  Csr<value_t> a = Csr<value_t>::from_coo(gen_banded(bp, 4600));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 32, 2);
  ThreadPool pool(4);
  std::vector<TileVector<value_t>> xs;
  for (int v = 0; v < 5; ++v) {
    xs.push_back(TileVector<value_t>::from_sparse(
        gen_sparse_vector(512, 0.05, 4700 + v), 32));
  }
  const auto xb = TileVectorBlock<value_t>::from_tiled(xs, &pool);
  const auto ys = tile_spmspm(tiled, xb, &pool);
  for (int v = 0; v < 5; ++v) {
    EXPECT_TRUE(approx_equal(ys[v], tile_spmspv(tiled, xs[v], &pool)))
        << "lane " << v;
  }
}

TEST(SpmspmBlock, EmptyBlock) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(100, 100, 0.02, 4800));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16);
  const TileVectorBlock<value_t> xb;
  EXPECT_TRUE(tile_spmspm(tiled, xb).empty());
}

TEST(SpmspmBlock, AllEmptyLanes) {
  // k > 0 but every lane is empty: the block has zero kept tiles and the
  // engine must return k empty outputs without touching any phase scratch.
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(200, 200, 0.02, 4900));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);
  ThreadPool pool(4);
  std::vector<SparseVec<value_t>> xs(7, SparseVec<value_t>(200));
  const auto xb = TileVectorBlock<value_t>::from_sparse(xs, 16, &pool);
  EXPECT_TRUE(validate_tile_vector_block(xb).ok());
  EXPECT_EQ(xb.num_nonempty_tiles(), 0);
  const auto ys = tile_spmspm(tiled, xb, &pool);
  ASSERT_EQ(ys.size(), 7u);
  for (const auto& y : ys) {
    EXPECT_EQ(y.n, 200);
    EXPECT_EQ(y.nnz(), 0);
  }
}

TEST(SpmspmBlock, DuplicateUnsortedFromSparseMatchesSanitizedLane) {
  // from_sparse must tolerate input below SparseVec's invariant: unsorted
  // indices, duplicates (later entries win, including a zero overwrite
  // that kills the nonzero), and still produce a validator-clean tiled
  // vector whose slot numbering is in tile order. The engine's output over
  // the dirty lane must match the per-vector kernel over the sanitized
  // equivalent.
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(120, 96, 0.05, 5000));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);

  SparseVec<value_t> dirty(96);
  dirty.push(80, 7.0);   // tile 5 first: unsorted input
  dirty.push(3, 1.0);
  dirty.push(17, 2.0);
  dirty.push(3, 4.0);    // duplicate of 3: last write wins
  dirty.push(40, 5.0);
  dirty.push(40, 0.0);   // duplicate zero overwrite: nonzero disappears
  SparseVec<value_t> clean(96);
  clean.push(3, 4.0);
  clean.push(17, 2.0);
  clean.push(80, 7.0);

  const auto xt = TileVector<value_t>::from_sparse(dirty, 16);
  EXPECT_TRUE(validate_tile_vector(xt).ok());
  EXPECT_EQ(xt.nnz, 3);
  // Tile-order slot numbering despite the out-of-order input.
  EXPECT_EQ(xt.x_ptr[0], 0);
  EXPECT_EQ(xt.x_ptr[1], 1);
  EXPECT_EQ(xt.x_ptr[2], 2);
  EXPECT_EQ(xt.x_ptr[5], 3);
  const SparseVec<value_t> back = xt.to_sparse();
  EXPECT_EQ(back.idx, clean.idx);
  EXPECT_EQ(back.vals, clean.vals);

  ThreadPool pool(3);
  const auto xb =
      TileVectorBlock<value_t>::from_sparse({dirty, clean}, 16, &pool);
  EXPECT_TRUE(validate_tile_vector_block(xb).ok());
  const auto ys = tile_spmspm(tiled, xb, &pool);
  ASSERT_EQ(ys.size(), 2u);
  const SparseVec<value_t> ref = tile_spmspv(
      tiled, TileVector<value_t>::from_sparse(clean, 16), &pool);
  EXPECT_TRUE(approx_equal(ys[0], ref)) << "dirty lane";
  EXPECT_TRUE(approx_equal(ys[1], ref)) << "clean lane";
}

TEST(SpmspmBlock, ZeroDimensionMatrix) {
  // n == 0 on both sides: zero tile grid, zero lanes' worth of payload.
  const Csr<value_t> a = Csr<value_t>::from_coo(Coo<value_t>(0, 0));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);
  std::vector<SparseVec<value_t>> xs(3, SparseVec<value_t>(0));
  const auto xb = TileVectorBlock<value_t>::from_sparse(xs, 16, nullptr);
  EXPECT_TRUE(validate_tile_vector_block(xb).ok());
  const auto ys = tile_spmspm(tiled, xb);
  ASSERT_EQ(ys.size(), 3u);
  for (const auto& y : ys) {
    EXPECT_EQ(y.n, 0);
    EXPECT_EQ(y.nnz(), 0);
  }
}

TEST(SpmspmBlock, ForeignPoolWorkerInvocationStaysInBounds) {
  // Regression for the off-pool slot bug: a worker of a larger pool
  // invoking the engine with a 1-thread pool used to index the workspace's
  // per-slot accumulators with its foreign slot (out of bounds for the
  // small pool). The dispatch now rebinds slots, so the call must both
  // stay in bounds (assertion-backed in debug builds) and produce the same
  // answer as a plain top-level call.
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(400, 400, 0.02, 5100));
  TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);
  std::vector<TileVector<value_t>> xs;
  for (int v = 0; v < 8; ++v) {
    xs.push_back(TileVector<value_t>::from_sparse(
        gen_sparse_vector(400, 0.05, 5200 + v), 16));
  }
  const auto xb = TileVectorBlock<value_t>::from_tiled(xs, nullptr);
  const auto expect = tile_spmspm(tiled, xb);

  ThreadPool outer(4);
  ThreadPool inner(1);
  std::vector<std::vector<SparseVec<value_t>>> got(
      static_cast<std::size_t>(outer.size()));
  parallel_for(
      static_cast<index_t>(outer.size()),
      [&](index_t i) {
        // Every outer slot (workers and caller) runs the engine through the
        // foreign 1-thread pool.
        got[static_cast<std::size_t>(i)] = tile_spmspm(tiled, xb, &inner);
      },
      &outer, /*chunk=*/1);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), 8u) << "outer slot " << i;
    for (int v = 0; v < 8; ++v) {
      EXPECT_TRUE(approx_equal(got[i][static_cast<std::size_t>(v)],
                               expect[static_cast<std::size_t>(v)]))
          << "outer slot " << i << " lane " << v;
    }
  }
}

}  // namespace
}  // namespace tilespmspv
