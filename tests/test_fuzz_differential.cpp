// Differential fuzzing: many random (matrix, vector, configuration)
// draws, every SpMSpV implementation in the repo compared against the
// serial reference on each. Seeds are fixed, so failures replay exactly;
// the loop count keeps the whole binary under a second.
#include <gtest/gtest.h>

#include "baselines/bsr_spmv.hpp"
#include "baselines/csr_spmv.hpp"
#include "baselines/spmspv_bucket.hpp"
#include "baselines/spmspv_sort.hpp"
#include "baselines/tile_spmv.hpp"
#include "core/spmspv.hpp"
#include "core/spmspv_reference.hpp"
#include "core/tile_spmspv_semiring.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"
#include "spgemm/gustavson.hpp"
#include "tile/packed_tile_matrix.hpp"

namespace tilespmspv {
namespace {

TEST(FuzzDifferential, AllSpmspvImplementationsAgreeOnRandomDraws) {
  Prng meta_rng(0xF00D);
  for (int round = 0; round < 40; ++round) {
    // Random shape / density / vector sparsity / configuration.
    const auto rows = static_cast<index_t>(1 + meta_rng.next_below(500));
    const auto cols = static_cast<index_t>(1 + meta_rng.next_below(500));
    const double density = meta_rng.next_double(0.001, 0.1);
    const double sparsity = meta_rng.next_double(0.0, 0.6);
    const auto nt = std::vector<index_t>{16, 32, 64}[meta_rng.next_below(3)];
    const auto extract = static_cast<index_t>(meta_rng.next_below(4));
    const std::uint64_t seed = meta_rng.next_u64();
    SCOPED_TRACE("round " + std::to_string(round) + " rows=" +
                 std::to_string(rows) + " cols=" + std::to_string(cols) +
                 " nt=" + std::to_string(nt) + " extract=" +
                 std::to_string(extract) + " seed=" + std::to_string(seed));

    const Csr<value_t> a =
        Csr<value_t>::from_coo(gen_erdos_renyi(rows, cols, density, seed));
    const Csc<value_t> c = Csc<value_t>::from_csr(a);
    const SparseVec<value_t> x = gen_sparse_vector(cols, sparsity, seed + 1);
    const SparseVec<value_t> expect = spmspv_rowwise_reference(a, x);

    // Optimized tiled kernels at the drawn configuration.
    {
      const TileMatrix<value_t> tiled =
          TileMatrix<value_t>::from_csr(a, nt, extract);
      const TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, nt);
      ASSERT_TRUE(approx_equal(tile_spmspv(tiled, xt), expect));
      const TileMatrix<value_t> at =
          TileMatrix<value_t>::from_csr(a.transpose(), nt, extract);
      ASSERT_TRUE(approx_equal(tile_spmspv_csc(at, xt), expect));
    }
    // Operator with auto selection.
    {
      SpmspvOperator<value_t> op(a);
      ASSERT_TRUE(approx_equal(op.multiply(x), expect));
    }
    // Baselines.
    ASSERT_TRUE(approx_equal(csr_spmv(a, x), expect));
    ASSERT_TRUE(approx_equal(spmspv_colwise_reference(c, x), expect));
    ASSERT_TRUE(approx_equal(spmspv_bucket(c, x, 8), expect));
    ASSERT_TRUE(approx_equal(spmspv_sort(c, x), expect));
    ASSERT_TRUE(approx_equal(spmspv_via_spgemm(a, x), expect));
    {
      const Bsr<value_t> b = Bsr<value_t>::from_csr(a, 4);
      ASSERT_TRUE(approx_equal(bsr_spmv(b, x), expect));
    }
    // Packed layout (fixed nt = 16) and the semiring path.
    {
      const PackedTileMatrix<value_t> p =
          PackedTileMatrix<value_t>::from_csr(a);
      const TileVector<value_t> xt16 =
          TileVector<value_t>::from_sparse(x, 16);
      ASSERT_TRUE(approx_equal(packed_tile_spmspv(p, xt16), expect));
      SemiringOperator<PlusTimes<value_t>> sop(a, nt, extract);
      ASSERT_TRUE(approx_equal(sop.multiply(x), expect));
    }
  }
}

}  // namespace
}  // namespace tilespmspv
