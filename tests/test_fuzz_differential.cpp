// Differential fuzzing: many random (matrix, vector, configuration)
// draws, every SpMSpV implementation in the repo compared against the
// serial reference on each. Seeds are fixed, so failures replay exactly;
// the loop count keeps the whole binary under a second.
#include <gtest/gtest.h>

#include "baselines/bsr_spmv.hpp"
#include "baselines/csr_spmv.hpp"
#include "baselines/spmspv_bucket.hpp"
#include "baselines/spmspv_sort.hpp"
#include "baselines/tile_spmv.hpp"
#include "core/spmspv.hpp"
#include "core/spmspv_reference.hpp"
#include "core/tile_spmspv_semiring.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"
#include "spgemm/gustavson.hpp"
#include "tile/packed_tile_matrix.hpp"
#include "util/simd.hpp"

namespace tilespmspv {
namespace {

TEST(FuzzDifferential, AllSpmspvImplementationsAgreeOnRandomDraws) {
  Prng meta_rng(0xF00D);
  for (int round = 0; round < 40; ++round) {
    // Random shape / density / vector sparsity / configuration.
    const auto rows = static_cast<index_t>(1 + meta_rng.next_below(500));
    const auto cols = static_cast<index_t>(1 + meta_rng.next_below(500));
    const double density = meta_rng.next_double(0.001, 0.1);
    const double sparsity = meta_rng.next_double(0.0, 0.6);
    const auto nt = std::vector<index_t>{16, 32, 64}[meta_rng.next_below(3)];
    const auto extract = static_cast<index_t>(meta_rng.next_below(4));
    const std::uint64_t seed = meta_rng.next_u64();
    SCOPED_TRACE("round " + std::to_string(round) + " rows=" +
                 std::to_string(rows) + " cols=" + std::to_string(cols) +
                 " nt=" + std::to_string(nt) + " extract=" +
                 std::to_string(extract) + " seed=" + std::to_string(seed));

    const Csr<value_t> a =
        Csr<value_t>::from_coo(gen_erdos_renyi(rows, cols, density, seed));
    const Csc<value_t> c = Csc<value_t>::from_csr(a);
    const SparseVec<value_t> x = gen_sparse_vector(cols, sparsity, seed + 1);
    const SparseVec<value_t> expect = spmspv_rowwise_reference(a, x);

    // Optimized tiled kernels at the drawn configuration.
    {
      const TileMatrix<value_t> tiled =
          TileMatrix<value_t>::from_csr(a, nt, extract);
      const TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, nt);
      ASSERT_TRUE(approx_equal(tile_spmspv(tiled, xt), expect));
      const TileMatrix<value_t> at =
          TileMatrix<value_t>::from_csr(a.transpose(), nt, extract);
      ASSERT_TRUE(approx_equal(tile_spmspv_csc(at, xt), expect));
    }
    // Operator with auto selection.
    {
      SpmspvOperator<value_t> op(a);
      ASSERT_TRUE(approx_equal(op.multiply(x), expect));
    }
    // Baselines.
    ASSERT_TRUE(approx_equal(csr_spmv(a, x), expect));
    ASSERT_TRUE(approx_equal(spmspv_colwise_reference(c, x), expect));
    ASSERT_TRUE(approx_equal(spmspv_bucket(c, x, 8), expect));
    ASSERT_TRUE(approx_equal(spmspv_sort(c, x), expect));
    ASSERT_TRUE(approx_equal(spmspv_via_spgemm(a, x), expect));
    {
      const Bsr<value_t> b = Bsr<value_t>::from_csr(a, 4);
      ASSERT_TRUE(approx_equal(bsr_spmv(b, x), expect));
    }
    // Packed layout (fixed nt = 16) and the semiring path.
    {
      const PackedTileMatrix<value_t> p =
          PackedTileMatrix<value_t>::from_csr(a);
      const TileVector<value_t> xt16 =
          TileVector<value_t>::from_sparse(x, 16);
      ASSERT_TRUE(approx_equal(packed_tile_spmspv(p, xt16), expect));
      SemiringOperator<PlusTimes<value_t>> sop(a, nt, extract);
      ASSERT_TRUE(approx_equal(sop.multiply(x), expect));
    }
  }
}

// The SIMD layer guarantees a scalar twin with identical semantics for
// every vector micro-kernel; this fuzzes the active tier (AVX2, SSE2 or
// scalar — whatever the binary was built with) against the twins over
// random lengths, hitting the 0, 1 and tail (n % lane-width != 0) cases.
TEST(FuzzDifferential, SimdMicroKernelsMatchScalarTwins) {
  Prng rng(0x51D);
  SCOPED_TRACE(std::string("active isa: ") + simd::active_isa());
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.next_below(130));  // covers 0 and 1
    const int nt = std::vector<int>{16, 32, 64}[rng.next_below(3)];
    std::vector<double> vals(n), xt(nt), prod_a(n, -1.0), prod_b(n, -1.0);
    std::vector<std::uint8_t> cols(n);
    for (int i = 0; i < n; ++i) {
      vals[i] = rng.next_double(-2.0, 2.0);
      cols[i] = static_cast<std::uint8_t>(rng.next_below(nt));
    }
    for (int i = 0; i < nt; ++i) xt[i] = rng.next_double(-2.0, 2.0);

    simd::gather_mul(vals.data(), cols.data(), n, xt.data(), prod_a.data());
    simd::gather_mul_scalar(vals.data(), cols.data(), n, xt.data(),
                            prod_b.data());
    for (int i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(prod_a[i], prod_b[i]) << "i=" << i << " n=" << n;
    }

    const double dot = simd::dot_gather(vals.data(), cols.data(), n, xt.data());
    const double dot_ref =
        simd::dot_gather_scalar(vals.data(), cols.data(), n, xt.data());
    ASSERT_NEAR(dot, dot_ref, 1e-10 * (1.0 + std::abs(dot_ref))) << "n=" << n;

    const double rs = simd::range_sum(prod_b.data(), n);
    const double rs_ref = simd::range_sum_scalar(prod_b.data(), n);
    ASSERT_NEAR(rs, rs_ref, 1e-10 * (1.0 + std::abs(rs_ref))) << "n=" << n;

    const double dc = simd::dot_contig(vals.data(), xt.data(),
                                       std::min(n, nt));
    const double dc_ref = simd::dot_contig_scalar(vals.data(), xt.data(),
                                                  std::min(n, nt));
    ASSERT_NEAR(dc, dc_ref, 1e-10 * (1.0 + std::abs(dc_ref))) << "n=" << n;
  }
}

// Block-engine broadcast-FMA: lane counts sweep 0..66 to hit the empty,
// single-lane, full 4-wide AVX2 groups and the 1-3 lane tail. FMA fuses
// the multiply-add rounding, so comparison is tolerance-based.
TEST(FuzzDifferential, SimdAxpyLanesMatchesScalarTwin) {
  Prng rng(0xA4B7);
  for (int round = 0; round < 200; ++round) {
    const int k = static_cast<int>(rng.next_below(67));
    const double a = rng.next_double(-2.0, 2.0);
    std::vector<double> x(k), acc_a(k), acc_b(k);
    for (int v = 0; v < k; ++v) {
      x[v] = rng.next_double(-2.0, 2.0);
      acc_a[v] = acc_b[v] = rng.next_double(-1.0, 1.0);
    }
    simd::axpy_lanes(a, x.data(), acc_a.data(), k);
    simd::axpy_lanes_scalar(a, x.data(), acc_b.data(), k);
    for (int v = 0; v < k; ++v) {
      ASSERT_NEAR(acc_a[v], acc_b[v], 1e-12 * (1.0 + std::abs(acc_b[v])))
          << "v=" << v << " k=" << k;
    }
  }
}

// Row-panel kernel of the block engine: a 4-lane accumulator panel updated
// across a row's entries. Sweeps entry counts, strides (block widths) and
// panel widths 1..4 (the k % 4 tail).
TEST(FuzzDifferential, SimdLanePanelUpdateMatchesScalarTwin) {
  Prng rng(0x9A7E);
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.next_below(40));
    const int stride = 4 + static_cast<int>(rng.next_below(61));
    const int w = 1 + static_cast<int>(rng.next_below(4));
    std::vector<double> vals(n), x(static_cast<std::size_t>(256 * stride));
    std::vector<std::uint8_t> cols(n);
    for (int i = 0; i < n; ++i) {
      vals[i] = rng.next_double(-2.0, 2.0);
      cols[i] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    for (auto& v : x) v = rng.next_double(-2.0, 2.0);
    double acc_a[4], acc_b[4];
    for (int v = 0; v < w; ++v) acc_a[v] = acc_b[v] = rng.next_double(-1, 1);
    simd::lane_panel_update(vals.data(), cols.data(), n, stride, w, x.data(),
                            acc_a);
    simd::lane_panel_update_scalar(vals.data(), cols.data(), n, stride, w,
                                   x.data(), acc_b);
    for (int v = 0; v < w; ++v) {
      ASSERT_NEAR(acc_a[v], acc_b[v], 1e-10 * (1.0 + std::abs(acc_b[v])))
          << "v=" << v << " n=" << n << " w=" << w;
    }
  }
}

TEST(FuzzDifferential, SimdLanePanel16UpdateMatchesScalarTwin) {
  Prng rng(0x16A5);
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.next_below(40));
    const int stride = 16 + static_cast<int>(rng.next_below(49));
    std::vector<double> vals(n), x(static_cast<std::size_t>(256 * stride));
    std::vector<std::uint8_t> cols(n);
    for (int i = 0; i < n; ++i) {
      vals[i] = rng.next_double(-2.0, 2.0);
      cols[i] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    for (auto& v : x) v = rng.next_double(-2.0, 2.0);
    double acc_a[16], acc_b[16];
    for (int v = 0; v < 16; ++v) {
      acc_a[v] = acc_b[v] = rng.next_double(-1, 1);
    }
    simd::lane_panel16_update(vals.data(), cols.data(), n, stride, x.data(),
                              acc_a);
    simd::lane_panel16_update_scalar(vals.data(), cols.data(), n, stride,
                                     x.data(), acc_b);
    for (int v = 0; v < 16; ++v) {
      ASSERT_NEAR(acc_a[v], acc_b[v], 1e-10 * (1.0 + std::abs(acc_b[v])))
          << "v=" << v << " n=" << n;
    }
  }
}

TEST(FuzzDifferential, SimdPackedFlatScanMatchesScalarTwin) {
  Prng rng(0xBEEF);
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.next_below(90));
    std::vector<double> vals(n), xt(16);
    std::vector<std::uint8_t> packed(n);
    for (int i = 0; i < n; ++i) {
      vals[i] = rng.next_double(-2.0, 2.0);
      packed[i] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    for (int i = 0; i < 16; ++i) xt[i] = rng.next_double(-2.0, 2.0);
    double acc_a[16], acc_b[16];
    for (int i = 0; i < 16; ++i) acc_a[i] = acc_b[i] = rng.next_double(-1, 1);
    simd::packed_flat_scan(vals.data(), packed.data(), n, xt.data(), acc_a);
    simd::packed_flat_scan_scalar(vals.data(), packed.data(), n, xt.data(),
                                  acc_b);
    for (int i = 0; i < 16; ++i) {
      ASSERT_NEAR(acc_a[i], acc_b[i], 1e-10 * (1.0 + std::abs(acc_b[i])))
          << "slot " << i << " n=" << n;
    }
  }
}

// Kernel-level edge shapes the random rounds above rarely draw: empty,
// single-nonzero and fully dense vectors, and row counts that leave a
// partial last tile (rows % nt != 0). Runs in both SIMD and NO_SIMD
// builds (CI covers the scalar tier explicitly).
TEST(FuzzDifferential, EdgeVectorsAndTailTilesAgree) {
  for (const index_t nt : {index_t{16}, index_t{32}, index_t{64}}) {
    for (const index_t rows : {nt - 3, 3 * nt + 7, index_t{257}}) {
      const index_t cols = rows + 5;  // cols % nt != 0 too
      const Csr<value_t> a = Csr<value_t>::from_coo(
          gen_erdos_renyi(rows, cols, 0.08, 77 + nt + rows));
      const TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, nt, 2);
      const TileMatrix<value_t> at =
          TileMatrix<value_t>::from_csr(a.transpose(), nt, 2);
      for (const double sparsity : {-1.0, 0.0, 1.0}) {
        SparseVec<value_t> x(cols);
        if (sparsity < 0.0) {
          x.push(cols / 2, 1.5);  // single nonzero
        } else if (sparsity > 0.0) {
          for (index_t j = 0; j < cols; ++j) x.push(j, 0.25 + j % 7);  // full
        }  // else: empty
        SCOPED_TRACE("nt=" + std::to_string(nt) + " rows=" +
                     std::to_string(rows) + " case=" +
                     std::to_string(sparsity));
        const SparseVec<value_t> expect = spmspv_rowwise_reference(a, x);
        const TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, nt);
        ASSERT_TRUE(approx_equal(tile_spmspv(tiled, xt), expect));
        ASSERT_TRUE(approx_equal(tile_spmspv_csc(at, xt), expect));
        if (nt == 16) {
          const PackedTileMatrix<value_t> p =
              PackedTileMatrix<value_t>::from_csr(a);
          ASSERT_TRUE(approx_equal(packed_tile_spmspv(p, xt), expect));
        }
      }
    }
  }
}

}  // namespace
}  // namespace tilespmspv
