// v2 tile-file (TTLF) round-trip tests: write_tile_matrix_file_v2 /
// map_tile_matrix_file and the BitTileGraph pair must reproduce the in-
// memory structures exactly — the mapped views are compared field by field
// AND differentially through the kernels (SpMSpV results and BFS levels
// must be bit-identical between the owned and the mapped structure).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bfs/tile_bfs.hpp"
#include "core/spmspv.hpp"
#include "formats/csr.hpp"
#include "formats/tile_file.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/grid.hpp"
#include "gen/vector_gen.hpp"
#include "tile/bit_tile_graph.hpp"
#include "tile/tile_matrix.hpp"
#include "util/types.hpp"

namespace tilespmspv {
namespace {

std::string tmp_path(const char* tag) {
  return std::string("/tmp/tilespmspv_tile_file_test_") + tag + ".bin";
}

/// Removes the temp file on scope exit so failed assertions don't leak.
struct FileGuard {
  std::string path;
  ~FileGuard() { std::remove(path.c_str()); }
};

void expect_tile_matrix_eq(const TileMatrix<value_t>& a,
                           const TileMatrix<value_t>& b) {
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.cols, b.cols);
  EXPECT_EQ(a.nt, b.nt);
  EXPECT_TRUE(a.tile_row_ptr == b.tile_row_ptr);
  EXPECT_TRUE(a.tile_col_id == b.tile_col_id);
  EXPECT_TRUE(a.tile_nnz_ptr == b.tile_nnz_ptr);
  EXPECT_TRUE(a.intra_row_ptr == b.intra_row_ptr);
  EXPECT_TRUE(a.local_col == b.local_col);
  EXPECT_TRUE(a.vals == b.vals);
  EXPECT_EQ(a.extracted.row_idx, b.extracted.row_idx);
  EXPECT_EQ(a.extracted.col_idx, b.extracted.col_idx);
  EXPECT_EQ(a.extracted.vals, b.extracted.vals);
  EXPECT_TRUE(a.side_col_ptr == b.side_col_ptr);
  EXPECT_TRUE(a.side_row_idx == b.side_row_idx);
  EXPECT_TRUE(a.side_vals == b.side_vals);
  EXPECT_TRUE(a.side_row_ptr == b.side_row_ptr);
}

TEST(TileFile, HeaderAndProbe) {
  const FileGuard f{tmp_path("header")};
  const auto a = Csr<value_t>::from_coo(gen_erdos_renyi(200, 180, 0.03, 11));
  const auto m = TileMatrix<value_t>::from_csr(a, 16, 2);
  const std::uint64_t hash = write_tile_matrix_file_v2(f.path, m);
  EXPECT_TRUE(is_tile_file(f.path));
  const TileFileHeader h = read_tile_file_header(f.path);
  EXPECT_EQ(h.magic, kTileFileMagic);
  EXPECT_EQ(h.version, kTileFileVersion);
  EXPECT_EQ(h.kind, static_cast<std::uint32_t>(TileFileKind::kTileMatrix));
  EXPECT_EQ(h.rows, 200);
  EXPECT_EQ(h.cols, 180);
  EXPECT_EQ(h.nt, 16);
  EXPECT_EQ(h.payload_hash, hash);
  EXPECT_EQ(h.flags & kTileFileHasTranspose, 0u);
  EXPECT_GT(h.file_bytes, sizeof(TileFileHeader));
}

TEST(TileFile, MatrixRoundTripAcrossTileSizes) {
  const auto a = Csr<value_t>::from_coo(gen_erdos_renyi(500, 460, 0.02, 42));
  const auto at = a.transpose();
  const SparseVec<value_t> x = gen_sparse_vector(a.cols, 0.05, 7);
  for (const index_t nt : {index_t{16}, index_t{32}, index_t{64}}) {
    const FileGuard f{tmp_path("roundtrip")};
    const auto m = TileMatrix<value_t>::from_csr(a, nt, 2);
    const auto mt = TileMatrix<value_t>::from_csr(at, nt, 2);
    write_tile_matrix_file_v2(f.path, m, &mt);
    // Strict load: payload hash verified, structural validators run.
    MappedTileMatrix mm = map_tile_matrix_file(f.path, /*verify_hash=*/true,
                                               /*deep_validate=*/true);
    ASSERT_TRUE(mm.has_transpose) << "nt " << nt;
    EXPECT_EQ(mm.tiled.placed, Placement::kMapped);
    EXPECT_TRUE(mm.tiled.vals.is_view());
    expect_tile_matrix_eq(m, mm.tiled);
    expect_tile_matrix_eq(mt, mm.tiled_t);

    // Differential: the same multiply through the owned and the mapped
    // structure must be bit-identical (same kernel on both sides).
    SpmspvConfig cfg;
    cfg.nt = nt;
    cfg.kernel = SpmspvKernel::kCsr;
    SpmspvOperator<value_t> ref(a, cfg);
    SpmspvOperator<value_t> map_op(std::move(mm.tiled), std::move(mm.tiled_t),
                                   cfg);
    const SparseVec<value_t> y_ref = ref.multiply(x);
    const SparseVec<value_t> y_map = map_op.multiply(x);
    EXPECT_EQ(y_ref.idx, y_map.idx) << "nt " << nt;
    EXPECT_EQ(y_ref.vals, y_map.vals) << "nt " << nt;

    // The CSC (vector-driven) kernel reads the mapped transpose.
    cfg.kernel = SpmspvKernel::kCsc;
    SpmspvOperator<value_t> ref_csc(a, cfg);
    MappedTileMatrix mm2 = map_tile_matrix_file(f.path);
    SpmspvOperator<value_t> map_csc(std::move(mm2.tiled),
                                    std::move(mm2.tiled_t), cfg);
    const SparseVec<value_t> z_ref = ref_csc.multiply(x);
    const SparseVec<value_t> z_map = map_csc.multiply(x);
    EXPECT_EQ(z_ref.idx, z_map.idx) << "nt " << nt;
    EXPECT_EQ(z_ref.vals, z_map.vals) << "nt " << nt;
  }
}

TEST(TileFile, GraphRoundTripAndBfsLevels) {
  const FileGuard f{tmp_path("graph")};
  // Structured graph: grid locality keeps tiles stored (not extracted).
  const auto a = Csr<value_t>::from_coo(gen_grid2d(48, 48));
  const auto g = BitTileGraph<32>::from_csr(a, 2);
  write_bit_tile_graph_file<32>(f.path, g);
  const TileFileHeader h = read_tile_file_header(f.path);
  EXPECT_EQ(h.kind, static_cast<std::uint32_t>(TileFileKind::kBitTileGraph));
  EXPECT_EQ(h.nt, 32);
  EXPECT_EQ(h.rows, a.rows);
  EXPECT_EQ(h.edges, g.edges);

  const auto gm = map_bit_tile_graph_file<32>(f.path, /*verify_hash=*/true,
                                              /*deep_validate=*/true);
  EXPECT_EQ(gm.placed, Placement::kMapped);
  EXPECT_EQ(gm.n, g.n);
  EXPECT_EQ(gm.edges, g.edges);
  EXPECT_EQ(gm.shared_masks, g.shared_masks);
  EXPECT_TRUE(gm.csr_tile_ptr == g.csr_tile_ptr);
  EXPECT_TRUE(gm.csr_tile_col == g.csr_tile_col);
  EXPECT_TRUE(gm.csr_masks == g.csr_masks);
  EXPECT_TRUE(gm.side_dst == g.side_dst);

  // Differential BFS: the file-backed traversal engine must produce the
  // exact levels of the in-memory build.
  TileBfsConfig bcfg;
  bcfg.forced_tile_size = 32;
  const TileBfs mem(a, bcfg);
  const TileBfs mapped(f.path);
  const BfsResult r1 = mem.run(0);
  const BfsResult r2 = mapped.run(0);
  EXPECT_EQ(r1.levels, r2.levels);
}

TEST(TileFile, WrongKindAndMissingFileThrow) {
  const FileGuard f{tmp_path("kind")};
  const auto a = Csr<value_t>::from_coo(gen_erdos_renyi(100, 100, 0.03, 5));
  const auto g = BitTileGraph<32>::from_csr(a, 2);
  write_bit_tile_graph_file<32>(f.path, g);
  // A graph file is not a matrix file, and NT must match the header.
  EXPECT_THROW(map_tile_matrix_file(f.path), std::runtime_error);
  EXPECT_THROW(map_bit_tile_graph_file<16>(f.path), std::runtime_error);
  EXPECT_THROW(map_tile_matrix_file("/nonexistent/no.ttlf"),
               std::runtime_error);
  EXPECT_FALSE(is_tile_file("/nonexistent/no.ttlf"));
}

}  // namespace
}  // namespace tilespmspv
