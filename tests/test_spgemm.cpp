// Tests for the SpGEMM substrate: Gustavson row-row, the tiled SpGEMM,
// the via-SpGEMM SpMSpV strawman — all validated against a dense triple
// loop and against each other.
#include <gtest/gtest.h>

#include "core/spmspv_reference.hpp"
#include "gen/banded.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"
#include "spgemm/gustavson.hpp"
#include "spgemm/tile_spgemm.hpp"

namespace tilespmspv {
namespace {

std::vector<std::vector<double>> to_dense(const Csr<value_t>& a) {
  std::vector<std::vector<double>> d(a.rows, std::vector<double>(a.cols, 0.0));
  for (index_t r = 0; r < a.rows; ++r) {
    for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      d[r][a.col_idx[i]] = a.vals[i];
    }
  }
  return d;
}

void expect_equals_dense_product(const Csr<value_t>& a, const Csr<value_t>& b,
                                 const Csr<value_t>& c) {
  ASSERT_EQ(c.rows, a.rows);
  ASSERT_EQ(c.cols, b.cols);
  const auto da = to_dense(a), db = to_dense(b), dc = to_dense(c);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t j = 0; j < b.cols; ++j) {
      double expect = 0.0;
      for (index_t k = 0; k < a.cols; ++k) expect += da[i][k] * db[k][j];
      ASSERT_NEAR(dc[i][j], expect, 1e-9 * (1.0 + std::abs(expect)))
          << i << "," << j;
    }
  }
}

class SpgemmShapes
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t,
                                                 double>> {};

TEST_P(SpgemmShapes, GustavsonMatchesDense) {
  const auto [m, k, n, density] = GetParam();
  Csr<value_t> a = Csr<value_t>::from_coo(gen_erdos_renyi(m, k, density, 1301));
  Csr<value_t> b = Csr<value_t>::from_coo(gen_erdos_renyi(k, n, density, 1302));
  expect_equals_dense_product(a, b, spgemm_gustavson(a, b));
}

TEST_P(SpgemmShapes, TiledMatchesDense) {
  const auto [m, k, n, density] = GetParam();
  Csr<value_t> a = Csr<value_t>::from_coo(gen_erdos_renyi(m, k, density, 1303));
  Csr<value_t> b = Csr<value_t>::from_coo(gen_erdos_renyi(k, n, density, 1304));
  expect_equals_dense_product(a, b, tile_spgemm(a, b, 16));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpgemmShapes,
    ::testing::Values(std::make_tuple(40, 40, 40, 0.1),
                      std::make_tuple(100, 50, 80, 0.05),
                      std::make_tuple(17, 33, 65, 0.2),
                      std::make_tuple(1, 10, 1, 0.5),
                      std::make_tuple(128, 128, 128, 0.02)));

TEST(Spgemm, TiledAgreesWithGustavsonOnLargerMatrices) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(800, 700, 0.01, 1305));
  Csr<value_t> b =
      Csr<value_t>::from_coo(gen_erdos_renyi(700, 900, 0.01, 1306));
  const Csr<value_t> c1 = spgemm_gustavson(a, b);
  const Csr<value_t> c2 = tile_spgemm(a, b, 16);
  ASSERT_EQ(c1.nnz(), c2.nnz());
  EXPECT_EQ(c1.row_ptr, c2.row_ptr);
  EXPECT_EQ(c1.col_idx, c2.col_idx);
  for (offset_t i = 0; i < c1.nnz(); ++i) {
    EXPECT_NEAR(c1.vals[i], c2.vals[i], 1e-9);
  }
}

TEST(Spgemm, TileSizesAgree) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(300, 300, 0.02, 1307));
  const Csr<value_t> ref = spgemm_gustavson(a, a);
  for (index_t nt : {16, 32, 64}) {
    const Csr<value_t> c = tile_spgemm(a, a, nt);
    ASSERT_EQ(c.col_idx, ref.col_idx) << "nt=" << nt;
  }
}

TEST(Spgemm, IdentityIsNeutral) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(200, 200, 0.03, 1308));
  Coo<value_t> eye(200, 200);
  for (index_t i = 0; i < 200; ++i) eye.push(i, i, 1.0);
  Csr<value_t> id = Csr<value_t>::from_coo(eye);
  const Csr<value_t> c = tile_spgemm(a, id, 16);
  EXPECT_EQ(c.row_ptr, a.row_ptr);
  EXPECT_EQ(c.col_idx, a.col_idx);
  for (offset_t i = 0; i < a.nnz(); ++i) {
    EXPECT_NEAR(c.vals[i], a.vals[i], 1e-12);
  }
}

TEST(Spgemm, EmptyOperand) {
  Csr<value_t> a(50, 40);
  Csr<value_t> b =
      Csr<value_t>::from_coo(gen_erdos_renyi(40, 30, 0.1, 1309));
  EXPECT_EQ(spgemm_gustavson(a, b).nnz(), 0);
  EXPECT_EQ(tile_spgemm(a, b, 16).nnz(), 0);
}

TEST(Spgemm, PoolSizesAgree) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(400, 400, 0.02, 1310));
  const Csr<value_t> base = spgemm_gustavson(a, a);
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const Csr<value_t> c = spgemm_gustavson(a, a, &pool);
    EXPECT_EQ(c.col_idx, base.col_idx);
    EXPECT_EQ(c.vals, base.vals);  // deterministic assembly
  }
}

TEST(SpmspvViaSpgemm, MatchesReference) {
  // The paper's strawman: SpMSpV computed as A * (n×1 matrix).
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(500, 400, 0.02, 1311));
  for (double sp : {0.001, 0.05, 0.5}) {
    SparseVec<value_t> x = gen_sparse_vector(400, sp, 25);
    EXPECT_TRUE(approx_equal(spmspv_via_spgemm(a, x),
                             spmspv_rowwise_reference(a, x)))
        << sp;
  }
}

TEST(Spgemm, GraphSquareCountsTwoHopPaths) {
  // A^2[i][j] on a 0/1 adjacency counts 2-hop walks i<-k<-j.
  Coo<value_t> coo(4, 4);
  coo.push(1, 0, 1.0);  // 0 -> 1
  coo.push(2, 1, 1.0);  // 1 -> 2
  coo.push(2, 0, 1.0);  // 0 -> 2
  coo.push(3, 2, 1.0);  // 2 -> 3
  Csr<value_t> a = Csr<value_t>::from_coo(coo);
  const Csr<value_t> a2 = tile_spgemm(a, a, 16);
  const auto d = to_dense(a2);
  EXPECT_DOUBLE_EQ(d[2][0], 1.0);  // 0 -> 1 -> 2
  EXPECT_DOUBLE_EQ(d[3][1], 1.0);  // 1 -> 2 -> 3
  EXPECT_DOUBLE_EQ(d[3][0], 1.0);  // 0 -> 2 -> 3
  EXPECT_DOUBLE_EQ(d[1][0], 0.0);  // direct edges are not 2-hop walks
}

}  // namespace
}  // namespace tilespmspv
