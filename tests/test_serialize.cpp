// Tests for binary serialization of CSR and tiled matrices: byte-exact
// round trips, derived-index reconstruction, and rejection of corrupt or
// mismatched streams.
#include <gtest/gtest.h>

#include <sstream>

#include "core/spmspv_reference.hpp"
#include "core/tile_spmspv.hpp"
#include "formats/serialize.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"

namespace tilespmspv {
namespace {

TEST(SerializeCsr, RoundTripExact) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(300, 250, 0.02, 1501));
  std::stringstream ss;
  write_csr(ss, a);
  Csr<value_t> b = read_csr(ss);
  EXPECT_EQ(b.rows, a.rows);
  EXPECT_EQ(b.cols, a.cols);
  EXPECT_EQ(b.row_ptr, a.row_ptr);
  EXPECT_EQ(b.col_idx, a.col_idx);
  EXPECT_EQ(b.vals, a.vals);  // bitwise: binary format
}

TEST(SerializeCsr, EmptyMatrix) {
  Csr<value_t> a(5, 7);
  std::stringstream ss;
  write_csr(ss, a);
  Csr<value_t> b = read_csr(ss);
  EXPECT_EQ(b.rows, 5);
  EXPECT_EQ(b.cols, 7);
  EXPECT_EQ(b.nnz(), 0);
}

TEST(SerializeTile, RoundTripPreservesMultiplySemantics) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(500, 500, 0.005, 1502));
  TileMatrix<value_t> m = TileMatrix<value_t>::from_csr(a, 16, 2);
  std::stringstream ss;
  write_tile_matrix(ss, m);
  TileMatrix<value_t> loaded = read_tile_matrix(ss);

  EXPECT_EQ(loaded.num_tiles(), m.num_tiles());
  EXPECT_EQ(loaded.extracted.nnz(), m.extracted.nnz());
  // Derived side indices were rebuilt, not stored: verify functionally.
  EXPECT_EQ(loaded.side_col_ptr, m.side_col_ptr);
  EXPECT_EQ(loaded.side_row_ptr, m.side_row_ptr);

  SparseVec<value_t> x = gen_sparse_vector(500, 0.02, 5);
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
  SparseVec<value_t> y1 = tile_spmspv(m, xt);
  SparseVec<value_t> y2 = tile_spmspv(loaded, xt);
  EXPECT_EQ(y1.idx, y2.idx);
  EXPECT_EQ(y1.vals, y2.vals);
}

TEST(SerializeTile, FileRoundTrip) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(100, 100, 0.05, 1503));
  TileMatrix<value_t> m = TileMatrix<value_t>::from_csr(a, 32, 1);
  const std::string path = "/tmp/tilespmspv_serialize_test.bin";
  write_tile_matrix_file(path, m);
  TileMatrix<value_t> loaded = read_tile_matrix_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.nt, 32);
  EXPECT_EQ(loaded.to_coo().vals, m.to_coo().vals);
}

TEST(Serialize, RejectsWrongMagic) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(50, 50, 0.1, 1504));
  std::stringstream ss;
  write_csr(ss, a);
  // Reading a CSR stream as a tiled matrix must fail cleanly.
  EXPECT_THROW(read_tile_matrix(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(50, 50, 0.1, 1505));
  std::stringstream ss;
  write_csr(ss, a);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_csr(cut), std::runtime_error);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss("not a tile matrix at all");
  EXPECT_THROW(read_tile_matrix(ss), std::runtime_error);
}

TEST(SerializeTile, MissingFileThrows) {
  EXPECT_THROW(read_tile_matrix_file("/tmp/does-not-exist-tilespmspv.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace tilespmspv
