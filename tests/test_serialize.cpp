// Tests for binary serialization of CSR and tiled matrices: byte-exact
// round trips, derived-index reconstruction, and rejection of corrupt or
// mismatched streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>

#include "core/spmspv_reference.hpp"
#include "core/tile_spmspv.hpp"
#include "formats/serialize.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/vector_gen.hpp"

namespace tilespmspv {
namespace {

TEST(SerializeCsr, RoundTripExact) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(300, 250, 0.02, 1501));
  std::stringstream ss;
  write_csr(ss, a);
  Csr<value_t> b = read_csr(ss);
  EXPECT_EQ(b.rows, a.rows);
  EXPECT_EQ(b.cols, a.cols);
  EXPECT_EQ(b.row_ptr, a.row_ptr);
  EXPECT_EQ(b.col_idx, a.col_idx);
  EXPECT_EQ(b.vals, a.vals);  // bitwise: binary format
}

TEST(SerializeCsr, EmptyMatrix) {
  Csr<value_t> a(5, 7);
  std::stringstream ss;
  write_csr(ss, a);
  Csr<value_t> b = read_csr(ss);
  EXPECT_EQ(b.rows, 5);
  EXPECT_EQ(b.cols, 7);
  EXPECT_EQ(b.nnz(), 0);
}

TEST(SerializeTile, RoundTripPreservesMultiplySemantics) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(500, 500, 0.005, 1502));
  TileMatrix<value_t> m = TileMatrix<value_t>::from_csr(a, 16, 2);
  std::stringstream ss;
  write_tile_matrix(ss, m);
  TileMatrix<value_t> loaded = read_tile_matrix(ss);

  EXPECT_EQ(loaded.num_tiles(), m.num_tiles());
  EXPECT_EQ(loaded.extracted.nnz(), m.extracted.nnz());
  // Derived side indices were rebuilt, not stored: verify functionally.
  EXPECT_EQ(loaded.side_col_ptr, m.side_col_ptr);
  EXPECT_EQ(loaded.side_row_ptr, m.side_row_ptr);

  SparseVec<value_t> x = gen_sparse_vector(500, 0.02, 5);
  TileVector<value_t> xt = TileVector<value_t>::from_sparse(x, 16);
  SparseVec<value_t> y1 = tile_spmspv(m, xt);
  SparseVec<value_t> y2 = tile_spmspv(loaded, xt);
  EXPECT_EQ(y1.idx, y2.idx);
  EXPECT_EQ(y1.vals, y2.vals);
}

TEST(SerializeTile, FileRoundTrip) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(100, 100, 0.05, 1503));
  TileMatrix<value_t> m = TileMatrix<value_t>::from_csr(a, 32, 1);
  const std::string path = "/tmp/tilespmspv_serialize_test.bin";
  write_tile_matrix_file(path, m);
  TileMatrix<value_t> loaded = read_tile_matrix_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.nt, 32);
  EXPECT_EQ(loaded.to_coo().vals, m.to_coo().vals);
}

TEST(Serialize, RejectsWrongMagic) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(50, 50, 0.1, 1504));
  std::stringstream ss;
  write_csr(ss, a);
  // Reading a CSR stream as a tiled matrix must fail cleanly.
  EXPECT_THROW(read_tile_matrix(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  Csr<value_t> a =
      Csr<value_t>::from_coo(gen_erdos_renyi(50, 50, 0.1, 1505));
  std::stringstream ss;
  write_csr(ss, a);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_csr(cut), std::runtime_error);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss("not a tile matrix at all");
  EXPECT_THROW(read_tile_matrix(ss), std::runtime_error);
}

TEST(SerializeTile, MissingFileThrows) {
  EXPECT_THROW(read_tile_matrix_file("/tmp/does-not-exist-tilespmspv.bin"),
               std::runtime_error);
}

// Builds a matrix whose last tile column holds only isolated entries, so
// extraction reliably produces a non-empty side COO at small thresholds.
Coo<value_t> matrix_with_sparse_fringe() {
  Coo<value_t> coo = gen_erdos_renyi(150, 120, 0.03, 1506);
  coo.cols = 140;
  coo.push(7, 130, 1.0);
  coo.push(64, 125, -0.5);
  coo.push(101, 139, 2.0);
  coo.push(149, 121, 3.0);
  return coo;
}

TEST(SerializeTile, ExtractedCooRoundTripAcrossTileSizes) {
  const Csr<value_t> a = Csr<value_t>::from_coo(matrix_with_sparse_fringe());
  for (const index_t nt : {16, 32, 64}) {
    TileMatrix<value_t> m = TileMatrix<value_t>::from_csr(a, nt, 2);
    ASSERT_GT(m.extracted.nnz(), 0) << "nt=" << nt;
    std::stringstream ss;
    write_tile_matrix(ss, m);
    TileMatrix<value_t> loaded = read_tile_matrix(ss);
    EXPECT_EQ(loaded.extracted.row_idx, m.extracted.row_idx) << "nt=" << nt;
    EXPECT_EQ(loaded.extracted.col_idx, m.extracted.col_idx) << "nt=" << nt;
    EXPECT_EQ(loaded.extracted.vals, m.extracted.vals) << "nt=" << nt;
    // The round trip must be a byte-level fixed point too.
    std::stringstream ss2;
    write_tile_matrix(ss2, loaded);
    EXPECT_EQ(ss.str(), ss2.str()) << "nt=" << nt;
  }
}

/// Returns `bytes` with the little-endian i64 at `offset` replaced by `v`.
std::string patch_i64(std::string bytes, std::size_t offset, std::int64_t v) {
  std::memcpy(&bytes[offset], &v, sizeof(v));
  return bytes;
}

TEST(Serialize, RejectsOversizedArrayLength) {
  Csr<value_t> a = Csr<value_t>::from_coo(gen_erdos_renyi(50, 50, 0.1, 1507));
  std::stringstream ss;
  write_csr(ss, a);
  const std::string base = ss.str();
  // Byte 24 holds the first array's length prefix. A length claiming far
  // more elements than the stream has bytes must be rejected *before* any
  // allocation, not discovered via bad_alloc or a truncated read.
  for (const std::int64_t huge :
       {std::int64_t{1} << 39, std::int64_t{1} << 60,
        std::numeric_limits<std::int64_t>::max()}) {
    std::stringstream bad(patch_i64(base, 24, huge));
    EXPECT_THROW(read_csr(bad), std::runtime_error) << huge;
  }
}

TEST(Serialize, RejectsOutOfRangeDims) {
  Csr<value_t> a = Csr<value_t>::from_coo(gen_erdos_renyi(50, 50, 0.1, 1508));
  std::stringstream ss;
  write_csr(ss, a);
  const std::string base = ss.str();
  // rows is the i64 at byte 8, cols at byte 16. Values outside index_t
  // must throw instead of silently truncating through a 32-bit cast.
  for (const std::size_t offset : {std::size_t{8}, std::size_t{16}}) {
    for (const std::int64_t v :
         {std::int64_t{1} << 40, std::int64_t{-1},
          std::numeric_limits<std::int64_t>::min()}) {
      std::stringstream bad(patch_i64(base, offset, v));
      EXPECT_THROW(read_csr(bad), std::runtime_error)
          << "offset=" << offset << " v=" << v;
    }
  }
}

TEST(Serialize, RejectsImplausibleTileDims) {
  Csr<value_t> a = Csr<value_t>::from_coo(gen_erdos_renyi(40, 40, 0.1, 1509));
  TileMatrix<value_t> m = TileMatrix<value_t>::from_csr(a, 16, 0);
  std::stringstream ss;
  write_tile_matrix(ss, m);
  const std::string base = ss.str();
  // In-range dims (fit index_t) that are wildly larger than the stream
  // could back: the reader must refuse before the Θ(rows + cols) derived
  // indices are allocated.
  std::stringstream bad(
      patch_i64(base, 16, std::numeric_limits<index_t>::max()));
  EXPECT_THROW(read_tile_matrix(bad), std::runtime_error);
}

TEST(Serialize, ProbeIdentifiesKinds) {
  Csr<value_t> a = Csr<value_t>::from_coo(gen_erdos_renyi(30, 30, 0.1, 1510));
  std::stringstream cs;
  write_csr(cs, a);
  EXPECT_EQ(probe_serialized_kind(cs), SerializedKind::kCsr);
  std::stringstream ts;
  write_tile_matrix(ts, TileMatrix<value_t>::from_csr(a, 16, 0));
  EXPECT_EQ(probe_serialized_kind(ts), SerializedKind::kTileMatrix);
  std::stringstream junk("%%MatrixMarket matrix coordinate real general\n");
  EXPECT_EQ(probe_serialized_kind(junk), SerializedKind::kUnknown);
  std::stringstream empty;
  EXPECT_EQ(probe_serialized_kind(empty), SerializedKind::kUnknown);
}

}  // namespace
}  // namespace tilespmspv
