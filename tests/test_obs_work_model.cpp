// Cross-checks measured kernel counters against the analytic work model
// (core/work_model.hpp) over the synthetic suite. For the CSR-form kernel
// the model is exact by construction for tiles scanned/computed, payload
// multiply-adds and gather slots; side-COO multiply-adds are bounded by
// the model's tile-granularity estimate (the kernel skips interior zeros
// of an active vector tile). The CSC form is exact on the tile counts and
// bounded on payload multiply-adds for the same reason.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/tile_spmspv.hpp"
#include "core/work_model.hpp"
#include "gen/suite.hpp"
#include "gen/vector_gen.hpp"
#include "obs/counters.hpp"
#include "parallel/thread_pool.hpp"

namespace tilespmspv {
namespace {

using obs::Counter;
using obs::CounterSnapshot;

#ifndef TILESPMSPV_NO_COUNTERS

constexpr const char* kSuite[] = {"er-small", "fem-small", "road-small",
                                  "web-small", "rmat-small"};
constexpr double kSparsities[] = {0.1, 0.01, 0.001};

std::uint64_t u64(offset_t v) { return static_cast<std::uint64_t>(v); }

TEST(ObsWorkModel, CsrKernelMatchesModelExactly) {
  ThreadPool pool(4);
  for (const char* name : kSuite) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);
    for (const double sp : kSparsities) {
      const TileVector<value_t> xt = TileVector<value_t>::from_sparse(
          gen_sparse_vector(a.cols, sp, 1), 16);
      const SpmspvWork model = work_tile_spmspv_csr(tiled, xt);

      const CounterSnapshot before = obs::counters_snapshot();
      (void)tile_spmspv(tiled, xt, &pool);
      const CounterSnapshot d = obs::counters_snapshot() - before;

      SCOPED_TRACE(std::string(name) + " sparsity " + std::to_string(sp));
      EXPECT_EQ(d[Counter::kTilesScanned], u64(model.tiles_scanned));
      EXPECT_EQ(d[Counter::kTilesComputed], u64(model.tiles_computed));
      EXPECT_EQ(d[Counter::kTilesSkippedEmpty],
                u64(model.tiles_scanned - model.tiles_computed));
      EXPECT_EQ(d[Counter::kPayloadMacs], u64(model.payload_macs));
      EXPECT_EQ(d[Counter::kGatherSlots], u64(model.gather_slots));
      // The kernel skips zero entries inside active vector tiles, so the
      // measured side work is bounded by the model's tile-level estimate.
      EXPECT_LE(d[Counter::kSideMacs], u64(model.side_macs));
    }
  }
}

TEST(ObsWorkModel, CscKernelMatchesModelTileCounts) {
  ThreadPool pool(4);
  for (const char* name : kSuite) {
    const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
    const TileMatrix<value_t> at =
        TileMatrix<value_t>::from_csr(a.transpose(), 16, 2);
    for (const double sp : kSparsities) {
      const TileVector<value_t> xt = TileVector<value_t>::from_sparse(
          gen_sparse_vector(a.cols, sp, 2), 16);
      const SpmspvWork model = work_tile_spmspv_csc(at, xt);

      const CounterSnapshot before = obs::counters_snapshot();
      (void)tile_spmspv_csc(at, xt, &pool);
      const CounterSnapshot d = obs::counters_snapshot() - before;

      SCOPED_TRACE(std::string(name) + " sparsity " + std::to_string(sp));
      EXPECT_EQ(d[Counter::kTilesScanned], u64(model.tiles_scanned));
      EXPECT_EQ(d[Counter::kTilesComputed], u64(model.tiles_computed));
      EXPECT_EQ(d[Counter::kTilesSkippedEmpty], 0u);
      EXPECT_EQ(d[Counter::kGatherSlots], u64(model.gather_slots));
      EXPECT_LE(d[Counter::kPayloadMacs], u64(model.payload_macs));
      EXPECT_LE(d[Counter::kSideMacs], u64(model.side_macs));
      // A dense-ish generated vector tile has no interior zeros only by
      // chance; the measured payload work must still be positive whenever
      // the model predicts any.
      if (model.payload_macs > 0) {
        EXPECT_GT(d[Counter::kPayloadMacs], 0u);
      }
    }
  }
}

TEST(ObsWorkModel, RepeatedRunsAreDeterministic) {
  const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix("band-tiny"));
  const TileMatrix<value_t> tiled = TileMatrix<value_t>::from_csr(a, 16, 2);
  const TileVector<value_t> xt = TileVector<value_t>::from_sparse(
      gen_sparse_vector(a.cols, 0.05, 3), 16);

  CounterSnapshot first_delta;
  for (int rep = 0; rep < 3; ++rep) {
    const CounterSnapshot before = obs::counters_snapshot();
    (void)tile_spmspv(tiled, xt);
    const CounterSnapshot d = obs::counters_snapshot() - before;
    if (rep == 0) {
      first_delta = d;
    } else {
      EXPECT_EQ(d[Counter::kTilesScanned], first_delta[Counter::kTilesScanned]);
      EXPECT_EQ(d[Counter::kPayloadMacs], first_delta[Counter::kPayloadMacs]);
      EXPECT_EQ(d[Counter::kSideMacs], first_delta[Counter::kSideMacs]);
    }
  }
}

#else  // TILESPMSPV_NO_COUNTERS

TEST(ObsWorkModel, CountersCompiledOut) {
  EXPECT_FALSE(obs::counters_enabled());
}

#endif  // TILESPMSPV_NO_COUNTERS

}  // namespace
}  // namespace tilespmspv
