// Uniform random sparse matrices (Erdős–Rényi G(n, p) pattern). Used for
// property-test sweeps and as the unstructured end of the benchmark suite
// (worst case for tiling: nonzeros scatter, tiles stay near-singleton).
#pragma once

#include <cmath>

#include "formats/coo.hpp"
#include "util/prng.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Samples each entry independently with probability `p` using geometric
/// skipping, so cost is O(nnz) not O(rows*cols).
inline Coo<value_t> gen_erdos_renyi(index_t rows, index_t cols, double p,
                                    std::uint64_t seed) {
  Coo<value_t> m(rows, cols);
  if (p <= 0.0) return m;
  if (p >= 1.0) p = 1.0;
  Prng rng(seed);
  const double log1mp = std::log1p(-p);
  const double total = static_cast<double>(rows) * cols;
  m.reserve(static_cast<std::size_t>(total * p * 1.1) + 16);
  // Walk a virtual flattened index with geometric gaps.
  double pos = -1.0;
  for (;;) {
    double u = rng.next_double();
    if (u == 0.0) u = 0.5;  // avoid log(0)
    const double skip = (p >= 1.0) ? 1.0 : std::floor(std::log(u) / log1mp) + 1.0;
    pos += skip;
    if (pos >= total) break;
    const auto flat = static_cast<std::uint64_t>(pos);
    m.push(static_cast<index_t>(flat / cols),
           static_cast<index_t>(flat % cols), rng.next_double(0.1, 1.0));
  }
  return m;
}

/// Samples exactly `nnz` distinct positions uniformly at random.
inline Coo<value_t> gen_uniform_nnz(index_t rows, index_t cols, offset_t nnz,
                                    std::uint64_t seed) {
  Coo<value_t> m(rows, cols);
  Prng rng(seed);
  m.reserve(static_cast<std::size_t>(nnz));
  for (offset_t i = 0; i < nnz; ++i) {
    m.push(static_cast<index_t>(rng.next_below(rows)),
           static_cast<index_t>(rng.next_below(cols)),
           rng.next_double(0.1, 1.0));
  }
  m.sort_row_major();
  m.sum_duplicates();
  return m;
}

}  // namespace tilespmspv
