// FEM-style matrices: dense blocks along a band. Structural matrices in
// the paper's representative set (cant, ldoor, msdoor, audikw_1, ML_Geer,
// af_5_k101...) come from 3D finite-element meshes whose reordered form is
// a banded matrix of small dense node blocks — ideal for tiling, since
// nonzeros concentrate into few, dense tiles. This generator reproduces
// that profile directly.
#pragma once

#include <algorithm>

#include "formats/coo.hpp"
#include "util/prng.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct BandedParams {
  index_t n = 10000;
  index_t block = 8;        // dense node-block size
  index_t band_blocks = 6;  // how many block-columns the band spans per side
  double block_fill = 0.9;  // probability a block inside the band is present
  double intra_fill = 1.0;  // density inside a present block
};

/// Symmetric block-banded matrix (values random positive; diagonal always
/// present so the graph stays connected along the band).
inline Coo<value_t> gen_banded(const BandedParams& prm, std::uint64_t seed) {
  Prng rng(seed);
  Coo<value_t> coo(prm.n, prm.n);
  const index_t nblocks = ceil_div(prm.n, prm.block);
  for (index_t bi = 0; bi < nblocks; ++bi) {
    const index_t r0 = bi * prm.block;
    const index_t r1 = std::min<index_t>(r0 + prm.block, prm.n);
    for (index_t bj = bi; bj < std::min<index_t>(bi + prm.band_blocks + 1,
                                                 nblocks);
         ++bj) {
      const bool diag = bj == bi;
      if (!diag && !rng.next_bool(prm.block_fill)) continue;
      const index_t c0 = bj * prm.block;
      const index_t c1 = std::min<index_t>(c0 + prm.block, prm.n);
      for (index_t r = r0; r < r1; ++r) {
        for (index_t c = diag ? r : c0; c < c1; ++c) {
          if (prm.intra_fill < 1.0 && !rng.next_bool(prm.intra_fill)) continue;
          const double v = rng.next_double(0.1, 1.0);
          coo.push(r, c, v);
          if (c != r) coo.push(c, r, v);
        }
      }
    }
  }
  coo.sort_row_major();
  coo.sum_duplicates();
  return coo;
}

}  // namespace tilespmspv
