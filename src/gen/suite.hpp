// The named synthetic matrix suite standing in for the SuiteSparse Matrix
// Collection. Each of the paper's representative matrices (Table 2, the
// Enterprise set of Fig. 12) gets a scaled analog built by the generator
// whose structural class matches it: FEM solids -> block-banded, road
// networks -> thinned grids, web graphs -> localized power-law, social
// networks -> R-MAT. Names are stable identifiers used by the bench
// harnesses; every matrix is deterministic (fixed seeds).
#pragma once

#include <string>
#include <vector>

#include "formats/coo.hpp"

namespace tilespmspv {

/// Builds the named suite matrix. Throws std::invalid_argument for unknown
/// names; suite_all_names() lists the valid ones.
Coo<value_t> suite_matrix(const std::string& name);

/// One-line structural description (printed by the harnesses).
std::string suite_description(const std::string& name);

/// Structural class label ("FEM", "road", "social", "web", "mesh",
/// "random", "other") — the per-class axis the BFS results split along.
std::string suite_class(const std::string& name);

/// Analogs of the paper's 12 representative matrices (Table 2 order).
std::vector<std::string> suite_representative12();

/// Analogs of the 6 matrices in the Enterprise comparison (Fig. 12).
std::vector<std::string> suite_enterprise6();

/// Broad square+rectangular sweep for the SpMSpV comparison (Fig. 6).
std::vector<std::string> suite_spmspv_sweep();

/// Square sweep for the BFS comparison (Fig. 7).
std::vector<std::string> suite_bfs_sweep();

/// Every defined name.
std::vector<std::string> suite_all_names();

}  // namespace tilespmspv
