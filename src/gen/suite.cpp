#include "gen/suite.hpp"

#include <functional>
#include <map>
#include <stdexcept>

#include "gen/banded.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/grid.hpp"
#include "gen/powerlaw.hpp"
#include "gen/rmat.hpp"

namespace tilespmspv {

namespace {

struct Entry {
  std::function<Coo<value_t>()> make;
  std::string description;
};

Coo<value_t> banded(index_t n, index_t block, index_t band, double fill,
                    std::uint64_t seed, double intra = 1.0) {
  BandedParams p;
  p.n = n;
  p.block = block;
  p.band_blocks = band;
  p.block_fill = fill;
  p.intra_fill = intra;
  return gen_banded(p, seed);
}

Coo<value_t> powerlaw(index_t n, double deg, double loc, index_t window,
                      bool sym, std::uint64_t seed) {
  PowerlawParams p;
  p.n = n;
  p.avg_degree = deg;
  p.locality = loc;
  p.window = window;
  p.symmetric = sym;
  return gen_powerlaw(p, seed);
}

Coo<value_t> rmat(int scale, int ef, std::uint64_t seed) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = ef;
  return gen_rmat(p, seed);
}

// Central registry. Sizes are scaled-down analogs sized so that the whole
// suite builds and benches on a laptop-class host; structural class (and
// therefore tile occupancy profile) is what matters for the experiments.
const std::map<std::string, Entry>& registry() {
  static const std::map<std::string, Entry> table = {
      // ---- Table 2 representative analogs ------------------------------
      {"af_5_k101",
       {[] { return banded(40000, 6, 5, 0.85, 101); },
        "FEM sheet (block-banded), analog of af_5_k101"}},
      {"cant",
       {[] { return banded(12000, 6, 6, 0.95, 102); },
        "FEM cantilever (block-banded), analog of cant"}},
      {"cavity23",
       {[] { return banded(4000, 4, 8, 0.8, 103, 0.9); },
        "CFD cavity (narrow band), analog of cavity23"}},
      {"pdb1HYS",
       {[] { return banded(9000, 8, 10, 0.9, 104); },
        "protein contact matrix (dense band), analog of pdb1HYS"}},
      {"fullb",
       {[] { return banded(25000, 8, 6, 0.9, 105); },
        "structural FEM, analog of fullb"}},
      {"ldoor",
       {[] { return banded(60000, 4, 6, 0.9, 106); },
        "large FEM solid, analog of ldoor"}},
      {"in-2004",
       {[] { return powerlaw(60000, 10, 0.8, 128, true, 107); },
        "web graph (power-law with locality), analog of in-2004"}},
      {"msdoor",
       {[] { return banded(35000, 6, 5, 0.9, 108); },
        "medium FEM solid, analog of msdoor"}},
      {"roadNet-TX",
       {[] { return gen_grid2d(300, 300, 0.85, 109); },
        "road network (thinned 2D grid), analog of roadNet-TX"}},
      {"ML_Geer",
       {[] { return banded(40000, 8, 6, 0.95, 110); },
        "heavy FEM matrix, analog of ML_Geer"}},
      {"333SP",
       {[] { return gen_grid2d(350, 350, 1.0, 111); },
        "2D mesh, analog of 333SP"}},
      {"dielFilterV2clx",
       {[] { return banded(30000, 10, 4, 0.7, 112); },
        "EM FEM matrix, analog of dielFilterV2clx"}},
      // ---- Enterprise comparison analogs (Fig. 12) ---------------------
      {"FB",
       {[] { return rmat(15, 16, 201); },
        "social network (R-MAT), analog of the Facebook graph"}},
      {"KR-21-128",
       {[] { return rmat(15, 24, 202); },
        "Kronecker graph, analog of KR-21-128"}},
      {"TW",
       {[] { return powerlaw(50000, 16, 0.2, 64, true, 203); },
        "hub-heavy social graph, analog of the Twitter graph"}},
      {"audikw_1",
       {[] { return banded(30000, 10, 6, 0.95, 204); },
        "automotive FEM, analog of audikw_1"}},
      {"roadCA",
       {[] { return gen_grid2d(320, 320, 0.8, 205); },
        "road network, analog of roadNet-CA"}},
      {"europe.osm",
       {[] { return gen_grid2d(500, 400, 0.7, 206); },
        "continental road network, analog of europe.osm"}},
      // ---- Sweep extras (structural variety for Figs. 6 & 7) -----------
      {"er-small",
       {[] { return gen_erdos_renyi(5000, 5000, 2e-3, 301); },
        "uniform random, 5K, ~50K nnz"}},
      {"er-medium",
       {[] { return gen_erdos_renyi(30000, 30000, 3e-4, 302); },
        "uniform random, 30K, ~270K nnz"}},
      {"er-rect-tall",
       {[] { return gen_erdos_renyi(40000, 8000, 5e-4, 303); },
        "rectangular uniform random (tall)"}},
      {"er-rect-wide",
       {[] { return gen_erdos_renyi(8000, 40000, 5e-4, 304); },
        "rectangular uniform random (wide)"}},
      {"grid3d-fem",
       {[] { return gen_grid3d(40, 40, 40); },
        "3D 7-point grid, 64K vertices"}},
      {"rmat-sparse",
       {[] { return rmat(14, 8, 305); }, "R-MAT scale 14, edge factor 8"}},
      {"powerlaw-directed",
       {[] { return powerlaw(40000, 8, 0.6, 96, false, 306); },
        "directed power-law web graph"}},
      {"band-tiny",
       {[] { return banded(2000, 4, 3, 0.9, 307); },
        "small banded matrix"}},
      {"band-scattered",
       {[] {
          // Band plus uniform scatter: exercises very-sparse tile
          // extraction (the cryg10000 case of §4.2).
          Coo<value_t> b = banded(10000, 4, 3, 0.9, 308);
          Coo<value_t> noise = gen_uniform_nnz(10000, 10000, 20000, 309);
          for (index_t i = 0; i < noise.nnz(); ++i) {
            b.push(noise.row_idx[i], noise.col_idx[i], noise.vals[i]);
          }
          b.sort_row_major();
          b.sum_duplicates();
          return b;
        },
        "banded plus uniform scatter (COO-extraction stress)"}},
      {"diag-only",
       {[] {
          Coo<value_t> d(20000, 20000);
          for (index_t i = 0; i < 20000; ++i) d.push(i, i, 1.0);
          return d;
        },
        "pure diagonal (degenerate tiling case)"}},
      // ---- Size-graded variants (the Fig. 7 size axis) -----------------
      {"fem-small",
       {[] { return banded(8000, 6, 5, 0.9, 401); },
        "small FEM solid (size-sweep point)"}},
      {"fem-large",
       {[] { return banded(120000, 4, 6, 0.9, 402); },
        "large FEM solid (size-sweep point)"}},
      {"road-small",
       {[] { return gen_grid2d(150, 150, 0.85, 403); },
        "small road network (size-sweep point)"}},
      {"road-large",
       {[] { return gen_grid2d(600, 500, 0.85, 404); },
        "large road network (size-sweep point)"}},
      {"rmat-small",
       {[] { return rmat(13, 16, 405); },
        "small R-MAT graph (size-sweep point)"}},
      {"rmat-large",
       {[] { return rmat(16, 16, 406); },
        "large R-MAT graph (size-sweep point)"}},
      {"web-small",
       {[] { return powerlaw(15000, 10, 0.8, 128, true, 407); },
        "small web graph (size-sweep point)"}},
      {"web-large",
       {[] { return powerlaw(150000, 10, 0.8, 128, true, 408); },
        "large web graph (size-sweep point)"}},
  };
  return table;
}

}  // namespace

Coo<value_t> suite_matrix(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    throw std::invalid_argument("unknown suite matrix: " + name);
  }
  return it->second.make();
}

std::string suite_description(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    throw std::invalid_argument("unknown suite matrix: " + name);
  }
  return it->second.description;
}

std::string suite_class(const std::string& name) {
  static const std::map<std::string, std::string> classes = {
      {"af_5_k101", "FEM"},      {"cant", "FEM"},
      {"cavity23", "FEM"},       {"pdb1HYS", "FEM"},
      {"fullb", "FEM"},          {"ldoor", "FEM"},
      {"msdoor", "FEM"},         {"ML_Geer", "FEM"},
      {"dielFilterV2clx", "FEM"},{"audikw_1", "FEM"},
      {"fem-small", "FEM"},      {"fem-large", "FEM"},
      {"band-tiny", "FEM"},
      {"roadNet-TX", "road"},    {"roadCA", "road"},
      {"europe.osm", "road"},    {"road-small", "road"},
      {"road-large", "road"},
      {"333SP", "mesh"},         {"grid3d-fem", "mesh"},
      {"FB", "social"},          {"KR-21-128", "social"},
      {"TW", "social"},          {"rmat-sparse", "social"},
      {"rmat-small", "social"},  {"rmat-large", "social"},
      {"in-2004", "web"},        {"powerlaw-directed", "web"},
      {"web-small", "web"},      {"web-large", "web"},
      {"er-small", "random"},    {"er-medium", "random"},
      {"er-rect-tall", "random"},{"er-rect-wide", "random"},
      {"band-scattered", "other"},{"diag-only", "other"},
  };
  const auto it = classes.find(name);
  return it == classes.end() ? "other" : it->second;
}

std::vector<std::string> suite_representative12() {
  return {"af_5_k101", "cant",    "cavity23",   "pdb1HYS",
          "fullb",     "ldoor",   "in-2004",    "msdoor",
          "roadNet-TX", "ML_Geer", "333SP",     "dielFilterV2clx"};
}

std::vector<std::string> suite_enterprise6() {
  return {"FB", "KR-21-128", "TW", "audikw_1", "roadCA", "europe.osm"};
}

std::vector<std::string> suite_spmspv_sweep() {
  std::vector<std::string> names = suite_representative12();
  for (const char* extra :
       {"er-small", "er-medium", "er-rect-tall", "er-rect-wide", "grid3d-fem",
        "rmat-sparse", "powerlaw-directed", "band-tiny", "band-scattered",
        "diag-only", "fem-small", "fem-large", "road-small", "web-small"}) {
    names.push_back(extra);
  }
  return names;
}

std::vector<std::string> suite_bfs_sweep() {
  std::vector<std::string> names = suite_representative12();
  for (const char* extra :
       {"FB", "KR-21-128", "TW", "audikw_1", "roadCA", "europe.osm",
        "er-medium", "grid3d-fem", "rmat-sparse", "band-scattered",
        "fem-small", "fem-large", "road-small", "road-large", "rmat-small",
        "rmat-large", "web-small", "web-large"}) {
    names.push_back(extra);
  }
  return names;
}

std::vector<std::string> suite_all_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) {
    names.push_back(name);
  }
  return names;
}

}  // namespace tilespmspv
