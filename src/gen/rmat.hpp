// R-MAT / Kronecker graph generator (Graph500 style) — the synthetic
// analog of social-network and web matrices (power-law degree, community
// structure). Stand-in for matrices like KR-21-128, FB and TW in the
// paper's Enterprise comparison.
#pragma once

#include "formats/coo.hpp"
#include "util/prng.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct RmatParams {
  int scale = 14;           // n = 2^scale vertices
  int edge_factor = 8;      // m = edge_factor * n directed edges
  double a = 0.57, b = 0.19, c = 0.19;  // Graph500 defaults (d = 1-a-b-c)
  bool symmetric = true;    // mirror edges to make the graph undirected
};

/// Generates an R-MAT adjacency pattern with unit values, duplicates merged
/// and self-loops removed.
inline Coo<value_t> gen_rmat(const RmatParams& prm, std::uint64_t seed) {
  const index_t n = index_t{1} << prm.scale;
  const offset_t m = static_cast<offset_t>(prm.edge_factor) * n;
  Prng rng(seed);
  Coo<value_t> coo(n, n);
  coo.reserve(static_cast<std::size_t>(m));
  for (offset_t e = 0; e < m; ++e) {
    index_t r = 0, c = 0;
    for (int level = 0; level < prm.scale; ++level) {
      const double u = rng.next_double();
      r <<= 1;
      c <<= 1;
      if (u < prm.a) {
        // top-left quadrant: nothing to add
      } else if (u < prm.a + prm.b) {
        c |= 1;
      } else if (u < prm.a + prm.b + prm.c) {
        r |= 1;
      } else {
        r |= 1;
        c |= 1;
      }
    }
    if (r == c) continue;  // drop self-loops (BFS adjacency convention)
    coo.push(r, c, 1.0);
  }
  coo.sort_row_major();
  coo.sum_duplicates();
  if (prm.symmetric) coo.symmetrize();
  for (auto& v : coo.vals) v = 1.0;  // merged duplicates collapse to 1
  return coo;
}

}  // namespace tilespmspv
