// Sparse input vector generation for the SpMSpV experiments. The paper's
// Figure 6 sweeps vector sparsity over {0.1, 0.01, 0.001, 0.0001} with
// "random seeds 1" so the experiment is reproducible; this mirrors that.
#pragma once

#include <algorithm>

#include "formats/sparse_vector.hpp"
#include "util/prng.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Random sparse vector with ~sparsity*n nonzeros at uniform positions
/// (at least one nonzero so the multiply is never trivially empty).
inline SparseVec<value_t> gen_sparse_vector(index_t n, double sparsity,
                                            std::uint64_t seed = 1) {
  Prng rng(seed);
  const auto target = std::max<index_t>(
      1, static_cast<index_t>(sparsity * static_cast<double>(n)));
  SparseVec<value_t> x(n);
  x.idx.reserve(target);
  // Sample without replacement via a sorted draw-and-dedupe loop; target is
  // tiny relative to n at the sparsities studied, so rejection is rare.
  while (static_cast<index_t>(x.idx.size()) < target) {
    const index_t need = target - static_cast<index_t>(x.idx.size());
    for (index_t i = 0; i < need; ++i) {
      x.idx.push_back(static_cast<index_t>(rng.next_below(n)));
    }
    std::sort(x.idx.begin(), x.idx.end());
    x.idx.erase(std::unique(x.idx.begin(), x.idx.end()), x.idx.end());
  }
  x.vals.resize(x.idx.size());
  for (auto& v : x.vals) v = rng.next_double(0.1, 1.0);
  return x;
}

/// Clustered sparse vector: nonzeros grouped into runs of `cluster` so that
/// few vector tiles are touched — the favourable case for tiled skipping.
inline SparseVec<value_t> gen_clustered_vector(index_t n, double sparsity,
                                               index_t cluster,
                                               std::uint64_t seed = 1) {
  Prng rng(seed);
  const auto target = std::max<index_t>(
      1, static_cast<index_t>(sparsity * static_cast<double>(n)));
  std::vector<index_t> picks;
  while (static_cast<index_t>(picks.size()) < target) {
    const index_t start = static_cast<index_t>(rng.next_below(n));
    for (index_t j = 0;
         j < cluster && start + j < n &&
         static_cast<index_t>(picks.size()) < target;
         ++j) {
      picks.push_back(start + j);
    }
  }
  std::sort(picks.begin(), picks.end());
  picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
  SparseVec<value_t> x(n);
  for (index_t i : picks) x.push(i, rng.next_double(0.1, 1.0));
  return x;
}

}  // namespace tilespmspv
