// Scale-free graphs with locality — the web-graph analog (in-2004 in the
// paper). Out-degrees follow a Zipf distribution; targets mix a local
// window (web pages link within their site, giving dense diagonal tiles)
// with global uniform jumps (hubs, giving scattered tiles).
#pragma once

#include <algorithm>
#include <cmath>

#include "formats/coo.hpp"
#include "util/prng.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct PowerlawParams {
  index_t n = 50000;
  double avg_degree = 12.0;
  double zipf_exponent = 1.8;  // degree-distribution tail
  double locality = 0.7;       // fraction of edges within the local window
  index_t window = 256;        // local-window radius
  bool symmetric = false;      // web graphs are directed
};

/// Samples a Zipf-like degree via inverse transform on a truncated
/// power-law, then scales degrees so the mean matches avg_degree.
inline Coo<value_t> gen_powerlaw(const PowerlawParams& prm,
                                 std::uint64_t seed) {
  Prng rng(seed);
  // Degree ~ floor(x) with P(x > t) ∝ t^(1-alpha) on [1, dmax].
  const double alpha = prm.zipf_exponent;
  const double dmax = std::max(4.0, std::sqrt(static_cast<double>(prm.n)));
  std::vector<double> raw(prm.n);
  double total = 0.0;
  for (index_t v = 0; v < prm.n; ++v) {
    const double u = rng.next_double();
    // Inverse CDF of truncated Pareto with exponent alpha.
    const double x =
        std::pow(1.0 - u * (1.0 - std::pow(dmax, 1.0 - alpha)),
                 1.0 / (1.0 - alpha));
    raw[v] = x;
    total += x;
  }
  const double scale = prm.avg_degree * prm.n / total;

  Coo<value_t> coo(prm.n, prm.n);
  coo.reserve(static_cast<std::size_t>(prm.avg_degree * prm.n * 1.1));
  for (index_t v = 0; v < prm.n; ++v) {
    const auto deg = static_cast<index_t>(raw[v] * scale + rng.next_double());
    for (index_t e = 0; e < deg; ++e) {
      index_t t;
      if (rng.next_bool(prm.locality)) {
        // Local edge: uniform inside [v - window, v + window].
        const index_t lo = std::max<index_t>(0, v - prm.window);
        const index_t hi = std::min<index_t>(prm.n - 1, v + prm.window);
        t = lo + static_cast<index_t>(rng.next_below(hi - lo + 1));
      } else {
        t = static_cast<index_t>(rng.next_below(prm.n));
      }
      if (t == v) continue;
      coo.push(t, v, 1.0);  // edge v -> t stored as A[t][v]
    }
  }
  coo.sort_row_major();
  coo.sum_duplicates();
  if (prm.symmetric) coo.symmetrize();
  for (auto& val : coo.vals) val = 1.0;
  return coo;
}

}  // namespace tilespmspv
