// Mesh / road-network analogs: 2D 5-point and 3D 7-point grid adjacencies.
// Road networks (roadNet-TX, roadCA, europe.osm in the paper) are near-
// planar with tiny bounded degree; a 2D grid with random edge deletion
// reproduces their tiling profile: a huge number of tiles each holding only
// a few nonzeros near the diagonal.
#pragma once

#include "formats/coo.hpp"
#include "util/prng.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// 5-point 2D grid graph (nx*ny vertices). `keep_prob < 1` randomly deletes
/// edges, mimicking the irregularity of real road networks.
inline Coo<value_t> gen_grid2d(index_t nx, index_t ny, double keep_prob = 1.0,
                               std::uint64_t seed = 1) {
  const index_t n = nx * ny;
  Prng rng(seed);
  Coo<value_t> coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * 4);
  auto id = [nx](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t v = id(x, y);
      if (x + 1 < nx && rng.next_bool(keep_prob)) {
        coo.push(v, id(x + 1, y), 1.0);
        coo.push(id(x + 1, y), v, 1.0);
      }
      if (y + 1 < ny && rng.next_bool(keep_prob)) {
        coo.push(v, id(x, y + 1), 1.0);
        coo.push(id(x, y + 1), v, 1.0);
      }
    }
  }
  coo.sort_row_major();
  coo.sum_duplicates();
  return coo;
}

/// 7-point 3D grid graph (FEM volume analog).
inline Coo<value_t> gen_grid3d(index_t nx, index_t ny, index_t nz) {
  const index_t n = nx * ny * nz;
  Coo<value_t> coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * 6);
  auto id = [nx, ny](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t v = id(x, y, z);
        if (x + 1 < nx) {
          coo.push(v, id(x + 1, y, z), 1.0);
          coo.push(id(x + 1, y, z), v, 1.0);
        }
        if (y + 1 < ny) {
          coo.push(v, id(x, y + 1, z), 1.0);
          coo.push(id(x, y + 1, z), v, 1.0);
        }
        if (z + 1 < nz) {
          coo.push(v, id(x, y, z + 1), 1.0);
          coo.push(id(x, y, z + 1), v, 1.0);
        }
      }
    }
  }
  coo.sort_row_major();
  coo.sum_duplicates();
  return coo;
}

}  // namespace tilespmspv
