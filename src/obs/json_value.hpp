// Minimal DOM JSON parser for the observability layer: bench_compare and
// the bench-report tests need to read values back out of BENCH_*.json
// files, not just validate their structure (obs/json.hpp stays the
// validating/streaming half). Insertion order of object members is
// preserved so round-trips are inspectable; numbers are stored as double
// (every value the bench schema emits fits). No external dependency.
#pragma once

#include <cctype>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tilespmspv::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Member lookup; returns nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Convenience accessors with defaults for absent/mismatched members.
  double number_or(std::string_view key, double def) const {
    const JsonValue* v = find(key);
    return (v != nullptr && v->kind == Kind::kNumber) ? v->num : def;
  }
  std::string string_or(std::string_view key, const std::string& def) const {
    const JsonValue* v = find(key);
    return (v != nullptr && v->kind == Kind::kString) ? v->str : def;
  }
};

namespace detail {

class JsonDomParser {
 public:
  explicit JsonDomParser(std::string_view s) : s_(s) {}

  bool parse(JsonValue* out) {
    if (!value(out, 0)) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool literal(std::string_view lit) {
    if (s_.compare(i_, lit.size(), lit) != 0) return false;
    i_ += lit.size();
    return true;
  }

  bool string(std::string* out) {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    out->clear();
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_];
      if (c == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
        switch (s_[i_]) {
          case '"':
            c = '"';
            break;
          case '\\':
            c = '\\';
            break;
          case '/':
            c = '/';
            break;
          case 'n':
            c = '\n';
            break;
          case 'r':
            c = '\r';
            break;
          case 't':
            c = '\t';
            break;
          case 'b':
            c = '\b';
            break;
          case 'f':
            c = '\f';
            break;
          case 'u': {
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              ++i_;
              if (i_ >= s_.size() ||
                  !std::isxdigit(static_cast<unsigned char>(s_[i_]))) {
                return false;
              }
              const char h = s_[i_];
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
            }
            // Escapes the schema emits are all < 0x80; anything larger is
            // replaced rather than UTF-8 encoded (names stay comparable).
            c = code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return false;
        }
      }
      out->push_back(c);
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }

  bool number(double* out) {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    std::size_t digits = 0;
    while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
      ++digits;
    }
    if (digits == 0) return false;
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      digits = 0;
      while (i_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[i_]))) {
        ++i_;
        ++digits;
      }
      if (digits == 0) return false;
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      digits = 0;
      while (i_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[i_]))) {
        ++i_;
        ++digits;
      }
      if (digits == 0) return false;
    }
    const std::string text(s_.substr(start, i_ - start));
    *out = std::strtod(text.c_str(), nullptr);
    return true;
  }

  bool value(JsonValue* out, int depth) {
    if (depth > 128) return false;
    skip_ws();
    if (i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '{') {
      ++i_;
      out->kind = JsonValue::Kind::kObject;
      skip_ws();
      if (i_ < s_.size() && s_[i_] == '}') {
        ++i_;
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!string(&key)) return false;
        skip_ws();
        if (i_ >= s_.size() || s_[i_] != ':') return false;
        ++i_;
        JsonValue member;
        if (!value(&member, depth + 1)) return false;
        out->obj.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (i_ < s_.size() && s_[i_] == ',') {
          ++i_;
          continue;
        }
        if (i_ < s_.size() && s_[i_] == '}') {
          ++i_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++i_;
      out->kind = JsonValue::Kind::kArray;
      skip_ws();
      if (i_ < s_.size() && s_[i_] == ']') {
        ++i_;
        return true;
      }
      for (;;) {
        JsonValue elem;
        if (!value(&elem, depth + 1)) return false;
        out->arr.push_back(std::move(elem));
        skip_ws();
        if (i_ < s_.size() && s_[i_] == ',') {
          ++i_;
          continue;
        }
        if (i_ < s_.size() && s_[i_] == ']') {
          ++i_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return string(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->b = true;
      return literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->b = false;
      return literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    out->kind = JsonValue::Kind::kNumber;
    return number(&out->num);
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

}  // namespace detail

/// Parses `s` into `*out`. Returns false (and leaves `*out` unspecified)
/// when `s` is not a single well-formed JSON value.
inline bool json_parse_value(std::string_view s, JsonValue* out) {
  detail::JsonDomParser p(s);
  return p.parse(out);
}

}  // namespace tilespmspv::obs
