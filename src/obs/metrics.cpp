#include "obs/metrics.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/json.hpp"

namespace tilespmspv::obs {

MetricsRegistry::Entry& MetricsRegistry::slot(const std::string& key) {
  for (Entry& e : entries_) {
    if (e.key == key) return e;
  }
  entries_.push_back(Entry{});
  entries_.back().key = key;
  return entries_.back();
}

void MetricsRegistry::put_int(const std::string& key, std::int64_t v) {
  Entry& e = slot(key);
  e.kind = Entry::kInt;
  e.i = v;
}

void MetricsRegistry::put_double(const std::string& key, double v) {
  Entry& e = slot(key);
  e.kind = Entry::kDouble;
  e.d = v;
}

void MetricsRegistry::put_str(const std::string& key, const std::string& v) {
  Entry& e = slot(key);
  e.kind = Entry::kString;
  e.s = v;
}

void MetricsRegistry::add_counters(const CounterSnapshot& snap,
                                   const std::string& prefix) {
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    put_int(prefix + counter_name(c), static_cast<std::int64_t>(snap[c]));
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  for (const Entry& e : entries_) {
    w.key(e.key);
    switch (e.kind) {
      case Entry::kInt:
        w.value(e.i);
        break;
      case Entry::kDouble:
        w.value(e.d);
        break;
      case Entry::kString:
        w.value(e.s);
        break;
    }
  }
  w.end_object();
  os << '\n';
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "metric,value\n";
  for (const Entry& e : entries_) {
    os << e.key << ',';
    switch (e.kind) {
      case Entry::kInt:
        os << e.i;
        break;
      case Entry::kDouble: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", e.d);
        os << buf;
        break;
      }
      case Entry::kString: {
        // CSV-quote; embedded quotes double up.
        os << '"';
        for (const char c : e.s) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
        break;
      }
    }
    os << '\n';
  }
}

bool MetricsRegistry::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    write_csv(f);
  } else {
    write_json(f);
  }
  return static_cast<bool>(f);
}

}  // namespace tilespmspv::obs
