// Minimal JSON plumbing for the observability layer: a streaming writer
// (objects/arrays with automatic comma placement, used by the trace and
// metrics exporters and the CLI's --json mode) and a validating parser
// (structure only, no DOM) so tests and smoke checks can assert that
// emitted files are well-formed without an external dependency.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tilespmspv::obs {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Streaming JSON writer. Callers pair begin_/end_ calls and alternate
/// key()/value inside objects; commas and quoting are handled here. The
/// writer never buffers, so exporters can stream arbitrarily many trace
/// events without holding a second copy in memory.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object() {
    pre_value();
    os_ << '{';
    stack_.push_back({'o', 0});
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    os_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    pre_value();
    os_ << '[';
    stack_.push_back({'a', 0});
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    os_ << ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    if (stack_.back().count++ > 0) os_ << ',';
    os_ << '"' << json_escape(k) << "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    pre_value();
    os_ << '"' << json_escape(v) << '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    pre_value();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    pre_value();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    pre_value();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v) {
    pre_value();
    if (!std::isfinite(v)) {
      os_ << "null";  // JSON has no inf/nan
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
  }

 private:
  void pre_value() {
    if (pending_value_) {
      pending_value_ = false;  // comma was written by key()
      return;
    }
    if (!stack_.empty() && stack_.back().kind == 'a' &&
        stack_.back().count++ > 0) {
      os_ << ',';
    }
  }

  struct Frame {
    char kind;  // 'o' or 'a'
    int count;
  };
  std::ostream& os_;
  std::vector<Frame> stack_;
  bool pending_value_ = false;
};

namespace detail {

struct JsonParser {
  std::string_view s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }

  bool literal(std::string_view lit) {
    if (s.compare(i, lit.size(), lit) != 0) return false;
    i += lit.size();
    return true;
  }

  bool string() {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
        if (s[i] == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i;
            if (i >= s.size() || !std::isxdigit(static_cast<unsigned char>(s[i]))) {
              return false;
            }
          }
        }
      }
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    std::size_t digits = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++digits;
    }
    if (digits == 0) return false;
    if (i < s.size() && s[i] == '.') {
      ++i;
      digits = 0;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
        ++digits;
      }
      if (digits == 0) return false;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      digits = 0;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
        ++digits;
      }
      if (digits == 0) return false;
    }
    return i > start;
  }

  bool value(int depth) {
    if (depth > 256) return false;
    skip_ws();
    if (i >= s.size()) return false;
    const char c = s[i];
    if (c == '{') {
      ++i;
      skip_ws();
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      for (;;) {
        skip_ws();
        if (!string()) return false;
        skip_ws();
        if (i >= s.size() || s[i] != ':') return false;
        ++i;
        if (!value(depth + 1)) return false;
        skip_ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        if (i < s.size() && s[i] == '}') {
          ++i;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++i;
      skip_ws();
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      for (;;) {
        if (!value(depth + 1)) return false;
        skip_ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        if (i < s.size() && s[i] == ']') {
          ++i;
          return true;
        }
        return false;
      }
    }
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
};

}  // namespace detail

/// True when `s` is a single well-formed JSON value (the whole input).
inline bool json_parse_ok(std::string_view s) {
  detail::JsonParser p{s};
  if (!p.value(0)) return false;
  p.skip_ws();
  return p.i == s.size();
}

}  // namespace tilespmspv::obs
