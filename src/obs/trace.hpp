// Scoped trace spans recorded into per-thread ring buffers and exported as
// Chrome trace-event JSON (open chrome://tracing or https://ui.perfetto.dev
// and load the file). Tracing is off by default: a disarmed TraceSpan costs
// one relaxed atomic load. When armed, recording takes the owning thread's
// buffer mutex (uncontended: each thread writes only its own buffer) —
// spans mark phases, BFS iterations and pool tasks, never inner loops, so
// the rate is low. When a ring fills, the oldest events are overwritten;
// raise `events_per_thread` if a long run needs full coverage.
//
// Span naming convention (see docs/OBSERVABILITY.md):
//   convert/*  format conversions (CSR -> tiled)
//   spmspv/*   SpMSpV phases 1-3; `detail` carries the kernel form
//   bfs/*      preprocessing and one span per BFS iteration
//   pool/*     thread-pool loop dispatch and per-worker task execution
//
// Defining TILESPMSPV_NO_COUNTERS compiles recording out entirely;
// the control/export functions remain as stubs so callers need no #ifdefs.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace tilespmspv::obs {

/// One buffered span, reduced to what aggregation needs. `name` follows
/// the span naming convention below ("spmspv/phase1_tiled", ...).
struct TraceSample {
  std::string name;
  double dur_ms = 0.0;
};

/// Starts a trace session: clears previous events, re-zeroes the clock and
/// sizes every thread's ring to `events_per_thread` events.
void trace_enable(std::size_t events_per_thread = 16384);

/// Stops recording. Buffered events remain exportable.
void trace_disable();

bool trace_enabled();

/// Drops every buffered event (recording state is unchanged).
void trace_clear();

/// Number of currently buffered events across all threads.
std::size_t trace_event_count();

/// Writes buffered events as Chrome trace-event JSON. Expected to be called
/// while instrumented code is quiescent (after trace_disable()).
void trace_write_chrome_json(std::ostream& os);

/// Same, to a file. Returns false when the file cannot be opened.
bool trace_write_chrome_json_file(const std::string& path);

/// Copies every buffered span out as (name, duration) samples — the input
/// of obs/bench_report.hpp's per-span aggregation (CLI --profile). Like
/// the exporters, call while instrumented code is quiescent.
std::vector<TraceSample> trace_samples();

#ifdef TILESPMSPV_NO_COUNTERS

class TraceSpan {
 public:
  explicit TraceSpan(const char*, const char* = nullptr,
                     const char* = nullptr) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#else

/// RAII span: records [construction, destruction) under `name` when tracing
/// is enabled. `name`, `cat` and `detail` must outlive the session (string
/// literals in practice); `detail` lands in the event's args.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "kernel",
                     const char* detail = nullptr);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  const char* detail_;
  double start_us_ = -1.0;  // < 0 means the span is disarmed
};

#endif  // TILESPMSPV_NO_COUNTERS

}  // namespace tilespmspv::obs
