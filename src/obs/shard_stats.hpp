// Per-shard placement/balance statistics (ROADMAP item 3). The Counter
// enum in obs/counters.hpp aggregates process-wide scalars; shard stats
// are a small fixed family of per-shard accumulators that prove balanced
// NUMA placement: bytes placed per shard (set when a ShardPlan is built),
// tiles visited per shard (added by the sharded kernel dispatch loops) and
// wall milliseconds per shard (added by the pool's sharded drain).
//
// All accumulators are process-global like the counters: the sharded
// paths are opt-in (ThreadPool::configure_shards), and the consumers —
// the out-of-core smoke job, bench_graph500 --metrics and the CLI metrics
// export — run one sharded operator at a time. snapshot() + reset() give
// harnesses per-phase readings. See docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>

namespace tilespmspv::obs {

/// Upper bound on shard count, matching ThreadPool::kMaxShards.
inline constexpr int kShardStatsMax = 8;

struct ShardSnapshot {
  int shards = 0;  // highest shard index touched + 1
  std::uint64_t bytes[kShardStatsMax] = {};
  std::uint64_t tiles[kShardStatsMax] = {};
  double ms[kShardStatsMax] = {};

  /// max/mean over the populated prefix of `vals`; 1.0 when empty or flat.
  static double imbalance_of(const std::uint64_t* vals, int n);
  double bytes_imbalance() const { return imbalance_of(bytes, shards); }
};

/// Records the plan's per-shard payload bytes (overwrites: one planned
/// operator at a time).
void shard_set_bytes(int shard, std::uint64_t bytes);
/// Accumulates tiles visited on behalf of `shard`'s data.
void shard_add_tiles(int shard, std::uint64_t tiles);
/// Accumulates wall time spent draining `shard`'s range.
void shard_add_ms(int shard, double ms);

ShardSnapshot shard_snapshot();
void shard_reset();

}  // namespace tilespmspv::obs
