#include "obs/bench_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <thread>

#include "obs/json.hpp"
#include "obs/json_value.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace tilespmspv::obs {

namespace {

// Calibration results funnel through a volatile sink so the measured
// loops survive dead-code elimination at any optimization level.
volatile double g_calibration_sink = 0.0;

double measure_mem_bw_gbs() {
  // 32 MB of doubles: larger than any last-level cache the suite targets,
  // small enough that the calibration stays ~10 ms per pass.
  const std::size_t n = std::size_t{1} << 22;
  std::vector<double> buf(n, 1.0);
  double best_s = 1e300;
  for (int pass = 0; pass < 3; ++pass) {
    Timer t;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t i = 0; i + 4 <= n; i += 4) {
      s0 += buf[i];
      s1 += buf[i + 1];
      s2 += buf[i + 2];
      s3 += buf[i + 3];
    }
    g_calibration_sink = s0 + s1 + s2 + s3;
    best_s = std::min(best_s, t.elapsed_s());
  }
  const double bytes = static_cast<double>(n) * sizeof(double);
  return best_s > 0.0 ? bytes / best_s / 1e9 : 0.0;
}

double measure_scalar_gflops() {
  // A dependent multiply-add chain: each step waits for the previous one,
  // so the rate is the latency-bound scalar FLOP rate (what a serial
  // reduction achieves), not the wide throughput peak.
  const std::int64_t iters = std::int64_t{1} << 22;
  const double a = 0.9999999999;
  const double b = 1e-12;
  double best_s = 1e300;
  for (int pass = 0; pass < 3; ++pass) {
    double x = 1.0;
    Timer t;
    for (std::int64_t i = 0; i < iters; ++i) x = x * a + b;
    g_calibration_sink = x;
    best_s = std::min(best_s, t.elapsed_s());
  }
  return best_s > 0.0 ? 2.0 * static_cast<double>(iters) / best_s / 1e9 : 0.0;
}

double measure_simd_gflops() {
  // Independent per-element multiply-adds over an L1-resident array: the
  // compiler vectorizes this with whatever tier the build enables, so the
  // measured rate tracks the same ISA the kernels run on.
  constexpr int n = 1024;  // 8 KB, safely L1-resident
  constexpr int passes = 8192;
  std::vector<double> v(static_cast<std::size_t>(n), 1.0000001);
  double best_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<double> acc(static_cast<std::size_t>(n), 0.0);
    Timer t;
    for (int p = 0; p < passes; ++p) {
      const double s = 1.0 + 1e-12 * p;
      for (int i = 0; i < n; ++i) {
        acc[static_cast<std::size_t>(i)] =
            acc[static_cast<std::size_t>(i)] * 0.999 +
            v[static_cast<std::size_t>(i)] * s;
      }
    }
    g_calibration_sink = acc[0] + acc[n / 2];
    best_s = std::min(best_s, t.elapsed_s());
  }
  const double flops = 3.0 * n * passes;
  return best_s > 0.0 ? flops / best_s / 1e9 : 0.0;
}

std::string read_cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (in && std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) break;
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return "unknown";
}

}  // namespace

MachineProfile measure_machine_profile() {
  MachineProfile m;
  m.cpu_model = read_cpu_model();
  m.cores = static_cast<int>(std::thread::hardware_concurrency());
  m.mem_bw_gbs = measure_mem_bw_gbs();
  m.scalar_gflops = measure_scalar_gflops();
  m.simd_gflops = measure_simd_gflops();
  return m;
}

namespace {

void rstrip(std::string* s) {
  while (!s->empty() &&
         (s->back() == '\r' || s->back() == '\n' || s->back() == ' ' ||
          s->back() == '\t')) {
    s->pop_back();
  }
}

bool looks_like_sha(const std::string& s) {
  if (s.size() < 40) return false;
  for (int i = 0; i < 40; ++i) {
    const char c = s[i];
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                     (c >= 'A' && c <= 'F');
    if (!hex) return false;
  }
  return true;
}

/// Resolves HEAD inside one concrete git dir; never walks further up, so a
/// partially-exported tree cannot mis-resolve via an unrelated parent
/// repository. Every failure mode degrades to "unknown".
std::string sha_from_git_dir(const std::filesystem::path& git_dir) {
  namespace fs = std::filesystem;
  std::ifstream head(git_dir / "HEAD");
  std::string line;
  if (!head || !std::getline(head, line)) return "unknown";
  rstrip(&line);
  if (line.rfind("ref: ", 0) != 0) {
    // Detached HEAD: the line must itself be a commit id.
    return looks_like_sha(line) ? line.substr(0, 40) : "unknown";
  }
  const std::string ref = line.substr(5);
  // Worktree git dirs keep their shared refs under the commondir.
  std::vector<fs::path> roots = {git_dir};
  std::ifstream common(git_dir / "commondir");
  std::string cd;
  if (common && std::getline(common, cd)) {
    rstrip(&cd);
    if (!cd.empty()) {
      const fs::path p(cd);
      roots.push_back(p.is_relative() ? git_dir / p : p);
    }
  }
  for (const fs::path& root : roots) {
    std::ifstream ref_file(root / ref);
    std::string sha;
    if (ref_file && std::getline(ref_file, sha)) {
      rstrip(&sha);
      if (looks_like_sha(sha)) return sha.substr(0, 40);
    }
    // packed-refs lines are "<40-hex> <refname>"; '#' comments and '^'
    // peeled-tag lines are skipped.
    std::ifstream packed(root / "packed-refs");
    std::string pl;
    while (packed && std::getline(packed, pl)) {
      rstrip(&pl);
      if (pl.size() >= 42 && pl[0] != '#' && pl[0] != '^' &&
          pl[40] == ' ' && pl.compare(41, std::string::npos, ref) == 0 &&
          looks_like_sha(pl)) {
        return pl.substr(0, 40);
      }
    }
  }
  // HEAD points at a ref missing from both loose refs and packed-refs
  // (fresh repo with no commits, or a trimmed export).
  return "unknown";
}

}  // namespace

std::string read_git_sha(const std::string& start_dir) try {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path dir = fs::absolute(start_dir, ec);
  if (ec) return "unknown";
  for (int up = 0; up < 8; ++up) {
    const fs::path dot_git = dir / ".git";
    if (fs::is_directory(dot_git, ec)) {
      return sha_from_git_dir(dot_git);
    }
    if (fs::is_regular_file(dot_git, ec)) {
      // Worktree/submodule pointer file: "gitdir: PATH". Resolve it here
      // instead of walking up into whatever repository happens to contain
      // this tree.
      std::ifstream f(dot_git);
      std::string line;
      if (!f || !std::getline(f, line)) return "unknown";
      rstrip(&line);
      if (line.rfind("gitdir: ", 0) != 0) return "unknown";
      fs::path git_dir(line.substr(8));
      if (git_dir.is_relative()) git_dir = dir / git_dir;
      return sha_from_git_dir(git_dir);
    }
    if (!dir.has_parent_path() || dir.parent_path() == dir) break;
    dir = dir.parent_path();
  }
  return "unknown";
} catch (...) {
  // Manifest stamping must never take the bench runner or the serving
  // daemon down: any filesystem surprise degrades to "unknown".
  return "unknown";
}

// ---------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------

int LatencyHistogram::bin_index(double ms) {
  if (!(ms > kMinMs)) return 0;  // also catches NaN and non-positive
  const int idx = static_cast<int>(
      std::floor(std::log2(ms / kMinMs) * kBinsPerOctave));
  return std::clamp(idx, 0, kNumBins - 1);
}

double LatencyHistogram::bin_lo_ms(int idx) {
  return kMinMs * std::exp2(static_cast<double>(idx) / kBinsPerOctave);
}

void LatencyHistogram::add(double ms) {
  ++bins_[static_cast<std::size_t>(bin_index(ms))];
  ++total_;
}

void LatencyHistogram::add_samples(const std::vector<double>& samples_ms) {
  for (const double ms : samples_ms) add(ms);
}

double LatencyHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(std::isnan(p) ? 0.0 : p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total_ - 1);
  std::uint64_t cum = 0;
  for (int i = 0; i < kNumBins; ++i) {
    const std::uint64_t c = bins_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    if (rank < static_cast<double>(cum + c)) {
      const double frac = (rank - static_cast<double>(cum)) /
                          static_cast<double>(c);
      const double lo = bin_lo_ms(i);
      const double hi = bin_lo_ms(i + 1);
      return lo + (hi - lo) * frac;
    }
    cum += c;
  }
  // Only floating-point rounding of `rank` can land here; report the top
  // occupied bin's upper edge.
  for (int i = kNumBins - 1; i >= 0; --i) {
    if (bins_[static_cast<std::size_t>(i)] != 0) return bin_lo_ms(i + 1);
  }
  return 0.0;
}

std::vector<LatencyHistogram::Bin> LatencyHistogram::nonzero_bins() const {
  std::vector<Bin> out;
  for (int i = 0; i < kNumBins; ++i) {
    const std::uint64_t c = bins_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    out.push_back({bin_lo_ms(i), bin_lo_ms(i + 1), c});
  }
  return out;
}

// ---------------------------------------------------------------------
// Span aggregation
// ---------------------------------------------------------------------

std::vector<SpanStats> aggregate_spans(
    const std::vector<TraceSample>& samples) {
  std::map<std::string, std::vector<double>> by_name;
  for (const TraceSample& s : samples) {
    by_name[s.name].push_back(s.dur_ms);
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [name, durs] : by_name) {
    SpanStats row;
    row.name = name;
    row.count = durs.size();
    for (const double d : durs) row.total_ms += d;
    row.mean_ms = mean(durs);
    row.p95_ms = percentile(durs, 95.0);
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    return a.total_ms > b.total_ms;
  });
  return out;
}

// ---------------------------------------------------------------------
// BenchCase / BenchReport
// ---------------------------------------------------------------------

CaseModel attribute_case(double flops, double bytes, double measured_best_ms,
                         const MachineProfile& machine) {
  CaseModel m;
  m.flops = flops;
  m.bytes = bytes;
  const double compute_ms =
      machine.simd_gflops > 0.0 ? flops / (machine.simd_gflops * 1e6) : 0.0;
  const double memory_ms =
      machine.mem_bw_gbs > 0.0 ? bytes / (machine.mem_bw_gbs * 1e6) : 0.0;
  m.predicted_ms = std::max(compute_ms, memory_ms);
  m.roofline_pct =
      measured_best_ms > 0.0 ? 100.0 * m.predicted_ms / measured_best_ms : 0.0;
  return m;
}

void BenchCase::set_timing(const std::vector<double>& samples_ms) {
  ms_best = min_of(samples_ms);
  ms_mean = mean(samples_ms);
  ms_p50 = percentile(samples_ms, 50.0);
  ms_p95 = percentile(samples_ms, 95.0);
  samples = samples_ms.size();
  hist.add_samples(samples_ms);
}

void BenchCase::set_counters(const CounterSnapshot& delta) {
  counters.clear();
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    if (delta[c] != 0) counters.emplace_back(counter_name(c), delta[c]);
  }
}

void BenchReport::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kBenchSchema);
  w.key("bench_id").value(bench_id);
  w.key("tier").value(tier);
  w.key("manifest").begin_object();
  w.key("git_sha").value(manifest.git_sha);
  w.key("build_type").value(manifest.build_type);
  w.key("simd_isa").value(manifest.simd_isa);
  w.key("threads").value(manifest.threads);
  w.key("iters").value(manifest.iters);
  w.key("machine").begin_object();
  w.key("cpu_model").value(manifest.machine.cpu_model);
  w.key("cores").value(manifest.machine.cores);
  w.key("mem_bw_gbs").value(manifest.machine.mem_bw_gbs);
  w.key("scalar_gflops").value(manifest.machine.scalar_gflops);
  w.key("simd_gflops").value(manifest.machine.simd_gflops);
  w.end_object();
  w.end_object();
  w.key("cases").begin_array();
  for (const BenchCase& c : cases) {
    w.begin_object();
    w.key("name").value(c.name);
    w.key("group").value(c.group);
    w.key("ms").begin_object();
    w.key("best").value(c.ms_best);
    w.key("mean").value(c.ms_mean);
    w.key("p50").value(c.ms_p50);
    w.key("p95").value(c.ms_p95);
    w.end_object();
    w.key("samples").value(c.samples);
    w.key("histogram").begin_object();
    w.key("unit").value("ms");
    w.key("bins").begin_array();
    for (const LatencyHistogram::Bin& b : c.hist.nonzero_bins()) {
      w.begin_array();
      w.value(b.lo_ms);
      w.value(b.hi_ms);
      w.value(b.count);
      w.end_array();
    }
    w.end_array();
    w.end_object();
    w.key("counters").begin_object();
    for (const auto& [name, v] : c.counters) {
      w.key(name).value(v);
    }
    w.end_object();
    if (c.has_model) {
      w.key("model").begin_object();
      w.key("flops").value(c.model.flops);
      w.key("bytes").value(c.model.bytes);
      w.key("predicted_ms").value(c.model.predicted_ms);
      w.key("roofline_pct").value(c.model.roofline_pct);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

bool BenchReport::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_json(f);
  return static_cast<bool>(f);
}

bool parse_bench_report(std::string_view json, ParsedBenchReport* out,
                        std::string* err) {
  const auto fail = [err](const char* why) {
    if (err != nullptr) *err = why;
    return false;
  };
  JsonValue root;
  if (!json_parse_value(json, &root)) return fail("malformed JSON");
  if (!root.is_object()) return fail("document is not an object");
  out->schema = root.string_or("schema", "");
  if (out->schema.rfind("tilespmspv-bench/", 0) != 0) {
    return fail("missing or foreign schema tag");
  }
  out->bench_id = root.string_or("bench_id", "");
  out->tier = root.string_or("tier", "");
  if (const JsonValue* man = root.find("manifest");
      man != nullptr && man->is_object()) {
    out->git_sha = man->string_or("git_sha", "unknown");
    out->build_type = man->string_or("build_type", "unknown");
    out->simd_isa = man->string_or("simd_isa", "unknown");
    out->threads = static_cast<int>(man->number_or("threads", 0.0));
    out->iters = static_cast<int>(man->number_or("iters", 0.0));
    if (const JsonValue* mach = man->find("machine");
        mach != nullptr && mach->is_object()) {
      out->machine.cpu_model = mach->string_or("cpu_model", "unknown");
      out->machine.cores = static_cast<int>(mach->number_or("cores", 0.0));
      out->machine.mem_bw_gbs = mach->number_or("mem_bw_gbs", 0.0);
      out->machine.scalar_gflops = mach->number_or("scalar_gflops", 0.0);
      out->machine.simd_gflops = mach->number_or("simd_gflops", 0.0);
    }
  }
  const JsonValue* cases = root.find("cases");
  if (cases == nullptr || !cases->is_array()) {
    return fail("missing cases array");
  }
  for (const JsonValue& c : cases->arr) {
    if (!c.is_object()) return fail("case entry is not an object");
    ParsedCase pc;
    pc.name = c.string_or("name", "");
    if (pc.name.empty()) return fail("case without a name");
    pc.group = c.string_or("group", "");
    if (const JsonValue* ms = c.find("ms"); ms != nullptr && ms->is_object()) {
      pc.ms_best = ms->number_or("best", 0.0);
      pc.ms_mean = ms->number_or("mean", 0.0);
      pc.ms_p50 = ms->number_or("p50", 0.0);
      pc.ms_p95 = ms->number_or("p95", 0.0);
    }
    pc.samples = static_cast<std::uint64_t>(c.number_or("samples", 0.0));
    if (const JsonValue* h = c.find("histogram");
        h != nullptr && h->is_object()) {
      if (const JsonValue* bins = h->find("bins");
          bins != nullptr && bins->is_array()) {
        for (const JsonValue& b : bins->arr) {
          if (b.is_array() && b.arr.size() == 3 && b.arr[2].is_number()) {
            pc.hist_count += static_cast<std::uint64_t>(b.arr[2].num);
          }
        }
      }
    }
    out->cases.push_back(std::move(pc));
  }
  return true;
}

}  // namespace tilespmspv::obs
