#include "obs/shard_stats.hpp"

#include <atomic>  // lint:allow(raw-atomic)

namespace tilespmspv::obs {

namespace {

// The shard accumulators are the synchronization primitive itself (workers
// on different shards update concurrently); plain relaxed adds, read by
// snapshot() after the dispatch barrier. lint:allow(raw-atomic)
struct ShardCell {
  std::atomic<std::uint64_t> bytes{0};     // lint:allow(raw-atomic)
  std::atomic<std::uint64_t> tiles{0};     // lint:allow(raw-atomic)
  std::atomic<std::uint64_t> ns{0};        // lint:allow(raw-atomic)
  std::atomic<std::uint64_t> touched{0};   // lint:allow(raw-atomic)
};

ShardCell g_cells[kShardStatsMax];

ShardCell* cell(int shard) {
  if (shard < 0 || shard >= kShardStatsMax) return nullptr;
  ShardCell* c = &g_cells[shard];
  c->touched.store(1, std::memory_order_relaxed);
  return c;
}

}  // namespace

double ShardSnapshot::imbalance_of(const std::uint64_t* vals, int n) {
  if (n <= 0) return 1.0;
  std::uint64_t max = 0, total = 0;
  for (int i = 0; i < n; ++i) {
    total += vals[i];
    if (vals[i] > max) max = vals[i];
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(n);
  return static_cast<double>(max) / mean;
}

void shard_set_bytes(int shard, std::uint64_t bytes) {
  if (ShardCell* c = cell(shard)) {
    c->bytes.store(bytes, std::memory_order_relaxed);
  }
}

void shard_add_tiles(int shard, std::uint64_t tiles) {
  if (ShardCell* c = cell(shard)) {
    c->tiles.fetch_add(tiles, std::memory_order_relaxed);
  }
}

void shard_add_ms(int shard, double ms) {
  if (ms < 0) return;
  if (ShardCell* c = cell(shard)) {
    c->ns.fetch_add(static_cast<std::uint64_t>(ms * 1e6),
                    std::memory_order_relaxed);
  }
}

ShardSnapshot shard_snapshot() {
  ShardSnapshot s;
  for (int i = 0; i < kShardStatsMax; ++i) {
    if (g_cells[i].touched.load(std::memory_order_relaxed) != 0) {
      s.shards = i + 1;
    }
    s.bytes[i] = g_cells[i].bytes.load(std::memory_order_relaxed);
    s.tiles[i] = g_cells[i].tiles.load(std::memory_order_relaxed);
    s.ms[i] =
        static_cast<double>(g_cells[i].ns.load(std::memory_order_relaxed)) /
        1e6;
  }
  return s;
}

void shard_reset() {
  for (ShardCell& c : g_cells) {
    c.bytes.store(0, std::memory_order_relaxed);
    c.tiles.store(0, std::memory_order_relaxed);
    c.ns.store(0, std::memory_order_relaxed);
    c.touched.store(0, std::memory_order_relaxed);
  }
}

}  // namespace tilespmspv::obs
