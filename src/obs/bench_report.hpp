// Benchmark-trajectory reporting: the schema'd document behind the
// repo-root BENCH_*.json files. A report carries a run manifest (git SHA,
// build type, SIMD ISA, thread count, and a calibrated machine profile),
// one entry per benchmark case (best/mean/p50/p95 timings, a log-scale
// latency histogram, the case's counter deltas) and a work-model
// attribution block (model-predicted FLOPs/bytes vs the machine's
// roofline). tools/tilespmspv_bench writes these; tools/bench_compare
// diffs two of them with noise-aware verdicts; the machine profile is the
// one-time calibration the ROADMAP autotuner (item 4) needs.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace tilespmspv::obs {

/// Bumped when the document layout changes incompatibly; bench_compare
/// refuses mixed major schemas.
inline constexpr const char* kBenchSchema = "tilespmspv-bench/1";

// ---------------------------------------------------------------------
// Machine profile: a short calibration of the host, measured once per
// bench run (~100 ms). Rates are best-of over a few passes so a noisy
// neighbour can only make the machine look slower, never faster.
// ---------------------------------------------------------------------
struct MachineProfile {
  std::string cpu_model = "unknown";  // /proc/cpuinfo "model name"
  int cores = 0;                      // hardware_concurrency
  double mem_bw_gbs = 0.0;            // streaming-read bandwidth, GB/s
  double scalar_gflops = 0.0;         // dependent FMA chain (latency-bound)
  double simd_gflops = 0.0;           // independent lanes (throughput-bound)
};

/// Runs the calibration loops (memory sweep + two FLOP kernels).
MachineProfile measure_machine_profile();

/// Resolves the checked-out commit by reading .git/HEAD (following one
/// level of symbolic ref, including packed-refs), walking up from
/// `start_dir`. Returns "unknown" outside a git checkout — no subprocess.
std::string read_git_sha(const std::string& start_dir = ".");

/// Everything needed to attribute a recorded number to the build and host
/// that produced it.
struct RunManifest {
  std::string git_sha = "unknown";
  std::string build_type = "unknown";  // CMAKE_BUILD_TYPE of the binary
  std::string simd_isa = "scalar";     // simd::active_isa()
  int threads = 0;                     // pool size the cases ran with
  int iters = 0;                       // timed iterations per case
  MachineProfile machine;
};

// ---------------------------------------------------------------------
// Log-scale latency histogram: fixed bins at 4 per octave from 0.1 us,
// so one histogram spans microsecond kernels and multi-second traversals
// without tuning. Percentiles read back from the bins are exact to one
// bin width (~19% relative), which is inside run-to-run noise.
// ---------------------------------------------------------------------
class LatencyHistogram {
 public:
  static constexpr double kMinMs = 1e-4;  // 0.1 us
  static constexpr int kBinsPerOctave = 4;
  static constexpr int kNumBins = 128;  // covers kMinMs * 2^32 (~7 min)

  struct Bin {
    double lo_ms = 0.0;
    double hi_ms = 0.0;
    std::uint64_t count = 0;
  };

  void add(double ms);
  void add_samples(const std::vector<double>& samples_ms);

  std::uint64_t count() const { return total_; }

  /// p in [0, 100]; linear interpolation inside the covering bin.
  /// Returns 0 for an empty histogram.
  double percentile(double p) const;

  /// Occupied bins only, in latency order (what the JSON emits).
  std::vector<Bin> nonzero_bins() const;

  static double bin_lo_ms(int idx);

 private:
  static int bin_index(double ms);

  std::array<std::uint64_t, kNumBins> bins_{};
  std::uint64_t total_ = 0;
};

// ---------------------------------------------------------------------
// Per-span phase aggregation: rolls the flat trace-sample stream up into
// one row per span name (count / total / mean / p95). Used by the CLI's
// --profile table and available to the serving layer's /metrics.
// ---------------------------------------------------------------------
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double mean_ms = 0.0;
  double p95_ms = 0.0;
};

/// Groups samples by span name; rows come back sorted by total time,
/// descending, so the dominant phase leads the table.
std::vector<SpanStats> aggregate_spans(const std::vector<TraceSample>& samples);

// ---------------------------------------------------------------------
// The report document.
// ---------------------------------------------------------------------

/// Work-model attribution of one case: what the analytic model says the
/// case must move/compute, and how close the measured time came to the
/// calibrated roofline for that work.
struct CaseModel {
  double flops = 0.0;         // model-predicted useful FLOPs
  double bytes = 0.0;         // model-predicted bytes moved
  double predicted_ms = 0.0;  // roofline lower bound on the run time
  double roofline_pct = 0.0;  // 100 * predicted_ms / measured best
};

/// Roofline attribution: the predicted time is the slower of the compute
/// leg (flops / SIMD rate) and the memory leg (bytes / bandwidth).
CaseModel attribute_case(double flops, double bytes, double measured_best_ms,
                         const MachineProfile& machine);

struct BenchCase {
  std::string name;   // unique key, e.g. "fig6/cant@0.01"
  std::string group;  // filter key, e.g. "fig6"
  double ms_best = 0.0;
  double ms_mean = 0.0;
  double ms_p50 = 0.0;
  double ms_p95 = 0.0;
  std::uint64_t samples = 0;
  LatencyHistogram hist;
  /// Counter deltas of the timed region, nonzero counters only.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  bool has_model = false;
  CaseModel model;

  /// Fills ms_* and the histogram from raw per-iteration samples.
  void set_timing(const std::vector<double>& samples_ms);

  /// Records the nonzero counters of `delta`.
  void set_counters(const CounterSnapshot& delta);
};

struct BenchReport {
  std::string bench_id;  // "BENCH_0006"
  std::string tier;      // "quick" | "full"
  RunManifest manifest;
  std::vector<BenchCase> cases;

  void write_json(std::ostream& os) const;
  /// Returns false when the file cannot be opened.
  bool write_file(const std::string& path) const;
};

// ---------------------------------------------------------------------
// Read-back form (bench_compare, tests). Only the fields comparison
// needs; unknown members are ignored so minor-schema additions do not
// break old readers.
// ---------------------------------------------------------------------
struct ParsedCase {
  std::string name;
  std::string group;
  double ms_best = 0.0;
  double ms_mean = 0.0;
  double ms_p50 = 0.0;
  double ms_p95 = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t hist_count = 0;  // sum of histogram bin counts
};

struct ParsedBenchReport {
  std::string schema;
  std::string bench_id;
  std::string tier;
  std::string git_sha;
  std::string build_type;
  std::string simd_isa;
  int threads = 0;
  int iters = 0;
  MachineProfile machine;
  std::vector<ParsedCase> cases;
};

/// Parses a BENCH_*.json document. On failure returns false and, when
/// `err` is non-null, stores a one-line reason.
bool parse_bench_report(std::string_view json, ParsedBenchReport* out,
                        std::string* err = nullptr);

}  // namespace tilespmspv::obs
