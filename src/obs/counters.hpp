// Runtime kernel counters: the measured counterpart of the analytic work
// model (core/work_model.hpp). Kernels accumulate into a thread-local
// counter block (one relaxed atomic add per flushed quantity, no shared
// cache line between threads); counters_snapshot() merges every thread's
// block on demand. The whole layer compiles to nothing when the build
// defines TILESPMSPV_NO_COUNTERS (CMake option of the same name), so the
// instrumented kernels carry zero cost in counter-free builds.
//
// Counter semantics mirror SpmspvWork so measured values can be compared
// against predictions (see tests/test_obs_work_model.cpp):
//   - tiles_scanned / tiles_computed / payload_macs match
//     work_tile_spmspv_csr exactly for the CSR-form kernel (a computed
//     tile multiplies all of its stored nonzeros);
//   - side_macs counts multiply-adds actually performed in the extracted
//     COO pass, which is at most the model's tile-granularity bound;
//   - the CSC-form kernel reports tiles_scanned == tiles_computed (every
//     visited tile is computed) and actual payload multiplies, which can
//     be below the model's whole-tile count when the vector tile has
//     interior zeros.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace tilespmspv::obs {

enum class Counter : int {
  kTilesScanned = 0,    // tile metadata entries visited by SpMSpV kernels
  kTilesSkippedEmpty,   // scanned tiles skipped because the x tile is empty
  kTilesComputed,       // tiles whose payload was multiplied
  kPayloadMacs,         // multiply-adds inside computed tiles
  kSideMacs,            // multiply-adds in the extracted (side COO) pass
  kGatherSlots,         // output tile-row slots scanned by the gather phase
  kBatchTilesShared,    // extra lanes reusing a computed tile's payload
  kBatchLaneMacs,       // lane multiply-add slots driven by the block engine
  kBfsIterPushCsc,      // BFS iterations run with the Push-CSC kernel
  kBfsIterPushCsr,      // BFS iterations run with the Push-CSR kernel
  kBfsIterPullCsc,      // BFS iterations run with the Pull-CSC kernel
  kBfsSideEdges,        // extracted edges relaxed by the BFS side pass
  kBfsFrontierWords,    // non-empty frontier words entering BFS iterations
  kBfsProducedWords,    // distinct output words produced by BFS iterations
  kBfsTilesVisited,     // tiles whose mask payload a BFS kernel touched
  kPoolLoops,           // parallel_ranges invocations (incl. serial path)
  kPoolChunks,          // chunks claimed from pool work queues
  kHashBytes,           // bytes fed to the matrix-store content hash
  kCount
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

/// Stable machine-readable name ("tiles_scanned", ...), used by the
/// metrics exporter and the CLI --profile table.
const char* counter_name(Counter c);

/// A merged point-in-time view of every thread's counters. Values are
/// monotonically increasing between resets, so two snapshots can be
/// subtracted to isolate one region of execution.
struct CounterSnapshot {
  std::array<std::uint64_t, kNumCounters> v{};

  std::uint64_t operator[](Counter c) const {
    return v[static_cast<int>(c)];
  }

  CounterSnapshot operator-(const CounterSnapshot& rhs) const {
    CounterSnapshot d;
    for (int i = 0; i < kNumCounters; ++i) d.v[i] = v[i] - rhs.v[i];
    return d;
  }
};

#ifdef TILESPMSPV_NO_COUNTERS

inline constexpr bool counters_enabled() { return false; }
inline void counter_add(Counter, std::uint64_t) {}
inline CounterSnapshot counters_snapshot() { return {}; }
inline void counters_reset() {}

#else

namespace detail {

/// One cache-padded block per thread; blocks live until process exit so a
/// snapshot can still read contributions from threads that have finished.
struct alignas(64) CounterBlock {
  // Counter cells are read by snapshot() while workers bump them; the
  // atomic_* helpers wrap plain storage, which a concurrent reader makes
  // the wrong shape here. lint:allow(raw-atomic)
  std::array<std::atomic<std::uint64_t>, kNumCounters> v{};
};

CounterBlock& thread_block();

}  // namespace detail

inline constexpr bool counters_enabled() { return true; }

/// Adds `n` to counter `c` on the calling thread's block. Hot kernels
/// accumulate locally and flush once per task, so this stays off the
/// innermost loops.
inline void counter_add(Counter c, std::uint64_t n) {
  detail::thread_block().v[static_cast<int>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

/// Merges every registered thread block.
CounterSnapshot counters_snapshot();

/// Zeroes every registered thread block. Callers are expected to reset
/// while the instrumented kernels are quiescent; increments racing a reset
/// land on one side of it, never corrupt.
void counters_reset();

#endif  // TILESPMSPV_NO_COUNTERS

}  // namespace tilespmspv::obs
