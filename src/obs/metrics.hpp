// Structured metrics registry: an insertion-ordered flat map of named
// values that benchmark harnesses and the CLI fill (timings, problem
// sizes, counter snapshots) and export as JSON or CSV. One registry per
// run; re-putting a key overwrites in place so iterative harnesses can
// refresh values without duplicating rows.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/counters.hpp"

namespace tilespmspv::obs {

class MetricsRegistry {
 public:
  void put_int(const std::string& key, std::int64_t v);
  void put_double(const std::string& key, double v);
  void put_str(const std::string& key, const std::string& v);

  /// Adds every counter as "<prefix><counter_name>".
  void add_counters(const CounterSnapshot& snap,
                    const std::string& prefix = "counters.");

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// One flat JSON object, keys in insertion order.
  void write_json(std::ostream& os) const;

  /// "metric,value" header plus one row per entry.
  void write_csv(std::ostream& os) const;

  /// Writes CSV when `path` ends in ".csv", JSON otherwise. Returns false
  /// when the file cannot be opened.
  bool write_file(const std::string& path) const;

 private:
  struct Entry {
    enum Kind { kInt, kDouble, kString };
    std::string key;
    Kind kind;
    std::int64_t i = 0;
    double d = 0.0;
    std::string s;
  };

  Entry& slot(const std::string& key);

  std::vector<Entry> entries_;
};

}  // namespace tilespmspv::obs
