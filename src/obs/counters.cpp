#include "obs/counters.hpp"

#include <mutex>
#include <vector>

namespace tilespmspv::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kTilesScanned:
      return "tiles_scanned";
    case Counter::kTilesSkippedEmpty:
      return "tiles_skipped_empty";
    case Counter::kTilesComputed:
      return "tiles_computed";
    case Counter::kPayloadMacs:
      return "payload_macs";
    case Counter::kSideMacs:
      return "side_macs";
    case Counter::kGatherSlots:
      return "gather_slots";
    case Counter::kBatchTilesShared:
      return "batch_tiles_shared";
    case Counter::kBatchLaneMacs:
      return "batch_lane_macs";
    case Counter::kBfsIterPushCsc:
      return "bfs_iter_push_csc";
    case Counter::kBfsIterPushCsr:
      return "bfs_iter_push_csr";
    case Counter::kBfsIterPullCsc:
      return "bfs_iter_pull_csc";
    case Counter::kBfsSideEdges:
      return "bfs_side_edges";
    case Counter::kBfsFrontierWords:
      return "bfs_frontier_words";
    case Counter::kBfsProducedWords:
      return "bfs_produced_words";
    case Counter::kBfsTilesVisited:
      return "bfs_tiles_visited";
    case Counter::kPoolLoops:
      return "pool_loops";
    case Counter::kPoolChunks:
      return "pool_chunks";
    case Counter::kHashBytes:
      return "hash_bytes";
    case Counter::kCount:
      break;
  }
  return "?";
}

#ifndef TILESPMSPV_NO_COUNTERS

namespace {

struct Registry {
  std::mutex mu;
  std::vector<detail::CounterBlock*> blocks;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives thread exit order
  return *r;
}

}  // namespace

namespace detail {

CounterBlock& thread_block() {
  thread_local CounterBlock* block = [] {
    auto* b = new CounterBlock();  // leaked: snapshots read blocks of
                                   // threads that have already exited
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.blocks.push_back(b);
    return b;
  }();
  return *block;
}

}  // namespace detail

CounterSnapshot counters_snapshot() {
  CounterSnapshot s;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const detail::CounterBlock* b : r.blocks) {
    for (int i = 0; i < kNumCounters; ++i) {
      s.v[i] += b->v[i].load(std::memory_order_relaxed);
    }
  }
  return s;
}

void counters_reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (detail::CounterBlock* b : r.blocks) {
    for (int i = 0; i < kNumCounters; ++i) {
      b->v[i].store(0, std::memory_order_relaxed);
    }
  }
}

#endif  // TILESPMSPV_NO_COUNTERS

}  // namespace tilespmspv::obs
