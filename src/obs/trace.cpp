#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/json.hpp"

namespace tilespmspv::obs {

#ifdef TILESPMSPV_NO_COUNTERS

void trace_enable(std::size_t) {}
void trace_disable() {}
bool trace_enabled() { return false; }
void trace_clear() {}
std::size_t trace_event_count() { return 0; }

void trace_write_chrome_json(std::ostream& os) {
  os << "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n";
}

bool trace_write_chrome_json_file(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  trace_write_chrome_json(f);
  return static_cast<bool>(f);
}

std::vector<TraceSample> trace_samples() { return {}; }

#else

namespace {

struct Event {
  const char* name;
  const char* cat;
  const char* detail;
  double ts_us;
  double dur_us;
  int tid;
};

struct ThreadBuf {
  std::mutex mu;
  std::vector<Event> slots;
  std::uint64_t head = 0;  // total events recorded since last clear
  int tid = 0;
};

struct TraceState {
  std::mutex mu;  // guards bufs / capacity / next_tid
  std::vector<ThreadBuf*> bufs;
  std::size_t capacity = 16384;
  int next_tid = 0;
  // Cross-thread enable flag + epoch; genuinely shared control state, not
  // kernel data the atomic_* helpers model. lint:allow(raw-atomic)
  std::atomic<bool> enabled{false};
  std::atomic<std::int64_t> epoch_ns{0};  // lint:allow(raw-atomic)
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: outlives worker threads
  return *s;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double now_us() {
  return static_cast<double>(steady_now_ns() -
                             state().epoch_ns.load(std::memory_order_relaxed)) *
         1e-3;
}

ThreadBuf& thread_buf() {
  thread_local ThreadBuf* buf = [] {
    auto* b = new ThreadBuf();  // leaked: exported after the thread exits
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    b->tid = ++s.next_tid;
    b->slots.resize(s.capacity);
    s.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

void record(const char* name, const char* cat, const char* detail,
            double ts_us, double dur_us) {
  ThreadBuf& b = thread_buf();
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.slots.empty()) return;
  b.slots[b.head % b.slots.size()] = {name, cat, detail, ts_us, dur_us, b.tid};
  ++b.head;
}

}  // namespace

void trace_enable(std::size_t events_per_thread) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.capacity = std::max<std::size_t>(1, events_per_thread);
  for (ThreadBuf* b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->slots.assign(s.capacity, Event{});
    b->head = 0;
  }
  s.epoch_ns.store(steady_now_ns(), std::memory_order_relaxed);
  s.enabled.store(true, std::memory_order_release);
}

void trace_disable() {
  state().enabled.store(false, std::memory_order_release);
}

bool trace_enabled() {
  return state().enabled.load(std::memory_order_acquire);
}

void trace_clear() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (ThreadBuf* b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->head = 0;
  }
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t n = 0;
  for (ThreadBuf* b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->mu);
    n += static_cast<std::size_t>(
        std::min<std::uint64_t>(b->head, b->slots.size()));
  }
  return n;
}

void trace_write_chrome_json(std::ostream& os) {
  // Copy events out under the locks, then serialize without holding them.
  std::vector<Event> events;
  std::vector<int> tids;
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (ThreadBuf* b : s.bufs) {
      std::lock_guard<std::mutex> bl(b->mu);
      tids.push_back(b->tid);
      const std::uint64_t n =
          std::min<std::uint64_t>(b->head, b->slots.size());
      for (std::uint64_t i = 0; i < n; ++i) {
        events.push_back(b->slots[i]);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });

  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const int tid : tids) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(tid);
    w.key("args").begin_object();
    w.key("name").value(tid == 1 ? "main" : "worker");
    w.end_object();
    w.end_object();
  }
  for (const Event& e : events) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value(e.cat ? e.cat : "kernel");
    w.key("ph").value("X");
    w.key("ts").value(e.ts_us);
    w.key("dur").value(e.dur_us);
    w.key("pid").value(1);
    w.key("tid").value(e.tid);
    if (e.detail != nullptr) {
      w.key("args").begin_object();
      w.key("detail").value(e.detail);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
  os << '\n';
}

bool trace_write_chrome_json_file(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  trace_write_chrome_json(f);
  return static_cast<bool>(f);
}

std::vector<TraceSample> trace_samples() {
  std::vector<TraceSample> samples;
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (ThreadBuf* b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->mu);
    const std::uint64_t n = std::min<std::uint64_t>(b->head, b->slots.size());
    for (std::uint64_t i = 0; i < n; ++i) {
      const Event& e = b->slots[i];
      samples.push_back({e.name, e.dur_us * 1e-3});
    }
  }
  return samples;
}

TraceSpan::TraceSpan(const char* name, const char* cat, const char* detail)
    : name_(name), cat_(cat), detail_(detail) {
  if (trace_enabled()) start_us_ = now_us();
}

TraceSpan::~TraceSpan() {
  if (start_us_ < 0.0) return;
  record(name_, cat_, detail_, start_us_, now_us() - start_us_);
}

#endif  // TILESPMSPV_NO_COUNTERS

}  // namespace tilespmspv::obs
