// Compressed Sparse Row matrix. Baseline kernels (cuSPARSE stand-in SpMV,
// Gunrock-style push BFS) and the tiling pass both consume CSR.
#pragma once

#include <cassert>
#include <vector>

#include "formats/coo.hpp"
#include "formats/validate.hpp"
#include "util/types.hpp"

namespace tilespmspv {

template <typename T = value_t>
struct Csr {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<offset_t> row_ptr;  // length rows + 1
  std::vector<index_t> col_idx;   // length nnz, sorted within each row
  std::vector<T> vals;            // length nnz

  Csr() = default;
  Csr(index_t r, index_t c) : rows(r), cols(c), row_ptr(r + 1, 0) {}

  offset_t nnz() const { return static_cast<offset_t>(col_idx.size()); }

  index_t row_nnz(index_t r) const {
    return static_cast<index_t>(row_ptr[r + 1] - row_ptr[r]);
  }

  /// Builds from COO. Duplicates must already be merged; entries need not
  /// be sorted (a counting pass orders them).
  static Csr from_coo(const Coo<T>& coo) {
    Csr m(coo.rows, coo.cols);
    m.col_idx.resize(coo.vals.size());
    m.vals.resize(coo.vals.size());
    for (index_t r : coo.row_idx) {
      ++m.row_ptr[r + 1];
    }
    for (index_t r = 0; r < coo.rows; ++r) {
      m.row_ptr[r + 1] += m.row_ptr[r];
    }
    std::vector<offset_t> cursor(m.row_ptr.begin(), m.row_ptr.end() - 1);
    for (std::size_t i = 0; i < coo.vals.size(); ++i) {
      const offset_t pos = cursor[coo.row_idx[i]]++;
      m.col_idx[pos] = coo.col_idx[i];
      m.vals[pos] = coo.vals[i];
    }
    m.sort_rows();
    TILESPMSPV_POSTCONDITION(validate_csr(m), "Csr::from_coo");
    return m;
  }

  /// Converts back to row-major sorted COO (round-trip test support).
  Coo<T> to_coo() const {
    Coo<T> coo(rows, cols);
    coo.reserve(col_idx.size());
    for (index_t r = 0; r < rows; ++r) {
      for (offset_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
        coo.push(r, col_idx[i], vals[i]);
      }
    }
    return coo;
  }

  /// Transpose; since CSR of A^T is CSC of A, this also serves as the CSC
  /// construction path.
  Csr transpose() const {
    Csr t(cols, rows);
    t.col_idx.resize(col_idx.size());
    t.vals.resize(vals.size());
    for (index_t c : col_idx) {
      ++t.row_ptr[c + 1];
    }
    for (index_t r = 0; r < t.rows; ++r) {
      t.row_ptr[r + 1] += t.row_ptr[r];
    }
    std::vector<offset_t> cursor(t.row_ptr.begin(), t.row_ptr.end() - 1);
    for (index_t r = 0; r < rows; ++r) {
      for (offset_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
        const offset_t pos = cursor[col_idx[i]]++;
        t.col_idx[pos] = r;
        t.vals[pos] = vals[i];
      }
    }
    // Columns within each row are already sorted by construction.
    TILESPMSPV_POSTCONDITION(validate_csr(t), "Csr::transpose");
    return t;
  }

 private:
  void sort_rows() {
    std::vector<std::pair<index_t, T>> buf;
    for (index_t r = 0; r < rows; ++r) {
      const offset_t b = row_ptr[r], e = row_ptr[r + 1];
      if (e - b < 2) continue;
      buf.clear();
      for (offset_t i = b; i < e; ++i) buf.emplace_back(col_idx[i], vals[i]);
      std::sort(buf.begin(), buf.end(),
                [](const auto& a, const auto& bb) { return a.first < bb.first; });
      for (offset_t i = b; i < e; ++i) {
        col_idx[i] = buf[i - b].first;
        vals[i] = buf[i - b].second;
      }
    }
  }
};

}  // namespace tilespmspv
