// Compressed Sparse Column matrix: the column-driven SpMSpV baselines
// (CombBLAS SpMSpV-bucket, sort-merge) and pull-direction BFS consume CSC.
// Internally a CSC of A is the CSR of A^T; this thin wrapper keeps the
// row/column vocabulary straight at call sites.
#pragma once

#include <vector>

#include "formats/csr.hpp"
#include "util/types.hpp"

namespace tilespmspv {

template <typename T = value_t>
struct Csc {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<offset_t> col_ptr;  // length cols + 1
  std::vector<index_t> row_idx;   // length nnz, sorted within each column
  std::vector<T> vals;

  offset_t nnz() const { return static_cast<offset_t>(row_idx.size()); }

  index_t col_nnz(index_t c) const {
    return static_cast<index_t>(col_ptr[c + 1] - col_ptr[c]);
  }

  static Csc from_csr(const Csr<T>& a) {
    Csr<T> t = a.transpose();
    Csc m;
    m.rows = a.rows;
    m.cols = a.cols;
    m.col_ptr = std::move(t.row_ptr);
    m.row_idx = std::move(t.col_idx);
    m.vals = std::move(t.vals);
    return m;
  }

  static Csc from_coo(const Coo<T>& coo) {
    return from_csr(Csr<T>::from_coo(coo));
  }
};

}  // namespace tilespmspv
