// Zero-copy on-disk tile container (format version 2).
//
// The v1 stream format (formats/serialize.hpp) is a length-prefixed array
// dump: loading it materializes every array through the heap and rebuilds
// the derived indexes, so "load a cached tiling" still costs a large
// fraction of converting from scratch. This container is the operational
// replacement: conversion happens once offline (`tilespmspv_cli convert`)
// and startup is a single mmap.
//
// Layout (host-endian — a cache format, like v1):
//
//   [TileFileHeader          128 B]
//   [TileFileSection x N      32 B each]
//   [pad to 64]
//   [section 0 payload] [pad to 64]
//   [section 1 payload] [pad to 64]
//   ...
//
// Every payload starts on a 64-byte boundary, so an mmapped file can back
// the kernels' ArrayBuf views directly — no copy, no rebuild (ALL arrays
// are stored, including the derived run lists, side indexes and chunk
// boundaries). The header carries an FNV-1a hash over the payload bytes;
// the serving layer keys snapshots off it, rehashing the mapped payload
// once at admission so the key is bound to the actual bytes (a forged
// header hash must not alias another matrix's cache entry).
//
// Trust boundary: mapping validates the header, the section table and
// every section's bounds/alignment/elem_size before any view is bound.
// Full structural validation (formats/validate.hpp) and hash verification
// are optional — they re-read the whole file and would erase the point of
// a zero-copy load, but the fuzz tests and the validate CLI turn them on.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/arena.hpp"
#include "tile/bit_tile_graph.hpp"
#include "tile/tile_matrix.hpp"
#include "util/types.hpp"

namespace tilespmspv {

inline constexpr std::uint32_t kTileFileMagic = 0x464C5454;  // "TTLF"
inline constexpr std::uint32_t kTileFileVersion = 2;
inline constexpr std::uint64_t kTileFileAlign = 64;

enum class TileFileKind : std::uint32_t {
  kTileMatrix = 1,
  kBitTileGraph = 2,
};

// Header flags.
inline constexpr std::uint32_t kTileFileHasTranspose = 1u << 0;
inline constexpr std::uint32_t kTileFileSharedMasks = 1u << 1;

struct TileFileHeader {
  std::uint32_t magic = kTileFileMagic;
  std::uint32_t version = kTileFileVersion;
  std::uint32_t kind = 0;   // TileFileKind
  std::uint32_t flags = 0;
  std::int64_t rows = 0;    // graph: n
  std::int64_t cols = 0;    // graph: n
  std::int64_t nt = 0;
  std::int64_t edges = 0;   // total nnz incl. extracted part (both kinds)
  std::uint64_t payload_hash = 0;  // FNV-1a-64 over payloads, section order
  std::uint32_t section_count = 0;
  std::uint32_t reserved0 = 0;
  std::uint64_t file_bytes = 0;    // total file size, for truncation checks
  std::uint64_t reserved1[7] = {};
};
static_assert(sizeof(TileFileHeader) == 128,
              "on-disk header layout must stay fixed");

struct TileFileSection {
  std::uint32_t id = 0;
  std::uint32_t elem_size = 0;
  std::uint64_t offset = 0;  // from file start, kTileFileAlign-aligned
  std::uint64_t bytes = 0;   // == count * elem_size
  std::uint64_t count = 0;
};
static_assert(sizeof(TileFileSection) == 32,
              "on-disk section entry layout must stay fixed");

// Section ids. The transpose part of a TileMatrix file reuses the matrix
// ids with kTileFileTransposeBit set.
inline constexpr std::uint32_t kTileFileTransposeBit = 0x100;

namespace tf_section {
// TileFileKind::kTileMatrix
inline constexpr std::uint32_t kTileRowPtr = 1;
inline constexpr std::uint32_t kTileColId = 2;
inline constexpr std::uint32_t kTileNnzPtr = 3;
inline constexpr std::uint32_t kIntraRowPtr = 4;
inline constexpr std::uint32_t kLocalCol = 5;
inline constexpr std::uint32_t kVals = 6;
inline constexpr std::uint32_t kExtRowIdx = 7;
inline constexpr std::uint32_t kExtColIdx = 8;
inline constexpr std::uint32_t kExtVals = 9;
inline constexpr std::uint32_t kSideColPtr = 10;
inline constexpr std::uint32_t kSideRowIdx = 11;
inline constexpr std::uint32_t kSideVals = 12;
inline constexpr std::uint32_t kSideRowPtr = 13;
inline constexpr std::uint32_t kRowChunkPtr = 14;
inline constexpr std::uint32_t kRunPtr = 15;
inline constexpr std::uint32_t kRowRuns = 16;
inline constexpr std::uint32_t kTileStrategy = 17;
// TileFileKind::kBitTileGraph
inline constexpr std::uint32_t kCsrTilePtr = 1;
inline constexpr std::uint32_t kCsrTileCol = 2;
inline constexpr std::uint32_t kCsrMasks = 3;
inline constexpr std::uint32_t kCsrRowSummary = 4;
inline constexpr std::uint32_t kCscTilePtr = 5;
inline constexpr std::uint32_t kCscTileRow = 6;
inline constexpr std::uint32_t kCscMasks = 7;
inline constexpr std::uint32_t kCscMirror = 8;
inline constexpr std::uint32_t kCscColSummary = 9;
inline constexpr std::uint32_t kSidePtr = 10;
inline constexpr std::uint32_t kSideDst = 11;
inline constexpr std::uint32_t kCsrChunkPtr = 12;
inline constexpr std::uint32_t kCscColWeight = 13;
}  // namespace tf_section

/// FNV-1a-64 over a byte range, chainable through `seed` for streaming.
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t seed = 14695981039346656037ull);

/// Read-only memory mapping of a whole file. The mapping (and hence every
/// ArrayBuf view bound into it) stays valid while any shared_ptr to the
/// MappedFile lives — mapped structures park one in their `storage` slot.
class MappedFile {
 public:
  static std::shared_ptr<MappedFile> open(const std::string& path);
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile() = default;
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  // false => heap fallback (non-mmap platforms)
  std::string path_;
};

/// Validated view over a mapped tile file: header sanity, section table in
/// bounds, and per-section alignment/size/bounds checks all pass before
/// construction returns. `find` is by id; `bind`/`copy` additionally check
/// the element size against the requested type.
class TileFileView {
 public:
  /// Throws std::runtime_error on any structural problem. When
  /// `verify_hash` is set, additionally recomputes the payload hash (full
  /// file read — defeats laziness; for validators and tests).
  static TileFileView open(std::shared_ptr<MappedFile> file,
                           bool verify_hash = false);

  const TileFileHeader& header() const { return *header_; }
  const std::shared_ptr<MappedFile>& file() const { return file_; }

  /// Section by id, or nullptr when absent.
  const TileFileSection* find(std::uint32_t id) const;

  /// Binds `buf` as a view over a required section's payload.
  template <typename T>
  void bind(std::uint32_t id, ArrayBuf<T>& buf) const {
    const TileFileSection& s = require(id, sizeof(T));
    // lint:gated(open() bounds offset+bytes to the file before any view escapes)
    buf.bind_view(reinterpret_cast<const T*>(file_->data() + s.offset),
                  // lint:gated(count == bytes / elem_size checked in open)
                  static_cast<std::size_t>(s.count));
  }

  /// Copies a required section into an owned vector (for the few small
  /// arrays that must stay std::vector, e.g. the chunk boundaries whose
  /// address the kernels take).
  template <typename T>
  void copy(std::uint32_t id, std::vector<T>& out) const {
    const TileFileSection& s = require(id, sizeof(T));
    // lint:gated(open() bounds offset+bytes to the file before any view escapes)
    const T* p = reinterpret_cast<const T*>(file_->data() + s.offset);
    // lint:gated(count == bytes / elem_size checked in open; p spans the section)
    out.assign(p, p + s.count);
  }

 private:
  const TileFileSection& require(std::uint32_t id,
                                 std::size_t elem_size) const;
  std::shared_ptr<MappedFile> file_;
  const TileFileHeader* header_ = nullptr;
  const TileFileSection* sections_ = nullptr;
};

/// Accumulates (id, payload) sections and writes the aligned container.
/// Payload pointers are borrowed: they must stay valid until write()
/// returns. The payload hash and all offsets are computed inside write().
class TileFileWriter {
 public:
  explicit TileFileWriter(TileFileHeader header) : header_(header) {}

  template <typename Array>
  void add(std::uint32_t id, const Array& v) {
    using T = typename Array::value_type;
    add_raw(id, sizeof(T), v.data(), v.size());
  }

  void add_raw(std::uint32_t id, std::size_t elem_size, const void* data,
               std::size_t count);

  /// Writes the file (throws std::runtime_error on I/O failure) and
  /// returns the payload hash recorded in the header.
  std::uint64_t write(const std::string& path);

 private:
  TileFileHeader header_;
  std::vector<TileFileSection> sections_;
  std::vector<const void*> payloads_;
};

/// True iff the file starts with the v2 magic (any version).
bool is_tile_file(const std::string& path);

/// Reads just the 128-byte header (for content keying without touching the
/// payload). Throws on open failure, short read or wrong magic.
TileFileHeader read_tile_file_header(const std::string& path);

/// Writes a tiled matrix (and optionally its transpose, for the SpMSpV
/// CSC kernel) as one v2 file. Returns the payload hash.
std::uint64_t write_tile_matrix_file_v2(
    const std::string& path, const TileMatrix<value_t>& m,
    const TileMatrix<value_t>* transpose = nullptr);

struct MappedTileMatrix {
  TileMatrix<value_t> tiled;
  TileMatrix<value_t> tiled_t;  // empty unless has_transpose
  bool has_transpose = false;
  TileFileHeader header;
};

/// Maps a kTileMatrix file: all heavy arrays become views into the mapping
/// (placed == Placement::kMapped, storage keeps the MappedFile alive); the
/// extracted COO mirror and the chunk boundaries are copied (small). When
/// `deep_validate` is set the full structural validators run over the
/// mapped view before returning.
MappedTileMatrix map_tile_matrix_file(const std::string& path,
                                      bool verify_hash = false,
                                      bool deep_validate = false);

/// Writes / maps a BitTileGraph. The header's nt must match NT at map
/// time; read_tile_file_header lets callers dispatch on nt first.
template <int NT>
std::uint64_t write_bit_tile_graph_file(const std::string& path,
                                        const BitTileGraph<NT>& g) {
  TileFileHeader h;
  h.kind = static_cast<std::uint32_t>(TileFileKind::kBitTileGraph);
  if (g.shared_masks) h.flags |= kTileFileSharedMasks;
  h.rows = g.n;
  h.cols = g.n;
  h.nt = NT;
  h.edges = g.edges;
  TileFileWriter w(h);
  namespace ts = tf_section;
  w.add(ts::kCsrTilePtr, g.csr_tile_ptr);
  w.add(ts::kCsrTileCol, g.csr_tile_col);
  w.add(ts::kCsrMasks, g.csr_masks);
  w.add(ts::kCsrRowSummary, g.csr_row_summary);
  w.add(ts::kCscTilePtr, g.csc_tile_ptr);
  w.add(ts::kCscTileRow, g.csc_tile_row);
  if (g.shared_masks) {
    w.add(ts::kCscMirror, g.csc_mirror);
  } else {
    w.add(ts::kCscMasks, g.csc_masks);
  }
  w.add(ts::kCscColSummary, g.csc_col_summary);
  w.add(ts::kSidePtr, g.side_ptr);
  w.add(ts::kSideDst, g.side_dst);
  w.add(ts::kCsrChunkPtr, g.csr_chunk_ptr);
  w.add(ts::kCscColWeight, g.csc_col_weight);
  return w.write(path);
}

template <int NT>
BitTileGraph<NT> map_bit_tile_graph_file(const std::string& path,
                                         bool verify_hash = false,
                                         bool deep_validate = false) {
  TileFileView v = TileFileView::open(MappedFile::open(path), verify_hash);
  const TileFileHeader& h = v.header();
  if (h.kind != static_cast<std::uint32_t>(TileFileKind::kBitTileGraph)) {
    throw std::runtime_error("tile_file: " + path + " is not a graph file");
  }
  if (h.nt != NT) {
    throw std::runtime_error("tile_file: graph tile size " +
                             std::to_string(h.nt) + " != requested " +
                             std::to_string(NT));
  }
  BitTileGraph<NT> g;
  g.n = static_cast<index_t>(h.rows);
  g.tile_n = ceil_div<index_t>(g.n, NT);
  g.edges = static_cast<offset_t>(h.edges);
  g.shared_masks = (h.flags & kTileFileSharedMasks) != 0;
  namespace ts = tf_section;
  v.bind(ts::kCsrTilePtr, g.csr_tile_ptr);
  v.bind(ts::kCsrTileCol, g.csr_tile_col);
  v.bind(ts::kCsrMasks, g.csr_masks);
  v.bind(ts::kCsrRowSummary, g.csr_row_summary);
  v.bind(ts::kCscTilePtr, g.csc_tile_ptr);
  v.bind(ts::kCscTileRow, g.csc_tile_row);
  if (g.shared_masks) {
    v.bind(ts::kCscMirror, g.csc_mirror);
  } else {
    v.bind(ts::kCscMasks, g.csc_masks);
  }
  v.bind(ts::kCscColSummary, g.csc_col_summary);
  v.bind(ts::kSidePtr, g.side_ptr);
  v.bind(ts::kSideDst, g.side_dst);
  v.copy(ts::kCsrChunkPtr, g.csr_chunk_ptr);
  v.bind(ts::kCscColWeight, g.csc_col_weight);
  // Cheap structural gates even in the fast path: the pointer arrays must
  // have their expected lengths or the kernels would index out of bounds.
  // Both orientations are gated — the CSC kernels index csc_masks (or the
  // mirror table) and the summaries just as hard as the CSR side.
  const std::size_t ntiles = g.csr_tile_col.size();
  if (g.csr_tile_ptr.size() != static_cast<std::size_t>(g.tile_n) + 1 ||
      g.csc_tile_ptr.size() != static_cast<std::size_t>(g.tile_n) + 1 ||
      g.side_ptr.size() != static_cast<std::size_t>(g.n) + 1 ||
      g.csc_tile_row.size() != ntiles ||
      g.csr_masks.size() != ntiles * static_cast<std::size_t>(NT) ||
      (g.shared_masks
           ? g.csc_mirror.size() != ntiles
           : g.csc_masks.size() != ntiles * static_cast<std::size_t>(NT)) ||
      g.csr_row_summary.size() != ntiles ||
      g.csc_col_summary.size() != ntiles ||
      g.csc_col_weight.size() != static_cast<std::size_t>(g.tile_n)) {
    throw std::runtime_error("tile_file: graph section lengths inconsistent");
  }
  if (deep_validate) {
    require_valid(validate_bit_tile_graph(g), "map_bit_tile_graph_file");
  }
  g.placed = Placement::kMapped;
  g.storage = v.file();
  return g;
}

}  // namespace tilespmspv
