// Small stream helpers shared by the binary and Matrix Market readers.
#pragma once

#include <cstdint>
#include <istream>

namespace tilespmspv {

/// Bytes between the stream's current position and its end, or -1 when the
/// stream is not seekable. Loaders call this once per load and use the
/// result to bound every length field read from the stream, so a corrupt
/// length can never allocate more than the file could possibly hold.
inline std::int64_t stream_bytes_remaining(std::istream& in) {
  const auto cur = in.tellg();
  if (cur == std::istream::pos_type(-1)) {
    in.clear();
    return -1;
  }
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(cur);
  if (end == std::istream::pos_type(-1) || !in) {
    in.clear();
    in.seekg(cur);
    return -1;
  }
  return static_cast<std::int64_t>(end - cur);
}

}  // namespace tilespmspv
