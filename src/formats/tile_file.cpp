#include "formats/tile_file.hpp"

#include <cstring>
#include <fstream>
#include <limits>

#if defined(__linux__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define TILESPMSPV_HAS_MMAP 1
#endif

#include "formats/validate.hpp"

namespace tilespmspv {

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// MappedFile

std::shared_ptr<MappedFile> MappedFile::open(const std::string& path) {
  auto mf = std::shared_ptr<MappedFile>(new MappedFile());
  mf->path_ = path;
#ifdef TILESPMSPV_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("tile_file: cannot open " + path);
  struct stat st {};
  if (fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw std::runtime_error("tile_file: cannot stat " + path);
  }
  mf->size_ = static_cast<std::size_t>(st.st_size);
  if (mf->size_ > 0) {
    void* p = ::mmap(nullptr, mf->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      throw std::runtime_error("tile_file: mmap failed for " + path);
    }
    mf->data_ = static_cast<std::uint8_t*>(p);
    mf->mapped_ = true;
  }
  ::close(fd);  // the mapping survives the descriptor
#else
  // Portability fallback: materialize the file. Loses zero-copy but keeps
  // the format usable; every platform we build for has mmap.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("tile_file: cannot open " + path);
  const std::streamoff end = in.tellg();
  mf->size_ = static_cast<std::size_t>(end);
  if (mf->size_ > 0) {
    mf->data_ = static_cast<std::uint8_t*>(
        ::operator new(mf->size_, std::align_val_t{kTileFileAlign}));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(mf->data_),
            static_cast<std::streamsize>(mf->size_));
    if (!in) {
      ::operator delete(mf->data_, std::align_val_t{kTileFileAlign});
      throw std::runtime_error("tile_file: short read from " + path);
    }
  }
#endif
  return mf;
}

MappedFile::~MappedFile() {
  if (data_ == nullptr) return;
#ifdef TILESPMSPV_HAS_MMAP
  if (mapped_) {
    ::munmap(data_, size_);
    return;
  }
#endif
  ::operator delete(data_, std::align_val_t{kTileFileAlign});
}

// ---------------------------------------------------------------------------
// TileFileView

TileFileView TileFileView::open(std::shared_ptr<MappedFile> file,
                                bool verify_hash) {
  TileFileView v;
  v.file_ = std::move(file);
  const std::uint8_t* base = v.file_->data();
  const std::size_t size = v.file_->size();
  const std::string& path = v.file_->path();
  if (size < sizeof(TileFileHeader)) {
    throw std::runtime_error("tile_file: " + path + " shorter than a header");
  }
  v.header_ = reinterpret_cast<const TileFileHeader*>(base);
  const TileFileHeader& h = *v.header_;
  if (h.magic != kTileFileMagic) {
    throw std::runtime_error("tile_file: " + path + " has the wrong magic");
  }
  if (h.version != kTileFileVersion) {
    throw std::runtime_error("tile_file: " + path + " is format version " +
                             std::to_string(h.version) + ", expected " +
                             std::to_string(kTileFileVersion));
  }
  if (h.file_bytes != size) {
    throw std::runtime_error("tile_file: " + path + " is " +
                             std::to_string(size) + " bytes, header claims " +
                             std::to_string(h.file_bytes) + " (truncated?)");
  }
  if (h.rows < 0 || h.cols < 0 || h.nt <= 0 || h.nt > 256 ||
      h.rows > std::numeric_limits<index_t>::max() ||
      h.cols > std::numeric_limits<index_t>::max()) {
    throw std::runtime_error("tile_file: " + path + " header dims invalid");
  }
  const std::uint64_t table_end =
      sizeof(TileFileHeader) +
      std::uint64_t{h.section_count} * sizeof(TileFileSection);
  if (h.section_count > 4096 || table_end > size) {
    throw std::runtime_error("tile_file: " + path +
                             " section table out of bounds");
  }
  v.sections_ =
      reinterpret_cast<const TileFileSection*>(base + sizeof(TileFileHeader));
  for (std::uint32_t i = 0; i < h.section_count; ++i) {
    const TileFileSection& s = v.sections_[i];
    const std::string what =
        "tile_file: " + path + " section " + std::to_string(s.id);
    if (s.offset % kTileFileAlign != 0) {
      throw std::runtime_error(what + " payload is misaligned");
    }
    // Division, not multiplication: `count * elem_size` wraps for a crafted
    // count like 2^61, which would let a tiny mapping claim a huge element
    // count and send every downstream view out of bounds.
    if (s.elem_size == 0 || s.bytes % s.elem_size != 0 ||
        s.count != s.bytes / s.elem_size) {
      throw std::runtime_error(what + " size fields disagree");
    }
    if (s.offset < table_end || s.offset > size || s.bytes > size - s.offset) {
      throw std::runtime_error(what + " payload is out of bounds");
    }
  }
  if (verify_hash) {
    std::uint64_t hash = 14695981039346656037ull;
    for (std::uint32_t i = 0; i < h.section_count; ++i) {
      const TileFileSection& s = v.sections_[i];
      hash = fnv1a64(base + s.offset, static_cast<std::size_t>(s.bytes), hash);
    }
    if (hash != h.payload_hash) {
      throw std::runtime_error("tile_file: " + path +
                               " payload hash mismatch (corrupt file)");
    }
  }
  return v;
}

const TileFileSection* TileFileView::find(std::uint32_t id) const {
  // lint:gated(section_count bounded against the section-table size in open)
  for (std::uint32_t i = 0; i < header_->section_count; ++i) {
    if (sections_[i].id == id) return &sections_[i];
  }
  return nullptr;
}

const TileFileSection& TileFileView::require(std::uint32_t id,
                                             std::size_t elem_size) const {
  const TileFileSection* s = find(id);
  if (s == nullptr) {
    throw std::runtime_error("tile_file: " + file_->path() +
                             " is missing section " + std::to_string(id));
  }
  if (s->elem_size != elem_size) {
    throw std::runtime_error(
        "tile_file: " + file_->path() + " section " + std::to_string(id) +
        " has element size " + std::to_string(s->elem_size) + ", expected " +
        std::to_string(elem_size));
  }
  return *s;
}

// ---------------------------------------------------------------------------
// TileFileWriter

void TileFileWriter::add_raw(std::uint32_t id, std::size_t elem_size,
                             const void* data, std::size_t count) {
  TileFileSection s;
  s.id = id;
  s.elem_size = static_cast<std::uint32_t>(elem_size);
  s.count = count;
  s.bytes = count * elem_size;
  sections_.push_back(s);
  payloads_.push_back(data);
}

std::uint64_t TileFileWriter::write(const std::string& path) {
  header_.section_count = static_cast<std::uint32_t>(sections_.size());
  std::uint64_t cursor =
      sizeof(TileFileHeader) + sections_.size() * sizeof(TileFileSection);
  std::uint64_t hash = 14695981039346656037ull;
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    cursor = round_up(cursor, kTileFileAlign);
    sections_[i].offset = cursor;
    cursor += sections_[i].bytes;
    hash = fnv1a64(payloads_[i], static_cast<std::size_t>(sections_[i].bytes),
                   hash);
  }
  header_.payload_hash = hash;
  header_.file_bytes = cursor;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("tile_file: cannot open " + path);
  out.write(reinterpret_cast<const char*>(&header_), sizeof(header_));
  out.write(reinterpret_cast<const char*>(sections_.data()),
            static_cast<std::streamsize>(sections_.size() *
                                         sizeof(TileFileSection)));
  static constexpr char kPad[kTileFileAlign] = {};
  std::uint64_t written =
      sizeof(TileFileHeader) + sections_.size() * sizeof(TileFileSection);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const std::uint64_t pad = sections_[i].offset - written;
    out.write(kPad, static_cast<std::streamsize>(pad));
    out.write(static_cast<const char*>(payloads_[i]),
              static_cast<std::streamsize>(sections_[i].bytes));
    written = sections_[i].offset + sections_[i].bytes;
  }
  if (!out) throw std::runtime_error("tile_file: write failed for " + path);
  return hash;
}

// ---------------------------------------------------------------------------
// High-level API

bool is_tile_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return in && magic == kTileFileMagic;
}

TileFileHeader read_tile_file_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("tile_file: cannot open " + path);
  TileFileHeader h;
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in) throw std::runtime_error("tile_file: " + path + " header truncated");
  if (h.magic != kTileFileMagic) {
    throw std::runtime_error("tile_file: " + path + " has the wrong magic");
  }
  // Callers dispatch on these fields (TileBfs switches on nt, the CLI
  // prints dims) before any mapping-time validation runs, so the sniffed
  // header passes the same gates open() applies.
  if (h.version != kTileFileVersion) {
    throw std::runtime_error("tile_file: " + path + " is format version " +
                             std::to_string(h.version) + ", expected " +
                             std::to_string(kTileFileVersion));
  }
  if (h.rows < 0 || h.cols < 0 || h.nt <= 0 || h.nt > 256 ||
      h.rows > std::numeric_limits<index_t>::max() ||
      h.cols > std::numeric_limits<index_t>::max()) {
    throw std::runtime_error("tile_file: " + path + " header dims invalid");
  }
  return h;
}

namespace {

void add_tile_matrix_sections(TileFileWriter& w, const TileMatrix<value_t>& m,
                              std::uint32_t id_bits) {
  namespace ts = tf_section;
  w.add(ts::kTileRowPtr | id_bits, m.tile_row_ptr);
  w.add(ts::kTileColId | id_bits, m.tile_col_id);
  w.add(ts::kTileNnzPtr | id_bits, m.tile_nnz_ptr);
  w.add(ts::kIntraRowPtr | id_bits, m.intra_row_ptr);
  w.add(ts::kLocalCol | id_bits, m.local_col);
  w.add(ts::kVals | id_bits, m.vals);
  w.add(ts::kExtRowIdx | id_bits, m.extracted.row_idx);
  w.add(ts::kExtColIdx | id_bits, m.extracted.col_idx);
  w.add(ts::kExtVals | id_bits, m.extracted.vals);
  w.add(ts::kSideColPtr | id_bits, m.side_col_ptr);
  w.add(ts::kSideRowIdx | id_bits, m.side_row_idx);
  w.add(ts::kSideVals | id_bits, m.side_vals);
  w.add(ts::kSideRowPtr | id_bits, m.side_row_ptr);
  w.add(ts::kRowChunkPtr | id_bits, m.row_chunk_ptr);
  w.add(ts::kRunPtr | id_bits, m.run_ptr);
  w.add(ts::kRowRuns | id_bits, m.row_runs);
  w.add(ts::kTileStrategy | id_bits, m.tile_strategy);
}

TileMatrix<value_t> bind_tile_matrix(const TileFileView& v, index_t rows,
                                     index_t cols, index_t nt,
                                     std::uint32_t id_bits) {
  namespace ts = tf_section;
  TileMatrix<value_t> m;
  m.rows = rows;
  m.cols = cols;
  m.nt = nt;
  m.tile_rows = ceil_div(rows, nt);
  m.tile_cols = ceil_div(cols, nt);
  v.bind(ts::kTileRowPtr | id_bits, m.tile_row_ptr);
  v.bind(ts::kTileColId | id_bits, m.tile_col_id);
  v.bind(ts::kTileNnzPtr | id_bits, m.tile_nnz_ptr);
  v.bind(ts::kIntraRowPtr | id_bits, m.intra_row_ptr);
  v.bind(ts::kLocalCol | id_bits, m.local_col);
  v.bind(ts::kVals | id_bits, m.vals);
  m.extracted = Coo<value_t>(rows, cols);
  v.copy(ts::kExtRowIdx | id_bits, m.extracted.row_idx);
  v.copy(ts::kExtColIdx | id_bits, m.extracted.col_idx);
  v.copy(ts::kExtVals | id_bits, m.extracted.vals);
  v.bind(ts::kSideColPtr | id_bits, m.side_col_ptr);
  v.bind(ts::kSideRowIdx | id_bits, m.side_row_idx);
  v.bind(ts::kSideVals | id_bits, m.side_vals);
  v.bind(ts::kSideRowPtr | id_bits, m.side_row_ptr);
  v.copy(ts::kRowChunkPtr | id_bits, m.row_chunk_ptr);
  v.bind(ts::kRunPtr | id_bits, m.run_ptr);
  v.bind(ts::kRowRuns | id_bits, m.row_runs);
  v.bind(ts::kTileStrategy | id_bits, m.tile_strategy);
  // Cheap structural gates on the fast path: the pointer arrays must have
  // their expected lengths or the kernels would index out of bounds. Full
  // payload validation stays optional (deep_validate).
  const auto tiles = m.tile_col_id.size();
  if (m.tile_row_ptr.size() != static_cast<std::size_t>(m.tile_rows) + 1 ||
      m.tile_nnz_ptr.size() != tiles + 1 ||
      m.intra_row_ptr.size() != tiles * static_cast<std::size_t>(nt + 1) ||
      m.run_ptr.size() != tiles + 1 || m.tile_strategy.size() != tiles ||
      m.side_col_ptr.size() != static_cast<std::size_t>(cols) + 1 ||
      m.side_row_ptr.size() != static_cast<std::size_t>(rows) + 1 ||
      m.local_col.size() != m.vals.size()) {
    throw std::runtime_error("tile_file: matrix section lengths inconsistent");
  }
  // Parallel-array agreement: the side CSC arrays and the extracted COO
  // triple are indexed with a shared cursor, so a crafted file that
  // shortens one section (each section is internally consistent, so open()
  // cannot catch this) would send the kernels past the shorter array.
  if (m.side_row_idx.size() != m.side_vals.size() ||
      m.extracted.row_idx.size() != m.extracted.vals.size() ||
      m.extracted.col_idx.size() != m.extracted.vals.size()) {
    throw std::runtime_error("tile_file: parallel section lengths disagree");
  }
  return m;
}

}  // namespace

std::uint64_t write_tile_matrix_file_v2(const std::string& path,
                                        const TileMatrix<value_t>& m,
                                        const TileMatrix<value_t>* transpose) {
  TileFileHeader h;
  h.kind = static_cast<std::uint32_t>(TileFileKind::kTileMatrix);
  h.rows = m.rows;
  h.cols = m.cols;
  h.nt = m.nt;
  h.edges = static_cast<std::int64_t>(m.total_nnz());
  if (transpose != nullptr) {
    if (transpose->rows != m.cols || transpose->cols != m.rows ||
        transpose->nt != m.nt) {
      throw std::runtime_error(
          "tile_file: transpose part dims do not mirror the matrix");
    }
    h.flags |= kTileFileHasTranspose;
  }
  TileFileWriter w(h);
  add_tile_matrix_sections(w, m, 0);
  if (transpose != nullptr) {
    add_tile_matrix_sections(w, *transpose, kTileFileTransposeBit);
  }
  return w.write(path);
}

MappedTileMatrix map_tile_matrix_file(const std::string& path,
                                      bool verify_hash, bool deep_validate) {
  TileFileView v = TileFileView::open(MappedFile::open(path), verify_hash);
  const TileFileHeader& h = v.header();
  if (h.kind != static_cast<std::uint32_t>(TileFileKind::kTileMatrix)) {
    throw std::runtime_error("tile_file: " + path + " is not a matrix file");
  }
  MappedTileMatrix out;
  out.header = h;
  const auto rows = static_cast<index_t>(h.rows);
  const auto cols = static_cast<index_t>(h.cols);
  const auto nt = static_cast<index_t>(h.nt);
  out.tiled = bind_tile_matrix(v, rows, cols, nt, 0);
  out.tiled.placed = Placement::kMapped;
  out.tiled.storage = v.file();
  out.has_transpose = (h.flags & kTileFileHasTranspose) != 0;
  if (out.has_transpose) {
    out.tiled_t = bind_tile_matrix(v, cols, rows, nt, kTileFileTransposeBit);
    out.tiled_t.placed = Placement::kMapped;
    out.tiled_t.storage = v.file();
  }
  if (deep_validate) {
    require_valid(validate_tile_matrix(out.tiled), "map_tile_matrix_file");
    if (out.has_transpose) {
      require_valid(validate_tile_matrix(out.tiled_t),
                    "map_tile_matrix_file(transpose)");
    }
  }
  return out;
}

}  // namespace tilespmspv
