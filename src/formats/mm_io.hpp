// Matrix Market (.mtx) reader/writer so real SuiteSparse matrices can be
// dropped into the benchmark harnesses in place of the synthetic analogs.
// Supports the coordinate format with real / integer / pattern fields and
// general / symmetric symmetry.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "formats/coo.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Parses a Matrix Market coordinate stream into COO (1-based indices in the
/// file become 0-based; symmetric matrices are expanded; pattern matrices
/// get value 1.0). Throws std::runtime_error on malformed input.
Coo<value_t> read_matrix_market(std::istream& in);

/// Convenience overload reading from a file path.
Coo<value_t> read_matrix_market_file(const std::string& path);

/// Writes COO as a general real coordinate Matrix Market body.
void write_matrix_market(std::ostream& out, const Coo<value_t>& m);

}  // namespace tilespmspv
