// Coordinate (COO) sparse matrix: the interchange format every generator
// emits and every other format is built from. Also the storage for the
// "very sparse tile" side matrix the paper extracts (§3.2.1).
#pragma once

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "formats/validate.hpp"
#include "util/types.hpp"

namespace tilespmspv {

template <typename T = value_t>
struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_idx;
  std::vector<index_t> col_idx;
  std::vector<T> vals;

  Coo() = default;
  Coo(index_t r, index_t c) : rows(r), cols(c) {}

  index_t nnz() const { return static_cast<index_t>(vals.size()); }

  void push(index_t r, index_t c, T v) {
    assert(r >= 0 && r < rows && c >= 0 && c < cols);
    row_idx.push_back(r);
    col_idx.push_back(c);
    vals.push_back(v);
  }

  void reserve(std::size_t n) {
    row_idx.reserve(n);
    col_idx.reserve(n);
    vals.reserve(n);
  }

  /// Sorts entries into row-major order (row, then column). Stable with
  /// respect to duplicates so that sum_duplicates() below is deterministic.
  void sort_row_major() {
    std::vector<index_t> perm(vals.size());
    std::iota(perm.begin(), perm.end(), index_t{0});
    std::stable_sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
      if (row_idx[a] != row_idx[b]) return row_idx[a] < row_idx[b];
      return col_idx[a] < col_idx[b];
    });
    apply_permutation(perm);
  }

  /// Collapses duplicate (row, col) entries by summation. Requires the
  /// matrix to be sorted row-major.
  void sum_duplicates() {
    std::size_t w = 0;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (w > 0 && row_idx[i] == row_idx[w - 1] &&
          col_idx[i] == col_idx[w - 1]) {
        vals[w - 1] += vals[i];
      } else {
        row_idx[w] = row_idx[i];
        col_idx[w] = col_idx[i];
        vals[w] = vals[i];
        ++w;
      }
    }
    row_idx.resize(w);
    col_idx.resize(w);
    vals.resize(w);
  }

  /// Adds the transposed entry for every off-diagonal entry, making the
  /// pattern symmetric (used to build undirected graphs). Duplicates are
  /// then merged.
  void symmetrize() {
    const std::size_t n = vals.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (row_idx[i] != col_idx[i]) {
        row_idx.push_back(col_idx[i]);
        col_idx.push_back(row_idx[i]);
        vals.push_back(vals[i]);
      }
    }
    sort_row_major();
    sum_duplicates();
    TILESPMSPV_POSTCONDITION(validate_coo(*this), "Coo::symmetrize");
  }

 private:
  void apply_permutation(const std::vector<index_t>& perm) {
    std::vector<index_t> r(perm.size()), c(perm.size());
    std::vector<T> v(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      r[i] = row_idx[perm[i]];
      c[i] = col_idx[perm[i]];
      v[i] = vals[perm[i]];
    }
    row_idx = std::move(r);
    col_idx = std::move(c);
    vals = std::move(v);
  }
};

}  // namespace tilespmspv
