// Element-wise operations on sparse vectors — the GraphBLAS vocabulary
// (eWiseAdd, eWiseMult, masking, select/prune) that graph algorithms
// compose around the SpMSpV primitive. All operations are merge-based on
// the sorted index lists, O(nnz(a) + nnz(b)).
#pragma once

#include <functional>

#include "formats/sparse_vector.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Union combine (GraphBLAS eWiseAdd): positions present in either input;
/// overlapping positions combined with `op`, others copied through.
/// Results equal to T{} are dropped (SparseVec invariant).
template <typename T, typename Op = std::plus<T>>
SparseVec<T> ewise_add(const SparseVec<T>& a, const SparseVec<T>& b,
                       Op op = {}) {
  assert(a.n == b.n);
  SparseVec<T> out(a.n);
  std::size_t i = 0, j = 0;
  while (i < a.idx.size() || j < b.idx.size()) {
    if (j >= b.idx.size() || (i < a.idx.size() && a.idx[i] < b.idx[j])) {
      if (a.vals[i] != T{}) out.push(a.idx[i], a.vals[i]);
      ++i;
    } else if (i >= a.idx.size() || b.idx[j] < a.idx[i]) {
      if (b.vals[j] != T{}) out.push(b.idx[j], b.vals[j]);
      ++j;
    } else {
      const T v = op(a.vals[i], b.vals[j]);
      if (v != T{}) out.push(a.idx[i], v);
      ++i;
      ++j;
    }
  }
  return out;
}

/// Intersection combine (GraphBLAS eWiseMult): only positions present in
/// both inputs.
template <typename T, typename Op = std::multiplies<T>>
SparseVec<T> ewise_mult(const SparseVec<T>& a, const SparseVec<T>& b,
                        Op op = {}) {
  assert(a.n == b.n);
  SparseVec<T> out(a.n);
  std::size_t i = 0, j = 0;
  while (i < a.idx.size() && j < b.idx.size()) {
    if (a.idx[i] < b.idx[j]) {
      ++i;
    } else if (b.idx[j] < a.idx[i]) {
      ++j;
    } else {
      const T v = op(a.vals[i], b.vals[j]);
      if (v != T{}) out.push(a.idx[i], v);
      ++i;
      ++j;
    }
  }
  return out;
}

/// Structural mask: keep entries of `a` whose position IS in `mask`
/// (complement=false) or is NOT in `mask` (complement=true). This is the
/// BFS "new vertices only" filter: next = mask<!visited>(y).
template <typename T, typename M>
SparseVec<T> mask(const SparseVec<T>& a, const SparseVec<M>& m,
                  bool complement = false) {
  assert(a.n == m.n);
  SparseVec<T> out(a.n);
  std::size_t j = 0;
  for (std::size_t i = 0; i < a.idx.size(); ++i) {
    while (j < m.idx.size() && m.idx[j] < a.idx[i]) ++j;
    const bool present = j < m.idx.size() && m.idx[j] == a.idx[i];
    if (present != complement) out.push(a.idx[i], a.vals[i]);
  }
  return out;
}

/// Keeps entries satisfying the predicate (GraphBLAS select).
template <typename T, typename Pred>
SparseVec<T> select(const SparseVec<T>& a, Pred pred) {
  SparseVec<T> out(a.n);
  for (std::size_t i = 0; i < a.idx.size(); ++i) {
    if (pred(a.idx[i], a.vals[i])) out.push(a.idx[i], a.vals[i]);
  }
  return out;
}

/// In-place value map (GraphBLAS apply). Entries mapping to T{} are kept
/// out of the result.
template <typename T, typename Fn>
SparseVec<T> apply(const SparseVec<T>& a, Fn fn) {
  SparseVec<T> out(a.n);
  for (std::size_t i = 0; i < a.idx.size(); ++i) {
    const T v = fn(a.vals[i]);
    if (v != T{}) out.push(a.idx[i], v);
  }
  return out;
}

/// Reduction over the stored values.
template <typename T, typename Op = std::plus<T>>
T reduce(const SparseVec<T>& a, T init = T{}, Op op = {}) {
  T acc = init;
  for (const T v : a.vals) acc = op(acc, v);
  return acc;
}

}  // namespace tilespmspv
