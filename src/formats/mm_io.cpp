#include "formats/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "formats/io_util.hpp"
#include "formats/validate.hpp"

namespace tilespmspv {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Files written on Windows arrive with CRLF line endings; std::getline
// strips only the '\n', leaving a trailing '\r' that would corrupt the
// last token of every line ("general\r" fails the symmetry check).
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

Coo<value_t> read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("matrix market: empty stream");
  }
  strip_cr(line);
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || lower(object) != "matrix") {
    throw std::runtime_error("matrix market: bad banner: " + line);
  }
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (format != "coordinate") {
    throw std::runtime_error("matrix market: only coordinate format supported");
  }
  if (field != "real" && field != "integer" && field != "pattern") {
    throw std::runtime_error("matrix market: unsupported field: " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    throw std::runtime_error("matrix market: unsupported symmetry: " +
                             symmetry);
  }

  // Skip comments, then read the size line.
  while (std::getline(in, line)) {
    strip_cr(line);
    if (!line.empty() && line[0] != '%') break;
  }
  long long rows = 0, cols = 0, entries = 0;
  {
    std::istringstream size_line(line);
    if (!(size_line >> rows >> cols >> entries)) {
      throw std::runtime_error("matrix market: bad size line: " + line);
    }
  }
  if (rows < 0 || cols < 0 || entries < 0) {
    throw std::runtime_error("matrix market: negative size line: " + line);
  }
  // Dims must fit index_t exactly; a static_cast here would silently
  // truncate a 64-bit header value into a wrong (possibly negative) index.
  if (rows > std::numeric_limits<index_t>::max() ||
      cols > std::numeric_limits<index_t>::max()) {
    throw std::runtime_error("matrix market: dimensions out of index range: " +
                             line);
  }
  // Bound the claimed entry count by what the stream can still provide (a
  // coordinate line is at least "1 1" plus a newline), so a corrupt count
  // cannot pre-allocate far beyond the file size.
  const std::int64_t remaining = stream_bytes_remaining(in);
  if (remaining >= 0 && entries > remaining / 4 + 1) {
    throw std::runtime_error(
        "matrix market: claimed entry count exceeds the stream size");
  }

  Coo<value_t> m(static_cast<index_t>(rows), static_cast<index_t>(cols));
  m.reserve(static_cast<std::size_t>(entries) *
            (symmetry == "symmetric" ? 2 : 1));
  const bool pattern = field == "pattern";
  for (long long e = 0; e < entries; ++e) {
    if (!std::getline(in, line)) {
      throw std::runtime_error("matrix market: truncated entry list");
    }
    strip_cr(line);
    if (line.empty()) {
      --e;
      continue;
    }
    std::istringstream entry(line);
    long long r = 0, c = 0;
    double v = 1.0;
    entry >> r >> c;
    if (!pattern) entry >> v;
    if (!entry) {
      throw std::runtime_error("matrix market: bad entry: " + line);
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      throw std::runtime_error("matrix market: index out of range: " + line);
    }
    m.push(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v);
    if (symmetry == "symmetric" && r != c) {
      m.push(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1), v);
    }
  }
  m.sort_row_major();
  m.sum_duplicates();
  // Trust boundary: ingest validates unconditionally.
  require_valid(validate_coo(m), "read_matrix_market");
  return m;
}

Coo<value_t> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("matrix market: cannot open " + path);
  }
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Coo<value_t>& m) {
  out.precision(17);  // round-trip exact for IEEE doubles
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows << ' ' << m.cols << ' ' << m.nnz() << '\n';
  for (index_t i = 0; i < m.nnz(); ++i) {
    out << m.row_idx[i] + 1 << ' ' << m.col_idx[i] + 1 << ' ' << m.vals[i]
        << '\n';
  }
}

}  // namespace tilespmspv
