// Plain sparse vector (index/value pairs) — the interchange representation
// for SpMSpV inputs/outputs. The tiled vector format of the paper is built
// from / converted back to this (see tile/tile_vector.hpp).
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "util/types.hpp"

namespace tilespmspv {

template <typename T = value_t>
struct SparseVec {
  index_t n = 0;                // logical length
  std::vector<index_t> idx;     // sorted, unique positions of nonzeros
  std::vector<T> vals;          // matching values

  SparseVec() = default;
  explicit SparseVec(index_t len) : n(len) {}

  index_t nnz() const { return static_cast<index_t>(idx.size()); }

  double sparsity() const {
    return n == 0 ? 0.0 : static_cast<double>(nnz()) / static_cast<double>(n);
  }

  void push(index_t i, T v) {
    assert(i >= 0 && i < n);
    idx.push_back(i);
    vals.push_back(v);
  }

  /// Pre-sizes both arrays (kernels reserve from the flagged-tile count so
  /// gather pushes never reallocate).
  void reserve(std::size_t cap) {
    idx.reserve(cap);
    vals.reserve(cap);
  }

  /// Sorts entries by index (generators may emit out of order).
  void sort() {
    std::vector<std::pair<index_t, T>> buf(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) buf[i] = {idx[i], vals[i]};
    std::sort(buf.begin(), buf.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < buf.size(); ++i) {
      idx[i] = buf[i].first;
      vals[i] = buf[i].second;
    }
  }

  /// Expands to a dense vector (zeros elsewhere).
  std::vector<T> to_dense() const {
    std::vector<T> d(n, T{});
    for (std::size_t i = 0; i < idx.size(); ++i) d[idx[i]] = vals[i];
    return d;
  }

  /// Gathers the nonzeros of a dense vector; values with |v| == 0 dropped.
  static SparseVec from_dense(const std::vector<T>& d) {
    SparseVec v(static_cast<index_t>(d.size()));
    for (index_t i = 0; i < v.n; ++i) {
      if (d[i] != T{}) v.push(i, d[i]);
    }
    return v;
  }
};

/// Approximate equality of two sparse vectors after densification, with a
/// tolerance scaled by magnitude (SpMSpV kernels sum in different orders).
template <typename T>
bool approx_equal(const SparseVec<T>& a, const SparseVec<T>& b,
                  double rel_tol = 1e-10, double abs_tol = 1e-12) {
  if (a.n != b.n) return false;
  const auto da = a.to_dense();
  const auto db = b.to_dense();
  for (index_t i = 0; i < a.n; ++i) {
    const double diff = std::abs(static_cast<double>(da[i] - db[i]));
    const double scale =
        std::max(std::abs(static_cast<double>(da[i])),
                 std::abs(static_cast<double>(db[i])));
    if (diff > abs_tol + rel_tol * scale) return false;
  }
  return true;
}

}  // namespace tilespmspv
