// Binary (de)serialization of the CSR and tiled matrix formats, so the
// tiling preprocessing (which Fig. 11 shows costing several traversals)
// can be paid once and cached on disk — the standard operational pattern
// for graph systems that traverse the same matrix across many runs.
//
// Format: magic + version header, then length-prefixed raw arrays. The
// files are host-endian (a cache format, not an interchange format;
// Matrix Market remains the interchange path).
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "formats/csr.hpp"
#include "tile/tile_matrix.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// What a serialized stream claims to contain, judged from its magic.
/// kTileFile is the v2 mmap container (formats/tile_file.hpp), which has
/// its own header/section validation path rather than the v1 readers.
enum class SerializedKind { kUnknown, kCsr, kTileMatrix, kTileFile };

/// Reads the leading magic word and classifies the stream (consumes the
/// four bytes; reopen or rewind before loading). Used by the validate CLI
/// to dispatch without trusting a file extension.
SerializedKind probe_serialized_kind(std::istream& in);

/// Serializes a CSR matrix. Throws std::runtime_error on stream failure.
/// The readers sit on the trust boundary: they bound every array length
/// against the remaining stream size before allocating and re-check the
/// structure's invariants (formats/validate.hpp) before returning, so a
/// corrupt or adversarial file loads as a clear error, never as an
/// out-of-bounds read in a kernel.
void write_csr(std::ostream& out, const Csr<value_t>& a);
Csr<value_t> read_csr(std::istream& in);

/// Serializes a tiled matrix (including the extracted side part and its
/// column/row indices, so no rebuild happens at load).
void write_tile_matrix(std::ostream& out, const TileMatrix<value_t>& m);
TileMatrix<value_t> read_tile_matrix(std::istream& in);

/// File-path conveniences.
void write_tile_matrix_file(const std::string& path,
                            const TileMatrix<value_t>& m);
TileMatrix<value_t> read_tile_matrix_file(const std::string& path);

}  // namespace tilespmspv
