// Format-invariant validation layer (the trust boundary for every sparse
// structure in the library).
//
// Each validator re-checks the documented invariants of one structure —
// pointer monotonicity and terminal sums, index bounds (including the
// 4-bit packed coordinates and the bitmask word widths), extracted-COO
// consistency, and agreement of the derived run-list / strategy-byte /
// chunk arrays with the tile payload — and returns a structured
// ValidationResult instead of asserting, so callers at the trust boundary
// (deserializers, Matrix Market ingest, the validate CLI) can reject
// corrupt or adversarial inputs with a clear error while debug builds get
// the same checks as conversion postconditions.
//
// The validators are deliberately duck-typed (templated on the structure
// type, not on the structure headers) so this header sits below every
// format header and each structure can self-check without include cycles.
// They must stay safe on *arbitrary* member values: checks are ordered in
// gates, and content scans only run once the size/shape gates they index
// through have passed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/arena.hpp"
#include "util/bitops.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// One violated invariant: a stable slug ("tile_row_ptr/monotone") plus a
/// human-readable detail with the offending values.
struct ValidationIssue {
  std::string invariant;
  std::string detail;
};

/// Outcome of a validator run. Empty issue list means the structure holds
/// every checked invariant. Issue collection is capped so validating
/// garbage stays cheap; `truncated` records that the cap was hit.
struct ValidationResult {
  static constexpr std::size_t kMaxIssues = 16;

  std::vector<ValidationIssue> issues;
  bool truncated = false;

  bool ok() const { return issues.empty(); }
  bool full() const { return issues.size() >= kMaxIssues; }

  void add(std::string invariant, std::string detail) {
    if (full()) {
      truncated = true;
      return;
    }
    issues.push_back({std::move(invariant), std::move(detail)});
  }

  /// Appends another result's issues under a slug prefix (used to nest the
  /// extracted-COO check inside the tile-matrix validator).
  void merge(const ValidationResult& other, const std::string& prefix) {
    for (const auto& i : other.issues) add(prefix + i.invariant, i.detail);
    if (other.truncated) truncated = true;
  }

  /// All issues joined into one line (what require_valid throws).
  std::string message() const {
    std::string out;
    for (const auto& i : issues) {
      if (!out.empty()) out += "; ";
      out += i.invariant + ": " + i.detail;
    }
    if (truncated) out += "; (more issues suppressed)";
    return out.empty() ? std::string("ok") : out;
  }
};

/// Throwing wrapper: turns a failed validation into std::runtime_error —
/// the same exception type the deserializers already use for truncated
/// streams, so trust-boundary callers handle one error family.
inline void require_valid(const ValidationResult& r, const char* what) {
  if (!r.ok()) {
    throw std::runtime_error(std::string(what) + ": invalid structure: " +
                             r.message());
  }
}

// Conversion postconditions: on by default in debug builds, opt-in for
// release via -DTILESPMSPV_VALIDATE_CONVERSIONS (the ASan/UBSan CI job
// sets it so every conversion in the whole test suite is re-checked).
#if !defined(NDEBUG) || defined(TILESPMSPV_VALIDATE_CONVERSIONS)
#define TILESPMSPV_CHECK_POSTCONDITIONS 1
#else
#define TILESPMSPV_CHECK_POSTCONDITIONS 0
#endif

#define TILESPMSPV_POSTCONDITION(result_expr, what)     \
  do {                                                  \
    if (TILESPMSPV_CHECK_POSTCONDITIONS) {              \
      ::tilespmspv::require_valid((result_expr), (what)); \
    }                                                   \
  } while (0)

namespace detail {

/// Bitwise value equality, so validators agree with the serializer on NaN
/// payloads (a NaN value is corrupt data, not an invariant violation).
template <typename T>
bool bit_equal(const T& a, const T& b) {
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

inline std::string idx_str(std::int64_t i) { return std::to_string(i); }

/// Prefix-sum ("pointer") array check: exact length, starts at zero,
/// nondecreasing, terminal equals `total`. Returns false when any check
/// failed (callers must then stop indexing through the array). Templated
/// on the container so both std::vector and ArrayBuf (owned or mapped
/// views) validate through the same code.
template <typename PtrArray>
bool check_ptr_array(ValidationResult& r, const PtrArray& ptr,
                     std::size_t expect_len, std::int64_t total,
                     const char* name) {
  if (ptr.size() != expect_len) {
    r.add(std::string(name) + "/length",
          "expected " + idx_str(static_cast<std::int64_t>(expect_len)) +
              " entries, got " + idx_str(static_cast<std::int64_t>(ptr.size())));
    return false;
  }
  if (ptr.empty()) return true;
  if (ptr.front() != 0) {
    r.add(std::string(name) + "/origin",
          "first entry is " + idx_str(static_cast<std::int64_t>(ptr.front())) +
              ", expected 0");
    return false;
  }
  for (std::size_t i = 1; i < ptr.size(); ++i) {
    if (ptr[i] < ptr[i - 1]) {
      r.add(std::string(name) + "/monotone",
            "decreases at index " + idx_str(static_cast<std::int64_t>(i)) +
                " (" + idx_str(static_cast<std::int64_t>(ptr[i - 1])) + " -> " +
                idx_str(static_cast<std::int64_t>(ptr[i])) + ")");
      return false;
    }
  }
  if (static_cast<std::int64_t>(ptr.back()) != total) {
    r.add(std::string(name) + "/total",
          "terminal sum " + idx_str(static_cast<std::int64_t>(ptr.back())) +
              " != expected " + idx_str(total));
    return false;
  }
  return true;
}

/// All entries in [0, bound). Reports only the first offender.
template <typename IdxArray>
bool check_index_range(ValidationResult& r, const IdxArray& idx,
                       std::int64_t bound, const char* name) {
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const auto v = static_cast<std::int64_t>(idx[i]);
    if (v < 0 || v >= bound) {
      r.add(std::string(name) + "/range",
            "entry " + idx_str(static_cast<std::int64_t>(i)) + " is " +
                idx_str(v) + ", valid range [0, " + idx_str(bound) + ")");
      return false;
    }
  }
  return true;
}

/// Scheduling-chunk boundaries: optional (kernels fall back to uniform
/// chunks when absent), but when present they must start at 0, strictly
/// increase, and — when they describe more than one boundary — cover
/// [0, tile_rows) exactly.
template <typename ChunkArray>
void check_row_chunks(ValidationResult& r, const ChunkArray& chunks,
                      std::int64_t tile_rows, const char* name) {
  if (chunks.empty()) return;
  if (chunks.front() != 0) {
    r.add(std::string(name) + "/origin", "first boundary is " +
                                             idx_str(chunks.front()) +
                                             ", expected 0");
    return;
  }
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    if (chunks[i] <= chunks[i - 1]) {
      r.add(std::string(name) + "/monotone",
            "boundary " + idx_str(static_cast<std::int64_t>(i)) +
                " does not increase");
      return;
    }
  }
  if (static_cast<std::int64_t>(chunks.back()) > tile_rows) {
    r.add(std::string(name) + "/coverage",
          "last boundary " + idx_str(static_cast<std::int64_t>(chunks.back())) +
              " exceeds tile_rows " + idx_str(tile_rows));
    return;
  }
  if (chunks.size() >= 2 &&
      static_cast<std::int64_t>(chunks.back()) != tile_rows) {
    r.add(std::string(name) + "/coverage",
          "chunks end at " + idx_str(static_cast<std::int64_t>(chunks.back())) +
              ", not at tile_rows " + idx_str(tile_rows));
  }
}

}  // namespace detail

/// COO matrix: nonnegative dims, parallel arrays, in-range indices.
template <typename C>
ValidationResult validate_coo(const C& m) {
  ValidationResult r;
  if (m.rows < 0 || m.cols < 0) {
    r.add("dims/nonnegative", "rows=" + std::to_string(m.rows) +
                                  " cols=" + std::to_string(m.cols));
    return r;
  }
  if (m.row_idx.size() != m.vals.size() || m.col_idx.size() != m.vals.size()) {
    r.add("arrays/parallel",
          "row_idx/col_idx/vals sizes " + std::to_string(m.row_idx.size()) +
              "/" + std::to_string(m.col_idx.size()) + "/" +
              std::to_string(m.vals.size()) + " differ");
    return r;
  }
  detail::check_index_range(r, m.row_idx, m.rows, "row_idx");
  detail::check_index_range(r, m.col_idx, m.cols, "col_idx");
  return r;
}

/// CSR matrix: row pointer is a prefix sum over nnz, column indices are
/// in range and strictly increasing within each row (duplicates merged —
/// the precondition Csr::from_coo documents and every kernel assumes).
template <typename M>
ValidationResult validate_csr(const M& a) {
  ValidationResult r;
  if (a.rows < 0 || a.cols < 0) {
    r.add("dims/nonnegative", "rows=" + std::to_string(a.rows) +
                                  " cols=" + std::to_string(a.cols));
    return r;
  }
  if (a.col_idx.size() != a.vals.size()) {
    r.add("arrays/parallel", "col_idx size " + std::to_string(a.col_idx.size()) +
                                 " != vals size " + std::to_string(a.vals.size()));
    return r;
  }
  if (!detail::check_ptr_array(r, a.row_ptr,
                               static_cast<std::size_t>(a.rows) + 1,
                               static_cast<std::int64_t>(a.col_idx.size()),
                               "row_ptr")) {
    return r;
  }
  if (!detail::check_index_range(r, a.col_idx, a.cols, "col_idx")) return r;
  for (index_t row = 0; row < a.rows; ++row) {
    for (offset_t i = a.row_ptr[row] + 1; i < a.row_ptr[row + 1]; ++i) {
      if (a.col_idx[i] <= a.col_idx[i - 1]) {
        r.add("col_idx/sorted",
              "row " + std::to_string(row) +
                  " columns not strictly increasing at nnz position " +
                  std::to_string(i));
        return r;
      }
    }
  }
  return r;
}

/// Plain sparse vector: sorted unique in-range indices, no stored zeros.
template <typename V>
ValidationResult validate_sparse_vec(const V& x) {
  ValidationResult r;
  if (x.n < 0) {
    r.add("dims/nonnegative", "n=" + std::to_string(x.n));
    return r;
  }
  if (x.idx.size() != x.vals.size()) {
    r.add("arrays/parallel", "idx size " + std::to_string(x.idx.size()) +
                                 " != vals size " + std::to_string(x.vals.size()));
    return r;
  }
  if (!detail::check_index_range(r, x.idx, x.n, "idx")) return r;
  for (std::size_t i = 1; i < x.idx.size(); ++i) {
    if (x.idx[i] <= x.idx[i - 1]) {
      r.add("idx/sorted-unique",
            "indices not strictly increasing at position " + std::to_string(i));
      return r;
    }
  }
  for (std::size_t i = 0; i < x.vals.size(); ++i) {
    if (x.vals[i] == decltype(x.vals[i] * 0){}) {
      r.add("vals/no-stored-zeros",
            "explicit zero stored at position " + std::to_string(i));
      return r;
    }
  }
  return r;
}

/// Tiled sparse vector (paper Fig. 3): slot map covers ceil(n/nt) tiles,
/// compact slots form a permutation of the stored tile blocks, the last
/// partial tile is zero-padded past n, and nnz matches the stored payload.
template <typename V>
ValidationResult validate_tile_vector(const V& v) {
  ValidationResult r;
  if (v.n < 0) {
    r.add("dims/nonnegative", "n=" + std::to_string(v.n));
    return r;
  }
  if (v.nt < 1 || v.nt > 256) {
    r.add("nt/range", "nt=" + std::to_string(v.nt) + ", valid range [1, 256]");
    return r;
  }
  const auto tiles = static_cast<std::size_t>(ceil_div(v.n, v.nt));
  if (v.x_ptr.size() != tiles) {
    r.add("x_ptr/length", "expected " + std::to_string(tiles) +
                              " slots, got " + std::to_string(v.x_ptr.size()));
    return r;
  }
  if (v.x_tile.size() % static_cast<std::size_t>(v.nt) != 0) {
    r.add("x_tile/length",
          "payload size " + std::to_string(v.x_tile.size()) +
              " is not a multiple of nt=" + std::to_string(v.nt));
    return r;
  }
  const auto slots =
      static_cast<index_t>(v.x_tile.size() / static_cast<std::size_t>(v.nt));
  std::vector<unsigned char> seen(static_cast<std::size_t>(slots), 0);
  index_t used = 0;
  for (std::size_t t = 0; t < v.x_ptr.size(); ++t) {
    const index_t p = v.x_ptr[t];
    if (p == kEmptyTile) continue;
    if (p < 0 || p >= slots) {
      r.add("x_ptr/range", "tile " + std::to_string(t) + " maps to slot " +
                               std::to_string(p) + ", valid range [0, " +
                               std::to_string(slots) + ")");
      return r;
    }
    if (seen[static_cast<std::size_t>(p)]) {
      r.add("x_ptr/unique-slots",
            "slot " + std::to_string(p) + " referenced by multiple tiles");
      return r;
    }
    seen[static_cast<std::size_t>(p)] = 1;
    ++used;
  }
  if (used != slots) {
    r.add("x_ptr/slot-coverage",
          std::to_string(slots) + " stored tile blocks but only " +
              std::to_string(used) + " referenced");
    return r;
  }
  // Zero padding past n in the last partial tile.
  if (v.n % v.nt != 0 && !v.x_ptr.empty() && v.x_ptr.back() != kEmptyTile) {
    const index_t slot = v.x_ptr.back();
    for (index_t j = v.n % v.nt; j < v.nt; ++j) {
      if (!(v.x_tile[static_cast<std::size_t>(slot) * v.nt + j] ==
            decltype(v.x_tile[0] * 0){})) {
        r.add("x_tile/padding",
              "nonzero padding past n in the last partial tile at local "
              "position " + std::to_string(j));
        return r;
      }
    }
  }
  std::size_t nonzeros = 0;
  for (const auto& val : v.x_tile) {
    if (!(val == decltype(v.x_tile[0] * 0){})) ++nonzeros;
  }
  if (static_cast<std::int64_t>(nonzeros) != static_cast<std::int64_t>(v.nnz)) {
    r.add("nnz/agreement", "nnz field is " + std::to_string(v.nnz) + " but " +
                               std::to_string(nonzeros) +
                               " nonzeros are stored");
  }
  return r;
}

/// Block of k tiled vectors (core/tile_spmspm.hpp operand): slot map over
/// ceil(n/nt) tiles as in validate_tile_vector, one active lane-bitmask
/// word per slot whose non-emptiness must agree with the slot map, no lane
/// bits at or above k, and a lane-interleaved payload of exactly
/// slots*nt*k values.
template <typename B>
ValidationResult validate_tile_vector_block(const B& b) {
  ValidationResult r;
  if (b.n < 0) {
    r.add("dims/nonnegative", "n=" + std::to_string(b.n));
    return r;
  }
  if (b.nt < 1 || b.nt > 256) {
    r.add("nt/range", "nt=" + std::to_string(b.nt) + ", valid range [1, 256]");
    return r;
  }
  if (b.k < 0 || b.k > 64) {
    r.add("k/range", "k=" + std::to_string(b.k) + ", valid range [0, 64]");
    return r;
  }
  const auto tiles =
      b.k == 0 ? std::size_t{0} : static_cast<std::size_t>(ceil_div(b.n, b.nt));
  if (b.x_ptr.size() != tiles || b.active.size() != tiles) {
    r.add("slots/length",
          "expected " + std::to_string(tiles) + " tile slots, got x_ptr=" +
              std::to_string(b.x_ptr.size()) + " active=" +
              std::to_string(b.active.size()));
    return r;
  }
  const std::size_t stride =
      static_cast<std::size_t>(b.nt) * static_cast<std::size_t>(b.k);
  if (stride != 0 && b.x_tile.size() % stride != 0) {
    r.add("x_tile/length",
          "payload size " + std::to_string(b.x_tile.size()) +
              " is not a multiple of nt*k=" + std::to_string(stride));
    return r;
  }
  const auto slots =
      static_cast<index_t>(stride == 0 ? 0 : b.x_tile.size() / stride);
  std::vector<unsigned char> seen(static_cast<std::size_t>(slots), 0);
  index_t used = 0;
  for (std::size_t t = 0; t < b.x_ptr.size(); ++t) {
    const index_t p = b.x_ptr[t];
    const std::uint64_t word = b.active[t];
    if (b.k < 64 && (word >> b.k) != 0) {
      r.add("active/lane-range", "tile " + std::to_string(t) +
                                     " has active bits at or above k=" +
                                     std::to_string(b.k));
      return r;
    }
    if ((p == kEmptyTile) != (word == 0)) {
      r.add("active/slot-agreement",
            "tile " + std::to_string(t) +
                ": empty-slot sentinel and active word disagree");
      return r;
    }
    if (p == kEmptyTile) continue;
    if (p < 0 || p >= slots) {
      r.add("x_ptr/range", "tile " + std::to_string(t) + " maps to slot " +
                               std::to_string(p) + ", valid range [0, " +
                               std::to_string(slots) + ")");
      return r;
    }
    if (seen[static_cast<std::size_t>(p)]) {
      r.add("x_ptr/unique-slots",
            "slot " + std::to_string(p) + " referenced by multiple tiles");
      return r;
    }
    seen[static_cast<std::size_t>(p)] = 1;
    ++used;
  }
  if (used != slots) {
    r.add("x_ptr/slot-coverage",
          std::to_string(slots) + " stored tile blocks but only " +
              std::to_string(used) + " referenced");
  }
  return r;
}

/// Numeric tiled matrix (paper §3.2.1). Gates: grid shape; tile-grid CSR;
/// intra-tile payload (monotone local row pointers summing to each tile's
/// range, local columns sorted, in range, and clipped to the matrix edge);
/// extracted COO (in-range, row-major sorted, dims matching); derived
/// side-index / run-list / strategy / chunk arrays agreeing with the
/// payload whenever they are present (they are absent mid-deserialization
/// and on hand-built test matrices).
template <typename TM>
ValidationResult validate_tile_matrix(const TM& m) {
  using std::to_string;
  ValidationResult r;
  // Gate 0: placement bookkeeping. A matrix whose arrays are views (arena
  // or mapped file) must hold the owner keeping them alive.
  if (m.placed != Placement::kHeap && m.storage == nullptr) {
    r.add("placement/storage-owner",
          std::string(placement_name(m.placed)) +
              " placement with no storage owner");
    return r;
  }
  // Gate 1: shape scalars.
  if (m.rows < 0 || m.cols < 0) {
    r.add("dims/nonnegative",
          "rows=" + to_string(m.rows) + " cols=" + to_string(m.cols));
    return r;
  }
  if (m.nt < 1 || m.nt > 256) {
    r.add("nt/range", "nt=" + to_string(m.nt) + ", valid range [1, 256]");
    return r;
  }
  if (m.tile_rows != ceil_div(m.rows, m.nt) ||
      m.tile_cols != ceil_div(m.cols, m.nt)) {
    r.add("grid/dims", "tile grid " + to_string(m.tile_rows) + "x" +
                           to_string(m.tile_cols) + " does not match ceil(" +
                           to_string(m.rows) + "/" + to_string(m.nt) + ") x ceil(" +
                           to_string(m.cols) + "/" + to_string(m.nt) + ")");
    return r;
  }

  // Gate 2: CSR over the tile grid and the flat payload arrays.
  const auto ntiles = static_cast<std::int64_t>(m.tile_col_id.size());
  if (!detail::check_ptr_array(r, m.tile_row_ptr,
                               static_cast<std::size_t>(m.tile_rows) + 1,
                               ntiles, "tile_row_ptr")) {
    return r;
  }
  if (!detail::check_index_range(r, m.tile_col_id, m.tile_cols, "tile_col_id")) {
    return r;
  }
  for (index_t tr = 0; tr < m.tile_rows; ++tr) {
    for (offset_t t = m.tile_row_ptr[tr] + 1; t < m.tile_row_ptr[tr + 1]; ++t) {
      if (m.tile_col_id[t] <= m.tile_col_id[t - 1]) {
        r.add("tile_col_id/sorted",
              "tile row " + to_string(tr) +
                  " column ids not strictly increasing at tile " + to_string(t));
        return r;
      }
    }
  }
  if (m.local_col.size() != m.vals.size()) {
    r.add("payload/parallel", "local_col size " + to_string(m.local_col.size()) +
                                  " != vals size " + to_string(m.vals.size()));
    return r;
  }
  if (!detail::check_ptr_array(r, m.tile_nnz_ptr,
                               static_cast<std::size_t>(ntiles) + 1,
                               static_cast<std::int64_t>(m.vals.size()),
                               "tile_nnz_ptr")) {
    return r;
  }
  if (m.intra_row_ptr.size() !=
      static_cast<std::size_t>(ntiles) * (static_cast<std::size_t>(m.nt) + 1)) {
    r.add("intra_row_ptr/length",
          "expected " + to_string(ntiles) + " * (nt+1) = " +
              to_string(static_cast<std::size_t>(ntiles) *
                        (static_cast<std::size_t>(m.nt) + 1)) +
              " entries, got " + to_string(m.intra_row_ptr.size()));
    return r;
  }

  // Gate 3: intra-tile payload.
  for (index_t tr = 0; tr < m.tile_rows; ++tr) {
    const index_t row_limit = std::min<index_t>(m.nt, m.rows - tr * m.nt);
    for (offset_t t = m.tile_row_ptr[tr]; t < m.tile_row_ptr[tr + 1]; ++t) {
      const index_t tc = m.tile_col_id[t];
      const index_t col_limit = std::min<index_t>(m.nt, m.cols - tc * m.nt);
      const auto* p = &m.intra_row_ptr[static_cast<std::size_t>(t) * (m.nt + 1)];
      const offset_t tile_nnz = m.tile_nnz_ptr[t + 1] - m.tile_nnz_ptr[t];
      if (p[0] != 0) {
        r.add("intra_row_ptr/origin",
              "tile " + to_string(t) + " local row pointer starts at " +
                  to_string(p[0]));
        return r;
      }
      for (index_t lr = 0; lr < m.nt; ++lr) {
        if (p[lr + 1] < p[lr]) {
          r.add("intra_row_ptr/monotone",
                "tile " + to_string(t) + " local row pointer decreases at row " +
                    to_string(lr));
          return r;
        }
      }
      if (static_cast<offset_t>(p[m.nt]) != tile_nnz) {
        r.add("intra_row_ptr/total",
              "tile " + to_string(t) + " local total " + to_string(p[m.nt]) +
                  " != tile_nnz_ptr range " + to_string(tile_nnz));
        return r;
      }
      for (index_t lr = row_limit; lr < m.nt; ++lr) {
        if (p[lr + 1] != p[lr]) {
          r.add("intra_row_ptr/row-clip",
                "tile " + to_string(t) + " stores entries in local row " +
                    to_string(lr) + " beyond the matrix edge (rows=" +
                    to_string(m.rows) + ")");
          return r;
        }
      }
      const offset_t base = m.tile_nnz_ptr[t];
      for (index_t lr = 0; lr < row_limit; ++lr) {
        for (offset_t i = p[lr]; i < p[lr + 1]; ++i) {
          const index_t lc = m.local_col[base + i];
          if (lc >= col_limit) {
            r.add("local_col/range",
                  "tile " + to_string(t) + " local column " + to_string(lc) +
                      " exceeds limit " + to_string(col_limit) +
                      " (nt=" + to_string(m.nt) + ", cols=" + to_string(m.cols) +
                      ")");
            return r;
          }
          if (i > p[lr] && lc <= m.local_col[base + i - 1]) {
            r.add("local_col/sorted",
                  "tile " + to_string(t) + " local row " + to_string(lr) +
                      " columns not strictly increasing");
            return r;
          }
        }
      }
    }
  }

  // Gate 4: extracted COO — dims match, indices in range, row-major sorted
  // (side_row_ptr ranges index the extracted arrays directly).
  if (m.extracted.rows != m.rows || m.extracted.cols != m.cols) {
    r.add("extracted/dims",
          "extracted COO is " + to_string(m.extracted.rows) + "x" +
              to_string(m.extracted.cols) + ", matrix is " + to_string(m.rows) +
              "x" + to_string(m.cols));
    return r;
  }
  r.merge(validate_coo(m.extracted), "extracted.");
  if (!r.ok()) return r;
  for (index_t i = 1; i < m.extracted.nnz(); ++i) {
    const bool row_order = m.extracted.row_idx[i] > m.extracted.row_idx[i - 1];
    const bool col_order = m.extracted.row_idx[i] == m.extracted.row_idx[i - 1] &&
                           m.extracted.col_idx[i] > m.extracted.col_idx[i - 1];
    if (!row_order && !col_order) {
      r.add("extracted/row-major",
            "extracted entries not strictly row-major sorted at position " +
                to_string(i));
      return r;
    }
  }

  // Gate 5: derived arrays, when present.
  const auto extracted_nnz = static_cast<std::int64_t>(m.extracted.nnz());
  if (!m.side_col_ptr.empty()) {
    if (!detail::check_ptr_array(r, m.side_col_ptr,
                                 static_cast<std::size_t>(m.cols) + 1,
                                 extracted_nnz, "side_col_ptr")) {
      return r;
    }
    if (m.side_row_idx.size() != static_cast<std::size_t>(extracted_nnz) ||
        m.side_vals.size() != static_cast<std::size_t>(extracted_nnz)) {
      r.add("side/parallel",
            "side_row_idx/side_vals sizes do not match extracted nnz " +
                to_string(extracted_nnz));
      return r;
    }
    // Replay the stable counting sort that built the side index and demand
    // bitwise agreement (extracted-COO consistency).
    std::vector<offset_t> expect_ptr(static_cast<std::size_t>(m.cols) + 1, 0);
    for (index_t c : m.extracted.col_idx) ++expect_ptr[c + 1];
    for (index_t c = 0; c < m.cols; ++c) expect_ptr[c + 1] += expect_ptr[c];
    for (index_t c = 0; c <= m.cols; ++c) {
      if (m.side_col_ptr[c] != expect_ptr[c]) {
        r.add("side_col_ptr/agreement",
              "column pointer disagrees with extracted COO at column " +
                  to_string(c));
        return r;
      }
    }
    std::vector<offset_t> cursor(expect_ptr.begin(), expect_ptr.end() - 1);
    for (index_t i = 0; i < m.extracted.nnz(); ++i) {
      const offset_t pos = cursor[m.extracted.col_idx[i]]++;
      if (m.side_row_idx[pos] != m.extracted.row_idx[i] ||
          !detail::bit_equal(m.side_vals[pos], m.extracted.vals[i])) {
        r.add("side/agreement",
              "side index entry " + to_string(pos) +
                  " disagrees with extracted COO entry " + to_string(i));
        return r;
      }
    }
  }
  if (!m.side_row_ptr.empty()) {
    if (!detail::check_ptr_array(r, m.side_row_ptr,
                                 static_cast<std::size_t>(m.rows) + 1,
                                 extracted_nnz, "side_row_ptr")) {
      return r;
    }
    std::vector<offset_t> expect_ptr(static_cast<std::size_t>(m.rows) + 1, 0);
    for (index_t row : m.extracted.row_idx) ++expect_ptr[row + 1];
    for (index_t row = 0; row < m.rows; ++row) {
      expect_ptr[row + 1] += expect_ptr[row];
    }
    for (index_t row = 0; row <= m.rows; ++row) {
      if (m.side_row_ptr[row] != expect_ptr[row]) {
        r.add("side_row_ptr/agreement",
              "row pointer disagrees with extracted COO at row " +
                  to_string(row));
        return r;
      }
    }
  }
  if (!m.run_ptr.empty()) {
    if (m.row_runs.size() % 3 != 0) {
      r.add("row_runs/length", "run payload size " + to_string(m.row_runs.size()) +
                                   " is not a multiple of 3");
      return r;
    }
    if (!detail::check_ptr_array(r, m.run_ptr,
                                 static_cast<std::size_t>(ntiles) + 1,
                                 static_cast<std::int64_t>(m.row_runs.size() / 3),
                                 "run_ptr")) {
      return r;
    }
    if (m.tile_strategy.size() != static_cast<std::size_t>(ntiles)) {
      r.add("tile_strategy/length",
            "expected " + to_string(ntiles) + " strategy bytes, got " +
                to_string(m.tile_strategy.size()));
      return r;
    }
    for (std::int64_t t = 0; t < ntiles; ++t) {
      if (m.tile_strategy[t] > TM::kRunTiny) {
        r.add("tile_strategy/range",
              "tile " + to_string(t) + " has unknown strategy byte " +
                  to_string(static_cast<int>(m.tile_strategy[t])));
        return r;
      }
    }
    // Exact agreement of the run list with the intra-tile payload: one run
    // per non-empty local row, count and contiguity recomputed.
    for (std::int64_t t = 0; t < ntiles; ++t) {
      const auto* p = &m.intra_row_ptr[static_cast<std::size_t>(t) * (m.nt + 1)];
      const offset_t base = m.tile_nnz_ptr[t];
      offset_t run = m.run_ptr[t];
      for (index_t lr = 0; lr < m.nt; ++lr) {
        const int c = p[lr + 1] - p[lr];
        if (c <= 0) continue;
        if (run >= m.run_ptr[t + 1]) {
          r.add("row_runs/agreement",
                "tile " + to_string(t) + " has fewer runs than non-empty rows");
          return r;
        }
        const std::uint8_t* triple = &m.row_runs[static_cast<std::size_t>(run) * 3];
        const std::uint8_t* rc = &m.local_col[base + p[lr]];
        std::uint8_t contig = 1;
        for (int i = 1; i < c; ++i) {
          if (rc[i] != static_cast<std::uint8_t>(rc[0] + i)) {
            contig = 0;
            break;
          }
        }
        if (triple[0] != lr || triple[1] != c - 1 || triple[2] != contig) {
          r.add("row_runs/agreement",
                "tile " + to_string(t) + " run " + to_string(run) +
                    " disagrees with the intra-tile payload at local row " +
                    to_string(lr));
          return r;
        }
        ++run;
      }
      if (run != m.run_ptr[t + 1]) {
        r.add("row_runs/agreement",
              "tile " + to_string(t) + " has more runs than non-empty rows");
        return r;
      }
    }
  }
  detail::check_row_chunks(r, m.row_chunk_ptr, m.tile_rows, "row_chunk_ptr");
  return r;
}

/// Packed-byte tiled matrix (fixed nt = 16): grid CSR checks plus nibble
/// coordinates clipped to the matrix edge in the last tile row/column.
template <typename PM>
ValidationResult validate_packed_tile_matrix(const PM& m) {
  using std::to_string;
  ValidationResult r;
  constexpr index_t nt = PM::kNt;
  if (m.rows < 0 || m.cols < 0) {
    r.add("dims/nonnegative",
          "rows=" + to_string(m.rows) + " cols=" + to_string(m.cols));
    return r;
  }
  if (m.tile_rows != ceil_div<index_t>(m.rows, nt) ||
      m.tile_cols != ceil_div<index_t>(m.cols, nt)) {
    r.add("grid/dims", "tile grid " + to_string(m.tile_rows) + "x" +
                           to_string(m.tile_cols) +
                           " does not match ceil(dims / 16)");
    return r;
  }
  const auto ntiles = static_cast<std::int64_t>(m.tile_col_id.size());
  if (!detail::check_ptr_array(r, m.tile_row_ptr,
                               static_cast<std::size_t>(m.tile_rows) + 1,
                               ntiles, "tile_row_ptr")) {
    return r;
  }
  if (!detail::check_index_range(r, m.tile_col_id, m.tile_cols, "tile_col_id")) {
    return r;
  }
  for (index_t tr = 0; tr < m.tile_rows; ++tr) {
    for (offset_t t = m.tile_row_ptr[tr] + 1; t < m.tile_row_ptr[tr + 1]; ++t) {
      if (m.tile_col_id[t] <= m.tile_col_id[t - 1]) {
        r.add("tile_col_id/sorted",
              "tile row " + to_string(tr) +
                  " column ids not strictly increasing at tile " + to_string(t));
        return r;
      }
    }
  }
  if (m.packed.size() != m.vals.size()) {
    r.add("payload/parallel", "packed size " + to_string(m.packed.size()) +
                                  " != vals size " + to_string(m.vals.size()));
    return r;
  }
  if (!detail::check_ptr_array(r, m.tile_nnz_ptr,
                               static_cast<std::size_t>(ntiles) + 1,
                               static_cast<std::int64_t>(m.vals.size()),
                               "tile_nnz_ptr")) {
    return r;
  }
  for (index_t tr = 0; tr < m.tile_rows; ++tr) {
    const index_t row_limit = std::min<index_t>(nt, m.rows - tr * nt);
    for (offset_t t = m.tile_row_ptr[tr]; t < m.tile_row_ptr[tr + 1]; ++t) {
      const index_t tc = m.tile_col_id[t];
      const index_t col_limit = std::min<index_t>(nt, m.cols - tc * nt);
      for (offset_t i = m.tile_nnz_ptr[t]; i < m.tile_nnz_ptr[t + 1]; ++i) {
        const index_t lr = PM::unpack_row(m.packed[i]);
        const index_t lc = PM::unpack_col(m.packed[i]);
        if (lr >= row_limit || lc >= col_limit) {
          r.add("packed/range",
                "tile " + to_string(t) + " entry " + to_string(i) +
                    " local coordinate (" + to_string(lr) + ", " + to_string(lc) +
                    ") exceeds limits (" + to_string(row_limit) + ", " +
                    to_string(col_limit) + ")");
          return r;
        }
      }
    }
  }
  detail::check_row_chunks(r, m.row_chunk_ptr, m.tile_rows, "row_chunk_ptr");
  return r;
}

/// Bitmask tiled adjacency structure (paper §3.2.3): both tile-grid forms
/// checked as CSR/CSC pairs, mask words clipped to the matrix edge (no
/// set bit may fall outside [0, n) in either dimension), occupancy
/// summaries recomputed, mirror indices (shared-mask mode) or transposed
/// masks (materialized mode) verified against the CSR form, side edge
/// list bounds, and the total edge count tied back to mask popcounts.
template <typename G>
ValidationResult validate_bit_tile_graph(const G& g) {
  using std::to_string;
  using Word = typename G::Word;
  constexpr index_t NT = static_cast<index_t>(sizeof(Word)) * 8;
  ValidationResult r;
  // Placement bookkeeping first (see validate_tile_matrix): view-backed
  // arrays need their storage owner alive.
  if (g.placed != Placement::kHeap && g.storage == nullptr) {
    r.add("placement/storage-owner",
          std::string(placement_name(g.placed)) +
              " placement with no storage owner");
    return r;
  }
  if (g.n < 0) {
    r.add("dims/nonnegative", "n=" + to_string(g.n));
    return r;
  }
  if (g.tile_n != ceil_div<index_t>(g.n, NT)) {
    r.add("grid/dims", "tile_n " + to_string(g.tile_n) + " != ceil(" +
                           to_string(g.n) + " / " + to_string(NT) + ")");
    return r;
  }
  const auto ntiles = static_cast<std::int64_t>(g.csr_tile_col.size());
  if (!detail::check_ptr_array(r, g.csr_tile_ptr,
                               static_cast<std::size_t>(g.tile_n) + 1, ntiles,
                               "csr_tile_ptr")) {
    return r;
  }
  if (!detail::check_index_range(r, g.csr_tile_col, g.tile_n, "csr_tile_col")) {
    return r;
  }
  for (index_t tr = 0; tr < g.tile_n; ++tr) {
    for (offset_t t = g.csr_tile_ptr[tr] + 1; t < g.csr_tile_ptr[tr + 1]; ++t) {
      if (g.csr_tile_col[t] <= g.csr_tile_col[t - 1]) {
        r.add("csr_tile_col/sorted",
              "tile row " + to_string(tr) +
                  " column ids not strictly increasing at tile " + to_string(t));
        return r;
      }
    }
  }
  if (g.csr_masks.size() != static_cast<std::size_t>(ntiles) * NT) {
    r.add("csr_masks/length", "expected " + to_string(ntiles) + " * " +
                                  to_string(NT) + " words, got " +
                                  to_string(g.csr_masks.size()));
    return r;
  }
  // Mask word widths: bits past the matrix edge must be clear. Bit lc is
  // msb_bit(lc), so for a column limit L < NT the low NT-L bits are the
  // out-of-range positions.
  std::int64_t mask_edges = 0;
  for (index_t tr = 0; tr < g.tile_n; ++tr) {
    const index_t row_limit = std::min<index_t>(NT, g.n - tr * NT);
    for (offset_t t = g.csr_tile_ptr[tr]; t < g.csr_tile_ptr[tr + 1]; ++t) {
      const index_t tc = g.csr_tile_col[t];
      const index_t col_limit = std::min<index_t>(NT, g.n - tc * NT);
      const Word invalid =
          col_limit < NT
              ? static_cast<Word>(static_cast<Word>(~Word{0}) >> col_limit)
              : Word{0};
      for (index_t lr = 0; lr < NT; ++lr) {
        const Word w = g.csr_masks[static_cast<std::size_t>(t) * NT + lr];
        if (lr >= row_limit && w != 0) {
          r.add("csr_masks/row-clip",
                "tile " + to_string(t) + " has bits in local row " +
                    to_string(lr) + " beyond the matrix edge (n=" +
                    to_string(g.n) + ")");
          return r;
        }
        if ((w & invalid) != 0) {
          r.add("csr_masks/col-width",
                "tile " + to_string(t) + " local row " + to_string(lr) +
                    " has bits past the column limit " + to_string(col_limit));
          return r;
        }
        mask_edges += popcount(w);
      }
    }
  }
  if (g.csr_row_summary.size() != static_cast<std::size_t>(ntiles)) {
    r.add("csr_row_summary/length",
          "expected " + to_string(ntiles) + " summary words, got " +
              to_string(g.csr_row_summary.size()));
    return r;
  }
  for (std::int64_t t = 0; t < ntiles; ++t) {
    Word expect{0};
    for (index_t lr = 0; lr < NT; ++lr) {
      if (g.csr_masks[static_cast<std::size_t>(t) * NT + lr] != 0) {
        expect |= msb_bit<Word>(lr);
      }
    }
    if (g.csr_row_summary[t] != expect) {
      r.add("csr_row_summary/agreement",
            "summary word of tile " + to_string(t) +
                " disagrees with its mask block");
      return r;
    }
  }

  // CSC tile form: a transpose of the CSR tile set.
  if (!detail::check_ptr_array(r, g.csc_tile_ptr,
                               static_cast<std::size_t>(g.tile_n) + 1, ntiles,
                               "csc_tile_ptr")) {
    return r;
  }
  if (g.csc_tile_row.size() != static_cast<std::size_t>(ntiles)) {
    r.add("csc_tile_row/length",
          "expected " + to_string(ntiles) + " entries, got " +
              to_string(g.csc_tile_row.size()));
    return r;
  }
  if (!detail::check_index_range(r, g.csc_tile_row, g.tile_n, "csc_tile_row")) {
    return r;
  }
  {
    std::vector<offset_t> expect_ptr(static_cast<std::size_t>(g.tile_n) + 1, 0);
    for (index_t tc : g.csr_tile_col) ++expect_ptr[tc + 1];
    for (index_t c = 0; c < g.tile_n; ++c) expect_ptr[c + 1] += expect_ptr[c];
    for (index_t c = 0; c <= g.tile_n; ++c) {
      if (g.csc_tile_ptr[c] != expect_ptr[c]) {
        r.add("csc_tile_ptr/agreement",
              "CSC tile pointer disagrees with the CSR tile set at column " +
                  to_string(c));
        return r;
      }
    }
  }
  for (index_t tc = 0; tc < g.tile_n; ++tc) {
    for (offset_t u = g.csc_tile_ptr[tc] + 1; u < g.csc_tile_ptr[tc + 1]; ++u) {
      if (g.csc_tile_row[u] <= g.csc_tile_row[u - 1]) {
        r.add("csc_tile_row/sorted",
              "tile column " + to_string(tc) +
                  " row ids not strictly increasing at tile " + to_string(u));
        return r;
      }
    }
  }
  // Locates the CSR-order index of grid tile (tr, tc), or -1.
  const auto find_csr_tile = [&](index_t tr, index_t tc) -> offset_t {
    const auto* begin = g.csr_tile_col.data() + g.csr_tile_ptr[tr];
    const auto* end = g.csr_tile_col.data() + g.csr_tile_ptr[tr + 1];
    const auto* it = std::lower_bound(begin, end, tc);
    if (it == end || *it != tc) return -1;
    return g.csr_tile_ptr[tr] + (it - begin);
  };
  if (g.shared_masks) {
    if (!g.csc_masks.empty()) {
      r.add("csc_masks/shared-empty",
            "shared-mask mode must not materialize CSC masks");
      return r;
    }
    if (g.csc_mirror.size() != static_cast<std::size_t>(ntiles)) {
      r.add("csc_mirror/length",
            "expected " + to_string(ntiles) + " mirror indices, got " +
                to_string(g.csc_mirror.size()));
      return r;
    }
    for (index_t tc = 0; tc < g.tile_n; ++tc) {
      for (offset_t u = g.csc_tile_ptr[tc]; u < g.csc_tile_ptr[tc + 1]; ++u) {
        const index_t tr = g.csc_tile_row[u];
        const offset_t mirror = g.csc_mirror[u];
        // CSC tile (tr, tc) must alias the CSR masks of grid tile (tc, tr).
        if (mirror < 0 || mirror >= ntiles ||
            mirror != find_csr_tile(tc, tr)) {
          r.add("csc_mirror/agreement",
                "CSC tile " + to_string(u) + " mirror index " +
                    to_string(mirror) + " does not reference grid tile (" +
                    to_string(tc) + ", " + to_string(tr) + ")");
          return r;
        }
      }
    }
  } else {
    if (!g.csc_mirror.empty()) {
      r.add("csc_mirror/materialized-empty",
            "materialized-mask mode must not carry mirror indices");
      return r;
    }
    if (g.csc_masks.size() != static_cast<std::size_t>(ntiles) * NT) {
      r.add("csc_masks/length", "expected " + to_string(ntiles) + " * " +
                                    to_string(NT) + " words, got " +
                                    to_string(g.csc_masks.size()));
      return r;
    }
    // Each CSC mask block must be the exact bit transpose of the same grid
    // tile's CSR block.
    std::vector<Word> expect(static_cast<std::size_t>(NT));
    for (index_t tc = 0; tc < g.tile_n; ++tc) {
      for (offset_t u = g.csc_tile_ptr[tc]; u < g.csc_tile_ptr[tc + 1]; ++u) {
        const index_t tr = g.csc_tile_row[u];
        const offset_t t = find_csr_tile(tr, tc);
        if (t < 0) {
          r.add("csc/tile-set-agreement",
                "CSC tile (" + to_string(tr) + ", " + to_string(tc) +
                    ") has no CSR counterpart");
          return r;
        }
        std::fill(expect.begin(), expect.end(), Word{0});
        for (index_t lr = 0; lr < NT; ++lr) {
          for_each_set_bit(g.csr_masks[static_cast<std::size_t>(t) * NT + lr],
                           [&](int lc) { expect[lc] |= msb_bit<Word>(lr); });
        }
        if (std::memcmp(expect.data(),
                        &g.csc_masks[static_cast<std::size_t>(u) * NT],
                        sizeof(Word) * NT) != 0) {
          r.add("csc_masks/transpose-agreement",
                "CSC mask block of tile (" + to_string(tr) + ", " +
                    to_string(tc) + ") is not the transpose of its CSR block");
          return r;
        }
      }
    }
  }
  if (g.csc_col_summary.size() != static_cast<std::size_t>(ntiles)) {
    r.add("csc_col_summary/length",
          "expected " + to_string(ntiles) + " summary words, got " +
              to_string(g.csc_col_summary.size()));
    return r;
  }
  for (std::int64_t u = 0; u < ntiles; ++u) {
    const Word* block = g.csc_mask(static_cast<offset_t>(u));
    Word expect_summary{0};
    for (index_t lc = 0; lc < NT; ++lc) {
      if (block[lc] != 0) expect_summary |= msb_bit<Word>(lc);
    }
    if (g.csc_col_summary[u] != expect_summary) {
      r.add("csc_col_summary/agreement",
            "summary word of CSC tile " + to_string(u) +
                " disagrees with its mask block");
      return r;
    }
  }

  // Scheduling metadata: the weighted tile-row chunk boundaries follow
  // the same optional contract as TileMatrix::row_chunk_ptr, and the
  // per-column CSC weights must be absent or cover every tile column
  // (the Push-CSC frontier chunking indexes them by slot id).
  detail::check_row_chunks(r, g.csr_chunk_ptr, g.tile_n, "csr_chunk_ptr");
  if (!r.ok()) return r;
  if (!g.csc_col_weight.empty() &&
      g.csc_col_weight.size() != static_cast<std::size_t>(g.tile_n)) {
    r.add("csc_col_weight/length",
          "expected " + to_string(g.tile_n) + " column weights, got " +
              to_string(g.csc_col_weight.size()));
    return r;
  }

  // Side edge list and the terminal edge count.
  if (!detail::check_ptr_array(r, g.side_ptr,
                               static_cast<std::size_t>(g.n) + 1,
                               static_cast<std::int64_t>(g.side_dst.size()),
                               "side_ptr")) {
    return r;
  }
  if (!detail::check_index_range(r, g.side_dst, g.n, "side_dst")) return r;
  const std::int64_t total =
      mask_edges + static_cast<std::int64_t>(g.side_dst.size());
  if (static_cast<std::int64_t>(g.edges) != total) {
    r.add("edges/total", "edge count field " + to_string(g.edges) +
                             " != mask popcount + side edges = " +
                             to_string(total));
  }
  return r;
}

}  // namespace tilespmspv
