#include "formats/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace tilespmspv {

namespace {

constexpr std::uint32_t kCsrMagic = 0x54435352;   // "TCSR"
constexpr std::uint32_t kTileMagic = 0x54544C4D;  // "TTLM"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("serialize: truncated stream");
  return v;
}

void write_i64(std::ostream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::int64_t read_i64(std::istream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("serialize: truncated stream");
  return v;
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  write_i64(out, static_cast<std::int64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
  if (!out) throw std::runtime_error("serialize: write failed");
}

template <typename T>
std::vector<T> read_vec(std::istream& in) {
  const std::int64_t n = read_i64(in);
  if (n < 0 || n > (std::int64_t{1} << 40)) {
    throw std::runtime_error("serialize: implausible array length");
  }
  std::vector<T> v(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  if (!in) throw std::runtime_error("serialize: truncated array");
  return v;
}

void check_header(std::istream& in, std::uint32_t magic) {
  if (read_u32(in) != magic) {
    throw std::runtime_error("serialize: bad magic (wrong file type?)");
  }
  if (read_u32(in) != kVersion) {
    throw std::runtime_error("serialize: unsupported version");
  }
}

}  // namespace

void write_csr(std::ostream& out, const Csr<value_t>& a) {
  write_u32(out, kCsrMagic);
  write_u32(out, kVersion);
  write_i64(out, a.rows);
  write_i64(out, a.cols);
  write_vec(out, a.row_ptr);
  write_vec(out, a.col_idx);
  write_vec(out, a.vals);
}

Csr<value_t> read_csr(std::istream& in) {
  check_header(in, kCsrMagic);
  Csr<value_t> a;
  a.rows = static_cast<index_t>(read_i64(in));
  a.cols = static_cast<index_t>(read_i64(in));
  a.row_ptr = read_vec<offset_t>(in);
  a.col_idx = read_vec<index_t>(in);
  a.vals = read_vec<value_t>(in);
  if (static_cast<index_t>(a.row_ptr.size()) != a.rows + 1 ||
      a.col_idx.size() != a.vals.size()) {
    throw std::runtime_error("serialize: inconsistent CSR arrays");
  }
  return a;
}

void write_tile_matrix(std::ostream& out, const TileMatrix<value_t>& m) {
  write_u32(out, kTileMagic);
  write_u32(out, kVersion);
  write_i64(out, m.rows);
  write_i64(out, m.cols);
  write_i64(out, m.nt);
  write_vec(out, m.tile_row_ptr);
  write_vec(out, m.tile_col_id);
  write_vec(out, m.tile_nnz_ptr);
  write_vec(out, m.intra_row_ptr);
  write_vec(out, m.local_col);
  write_vec(out, m.vals);
  write_vec(out, m.extracted.row_idx);
  write_vec(out, m.extracted.col_idx);
  write_vec(out, m.extracted.vals);
}

TileMatrix<value_t> read_tile_matrix(std::istream& in) {
  check_header(in, kTileMagic);
  TileMatrix<value_t> m;
  m.rows = static_cast<index_t>(read_i64(in));
  m.cols = static_cast<index_t>(read_i64(in));
  m.nt = static_cast<index_t>(read_i64(in));
  if (m.nt <= 0 || m.nt > 256) {
    throw std::runtime_error("serialize: invalid tile size");
  }
  m.tile_rows = ceil_div(m.rows, m.nt);
  m.tile_cols = ceil_div(m.cols, m.nt);
  m.tile_row_ptr = read_vec<offset_t>(in);
  m.tile_col_id = read_vec<index_t>(in);
  m.tile_nnz_ptr = read_vec<offset_t>(in);
  m.intra_row_ptr = read_vec<std::uint16_t>(in);
  m.local_col = read_vec<std::uint8_t>(in);
  m.vals = read_vec<value_t>(in);
  m.extracted = Coo<value_t>(m.rows, m.cols);
  m.extracted.row_idx = read_vec<index_t>(in);
  m.extracted.col_idx = read_vec<index_t>(in);
  m.extracted.vals = read_vec<value_t>(in);
  if (static_cast<index_t>(m.tile_row_ptr.size()) != m.tile_rows + 1 ||
      m.tile_nnz_ptr.size() != m.tile_col_id.size() + 1 ||
      m.local_col.size() != m.vals.size()) {
    throw std::runtime_error("serialize: inconsistent tiled arrays");
  }
  // The side indices and scheduling chunks are derived data; rebuild
  // instead of storing.
  m.build_side_index();
  m.build_row_chunks();
  m.build_row_runs();
  return m;
}

void write_tile_matrix_file(const std::string& path,
                            const TileMatrix<value_t>& m) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("serialize: cannot open " + path);
  write_tile_matrix(out, m);
}

TileMatrix<value_t> read_tile_matrix_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("serialize: cannot open " + path);
  return read_tile_matrix(in);
}

}  // namespace tilespmspv
