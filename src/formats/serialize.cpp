#include "formats/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "formats/io_util.hpp"
#include "formats/tile_file.hpp"
#include "formats/validate.hpp"

namespace tilespmspv {

namespace {

constexpr std::uint32_t kCsrMagic = 0x54435352;   // "TCSR"
constexpr std::uint32_t kTileMagic = 0x54544C4D;  // "TTLM"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("serialize: truncated stream");
  return v;
}

void write_i64(std::ostream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::int64_t read_i64(std::istream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("serialize: truncated stream");
  return v;
}

/// Reads a header dimension and rejects anything that does not fit
/// index_t, instead of silently truncating through a static_cast.
index_t read_index(std::istream& in, const char* what) {
  const std::int64_t v = read_i64(in);
  if (v < 0 || v > std::numeric_limits<index_t>::max()) {
    throw std::runtime_error(std::string("serialize: ") + what + " value " +
                             std::to_string(v) + " is out of index range");
  }
  return static_cast<index_t>(v);
}

// Templated on the container so owned std::vector fields and ArrayBuf
// (owned or mapped view) serialize through the same path.
template <typename Array>
void write_vec(std::ostream& out, const Array& v) {
  using T = typename Array::value_type;
  write_i64(out, static_cast<std::int64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/// Reads a length-prefixed array, charging it against `budget` — the bytes
/// the stream can still provide (-1 when unseekable). A corrupt length is
/// rejected before the vector is sized, so it can never allocate more than
/// the stream could back.
template <typename T>
std::vector<T> read_vec(std::istream& in, std::int64_t& budget) {
  const std::int64_t n = read_i64(in);
  if (budget >= 0) budget -= static_cast<std::int64_t>(sizeof(std::int64_t));
  // Fallback cap for unseekable streams; seekable ones get the exact bound.
  if (n < 0 || n > (std::int64_t{1} << 40)) {
    throw std::runtime_error("serialize: implausible array length");
  }
  if (budget >= 0 && n > budget / static_cast<std::int64_t>(sizeof(T))) {
    throw std::runtime_error(
        "serialize: array length " + std::to_string(n) +
        " exceeds the remaining stream size");
  }
  std::vector<T> v(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  if (!in) throw std::runtime_error("serialize: truncated array");
  if (budget >= 0) budget -= static_cast<std::int64_t>(n * sizeof(T));
  return v;
}

void check_header(std::istream& in, std::uint32_t magic) {
  if (read_u32(in) != magic) {
    throw std::runtime_error("serialize: bad magic (wrong file type?)");
  }
  if (read_u32(in) != kVersion) {
    throw std::runtime_error("serialize: unsupported version");
  }
}

}  // namespace

SerializedKind probe_serialized_kind(std::istream& in) {
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) return SerializedKind::kUnknown;
  if (magic == kCsrMagic) return SerializedKind::kCsr;
  if (magic == kTileMagic) return SerializedKind::kTileMatrix;
  if (magic == kTileFileMagic) return SerializedKind::kTileFile;
  return SerializedKind::kUnknown;
}

void write_csr(std::ostream& out, const Csr<value_t>& a) {
  write_u32(out, kCsrMagic);
  write_u32(out, kVersion);
  write_i64(out, a.rows);
  write_i64(out, a.cols);
  write_vec(out, a.row_ptr);
  write_vec(out, a.col_idx);
  write_vec(out, a.vals);
}

Csr<value_t> read_csr(std::istream& in) {
  check_header(in, kCsrMagic);
  Csr<value_t> a;
  a.rows = read_index(in, "rows");
  a.cols = read_index(in, "cols");
  std::int64_t budget = stream_bytes_remaining(in);
  a.row_ptr = read_vec<offset_t>(in, budget);
  a.col_idx = read_vec<index_t>(in, budget);
  a.vals = read_vec<value_t>(in, budget);
  // This is the trust boundary: the file may be corrupt or adversarial, so
  // every CSR invariant is re-checked before any kernel indexes through it.
  require_valid(validate_csr(a), "read_csr");
  return a;
}

void write_tile_matrix(std::ostream& out, const TileMatrix<value_t>& m) {
  write_u32(out, kTileMagic);
  write_u32(out, kVersion);
  write_i64(out, m.rows);
  write_i64(out, m.cols);
  write_i64(out, m.nt);
  write_vec(out, m.tile_row_ptr);
  write_vec(out, m.tile_col_id);
  write_vec(out, m.tile_nnz_ptr);
  write_vec(out, m.intra_row_ptr);
  write_vec(out, m.local_col);
  write_vec(out, m.vals);
  write_vec(out, m.extracted.row_idx);
  write_vec(out, m.extracted.col_idx);
  write_vec(out, m.extracted.vals);
}

TileMatrix<value_t> read_tile_matrix(std::istream& in) {
  check_header(in, kTileMagic);
  TileMatrix<value_t> m;
  m.rows = read_index(in, "rows");
  m.cols = read_index(in, "cols");
  m.nt = read_index(in, "nt");
  if (m.nt <= 0 || m.nt > 256) {
    throw std::runtime_error("serialize: invalid tile size");
  }
  m.tile_rows = ceil_div(m.rows, m.nt);
  m.tile_cols = ceil_div(m.cols, m.nt);
  std::int64_t budget = stream_bytes_remaining(in);
  // The derived side indexes rebuilt below are Θ(rows + cols), so a corrupt
  // 100-byte header claiming billions of columns would demand gigabytes
  // before any array is even read. Any plausible cache file carries payload
  // proportional to its dims (tile_row_ptr alone is rows/nt entries); the
  // generous floor keeps legitimately tiny matrices loadable.
  if (budget >= 0) {
    const std::int64_t dims =
        static_cast<std::int64_t>(m.rows) + static_cast<std::int64_t>(m.cols);
    if (dims > (std::int64_t{1} << 22) && dims > 64 * budget) {
      throw std::runtime_error(
          "serialize: header dimensions implausible for the stream size");
    }
  }
  m.tile_row_ptr = read_vec<offset_t>(in, budget);
  m.tile_col_id = read_vec<index_t>(in, budget);
  m.tile_nnz_ptr = read_vec<offset_t>(in, budget);
  m.intra_row_ptr = read_vec<std::uint16_t>(in, budget);
  m.local_col = read_vec<std::uint8_t>(in, budget);
  m.vals = read_vec<value_t>(in, budget);
  m.extracted = Coo<value_t>(m.rows, m.cols);
  m.extracted.row_idx = read_vec<index_t>(in, budget);
  m.extracted.col_idx = read_vec<index_t>(in, budget);
  m.extracted.vals = read_vec<value_t>(in, budget);
  // Trust boundary: validate the stored payload *before* the derived-index
  // builders below index through it (the derived arrays are still empty at
  // this point, so their agreement checks are skipped).
  require_valid(validate_tile_matrix(m), "read_tile_matrix");
  // The side indices and scheduling chunks are derived data; rebuild
  // instead of storing.
  m.build_side_index();
  m.build_row_chunks();
  m.build_row_runs();
  TILESPMSPV_POSTCONDITION(validate_tile_matrix(m), "read_tile_matrix");
  return m;
}

void write_tile_matrix_file(const std::string& path,
                            const TileMatrix<value_t>& m) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("serialize: cannot open " + path);
  write_tile_matrix(out, m);
}

TileMatrix<value_t> read_tile_matrix_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("serialize: cannot open " + path);
  return read_tile_matrix(in);
}

}  // namespace tilespmspv
