// Sort-merge SpMSpV (Yang, Wang & Owens, IPDPSW'15 style): gather every
// product (row, a_ij * x_j) for active columns, sort by row, and reduce
// runs. Simple and work-efficient in nnz(A restricted to active columns),
// but the global sort is exactly the off-chip merging cost the paper's
// tiled approach avoids — kept as a second SpMSpV baseline.
#pragma once

#include <algorithm>
#include <vector>

#include "formats/csc.hpp"
#include "formats/sparse_vector.hpp"
#include "util/types.hpp"

namespace tilespmspv {

template <typename T>
SparseVec<T> spmspv_sort(const Csc<T>& a, const SparseVec<T>& x) {
  std::vector<std::pair<index_t, T>> products;
  for (std::size_t k = 0; k < x.idx.size(); ++k) {
    const index_t j = x.idx[k];
    const T xv = x.vals[k];
    for (offset_t i = a.col_ptr[j]; i < a.col_ptr[j + 1]; ++i) {
      products.emplace_back(a.row_idx[i], a.vals[i] * xv);
    }
  }
  std::sort(products.begin(), products.end(),
            [](const auto& p, const auto& q) { return p.first < q.first; });
  SparseVec<T> y(a.rows);
  std::size_t i = 0;
  while (i < products.size()) {
    const index_t r = products[i].first;
    T sum{};
    while (i < products.size() && products[i].first == r) {
      sum += products[i].second;
      ++i;
    }
    if (sum != T{}) y.push(r, sum);
  }
  return y;
}

}  // namespace tilespmspv
