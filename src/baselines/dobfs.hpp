// Direction-optimizing BFS (Beamer, Asanović & Patterson, SC'12) — the
// stand-in for Gunrock's BFS, which implements exactly this push/pull
// switching on the GPU with frontier queues. Top-down iterations expand a
// frontier queue over out-edges; when the frontier grows past the alpha
// heuristic the traversal flips to bottom-up over in-edges, and flips back
// when the frontier shrinks (beta heuristic).
#pragma once

#include <mutex>
#include <vector>

#include "formats/csr.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct DobfsConfig {
  // Beamer's published defaults.
  double alpha = 15.0;  // switch to bottom-up when m_f > m_u / alpha
  double beta = 18.0;   // switch back when n_f < n / beta
};

/// `out_edges`: row u lists out-neighbors of u (push direction).
/// `in_edges`: row v lists in-neighbors of v (pull direction). Pass the
/// same matrix twice for symmetric graphs. When `iter_ms` is non-null, the
/// wall time of every level is appended (Fig. 10's per-iteration traces).
template <typename T>
std::vector<index_t> dobfs(const Csr<T>& out_edges, const Csr<T>& in_edges,
                           index_t source, DobfsConfig cfg = {},
                           ThreadPool* pool = nullptr,
                           std::vector<double>* iter_ms = nullptr) {
  const index_t n = out_edges.rows;
  std::vector<index_t> levels(n, -1);
  // levels doubles as the visited structure; atomic_claim claims vertices.

  std::vector<index_t> frontier{source};
  levels[source] = 0;
  offset_t edges_unexplored = out_edges.nnz();
  bool bottom_up = false;

  for (index_t level = 1; !frontier.empty(); ++level) {
    Timer iter_timer;
    // Heuristic bookkeeping: edges out of the frontier vs. edges left.
    offset_t m_f = 0;
    for (index_t u : frontier) m_f += out_edges.row_nnz(u);
    edges_unexplored -= m_f;
    if (!bottom_up &&
        static_cast<double>(m_f) >
            static_cast<double>(edges_unexplored) / cfg.alpha) {
      bottom_up = true;
    } else if (bottom_up && static_cast<double>(frontier.size()) <
                                static_cast<double>(n) / cfg.beta) {
      bottom_up = false;
    }

    std::vector<index_t> next;
    if (!bottom_up) {
      // Top-down: expand the frontier queue; per-chunk local queues merge
      // under a mutex once per chunk.
      std::mutex merge;
      parallel_for_ranges(
          static_cast<index_t>(frontier.size()),
          [&](index_t begin, index_t end) {
            std::vector<index_t> local;
            for (index_t k = begin; k < end; ++k) {
              const index_t u = frontier[k];
              for (offset_t i = out_edges.row_ptr[u];
                   i < out_edges.row_ptr[u + 1]; ++i) {
                const index_t v = out_edges.col_idx[i];
                if (atomic_claim(&levels[v], index_t{-1}, level)) {
                  local.push_back(v);
                }
              }
            }
            if (!local.empty()) {
              std::lock_guard<std::mutex> lock(merge);
              next.insert(next.end(), local.begin(), local.end());
            }
          },
          pool, /*chunk=*/64);
    } else {
      // Bottom-up: every unvisited vertex scans its in-neighbors for a
      // frontier member. The frontier membership test needs levels of the
      // previous iteration, which equals (level - 1).
      std::mutex merge;
      parallel_for_ranges(
          n,
          [&](index_t begin, index_t end) {
            std::vector<index_t> local;
            for (index_t v = begin; v < end; ++v) {
              if (atomic_load(&levels[v]) != -1) continue;
              for (offset_t i = in_edges.row_ptr[v];
                   i < in_edges.row_ptr[v + 1]; ++i) {
                if (atomic_load(&levels[in_edges.col_idx[i]]) == level - 1) {
                  atomic_store(&levels[v], level);
                  local.push_back(v);
                  break;
                }
              }
            }
            if (!local.empty()) {
              std::lock_guard<std::mutex> lock(merge);
              next.insert(next.end(), local.begin(), local.end());
            }
          },
          pool, /*chunk=*/512);
    }
    frontier = std::move(next);
    if (iter_ms) iter_ms->push_back(iter_timer.elapsed_ms());
  }
  return levels;
}

}  // namespace tilespmspv
