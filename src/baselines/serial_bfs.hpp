// Textbook serial queue BFS — the ground truth every parallel BFS in the
// repo is validated against (level arrays must match exactly; levels are
// canonical even when parent choices are not).
#pragma once

#include <vector>

#include "formats/csr.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Returns per-vertex levels (-1 for unreachable). Edges follow the
/// adjacency convention A[i][j] != 0 <=> edge j -> i, so neighbor
/// expansion of u scans *column* u; with CSR input that means running on
/// the transpose. For the symmetric graphs of the BFS suite either works;
/// this routine takes the out-edge CSR (row r lists the out-neighbors of
/// r), matching Csr<...>::transpose() of the adjacency matrix or the
/// matrix itself when symmetric.
template <typename T>
std::vector<index_t> serial_bfs(const Csr<T>& out_edges, index_t source) {
  std::vector<index_t> levels(out_edges.rows, -1);
  std::vector<index_t> queue;
  queue.reserve(out_edges.rows);
  levels[source] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const index_t u = queue[head];
    for (offset_t i = out_edges.row_ptr[u]; i < out_edges.row_ptr[u + 1];
         ++i) {
      const index_t v = out_edges.col_idx[i];
      if (levels[v] < 0) {
        levels[v] = levels[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return levels;
}

}  // namespace tilespmspv
