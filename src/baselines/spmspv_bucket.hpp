// SpMSpV-bucket (Azad & Buluç, IPDPS'17) — the CombBLAS baseline. The
// column-driven algorithm in three steps, mirroring the published
// structure:
//   1. Scatter: threads sweep chunks of the active columns once and route
//      each product a_ij * x_j into a per-(chunk, bucket) bin, where the
//      bucket is the destination-row range r / bucket_width.
//   2. Reduce: each bucket gathers its bins from every chunk and reduces
//      them with a sparse accumulator (SPA) covering only its row range
//      (cache-resident by construction).
//   3. Concatenate bucket outputs into the sorted result.
// Buckets give load balance and bounded SPA size, which is the algorithm's
// published advantage over plain column merging.
#pragma once

#include <vector>

#include "formats/csc.hpp"
#include "formats/sparse_vector.hpp"
#include "parallel/parallel_for.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Reusable buffers across multiplies with the same matrix.
template <typename T = value_t>
struct BucketWorkspace {
  // bins[chunk * num_buckets + bucket]
  std::vector<std::vector<std::pair<index_t, T>>> bins;
  std::vector<std::vector<std::pair<index_t, T>>> out;  // per bucket
  std::vector<T> spa;                                   // per bucket, pooled
  std::vector<unsigned char> hit;
};

template <typename T>
SparseVec<T> spmspv_bucket(const Csc<T>& a, const SparseVec<T>& x,
                           BucketWorkspace<T>& ws, index_t num_buckets = 16,
                           ThreadPool* pool = nullptr) {
  const index_t rows = a.rows;
  num_buckets = std::max<index_t>(1, std::min(num_buckets, std::max<index_t>(rows, 1)));
  const index_t range = ceil_div(std::max<index_t>(rows, 1), num_buckets);
  const index_t active = x.nnz();

  // Column chunks: enough for load balance, few enough that bin bookkeeping
  // stays cheap.
  const index_t chunk_cols = std::max<index_t>(1, ceil_div<index_t>(active, 16));
  const index_t num_chunks = active == 0 ? 0 : ceil_div(active, chunk_cols);

  ws.bins.resize(static_cast<std::size_t>(num_chunks) * num_buckets);
  for (auto& b : ws.bins) b.clear();
  ws.out.resize(num_buckets);
  for (auto& o : ws.out) o.clear();

  // Step 1: one parallel sweep over active columns.
  parallel_for(
      num_chunks,
      [&](index_t ch) {
        auto* my_bins = &ws.bins[static_cast<std::size_t>(ch) * num_buckets];
        const index_t k_begin = ch * chunk_cols;
        const index_t k_end = std::min(k_begin + chunk_cols, active);
        for (index_t k = k_begin; k < k_end; ++k) {
          const index_t j = x.idx[k];
          const T xv = x.vals[k];
          for (offset_t i = a.col_ptr[j]; i < a.col_ptr[j + 1]; ++i) {
            const index_t r = a.row_idx[i];
            my_bins[r / range].emplace_back(r, a.vals[i] * xv);
          }
        }
      },
      pool, /*chunk=*/1);

  // Step 2: per-bucket SPA reduction (parallel; disjoint row ranges).
  if (static_cast<index_t>(ws.spa.size()) <
      static_cast<index_t>(range) * num_buckets) {
    ws.spa.assign(static_cast<std::size_t>(range) * num_buckets, T{});
    ws.hit.assign(static_cast<std::size_t>(range) * num_buckets, 0);
  }
  parallel_for(
      num_buckets,
      [&](index_t bk) {
        T* spa = &ws.spa[static_cast<std::size_t>(bk) * range];
        unsigned char* hit = &ws.hit[static_cast<std::size_t>(bk) * range];
        const index_t lo = bk * range;
        const index_t hi = std::min<index_t>(lo + range, rows);
        bool any = false;
        for (index_t ch = 0; ch < num_chunks; ++ch) {
          for (const auto& [r, v] :
               ws.bins[static_cast<std::size_t>(ch) * num_buckets + bk]) {
            spa[r - lo] += v;
            hit[r - lo] = 1;
            any = true;
          }
        }
        if (!any) return;
        auto& out = ws.out[bk];
        for (index_t r = lo; r < hi; ++r) {
          if (hit[r - lo]) {
            if (spa[r - lo] != T{}) out.emplace_back(r, spa[r - lo]);
            spa[r - lo] = T{};
            hit[r - lo] = 0;
          }
        }
      },
      pool, /*chunk=*/1);

  // Step 3: concatenate (buckets are in ascending row order already).
  SparseVec<T> y(rows);
  for (index_t bk = 0; bk < num_buckets; ++bk) {
    for (const auto& [r, v] : ws.out[bk]) y.push(r, v);
  }
  return y;
}

template <typename T>
SparseVec<T> spmspv_bucket(const Csc<T>& a, const SparseVec<T>& x,
                           index_t num_buckets = 16,
                           ThreadPool* pool = nullptr) {
  BucketWorkspace<T> ws;
  return spmspv_bucket(a, x, ws, num_buckets, pool);
}

}  // namespace tilespmspv
