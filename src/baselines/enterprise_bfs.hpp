// Enterprise-style BFS (Liu & Huang, SC'15) — the baseline of the paper's
// Fig. 12. Enterprise's signature idea is out-degree-aware frontier
// classification: each generated frontier is split into small / medium /
// large out-degree queues, and each class gets a traversal scheme matched
// to its work granularity (thread / warp / CTA on the GPU). Here the
// classes map to chunk granularities on the thread pool: hub vertices are
// each processed as their own task (so one hub cannot serialize a chunk),
// medium vertices in small chunks, and low-degree vertices in large
// chunks. A bottom-up direction switch for dense frontiers is included,
// as in the published system.
#pragma once

#include <mutex>
#include <vector>

#include "formats/csr.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "util/types.hpp"

namespace tilespmspv {

struct EnterpriseConfig {
  index_t small_degree = 32;    // <= small: thread-class
  index_t large_degree = 1024;  // >= large: CTA-class (own task)
  double pull_threshold = 0.05;  // frontier density triggering bottom-up
};

template <typename T>
std::vector<index_t> enterprise_bfs(const Csr<T>& out_edges,
                                    const Csr<T>& in_edges, index_t source,
                                    EnterpriseConfig cfg = {},
                                    ThreadPool* pool = nullptr) {
  const index_t n = out_edges.rows;
  std::vector<index_t> levels(n, -1);
  std::vector<index_t> frontier{source};
  levels[source] = 0;

  std::vector<index_t> small_q, medium_q, large_q;
  for (index_t level = 1; !frontier.empty(); ++level) {
    std::vector<index_t> next;
    std::mutex merge;

    if (static_cast<double>(frontier.size()) / n >= cfg.pull_threshold) {
      // Bottom-up pass for dense frontiers.
      std::vector<unsigned char> in_frontier(n, 0);
      for (index_t u : frontier) in_frontier[u] = 1;
      parallel_for_ranges(
          n,
          [&](index_t begin, index_t end) {
            std::vector<index_t> local;
            for (index_t v = begin; v < end; ++v) {
              if (atomic_load(&levels[v]) != -1) continue;
              for (offset_t i = in_edges.row_ptr[v];
                   i < in_edges.row_ptr[v + 1]; ++i) {
                if (in_frontier[in_edges.col_idx[i]]) {
                  atomic_store(&levels[v], level);
                  local.push_back(v);
                  break;
                }
              }
            }
            if (!local.empty()) {
              std::lock_guard<std::mutex> lock(merge);
              next.insert(next.end(), local.begin(), local.end());
            }
          },
          pool, /*chunk=*/512);
    } else {
      // Classify the frontier by out-degree (Enterprise's core step).
      small_q.clear();
      medium_q.clear();
      large_q.clear();
      for (index_t u : frontier) {
        const index_t d = out_edges.row_nnz(u);
        if (d >= cfg.large_degree) {
          large_q.push_back(u);
        } else if (d > cfg.small_degree) {
          medium_q.push_back(u);
        } else {
          small_q.push_back(u);
        }
      }
      auto expand = [&](const std::vector<index_t>& q, index_t chunk) {
        parallel_for_ranges(
            static_cast<index_t>(q.size()),
            [&](index_t begin, index_t end) {
              std::vector<index_t> local;
              for (index_t k = begin; k < end; ++k) {
                const index_t u = q[k];
                for (offset_t i = out_edges.row_ptr[u];
                     i < out_edges.row_ptr[u + 1]; ++i) {
                  const index_t v = out_edges.col_idx[i];
                  if (atomic_claim(&levels[v], index_t{-1}, level)) {
                    local.push_back(v);
                  }
                }
              }
              if (!local.empty()) {
                std::lock_guard<std::mutex> lock(merge);
                next.insert(next.end(), local.begin(), local.end());
              }
            },
            pool, chunk);
      };
      expand(small_q, /*chunk=*/256);   // many cheap vertices per task
      expand(medium_q, /*chunk=*/16);   // warp-class granularity
      expand(large_q, /*chunk=*/1);     // one hub per task
    }
    frontier = std::move(next);
  }
  return levels;
}

}  // namespace tilespmspv
