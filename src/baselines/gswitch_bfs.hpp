// Adaptive autotuned BFS — the stand-in for GSwitch (Meng et al.,
// PPoPP'19). GSwitch models graph traversal as a space of strategy choices
// (direction, frontier representation, load-balancing scheme) and picks a
// configuration per iteration from runtime features with a learned
// predictor. This reproduction keeps the decision structure: per
// iteration it extracts the same features (frontier density, average
// frontier out-degree, unvisited fraction) and selects among three
// concrete strategies -- queue-push, bitmap-push, and pull -- using a
// pattern table seeded with GSwitch's published rules-of-thumb and refined
// online: after each iteration the observed throughput updates the score
// of the (feature-bucket, strategy) cell, so repeated traversals tune
// themselves to the graph, which is the framework's headline behaviour.
#pragma once

#include <array>
#include <cstring>
#include <mutex>
#include <vector>

#include "formats/csr.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace tilespmspv {

enum class GswitchStrategy { kQueuePush, kBitmapPush, kPull };

/// Online (feature-bucket -> strategy) score table shared across runs on
/// the same graph.
class GswitchTuner {
 public:
  static constexpr int kBuckets = 6;  // log-density buckets

  GswitchStrategy choose(double frontier_density, double unvisited_frac,
                         double avg_out_degree) const {
    const int b = bucket(frontier_density);
    // Explore: every strategy gets tried once per feature bucket, starting
    // from the seed heuristic's guess (GSwitch bootstraps its predictor
    // the same way: rules of thumb first, measurements refine).
    const GswitchStrategy seed = seed_rule(frontier_density, unvisited_frac,
                                           avg_out_degree);
    if (scores_[b][static_cast<int>(seed)] <= 0.0) return seed;
    for (int s = 0; s < 3; ++s) {
      if (scores_[b][s] <= 0.0) return static_cast<GswitchStrategy>(s);
    }
    // Exploit: argmax of observed throughput.
    int best = 0;
    for (int s = 1; s < 3; ++s) {
      if (scores_[b][s] > scores_[b][best]) best = s;
    }
    return static_cast<GswitchStrategy>(best);
  }

  void record(double frontier_density, GswitchStrategy s,
              double vertices_per_ms) {
    auto& cell = scores_[bucket(frontier_density)][static_cast<int>(s)];
    // Exponential moving average keeps the table adaptive.
    cell = cell <= 0.0 ? vertices_per_ms : 0.7 * cell + 0.3 * vertices_per_ms;
  }

 private:
  static GswitchStrategy seed_rule(double frontier_density,
                                   double unvisited_frac,
                                   double avg_out_degree) {
    // Very sparse frontier -> queue push; denser -> bitmap push;
    // almost-finished traversal or very dense frontier -> pull.
    if (unvisited_frac < 0.15 || frontier_density > 0.10) {
      return GswitchStrategy::kPull;
    }
    if (frontier_density > 0.002 || avg_out_degree > 32.0) {
      return GswitchStrategy::kBitmapPush;
    }
    return GswitchStrategy::kQueuePush;
  }

  static int bucket(double density) {
    if (density <= 0.0) return 0;
    int b = 0;
    while (density < 0.1 && b < kBuckets - 1) {
      density *= 10.0;
      ++b;
    }
    return b;
  }

  std::array<std::array<double, 3>, kBuckets> scores_{};
};

/// One BFS with per-iteration strategy selection. Interface mirrors
/// dobfs(); `tuner` persists learning across calls when reused. When
/// `iter_ms` is non-null the per-level wall times are appended.
template <typename T>
std::vector<index_t> gswitch_bfs(const Csr<T>& out_edges,
                                 const Csr<T>& in_edges, index_t source,
                                 GswitchTuner& tuner,
                                 ThreadPool* pool = nullptr,
                                 std::vector<double>* iter_ms = nullptr) {
  const index_t n = out_edges.rows;
  std::vector<index_t> levels(n, -1);
  std::vector<index_t> frontier{source};
  std::vector<unsigned char> in_frontier(n, 0);
  levels[source] = 0;
  index_t visited = 1;

  for (index_t level = 1; !frontier.empty(); ++level) {
    const double density = static_cast<double>(frontier.size()) / n;
    const double unvisited_frac = static_cast<double>(n - visited) / n;
    offset_t m_f = 0;
    for (index_t u : frontier) m_f += out_edges.row_nnz(u);
    const double avg_deg =
        static_cast<double>(m_f) / static_cast<double>(frontier.size());
    const GswitchStrategy strat = tuner.choose(density, unvisited_frac,
                                               avg_deg);

    Timer t;
    std::vector<index_t> next;
    std::mutex merge;
    switch (strat) {
      case GswitchStrategy::kQueuePush: {
        parallel_for_ranges(
            static_cast<index_t>(frontier.size()),
            [&](index_t begin, index_t end) {
              std::vector<index_t> local;
              for (index_t k = begin; k < end; ++k) {
                const index_t u = frontier[k];
                for (offset_t i = out_edges.row_ptr[u];
                     i < out_edges.row_ptr[u + 1]; ++i) {
                  const index_t v = out_edges.col_idx[i];
                  if (atomic_claim(&levels[v], index_t{-1}, level)) {
                    local.push_back(v);
                  }
                }
              }
              if (!local.empty()) {
                std::lock_guard<std::mutex> lock(merge);
                next.insert(next.end(), local.begin(), local.end());
              }
            },
            pool, /*chunk=*/64);
        break;
      }
      case GswitchStrategy::kBitmapPush: {
        // Push into a bitmap, then compact: avoids queue contention for
        // medium-density frontiers.
        std::vector<unsigned char> out_map(n, 0);
        parallel_for_ranges(
            static_cast<index_t>(frontier.size()),
            [&](index_t begin, index_t end) {
              for (index_t k = begin; k < end; ++k) {
                const index_t u = frontier[k];
                for (offset_t i = out_edges.row_ptr[u];
                     i < out_edges.row_ptr[u + 1]; ++i) {
                  const index_t v = out_edges.col_idx[i];
                  if (atomic_load(&levels[v]) == -1) {
                    // Idempotent flag; relaxed atomic store avoids a formal
                    // write-write race between chunks.
                    atomic_store(&out_map[v],
                                 static_cast<unsigned char>(1));
                  }
                }
              }
            },
            pool, /*chunk=*/64);
        for (index_t v = 0; v < n; ++v) {
          if (out_map[v] && levels[v] == -1) {
            levels[v] = level;
            next.push_back(v);
          }
        }
        break;
      }
      case GswitchStrategy::kPull: {
        std::memset(in_frontier.data(), 0, in_frontier.size());
        for (index_t u : frontier) in_frontier[u] = 1;
        parallel_for_ranges(
            n,
            [&](index_t begin, index_t end) {
              std::vector<index_t> local;
              for (index_t v = begin; v < end; ++v) {
                if (atomic_load(&levels[v]) != -1) continue;
                for (offset_t i = in_edges.row_ptr[v];
                     i < in_edges.row_ptr[v + 1]; ++i) {
                  if (in_frontier[in_edges.col_idx[i]]) {
                    atomic_store(&levels[v], level);
                    local.push_back(v);
                    break;
                  }
                }
              }
              if (!local.empty()) {
                std::lock_guard<std::mutex> lock(merge);
                next.insert(next.end(), local.begin(), local.end());
              }
            },
            pool, /*chunk=*/512);
        break;
      }
    }
    const double ms = t.elapsed_ms();
    if (iter_ms) iter_ms->push_back(ms);
    tuner.record(density, strat,
                 ms > 0.0 ? static_cast<double>(next.size() + 1) / ms : 1.0);
    visited += static_cast<index_t>(next.size());
    frontier = std::move(next);
  }
  return levels;
}

template <typename T>
std::vector<index_t> gswitch_bfs(const Csr<T>& out_edges,
                                 const Csr<T>& in_edges, index_t source,
                                 ThreadPool* pool = nullptr) {
  GswitchTuner tuner;
  return gswitch_bfs(out_edges, in_edges, source, tuner, pool);
}

}  // namespace tilespmspv
