// TileSpMV baseline (Niu et al., IPDPS'21) — the tiled SpMV the paper's
// TileSpMSpV extends. It uses the same tiled matrix storage but treats the
// input vector as dense: every non-empty *matrix* tile is computed, with no
// x_ptr lookup to skip empty vector tiles. The gap between this and
// tile_spmspv is exactly the contribution of the tiled-vector indexing.
#pragma once

#include <vector>

#include "formats/sparse_vector.hpp"
#include "parallel/parallel_for.hpp"
#include "tile/tile_matrix.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// y = A * dense(x) over the tiled format.
template <typename T>
SparseVec<T> tile_spmv(const TileMatrix<T>& a, const std::vector<T>& x_dense,
                       std::vector<T>& y_dense, ThreadPool* pool = nullptr) {
  const index_t nt = a.nt;
  y_dense.assign(a.rows, T{});
  parallel_for(
      a.tile_rows,
      [&](index_t tr) {
        T acc[256];
        for (index_t i = 0; i < nt; ++i) acc[i] = T{};
        for (offset_t t = a.tile_row_ptr[tr]; t < a.tile_row_ptr[tr + 1];
             ++t) {
          const index_t c0 = a.tile_col_id[t] * nt;
          const std::uint16_t* p = &a.intra_row_ptr[t * (nt + 1)];
          const offset_t base = a.tile_nnz_ptr[t];
          for (index_t lr = 0; lr < nt; ++lr) {
            T sum{};
            for (offset_t i = base + p[lr]; i < base + p[lr + 1]; ++i) {
              sum += a.vals[i] * x_dense[c0 + a.local_col[i]];
            }
            acc[lr] += sum;
          }
        }
        const index_t r_end = std::min<index_t>((tr + 1) * nt, a.rows);
        for (index_t r = tr * nt; r < r_end; ++r) {
          y_dense[r] = acc[r - tr * nt];
        }
      },
      pool, /*chunk=*/8);
  // The extracted COO part still has to be applied (TileSpMV keeps every
  // nonzero in tiles, so benchmarks build this baseline with extraction
  // disabled; supporting it here keeps the function total either way).
  for (index_t i = 0; i < a.extracted.nnz(); ++i) {
    y_dense[a.extracted.row_idx[i]] +=
        a.extracted.vals[i] * x_dense[a.extracted.col_idx[i]];
  }
  return SparseVec<T>::from_dense(y_dense);
}

template <typename T>
SparseVec<T> tile_spmv(const TileMatrix<T>& a, const SparseVec<T>& x,
                       ThreadPool* pool = nullptr) {
  std::vector<T> xd = x.to_dense();
  std::vector<T> yd;
  return tile_spmv(a, xd, yd, pool);
}

}  // namespace tilespmspv
