// Row-parallel CSR SpMV with a dense input vector — the stand-in for the
// cuSPARSE csrmv-style kernel: it pays for every stored nonzero regardless
// of input-vector sparsity, which is exactly the inefficiency SpMSpV
// algorithms exploit.
#pragma once

#include <vector>

#include "formats/csr.hpp"
#include "formats/sparse_vector.hpp"
#include "parallel/parallel_for.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// y = A * x with x densified; returns the sparse view of y.
template <typename T>
SparseVec<T> csr_spmv(const Csr<T>& a, const std::vector<T>& x_dense,
                      std::vector<T>& y_dense, ThreadPool* pool = nullptr) {
  y_dense.assign(a.rows, T{});
  parallel_for(
      a.rows,
      [&](index_t r) {
        T sum{};
        for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
          sum += a.vals[i] * x_dense[a.col_idx[i]];
        }
        y_dense[r] = sum;
      },
      pool, /*chunk=*/64);
  return SparseVec<T>::from_dense(y_dense);
}

/// Convenience overload including the densification cost of the sparse
/// input — this is what calling an SpMV library for SpMSpV actually costs.
template <typename T>
SparseVec<T> csr_spmv(const Csr<T>& a, const SparseVec<T>& x,
                      ThreadPool* pool = nullptr) {
  std::vector<T> xd = x.to_dense();
  std::vector<T> yd;
  return csr_spmv(a, xd, yd, pool);
}

}  // namespace tilespmspv
