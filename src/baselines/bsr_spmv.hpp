// Block Sparse Row (BSR) SpMV — the stand-in for cusparse?bsrmv(), the
// kernel the paper benchmarks cuSPARSE with. Non-empty b×b blocks are
// stored dense; the multiply streams whole blocks against a dense vector,
// so it wastes work both on explicit zeros inside blocks and on zero input
// elements.
#pragma once

#include <vector>

#include "formats/csr.hpp"
#include "formats/sparse_vector.hpp"
#include "parallel/parallel_for.hpp"
#include "util/types.hpp"

namespace tilespmspv {

template <typename T = value_t>
struct Bsr {
  index_t rows = 0;
  index_t cols = 0;
  index_t b = 4;           // block size
  index_t block_rows = 0;  // ceil(rows/b)
  std::vector<offset_t> block_row_ptr;
  std::vector<index_t> block_col_id;
  std::vector<T> blocks;  // dense b*b payload per block, row-major

  static Bsr from_csr(const Csr<T>& a, index_t b) {
    Bsr m;
    m.rows = a.rows;
    m.cols = a.cols;
    m.b = b;
    m.block_rows = ceil_div(a.rows, b);
    const index_t block_cols = ceil_div(a.cols, b);
    m.block_row_ptr.assign(m.block_rows + 1, 0);

    std::vector<index_t> seen(block_cols, kEmptyTile);
    std::vector<index_t> touched;
    // Pass 1: count non-empty blocks per block row.
    std::vector<index_t> kept;
    for (index_t br = 0; br < m.block_rows; ++br) {
      touched.clear();
      const index_t r_end = std::min<index_t>((br + 1) * b, a.rows);
      for (index_t r = br * b; r < r_end; ++r) {
        for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
          const index_t bc = a.col_idx[i] / b;
          if (seen[bc] == kEmptyTile) {
            seen[bc] = 1;
            touched.push_back(bc);
          }
        }
      }
      std::sort(touched.begin(), touched.end());
      for (index_t bc : touched) {
        kept.push_back(bc);
        seen[bc] = kEmptyTile;
      }
      m.block_row_ptr[br + 1] =
          m.block_row_ptr[br] + static_cast<offset_t>(touched.size());
    }
    m.block_col_id = std::move(kept);
    m.blocks.assign(m.block_col_id.size() * static_cast<std::size_t>(b) * b,
                    T{});
    // Pass 2: scatter values into their dense blocks.
    std::vector<index_t> slot(block_cols, kEmptyTile);
    for (index_t br = 0; br < m.block_rows; ++br) {
      for (offset_t t = m.block_row_ptr[br]; t < m.block_row_ptr[br + 1];
           ++t) {
        slot[m.block_col_id[t]] = static_cast<index_t>(t);
      }
      const index_t r_end = std::min<index_t>((br + 1) * b, a.rows);
      for (index_t r = br * b; r < r_end; ++r) {
        for (offset_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
          const index_t c = a.col_idx[i];
          const index_t t = slot[c / b];
          m.blocks[(static_cast<std::size_t>(t) * b + (r - br * b)) * b +
                   c % b] = a.vals[i];
        }
      }
      for (offset_t t = m.block_row_ptr[br]; t < m.block_row_ptr[br + 1];
           ++t) {
        slot[m.block_col_id[t]] = kEmptyTile;
      }
    }
    return m;
  }
};

/// y = A * dense(x) over BSR; returns the sparse view of y.
template <typename T>
SparseVec<T> bsr_spmv(const Bsr<T>& a, const std::vector<T>& x_dense,
                      std::vector<T>& y_dense, ThreadPool* pool = nullptr) {
  const index_t b = a.b;
  y_dense.assign(a.rows, T{});
  parallel_for(
      a.block_rows,
      [&](index_t br) {
        T acc[64];  // b <= 8 in practice; 64 is a safe upper bound
        for (index_t i = 0; i < b; ++i) acc[i] = T{};
        for (offset_t t = a.block_row_ptr[br]; t < a.block_row_ptr[br + 1];
             ++t) {
          const index_t c0 = a.block_col_id[t] * b;
          const T* blk = &a.blocks[static_cast<std::size_t>(t) * b * b];
          for (index_t lr = 0; lr < b; ++lr) {
            T sum{};
            for (index_t lc = 0; lc < b && c0 + lc < a.cols; ++lc) {
              sum += blk[lr * b + lc] * x_dense[c0 + lc];
            }
            acc[lr] += sum;
          }
        }
        const index_t r_end = std::min<index_t>((br + 1) * b, a.rows);
        for (index_t r = br * b; r < r_end; ++r) {
          y_dense[r] = acc[r - br * b];
        }
      },
      pool, /*chunk=*/32);
  return SparseVec<T>::from_dense(y_dense);
}

template <typename T>
SparseVec<T> bsr_spmv(const Bsr<T>& a, const SparseVec<T>& x,
                      ThreadPool* pool = nullptr) {
  std::vector<T> xd = x.to_dense();
  std::vector<T> yd;
  return bsr_spmv(a, xd, yd, pool);
}

}  // namespace tilespmspv
