// A small work-sharing thread pool. This is the repo's stand-in for the GPU
// "device": the paper launches CUDA warps over tile rows / frontier chunks;
// here the same work units are dispatched as blocked index ranges onto pool
// workers. The pool size is an explicit parameter everywhere so tests can
// exercise the concurrent paths even on a single-core host.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/types.hpp"

namespace tilespmspv {

/// Fixed-size pool executing blocked parallel-for loops.
///
/// Work distribution is dynamic: the loop range is cut into chunks and
/// workers claim chunks from a shared atomic counter, which mirrors how a
/// GPU scheduler assigns tile rows to warps and gives load balance on
/// skewed sparsity patterns (long tile rows).
///
/// `parallel_ranges` is a template over the callable: the body is invoked
/// through a captured function pointer + context, so dispatching a loop
/// allocates nothing (the old std::function path heap-allocated a closure
/// per call, measurable on the fine-grained SpMSpV phase loops).
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // + caller thread

  /// Runs fn(begin, end) over disjoint chunks covering [0, n). Blocks until
  /// every chunk has completed. The calling thread participates.
  template <typename F>
  void parallel_ranges(index_t n, index_t chunk, F&& fn) {
    if (n <= 0) return;
    using Fn = std::remove_reference_t<F>;
    Task task;
    task.ctx = const_cast<void*>(static_cast<const void*>(&fn));
    task.invoke = [](void* ctx, index_t begin, index_t end) {
      (*static_cast<Fn*>(ctx))(begin, end);
    };
    task.n = n;
    task.chunk = chunk < 1 ? 1 : chunk;
    run_task(task);
  }

  /// Shared default pool (size = hardware concurrency). Most library entry
  /// points take an optional pool pointer and fall back to this.
  static ThreadPool& shared();

  /// Dense per-pool slot of the calling thread: 0 for the thread currently
  /// driving a parallel_ranges dispatch, 1..workers for the dispatching
  /// pool's workers, and -1 for a thread outside any dispatch (a plain
  /// application thread, or a worker of some *other* pool). Always < size()
  /// while executing a body dispatched by this pool, which is what the
  /// privatized (per-slot) scatter buffers in the SpMSpV kernels rely on.
  static int current_slot();

  /// current_slot() with the off-pool sentinel folded into the caller
  /// bucket: returns 0 instead of -1. Kernels index per-slot scratch with
  /// this so serial sections run off-pool (e.g. on a serving daemon's
  /// request threads) land in the always-present slot-0 bucket instead of
  /// reading a stale foreign slot out of bounds.
  static int scratch_slot();

 private:
  struct Task {
    void (*invoke)(void*, index_t, index_t) = nullptr;
    void* ctx = nullptr;
    index_t n = 0;
    index_t chunk = 1;
    // Work-stealing cursor and completion count: the pool IS the
    // synchronization layer the atomic_* helpers sit on top of, and these
    // need fetch_add/acq_rel orderings the helpers deliberately don't
    // expose. lint:allow(raw-atomic)
    std::atomic<index_t> next{0};
    std::atomic<int> remaining{0};  // lint:allow(raw-atomic)
  };

  void run_task(Task& task);
  void worker_loop();
  static void drain(Task& task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Task* current_ = nullptr;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace tilespmspv
