// A small work-sharing thread pool. This is the repo's stand-in for the GPU
// "device": the paper launches CUDA warps over tile rows / frontier chunks;
// here the same work units are dispatched as blocked index ranges onto pool
// workers. The pool size is an explicit parameter everywhere so tests can
// exercise the concurrent paths even on a single-core host.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/types.hpp"

namespace tilespmspv {

/// Fixed-size pool executing blocked parallel-for loops.
///
/// Work distribution is dynamic: the loop range is cut into chunks and
/// workers claim chunks from a shared atomic counter, which mirrors how a
/// GPU scheduler assigns tile rows to warps and gives load balance on
/// skewed sparsity patterns (long tile rows).
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // + caller thread

  /// Runs fn(begin, end) over disjoint chunks covering [0, n). Blocks until
  /// every chunk has completed. The calling thread participates.
  void parallel_ranges(index_t n, index_t chunk,
                       const std::function<void(index_t, index_t)>& fn);

  /// Shared default pool (size = hardware concurrency). Most library entry
  /// points take an optional pool pointer and fall back to this.
  static ThreadPool& shared();

 private:
  struct Task {
    const std::function<void(index_t, index_t)>* fn = nullptr;
    index_t n = 0;
    index_t chunk = 1;
    std::atomic<index_t> next{0};
    std::atomic<int> remaining{0};
  };

  void worker_loop();
  static void drain(Task& task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Task* current_ = nullptr;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace tilespmspv
