// A small work-sharing thread pool. This is the repo's stand-in for the GPU
// "device": the paper launches CUDA warps over tile rows / frontier chunks;
// here the same work units are dispatched as blocked index ranges onto pool
// workers. The pool size is an explicit parameter everywhere so tests can
// exercise the concurrent paths even on a single-core host.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/types.hpp"

namespace tilespmspv {

/// Fixed-size pool executing blocked parallel-for loops.
///
/// Work distribution is dynamic: the loop range is cut into chunks and
/// workers claim chunks from a shared atomic counter, which mirrors how a
/// GPU scheduler assigns tile rows to warps and gives load balance on
/// skewed sparsity patterns (long tile rows).
///
/// `parallel_ranges` is a template over the callable: the body is invoked
/// through a captured function pointer + context, so dispatching a loop
/// allocates nothing (the old std::function path heap-allocated a closure
/// per call, measurable on the fine-grained SpMSpV phase loops).
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // + caller thread

  /// Upper bound on data shards per pool (per-shard claim cursors are a
  /// fixed array in the task frame). Matches obs::kShardStatsMax.
  static constexpr int kMaxShards = 8;

  /// Splits future sharded dispatches (parallel_shard_ranges) into
  /// `nshards` data shards: each pool slot gets a home shard whose range
  /// it drains first, stealing from the other shards round-robin only once
  /// its own is empty. With `pin_threads`, workers are additionally pinned
  /// to the CPUs of their shard's NUMA node (shard s -> node s mod nodes),
  /// so first-touch pages copied by a worker land on the node that will
  /// traverse them. nshards = 1 restores the default behaviour and unpins.
  /// Not thread-safe against concurrent dispatches; configure at setup.
  void configure_shards(int nshards, bool pin_threads = true);
  int num_shards() const { return nshards_; }

  /// Shard whose data the calling thread is currently draining (set by the
  /// sharded drain around each body invocation, including stolen chunks,
  /// so per-shard counters attribute work to the *data's* shard). 0 when
  /// outside a sharded dispatch.
  static int current_shard();

  /// Runs fn(begin, end) over disjoint chunks covering [0, n). Blocks until
  /// every chunk has completed. The calling thread participates.
  template <typename F>
  void parallel_ranges(index_t n, index_t chunk, F&& fn) {
    if (n <= 0) return;
    using Fn = std::remove_reference_t<F>;
    Task task;
    task.ctx = const_cast<void*>(static_cast<const void*>(&fn));
    task.invoke = [](void* ctx, index_t begin, index_t end) {
      (*static_cast<Fn*>(ctx))(begin, end);
    };
    task.n = n;
    task.chunk = chunk < 1 ? 1 : chunk;
    run_task(task);
  }

  /// Sharded variant: `shard_bounds` (length nshards + 1, starting at 0)
  /// partitions [0, n) into per-shard ranges; chunks never cross a shard
  /// boundary and every body invocation runs with current_shard() equal to
  /// the shard owning its range. Falls back to parallel_ranges when the
  /// bounds describe a single shard (or exceed kMaxShards).
  template <typename F>
  void parallel_shard_ranges(const std::vector<index_t>& shard_bounds,
                             index_t chunk, F&& fn) {
    const int ns = static_cast<int>(shard_bounds.size()) - 1;
    if (ns <= 0) return;
    const index_t n = shard_bounds.back();
    if (n <= 0) return;
    if (ns == 1 || ns > kMaxShards) {
      parallel_ranges(n, chunk, fn);
      return;
    }
    using Fn = std::remove_reference_t<F>;
    Task task;
    task.ctx = const_cast<void*>(static_cast<const void*>(&fn));
    task.invoke = [](void* ctx, index_t begin, index_t end) {
      (*static_cast<Fn*>(ctx))(begin, end);
    };
    task.n = n;
    task.chunk = chunk < 1 ? 1 : chunk;
    task.nshards = ns;
    task.shard_bounds = shard_bounds.data();
    task.slot_shard = slot_shard_.empty() ? nullptr : slot_shard_.data();
    for (int s = 0; s < ns; ++s) {
      task.shard_next[s].store(shard_bounds[static_cast<std::size_t>(s)],
                               std::memory_order_relaxed);
    }
    run_task(task);
  }

  /// Shared default pool (size = hardware concurrency). Most library entry
  /// points take an optional pool pointer and fall back to this.
  static ThreadPool& shared();

  /// Dense per-pool slot of the calling thread: 0 for the thread currently
  /// driving a parallel_ranges dispatch, 1..workers for the dispatching
  /// pool's workers, and -1 for a thread outside any dispatch (a plain
  /// application thread, or a worker of some *other* pool). Always < size()
  /// while executing a body dispatched by this pool, which is what the
  /// privatized (per-slot) scatter buffers in the SpMSpV kernels rely on.
  static int current_slot();

  /// current_slot() with the off-pool sentinel folded into the caller
  /// bucket: returns 0 instead of -1. Kernels index per-slot scratch with
  /// this so serial sections run off-pool (e.g. on a serving daemon's
  /// request threads) land in the always-present slot-0 bucket instead of
  /// reading a stale foreign slot out of bounds.
  static int scratch_slot();

 private:
  struct Task {
    void (*invoke)(void*, index_t, index_t) = nullptr;
    void* ctx = nullptr;
    index_t n = 0;
    index_t chunk = 1;
    // Work-stealing cursor and completion count: the pool IS the
    // synchronization layer the atomic_* helpers sit on top of, and these
    // need fetch_add/acq_rel orderings the helpers deliberately don't
    // expose. lint:allow(raw-atomic)
    std::atomic<index_t> next{0};
    std::atomic<int> remaining{0};  // lint:allow(raw-atomic)
    // Sharded dispatch state: per-shard claim cursors over the ranges in
    // shard_bounds, plus the dispatching pool's slot->home-shard map.
    int nshards = 1;
    const index_t* shard_bounds = nullptr;
    const int* slot_shard = nullptr;
    std::atomic<index_t> shard_next[kMaxShards];  // lint:allow(raw-atomic)
  };

  void run_task(Task& task);
  void worker_loop();
  static void drain(Task& task);
  static void drain_sharded(Task& task);

  int nshards_ = 1;
  std::vector<int> slot_shard_;  // home shard per pool slot (size() entries)
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Task* current_ = nullptr;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace tilespmspv
