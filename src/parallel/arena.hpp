// Storage placement layer (ROADMAP item 3): every heavy array of the tiled
// structures lives behind ArrayBuf, an owned-or-view buffer, so the same
// TileMatrix / BitTileGraph type can hold
//   - plain heap vectors (the default, exactly the old behaviour),
//   - slices of a per-NUMA-node first-touch Arena (pages placed by pinned
//     pool workers copying their own shard's slice), or
//   - read-only views straight into an mmapped on-disk file
//     (formats/tile_file.hpp) with zero copies at load.
//
// The placement policy is explicit (Placement enum + Arena), mirroring the
// paper's discipline of matching storage layout to the memory hierarchy one
// level up: tile rows already group nonzeros for cache lines; arenas and
// shard-aware dispatch group tile-row ranges for NUMA nodes.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "parallel/parallel_for.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Owned-or-view array with a std::vector-compatible read surface. Owned
/// mode wraps a std::vector (all mutators work); view mode aliases caller
/// memory (an Arena block or an mmapped file section) and is read-only:
/// element mutators assert, while whole-replacement operations (assign,
/// operator=, clear) rebind the buffer to owned storage. The data pointer
/// and size are mirrored so the hot read path (operator[], data()) never
/// branches on the mode.
template <typename T>
class ArrayBuf {
 public:
  using value_type = T;

  ArrayBuf() = default;
  ArrayBuf(const ArrayBuf& o) { copy_from(o); }
  ArrayBuf(ArrayBuf&& o) noexcept { move_from(std::move(o)); }
  ArrayBuf& operator=(const ArrayBuf& o) {
    if (this != &o) copy_from(o);
    return *this;
  }
  ArrayBuf& operator=(ArrayBuf&& o) noexcept {
    if (this != &o) move_from(std::move(o));
    return *this;
  }
  // Implicit adoption of a vector keeps existing builder code (assigning
  // read_vec results, std::move of locals) working unchanged.
  ArrayBuf(std::vector<T>&& v) : vec_(std::move(v)) { sync(); }
  ArrayBuf& operator=(std::vector<T>&& v) {
    view_ = false;
    vec_ = std::move(v);
    sync();
    return *this;
  }

  /// A read-only view over caller-owned memory. The caller must keep the
  /// memory alive for the buffer's lifetime (the tiled structures carry a
  /// shared_ptr `storage` holder for exactly this).
  static ArrayBuf view(const T* p, std::size_t n) {
    ArrayBuf b;
    b.bind_view(p, n);
    return b;
  }
  void bind_view(const T* p, std::size_t n) {
    vec_ = std::vector<T>();
    view_ = true;
    data_ = p;
    size_ = n;
  }
  bool is_view() const { return view_; }

  /// Copies a view's contents into owned storage (no-op when already
  /// owned). Used by mutation paths that must work on mapped structures.
  void make_owned() {
    if (!view_) return;
    vec_.assign(data_, data_ + size_);
    view_ = false;
    sync();
  }

  // Read surface (valid in both modes).
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  // Mutation surface (owned mode only; element writes on a view are a
  // contract violation, not a copy-on-write).
  T* data() {
    assert(!view_);
    return vec_.data();
  }
  T& operator[](std::size_t i) {
    assert(!view_);
    return vec_[i];
  }
  void assign(std::size_t n, const T& v) {
    view_ = false;
    vec_.assign(n, v);
    sync();
  }
  void resize(std::size_t n) {
    assert(!view_);
    vec_.resize(n);
    sync();
  }
  void reserve(std::size_t n) {
    assert(!view_);
    vec_.reserve(n);
    sync();
  }
  T& front() {
    assert(!view_);
    return vec_.front();
  }
  T& back() {
    assert(!view_);
    return vec_.back();
  }
  void push_back(const T& v) {
    assert(!view_);
    vec_.push_back(v);
    sync();
  }
  template <typename It>
  void append(It first, It last) {
    assert(!view_);
    vec_.insert(vec_.end(), first, last);
    sync();
  }
  void clear() {
    view_ = false;
    vec_.clear();
    sync();
  }

 private:
  void sync() {
    data_ = vec_.data();
    size_ = vec_.size();
  }
  void copy_from(const ArrayBuf& o) {
    view_ = o.view_;
    if (o.view_) {
      vec_ = std::vector<T>();
      data_ = o.data_;
      size_ = o.size_;
    } else {
      vec_ = o.vec_;
      sync();
    }
  }
  void move_from(ArrayBuf&& o) noexcept {
    view_ = o.view_;
    if (o.view_) {
      vec_ = std::vector<T>();
      data_ = o.data_;
      size_ = o.size_;
    } else {
      vec_ = std::move(o.vec_);
      sync();
    }
    o.vec_ = std::vector<T>();
    o.view_ = false;
    o.sync();
  }

  std::vector<T> vec_;    // backing storage in owned mode
  const T* data_ = nullptr;
  std::size_t size_ = 0;
  bool view_ = false;
};

// Element-wise equality against other buffers and plain vectors, so the
// differential tests can compare owned and mapped structures directly.
template <typename T>
bool operator==(const ArrayBuf<T>& a, const ArrayBuf<T>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}
template <typename T>
bool operator==(const ArrayBuf<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}
template <typename T>
bool operator==(const std::vector<T>& a, const ArrayBuf<T>& b) {
  return b == a;
}

/// Where a structure's heavy arrays live.
enum class Placement {
  kHeap,        // plain heap vectors (default; exactly the old behaviour)
  kFirstTouch,  // anonymous-mmap arena, pages placed by first touch from
                // shard-pinned pool workers
  kMapped,      // read-only views into an mmapped on-disk file
};

inline const char* placement_name(Placement p) {
  switch (p) {
    case Placement::kHeap: return "heap";
    case Placement::kFirstTouch: return "first-touch";
    case Placement::kMapped: return "mapped";
  }
  return "?";
}

/// One NUMA node: its id and the CPUs it owns.
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

/// Host NUMA topology, read from /sys/devices/system/node. Falls back to a
/// single node holding every hardware thread when sysfs is absent (non-
/// Linux, containers with masked sysfs), so callers never special-case.
struct NumaTopology {
  std::vector<NumaNode> nodes;

  int num_nodes() const { return static_cast<int>(nodes.size()); }

  /// Parses "0-3,8-11" style cpulist strings.
  static std::vector<int> parse_cpulist(const std::string& s) {
    std::vector<int> cpus;
    std::stringstream ss(s);
    std::string part;
    while (std::getline(ss, part, ',')) {
      if (part.empty()) continue;
      const std::size_t dash = part.find('-');
      try {
        if (dash == std::string::npos) {
          cpus.push_back(std::stoi(part));
        } else {
          const int lo = std::stoi(part.substr(0, dash));
          const int hi = std::stoi(part.substr(dash + 1));
          for (int c = lo; c <= hi && c - lo < 4096; ++c) cpus.push_back(c);
        }
      } catch (const std::exception&) {
        return {};  // malformed sysfs content: caller falls back
      }
    }
    return cpus;
  }

  static NumaTopology detect() {
    NumaTopology t;
#if defined(__linux__)
    for (int id = 0; id < 64; ++id) {
      std::ifstream in("/sys/devices/system/node/node" + std::to_string(id) +
                       "/cpulist");
      if (!in) break;
      std::string line;
      std::getline(in, line);
      std::vector<int> cpus = parse_cpulist(line);
      if (!cpus.empty()) t.nodes.push_back({id, std::move(cpus)});
    }
#endif
    if (t.nodes.empty()) {
      NumaNode all;
      const unsigned n = std::max(1u, std::thread::hardware_concurrency());
      for (unsigned c = 0; c < n; ++c) all.cpus.push_back(static_cast<int>(c));
      t.nodes.push_back(std::move(all));
    }
    return t;
  }
};

/// Block-granular aligned allocator backing ArrayBuf views. kHeap blocks
/// come from aligned operator new; kFirstTouch blocks are anonymous mmap
/// regions whose physical pages are *not* populated at allocation — they
/// land on the NUMA node of whichever thread first writes them, which is
/// what the shard-sliced parallel copy in the place() helpers exploits.
/// Allocation-only (no free of individual blocks): an Arena backs one
/// structure and dies with it, held alive by the structure's `storage`
/// shared_ptr.
class Arena {
 public:
  static constexpr std::size_t kAlign = 64;  // cache line / section alignment

  explicit Arena(Placement p = Placement::kHeap) : placement_(p) {
    assert(p != Placement::kMapped);  // mapped storage comes from MappedFile
  }
  ~Arena() {
    for (Block& b : blocks_) {
#if defined(__linux__)
      if (b.mapped) {
        ::munmap(b.base, b.size);
        continue;
      }
#endif
      ::operator delete(b.base, std::align_val_t{kAlign});
    }
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  Placement placement() const { return placement_; }
  std::size_t bytes_allocated() const { return bytes_; }

  /// 64-byte-aligned block of `bytes` (never null; zero-size requests get
  /// a minimal block so views stay distinct).
  void* allocate(std::size_t bytes) {
    if (bytes == 0) bytes = kAlign;
    void* base = nullptr;
    bool mapped = false;
#if defined(__linux__)
    if (placement_ == Placement::kFirstTouch) {
      const std::size_t page =
          static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
      const std::size_t len = round_up(bytes, page);
      void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (p != MAP_FAILED) {
        base = p;
        bytes = len;
        mapped = true;
      }
    }
#endif
    if (base == nullptr) {
      base = ::operator new(bytes, std::align_val_t{kAlign});
    }
    blocks_.push_back({base, bytes, mapped});
    bytes_ += bytes;
    return base;
  }

 private:
  struct Block {
    void* base;
    std::size_t size;
    bool mapped;
  };
  Placement placement_;
  std::vector<Block> blocks_;
  std::size_t bytes_ = 0;
};

/// Copies one ArrayBuf into `arena` and rebinds it as a view over the new
/// block. The copy runs in parallel over 64K-element blocks; when the pool
/// is shard-configured, block slice s is drained (and hence first-touched)
/// by shard s's workers — pinned to node s — so each slice's pages fault
/// onto the NUMA node whose shard will traverse them. Stealing only kicks
/// in at the tail, keeping the placement approximation tight.
template <typename U>
void arena_place_buf(Arena& arena, ArrayBuf<U>& buf, ThreadPool* pool) {
  if (buf.empty()) return;
  const std::size_t n = buf.size();
  U* dst = static_cast<U*>(arena.allocate(n * sizeof(U)));
  const U* src = buf.data();
  const index_t blocks =
      static_cast<index_t>(ceil_div<std::size_t>(n, std::size_t{1} << 16));
  const auto copy_blocks = [&](index_t begin, index_t end) {
    const std::size_t lo = static_cast<std::size_t>(begin) << 16;
    const std::size_t hi = std::min(n, static_cast<std::size_t>(end) << 16);
    std::copy(src + lo, src + hi, dst + lo);
  };
  ThreadPool& p = pool ? *pool : ThreadPool::shared();
  if (p.num_shards() > 1) {
    const int ns = p.num_shards();
    std::vector<index_t> bounds(static_cast<std::size_t>(ns) + 1, 0);
    for (int s = 0; s <= ns; ++s) {
      bounds[static_cast<std::size_t>(s)] =
          static_cast<index_t>(static_cast<std::int64_t>(blocks) * s / ns);
    }
    p.parallel_shard_ranges(bounds, 1, copy_blocks);
  } else {
    parallel_for_ranges(blocks, copy_blocks, pool, /*chunk=*/1);
  }
  buf.bind_view(dst, n);
}

/// Contiguous partition of a chunked index range into S shards of roughly
/// equal payload bytes. `chunk_bounds` partitions the *chunk id* range the
/// kernels dispatch over (length nshards + 1, covering [0, nchunks]);
/// `bytes` records each shard's payload for the balance counters and the
/// max/mean imbalance acceptance check.
struct ShardPlan {
  std::vector<index_t> chunk_bounds;
  std::vector<std::uint64_t> bytes;

  int nshards() const { return static_cast<int>(bytes.size()); }

  /// max(shard bytes) / mean(shard bytes); 1.0 is perfect balance.
  double imbalance() const {
    if (bytes.empty()) return 1.0;
    std::uint64_t max = 0, total = 0;
    for (std::uint64_t b : bytes) {
      total += b;
      if (b > max) max = b;
    }
    if (total == 0) return 1.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(bytes.size());
    return static_cast<double>(max) / mean;
  }
};

/// Builds a ShardPlan over `nchunks` scheduling chunks. `chunk_bytes(c)`
/// returns the payload bytes of chunk c. Boundaries are the prefix points
/// where the cumulative payload crosses each 1/S fraction of the total, so
/// shards stay contiguous (a shard owns a tile-row range, which is what
/// first-touch placement and the per-shard claim cursors need).
template <typename ByteFn>
ShardPlan make_shard_plan(index_t nchunks, int nshards, ByteFn&& chunk_bytes) {
  ShardPlan plan;
  if (nshards < 1) nshards = 1;
  std::vector<std::uint64_t> prefix(static_cast<std::size_t>(nchunks) + 1, 0);
  for (index_t c = 0; c < nchunks; ++c) {
    prefix[static_cast<std::size_t>(c) + 1] =
        prefix[static_cast<std::size_t>(c)] +
        static_cast<std::uint64_t>(chunk_bytes(c));
  }
  const std::uint64_t total = prefix[static_cast<std::size_t>(nchunks)];
  plan.chunk_bounds.assign(static_cast<std::size_t>(nshards) + 1, 0);
  index_t cursor = 0;
  for (int s = 1; s < nshards; ++s) {
    const std::uint64_t target =
        total / static_cast<std::uint64_t>(nshards) *
        static_cast<std::uint64_t>(s);
    while (cursor < nchunks &&
           prefix[static_cast<std::size_t>(cursor) + 1] <= target) {
      ++cursor;
    }
    plan.chunk_bounds[static_cast<std::size_t>(s)] = cursor;
  }
  plan.chunk_bounds[static_cast<std::size_t>(nshards)] = nchunks;
  plan.bytes.assign(static_cast<std::size_t>(nshards), 0);
  for (int s = 0; s < nshards; ++s) {
    plan.bytes[static_cast<std::size_t>(s)] =
        prefix[static_cast<std::size_t>(
            plan.chunk_bounds[static_cast<std::size_t>(s) + 1])] -
        prefix[static_cast<std::size_t>(
            plan.chunk_bounds[static_cast<std::size_t>(s)])];
  }
  return plan;
}

}  // namespace tilespmspv
