#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace tilespmspv {

namespace {
// Slot of the current thread within the pool that spawned it. Worker slots
// are assigned once at spawn (1..workers); every other thread carries the
// -1 off-pool sentinel until a run_task binds it. The sentinel matters:
// the old default of 0 made a worker of pool A look like a valid slot of a
// smaller pool B, so kernels invoked across pools (or from plain threads,
// as the serving daemon's request threads do) indexed per-slot workspaces
// out of bounds.
thread_local int t_slot = -1;

// RAII binding of the calling thread to the caller slot (0) of the pool
// currently dispatching it. Saving and restoring the previous value keeps
// nested dispatch correct: a worker of pool A that enters pool B's
// parallel_ranges runs B's body as B's slot 0 and reverts to its A slot
// afterwards, so slots seen inside a body are always dense in [0, size())
// of the dispatching pool.
struct CallerSlotBinding {
  int saved;
  CallerSlotBinding() : saved(t_slot) { t_slot = 0; }
  ~CallerSlotBinding() { t_slot = saved; }
  CallerSlotBinding(const CallerSlotBinding&) = delete;
  CallerSlotBinding& operator=(const CallerSlotBinding&) = delete;
};
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread always participates, so spawn one fewer worker.
  const std::size_t spawned = threads - 1;
  workers_.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, slot = static_cast<int>(i) + 1] {
      t_slot = slot;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

int ThreadPool::current_slot() { return t_slot; }

int ThreadPool::scratch_slot() {
  const int s = t_slot;
  return s < 0 ? 0 : s;
}

void ThreadPool::drain(Task& task) {
  std::uint64_t chunks = 0;
  for (;;) {
    const index_t begin = task.next.fetch_add(task.chunk,
                                              std::memory_order_relaxed);
    if (begin >= task.n) break;
    const index_t end = std::min<index_t>(begin + task.chunk, task.n);
    ++chunks;
    task.invoke(task.ctx, begin, end);
  }
  obs::counter_add(obs::Counter::kPoolChunks, chunks);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      task = current_;
      seen_epoch = epoch_;
    }
    {
      obs::TraceSpan span("pool/task", "pool");
      drain(*task);
    }
    if (task->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_task(Task& task) {
  obs::counter_add(obs::Counter::kPoolLoops, 1);
  if (workers_.empty() || task.n <= task.chunk) {
    // Serial fast path: no coordination cost for small loops.
    obs::TraceSpan span("pool/parallel_ranges", "pool", "serial");
    CallerSlotBinding bind;
    task.invoke(task.ctx, 0, task.n);
    return;
  }
  obs::TraceSpan span("pool/parallel_ranges", "pool");
  task.remaining.store(static_cast<int>(workers_.size()),
                       std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &task;
    ++epoch_;
  }
  cv_.notify_all();
  {
    CallerSlotBinding bind;
    drain(task);  // caller thread participates as slot 0
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return task.remaining.load(std::memory_order_acquire) == 0;
    });
    current_ = nullptr;
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tilespmspv
