#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace tilespmspv {

namespace {
// Slot of the current thread within the pool that spawned it (0 for
// non-worker threads). Worker slots are assigned once at spawn; a pool only
// ever executes bodies on its own workers plus the calling thread, so slots
// seen inside a parallel_ranges body are dense in [0, size()).
thread_local int t_slot = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread always participates, so spawn one fewer worker.
  const std::size_t spawned = threads - 1;
  workers_.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, slot = static_cast<int>(i) + 1] {
      t_slot = slot;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

int ThreadPool::current_slot() { return t_slot; }

void ThreadPool::drain(Task& task) {
  std::uint64_t chunks = 0;
  for (;;) {
    const index_t begin = task.next.fetch_add(task.chunk,
                                              std::memory_order_relaxed);
    if (begin >= task.n) break;
    const index_t end = std::min<index_t>(begin + task.chunk, task.n);
    ++chunks;
    task.invoke(task.ctx, begin, end);
  }
  obs::counter_add(obs::Counter::kPoolChunks, chunks);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      task = current_;
      seen_epoch = epoch_;
    }
    {
      obs::TraceSpan span("pool/task", "pool");
      drain(*task);
    }
    if (task->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_task(Task& task) {
  obs::counter_add(obs::Counter::kPoolLoops, 1);
  if (workers_.empty() || task.n <= task.chunk) {
    // Serial fast path: no coordination cost for small loops.
    obs::TraceSpan span("pool/parallel_ranges", "pool", "serial");
    task.invoke(task.ctx, 0, task.n);
    return;
  }
  obs::TraceSpan span("pool/parallel_ranges", "pool");
  task.remaining.store(static_cast<int>(workers_.size()),
                       std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &task;
    ++epoch_;
  }
  cv_.notify_all();
  drain(task);  // caller thread participates
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return task.remaining.load(std::memory_order_acquire) == 0;
    });
    current_ = nullptr;
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tilespmspv
