#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "obs/counters.hpp"
#include "obs/shard_stats.hpp"
#include "obs/trace.hpp"
#include "parallel/arena.hpp"

namespace tilespmspv {

namespace {
// Slot of the current thread within the pool that spawned it. Worker slots
// are assigned once at spawn (1..workers); every other thread carries the
// -1 off-pool sentinel until a run_task binds it. The sentinel matters:
// the old default of 0 made a worker of pool A look like a valid slot of a
// smaller pool B, so kernels invoked across pools (or from plain threads,
// as the serving daemon's request threads do) indexed per-slot workspaces
// out of bounds.
thread_local int t_slot = -1;

// Data shard whose range the thread is currently draining (sharded
// dispatches only); -1 outside. Set around each body invocation — to the
// *chunk's* shard, not the thread's home shard — so stolen chunks still
// attribute their counters to the shard that owns the data.
thread_local int t_shard = -1;

// RAII binding of the calling thread to the caller slot (0) of the pool
// currently dispatching it. Saving and restoring the previous value keeps
// nested dispatch correct: a worker of pool A that enters pool B's
// parallel_ranges runs B's body as B's slot 0 and reverts to its A slot
// afterwards, so slots seen inside a body are always dense in [0, size())
// of the dispatching pool.
struct CallerSlotBinding {
  int saved;
  CallerSlotBinding() : saved(t_slot) { t_slot = 0; }
  ~CallerSlotBinding() { t_slot = saved; }
  CallerSlotBinding(const CallerSlotBinding&) = delete;
  CallerSlotBinding& operator=(const CallerSlotBinding&) = delete;
};
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread always participates, so spawn one fewer worker.
  const std::size_t spawned = threads - 1;
  workers_.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, slot = static_cast<int>(i) + 1] {
      t_slot = slot;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

int ThreadPool::current_slot() { return t_slot; }

int ThreadPool::scratch_slot() {
  const int s = t_slot;
  return s < 0 ? 0 : s;
}

int ThreadPool::current_shard() {
  const int s = t_shard;
  return s < 0 ? 0 : s;
}

void ThreadPool::configure_shards(int nshards, bool pin_threads) {
  nshards = std::max(1, std::min(nshards, kMaxShards));
  nshards_ = nshards;
  const std::size_t slots = size();
  slot_shard_.assign(slots, 0);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    slot_shard_[slot] =
        static_cast<int>(slot * static_cast<std::size_t>(nshards) / slots);
  }
#if defined(__linux__)
  const NumaTopology topo = NumaTopology::detect();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    cpu_set_t set;
    CPU_ZERO(&set);
    if (nshards == 1 || !pin_threads) {
      // Unpin: the union of every node's CPUs.
      for (const NumaNode& node : topo.nodes) {
        for (int c : node.cpus) CPU_SET(static_cast<std::size_t>(c), &set);
      }
    } else {
      const int shard = slot_shard_[i + 1];  // worker i occupies slot i + 1
      const NumaNode& node =
          topo.nodes[static_cast<std::size_t>(shard % topo.num_nodes())];
      for (int c : node.cpus) CPU_SET(static_cast<std::size_t>(c), &set);
    }
    pthread_setaffinity_np(workers_[i].native_handle(), sizeof(set), &set);
  }
#else
  (void)pin_threads;
#endif
}

void ThreadPool::drain(Task& task) {
  if (task.nshards > 1) {
    drain_sharded(task);
    return;
  }
  std::uint64_t chunks = 0;
  for (;;) {
    const index_t begin = task.next.fetch_add(task.chunk,
                                              std::memory_order_relaxed);
    if (begin >= task.n) break;
    const index_t end = std::min<index_t>(begin + task.chunk, task.n);
    ++chunks;
    task.invoke(task.ctx, begin, end);
  }
  obs::counter_add(obs::Counter::kPoolChunks, chunks);
}

void ThreadPool::drain_sharded(Task& task) {
  const int slot = t_slot < 0 ? 0 : t_slot;
  const int home =
      task.slot_shard == nullptr ? slot % task.nshards : task.slot_shard[slot];
  std::uint64_t chunks = 0;
  for (int k = 0; k < task.nshards; ++k) {
    // Home shard first; steal from the others round-robin once it's dry.
    const int s = (home + k) % task.nshards;
    const index_t s_end = task.shard_bounds[s + 1];
    bool worked = false;
    const auto t0 = std::chrono::steady_clock::now();
    const int saved = t_shard;
    t_shard = s;
    for (;;) {
      const index_t begin =
          task.shard_next[s].fetch_add(task.chunk, std::memory_order_relaxed);
      if (begin >= s_end) break;
      const index_t end = std::min<index_t>(begin + task.chunk, s_end);
      ++chunks;
      worked = true;
      task.invoke(task.ctx, begin, end);
    }
    t_shard = saved;
    if (worked) {
      const std::chrono::duration<double, std::milli> dt =
          std::chrono::steady_clock::now() - t0;
      obs::shard_add_ms(s, dt.count());
    }
  }
  obs::counter_add(obs::Counter::kPoolChunks, chunks);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      task = current_;
      seen_epoch = epoch_;
    }
    {
      obs::TraceSpan span("pool/task", "pool");
      drain(*task);
    }
    if (task->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_task(Task& task) {
  obs::counter_add(obs::Counter::kPoolLoops, 1);
  if (workers_.empty() || task.n <= task.chunk) {
    // Serial fast path: no coordination cost for small loops. Sharded
    // tasks still go through the sharded drain so each range runs with
    // current_shard() bound to its data shard and per-shard wall time is
    // recorded — single-core runs keep the same attribution semantics.
    obs::TraceSpan span("pool/parallel_ranges", "pool", "serial");
    CallerSlotBinding bind;
    if (task.nshards > 1) {
      drain_sharded(task);
    } else {
      task.invoke(task.ctx, 0, task.n);
    }
    return;
  }
  obs::TraceSpan span("pool/parallel_ranges", "pool");
  task.remaining.store(static_cast<int>(workers_.size()),
                       std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &task;
    ++epoch_;
  }
  cv_.notify_all();
  {
    CallerSlotBinding bind;
    drain(task);  // caller thread participates as slot 0
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return task.remaining.load(std::memory_order_acquire) == 0;
    });
    current_ = nullptr;
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tilespmspv
