// Convenience wrappers over ThreadPool: element-wise parallel loops and a
// tree-free parallel reduction (per-worker partials combined by the caller).
// All wrappers forward the body by reference into the pool's templated
// dispatch, so no per-call closure is heap-allocated.
#pragma once

#include <mutex>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace tilespmspv {

/// Default chunk size: large enough to amortize the claim per chunk, small
/// enough to balance skewed per-iteration cost (long tile rows in power-law
/// graphs).
inline constexpr index_t kDefaultChunk = 64;

/// Runs body(i) for every i in [0, n) on `pool` (nullptr = shared pool).
template <typename Body>
void parallel_for(index_t n, Body&& body, ThreadPool* pool = nullptr,
                  index_t chunk = kDefaultChunk) {
  ThreadPool& p = pool ? *pool : ThreadPool::shared();
  p.parallel_ranges(n, chunk, [&body](index_t begin, index_t end) {
    for (index_t i = begin; i < end; ++i) body(i);
  });
}

/// Runs body(begin, end) over disjoint chunks covering [0, n).
template <typename Body>
void parallel_for_ranges(index_t n, Body&& body, ThreadPool* pool = nullptr,
                         index_t chunk = kDefaultChunk) {
  ThreadPool& p = pool ? *pool : ThreadPool::shared();
  p.parallel_ranges(n, chunk, body);
}

/// Parallel reduction: `body(i)` produces a T, combined with `combine`
/// starting from `init`. Each chunk reduces locally; chunk results merge
/// under a mutex (cheap: one lock per chunk, not per element).
template <typename T, typename Body, typename Combine>
T parallel_reduce(index_t n, T init, Body&& body, Combine&& combine,
                  ThreadPool* pool = nullptr, index_t chunk = kDefaultChunk) {
  T total = init;
  std::mutex m;
  parallel_for_ranges(
      n,
      [&](index_t begin, index_t end) {
        T local = init;
        for (index_t i = begin; i < end; ++i) {
          local = combine(std::move(local), body(i));
        }
        std::lock_guard<std::mutex> lock(m);
        total = combine(std::move(total), std::move(local));
      },
      pool, chunk);
  return total;
}

}  // namespace tilespmspv
