// Atomic helpers mirroring the CUDA primitives the paper's kernels use:
// atomicOr on bitmask words and atomicAdd on accumulator values. The BFS
// kernels only need monotone idempotent OR, so relaxed ordering suffices
// (every kernel launch is separated by a pool barrier, which publishes all
// writes before the next phase reads them).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace tilespmspv {

/// atomicOr equivalent over a plain word stored in a vector. The storage is
/// reinterpreted as std::atomic, which is valid for lock-free integral
/// atomics of the same size (guaranteed for uint8..uint64 on x86-64).
template <typename W>
inline void atomic_or(W* target, W bits) {
  static_assert(std::is_integral_v<W>);
  reinterpret_cast<std::atomic<W>*>(target)->fetch_or(
      bits, std::memory_order_relaxed);
}

/// atomicAdd equivalent for floating-point accumulation (CAS loop, as CUDA
/// does for doubles pre-sm_60).
template <typename T>
inline void atomic_add(T* target, T delta) {
  static_assert(std::is_floating_point_v<T>);
  auto* a = reinterpret_cast<std::atomic<T>*>(target);
  T cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

/// Atomic test-and-set of a byte flag; returns the previous value. The BFS
/// output-slot registration uses this to let many tasks discover the same
/// produced word while exactly one of them appends it to a slot list.
inline bool atomic_test_and_set(std::uint8_t* flag) {
  return reinterpret_cast<std::atomic<std::uint8_t>*>(flag)->exchange(
             1, std::memory_order_relaxed) != 0;
}

/// Relaxed atomic load of a plain word (pairs with atomic_or above).
template <typename W>
inline W atomic_load(const W* target) {
  static_assert(std::is_integral_v<W>);
  return reinterpret_cast<const std::atomic<W>*>(target)->load(
      std::memory_order_relaxed);
}

}  // namespace tilespmspv
