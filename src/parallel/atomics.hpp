// Atomic helpers mirroring the CUDA primitives the paper's kernels use:
// atomicOr on bitmask words and atomicAdd on accumulator values. The BFS
// kernels only need monotone idempotent OR, so relaxed ordering suffices
// (every kernel launch is separated by a pool barrier, which publishes all
// writes before the next phase reads them).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace tilespmspv {

/// atomicOr equivalent over a plain word stored in a vector. The storage is
/// reinterpreted as std::atomic, which is valid for lock-free integral
/// atomics of the same size (guaranteed for uint8..uint64 on x86-64).
template <typename W>
inline void atomic_or(W* target, W bits) {
  static_assert(std::is_integral_v<W>);
  reinterpret_cast<std::atomic<W>*>(target)->fetch_or(
      bits, std::memory_order_relaxed);
}

/// atomicAdd equivalent for floating-point accumulation (CAS loop, as CUDA
/// does for doubles pre-sm_60).
template <typename T>
inline void atomic_add(T* target, T delta) {
  static_assert(std::is_floating_point_v<T>);
  auto* a = reinterpret_cast<std::atomic<T>*>(target);
  T cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

/// Atomic test-and-set of a byte flag; returns the previous value. The BFS
/// output-slot registration uses this to let many tasks discover the same
/// produced word while exactly one of them appends it to a slot list.
inline bool atomic_test_and_set(std::uint8_t* flag) {
  return reinterpret_cast<std::atomic<std::uint8_t>*>(flag)->exchange(
             1, std::memory_order_relaxed) != 0;
}

/// Relaxed atomic load of a plain word (pairs with atomic_or above).
template <typename W>
inline W atomic_load(const W* target) {
  static_assert(std::is_integral_v<W>);
  return reinterpret_cast<const std::atomic<W>*>(target)->load(
      std::memory_order_relaxed);
}

/// Relaxed atomic store of a plain word. For idempotent updates where
/// overlapping tasks may write the same value (bottom-up BFS level
/// assignment, shared flag maps) — atomicity only exists to keep the
/// formal data race out, not to order anything.
template <typename W>
inline void atomic_store(W* target, W v) {
  static_assert(std::is_integral_v<W>);
  reinterpret_cast<std::atomic<W>*>(target)->store(v,
                                                   std::memory_order_relaxed);
}

/// atomicCAS equivalent: claims `*target` for `desired` iff it still holds
/// `expected`. The BFS baselines claim unvisited vertices by CAS-ing the
/// level array from -1; exactly one claimant wins. Returns true for the
/// winner. The relaxed pre-load keeps the common already-claimed case off
/// the bus-locked path.
template <typename T>
inline bool atomic_claim(T* target, T expected, T desired) {
  static_assert(std::is_integral_v<T>);
  auto* a = reinterpret_cast<std::atomic<T>*>(target);
  if (a->load(std::memory_order_relaxed) != expected) return false;
  return a->compare_exchange_strong(expected, desired,
                                    std::memory_order_relaxed);
}

/// Byte spinlock (acquire/release) over plain storage, for short per-tile
/// critical sections where a vector of std::atomic_flag would need C++20
/// initialization gymnastics. Pairs: spin_lock / spin_unlock.
inline void spin_lock(unsigned char* lock) {
  auto* a = reinterpret_cast<std::atomic<unsigned char>*>(lock);
  unsigned char expected = 0;
  while (!a->compare_exchange_weak(expected, 1, std::memory_order_acquire)) {
    expected = 0;
  }
}

inline void spin_unlock(unsigned char* lock) {
  reinterpret_cast<std::atomic<unsigned char>*>(lock)->store(
      0, std::memory_order_release);
}

}  // namespace tilespmspv
