// Summary statistics used by the benchmark harnesses: the paper reports
// geometric-mean and maximum speedups plus win percentages, so those are
// first-class here.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace tilespmspv {

/// Geometric mean of strictly positive samples. Returns 0 for empty input.
/// Non-positive samples are a caller bug (asserted in debug builds); in
/// release they are skipped rather than poisoning the result with
/// log(<=0), and an all-skipped input returns 0.
inline double geomean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  std::size_t used = 0;
  for (double x : xs) {
    assert(x > 0.0);
    if (!(x > 0.0)) continue;
    log_sum += std::log(x);
    ++used;
  }
  if (used == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(used));
}

/// Arithmetic mean. Defined for every input size: empty returns 0, a
/// single sample returns that sample.
inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double max_of(const std::vector<double>& xs) {
  double m = 0.0;
  for (double x : xs) m = std::max(m, x);
  return m;
}

inline double min_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double m = xs[0];
  for (double x : xs) m = std::min(m, x);
  return m;
}

/// p-th percentile (p in [0, 100]) with linear interpolation between order
/// statistics. Takes the vector by value because it sorts. The bench
/// harnesses report p50/p95 next to best-of so the exported results carry
/// run-to-run variance, not just minima.
///
/// Degenerate inputs are defined, not trusted away: an empty vector
/// returns 0, a single sample is every percentile of itself, p outside
/// [0, 100] clamps to the nearest end, and a NaN p is a caller bug
/// (asserted in debug) that returns 0 in release.
inline double percentile(std::vector<double> xs, double p) {
  assert(!std::isnan(p));
  if (xs.empty() || std::isnan(p)) return 0.0;
  if (xs.size() == 1) return xs.front();
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

/// Fraction (in percent) of samples strictly greater than 1 — "on X% of the
/// matrices our algorithm is faster", as the paper phrases its BFS results.
inline double percent_above_one(const std::vector<double>& speedups) {
  if (speedups.empty()) return 0.0;
  std::size_t wins = 0;
  for (double s : speedups) {
    if (s > 1.0) ++wins;
  }
  return 100.0 * static_cast<double>(wins) /
         static_cast<double>(speedups.size());
}

/// Accumulates per-matrix speedups of "this work" over one baseline and
/// reports the aggregate the paper uses (geomean / max / win-rate).
class SpeedupAggregate {
 public:
  void add(double this_work_time, double baseline_time) {
    if (this_work_time > 0.0 && baseline_time > 0.0) {
      speedups_.push_back(baseline_time / this_work_time);
    }
  }

  double geomean_speedup() const { return geomean(speedups_); }
  double max_speedup() const { return max_of(speedups_); }
  double win_rate_percent() const { return percent_above_one(speedups_); }
  std::size_t count() const { return speedups_.size(); }
  const std::vector<double>& speedups() const { return speedups_; }

 private:
  std::vector<double> speedups_;
};

}  // namespace tilespmspv
