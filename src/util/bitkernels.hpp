// SIMD bit kernels for the bitmask tile structures (BFS hot path).
//
// The TileBFS kernels spend their time in three word-level shapes:
//   - bulk boolean algebra over contiguous word spans (OR/AND/ANDNOT and
//     OR-reductions of an NT-word mask block);
//   - multi-word popcounts (frontier / visited tallies);
//   - scans for non-empty words (the frontier's sparse slot form) and
//     "which of these NT masks intersects word x" tests (the inner AND of
//     Push-CSR and Pull-CSC).
//
// Same tier policy as util/simd.hpp (which this header shares its macros
// with): AVX2, SSE2 or scalar selected at compile time, every kernel with
// a `*_scalar` twin compiled unconditionally so one binary can
// differentially test the active tier (tests/test_bfs_fuzz.cpp), and
// TILESPMSPV_NO_SIMD forcing the scalar tier everywhere. All kernels are
// exact bitwise functions — tiers must produce identical words, not just
// equivalent ones, which the fuzz tests assert.
//
// Word-width note: the boolean/popcount/scan kernels are width-agnostic
// (they process bytes) and work for any bitword_t. The mask-intersection
// kernel (`and_broadcast_hits`) has vector paths for the 32- and 64-bit
// words the paper's tile sizes use; 8/16-bit words take the scalar twin.
#pragma once  // lint:hot-path-file

#include <cassert>
#include <cstdint>
#include <type_traits>

#include "util/bitops.hpp"
#include "util/simd.hpp"  // tier macros (TILESPMSPV_SIMD_AVX2 / _SSE2)
#include "util/types.hpp"

namespace tilespmspv::bitk {

using tilespmspv::index_t;

// The kernels size loop counters and collected slot indices as index_t
// and assume word counts fit it; the 32-bit signed layout is also what
// the serialized formats store, so pin it here.
static_assert(sizeof(index_t) == 4 && std::is_signed_v<index_t>,
              "bitk:: kernels assume 32-bit signed tile/word indices");

// ---------------------------------------------------------------------
// popcount_words: total set bits over n contiguous words.
// ---------------------------------------------------------------------
template <typename W>
inline std::uint64_t popcount_words_scalar(const W* w, index_t n) {
  std::uint64_t c = 0;
  for (index_t i = 0; i < n; ++i) c += static_cast<unsigned>(popcount(w[i]));
  return c;
}

#if defined(TILESPMSPV_SIMD_AVX2)
template <typename W>
inline std::uint64_t popcount_words(const W* w, index_t n) {
  // Nibble-LUT popcount (pshufb) accumulated through sad_epu8; width
  // agnostic because popcount distributes over bytes.
  const auto* p = reinterpret_cast<const std::uint8_t*>(w);
  std::size_t bytes = static_cast<std::size_t>(n) * sizeof(W);
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0F);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < bytes; ++i) {
    total += static_cast<unsigned>(popcount(p[i]));
  }
  return total;
}
#else
template <typename W>
inline std::uint64_t popcount_words(const W* w, index_t n) {
  // SSE2 has no byte shuffle; the per-word std::popcount already compiles
  // to popcnt/SWAR, so the scalar twin is the right tier here.
  return popcount_words_scalar(w, n);
}
#endif

// ---------------------------------------------------------------------
// or_reduce: OR of n contiguous words (the Push-CSC full-column merge).
// ---------------------------------------------------------------------
template <typename W>
inline W or_reduce_scalar(const W* w, index_t n) {
  W acc{0};
  for (index_t i = 0; i < n; ++i) acc |= w[i];
  return acc;
}

#if defined(TILESPMSPV_SIMD_AVX2) || defined(TILESPMSPV_SIMD_SSE2)
template <typename W>
inline W or_reduce(const W* w, index_t n) {
#if defined(TILESPMSPV_SIMD_AVX2)
  constexpr index_t kLane = static_cast<index_t>(32 / sizeof(W));
  __m256i acc = _mm256_setzero_si256();
  index_t i = 0;
  for (; i + kLane <= n; i += kLane) {
    acc = _mm256_or_si256(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i)));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t folded = lanes[0] | lanes[1] | lanes[2] | lanes[3];
#else
  constexpr index_t kLane = static_cast<index_t>(16 / sizeof(W));
  __m128i acc = _mm_setzero_si128();
  index_t i = 0;
  for (; i + kLane <= n; i += kLane) {
    acc = _mm_or_si128(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i)));
  }
  alignas(16) std::uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  std::uint64_t folded = lanes[0] | lanes[1];
#endif
  if constexpr (sizeof(W) < 8) folded |= folded >> 32;
  if constexpr (sizeof(W) < 4) folded |= folded >> 16;
  if constexpr (sizeof(W) < 2) folded |= folded >> 8;
  W out = static_cast<W>(folded);
  for (; i < n; ++i) out |= w[i];
  return out;
}
#else
template <typename W>
inline W or_reduce(const W* w, index_t n) {
  return or_reduce_scalar(w, n);
}
#endif

// ---------------------------------------------------------------------
// or_into: dst[i] |= src[i] (bulk visited-mask / frontier merges).
// ---------------------------------------------------------------------
template <typename W>
inline void or_into_scalar(W* dst, const W* src, index_t n) {
  for (index_t i = 0; i < n; ++i) dst[i] |= src[i];
}

#if defined(TILESPMSPV_SIMD_AVX2) || defined(TILESPMSPV_SIMD_SSE2)
template <typename W>
inline void or_into(W* dst, const W* src, index_t n) {
#if defined(TILESPMSPV_SIMD_AVX2)
  constexpr index_t kLane = static_cast<index_t>(32 / sizeof(W));
  index_t i = 0;
  for (; i + kLane <= n; i += kLane) {
    auto* d = reinterpret_cast<__m256i*>(dst + i);
    const __m256i v = _mm256_or_si256(
        _mm256_loadu_si256(d),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    _mm256_storeu_si256(d, v);
  }
#else
  constexpr index_t kLane = static_cast<index_t>(16 / sizeof(W));
  index_t i = 0;
  for (; i + kLane <= n; i += kLane) {
    auto* d = reinterpret_cast<__m128i*>(dst + i);
    const __m128i v = _mm_or_si128(
        _mm_loadu_si128(d),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
    _mm_storeu_si128(d, v);
  }
#endif
  for (; i < n; ++i) dst[i] |= src[i];
}
#else
template <typename W>
inline void or_into(W* dst, const W* src, index_t n) {
  or_into_scalar(dst, src, n);
}
#endif

// ---------------------------------------------------------------------
// andnot_words: out[i] = a[i] & ~b[i] (frontier candidates vs visited).
// ---------------------------------------------------------------------
template <typename W>
inline void andnot_words_scalar(const W* a, const W* b, W* out, index_t n) {
  for (index_t i = 0; i < n; ++i) out[i] = static_cast<W>(a[i] & ~b[i]);
}

#if defined(TILESPMSPV_SIMD_AVX2) || defined(TILESPMSPV_SIMD_SSE2)
template <typename W>
inline void andnot_words(const W* a, const W* b, W* out, index_t n) {
#if defined(TILESPMSPV_SIMD_AVX2)
  constexpr index_t kLane = static_cast<index_t>(32 / sizeof(W));
  index_t i = 0;
  for (; i + kLane <= n; i += kLane) {
    // _mm256_andnot_si256(x, y) = ~x & y.
    const __m256i v = _mm256_andnot_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
#else
  constexpr index_t kLane = static_cast<index_t>(16 / sizeof(W));
  index_t i = 0;
  for (; i + kLane <= n; i += kLane) {
    const __m128i v = _mm_andnot_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), v);
  }
#endif
  for (; i < n; ++i) out[i] = static_cast<W>(a[i] & ~b[i]);
}
#else
template <typename W>
inline void andnot_words(const W* a, const W* b, W* out, index_t n) {
  andnot_words_scalar(a, b, out, n);
}
#endif

// ---------------------------------------------------------------------
// collect_nonzero: append `base + i` for every w[i] != 0 to `out`
// (preallocated, capacity >= n); returns the count. This is the sparse
// slot form of a bit vector — the vector paths test whole 32/16-byte
// blocks against zero so long empty stretches cost one test per block.
// ---------------------------------------------------------------------
template <typename W>
inline index_t collect_nonzero_scalar(const W* w, index_t n, index_t base,
                                      index_t* out) {
  index_t k = 0;
  for (index_t i = 0; i < n; ++i) {
    if (w[i] != 0) out[k++] = base + i;
  }
  return k;
}

#if defined(TILESPMSPV_SIMD_AVX2) || defined(TILESPMSPV_SIMD_SSE2)
template <typename W>
inline index_t collect_nonzero(const W* w, index_t n, index_t base,
                               index_t* out) {
  index_t k = 0;
  index_t i = 0;
#if defined(TILESPMSPV_SIMD_AVX2)
  constexpr index_t kLane = static_cast<index_t>(32 / sizeof(W));
  for (; i + kLane <= n; i += kLane) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (_mm256_testz_si256(v, v)) continue;
    for (index_t j = i; j < i + kLane; ++j) {
      if (w[j] != 0) out[k++] = base + j;
    }
  }
#else
  constexpr index_t kLane = static_cast<index_t>(16 / sizeof(W));
  const __m128i zero = _mm_setzero_si128();
  for (; i + kLane <= n; i += kLane) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(v, zero)) == 0xFFFF) continue;
    for (index_t j = i; j < i + kLane; ++j) {
      if (w[j] != 0) out[k++] = base + j;
    }
  }
#endif
  for (; i < n; ++i) {
    if (w[i] != 0) out[k++] = base + i;
  }
  return k;
}
#else
template <typename W>
inline index_t collect_nonzero(const W* w, index_t n, index_t base,
                               index_t* out) {
  return collect_nonzero_scalar(w, n, base, out);
}
#endif

// ---------------------------------------------------------------------
// any_nonzero: true iff some word in [0, n) is non-zero.
// ---------------------------------------------------------------------
template <typename W>
inline bool any_nonzero_scalar(const W* w, index_t n) {
  for (index_t i = 0; i < n; ++i) {
    if (w[i] != 0) return true;
  }
  return false;
}

#if defined(TILESPMSPV_SIMD_AVX2) || defined(TILESPMSPV_SIMD_SSE2)
template <typename W>
inline bool any_nonzero(const W* w, index_t n) {
  index_t i = 0;
#if defined(TILESPMSPV_SIMD_AVX2)
  constexpr index_t kLane = static_cast<index_t>(32 / sizeof(W));
  for (; i + kLane <= n; i += kLane) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (!_mm256_testz_si256(v, v)) return true;
  }
#else
  constexpr index_t kLane = static_cast<index_t>(16 / sizeof(W));
  const __m128i zero = _mm_setzero_si128();
  for (; i + kLane <= n; i += kLane) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(v, zero)) != 0xFFFF) return true;
  }
#endif
  for (; i < n; ++i) {
    if (w[i] != 0) return true;
  }
  return false;
}
#else
template <typename W>
inline bool any_nonzero(const W* w, index_t n) {
  return any_nonzero_scalar(w, n);
}
#endif

// ---------------------------------------------------------------------
// and_broadcast_hits: given an NT-word mask block (one word per local
// row, as stored per tile) and a broadcast word x, return the word whose
// msb-first bit l is set iff masks[l] & x != 0. This is the whole inner
// loop of Push-CSR ("which unvisited local rows see the frontier word")
// and Pull-CSC ("which remaining local rows see a visited neighbor")
// evaluated for all NT rows at once; callers AND the result with their
// candidate word. Vector paths exist for 32/64-bit words; 8/16-bit tile
// sizes take the scalar twin.
// ---------------------------------------------------------------------
namespace detail {

/// Msb-first reversal tables mapping movemask lane bits (lane 0 = lowest
/// address = lowest local row) onto the tile word's bit order.
inline constexpr std::uint8_t kRev4[16] = {0, 8,  4, 12, 2, 10, 6, 14,
                                           1, 9,  5, 13, 3, 11, 7, 15};

inline constexpr std::uint8_t rev8(std::uint8_t b) {
  return static_cast<std::uint8_t>((kRev4[b & 0xF] << 4) | kRev4[b >> 4]);
}

}  // namespace detail

template <typename W>
inline W and_broadcast_hits_scalar(const W* masks, W x) {
  constexpr int NT = static_cast<int>(sizeof(W)) * 8;
  W out{0};
  for (int l = 0; l < NT; ++l) {
    if (masks[l] & x) out |= msb_bit<W>(l);
  }
  return out;
}

template <typename W>
inline W and_broadcast_hits(const W* masks, W x) {
  return and_broadcast_hits_scalar(masks, x);
}

#if defined(TILESPMSPV_SIMD_AVX2)
template <>
inline std::uint32_t and_broadcast_hits(const std::uint32_t* masks,
                                        std::uint32_t x) {
  const __m256i bx = _mm256_set1_epi32(static_cast<int>(x));
  const __m256i zero = _mm256_setzero_si256();
  std::uint32_t out = 0;
  for (int base = 0; base < 32; base += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(masks + base));
    const __m256i eq = _mm256_cmpeq_epi32(_mm256_and_si256(v, bx), zero);
    const auto zmask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    const auto hits = static_cast<std::uint8_t>(~zmask & 0xFFu);
    out |= static_cast<std::uint32_t>(detail::rev8(hits)) << (24 - base);
  }
  return out;
}

template <>
inline std::uint64_t and_broadcast_hits(const std::uint64_t* masks,
                                        std::uint64_t x) {
  const __m256i bx = _mm256_set1_epi64x(static_cast<long long>(x));
  const __m256i zero = _mm256_setzero_si256();
  std::uint64_t out = 0;
  for (int base = 0; base < 64; base += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(masks + base));
    const __m256i eq = _mm256_cmpeq_epi64(_mm256_and_si256(v, bx), zero);
    const auto zmask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    const unsigned hits = ~zmask & 0xFu;
    out |= static_cast<std::uint64_t>(detail::kRev4[hits]) << (60 - base);
  }
  return out;
}
#elif defined(TILESPMSPV_SIMD_SSE2)
template <>
inline std::uint32_t and_broadcast_hits(const std::uint32_t* masks,
                                        std::uint32_t x) {
  const __m128i bx = _mm_set1_epi32(static_cast<int>(x));
  const __m128i zero = _mm_setzero_si128();
  std::uint32_t out = 0;
  for (int base = 0; base < 32; base += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(masks + base));
    const __m128i eq = _mm_cmpeq_epi32(_mm_and_si128(v, bx), zero);
    const auto zmask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
    const unsigned hits = ~zmask & 0xFu;
    out |= static_cast<std::uint32_t>(detail::kRev4[hits]) << (28 - base);
  }
  return out;
}

template <>
inline std::uint64_t and_broadcast_hits(const std::uint64_t* masks,
                                        std::uint64_t x) {
  // SSE2 has no 64-bit compare; a 64-bit lane is zero iff both of its
  // 32-bit halves compare equal to zero (adjacent movemask_ps bit pairs).
  const __m128i bx = _mm_set1_epi64x(static_cast<long long>(x));
  const __m128i zero = _mm_setzero_si128();
  std::uint64_t out = 0;
  for (int base = 0; base < 64; base += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(masks + base));
    const __m128i eq = _mm_cmpeq_epi32(_mm_and_si128(v, bx), zero);
    const auto m = static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
    if ((m & 0x3u) != 0x3u) out |= msb_bit<std::uint64_t>(base);
    if ((m & 0xCu) != 0xCu) out |= msb_bit<std::uint64_t>(base + 1);
  }
  return out;
}
#endif

}  // namespace tilespmspv::bitk
