// Minimal command-line flag parser for the CLI tool and benchmark
// harnesses: --key value pairs, boolean switches, and positional words.
#pragma once

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

namespace tilespmspv {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      tokens_.emplace_back(argv[i]);
    }
  }

  /// True if the switch is present (e.g. "--verbose").
  bool has(const std::string& flag) const {
    for (const auto& t : tokens_) {
      if (t == flag) return true;
    }
    return false;
  }

  /// Value following the flag, or `def` when absent. Throws if the flag
  /// is present but the value is missing.
  std::string get(const std::string& flag, const std::string& def = "") const {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i] == flag) {
        if (i + 1 >= tokens_.size()) {
          throw std::invalid_argument("missing value for " + flag);
        }
        return tokens_[i + 1];
      }
    }
    return def;
  }

  long get_int(const std::string& flag, long def) const {
    const std::string v = get(flag);
    return v.empty() ? def : std::strtol(v.c_str(), nullptr, 10);
  }

  double get_double(const std::string& flag, double def) const {
    const std::string v = get(flag);
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }

  /// First `--flag` token not in `known`, or "" when every flag is known.
  /// Flag values and positional words are never checked.
  std::string first_unknown_flag(
      const std::vector<std::string>& known) const {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i].rfind("--", 0) != 0) continue;
      bool found = false;
      for (const auto& k : known) {
        if (tokens_[i] == k) {
          found = true;
          break;
        }
      }
      if (!found) return tokens_[i];
      // A known switch consumes its value token unless the next token is
      // also a flag, mirroring positional(); the value is not a flag even
      // when it happens to contain dashes.
      if (i + 1 < tokens_.size() && tokens_[i + 1].rfind("--", 0) != 0) {
        ++i;
      }
    }
    return "";
  }

  /// Rejects typo'd flags with a usage error: throws std::invalid_argument
  /// naming the offender when any `--flag` is not in `known`. Silent
  /// acceptance is worse than an error — a misspelled `--metrics` used to
  /// drop the requested output on the floor.
  void reject_unknown(const std::vector<std::string>& known) const {
    const std::string bad = first_unknown_flag(known);
    if (!bad.empty()) {
      throw std::invalid_argument("unknown flag '" + bad + "'");
    }
  }

  /// Positional arguments (tokens that are not flags or flag values).
  std::vector<std::string> positional() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i].rfind("--", 0) == 0) {
        // A switch consumes its value token unless the next token is also
        // a flag (boolean switch).
        if (i + 1 < tokens_.size() && tokens_[i + 1].rfind("--", 0) != 0) {
          ++i;
        }
      } else {
        out.push_back(tokens_[i]);
      }
    }
    return out;
  }

 private:
  std::vector<std::string> tokens_;
};

}  // namespace tilespmspv
