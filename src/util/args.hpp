// Minimal command-line flag parser for the CLI tool and benchmark
// harnesses: --key value pairs, boolean switches, and positional words.
#pragma once

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

namespace tilespmspv {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      tokens_.emplace_back(argv[i]);
    }
  }

  /// True if the switch is present (e.g. "--verbose").
  bool has(const std::string& flag) const {
    for (const auto& t : tokens_) {
      if (t == flag) return true;
    }
    return false;
  }

  /// Value following the flag, or `def` when absent. Throws if the flag
  /// is present but the value is missing.
  std::string get(const std::string& flag, const std::string& def = "") const {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i] == flag) {
        if (i + 1 >= tokens_.size()) {
          throw std::invalid_argument("missing value for " + flag);
        }
        return tokens_[i + 1];
      }
    }
    return def;
  }

  long get_int(const std::string& flag, long def) const {
    const std::string v = get(flag);
    return v.empty() ? def : std::strtol(v.c_str(), nullptr, 10);
  }

  double get_double(const std::string& flag, double def) const {
    const std::string v = get(flag);
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }

  /// Positional arguments (tokens that are not flags or flag values).
  std::vector<std::string> positional() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i].rfind("--", 0) == 0) {
        // A switch consumes its value token unless the next token is also
        // a flag (boolean switch).
        if (i + 1 < tokens_.size() && tokens_[i + 1].rfind("--", 0) != 0) {
          ++i;
        }
      } else {
        out.push_back(tokens_[i]);
      }
    }
    return out;
  }

 private:
  std::vector<std::string> tokens_;
};

}  // namespace tilespmspv
