#include "util/table.hpp"

#include <cassert>
#include <cstdio>
#include <iomanip>

namespace tilespmspv {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_count(long long v) {
  char buf[64];
  if (v >= 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%lldM", v / 1'000'000);
  } else if (v >= 10'000) {
    std::snprintf(buf, sizeof(buf), "%lldK", v / 1'000);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld", v);
  }
  return buf;
}

}  // namespace tilespmspv
