// Bit-manipulation helpers for the bitmask tile formats. The BFS kernels in
// the paper compress each tile row/column into one machine word; these
// wrappers pick the right word type per tile size and provide the popcount /
// scan primitives the kernels need.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <type_traits>

namespace tilespmspv {

/// Word type whose bit width equals the tile size NT (paper §3.4: "32
/// corresponds to the bit length of the unsigned integer, and 64 to unsigned
/// long long").
template <int NT>
struct BitWord;

template <>
struct BitWord<8> {
  using type = std::uint8_t;
};
template <>
struct BitWord<16> {
  using type = std::uint16_t;
};
template <>
struct BitWord<32> {
  using type = std::uint32_t;
};
template <>
struct BitWord<64> {
  using type = std::uint64_t;
};

template <int NT>
using bitword_t = typename BitWord<NT>::type;

// Layout guards: a bitmask tile row/column must be exactly one NT-bit
// unsigned machine word — the bitk:: kernels and the serialized tile
// formats both assume bit i of a word is a real matrix position, with no
// padding bits (paper §3.4).
static_assert(sizeof(bitword_t<8>) * 8 == 8 && sizeof(bitword_t<16>) * 8 == 16 &&
                  sizeof(bitword_t<32>) * 8 == 32 &&
                  sizeof(bitword_t<64>) * 8 == 64,
              "bitword_t<NT> must be exactly NT bits wide");
static_assert(std::is_unsigned_v<bitword_t<8>> &&
                  std::is_unsigned_v<bitword_t<16>> &&
                  std::is_unsigned_v<bitword_t<32>> &&
                  std::is_unsigned_v<bitword_t<64>>,
              "bitmask words must be unsigned so shifts and ~ stay defined");

/// Set bit `i` counting from the most significant bit, matching the paper's
/// figures where the first vector element maps to the leading bit (e.g. the
/// length-4 tile {1,0,0,0} is written as the value 8).
template <typename W>
constexpr W msb_bit(int i) {
  constexpr int bits = static_cast<int>(sizeof(W) * 8);
  return static_cast<W>(W{1} << (bits - 1 - i));
}

/// Tests bit `i` counting from the most significant bit.
template <typename W>
constexpr bool test_msb_bit(W w, int i) {
  return (w & msb_bit<W>(i)) != 0;
}

template <typename W>
constexpr int popcount(W w) {
  return std::popcount(static_cast<std::make_unsigned_t<W>>(w));
}

/// Index (msb-first) of the highest set bit.
///
/// Precondition: w != 0. For w == 0 countl_zero returns the word width,
/// which msb_bit would turn into an out-of-range shift (UB) at every call
/// site that feeds the result back into a bit mask — so the precondition
/// is asserted here rather than silently returning a poison index. Callers
/// that may hold an empty word must branch first (the BFS kernels and
/// BitVector all guard with `w != 0` / `active != 0` before scanning).
template <typename W>
constexpr int first_set_msb(W w) {
  assert(w != 0 && "first_set_msb requires a non-zero word");
  return std::countl_zero(static_cast<std::make_unsigned_t<W>>(w));
}

/// Visits the msb-first index of every set bit in `w`. Safe for w == 0
/// (visits nothing) — the loop condition is checked before the first scan,
/// so no countl_zero result is ever converted into a shift amount for an
/// empty word.
template <typename W, typename Fn>
void for_each_set_bit(W w, Fn&& fn) {
  using U = std::make_unsigned_t<W>;
  auto u = static_cast<U>(w);
  while (u != 0) {
    const int i = std::countl_zero(u);
    fn(i);
    u = static_cast<U>(u & static_cast<U>(~msb_bit<U>(i)));
  }
}

}  // namespace tilespmspv
