// Common scalar and index types used across the library.
//
// The library follows the paper's conventions: matrices are indexed with
// 32-bit signed integers (large enough for every SuiteSparse matrix and for
// the synthetic suite) and values default to double precision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace tilespmspv {

/// Row/column index type. Signed so that -1 can serve as the "empty tile"
/// sentinel used by the tiled vector format (paper Fig. 3).
using index_t = std::int32_t;

/// Offset type for nonzero positions (CSR row pointers etc.). 64-bit so
/// matrices with more than 2^31 nonzeros are representable.
using offset_t = std::int64_t;

/// Default numeric value type.
using value_t = double;

/// Sentinel marking an empty tile slot in tiled vector index arrays.
inline constexpr index_t kEmptyTile = -1;

/// Ceiling division for non-negative integers. Written without the usual
/// (a + b - 1) so a near-max `a` (e.g. header dims from an untrusted
/// stream) cannot overflow.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return a / b + (a % b != T{0} ? T{1} : T{0});
}

/// Rounds `a` up to the next multiple of `b`.
template <typename T>
constexpr T round_up(T a, T b) {
  return ceil_div(a, b) * b;
}

}  // namespace tilespmspv
