// Console table / CSV rendering for the benchmark harnesses. Every bench
// binary prints the rows the corresponding paper table or figure reports;
// this keeps that output aligned and optionally mirrors it to CSV so the
// figures can be re-plotted.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace tilespmspv {

/// A simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  void print(std::ostream& os) const;

  /// Renders as comma-separated values (headers first).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals (fixed notation).
std::string fmt(double v, int digits = 2);

/// Formats a count with thousands grouping disabled (plain digits) but
/// abbreviated to K/M for readability, e.g. 503000 -> "503K".
std::string fmt_count(long long v);

}  // namespace tilespmspv
