// Small deterministic PRNG (xoshiro256**) used everywhere randomness is
// needed. The standard <random> engines are avoided in hot paths because
// their speed and exact sequences vary across standard libraries; the
// generators here make the synthetic suite bit-reproducible across builds.
#pragma once

#include <cstdint>

namespace tilespmspv {

/// xoshiro256** by Blackman & Vigna (public domain reference constants).
class Prng {
 public:
  explicit Prng(std::uint64_t seed = 1) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      s = t ^ (t >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). `bound` must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free variant is overkill here; a
    // simple 128-bit multiply keeps the distribution unbiased enough for
    // workload generation while staying branch-free.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with probability `p`.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace tilespmspv
