// Minimal fixed-width SIMD layer for the SpMSpV hot loops.
//
// Three tiers, selected at compile time:
//   - AVX2 (+FMA when available): 4-wide double lanes with hardware gather
//     for the xt[local_col[i]] indirection;
//   - SSE2: 2-wide double lanes (scalar loads feeding vector arithmetic —
//     x86-64 baseline, no gather instruction);
//   - scalar: guaranteed plain-C++ loops, also what the TILESPMSPV_NO_SIMD
//     CMake option forces for differential testing and odd targets.
//
// Every vector micro-kernel has a `*_scalar` twin with identical semantics
// compiled unconditionally, so a single binary can differentially test the
// active tier against the guaranteed-scalar version (see
// tests/test_fuzz_differential.cpp). Kernels only change the order in which
// partial products are summed, never which products are formed, so the
// observability counters (payload_macs etc.) are unaffected by the tier.
#pragma once  // lint:hot-path-file

#include <cstdint>
#include <cstring>

#if !defined(TILESPMSPV_NO_SIMD)
#if defined(__AVX2__)
#define TILESPMSPV_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define TILESPMSPV_SIMD_SSE2 1
#include <emmintrin.h>
#endif
#endif  // !TILESPMSPV_NO_SIMD

namespace tilespmspv::simd {

#if defined(TILESPMSPV_SIMD_AVX2)
/// Gather wrapper over the masked intrinsic with a zeroed source: the plain
/// _mm256_i32gather_pd takes an undefined source vector, which GCC's header
/// implementation reports as maybe-uninitialized under -Werror.
/// Intrinsic wrapper, not a kernel: no scalar twin. lint:allow(simd-twin)
inline __m256d gather_pd(const double* base, __m128i idx) {
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, idx,
                                  _mm256_castsi256_pd(_mm256_set1_epi64x(-1)),
                                  8);
}
#endif

/// Name of the tier the library was compiled with (exposed by benches and
/// the CLI so recorded numbers carry their ISA).
inline constexpr const char* active_isa() {
#if defined(TILESPMSPV_SIMD_AVX2)
  return "avx2";
#elif defined(TILESPMSPV_SIMD_SSE2)
  return "sse2";
#else
  return "scalar";
#endif
}

// ---------------------------------------------------------------------
// gather_mul: prod[i] = vals[i] * xt[cols[i]] for i in [0, n).
// The vectorizable half of the dense-in-tile accumulation: the gather and
// multiply are data-parallel; the per-row reduction of `prod` stays with
// the caller, which knows the row boundaries.
// ---------------------------------------------------------------------
inline void gather_mul_scalar(const double* vals, const std::uint8_t* cols,
                              int n, const double* xt, double* prod) {
  for (int i = 0; i < n; ++i) prod[i] = vals[i] * xt[cols[i]];
}

#if defined(TILESPMSPV_SIMD_AVX2)
inline void gather_mul(const double* vals, const std::uint8_t* cols, int n,
                       const double* xt, double* prod) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint32_t packed4;
    std::memcpy(&packed4, cols + i, 4);
    const __m128i idx =
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed4)));
    const __m256d x = gather_pd(xt, idx);
    const __m256d v = _mm256_loadu_pd(vals + i);
    _mm256_storeu_pd(prod + i, _mm256_mul_pd(v, x));
  }
  for (; i < n; ++i) prod[i] = vals[i] * xt[cols[i]];
}
#elif defined(TILESPMSPV_SIMD_SSE2)
inline void gather_mul(const double* vals, const std::uint8_t* cols, int n,
                       const double* xt, double* prod) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_set_pd(xt[cols[i + 1]], xt[cols[i]]);
    const __m128d v = _mm_loadu_pd(vals + i);
    _mm_storeu_pd(prod + i, _mm_mul_pd(v, x));
  }
  for (; i < n; ++i) prod[i] = vals[i] * xt[cols[i]];
}
#else
inline void gather_mul(const double* vals, const std::uint8_t* cols, int n,
                       const double* xt, double* prod) {
  gather_mul_scalar(vals, cols, n, xt, prod);
}
#endif

// ---------------------------------------------------------------------
// dot_gather: sum_i vals[i] * xt[cols[i]] — one intra-tile CSR row against
// a dense vector tile. Used when a single row is long enough that lane
// partials amortize (dense tiles at large nt).
// ---------------------------------------------------------------------
inline double dot_gather_scalar(const double* vals, const std::uint8_t* cols,
                                int n, const double* xt) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += vals[i] * xt[cols[i]];
  return sum;
}

#if defined(TILESPMSPV_SIMD_AVX2)
inline double dot_gather(const double* vals, const std::uint8_t* cols, int n,
                         const double* xt) {
  __m256d acc = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint32_t packed4;
    std::memcpy(&packed4, cols + i, 4);
    const __m128i idx =
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed4)));
    const __m256d x = gather_pd(xt, idx);
    const __m256d v = _mm256_loadu_pd(vals + i);
#if defined(__FMA__)
    acc = _mm256_fmadd_pd(v, x, acc);
#else
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, x));
#endif
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) sum += vals[i] * xt[cols[i]];
  return sum;
}
#elif defined(TILESPMSPV_SIMD_SSE2)
inline double dot_gather(const double* vals, const std::uint8_t* cols, int n,
                         const double* xt) {
  __m128d acc = _mm_setzero_pd();
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_set_pd(xt[cols[i + 1]], xt[cols[i]]);
    const __m128d v = _mm_loadu_pd(vals + i);
    acc = _mm_add_pd(acc, _mm_mul_pd(v, x));
  }
  double lanes[2];
  _mm_storeu_pd(lanes, acc);
  double sum = lanes[0] + lanes[1];
  for (; i < n; ++i) sum += vals[i] * xt[cols[i]];
  return sum;
}
#else
inline double dot_gather(const double* vals, const std::uint8_t* cols, int n,
                         const double* xt) {
  return dot_gather_scalar(vals, cols, n, xt);
}
#endif

// ---------------------------------------------------------------------
// range_sum: sum of a contiguous run prod[0..n) — the per-row reduction
// that follows gather_mul. Short runs stay scalar; the vector path kicks
// in from 4 (AVX2) / 2 (SSE2) elements.
// ---------------------------------------------------------------------
inline double range_sum_scalar(const double* prod, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += prod[i];
  return sum;
}

#if defined(TILESPMSPV_SIMD_AVX2)
inline double range_sum(const double* prod, int n) {
  __m256d acc = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(prod + i));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) sum += prod[i];
  return sum;
}
#elif defined(TILESPMSPV_SIMD_SSE2)
inline double range_sum(const double* prod, int n) {
  __m128d acc = _mm_setzero_pd();
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = _mm_add_pd(acc, _mm_loadu_pd(prod + i));
  }
  double lanes[2];
  _mm_storeu_pd(lanes, acc);
  double sum = lanes[0] + lanes[1];
  for (; i < n; ++i) sum += prod[i];
  return sum;
}
#else
inline double range_sum(const double* prod, int n) {
  return range_sum_scalar(prod, n);
}
#endif

// ---------------------------------------------------------------------
// dot_contig: sum_i vals[i] * x[i] — an intra-tile row whose local columns
// are consecutive (the banded/FEM regime). The vector-tile operand is then
// a contiguous slice, so the dot needs plain loads instead of gathers.
// ---------------------------------------------------------------------
inline double dot_contig_scalar(const double* vals, const double* x, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += vals[i] * x[i];
  return sum;
}

#if defined(TILESPMSPV_SIMD_AVX2)
inline double dot_contig(const double* vals, const double* x, int n) {
  __m256d acc = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(vals + i);
    const __m256d xv = _mm256_loadu_pd(x + i);
#if defined(__FMA__)
    acc = _mm256_fmadd_pd(v, xv, acc);
#else
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, xv));
#endif
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) sum += vals[i] * x[i];
  return sum;
}
#elif defined(TILESPMSPV_SIMD_SSE2)
inline double dot_contig(const double* vals, const double* x, int n) {
  __m128d acc = _mm_setzero_pd();
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_loadu_pd(vals + i);
    const __m128d xv = _mm_loadu_pd(x + i);
    acc = _mm_add_pd(acc, _mm_mul_pd(v, xv));
  }
  double lanes[2];
  _mm_storeu_pd(lanes, acc);
  double sum = lanes[0] + lanes[1];
  for (; i < n; ++i) sum += vals[i] * x[i];
  return sum;
}
#else
inline double dot_contig(const double* vals, const double* x, int n) {
  return dot_contig_scalar(vals, x, n);
}
#endif

// ---------------------------------------------------------------------
// packed_flat_scan: acc[row(b)] += vals[i] * xt[col(b)] over a packed-byte
// tile (row in the high nibble, column in the low nibble — the §3.2.1
// encoding). Products are formed 4-wide (gather on the low nibbles), the
// row scatter stays scalar: x86 has no conflict-safe scatter-add below
// AVX-512CD, and rows repeat within a tile.
// ---------------------------------------------------------------------
inline void packed_flat_scan_scalar(const double* vals,
                                    const std::uint8_t* packed, int n,
                                    const double* xt, double* acc) {
  for (int i = 0; i < n; ++i) {
    const std::uint8_t b = packed[i];
    acc[b >> 4] += vals[i] * xt[b & 0xF];
  }
}

#if defined(TILESPMSPV_SIMD_AVX2)
inline void packed_flat_scan(const double* vals, const std::uint8_t* packed,
                             int n, const double* xt, double* acc) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint32_t four;
    std::memcpy(&four, packed + i, 4);
    const __m128i bytes = _mm_cvtsi32_si128(static_cast<int>(four));
    const __m128i widened = _mm_cvtepu8_epi32(bytes);
    const __m128i colidx = _mm_and_si128(widened, _mm_set1_epi32(0xF));
    const __m256d x = gather_pd(xt, colidx);
    const __m256d v = _mm256_loadu_pd(vals + i);
    double prod[4];
    _mm256_storeu_pd(prod, _mm256_mul_pd(v, x));
    acc[(four >> 4) & 0xF] += prod[0];
    acc[(four >> 12) & 0xF] += prod[1];
    acc[(four >> 20) & 0xF] += prod[2];
    acc[(four >> 28) & 0xF] += prod[3];
  }
  for (; i < n; ++i) {
    const std::uint8_t b = packed[i];
    acc[b >> 4] += vals[i] * xt[b & 0xF];
  }
}
#elif defined(TILESPMSPV_SIMD_SSE2)
inline void packed_flat_scan(const double* vals, const std::uint8_t* packed,
                             int n, const double* xt, double* acc) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const std::uint8_t b0 = packed[i], b1 = packed[i + 1];
    const __m128d x = _mm_set_pd(xt[b1 & 0xF], xt[b0 & 0xF]);
    const __m128d v = _mm_loadu_pd(vals + i);
    double prod[2];
    _mm_storeu_pd(prod, _mm_mul_pd(v, x));
    acc[b0 >> 4] += prod[0];
    acc[b1 >> 4] += prod[1];
  }
  for (; i < n; ++i) {
    const std::uint8_t b = packed[i];
    acc[b >> 4] += vals[i] * xt[b & 0xF];
  }
}
#else
inline void packed_flat_scan(const double* vals, const std::uint8_t* packed,
                             int n, const double* xt, double* acc) {
  packed_flat_scan_scalar(vals, packed, n, xt, acc);
}
#endif

// ---------------------------------------------------------------------
// axpy_lanes: acc[v] += a * x[v] for v in [0, k) — the block-of-k SpMSpM
// engine's inner step. One matrix nonzero `a` is broadcast and FMA'd
// across the k batch lanes of a lane-interleaved accumulator/payload row,
// so the nonzero (and its metadata) is read once for the whole batch.
// ---------------------------------------------------------------------
inline void axpy_lanes_scalar(double a, const double* x, double* acc, int k) {
  for (int v = 0; v < k; ++v) acc[v] += a * x[v];
}

#if defined(TILESPMSPV_SIMD_AVX2)
inline void axpy_lanes(double a, const double* x, double* acc, int k) {
  const __m256d av = _mm256_set1_pd(a);
  int v = 0;
  for (; v + 4 <= k; v += 4) {
    const __m256d xv = _mm256_loadu_pd(x + v);
    const __m256d cv = _mm256_loadu_pd(acc + v);
#if defined(__FMA__)
    _mm256_storeu_pd(acc + v, _mm256_fmadd_pd(av, xv, cv));
#else
    _mm256_storeu_pd(acc + v, _mm256_add_pd(cv, _mm256_mul_pd(av, xv)));
#endif
  }
  for (; v < k; ++v) acc[v] += a * x[v];
}
#elif defined(TILESPMSPV_SIMD_SSE2)
inline void axpy_lanes(double a, const double* x, double* acc, int k) {
  const __m128d av = _mm_set1_pd(a);
  int v = 0;
  for (; v + 2 <= k; v += 2) {
    const __m128d xv = _mm_loadu_pd(x + v);
    const __m128d cv = _mm_loadu_pd(acc + v);
    _mm_storeu_pd(acc + v, _mm_add_pd(cv, _mm_mul_pd(av, xv)));
  }
  for (; v < k; ++v) acc[v] += a * x[v];
}
#else
inline void axpy_lanes(double a, const double* x, double* acc, int k) {
  axpy_lanes_scalar(a, x, acc, k);
}
#endif

// ---------------------------------------------------------------------
// lane_panel_update: acc[v] += sum_i vals[i] * x[cols[i]*stride + v] for
// v in [0, w), w <= 4 — one tile row × one 4-lane group of the SpMSpM
// accumulator block. Keeping the panel in a register across the row's
// entries turns the engine's per-entry accumulator load/store (2 × k
// doubles of L1 traffic per nonzero) into one load/store per (row, group),
// which is what makes the block path arithmetic-bound on dense tiles.
// ---------------------------------------------------------------------
inline void lane_panel_update_scalar(const double* vals,
                                     const std::uint8_t* cols, int n,
                                     int stride, int w, const double* x,
                                     double* acc) {
  for (int i = 0; i < n; ++i) {
    const double a = vals[i];
    const double* xr = x + static_cast<std::size_t>(cols[i]) *
                               static_cast<std::size_t>(stride);
    for (int v = 0; v < w; ++v) acc[v] += a * xr[v];
  }
}

#if defined(TILESPMSPV_SIMD_AVX2)
inline void lane_panel_update(const double* vals, const std::uint8_t* cols,
                              int n, int stride, int w, const double* x,
                              double* acc) {
  if (w != 4) {
    lane_panel_update_scalar(vals, cols, n, stride, w, x, acc);
    return;
  }
#if defined(__FMA__)
#define TILESPMSPV_PANEL_STEP(A, I)                                    \
  A = _mm256_fmadd_pd(                                                 \
      _mm256_set1_pd(vals[I]),                                         \
      _mm256_loadu_pd(x + static_cast<std::size_t>(cols[I]) *          \
                              static_cast<std::size_t>(stride)),       \
      A)
#else
#define TILESPMSPV_PANEL_STEP(A, I)                                    \
  A = _mm256_add_pd(                                                   \
      A, _mm256_mul_pd(                                                \
             _mm256_set1_pd(vals[I]),                                  \
             _mm256_loadu_pd(x + static_cast<std::size_t>(cols[I]) *   \
                                     static_cast<std::size_t>(stride))))
#endif
  // Four independent accumulator chains hide the FMA latency; they are
  // summed once at the end (a different association than the scalar twin,
  // same set of products — the layer's usual contract).
  __m256d a0 = _mm256_loadu_pd(acc);
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    TILESPMSPV_PANEL_STEP(a0, i);
    TILESPMSPV_PANEL_STEP(a1, i + 1);
    TILESPMSPV_PANEL_STEP(a2, i + 2);
    TILESPMSPV_PANEL_STEP(a3, i + 3);
  }
  for (; i < n; ++i) TILESPMSPV_PANEL_STEP(a0, i);
#undef TILESPMSPV_PANEL_STEP
  _mm256_storeu_pd(acc, _mm256_add_pd(_mm256_add_pd(a0, a1),
                                      _mm256_add_pd(a2, a3)));
}
#elif defined(TILESPMSPV_SIMD_SSE2)
inline void lane_panel_update(const double* vals, const std::uint8_t* cols,
                              int n, int stride, int w, const double* x,
                              double* acc) {
  if (w != 4) {
    lane_panel_update_scalar(vals, cols, n, stride, w, x, acc);
    return;
  }
  // Two entries per iteration -> four independent 2-wide chains.
  __m128d a0 = _mm_loadu_pd(acc);
  __m128d a1 = _mm_loadu_pd(acc + 2);
  __m128d b0 = _mm_setzero_pd();
  __m128d b1 = _mm_setzero_pd();
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d av = _mm_set1_pd(vals[i]);
    const double* xr = x + static_cast<std::size_t>(cols[i]) *
                               static_cast<std::size_t>(stride);
    a0 = _mm_add_pd(a0, _mm_mul_pd(av, _mm_loadu_pd(xr)));
    a1 = _mm_add_pd(a1, _mm_mul_pd(av, _mm_loadu_pd(xr + 2)));
    const __m128d bv = _mm_set1_pd(vals[i + 1]);
    const double* xs = x + static_cast<std::size_t>(cols[i + 1]) *
                               static_cast<std::size_t>(stride);
    b0 = _mm_add_pd(b0, _mm_mul_pd(bv, _mm_loadu_pd(xs)));
    b1 = _mm_add_pd(b1, _mm_mul_pd(bv, _mm_loadu_pd(xs + 2)));
  }
  for (; i < n; ++i) {
    const __m128d av = _mm_set1_pd(vals[i]);
    const double* xr = x + static_cast<std::size_t>(cols[i]) *
                               static_cast<std::size_t>(stride);
    a0 = _mm_add_pd(a0, _mm_mul_pd(av, _mm_loadu_pd(xr)));
    a1 = _mm_add_pd(a1, _mm_mul_pd(av, _mm_loadu_pd(xr + 2)));
  }
  _mm_storeu_pd(acc, _mm_add_pd(a0, b0));
  _mm_storeu_pd(acc + 2, _mm_add_pd(a1, b1));
}
#else
inline void lane_panel_update(const double* vals, const std::uint8_t* cols,
                              int n, int stride, int w, const double* x,
                              double* acc) {
  lane_panel_update_scalar(vals, cols, n, stride, w, x, acc);
}
#endif

// ---------------------------------------------------------------------
// lane_panel16_update: the 16-lane-wide sibling of lane_panel_update —
// acc[v] += sum_i vals[i] * x[cols[i]*stride + v] for v in [0, 16). Used
// by the SpMSpM engine for fully (or nearly fully) active 16-lane groups:
// four 4-wide accumulators cover the group, giving four independent FMA
// chains per entry while still paying the accumulator load/store once per
// (row, group) rather than once per nonzero.
// ---------------------------------------------------------------------
inline void lane_panel16_update_scalar(const double* vals,
                                       const std::uint8_t* cols, int n,
                                       int stride, const double* x,
                                       double* acc) {
  for (int i = 0; i < n; ++i) {
    const double a = vals[i];
    const double* xr = x + static_cast<std::size_t>(cols[i]) *
                               static_cast<std::size_t>(stride);
    for (int v = 0; v < 16; ++v) acc[v] += a * xr[v];
  }
}

#if defined(TILESPMSPV_SIMD_AVX2)
inline void lane_panel16_update(const double* vals, const std::uint8_t* cols,
                                int n, int stride, const double* x,
                                double* acc) {
  __m256d a0 = _mm256_loadu_pd(acc);
  __m256d a1 = _mm256_loadu_pd(acc + 4);
  __m256d a2 = _mm256_loadu_pd(acc + 8);
  __m256d a3 = _mm256_loadu_pd(acc + 12);
  for (int i = 0; i < n; ++i) {
    const __m256d av = _mm256_set1_pd(vals[i]);
    const double* xr = x + static_cast<std::size_t>(cols[i]) *
                               static_cast<std::size_t>(stride);
#if defined(__FMA__)
    a0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(xr), a0);
    a1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(xr + 4), a1);
    a2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(xr + 8), a2);
    a3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(xr + 12), a3);
#else
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(av, _mm256_loadu_pd(xr)));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(av, _mm256_loadu_pd(xr + 4)));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(av, _mm256_loadu_pd(xr + 8)));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(av, _mm256_loadu_pd(xr + 12)));
#endif
  }
  _mm256_storeu_pd(acc, a0);
  _mm256_storeu_pd(acc + 4, a1);
  _mm256_storeu_pd(acc + 8, a2);
  _mm256_storeu_pd(acc + 12, a3);
}
#elif defined(TILESPMSPV_SIMD_SSE2)
inline void lane_panel16_update(const double* vals, const std::uint8_t* cols,
                                int n, int stride, const double* x,
                                double* acc) {
  __m128d a[8];
  for (int g = 0; g < 8; ++g) a[g] = _mm_loadu_pd(acc + 2 * g);
  for (int i = 0; i < n; ++i) {
    const __m128d av = _mm_set1_pd(vals[i]);
    const double* xr = x + static_cast<std::size_t>(cols[i]) *
                               static_cast<std::size_t>(stride);
    for (int g = 0; g < 8; ++g) {
      a[g] = _mm_add_pd(a[g], _mm_mul_pd(av, _mm_loadu_pd(xr + 2 * g)));
    }
  }
  for (int g = 0; g < 8; ++g) _mm_storeu_pd(acc + 2 * g, a[g]);
}
#else
inline void lane_panel16_update(const double* vals, const std::uint8_t* cols,
                                int n, int stride, const double* x,
                                double* acc) {
  lane_panel16_update_scalar(vals, cols, n, stride, x, acc);
}
#endif

}  // namespace tilespmspv::simd
