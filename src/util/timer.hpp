// Wall-clock timing helpers for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace tilespmspv {

/// Monotonic wall-clock stopwatch measuring milliseconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last reset(), in milliseconds.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double elapsed_s() const { return elapsed_ms() * 1e-3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` once to warm caches, then `iters` more times, returning the
/// minimum per-run time in milliseconds. Minimum (not mean) is used so that
/// scheduler noise on a shared host does not distort algorithm comparisons.
template <typename Fn>
double time_best_ms(Fn&& fn, int iters = 3) {
  fn();  // warm-up
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.elapsed_ms());
  }
  return best;
}

}  // namespace tilespmspv
