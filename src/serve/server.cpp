#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "formats/validate.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"

namespace tilespmspv::serve {

namespace {

std::string error_line(const std::string& op, const std::string& msg) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("ok").value(false);
  if (!op.empty()) w.key("op").value(op);
  w.key("error").value(msg);
  w.end_object();
  return os.str();
}

/// Pulls a sparse vector out of a spmspv request's "indices"/"values"
/// arrays and validates it against the snapshot's column count — client
/// input is untrusted, so this is a trust boundary like the
/// deserializers.
SparseVec<value_t> parse_vector(const obs::JsonValue& req, index_t n) {
  const obs::JsonValue* idx = req.find("indices");
  const obs::JsonValue* vals = req.find("values");
  if (idx == nullptr || !idx->is_array()) {
    throw std::invalid_argument("missing 'indices' array");
  }
  SparseVec<value_t> x(n);
  x.reserve(idx->arr.size());
  for (std::size_t i = 0; i < idx->arr.size(); ++i) {
    if (!idx->arr[i].is_number()) {
      throw std::invalid_argument("'indices' must be numbers");
    }
    const double di = idx->arr[i].num;
    const auto ii = static_cast<index_t>(di);
    if (static_cast<double>(ii) != di || ii < 0 || ii >= n) {
      throw std::invalid_argument("index out of range for matrix columns");
    }
    value_t v = value_t{1};
    if (vals != nullptr && vals->is_array()) {
      if (vals->arr.size() != idx->arr.size()) {
        throw std::invalid_argument("'values' length must match 'indices'");
      }
      if (!vals->arr[i].is_number()) {
        throw std::invalid_argument("'values' must be numbers");
      }
      v = static_cast<value_t>(vals->arr[i].num);
    }
    x.idx.push_back(ii);
    x.vals.push_back(v);
  }
  const ValidationResult vr = validate_sparse_vec(x);
  if (!vr.ok()) {
    throw std::invalid_argument("vector failed validation: " + vr.message());
  }
  return x;
}

}  // namespace

void ServerStats::record(const std::string& op, double ms, bool ok) {
  std::lock_guard<std::mutex> g(mu_);
  OpStats* s = nullptr;
  for (auto& o : ops_) {
    if (o.op == op) {
      s = &o;
      break;
    }
  }
  if (s == nullptr) {
    ops_.push_back({op, 0, 0, {}});
    s = &ops_.back();
  }
  ++s->requests;
  if (!ok) ++s->errors;
  s->latency.add(ms);
}

void ServerStats::fill(obs::MetricsRegistry* reg) const {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& o : ops_) {
    const std::string p = "serve.op." + o.op + ".";
    reg->put_int(p + "requests", static_cast<std::int64_t>(o.requests));
    reg->put_int(p + "errors", static_cast<std::int64_t>(o.errors));
    if (o.latency.count() > 0) {
      reg->put_double(p + "p50_ms", o.latency.percentile(50.0));
      reg->put_double(p + "p95_ms", o.latency.percentile(95.0));
      reg->put_double(p + "p99_ms", o.latency.percentile(99.0));
    }
  }
}

Server::Server(const ServeConfig& cfg)
    : cfg_(cfg),
      pool_(cfg.threads),
      store_(cfg.cache_bytes),
      batcher_(BatchConfig{cfg.batch_k, cfg.deadline_ms}, &pool_) {}

Server::~Server() { stop(); }

std::string Server::handle_line(const std::string& line) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string op = "?";
  std::string resp;
  try {
    obs::JsonValue req;
    if (!obs::json_parse_value(line, &req) || !req.is_object()) {
      resp = error_line("", "malformed JSON request");
    } else {
      op = req.string_or("op", "");
      if (op == "ping") {
        resp = "{\"ok\":true,\"op\":\"ping\"}";
      } else if (op == "load" || op == "reload") {
        resp = do_load(req);
      } else if (op == "unload") {
        resp = do_unload(req);
      } else if (op == "list") {
        resp = do_list();
      } else if (op == "spmspv") {
        resp = do_spmspv(req);
      } else if (op == "bfs") {
        resp = do_bfs(req);
      } else if (op == "stats") {
        resp = do_stats();
      } else if (op == "shutdown") {
        {
          std::lock_guard<std::mutex> g(mu_);
          shutdown_requested_ = true;
        }
        resp = "{\"ok\":true,\"op\":\"shutdown\"}";
      } else {
        resp = error_line(op, "unknown op '" + op + "'");
      }
    }
  } catch (const std::exception& e) {
    resp = error_line(op, e.what());
  } catch (...) {
    resp = error_line(op, "unknown error");
  }
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const bool ok = resp.rfind("{\"ok\":true", 0) == 0;
  stats_.record(op.empty() ? "?" : op, ms, ok);
  return resp;
}

std::string Server::do_load(const obs::JsonValue& req) {
  const std::string path = req.string_or("path", "");
  const std::string suite = req.string_or("suite", "");
  const std::string alias = req.string_or("alias", "");
  if ((path.empty()) == (suite.empty())) {
    throw std::invalid_argument("load needs exactly one of 'path'/'suite'");
  }
  SnapshotPtr snap = path.empty()
                         ? load_snapshot_suite(suite, alias, cfg_.spmspv)
                         : load_snapshot_file(path, alias, cfg_.spmspv);
  std::vector<std::string> evicted;
  const std::string key = store_.put(snap, &evicted);
  // Re-read the entry: a reload swapped in a copy with a bumped epoch.
  SnapshotPtr live = store_.get(key);
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("ok").value(true);
  w.key("op").value("load");
  w.key("key").value(key);
  if (!alias.empty()) w.key("alias").value(alias);
  w.key("rows").value(static_cast<std::int64_t>(snap->rows));
  w.key("cols").value(static_cast<std::int64_t>(snap->cols));
  w.key("nnz").value(static_cast<std::int64_t>(snap->nnz));
  w.key("bytes").value(static_cast<std::uint64_t>(snap->bytes));
  w.key("epoch").value(live ? live->epoch : snap->epoch);
  w.key("evicted").begin_array();
  for (const auto& k : evicted) w.value(k);
  w.end_array();
  w.end_object();
  return os.str();
}

std::string Server::do_unload(const obs::JsonValue& req) {
  const std::string name = req.string_or("matrix", "");
  if (name.empty()) throw std::invalid_argument("unload needs 'matrix'");
  if (!store_.erase(name)) {
    return error_line("unload", "matrix '" + name + "' is not resident");
  }
  return "{\"ok\":true,\"op\":\"unload\"}";
}

std::string Server::do_list() {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("ok").value(true);
  w.key("op").value("list");
  w.key("matrices").begin_array();
  for (const auto& m : store_.list()) {
    w.begin_object();
    w.key("key").value(m.key);
    w.key("alias").value(m.alias);
    w.key("source").value(m.source);
    w.key("rows").value(static_cast<std::int64_t>(m.rows));
    w.key("cols").value(static_cast<std::int64_t>(m.cols));
    w.key("nnz").value(static_cast<std::int64_t>(m.nnz));
    w.key("bytes").value(static_cast<std::uint64_t>(m.bytes));
    w.key("epoch").value(m.epoch);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

std::string Server::do_spmspv(const obs::JsonValue& req) {
  const std::string name = req.string_or("matrix", "");
  SnapshotPtr snap = store_.get(name);
  if (!snap) {
    return error_line("spmspv", "matrix '" + name + "' is not resident");
  }
  SparseVec<value_t> x = parse_vector(req, snap->cols);
  // Admission: the future resolves when the batch containing this query
  // flushes (k reached or deadline hit).
  const std::uint64_t epoch = snap->epoch;
  SparseVec<value_t> y =
      batcher_.submit_spmspv(std::move(snap), std::move(x)).get();
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("ok").value(true);
  w.key("op").value("spmspv");
  w.key("epoch").value(epoch);
  w.key("n").value(static_cast<std::int64_t>(y.n));
  w.key("nnz").value(static_cast<std::int64_t>(y.nnz()));
  w.key("indices").begin_array();
  for (const index_t i : y.idx) w.value(static_cast<std::int64_t>(i));
  w.end_array();
  w.key("values").begin_array();
  for (const value_t v : y.vals) w.value(static_cast<double>(v));
  w.end_array();
  w.end_object();
  return os.str();
}

std::string Server::do_bfs(const obs::JsonValue& req) {
  const std::string name = req.string_or("matrix", "");
  SnapshotPtr snap = store_.get(name);
  if (!snap) {
    return error_line("bfs", "matrix '" + name + "' is not resident");
  }
  const double ds = req.number_or("source", -1.0);
  const auto source = static_cast<index_t>(ds);
  if (static_cast<double>(source) != ds) {
    throw std::invalid_argument("bfs needs an integer 'source'");
  }
  const std::uint64_t epoch = snap->epoch;
  std::vector<index_t> levels =
      batcher_.submit_bfs(std::move(snap), source).get();
  index_t reached = 0;
  for (const index_t l : levels) reached += (l >= 0) ? 1 : 0;
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("ok").value(true);
  w.key("op").value("bfs");
  w.key("epoch").value(epoch);
  w.key("n").value(static_cast<std::int64_t>(levels.size()));
  w.key("reached").value(static_cast<std::int64_t>(reached));
  w.key("levels").begin_array();
  for (const index_t l : levels) w.value(static_cast<std::int64_t>(l));
  w.end_array();
  w.end_object();
  return os.str();
}

std::string Server::do_stats() {
  obs::MetricsRegistry reg;
  const MatrixStore::Stats ss = store_.stats();
  reg.put_int("serve.store.entries", static_cast<std::int64_t>(ss.entries));
  reg.put_int("serve.store.resident_bytes",
              static_cast<std::int64_t>(ss.resident_bytes));
  reg.put_int("serve.store.hits", static_cast<std::int64_t>(ss.hits));
  reg.put_int("serve.store.misses", static_cast<std::int64_t>(ss.misses));
  reg.put_int("serve.store.evictions",
              static_cast<std::int64_t>(ss.evictions));
  reg.put_int("serve.store.swaps", static_cast<std::int64_t>(ss.swaps));
  const Batcher::Stats bs = batcher_.stats();
  reg.put_int("serve.batch.spmspv_queries",
              static_cast<std::int64_t>(bs.spmspv_queries));
  reg.put_int("serve.batch.bfs_queries",
              static_cast<std::int64_t>(bs.bfs_queries));
  reg.put_int("serve.batch.flushes", static_cast<std::int64_t>(bs.flushes));
  reg.put_int("serve.batch.batched_flushes",
              static_cast<std::int64_t>(bs.batched_flushes));
  reg.put_int("serve.batch.max_flush_k",
              static_cast<std::int64_t>(bs.max_flush_k));
  reg.put_int("serve.batch.errors", static_cast<std::int64_t>(bs.errors));
  stats_.fill(&reg);
  reg.add_counters(obs::counters_snapshot());
  std::ostringstream metrics;
  reg.write_json(metrics);
  // The registry pretty-prints; the NDJSON framing needs one physical
  // line. Newlines only ever appear between JSON tokens (string values
  // escape them), so dropping them is safe.
  std::string flat = metrics.str();
  std::erase_if(flat, [](char c) { return c == '\n' || c == '\r'; });
  std::ostringstream os;
  os << "{\"ok\":true,\"op\":\"stats\",\"metrics\":" << flat << "}";
  return os.str();
}

bool Server::shutdown_requested() const {
  std::lock_guard<std::mutex> g(mu_);
  return shutdown_requested_;
}

bool Server::start(std::string* err) {
  std::lock_guard<std::mutex> g(mu_);
  if (transport_running_) return true;
  if (cfg_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    if (err != nullptr) *err = "socket path too long";
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err != nullptr) *err = std::strerror(errno);
    return false;
  }
  ::unlink(cfg_.socket_path.c_str());  // stale socket from a prior run
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    if (err != nullptr) *err = std::strerror(errno);
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  transport_running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::stop() {
  std::vector<std::thread> to_join;
  std::thread accept_join;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!transport_running_) return;
    transport_running_ = false;
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    to_join.swap(conn_threads_);
    accept_join = std::move(accept_thread_);
  }
  if (accept_join.joinable()) accept_join.join();
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
  ::unlink(cfg_.socket_path.c_str());
}

void Server::accept_loop() {
  for (;;) {
    int fd = -1;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (!transport_running_) return;
      fd = listen_fd_;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (pr < 0 && errno != EINTR) return;
    if (pr <= 0) continue;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener closed by stop()
    }
    std::lock_guard<std::mutex> g(mu_);
    if (!transport_running_) {
      ::close(conn);
      return;
    }
    conn_fds_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { connection_loop(conn); });
  }
}

void Server::connection_loop(int fd) {
  std::string buf;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(r));
    std::size_t nl = 0;
    while (alive && (nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string resp = handle_line(line);
      resp.push_back('\n');
      std::size_t sent = 0;
      while (sent < resp.size()) {
        const ssize_t wr =
            ::send(fd, resp.data() + sent, resp.size() - sent, MSG_NOSIGNAL);
        if (wr <= 0) {
          alive = false;
          break;
        }
        sent += static_cast<std::size_t>(wr);
      }
    }
  }
  // Deregister before closing so stop() never shutdown()s a recycled fd
  // number: fds in conn_fds_ are always still open.
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
    if (*it == fd) {
      conn_fds_.erase(it);
      break;
    }
  }
  ::close(fd);
}

}  // namespace tilespmspv::serve
