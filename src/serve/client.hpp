// Minimal blocking client for the serve daemon's NDJSON unix-socket
// protocol (serve/server.hpp). Header-only; used by the tilespmspv_cli
// `client`/`loadgen` subcommands and the serve tests. One request line
// out, one response line back, in order — the protocol has no framing
// beyond newlines, so a connection is single-conversation at a time.
#pragma once

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace tilespmspv::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connect(const std::string& socket_path, std::string* err) {
    close();
    if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (err != nullptr) *err = "socket path too long";
      return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      if (err != nullptr) *err = std::strerror(errno);
      return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (err != nullptr) *err = std::strerror(errno);
      close();
      return false;
    }
    return true;
  }

  bool connected() const { return fd_ >= 0; }

  /// Sends `line` (newline appended) and blocks for the response line.
  bool request(const std::string& line, std::string* response,
               std::string* err) {
    if (fd_ < 0) {
      if (err != nullptr) *err = "not connected";
      return false;
    }
    std::string out = line;
    out.push_back('\n');
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t wr =
          ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (wr <= 0) {
        if (err != nullptr) *err = "send failed";
        return false;
      }
      sent += static_cast<std::size_t>(wr);
    }
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *response = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r <= 0) {
        if (err != nullptr) *err = "connection closed by server";
        return false;
      }
      buf_.append(chunk, static_cast<std::size_t>(r));
    }
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    buf_.clear();
  }

 private:
  int fd_ = -1;
  std::string buf_;  // bytes past the last consumed response line
};

}  // namespace tilespmspv::serve
