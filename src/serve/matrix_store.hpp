// Matrix residency for the serving daemon (ROADMAP item 2): converted
// TileMatrix instances stay resident in an LRU cache keyed by a content
// hash of their serialized bytes, so repeated queries against the same
// matrix never pay conversion twice and identical uploads under different
// names share one entry.
//
// Reload discipline (epoch-style snapshots): each cache entry holds a
// `std::shared_ptr<const MatrixSnapshot>`; a reload builds the new
// snapshot off to the side and swaps the pointer behind a per-entry spin
// lock from parallel/atomics.hpp, bumping the entry's epoch. Queries copy
// the pointer at admission, so in-flight work finishes on the snapshot it
// started with — the shared_ptr refcount keeps an evicted or replaced
// matrix alive until its last query returns, and readers never block on a
// rebuild.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/spmspv.hpp"
#include "formats/csr.hpp"
#include "tile/tile_matrix.hpp"
#include "util/types.hpp"

namespace tilespmspv::serve {

/// Immutable converted form of one ingested matrix. Built once (outside
/// any store lock), then only ever read.
struct MatrixSnapshot {
  std::string key;     // content hash, 16 lowercase hex chars
  std::string alias;   // optional human name ("" = none)
  std::string source;  // provenance: "suite:NAME" or "file:PATH"
  std::uint64_t epoch = 0;  // bumped on every swap of the same key
  index_t rows = 0;
  index_t cols = 0;
  offset_t nnz = 0;
  std::size_t bytes = 0;  // approximate resident footprint
  TileMatrix<value_t> tiled;    // A, the SpMSpV/SpMSpM operand
  TileMatrix<value_t> tiled_t;  // unit-weight tiled transpose (BFS expand)
  bool has_transpose = false;   // square matrices only
  // True when the tiled forms are zero-copy views into an mmapped v2 tile
  // file (the TileMatrix `storage` member keeps the mapping alive for as
  // long as any query holds the snapshot).
  bool mapped = false;
};

using SnapshotPtr = std::shared_ptr<const MatrixSnapshot>;

/// FNV-1a 64-bit over a byte range — the content-hash primitive.
std::uint64_t fnv1a64(const char* data, std::size_t size);

/// 16-hex-char content key of a serialized matrix byte stream.
std::string content_key(const std::string& serialized_bytes);

/// Validates `a` at the trust boundary (formats/validate.hpp) and builds
/// the resident snapshot: tiled form, plus the unit-weight tiled transpose
/// when the matrix is square (the BFS expand operand). `key` must be the
/// content key of the bytes `a` was parsed from. Throws
/// std::invalid_argument on validation failure.
SnapshotPtr build_snapshot(const Csr<value_t>& a, std::string key,
                           std::string alias, std::string source,
                           const SpmspvConfig& cfg);

/// Loads + validates a serialized matrix file, classified by magic.
///
///  - v2 tile files (TTLF, formats/tile_file.hpp): mmapped zero-copy; the
///    content key is the payload hash already stored in the 128-byte
///    header, so admission hashes nothing (the fast path the offline
///    `tilespmspv_cli convert` step buys).
///  - TCSR / MatrixMarket: parsed and tiled; the content key is a chunked
///    stream-hash of the raw file bytes — the file is never materialized
///    twice in memory. Bytes hashed are charged to the `hash_bytes`
///    counter on both paths.
///
/// Throws on I/O or validation failure.
SnapshotPtr load_snapshot_file(const std::string& path, std::string alias,
                               const SpmspvConfig& cfg);

/// Builds a snapshot from a generator-suite matrix (gen/suite.hpp); the
/// content key hashes the canonical serialized CSR bytes, so the same
/// suite matrix loaded twice shares one entry.
SnapshotPtr load_snapshot_suite(const std::string& name, std::string alias,
                                const SpmspvConfig& cfg);

/// LRU cache of snapshots with byte-budget eviction and epoch-swapping
/// reload. Thread-safe; see the file comment for the swap discipline.
class MatrixStore {
 public:
  explicit MatrixStore(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  MatrixStore(const MatrixStore&) = delete;
  MatrixStore& operator=(const MatrixStore&) = delete;

  /// Looks up by content key or alias; bumps LRU recency. Returns nullptr
  /// when absent.
  SnapshotPtr get(const std::string& key_or_alias);

  /// Inserts `snap`, or — when its key is already resident — swaps the
  /// existing entry's pointer (epoch := old epoch + 1). Evicts least-
  /// recently-used entries until the byte budget holds (the incoming entry
  /// itself is never evicted). Returns the content key; evicted keys are
  /// appended to `evicted` when non-null.
  std::string put(SnapshotPtr snap, std::vector<std::string>* evicted);

  /// Drops the entry (by key or alias). In-flight queries holding the
  /// snapshot finish normally. Returns false when absent.
  bool erase(const std::string& key_or_alias);

  struct Info {
    std::string key;
    std::string alias;
    std::string source;
    index_t rows = 0;
    index_t cols = 0;
    offset_t nnz = 0;
    std::size_t bytes = 0;
    std::uint64_t epoch = 0;
  };
  std::vector<Info> list() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t swaps = 0;
    std::size_t resident_bytes = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    SnapshotPtr snap;  // swapped behind `lock`; copied by readers
    // Spin byte (parallel/atomics.hpp) guarding the pointer swap itself:
    // the map mutex serializes structure changes, the entry lock marks the
    // snapshot-swap critical section. lint:allow note: plain byte, the
    // helpers do the atomics.
    mutable unsigned char lock = 0;
    std::uint64_t tick = 0;  // LRU recency
  };

  // unique_ptr keeps Entry addresses stable across rehashes, so the spin
  // byte's address never moves under a waiter.
  using Map = std::vector<std::pair<std::string, std::unique_ptr<Entry>>>;

  Entry* find_locked(const std::string& key_or_alias);
  void evict_locked(const std::string& keep_key,
                    std::vector<std::string>* evicted);

  mutable std::mutex mu_;
  Map entries_;  // small N: linear scan beats a map for the daemon's scale
  std::size_t capacity_bytes_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0, swaps_ = 0;
};

}  // namespace tilespmspv::serve
