// Batch admission for the serving daemon: queries against the same
// resident matrix accumulate in per-matrix queues and flush into ONE
// block-engine call — tile_spmspm for SpMSpV batches, ms_bfs_tiled_on for
// BFS batches — when k queries have accumulated or the oldest query's
// deadline expires. This is how the daemon converts the block-of-k
// amortization (ROADMAP item 2, core/tile_spmspm.hpp) into serving
// throughput: concurrent clients share tile metadata walks without
// coordinating with each other.
//
// Each queue pins the MatrixSnapshot captured when its first query was
// admitted, so a snapshot swap (matrix reload) never mixes operands
// inside one flush: queries admitted before the swap run on the old
// snapshot, queries after it start a fresh queue on the new one.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "formats/sparse_vector.hpp"
#include "serve/matrix_store.hpp"
#include "util/types.hpp"

namespace tilespmspv {
class ThreadPool;
}

namespace tilespmspv::serve {

struct BatchConfig {
  int max_k = 64;           // flush at k queries (clamped to 64 lanes)
  double deadline_ms = 2.0; // flush the oldest query after this long
};

/// Per-matrix batch queues + one flusher thread. submit_* never blocks on
/// kernel work; the returned future resolves when the batch containing
/// the query flushes. Thread-safe.
class Batcher {
 public:
  Batcher(const BatchConfig& cfg, ThreadPool* pool);
  ~Batcher();  // flushes everything still queued, then joins

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// y = A·x on the snapshot's tiled form. `x.n` must equal snap->cols
  /// (checked; a mismatch resolves the future with an exception).
  std::future<SparseVec<value_t>> submit_spmspv(SnapshotPtr snap,
                                                SparseVec<value_t> x);

  /// Single-source BFS levels from `source` (the snapshot must be square;
  /// levels[v] = -1 unreachable). Batched bit-parallel with other sources
  /// admitted in the same window.
  std::future<std::vector<index_t>> submit_bfs(SnapshotPtr snap,
                                               index_t source);

  struct Stats {
    std::uint64_t spmspv_queries = 0;
    std::uint64_t bfs_queries = 0;
    std::uint64_t flushes = 0;          // block-engine invocations
    std::uint64_t batched_flushes = 0;  // flushes that carried k > 1
    std::uint64_t max_flush_k = 0;      // largest k in any single flush
    std::uint64_t errors = 0;           // queries resolved with an exception
  };
  Stats stats() const;

 private:
  struct SpmspvQueue {
    SnapshotPtr snap;
    std::vector<SparseVec<value_t>> xs;
    std::vector<std::promise<SparseVec<value_t>>> promises;
    std::chrono::steady_clock::time_point oldest;
  };
  struct BfsQueue {
    SnapshotPtr snap;
    std::vector<index_t> sources;
    std::vector<std::promise<std::vector<index_t>>> promises;
    std::chrono::steady_clock::time_point oldest;
  };

  void flusher_loop();
  void flush_spmspv(SpmspvQueue q);
  void flush_bfs(BfsQueue q);

  BatchConfig cfg_;
  ThreadPool* pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Keyed by snapshot identity (key + epoch), so a reload starts a fresh
  // queue instead of appending to one pinned on the old snapshot.
  std::vector<std::pair<std::string, SpmspvQueue>> spmspv_queues_;
  std::vector<std::pair<std::string, BfsQueue>> bfs_queues_;
  bool stop_ = false;
  std::uint64_t spmspv_queries_ = 0, bfs_queries_ = 0;
  std::uint64_t flushes_ = 0, batched_flushes_ = 0, max_flush_k_ = 0;
  std::uint64_t errors_ = 0;

  std::thread flusher_;  // last member: starts in ctor, joins in dtor
};

}  // namespace tilespmspv::serve
