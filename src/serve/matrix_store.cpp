#include "serve/matrix_store.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "formats/mm_io.hpp"
#include "formats/serialize.hpp"
#include "formats/tile_file.hpp"
#include "formats/validate.hpp"
#include "gen/suite.hpp"
#include "obs/counters.hpp"
#include "parallel/atomics.hpp"

namespace tilespmspv::serve {

std::uint64_t fnv1a64(const char* data, std::size_t size) {
  // Same primitive the v2 tile-file format uses for its payload hash
  // (formats/tile_file.hpp), so the two key spaces agree on the function.
  return tilespmspv::fnv1a64(data, size);
}

namespace {

/// 16 lowercase hex chars of a 64-bit hash — the content-key rendering.
std::string key_of_hash(std::uint64_t h) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = "0123456789abcdef"[h & 0xf];
    h >>= 4;
  }
  return out;
}

/// Chunked FNV-1a over a whole stream (from its current position), charged
/// to the hash_bytes counter. Never materializes the stream: 64 KiB at a
/// time, so hashing a multi-GB matrix file costs one buffer.
std::uint64_t hash_stream(std::istream& in) {
  char buf[64 * 1024];
  std::uint64_t h = 0xcbf29ce484222325ull;
  std::uint64_t total = 0;
  while (in) {
    in.read(buf, sizeof(buf));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    h = tilespmspv::fnv1a64(buf, got, h);
    total += got;
  }
  obs::counter_add(obs::Counter::kHashBytes, total);
  return h;
}

}  // namespace

std::string content_key(const std::string& serialized_bytes) {
  obs::counter_add(obs::Counter::kHashBytes, serialized_bytes.size());
  return key_of_hash(
      fnv1a64(serialized_bytes.data(), serialized_bytes.size()));
}

namespace {

/// Approximate resident footprint of a tiled matrix: the payload vectors
/// (values, indices, pointers, side COO, run list, strategy bytes).
std::size_t tile_matrix_bytes(const TileMatrix<value_t>& m) {
  auto vec_bytes = [](const auto& v) {
    return v.size() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  std::size_t b = 0;
  b += vec_bytes(m.tile_row_ptr) + vec_bytes(m.tile_col_id);
  b += vec_bytes(m.tile_nnz_ptr) + vec_bytes(m.intra_row_ptr);
  b += vec_bytes(m.local_col) + vec_bytes(m.vals);
  b += vec_bytes(m.extracted.row_idx) + vec_bytes(m.extracted.col_idx) +
       vec_bytes(m.extracted.vals);
  b += vec_bytes(m.side_col_ptr) + vec_bytes(m.side_row_idx) +
       vec_bytes(m.side_vals) + vec_bytes(m.side_row_ptr);
  b += vec_bytes(m.row_chunk_ptr) + vec_bytes(m.run_ptr) +
       vec_bytes(m.row_runs) + vec_bytes(m.tile_strategy);
  return b;
}

}  // namespace

SnapshotPtr build_snapshot(const Csr<value_t>& a, std::string key,
                           std::string alias, std::string source,
                           const SpmspvConfig& cfg) {
  // Trust boundary: the matrix may come from an arbitrary client upload.
  const ValidationResult vr = validate_csr(a);
  if (!vr.ok()) {
    throw std::invalid_argument("matrix failed validation: " + vr.message());
  }
  auto snap = std::make_shared<MatrixSnapshot>();
  snap->key = std::move(key);
  snap->alias = std::move(alias);
  snap->source = std::move(source);
  snap->rows = a.rows;
  snap->cols = a.cols;
  snap->nnz = a.nnz();
  snap->tiled = TileMatrix<value_t>::from_csr(a, cfg.nt, cfg.extract_threshold);
  if (a.rows == a.cols) {
    // BFS expand operand: unit-weight tiled transpose (see apps/ms_bfs.hpp).
    Csr<value_t> at = a.transpose();
    for (auto& v : at.vals) v = value_t{1};
    snap->tiled_t =
        TileMatrix<value_t>::from_csr(at, cfg.nt, cfg.extract_threshold);
    snap->has_transpose = true;
  }
  snap->bytes = sizeof(MatrixSnapshot) + tile_matrix_bytes(snap->tiled) +
                tile_matrix_bytes(snap->tiled_t);
  return snap;
}

namespace {

/// Zero-copy admission of a pre-converted v2 tile file: one mmap, cheap
/// structural gates plus a full deep validation of the mapped view (the
/// file is an arbitrary client upload). The content key is the header's
/// payload hash, verified against the mapped bytes once at admission —
/// MatrixStore::put treats an equal key as "same content" and epoch-swaps
/// the resident snapshot, so a forged header hash must not be allowed to
/// replace another matrix's cache entry under its key.
SnapshotPtr load_snapshot_tile_file(const std::string& path,
                                    std::string alias) {
  MappedTileMatrix m =
      map_tile_matrix_file(path, /*verify_hash=*/true, /*deep_validate=*/true);
  // verify_hash re-read the payload sections (the whole file minus header,
  // section table and alignment padding — file_bytes is the honest bound).
  obs::counter_add(obs::Counter::kHashBytes, m.header.file_bytes);
  auto snap = std::make_shared<MatrixSnapshot>();
  snap->key = key_of_hash(m.header.payload_hash);
  snap->alias = std::move(alias);
  snap->source = "file:" + path;
  snap->rows = m.tiled.rows;
  snap->cols = m.tiled.cols;
  // From the mapped view, not header.edges: exact by construction, and
  // files written before the header carried a matrix edge count stay
  // servable with a correct nnz.
  snap->nnz = m.tiled.total_nnz();
  // Footprint = the mapped pages; both orientations are views into the
  // same mapping, so the file size is counted once.
  snap->bytes = sizeof(MatrixSnapshot) +
                static_cast<std::size_t>(m.header.file_bytes);
  snap->tiled = std::move(m.tiled);
  snap->tiled_t = std::move(m.tiled_t);
  snap->has_transpose = m.has_transpose;
  snap->mapped = true;
  return snap;
}

}  // namespace

SnapshotPtr load_snapshot_file(const std::string& path, std::string alias,
                               const SpmspvConfig& cfg) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open matrix file: " + path);
  const SerializedKind kind = probe_serialized_kind(in);
  if (kind == SerializedKind::kTileFile) {
    in.close();
    return load_snapshot_tile_file(path, std::move(alias));
  }
  if (kind == SerializedKind::kTileMatrix) {
    throw std::runtime_error(
        "v1 tiled-matrix files are not servable directly; convert to the v2 "
        "tile format (tilespmspv_cli convert) or serve the CSR / "
        "MatrixMarket source instead: " +
        path);
  }
  // Content key: chunked stream-hash of the raw bytes (never materializes
  // the file), then rewind and parse straight from the stream.
  in.clear();
  in.seekg(0);
  std::string key = key_of_hash(hash_stream(in));
  in.clear();
  in.seekg(0);
  Csr<value_t> a;
  if (kind == SerializedKind::kCsr) {
    a = read_csr(in);  // validating reader (consumes its own header)
  } else {
    a = Csr<value_t>::from_coo(read_matrix_market(in));
  }
  return build_snapshot(a, std::move(key), std::move(alias), "file:" + path,
                        cfg);
}

SnapshotPtr load_snapshot_suite(const std::string& name, std::string alias,
                                const SpmspvConfig& cfg) {
  const Csr<value_t> a = Csr<value_t>::from_coo(suite_matrix(name));
  // Content key: chained hash over the CSR header fields and arrays — the
  // identity the serialized form pins down, without materializing the
  // serialized bytes. The same suite matrix loaded under two aliases still
  // shares one cache entry.
  const std::int64_t dims[2] = {a.rows, a.cols};
  std::uint64_t h = tilespmspv::fnv1a64(dims, sizeof(dims));
  h = tilespmspv::fnv1a64(a.row_ptr.data(),
                          a.row_ptr.size() * sizeof(offset_t), h);
  h = tilespmspv::fnv1a64(a.col_idx.data(),
                          a.col_idx.size() * sizeof(index_t), h);
  h = tilespmspv::fnv1a64(a.vals.data(), a.vals.size() * sizeof(value_t), h);
  obs::counter_add(obs::Counter::kHashBytes,
                   sizeof(dims) + a.row_ptr.size() * sizeof(offset_t) +
                       a.col_idx.size() * sizeof(index_t) +
                       a.vals.size() * sizeof(value_t));
  return build_snapshot(a, key_of_hash(h), std::move(alias), "suite:" + name,
                        cfg);
}

SnapshotPtr MatrixStore::get(const std::string& key_or_alias) {
  std::lock_guard<std::mutex> g(mu_);
  Entry* e = find_locked(key_or_alias);
  if (e == nullptr) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  e->tick = ++tick_;
  spin_lock(&e->lock);
  SnapshotPtr snap = e->snap;  // refcount bump: query owns this snapshot
  spin_unlock(&e->lock);
  return snap;
}

std::string MatrixStore::put(SnapshotPtr snap,
                             std::vector<std::string>* evicted) {
  std::string key = snap->key;
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [k, e] : entries_) {
    if (k != key) continue;
    // Same content already resident: epoch-style swap. Readers that copied
    // the old pointer finish on the old snapshot; the swap itself sits
    // behind the entry spin lock so a concurrent get() never observes a
    // half-written pointer.
    auto next = std::make_shared<MatrixSnapshot>(*snap);
    spin_lock(&e->lock);
    next->epoch = e->snap->epoch + 1;
    resident_bytes_ -= e->snap->bytes;
    resident_bytes_ += next->bytes;
    e->snap = std::move(next);
    spin_unlock(&e->lock);
    e->tick = ++tick_;
    ++swaps_;
    return key;
  }
  auto e = std::make_unique<Entry>();
  resident_bytes_ += snap->bytes;
  e->snap = std::move(snap);
  e->tick = ++tick_;
  entries_.emplace_back(key, std::move(e));
  evict_locked(key, evicted);
  return key;
}

bool MatrixStore::erase(const std::string& key_or_alias) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first != key_or_alias && it->second->snap->alias != key_or_alias) {
      continue;
    }
    resident_bytes_ -= it->second->snap->bytes;
    entries_.erase(it);
    return true;
  }
  return false;
}

std::vector<MatrixStore::Info> MatrixStore::list() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<Info> out;
  out.reserve(entries_.size());
  for (const auto& [k, e] : entries_) {
    const MatrixSnapshot& s = *e->snap;
    out.push_back(
        {k, s.alias, s.source, s.rows, s.cols, s.nnz, s.bytes, s.epoch});
  }
  return out;
}

MatrixStore::Stats MatrixStore::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return {hits_, misses_,          evictions_,
          swaps_, resident_bytes_, entries_.size()};
}

MatrixStore::Entry* MatrixStore::find_locked(const std::string& key_or_alias) {
  for (auto& [k, e] : entries_) {
    if (k == key_or_alias || e->snap->alias == key_or_alias) return e.get();
  }
  return nullptr;
}

void MatrixStore::evict_locked(const std::string& keep_key,
                               std::vector<std::string>* evicted) {
  while (resident_bytes_ > capacity_bytes_ && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep_key) continue;
      if (victim == entries_.end() || it->second->tick < victim->second->tick) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;
    resident_bytes_ -= victim->second->snap->bytes;
    if (evicted != nullptr) evicted->push_back(victim->first);
    entries_.erase(victim);
    ++evictions_;
  }
}

}  // namespace tilespmspv::serve
